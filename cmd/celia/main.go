// Command celia runs the full CELIA pipeline for one elastic
// application and problem: it searches the cloud configuration space
// for configurations meeting a time deadline and cost budget, and
// reports the census and the cost-time Pareto-optimal frontier.
//
// Example:
//
//	celia -app galaxy -n 65536 -a 8000 -deadline 24 -budget 350
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("celia: ")
	var (
		appName  = flag.String("app", "galaxy", fmt.Sprintf("elastic application %v", cli.AppNames()))
		n        = flag.Float64("n", 65536, "problem size n")
		a        = flag.Float64("a", 8000, "accuracy a (x264: f, galaxy: s, sand: t)")
		deadline = flag.Float64("deadline", 24, "time deadline T' in hours (0 = unconstrained)")
		budget   = flag.Float64("budget", 350, "cost budget C' in dollars (0 = unconstrained)")
		measured = flag.Bool("measured", false, "run the full measurement pipeline (baseline runs + fitting) instead of ground-truth characterizations")
		sample   = flag.Uint64("sample", 0, "emit every k-th feasible point as CSV to stdout (0 = off)")
		maxRows  = flag.Int("frontier", 30, "max frontier rows to print")
	)
	flag.Parse()

	app, err := cli.LookupApp(*appName)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cli.BuildEngine(app, *measured)
	if err != nil {
		log.Fatal(err)
	}
	p := workload.Params{N: *n, A: *a}
	cons := core.Constraints{Deadline: units.FromHours(*deadline), Budget: units.USD(*budget)}
	res, err := sweep.Census(eng, p, cons.Deadline, cons.Budget, *sample)
	if err != nil {
		log.Fatal(err)
	}
	an := res.Analysis

	fmt.Printf("application    %s, %s = %g, %s = %g\n", app.Name(), "n", p.N, app.AccuracyName(), p.A)
	fmt.Printf("demand         %v\n", an.Demand)
	fmt.Printf("constraints    T' = %g h, C' = $%g\n", *deadline, *budget)
	fmt.Printf("configurations %d total, %d feasible\n", an.Total, an.Feasible)
	lo, hi, ratio := an.CostSpan()
	fmt.Printf("frontier       %d Pareto-optimal, cost %v .. %v (%.2fx), saving up to %.0f%%\n\n",
		len(an.Frontier), lo, hi, ratio, res.SavingPct)

	tb := report.NewTable("Pareto-optimal configurations (time ascending)",
		"config [c4 c4x c42x | m4 m4x m42x | r3 r3x r32x]", "time (h)", "cost ($)")
	for i, f := range an.Frontier {
		if i >= *maxRows {
			tb.AddRow(fmt.Sprintf("... %d more", len(an.Frontier)-i), "", "")
			break
		}
		tb.AddRow(f.Config.String(), f.Time.Hours(), float64(f.Cost))
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *sample > 0 {
		fmt.Println("\nfeasible sample (CSV):")
		csvT := report.NewTable("", "time_h", "cost_usd", "config")
		for _, s := range an.Sample {
			csvT.AddRow(s.Time.Hours(), float64(s.Cost), s.Config.String())
		}
		if err := csvT.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
