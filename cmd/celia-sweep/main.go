// Command celia-sweep regenerates the paper's model-based analyses:
// the Figure 4 configuration-space census, the Figure 5 problem-size
// scaling and Figure 6 accuracy scaling curves, and the Observation 3
// deadline-tightening study.
//
// Example:
//
//	celia-sweep -exp fig4
//	celia-sweep -exp fig5 -csv
//	celia-sweep -exp fig6
//	celia-sweep -exp obs3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

var (
	csvOut   bool
	useIndex bool
)

// newEngine builds a paper engine, opted into the frontier index unless
// -index=false: the sweeps re-solve the same catalog under dozens of
// (demand, deadline) pairs, exactly the workload the demand-invariant
// index amortizes. The index matches the exhaustive scan bit-for-bit;
// -index=false falls back to the decomposed search, which can name a
// different (never cheaper) representative when costs tie within an ulp.
func newEngine(app workload.App) *core.Engine {
	eng := core.NewPaperEngine(app)
	eng.SetUseIndex(useIndex)
	if useIndex {
		if reason := eng.IndexBypassReason(); reason != "" {
			log.Printf("warning: frontier index bypassed for %s: %s", app.Name(), reason)
		}
	}
	return eng
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("celia-sweep: ")
	exp := flag.String("exp", "fig4", "experiment: fig4, fig5, fig6, obs3")
	flag.BoolVar(&csvOut, "csv", false, "emit CSV instead of aligned tables")
	flag.BoolVar(&useIndex, "index", true, "answer sweep queries from the frontier index (one build per engine)")
	flag.Parse()

	switch *exp {
	case "fig4":
		fig4()
	case "fig5":
		fig5()
	case "fig6":
		fig6()
	case "obs3":
		obs3()
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func write(tb *report.Table) {
	if csvOut {
		if err := tb.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		return
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func fig4() {
	cases := []struct {
		eng *core.Engine
		p   workload.Params
	}{
		{newEngine(galaxy.App{}), workload.Params{N: 65536, A: 8000}},
		{newEngine(sand.App{}), workload.Params{N: 8192e6, A: 0.32}},
	}
	for _, c := range cases {
		res, err := sweep.Census(c.eng, c.p, units.FromHours(24), 350, 0)
		if err != nil {
			log.Fatal(err)
		}
		an := res.Analysis
		lo, hi, ratio := an.CostSpan()
		fmt.Printf("Figure 4 %s%v, T'=24h, C'=$350\n", c.eng.DemandModel().AppName, c.p)
		fmt.Printf("  feasible: %d of %d\n", an.Feasible, an.Total)
		fmt.Printf("  Pareto-optimal: %d, cost %v..%v (%.2fx span), Obs1 saving %.0f%%\n",
			len(an.Frontier), lo, hi, ratio, res.SavingPct)
		tb := report.NewTable("  frontier", "config", "time (h)", "cost ($)")
		for _, f := range an.Frontier {
			tb.AddRow(f.Config.String(), f.Time.Hours(), float64(f.Cost))
		}
		write(tb)
	}
	fmt.Println("paper: ~5.8M/2M feasible; 23/58 Pareto points; cost spans $126-167 / $180-210")
}

func scalingTable(title string, res sweep.ScalingResult) *report.Table {
	headers := []string{res.VaryName}
	for _, d := range res.Deadlines {
		headers = append(headers, fmt.Sprintf("%.0fh ($)", d))
	}
	headers = append(headers, "config @24h")
	tb := report.NewTable(title, headers...)
	for vi, v := range res.Values {
		cells := []interface{}{fmt.Sprintf("%g", v)}
		var cfg24 string
		for di, d := range res.Deadlines {
			pt := res.Points[di][vi]
			if pt.Feasible {
				cells = append(cells, float64(pt.Cost))
			} else {
				cells = append(cells, "-")
			}
			//lint:allow floateq d iterates the literal deadline table; 24 is bit-exact
			if d == 24 && pt.Feasible {
				cfg24 = pt.Config
			}
		}
		cells = append(cells, cfg24)
		tb.AddRow(cells...)
	}
	return tb
}

func fig5() {
	engG := newEngine(galaxy.App{})
	resG, err := sweep.MinCostCurve(engG, workload.Params{A: 1000}, true, "n",
		[]float64{32768, 65536, 131072, 262144}, sweep.Deadlines())
	if err != nil {
		log.Fatal(err)
	}
	write(scalingTable("Figure 5(a): galaxy min cost vs n (s=1000)", resG))

	engS := newEngine(sand.App{})
	resS, err := sweep.MinCostCurve(engS, workload.Params{A: 0.32}, true, "n",
		[]float64{1024e6, 2048e6, 4096e6, 8192e6}, sweep.Deadlines())
	if err != nil {
		log.Fatal(err)
	}
	write(scalingTable("Figure 5(b): sand min cost vs n (t=0.32)", resS))
	fmt.Println("paper: quadratic cost growth (galaxy), linear (sand); jumps where a new category is engaged")
}

func fig6() {
	engG := newEngine(galaxy.App{})
	resG, err := sweep.MinCostCurve(engG, workload.Params{N: 65536}, false, "s",
		[]float64{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000}, sweep.Deadlines())
	if err != nil {
		log.Fatal(err)
	}
	write(scalingTable("Figure 6(a): galaxy min cost vs s (n=65536)", resG))
	if jumps := sweep.GradientJumps(resG.Points[2], 1.15); len(jumps) > 0 {
		for _, j := range jumps {
			fmt.Printf("  gradient jump on the 24h curve at s=%g: config %s (category spill, Obs 2)\n",
				resG.Points[2][j].Value, resG.Points[2][j].Config)
		}
		fmt.Println()
	}

	engS := newEngine(sand.App{})
	resS, err := sweep.MinCostCurve(engS, workload.Params{N: 8192e6}, false, "t",
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, sweep.Deadlines())
	if err != nil {
		log.Fatal(err)
	}
	write(scalingTable("Figure 6(b): sand min cost vs t (n=8192M)", resS))
	fmt.Println("paper: linear cost in s (galaxy), logarithmic in t (sand); 1.6x sand accuracy for ~20% cost")
}

func obs3() {
	engG := newEngine(galaxy.App{})
	g, err := sweep.Tightening(engG, workload.Params{N: 262144, A: 1000}, sweep.Deadlines())
	if err != nil {
		log.Fatal(err)
	}
	tb := report.NewTable("Observation 3: galaxy(262144, 1000)", "deadline (h)", "min cost ($)", "config")
	for _, pt := range g.Points {
		if pt.Feasible {
			tb.AddRow(float64(pt.DeadlineHours), float64(pt.Cost), pt.Config)
		} else {
			tb.AddRow(float64(pt.DeadlineHours), "-", "infeasible")
		}
	}
	write(tb)
	fmt.Printf("galaxy: cutting the deadline %.0f%% raises cost %.0f%% (paper: 67%% -> +40%%)\n\n",
		g.DeadlineCutPct, g.CostRisePct)

	engS := newEngine(sand.App{})
	s, err := sweep.Tightening(engS, workload.Params{N: 8192e6, A: 0.32}, []units.Hours{24, 48})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sand: cutting the deadline %.0f%% raises cost %.0f%% (paper: 50%% -> +25%%)\n",
		s.DeadlineCutPct, s.CostRisePct)
}
