// Command celia-schedule solves an optimal scaling schedule over a
// demand trace and compares it against the reactive autoscaler
// baseline. Traces come from a file (or stdin), or from the built-in
// seeded generators.
//
// Example:
//
//	celia-schedule -app galaxy -gen diurnal -steps 288 -step 300
//	celia-schedule -app galaxy -gen bursty -emit > bursty.json
//	celia-schedule -app galaxy -trace bursty.json -billing perhour -json
//	celia-schedule -app galaxy -gen diurnal -hazard 0.05 -trials 100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/autoscale"
	"repro/internal/cli"
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/units"
)

var (
	appName   = flag.String("app", "galaxy", "application to schedule (x264, galaxy, sand)")
	tracePath = flag.String("trace", "", "demand-trace JSON file, or - for stdin (overrides -gen)")
	gen       = flag.String("gen", "diurnal", "synthetic generator: diurnal, bursty, ramp")
	emit      = flag.Bool("emit", false, "write the trace JSON to stdout and exit without solving")
	billing   = flag.String("billing", "persecond", "billing policy: persecond, perhour")
	boot      = flag.Float64("boot", float64(schedule.DefaultBoot), "node boot time in seconds")
	jsonOut   = flag.Bool("json", false, "emit the solved schedule as JSON instead of a summary table")
	timeline  = flag.Int("timeline", 12, "per-step rows to print in table mode (0 = none)")

	steps  = flag.Int("steps", 288, "generator: trace length in steps")
	step   = flag.Float64("step", 300, "generator: step length in seconds")
	aParam = flag.Float64("a", 50, "generator: accuracy/quality parameter held across the trace")
	baseN  = flag.Float64("base", 6_000, "generator: baseline problem size (FromN for ramp)")
	peakN  = flag.Float64("peak", 60_000, "generator: peak problem size (ToN for ramp)")
	period = flag.Int("period", 288, "diurnal: steps per cycle (0 = one cycle)")
	jitter = flag.Float64("jitter", 0.04, "generator: multiplicative noise fraction")
	seed   = flag.Uint64("seed", 0x20170417, "generator: deterministic seed")
	burstN = flag.Float64("burst", 40_000, "bursty: size added at each burst onset")
	onset  = flag.Float64("onset", 0.02, "bursty: per-step probability of a new burst")
	decay  = flag.Int("decay", 12, "bursty: steps for a burst to halve")

	hazard = flag.Float64("hazard", 0, "per-instance-hour failure rate λ (0 = skip risk)")
	trials = flag.Int("trials", 0, "risk: Monte-Carlo trials per sampled step (0 = default)")
	every  = flag.Int("every", 8, "risk: sample each N-th step of the timeline")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("celia-schedule: ")
	flag.Parse()

	tr, err := loadTrace()
	if err != nil {
		log.Fatal(err)
	}
	if *emit {
		if err := tr.Encode(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	app, err := cli.LookupApp(*appName)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cli.BuildEngine(app, false)
	if err != nil {
		log.Fatal(err)
	}
	eng.SetUseIndex(true)
	switch *billing {
	case "persecond":
		eng.SetBilling(model.PerSecond)
	case "perhour":
		eng.SetBilling(model.PerHour)
	default:
		log.Fatalf("unknown billing %q (persecond, perhour)", *billing)
	}

	pol := schedule.PolicyFor(eng)
	pol.Boot = units.Seconds(*boot)
	solved, err := schedule.Solve(eng, tr, pol)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := schedule.Reactive(eng, tr, pol, autoscale.DefaultPolicy())
	if err != nil {
		log.Fatal(err)
	}

	var riskPts []schedule.RiskPoint
	if *hazard > 0 {
		riskPts, err = schedule.RiskTimeline(app, eng, tr, solved, schedule.RiskOptions{
			HazardPerHour: *hazard, Trials: *trials, Every: *every, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	if *jsonOut {
		writeJSON(tr, solved, baseline, riskPts)
		return
	}
	writeTable(tr, solved, baseline, riskPts)
}

func loadTrace() (demand.Trace, error) {
	if *tracePath != "" {
		r := os.Stdin
		if *tracePath != "-" {
			f, err := os.Open(*tracePath)
			if err != nil {
				return demand.Trace{}, err
			}
			defer f.Close()
			r = f
		}
		return demand.DecodeTrace(r)
	}
	switch *gen {
	case "diurnal":
		return demand.Diurnal(demand.DiurnalSpec{
			Steps: *steps, Step: units.Seconds(*step), A: *aParam,
			BaseN: *baseN, PeakN: *peakN, Period: *period,
			Jitter: *jitter, Seed: *seed,
		}), nil
	case "bursty":
		return demand.Bursty(demand.BurstySpec{
			Steps: *steps, Step: units.Seconds(*step), A: *aParam,
			BaseN: *baseN, BurstN: *burstN, Onset: *onset, Decay: *decay,
			Jitter: *jitter, Seed: *seed,
		}), nil
	case "ramp":
		return demand.Ramp(demand.RampSpec{
			Steps: *steps, Step: units.Seconds(*step), A: *aParam,
			FromN: *baseN, ToN: *peakN, Jitter: *jitter, Seed: *seed,
		}), nil
	default:
		return demand.Trace{}, fmt.Errorf("unknown generator %q (diurnal, bursty, ramp)", *gen)
	}
}

// output is the JSON shape -json emits: the solved schedule, the
// reactive baseline's totals, and the optional risk timeline.
type output struct {
	App       string               `json:"app"`
	TraceName string               `json:"trace_name,omitempty"`
	TraceHash string               `json:"trace_hash"`
	Billing   string               `json:"billing"`
	Solved    schedule.Schedule    `json:"solved"`
	Baseline  baselineSummary      `json:"baseline"`
	Savings   float64              `json:"savings_vs_reactive_pct"`
	Risk      []schedule.RiskPoint `json:"risk,omitempty"`
}

type baselineSummary struct {
	TotalCost units.USD `json:"total_cost_usd"`
	Switches  int       `json:"switches"`
	Misses    int       `json:"misses"`
}

func writeJSON(tr demand.Trace, solved, baseline schedule.Schedule, riskPts []schedule.RiskPoint) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(output{
		App:       *appName,
		TraceName: tr.Name,
		TraceHash: tr.Hash(),
		Billing:   *billing,
		Solved:    solved,
		Baseline: baselineSummary{
			TotalCost: baseline.TotalCost,
			Switches:  baseline.Switches,
			Misses:    baseline.Misses,
		},
		Savings: schedule.SavingsPct(solved.TotalCost, baseline.TotalCost),
		Risk:    riskPts,
	}); err != nil {
		log.Fatal(err)
	}
}

func writeTable(tr demand.Trace, solved, baseline schedule.Schedule, riskPts []schedule.RiskPoint) {
	name := tr.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Printf("app %s  trace %s  hash %s  %d steps x %.0fs (%.1f h)  billing %s\n",
		*appName, name, tr.Hash(), tr.Steps(), float64(tr.Step),
		float64(tr.Horizon().InHours()), *billing)
	fmt.Printf("candidates %d  boot %.0fs  quantum %.0fs\n\n",
		solved.Candidates, float64(solved.Policy.Boot), float64(solved.Policy.Quantum))

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "\tcost $\tswitches\tmisses\n")
	fmt.Fprintf(w, "solved\t%.6f\t%d\t%d\n", float64(solved.TotalCost), solved.Switches, solved.Misses)
	fmt.Fprintf(w, "reactive\t%.6f\t%d\t%d\n", float64(baseline.TotalCost), baseline.Switches, baseline.Misses)
	w.Flush()
	fmt.Printf("\nsavings vs reactive %.2f%%  release payout $%.6f\n",
		schedule.SavingsPct(solved.TotalCost, baseline.TotalCost), float64(solved.ReleasePayout))

	if *timeline > 0 {
		rows := len(solved.Steps)
		if rows > *timeline {
			rows = *timeline
		}
		fmt.Printf("\nfirst %d of %d steps:\n", rows, len(solved.Steps))
		tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "t\tconfig\tdelta\tbusy s\tslack s\tcost $\tmissed\n")
		for t := 0; t < rows; t++ {
			st := solved.Steps[t]
			fmt.Fprintf(tw, "%d\t%s\t%+d\t%.1f\t%.1f\t%.6f\t%v\n",
				t, st.Config, st.DeltaNodes, float64(st.Busy), float64(st.Slack),
				float64(st.Cost), st.Missed)
		}
		tw.Flush()
	}
	if len(riskPts) > 0 {
		fmt.Printf("\nrisk timeline (λ=%.4g/instance-hour):\n", *hazard)
		tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "t\tmiss prob\ttrials\n")
		for _, pt := range riskPts {
			fmt.Fprintf(tw, "%d\t%.3f\t%d\n", pt.T, pt.MissProbability, pt.Trials)
		}
		tw.Flush()
	}
}
