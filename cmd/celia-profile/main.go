// Command celia-profile runs the complete measurement pipeline for an
// elastic application — scale-down baseline runs under (simulated)
// perf, demand-model fitting, and per-category capacity probes on
// (simulated) cloud instances — and persists the characterization as
// JSON for later reuse by celia-server or the library's store package.
//
// Example:
//
//	celia-profile -app galaxy -o galaxy.celia.json
//	celia-server -characterizations galaxy.celia.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/profile"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("celia-profile: ")
	var (
		appName = flag.String("app", "galaxy", fmt.Sprintf("elastic application %v", cli.AppNames()))
		out     = flag.String("o", "", "output file (default: <app>.celia.json)")
		perType = flag.Bool("per-type", false, "probe every instance type instead of one per category (§IV-C off)")
	)
	flag.Parse()

	app, err := cli.LookupApp(*appName)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = app.Name() + ".celia.json"
	}

	pf := profile.New()
	log.Printf("measuring %s baseline grid (%d points) on the local server...",
		app.Name(), len(app.BaselineGrid()))
	dr, err := pf.CharacterizeDemand(app)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("fitted %s (R²=%.5f): %s", dr.Fit.Family, dr.Fit.Model.R2, dr.Fit.Model.Form())

	log.Printf("probing cloud capacities (per-category optimization: %v)...", !*perType)
	cr, err := pf.CharacterizeCapacity(app, !*perType)
	if err != nil {
		log.Fatal(err)
	}
	for _, tc := range cr.Types {
		mark := " "
		if tc.Measured {
			mark = "*"
		}
		log.Printf("  %s %-11s %6.3f GIPS/vCPU  (%5.1f GI/s/$)",
			mark, tc.Type.Name, tc.PerVCPU.GIPSValue(), tc.PerDollar/1e9)
	}

	c, err := store.FromResults(app, dr, cr)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Save(f); err != nil {
		_ = f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}
