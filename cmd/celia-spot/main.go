// Command celia-spot runs the spot-market extension: it takes CELIA's
// Pareto frontier for a problem and prices each optimal configuration
// on a simulated spot market, reporting expected cost, interruption
// exposure, and deadline-satisfaction probability, then recommends
// spot or on-demand execution.
//
// Example:
//
//	celia-spot -app galaxy -n 65536 -a 8000 -deadline 24 -confidence 0.9
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/spot"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("celia-spot: ")
	var (
		appName    = flag.String("app", "galaxy", fmt.Sprintf("elastic application %v", cli.AppNames()))
		n          = flag.Float64("n", 65536, "problem size n")
		a          = flag.Float64("a", 8000, "accuracy a")
		deadline   = flag.Float64("deadline", 24, "time deadline in hours")
		budget     = flag.Float64("budget", 350, "cost budget in dollars")
		confidence = flag.Float64("confidence", 0.9, "required deadline-satisfaction probability on spot")
		seed       = flag.Uint64("seed", 7, "spot market seed")
		maxRows    = flag.Int("rows", 12, "max frontier rows to price")
	)
	flag.Parse()

	app, err := cli.LookupApp(*appName)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cli.BuildEngine(app, false)
	if err != nil {
		log.Fatal(err)
	}
	p := workload.Params{N: *n, A: *a}
	dl := units.FromHours(*deadline)
	an, err := eng.Analyze(p, core.Constraints{Deadline: dl, Budget: units.USD(*budget)}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if len(an.Frontier) == 0 {
		log.Fatal("no feasible configurations")
	}

	market, err := spot.NewMarket(eng.Capacities().Catalog(), spot.DefaultMarket(), *seed)
	if err != nil {
		log.Fatal(err)
	}
	ev := spot.NewEvaluator(market, eng.Capacities())
	d, err := eng.Demand(p)
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable(
		fmt.Sprintf("spot pricing of the %s%v Pareto frontier (T'=%gh)", app.Name(), p, *deadline),
		"config", "on-demand ($)", "E[spot] ($)", "E[interruptions]", "P(meet deadline)")
	var candidates []core.FrontierPoint
	for i, f := range an.Frontier {
		if i >= *maxRows {
			break
		}
		candidates = append(candidates, f)
		plan, err := ev.Evaluate(d, f.Config, dl)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(f.Config.String(), float64(plan.OnDemandCost),
			float64(plan.ExpectedSpotCost), plan.Interruptions, plan.DeadlineProb)
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	rec, err := ev.Recommend(d, frontierConfigs(candidates), dl, *confidence)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if rec.UseSpot {
		fmt.Printf("recommendation: SPOT %v — E[cost] %v vs on-demand %v (%.0f%% saving), P(deadline) = %.2f\n",
			rec.Spot.Config, rec.Spot.ExpectedSpotCost, rec.OnDemand.OnDemandCost,
			rec.SavingPct, rec.Spot.DeadlineProb)
	} else {
		fmt.Printf("recommendation: ON-DEMAND %v at %v — no spot plan meets %.0f%% deadline confidence with savings\n",
			rec.OnDemand.Config, rec.OnDemand.OnDemandCost, *confidence*100)
	}
	fmt.Println("\n(The paper targets on-demand resources precisely because spot interruptions")
	fmt.Println(" threaten deadlines; this extension quantifies that trade-off.)")
}

func frontierConfigs(frontier []core.FrontierPoint) []config.Tuple {
	out := make([]config.Tuple, len(frontier))
	for i, f := range frontier {
		out[i] = f.Config
	}
	return out
}
