// Command celia-validate regenerates the paper's Table IV: for nine
// (application, problem, configuration) cases it compares the
// analytical model's predictions — built from fitted demand models and
// measured capacities — against full-scale runs on the cloud
// simulator, and reports per-case and per-application errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/validate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("celia-validate: ")
	csvOut := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	rows, err := validate.Run(profile.New(), validate.PaperCases())
	if err != nil {
		log.Fatal(err)
	}
	tb := report.NewTable("Table IV: model validation",
		"case", "configuration", "pred T (h)", "actual T (h)", "pred C ($)", "actual C ($)", "time err (%)", "cost err (%)")
	for _, r := range rows {
		tb.AddRow(r.Case.Name(), r.Case.Config.String(),
			r.PredictedTime.Hours(), r.ActualTime.Hours(),
			float64(r.PredictedCost), float64(r.ActualCost),
			r.TimeErrPct, r.CostErrPct)
	}
	if *csvOut {
		if err := tb.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for app, e := range validate.MaxErrByApp(rows) {
		fmt.Printf("max time error %-6s %.1f%%\n", app, e)
	}
	fmt.Println("paper: max errors 9.5% (x264), 13.1% (galaxy), 16.7% (sand); all < 17%")
}
