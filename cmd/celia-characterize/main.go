// Command celia-characterize reproduces the paper's characterization
// artifacts: Figure 2 (application resource demand vs problem size and
// accuracy, from fitted baseline measurements) and Figure 3 (cloud
// resource normalized performance).
//
// Example:
//
//	celia-characterize -fig 2
//	celia-characterize -fig 3 -per-category
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("celia-characterize: ")
	var (
		fig         = flag.Int("fig", 2, "figure to regenerate: 2 (demand) or 3 (capacity)")
		perCategory = flag.Bool("per-category", false, "fig 3: probe one type per category (§IV-C) instead of all nine")
	)
	flag.Parse()

	pf := profile.New()
	switch *fig {
	case 2:
		figure2(pf)
	case 3:
		figure3(pf, *perCategory)
	default:
		log.Fatalf("unknown figure %d", *fig)
	}
}

// figure2 prints the fitted demand models and the paper's six panels.
func figure2(pf *profile.Profiler) {
	type panel struct {
		app    string
		byN    bool
		fixedA []float64 // two fixed values of the other parameter
		values []float64
		label  string
	}
	panels := []panel{
		{"x264", true, []float64{10, 20}, stats.Linspace(2, 32, 7), "(a) x264 - n"},
		{"galaxy", true, []float64{1000, 2000}, []float64{8192, 16384, 32768, 65536}, "(b) galaxy - n"},
		{"sand", true, []float64{0.04, 0.08}, []float64{1e6, 8e6, 16e6, 32e6, 64e6}, "(c) sand - n"},
		{"x264", false, []float64{2, 4}, stats.Linspace(10, 50, 9), "(d) x264 - f"},
		{"galaxy", false, []float64{8192, 16384}, stats.Linspace(1000, 8000, 8), "(e) galaxy - s"},
		{"sand", false, []float64{8e6, 16e6}, stats.Linspace(0.01, 1, 10), "(f) sand - t"},
	}

	models := map[string]profile.DemandResult{}
	for _, name := range cli.AppNames() {
		app, err := cli.LookupApp(name)
		if err != nil {
			log.Fatal(err)
		}
		dr, err := pf.CharacterizeDemand(app)
		if err != nil {
			log.Fatal(err)
		}
		models[name] = dr
		fmt.Printf("%-6s fit: family=%s R²=%.5f  %s\n", name, dr.Fit.Family, dr.Fit.Model.R2, dr.Fit.Model.Form())
	}
	fmt.Println()

	for _, pn := range panels {
		dr := models[pn.app]
		chart := report.NewChart("Figure 2"+pn.label, varName(pn.app, pn.byN), "billion instructions")
		for _, fixed := range pn.fixedA {
			pts := profile.DemandCurve(dr.Fit.Model, pn.byN, fixed, pn.values)
			var xs, ys []float64
			for _, pt := range pts {
				if pn.byN {
					xs = append(xs, pt.P.N)
				} else {
					xs = append(xs, pt.P.A)
				}
				ys = append(ys, pt.D.Billions())
			}
			name := fmt.Sprintf("fixed=%g", fixed)
			if err := chart.Add(report.Series{Name: name, X: xs, Y: ys}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println(chart.String())
	}
}

func varName(app string, byN bool) string {
	if byN {
		return "n"
	}
	a, err := cli.LookupApp(app)
	if err != nil {
		return "a"
	}
	return a.AccuracyName()
}

// figure3 prints the normalized-performance table.
func figure3(pf *profile.Profiler, perCategory bool) {
	tb := report.NewTable("Figure 3: normalized performance (GI/s per $/h)",
		"type", "x264", "galaxy", "sand", "probed")
	apps := make([]workload.App, 0, 3)
	for _, name := range []string{"x264", "galaxy", "sand"} {
		app, err := cli.LookupApp(name)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, app)
	}
	cols := make([][]profile.TypeCharacterization, len(apps))
	for i, app := range apps {
		cr, err := pf.CharacterizeCapacity(app, perCategory)
		if err != nil {
			log.Fatal(err)
		}
		cols[i] = cr.Types
	}
	for ti := 0; ti < pf.Catalog.Len(); ti++ {
		probed := "-"
		if cols[0][ti].Measured {
			probed = "yes"
		}
		tb.AddRow(pf.Catalog.Type(ti).Name,
			cols[0][ti].PerDollar/1e9, cols[1][ti].PerDollar/1e9, cols[2][ti].PerDollar/1e9, probed)
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npaper: flat within category; c4 ≈ 2x r3, m4 ≈ 1.5x r3 per dollar; galaxy c4 ≈ 26.2")
}
