// celia-lint runs the repository's static-analysis suite: determinism,
// float-safety, and serving invariants that ordinary review misses and
// go vet does not know about. It is part of the tier-1 verify line:
//
//	go run ./cmd/celia-lint ./...
//
// With no arguments (or "./...") it loads and checks every package in
// the module, skipping testdata trees and _test.go files. Explicit
// directory arguments are linted too — that is how the self-test
// fixtures under internal/analysis/testdata are exercised; a fixture
// file may carry a "//celia-lint:as <import-path>" comment to take on
// the package identity a path-scoped rule expects.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Each
// finding prints as "file:line:col: [rule] message", or — with -json —
// as one JSON object per line ({"file","line","col","rule","message"}),
// the format .github/problem-matcher.json teaches GitHub Actions to
// turn into PR annotations. -rule a,b runs a subset of the suite (for
// bisecting one rule); -changed lints only the packages whose files
// differ from origin/main (committed or not) plus every package that
// transitively depends on them through the call graph; -timing prints
// a per-phase breakdown (parse, typecheck, summaries, rules) and each
// rule's cumulative wall time to stderr; the (package × rule) passes
// run concurrently either way.
// Findings are suppressed by "//lint:allow <rule> <reason>" on the
// same or the preceding line; the reason is mandatory, and a waiver
// whose rule ran but suppressed nothing is itself a finding (stale
// waivers rot into false documentation).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// jsonFinding is the -json wire form, one object per line.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "print the rule set and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON lines instead of text")
	timing := flag.Bool("timing", false, "print per-phase and per-rule wall time to stderr")
	ruleSel := flag.String("rule", "", "comma-separated rule names to run (default: all); bisect one rule with -rule <name>")
	changed := flag.Bool("changed", false, "lint only packages differing from origin/main, plus their reverse dependencies via the call graph")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: celia-lint [-list] [-json] [-timing] [-rule a,b] [-changed] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *ruleSel != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*ruleSel, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "celia-lint: unknown rule %q (see -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
		if len(selected) == 0 {
			fmt.Fprintln(os.Stderr, "celia-lint: -rule selected no rules")
			os.Exit(2)
		}
		suite = selected
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "celia-lint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var targets []*analysis.CheckedPackage
	if *changed {
		if len(flag.Args()) != 0 {
			fmt.Fprintln(os.Stderr, "celia-lint: -changed picks its own targets; drop the path arguments")
			os.Exit(2)
		}
		targets, err = changedTargets(loader)
		if err != nil {
			fmt.Fprintln(os.Stderr, "celia-lint:", err)
			os.Exit(2)
		}
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "celia-lint: no packages changed vs origin/main")
			return
		}
	} else {
		for _, arg := range args {
			switch arg {
			case "./...", "...", ".":
				pkgs, err := loader.LoadModule()
				if err != nil {
					fmt.Fprintln(os.Stderr, "celia-lint:", err)
					os.Exit(2)
				}
				targets = append(targets, pkgs...)
			default:
				pkg, err := loader.LoadDir(arg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "celia-lint:", err)
					os.Exit(2)
				}
				targets = append(targets, pkg)
			}
		}
	}

	findings, timings, stats := analysis.RunTimedStats(suite, targets)
	if *timing {
		parse, check := loader.Timing()
		var rules float64
		for _, t := range timings {
			rules += float64(t.Elapsed.Microseconds()) / 1000
		}
		fmt.Fprintf(os.Stderr, "celia-lint: phase parse     %8.1fms\n", float64(parse.Microseconds())/1000)
		fmt.Fprintf(os.Stderr, "celia-lint: phase typecheck %8.1fms\n", float64(check.Microseconds())/1000)
		fmt.Fprintf(os.Stderr, "celia-lint: phase summaries %8.1fms\n", float64(stats.SummaryBuild.Microseconds())/1000)
		fmt.Fprintf(os.Stderr, "celia-lint: phase rules     %8.1fms (cumulative across workers)\n", rules)
		if m := stats.Module; m.Packages > 0 {
			fmt.Fprintf(os.Stderr, "celia-lint: module %d pkgs, %d funcs, %d call edges, %d SCCs (largest %d), %d fixpoint re-iterations, %d summary-cache lookups\n",
				m.Packages, m.Functions, m.Edges, m.SCCs, m.LargestSCC, m.FixpointIters, m.Lookups)
		}
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "celia-lint: %-16s %8.1fms\n", t.Rule, float64(t.Elapsed.Microseconds())/1000)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *asJSON {
			if err := enc.Encode(jsonFinding{
				File:    f.Pos.Filename,
				Line:    f.Pos.Line,
				Col:     f.Pos.Column,
				Rule:    f.Rule,
				Message: f.Msg,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "celia-lint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "celia-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// changedTargets lints the blast radius of a branch: the packages
// whose .go files differ from origin/main (merge-base diff plus
// uncommitted edits), widened to every package that transitively
// depends on one of them — through imports and through the call
// graph's interface-dispatch edges, which is why the whole module is
// loaded and summarized even though only the closure is linted.
func changedTargets(loader *analysis.Loader) ([]*analysis.CheckedPackage, error) {
	base := ""
	for _, ref := range []string{"origin/main", "main"} {
		cmd := exec.Command("git", "rev-parse", "--verify", "--quiet", ref)
		cmd.Dir = loader.Root()
		if err := cmd.Run(); err == nil {
			base = ref
			break
		}
	}
	if base == "" {
		return nil, fmt.Errorf("-changed: neither origin/main nor main resolves; fetch the base branch or lint ./...")
	}
	dirs := map[string]bool{}
	for _, diffArgs := range [][]string{
		{"diff", "--name-only", base + "...HEAD"},
		{"diff", "--name-only", "HEAD"},
	} {
		cmd := exec.Command("git", diffArgs...)
		cmd.Dir = loader.Root()
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("-changed: git %s: %v", strings.Join(diffArgs, " "), err)
		}
		for _, f := range strings.Split(string(out), "\n") {
			if strings.HasSuffix(f, ".go") {
				dirs[path.Dir(f)] = true
			}
		}
	}

	pkgs, err := loader.LoadModule()
	if err != nil {
		return nil, err
	}
	changed := map[string]bool{}
	for d := range dirs {
		ip := loader.ModulePath()
		if d != "." {
			ip += "/" + d
		}
		changed[ip] = true
	}

	// Reverse-dependency closure over the call graph's package
	// projection: a change to a callee can invalidate any caller's
	// interprocedural findings.
	deps := analysis.BuildModule(pkgs).PackageDeps()
	rev := map[string][]string{}
	for from, tos := range deps {
		for to := range tos {
			rev[to] = append(rev[to], from)
		}
	}
	selected := map[string]bool{}
	queue := make([]string, 0, len(changed))
	for ip := range changed {
		selected[ip] = true
		queue = append(queue, ip)
	}
	for len(queue) > 0 {
		ip := queue[0]
		queue = queue[1:]
		for _, dep := range rev[ip] {
			if !selected[dep] {
				selected[dep] = true
				queue = append(queue, dep)
			}
		}
	}

	var targets []*analysis.CheckedPackage
	nchanged := 0
	for _, cp := range pkgs {
		if changed[cp.Path] {
			nchanged++
		}
		if selected[cp.Path] {
			targets = append(targets, cp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Path < targets[j].Path })
	fmt.Fprintf(os.Stderr, "celia-lint: -changed: %d changed package(s), %d in closure\n", nchanged, len(targets))
	return targets, nil
}
