// celia-lint runs the repository's static-analysis suite: determinism,
// float-safety, and serving invariants that ordinary review misses and
// go vet does not know about. It is part of the tier-1 verify line:
//
//	go run ./cmd/celia-lint ./...
//
// With no arguments (or "./...") it loads and checks every package in
// the module, skipping testdata trees and _test.go files. Explicit
// directory arguments are linted too — that is how the self-test
// fixtures under internal/analysis/testdata are exercised; a fixture
// file may carry a "//celia-lint:as <import-path>" comment to take on
// the package identity a path-scoped rule expects.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Each
// finding prints as "file:line:col: [rule] message", or — with -json —
// as one JSON object per line ({"file","line","col","rule","message"}),
// the format .github/problem-matcher.json teaches GitHub Actions to
// turn into PR annotations. -rule a,b runs a subset of the suite (for
// bisecting one rule); -timing prints each rule's cumulative wall time
// to stderr; the (package × rule) passes run concurrently either way.
// Findings are suppressed by "//lint:allow <rule> <reason>" on the
// same or the preceding line; the reason is mandatory, and a waiver
// whose rule ran but suppressed nothing is itself a finding (stale
// waivers rot into false documentation).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

// jsonFinding is the -json wire form, one object per line.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "print the rule set and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON lines instead of text")
	timing := flag.Bool("timing", false, "print per-rule cumulative wall time to stderr")
	ruleSel := flag.String("rule", "", "comma-separated rule names to run (default: all); bisect one rule with -rule <name>")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: celia-lint [-list] [-json] [-timing] [-rule a,b] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *ruleSel != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*ruleSel, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "celia-lint: unknown rule %q (see -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
		if len(selected) == 0 {
			fmt.Fprintln(os.Stderr, "celia-lint: -rule selected no rules")
			os.Exit(2)
		}
		suite = selected
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "celia-lint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var targets []*analysis.CheckedPackage
	for _, arg := range args {
		switch arg {
		case "./...", "...", ".":
			pkgs, err := loader.LoadModule()
			if err != nil {
				fmt.Fprintln(os.Stderr, "celia-lint:", err)
				os.Exit(2)
			}
			targets = append(targets, pkgs...)
		default:
			pkg, err := loader.LoadDir(arg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "celia-lint:", err)
				os.Exit(2)
			}
			targets = append(targets, pkg)
		}
	}

	findings, timings := analysis.RunTimed(suite, targets)
	if *timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "celia-lint: %-14s %8.1fms\n", t.Rule, float64(t.Elapsed.Microseconds())/1000)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *asJSON {
			if err := enc.Encode(jsonFinding{
				File:    f.Pos.Filename,
				Line:    f.Pos.Line,
				Col:     f.Pos.Column,
				Rule:    f.Rule,
				Message: f.Msg,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "celia-lint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "celia-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
