// Command celia-server exposes the CELIA engines over HTTP as a JSON
// service (see internal/api for the endpoint contract). Queries are
// served through internal/serving: an LRU result cache, singleflight
// request coalescing, and admission control sized from the machine's
// CPU count, with serving metrics at GET /debug/metrics.
//
// By default it serves ground-truth engines for all three paper
// applications; with -characterization files it serves engines rebuilt
// from persisted measurement results instead.
//
// Example:
//
//	celia-server -addr :8080 -cache-mb 64 -cache-ttl 15m -max-concurrent 8
//	curl -s localhost:8080/v1/apps
//	curl -s -X POST localhost:8080/v1/mincost \
//	  -d '{"app":"galaxy","n":65536,"a":8000,"deadline_hours":24}'
//	curl -s localhost:8080/debug/metrics
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight analyses for up to -drain-timeout before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("celia-server: ")
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		chars = flag.String("characterizations", "", "comma-separated characterization JSON files (default: ground-truth engines for all apps)")
		nodes = flag.Int("max-nodes", 5, "per-type node limit of the configuration space")

		cacheMB  = flag.Int("cache-mb", 64, "result cache capacity in MiB (0 disables caching)")
		cacheTTL = flag.Duration("cache-ttl", 15*time.Minute, "result cache entry lifetime (0 = never expire)")
		maxConc  = flag.Int("max-concurrent", 0, "concurrent engine runs (0 = number of CPUs)")
		queue    = flag.Int("queue-depth", 0, "admitted requests waiting beyond the worker pool (0 = 4x max-concurrent, -1 = none)")
		reqTO    = flag.Duration("request-timeout", 60*time.Second, "per-request deadline from admission to completion")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight requests")
		index    = flag.Bool("index", true, "answer analytic queries from the frontier index (built lazily per engine; serves per-second and per-hour billing alike)")
		billing  = flag.String("billing", "persecond", "billing policy for every mounted engine: persecond (Eq. 5 verbatim), perhour (2017-era started-hour billing)")
		snapDir  = flag.String("snapshot-dir", "", "directory of frontier-index snapshots: restored at startup (skipping the multi-second build) and rewritten after background rebuilds; empty disables persistence")
	)
	flag.Parse()

	engines := map[string]*core.Engine{}
	if *chars == "" {
		for _, name := range cli.AppNames() {
			app, err := cli.LookupApp(name)
			if err != nil {
				log.Fatal(err)
			}
			eng, err := cli.BuildEngine(app, false)
			if err != nil {
				log.Fatal(err)
			}
			engines[name] = eng
		}
	} else {
		for _, path := range strings.Split(*chars, ",") {
			f, err := os.Open(strings.TrimSpace(path))
			if err != nil {
				log.Fatal(err)
			}
			c, err := store.Load(f)
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			eng, err := c.Engine(ec2.Oregon(), *nodes)
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			engines[c.App] = eng
		}
	}

	switch *billing {
	case "persecond":
		// Engines default to per-second; nothing to set.
	case "perhour":
		for _, eng := range engines {
			eng.SetBilling(model.PerHour)
		}
	default:
		log.Fatalf("unknown billing %q (persecond, perhour)", *billing)
	}

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1 // disabled
	}
	ttl := *cacheTTL
	if ttl <= 0 {
		ttl = -1 // never expire
	}
	fd, err := serving.NewFrontdoor(engines, serving.Config{
		CacheBytes:     cacheBytes,
		CacheTTL:       ttl,
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queue,
		RequestTimeout: *reqTO,
		DisableIndex:   !*index,
		SnapshotDir:    *snapDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *snapDir != "" && *index {
		// Missing/corrupt/stale artifacts are not fatal: the app serves
		// from the exhaustive scan in declared degraded mode while a
		// panic-isolated background rebuild restores the index and
		// rewrites the snapshot (degradation ladder, DESIGN.md §11).
		for app, err := range fd.LoadSnapshots() {
			log.Printf("warning: %s: %v (degraded: serving from scan until rebuild completes)", app, err)
		}
		for app, st := range fd.IndexStatuses() {
			log.Printf("index %s: %s%s", app, st.State, suffixReason(st.Reason))
		}
	}
	if *index {
		// The frontdoor opted every engine in above; a non-empty reason
		// here means analytic queries will scan anyway (an uncertified
		// billing policy, or a catalog past the pair cap). One line per
		// engine, also exported at GET /v1/apps.
		for _, name := range fd.Apps() {
			eng, _ := fd.Engine(name)
			if reason := eng.IndexBypassReason(); reason != "" {
				log.Printf("warning: frontier index bypassed for %s: %s", name, reason)
			}
		}
	}
	srv, err := api.NewServer(fd, api.WithApps(cli.Apps()))
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		// Analyses can legitimately take tens of seconds under load;
		// the write timeout must outlast the request deadline.
		WriteTimeout: *reqTO + 10*time.Second,
		IdleTimeout:  120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	log.Printf("serving %d engines on %s (cache %d MiB, ttl %v, %d workers, index %v)",
		len(engines), *addr, *cacheMB, *cacheTTL, *maxConc, *index)

	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		srv.SetDraining(true) // /readyz flips to 503 so balancers stop routing here
		log.Printf("signal received, draining for up to %v", *drainTO)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("drain incomplete: %v", err)
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		// Join background index rebuilds so a final snapshot save is not
		// torn by process exit (the write itself is atomic regardless).
		fd.Wait()
		log.Printf("drained, bye")
	}
}

// suffixReason formats an optional status reason for startup logs.
func suffixReason(reason string) string {
	if reason == "" {
		return ""
	}
	return " (" + reason + ")"
}
