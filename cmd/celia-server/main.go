// Command celia-server exposes the CELIA engines over HTTP as a JSON
// service (see internal/api for the endpoint contract).
//
// By default it serves ground-truth engines for all three paper
// applications; with -characterization files it serves engines rebuilt
// from persisted measurement results instead.
//
// Example:
//
//	celia-server -addr :8080
//	curl -s localhost:8080/v1/apps
//	curl -s -X POST localhost:8080/v1/mincost \
//	  -d '{"app":"galaxy","n":65536,"a":8000,"deadline_hours":24}'
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/ec2"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("celia-server: ")
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		chars = flag.String("characterizations", "", "comma-separated characterization JSON files (default: ground-truth engines for all apps)")
		nodes = flag.Int("max-nodes", 5, "per-type node limit of the configuration space")
	)
	flag.Parse()

	engines := map[string]*core.Engine{}
	if *chars == "" {
		for _, name := range cli.AppNames() {
			app, err := cli.LookupApp(name)
			if err != nil {
				log.Fatal(err)
			}
			eng, err := cli.BuildEngine(app, false)
			if err != nil {
				log.Fatal(err)
			}
			engines[name] = eng
		}
	} else {
		for _, path := range strings.Split(*chars, ",") {
			f, err := os.Open(strings.TrimSpace(path))
			if err != nil {
				log.Fatal(err)
			}
			c, err := store.Load(f)
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			eng, err := c.Engine(ec2.Oregon(), *nodes)
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			engines[c.App] = eng
		}
	}

	srv, err := api.NewServer(engines)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving %d engines on %s", len(engines), *addr)
	log.Fatal(httpSrv.ListenAndServe())
}
