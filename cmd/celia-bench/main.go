// Command celia-bench measures the frontier-index speedup on the
// paper's configuration space and emits a machine-readable summary,
// so CI can archive per-commit numbers without asserting timings. Two
// exceptions are hard gates: loading a persisted index must beat
// rebuilding it by at least 20x, and the per-hour indexed Analyze must
// beat the per-hour scan by at least 20x — the first guards the
// startup path, the second guards the billing-aware routing (the
// paper's own billing mode used to fall back to the full scan; a
// regression there silently re-opens the ~350ms slow path).
//
// Example:
//
//	celia-bench -out BENCH_core.json -benchtime 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/apps/galaxy"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/snapshot"
	"repro/internal/units"
	"repro/internal/workload"
)

type benchRow struct {
	Name    string  `json:"name"`
	NsPerOp int64   `json:"ns_per_op"`
	Ops     int     `json:"ops"`
	Speedup float64 `json:"speedup,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("celia-bench: ")
	out := flag.String("out", "BENCH_core.json", "output path ('-' for stdout)")
	iters := flag.Int("benchtime", 1, "iterations per benchmark")
	flag.Parse()
	if *iters < 1 {
		log.Fatal("-benchtime must be >= 1")
	}

	p := workload.Params{N: 65536, A: 8000}
	cons := core.Constraints{Deadline: units.FromHours(24), Budget: 350}
	scanEng := core.NewPaperEngine(galaxy.App{})
	idxEng := core.NewPaperEngine(galaxy.App{})
	idxEng.SetUseIndex(true)

	run := func(name string, fn func() error) benchRow {
		start := time.Now()
		for i := 0; i < *iters; i++ {
			if err := fn(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		elapsed := time.Since(start)
		return benchRow{
			Name:    name,
			NsPerOp: elapsed.Nanoseconds() / int64(*iters),
			Ops:     *iters,
		}
	}

	buildStart := time.Now()
	if !idxEng.IndexActive() {
		log.Fatal("frontier index did not build")
	}
	buildRow := benchRow{
		Name:    "FrontierIndexBuildPaper",
		NsPerOp: time.Since(buildStart).Nanoseconds(),
		Ops:     1,
	}

	rows := []benchRow{
		run("AnalyzeScanPaper", func() error {
			_, err := scanEng.Analyze(p, cons, core.Options{})
			return err
		}),
		run("AnalyzeIndexedPaper", func() error {
			_, err := idxEng.Analyze(p, cons, core.Options{})
			return err
		}),
		run("MinCostScanPaper", func() error {
			_, ok, err := scanEng.MinCostExhaustive(p, cons.Deadline)
			if err == nil && !ok {
				return fmt.Errorf("infeasible")
			}
			return err
		}),
		run("MinCostIndexedPaper", func() error {
			_, ok, err := idxEng.MinCostForDeadline(p, cons.Deadline)
			if err == nil && !ok {
				return fmt.Errorf("infeasible")
			}
			return err
		}),
	}

	// Per-hour rungs: the same census under the paper-era billing
	// policy, routed through the same already-built index. Flipping the
	// billing is free — the staircase is billing-independent; only the
	// query-time cost function changes.
	scanEng.SetBilling(model.PerHour)
	idxEng.SetBilling(model.PerHour)
	rows = append(rows,
		run("AnalyzePerHourScanPaper", func() error {
			_, err := scanEng.Analyze(p, cons, core.Options{})
			return err
		}),
		run("AnalyzePerHourIndexedPaper", func() error {
			if !idxEng.IndexActive() {
				return fmt.Errorf("index inactive under per-hour billing")
			}
			_, err := idxEng.Analyze(p, cons, core.Options{})
			return err
		}),
	)
	scanEng.SetBilling(model.PerSecond)
	idxEng.SetBilling(model.PerSecond)

	for i := 1; i < len(rows); i += 2 {
		if rows[i].NsPerOp > 0 {
			rows[i].Speedup = float64(rows[i-1].NsPerOp) / float64(rows[i].NsPerOp)
		}
	}
	perHourIdx := rows[len(rows)-1]
	if perHourIdx.Name != "AnalyzePerHourIndexedPaper" {
		log.Fatalf("row order broken: %s where AnalyzePerHourIndexedPaper expected", perHourIdx.Name)
	}
	if perHourIdx.Speedup < 20 {
		log.Fatalf("per-hour indexed Analyze is only %.1fx faster than the scan; need >= 20x (the billing-aware index is the fix for the per-hour slow path)",
			perHourIdx.Speedup)
	}

	// The horizon-solver rung: a 1,000-step diurnal trace solved against
	// the already-built staircase. Its speedup is measured against the
	// naive alternative — one exhaustive min-cost scan per step.
	tr := demand.GoldenDiurnal()
	solveRow := run("ScheduleSolveDiurnal1k", func() error {
		s, err := schedule.Solve(idxEng, tr, schedule.PolicyFor(idxEng))
		if err == nil && s.Misses != 0 {
			return fmt.Errorf("%d missed steps on the golden trace", s.Misses)
		}
		return err
	})
	if scanNs := rows[2].NsPerOp; solveRow.NsPerOp > 0 && rows[2].Name == "MinCostScanPaper" {
		solveRow.Speedup = float64(int64(tr.Steps())*scanNs) / float64(solveRow.NsPerOp)
	}
	rows = append(rows, solveRow, buildRow)

	// Snapshot rungs: persist the paper index and restore it into a cold
	// engine. Load speedup is measured against the in-process build it
	// replaces at startup; the ladder only pays off if restoring is
	// decisively cheaper than rebuilding, so a load slower than 1/20 of
	// the build is a hard failure, not a data point.
	snapTmp, err := os.MkdirTemp("", "celia-bench-snap-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(snapTmp)
	snapPath := filepath.Join(snapTmp, "galaxy.frontier.snap")
	saveRow := run("SnapshotSavePaper", func() error {
		return snapshot.Save(snapPath, idxEng)
	})
	coldEng := core.NewPaperEngine(galaxy.App{})
	coldEng.SetUseIndex(true)
	// The restore is cheap enough to repeat, so take the best of five:
	// the gate compares an inherently noisy one-shot wall-clock pair,
	// and a single scheduler hiccup on a loaded CI box must not read as
	// a regression in the startup path.
	loadRow := benchRow{Name: "SnapshotLoadPaper", Ops: 5}
	for i := 0; i < loadRow.Ops; i++ {
		start := time.Now()
		if err := snapshot.Restore(snapPath, coldEng); err != nil {
			log.Fatalf("SnapshotLoadPaper: %v", err)
		}
		if ns := time.Since(start).Nanoseconds(); i == 0 || ns < loadRow.NsPerOp {
			loadRow.NsPerOp = ns
		}
	}
	if loadRow.NsPerOp > 0 {
		loadRow.Speedup = float64(buildRow.NsPerOp) / float64(loadRow.NsPerOp)
	}
	if loadRow.Speedup < 20 {
		log.Fatalf("snapshot load is only %.1fx faster than the %.2fs build; need >= 20x",
			loadRow.Speedup, time.Duration(buildRow.NsPerOp).Seconds())
	}
	rows = append(rows, saveRow, loadRow)

	enc, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rows))
}
