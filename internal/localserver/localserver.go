// Package localserver models the baseline measurement host of the
// paper's methodology: a local Intel Xeon E5-2630 v4 server with the
// same instruction-set architecture and micro-architecture family as
// the target cloud resources. Because cloud virtualization blocks
// hardware performance counters, CELIA measures application resource
// demand (retired instructions) on this local machine; the instruction
// count transfers to the cloud because ISA and micro-architecture
// match.
package localserver

import (
	"fmt"

	"repro/internal/ec2"
	"repro/internal/perf"
	"repro/internal/units"
	"repro/internal/workload"
)

// Server is the local baseline host.
type Server struct {
	Name    string
	Cores   int     // physical cores
	Threads int     // hardware threads
	GHz     float64 // base frequency
	// ipcScale adapts an application's cloud-category IPC to this host
	// (Broadwell vs. Haswell): close to 1 by construction of the
	// paper's methodology.
	ipcScale float64
}

// NewXeonE52630v4 returns the paper's measurement host: 10 cores / 20
// threads at 2.2 GHz.
func NewXeonE52630v4() *Server {
	return &Server{Name: "Intel Xeon E5-2630 v4", Cores: 10, Threads: 20, GHz: 2.2, ipcScale: 0.97}
}

// Measurement is the result of one baseline run under perf.
type Measurement struct {
	Params       workload.Params
	Instructions units.Instructions // total retired instructions (perf)
	WallTime     units.Seconds      // local wall-clock time
	Breakdown    []perf.ClassCount  // per-class counts
}

// Measure executes the application's scale-down kernel for p under a
// simulated perf session and reports the instruction count and local
// wall time. This is the paper's "baseline execution on a local server".
func (s *Server) Measure(app workload.App, p workload.Params) (Measurement, error) {
	acct := perf.NewAccount()
	if err := app.RunBaseline(p, acct); err != nil {
		return Measurement{}, fmt.Errorf("localserver: baseline %s%v: %w", app.Name(), p, err)
	}
	instr := acct.Total()
	// The local host executes the same general-purpose micro-
	// architecture family as m4; wall time follows from its aggregate
	// retirement rate across loaded threads.
	rate := s.Rate(app)
	return Measurement{
		Params:       p,
		Instructions: instr,
		WallTime:     units.Time(instr, rate),
		Breakdown:    acct.Breakdown(),
	}, nil
}

// Rate reports the host's aggregate instruction retirement rate for the
// application when all hardware threads are loaded.
func (s *Server) Rate(app workload.App) units.Rate {
	perThread := app.IPC(ec2.M4) * s.ipcScale * s.GHz
	return units.GIPS(perThread * float64(s.Threads))
}

// MeasureGrid measures every point of the application's baseline grid,
// in order.
func (s *Server) MeasureGrid(app workload.App) ([]Measurement, error) {
	grid := app.BaselineGrid()
	out := make([]Measurement, 0, len(grid))
	for _, p := range grid {
		m, err := s.Measure(app, p)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
