package localserver

import (
	"math"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/apps/x264"
	"repro/internal/workload"
)

func TestMeasureGalaxy(t *testing.T) {
	s := NewXeonE52630v4()
	var app galaxy.App
	p := workload.Params{N: 256, A: 2}
	m, err := s.Measure(app, p)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(app.Demand(p)) + float64(galaxy.Setup(p.N))
	if math.Abs(float64(m.Instructions)-want) > 1 {
		t.Fatalf("measured %v instructions, want %v", m.Instructions, want)
	}
	if m.WallTime <= 0 {
		t.Fatal("non-positive wall time")
	}
	if len(m.Breakdown) == 0 {
		t.Fatal("empty breakdown")
	}
}

func TestMeasureRejectsFullScale(t *testing.T) {
	s := NewXeonE52630v4()
	if _, err := s.Measure(galaxy.App{}, workload.Params{N: 65536, A: 8000}); err == nil {
		t.Fatal("full-scale measurement accepted")
	}
}

func TestMeasureGridAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline grids are compute-heavy")
	}
	s := NewXeonE52630v4()
	for _, app := range []workload.App{x264.App{}, sand.App{}} {
		ms, err := s.MeasureGrid(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if len(ms) != len(app.BaselineGrid()) {
			t.Fatalf("%s: measured %d of %d grid points", app.Name(), len(ms), len(app.BaselineGrid()))
		}
		for _, m := range ms {
			if m.Instructions <= 0 {
				t.Fatalf("%s%v: non-positive instruction count", app.Name(), m.Params)
			}
		}
	}
}

func TestRateScalesWithThreads(t *testing.T) {
	s := NewXeonE52630v4()
	half := *s
	half.Threads = s.Threads / 2
	var app galaxy.App
	r1, r2 := s.Rate(app), half.Rate(app)
	if math.Abs(float64(r1)/float64(r2)-2) > 1e-9 {
		t.Fatalf("rate did not scale with threads: %v vs %v", r1, r2)
	}
}

func TestHostSpec(t *testing.T) {
	s := NewXeonE52630v4()
	if s.Cores != 10 || s.Threads != 20 || s.GHz != 2.2 {
		t.Fatalf("host spec = %+v, want E5-2630 v4 (10c/20t, 2.2GHz)", s)
	}
}
