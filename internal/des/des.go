// Package des is a minimal discrete-event simulation core: a virtual
// clock and an event calendar. The cloud simulator schedules task
// completions, barrier releases, and dispatch events on it; events at
// equal timestamps fire in scheduling order, which keeps runs exactly
// reproducible.
package des

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Sim is one simulation run. The zero value is ready to use, starting
// at time 0.
type Sim struct {
	now    units.Seconds
	seq    uint64
	queue  eventQueue
	events uint64
}

type event struct {
	at  units.Seconds
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Now reports the current simulation time.
func (s *Sim) Now() units.Seconds { return s.now }

// Events reports how many events have fired.
func (s *Sim) Events() uint64 { return s.events }

// Pending reports how many events are scheduled but not yet fired.
func (s *Sim) Pending() int { return s.queue.Len() }

// Schedule arranges for fn to run delay after the current time.
// Negative delays are rejected: simulated time only advances.
func (s *Sim) Schedule(delay units.Seconds, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	s.At(s.now+delay, fn)
}

// At arranges for fn to run at absolute time t, which must not precede
// the current time.
func (s *Sim) At(t units.Seconds, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: event at %v scheduled from %v (past)", t, s.now))
	}
	heap.Push(&s.queue, event{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// Timer is a handle to a scheduled event that can be canceled before
// it fires. The failure-recovery paths of the cloud simulator use it
// for work that a failure invalidates (a master's in-flight dispatch,
// for example): canceling is O(1) — the calendar entry stays queued but
// fires as a no-op.
type Timer struct {
	canceled bool
	fired    bool
}

// Cancel stops the timer's event from running. It reports whether the
// cancellation happened before the event fired.
func (t *Timer) Cancel() bool {
	if t.fired || t.canceled {
		return false
	}
	t.canceled = true
	return true
}

// ScheduleTimer is Schedule with a cancellation handle: fn runs delay
// after the current time unless the returned timer is canceled first.
func (s *Sim) ScheduleTimer(delay units.Seconds, fn func()) *Timer {
	t := &Timer{}
	s.Schedule(delay, func() {
		if t.canceled {
			return
		}
		t.fired = true
		fn()
	})
	return t
}

// Run fires events in timestamp order until the calendar is empty and
// returns the final time.
func (s *Sim) Run() units.Seconds {
	for s.queue.Len() > 0 {
		s.step()
	}
	return s.now
}

// RunUntil fires events up to and including time t, then stops. Events
// scheduled later stay pending.
func (s *Sim) RunUntil(t units.Seconds) units.Seconds {
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
	return s.now
}

func (s *Sim) step() {
	e := heap.Pop(&s.queue).(event)
	s.now = e.at
	s.events++
	e.fn()
}
