package des

import (
	"testing"

	"repro/internal/units"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var s Sim
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	end := s.Run()
	if end != 30 {
		t.Fatalf("final time = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(10, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var s Sim
	var times []units.Seconds
	s.Schedule(5, func() {
		times = append(times, s.Now())
		s.Schedule(7, func() {
			times = append(times, s.Now())
		})
	})
	end := s.Run()
	if end != 12 || len(times) != 2 || times[0] != 5 || times[1] != 12 {
		t.Fatalf("end=%v times=%v", end, times)
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	fired := 0
	s.Schedule(10, func() { fired++ })
	s.Schedule(20, func() { fired++ })
	s.RunUntil(15)
	if fired != 1 || s.Now() != 15 || s.Pending() != 1 {
		t.Fatalf("fired=%d now=%v pending=%d", fired, s.Now(), s.Pending())
	}
	s.Run()
	if fired != 2 || s.Now() != 20 {
		t.Fatalf("after Run: fired=%d now=%v", fired, s.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	var s Sim
	s.Schedule(-1, func() {})
}

func TestAtPastPanics(t *testing.T) {
	var s Sim
	s.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("past event did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestEventCount(t *testing.T) {
	var s Sim
	for i := 0; i < 100; i++ {
		s.Schedule(units.Seconds(i), func() {})
	}
	s.Run()
	if s.Events() != 100 {
		t.Fatalf("Events = %d, want 100", s.Events())
	}
}

func TestManyEventsStress(t *testing.T) {
	// A chain of 100k self-scheduling events exercises the heap.
	var s Sim
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100000 {
			s.Schedule(1, tick)
		}
	}
	s.Schedule(1, tick)
	end := s.Run()
	if count != 100000 || end != 100000 {
		t.Fatalf("count=%d end=%v", count, end)
	}
}

func TestScheduleTimerFiresAndCancels(t *testing.T) {
	var s Sim
	fired := 0
	s.ScheduleTimer(5, func() { fired++ })
	tm := s.ScheduleTimer(10, func() { fired++ })
	if !tm.Cancel() {
		t.Fatal("pending timer refused cancellation")
	}
	if tm.Cancel() {
		t.Fatal("second cancel reported success")
	}
	end := s.Run()
	if fired != 1 {
		t.Fatalf("fired %d events, want 1 (canceled timer ran?)", fired)
	}
	// The canceled event still occupies the calendar, so the clock
	// advances through it.
	if end != 10 {
		t.Fatalf("end = %v, want 10", end)
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	var s Sim
	var tm *Timer
	tm = s.ScheduleTimer(1, func() {})
	s.Run()
	if tm.Cancel() {
		t.Fatal("cancel after firing reported success")
	}
}
