package sweep

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestCensusFig4Galaxy(t *testing.T) {
	// Figure 4 (galaxy): n=65536, s=8000, T′=24 h, C′=$350 over the
	// full 10,077,695-configuration space. The paper reports ~5.8M
	// feasible configurations, a multi-point Pareto frontier, and a
	// frontier cost span of ~1.3×.
	eng := core.NewPaperEngine(galaxy.App{})
	res, err := Census(eng, workload.Params{N: 65536, A: 8000},
		units.FromHours(24), 350, 0)
	if err != nil {
		t.Fatal(err)
	}
	an := res.Analysis
	if an.Total != 10077695 {
		t.Fatalf("census total = %d", an.Total)
	}
	if an.Feasible < 3_000_000 || an.Feasible > 9_000_000 {
		t.Fatalf("feasible = %d, want millions (paper ~5.8M)", an.Feasible)
	}
	if len(an.Frontier) < 10 || len(an.Frontier) > 200 {
		t.Fatalf("frontier has %d points, want tens (paper: 23)", len(an.Frontier))
	}
	_, _, ratio := an.CostSpan()
	if ratio < 1.1 || ratio > 1.6 {
		t.Fatalf("frontier cost span = %.2f×, want ~1.3×", ratio)
	}
	if res.SavingPct < 10 || res.SavingPct > 40 {
		t.Fatalf("Obs 1 saving = %.1f%%, paper reports up to ~30%%", res.SavingPct)
	}
}

func TestCensusFig4Sand(t *testing.T) {
	eng := core.NewPaperEngine(sand.App{})
	res, err := Census(eng, workload.Params{N: 8192e6, A: 0.32},
		units.FromHours(24), 350, 0)
	if err != nil {
		t.Fatal(err)
	}
	an := res.Analysis
	if an.Feasible == 0 || an.Feasible >= an.Total {
		t.Fatalf("feasible = %d of %d", an.Feasible, an.Total)
	}
	if len(an.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
}

func TestMinCostCurveGalaxyShape(t *testing.T) {
	// Figure 5(a): min cost grows superlinearly (quadratic demand) in
	// n at fixed deadline; relaxing the deadline never raises cost.
	eng := core.NewPaperEngine(galaxy.App{})
	values := []float64{32768, 65536, 131072}
	res, err := MinCostCurve(eng, workload.Params{A: 1000}, true, "n", values, []units.Hours{24, 72})
	if err != nil {
		t.Fatal(err)
	}
	row24, row72 := res.Points[0], res.Points[1]
	for i := range values {
		if !row24[i].Feasible || !row72[i].Feasible {
			t.Fatalf("infeasible point in Fig 5a sweep: %+v / %+v", row24[i], row72[i])
		}
		if float64(row72[i].Cost) > float64(row24[i].Cost)+1e-9 {
			t.Fatalf("72h costs more than 24h at n=%v", values[i])
		}
	}
	// Quadratic demand: cost ratio for 2× n must exceed 2× (at a fixed
	// deadline, superlinear growth).
	r1 := float64(row24[1].Cost) / float64(row24[0].Cost)
	r2 := float64(row24[2].Cost) / float64(row24[1].Cost)
	if r1 < 2.5 || r2 < 2.5 {
		t.Fatalf("cost growth per n-doubling = %.2f, %.2f; want > 2.5 (quadratic demand)", r1, r2)
	}
}

func TestMinCostCurveSandLinear(t *testing.T) {
	// Figure 5(b): sand's cost grows ~linearly with problem size.
	eng := core.NewPaperEngine(sand.App{})
	values := []float64{1024e6, 2048e6, 4096e6}
	res, err := MinCostCurve(eng, workload.Params{A: 0.32}, true, "n", values, []units.Hours{72})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Points[0]
	r1 := float64(row[1].Cost) / float64(row[0].Cost)
	r2 := float64(row[2].Cost) / float64(row[1].Cost)
	for _, r := range []float64{r1, r2} {
		if r < 1.7 || r > 2.4 {
			t.Fatalf("cost growth per n-doubling = %.2f, want ~2 (linear demand)", r)
		}
	}
}

func TestFig6GalaxySpillAnnotations(t *testing.T) {
	// Figure 6(a): along the 24 h accuracy sweep, configurations fill
	// c4 first and spill into m4 at high s, with a gradient jump at
	// the spill.
	eng := core.NewPaperEngine(galaxy.App{})
	values := []float64{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000}
	res, err := MinCostCurve(eng, workload.Params{N: 65536}, false, "s", values, []units.Hours{24})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Points[0]
	sawM4 := false
	for _, pt := range row {
		if !pt.Feasible {
			t.Fatalf("infeasible point in Fig 6a sweep: %+v", pt)
		}
		// No r3 nodes should ever appear: r3 has the worst cost
		// efficiency and capacity never requires it here.
		if !strings.HasSuffix(pt.Config, ",0,0,0]") {
			t.Fatalf("config %s uses r3 at s=%v", pt.Config, pt.Value)
		}
		if !strings.Contains(pt.Config[1:len(pt.Config)-1], "5,5,5,") ||
			pt.Config[1:8] != "5,5,5,0" {
			// c4 saturated and m4 in use.
			sawM4 = true
		}
	}
	if !sawM4 {
		t.Fatal("sweep never spilled out of c4; expected m4 spill at high accuracy")
	}
	if jumps := GradientJumps(row, 1.15); len(jumps) == 0 {
		t.Fatal("no gradient jump detected along Fig 6a's 24h curve")
	}
}

func TestGradientJumpsDetector(t *testing.T) {
	row := []ScalePoint{
		{Value: 1, Cost: 10, Feasible: true},
		{Value: 2, Cost: 20, Feasible: true},
		{Value: 3, Cost: 30, Feasible: true},
		{Value: 4, Cost: 55, Feasible: true}, // slope 10 → 25
	}
	jumps := GradientJumps(row, 1.5)
	if len(jumps) != 1 || jumps[0] != 3 {
		t.Fatalf("jumps = %v, want [3]", jumps)
	}
	if got := GradientJumps(row[:2], 1.5); got != nil {
		t.Fatalf("short row jumps = %v", got)
	}
}

func TestGradientJumpsDuplicateValueResetsSlope(t *testing.T) {
	// A zero-width segment (duplicate swept value) has no slope. The
	// detector used to keep the slope from before the duplicate and
	// compare the next segment against it, reporting a spurious jump
	// across the gap.
	row := []ScalePoint{
		{Value: 1, Cost: 10, Feasible: true},
		{Value: 2, Cost: 20, Feasible: true}, // slope 10
		{Value: 2, Cost: 20, Feasible: true}, // zero-width: resets state
		{Value: 3, Cost: 50, Feasible: true}, // slope 30, but no adjacent base
	}
	if got := GradientJumps(row, 1.5); got != nil {
		t.Fatalf("jumps = %v; a zero-width segment must reset the slope like an infeasible one", got)
	}
	// The segment after the reset becomes the new base, so a further
	// steepening is still caught.
	row = append(row, ScalePoint{Value: 4, Cost: 120, Feasible: true}) // slope 70 vs base 30
	if got := GradientJumps(row, 1.5); len(got) != 1 || got[0] != 4 {
		t.Fatalf("jumps = %v, want [4]", got)
	}
}

func TestGradientJumpsPlateauExit(t *testing.T) {
	// Climbing out of a flat (zero-slope) plateau is a jump: relative
	// to a zero base every factor is infinite. The detector used to
	// require prevSlope > 0 and silently missed it.
	row := []ScalePoint{
		{Value: 1, Cost: 10, Feasible: true},
		{Value: 2, Cost: 10, Feasible: true}, // slope 0
		{Value: 3, Cost: 10, Feasible: true}, // slope 0
		{Value: 4, Cost: 30, Feasible: true}, // slope 20 out of the plateau
	}
	if got := GradientJumps(row, 1.15); len(got) != 1 || got[0] != 3 {
		t.Fatalf("jumps = %v, want [3]", got)
	}
	// Same for a dipping base: cost falls, then rises again.
	row = []ScalePoint{
		{Value: 1, Cost: 20, Feasible: true},
		{Value: 2, Cost: 10, Feasible: true}, // slope -10
		{Value: 3, Cost: 15, Feasible: true}, // slope 5 out of the dip
	}
	if got := GradientJumps(row, 1.15); len(got) != 1 || got[0] != 2 {
		t.Fatalf("jumps = %v, want [2]", got)
	}
}

func TestTighteningObs3Galaxy(t *testing.T) {
	// Observation 3 (galaxy(262144, 1000)): tightening 72h → 24h (a
	// 67% cut) raises cost by well under 67%; the paper reports ~40%.
	eng := core.NewPaperEngine(galaxy.App{})
	res, err := Tightening(eng, workload.Params{N: 262144, A: 1000}, []units.Hours{24, 48, 72})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineCutPct < 60 || res.DeadlineCutPct > 70 {
		t.Fatalf("deadline cut = %.1f%%, want ~67%%", res.DeadlineCutPct)
	}
	if res.CostRisePct <= 0 {
		t.Fatalf("cost rise = %.1f%%; tightening must cost something", res.CostRisePct)
	}
	if res.CostRisePct >= res.DeadlineCutPct {
		t.Fatalf("Obs 3 violated: cost rise %.1f%% >= deadline cut %.1f%%",
			res.CostRisePct, res.DeadlineCutPct)
	}
}

func TestTighteningObs3Sand(t *testing.T) {
	// sand(8192M, 0.32): 48h → 24h (50% cut) costs ~+25% in the paper.
	eng := core.NewPaperEngine(sand.App{})
	res, err := Tightening(eng, workload.Params{N: 8192e6, A: 0.32}, []units.Hours{24, 48})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DeadlineCutPct-50) > 1e-9 {
		t.Fatalf("deadline cut = %.1f%%", res.DeadlineCutPct)
	}
	// The 24 h rung forces a spill past c4, so tightening costs real
	// money — but less than proportionally (paper: ~+25%).
	if res.CostRisePct >= 50 || res.CostRisePct < 3 {
		t.Fatalf("cost rise = %.1f%%, want within [3%%, 50%%)", res.CostRisePct)
	}
}

func TestTighteningInfeasibleRungs(t *testing.T) {
	// An absurd problem at tiny deadlines: rungs must be marked
	// infeasible rather than invented.
	eng := core.NewPaperEngine(galaxy.App{})
	res, err := Tightening(eng, workload.Params{N: 4194304, A: 100000}, []units.Hours{1, 1000000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Feasible {
		t.Fatal("1-hour deadline on an enormous problem reported feasible")
	}
}

func TestCostDemandElasticityObs2(t *testing.T) {
	// Observation 2: when the configuration spills into a new
	// category, cost grows faster than demand (elasticity > 1
	// somewhere along the curve).
	eng := core.NewPaperEngine(galaxy.App{})
	values := []float64{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000}
	fixed := workload.Params{N: 65536}
	res, err := MinCostCurve(eng, fixed, false, "s", values, []units.Hours{24})
	if err != nil {
		t.Fatal(err)
	}
	es, err := CostDemandElasticity(eng, fixed, false, res.Points[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(es) == 0 {
		t.Fatal("no elasticity samples")
	}
	if MaxElasticity(es) <= 1.001 {
		t.Fatalf("max elasticity = %.3f, want > 1 at the spill (Obs 2)", MaxElasticity(es))
	}
	if math.IsNaN(MaxElasticity(nil)) == false {
		t.Fatal("MaxElasticity(nil) should be NaN")
	}
}

func TestDeadlinesLadder(t *testing.T) {
	d := Deadlines()
	if len(d) != 5 || d[0] != 6 || d[4] != 72 {
		t.Fatalf("ladder = %v", d)
	}
}

func TestTradeSurface3D(t *testing.T) {
	// Small space so the per-rung scans stay cheap.
	cat := ec2.Oregon()
	space, err := config.Uniform(cat.Len(), 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(model.FromIPC(cat, galaxy.App{}),
		demand.FromApp(galaxy.App{}), space, galaxy.App{}.Domain())
	if err != nil {
		t.Fatal(err)
	}
	accuracies := []float64{1000, 2000, 4000}
	surface, err := TradeSurface(eng, 32768, accuracies,
		units.FromHours(24), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(surface) == 0 {
		t.Fatal("empty trade surface")
	}
	// 3-objective nondomination must hold: no point may weakly beat
	// another on all of (accuracy ↑, time ↓, cost ↓) with one strict.
	for i, p := range surface {
		for j, q := range surface {
			if i == j {
				continue
			}
			if q.Accuracy >= p.Accuracy && float64(q.Time) <= float64(p.Time) &&
				float64(q.Cost) <= float64(p.Cost) &&
				(q.Accuracy > p.Accuracy || float64(q.Time) < float64(p.Time) ||
					float64(q.Cost) < float64(p.Cost)) {
				t.Fatalf("surface point %d dominated by %d: %+v vs %+v", i, j, p, q)
			}
		}
	}
	// The highest accuracy rung must appear (nothing can dominate its
	// frontier points on the accuracy axis).
	sawTop := false
	for _, p := range surface {
		if p.Accuracy == 4000 {
			sawTop = true
		}
	}
	if !sawTop {
		t.Fatal("highest accuracy rung missing from the surface")
	}
}

func TestTradeSurfaceValidation(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	if _, err := TradeSurface(eng, 65536, nil, units.FromHours(24), 100); err == nil {
		t.Fatal("empty rung list accepted")
	}
	if _, err := TradeSurface(eng, 65536, []float64{-5}, units.FromHours(24), 100); err == nil {
		t.Fatal("out-of-domain accuracy accepted")
	}
}
