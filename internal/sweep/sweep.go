// Package sweep implements the paper's model-based analyses (§IV-E):
// the configuration-space census behind Figure 4, the fixed-time
// scaling studies behind Figures 5 and 6, and the deadline-tightening
// study behind Observation 3.
package sweep

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/pareto"
	"repro/internal/units"
	"repro/internal/workload"
)

// Deadlines returns the paper's standard deadline ladder (hours).
func Deadlines() []units.Hours { return []units.Hours{6, 12, 24, 48, 72} }

// CensusResult is Figure 4's content for one application.
type CensusResult struct {
	Analysis core.Analysis
	// SavingPct is Observation 1's headline: the cost reduction
	// available by moving along the Pareto frontier from its most
	// expensive (fastest) point to its cheapest, i.e. what relaxing
	// the time deadline within the optimal set saves.
	SavingPct float64
}

// Census runs the full-space analysis for one problem under the
// paper's Figure 4 constraints.
func Census(eng *core.Engine, p workload.Params, deadline units.Seconds, budget units.USD, sampleEvery uint64) (CensusResult, error) {
	an, err := eng.Analyze(p, core.Constraints{Deadline: deadline, Budget: budget},
		core.Options{SampleEvery: sampleEvery})
	if err != nil {
		return CensusResult{}, err
	}
	res := CensusResult{Analysis: an}
	if lo, hi, _ := an.CostSpan(); hi > 0 {
		res.SavingPct = (1 - float64(lo/hi)) * 100
	}
	return res, nil
}

// ScalePoint is one cell of a Figure 5/6 matrix: the minimum cost at
// one (value, deadline) pair and the configuration achieving it.
type ScalePoint struct {
	Value    float64 // problem size (Fig 5) or accuracy (Fig 6)
	Deadline units.Hours
	Cost     units.USD
	Time     units.Seconds
	Config   string
	Feasible bool
}

// ScalingResult is one panel of Figure 5 or 6.
type ScalingResult struct {
	App       string
	VaryName  string // "n", "s", "t", "f"
	Fixed     workload.Params
	Deadlines []units.Hours
	Values    []float64
	// Points[d][v] corresponds to Deadlines[d] × Values[v].
	Points [][]ScalePoint
}

// MinCostCurve computes minimum execution cost across a value sweep ×
// deadline ladder. byN selects whether values replace the problem size
// (Figure 5) or the accuracy (Figure 6).
func MinCostCurve(eng *core.Engine, fixed workload.Params, byN bool, varyName string,
	values []float64, deadlinesHours []units.Hours) (ScalingResult, error) {
	res := ScalingResult{
		VaryName:  varyName,
		Fixed:     fixed,
		Deadlines: deadlinesHours,
		Values:    values,
	}
	res.App = eng.DemandModel().AppName
	// Warm the frontier index (when the engine opted in) before the
	// ladder: the build runs once and every (value × deadline) cell
	// answers from the same precomputed pair table.
	eng.IndexActive()
	for _, dh := range deadlinesHours {
		row := make([]ScalePoint, 0, len(values))
		for _, v := range values {
			p := fixed
			if byN {
				p.N = v
			} else {
				p.A = v
			}
			pt := ScalePoint{Value: v, Deadline: dh}
			pred, ok, err := eng.MinCostForDeadline(p, dh.Seconds())
			if err != nil {
				return ScalingResult{}, fmt.Errorf("sweep: %v at %vh: %w", p, dh, err)
			}
			if ok {
				pt.Feasible = true
				pt.Cost = pred.Cost
				pt.Time = pred.Time
				pt.Config = pred.Config.String()
			}
			row = append(row, pt)
		}
		res.Points = append(res.Points, row)
	}
	return res, nil
}

// GradientJumps locates the paper's Observation 2 signature in one
// deadline row: indices where the cost curve's slope (per unit of the
// swept value) increases by more than jumpFactor relative to the
// previous segment — the spill points into a worse cost-efficiency
// category.
func GradientJumps(row []ScalePoint, jumpFactor float64) []int {
	var out []int
	var prevSlope float64
	havePrev := false
	for i := 1; i < len(row); i++ {
		if !row[i].Feasible || !row[i-1].Feasible {
			havePrev = false
			continue
		}
		dv := row[i].Value - row[i-1].Value
		if dv <= 0 {
			// A zero-width (duplicate value) or unordered segment has
			// no slope; drop the previous slope like the infeasible
			// branch does, or the next test would compare segments
			// that are not adjacent.
			havePrev = false
			continue
		}
		//lint:allow unitsafe slope is $ per swept unit (size or accuracy); no units type models the swept axis
		slope := (float64(row[i].Cost) - float64(row[i-1].Cost)) / dv
		if havePrev {
			if prevSlope > 0 {
				if slope > prevSlope*jumpFactor {
					out = append(out, i)
				}
			} else if slope > 0 {
				// Climbing out of a flat (or dipping) segment: relative
				// to a non-positive base slope every factor is
				// infinite, so any positive slope is a jump.
				out = append(out, i)
			}
		}
		prevSlope = slope
		havePrev = true
	}
	return out
}

// TighteningPoint is one step of the Observation 3 study.
type TighteningPoint struct {
	DeadlineHours units.Hours
	Cost          units.USD
	Config        string
	Feasible      bool
}

// TighteningResult summarizes deadline tightening for one problem.
type TighteningResult struct {
	Points []TighteningPoint
	// DeadlineCutPct and CostRisePct compare the tightest and loosest
	// feasible deadlines: the paper's claim is CostRisePct <
	// DeadlineCutPct (e.g. cutting the deadline 67% costs only +40%).
	DeadlineCutPct float64
	CostRisePct    float64
}

// Tightening computes minimum cost across a deadline ladder for a
// fixed problem.
func Tightening(eng *core.Engine, p workload.Params, deadlinesHours []units.Hours) (TighteningResult, error) {
	var res TighteningResult
	for _, dh := range deadlinesHours {
		pt := TighteningPoint{DeadlineHours: dh}
		pred, ok, err := eng.MinCostForDeadline(p, dh.Seconds())
		if err != nil {
			return TighteningResult{}, err
		}
		if ok {
			pt.Feasible = true
			pt.Cost = pred.Cost
			pt.Config = pred.Config.String()
		}
		res.Points = append(res.Points, pt)
	}
	// Compare the loosest and tightest feasible rungs.
	loosest, tightest := -1, -1
	for i, pt := range res.Points {
		if !pt.Feasible {
			continue
		}
		if loosest < 0 || pt.DeadlineHours > res.Points[loosest].DeadlineHours {
			loosest = i
		}
		if tightest < 0 || pt.DeadlineHours < res.Points[tightest].DeadlineHours {
			tightest = i
		}
	}
	if loosest >= 0 && tightest >= 0 && loosest != tightest {
		lo, hi := res.Points[loosest], res.Points[tightest]
		res.DeadlineCutPct = (1 - float64(hi.DeadlineHours/lo.DeadlineHours)) * 100
		if lo.Cost > 0 {
			res.CostRisePct = (float64(hi.Cost/lo.Cost) - 1) * 100
		}
	}
	return res, nil
}

// CostDemandElasticity quantifies Observation 2 along one deadline row:
// the ratio of relative cost growth to relative demand growth between
// consecutive feasible points. Values above 1 mean cost grows faster
// than resource demand.
func CostDemandElasticity(eng *core.Engine, fixed workload.Params, byN bool, row []ScalePoint) ([]float64, error) {
	var out []float64
	demandAt := func(v float64) (units.Instructions, error) {
		p := fixed
		if byN {
			p.N = v
		} else {
			p.A = v
		}
		return eng.Demand(p)
	}
	for i := 1; i < len(row); i++ {
		if !row[i].Feasible || !row[i-1].Feasible {
			continue
		}
		d0, err := demandAt(row[i-1].Value)
		if err != nil {
			return nil, err
		}
		d1, err := demandAt(row[i].Value)
		if err != nil {
			return nil, err
		}
		dd := float64(d1/d0) - 1
		dc := float64(row[i].Cost/row[i-1].Cost) - 1
		if dd > 1e-12 {
			out = append(out, dc/dd)
		}
	}
	return out, nil
}

// TradePoint is one point of the three-objective trade surface:
// accuracy is maximized, time and cost minimized.
type TradePoint struct {
	Accuracy float64
	Time     units.Seconds
	Cost     units.USD
	Config   string
}

// TradeSurface computes the 3-D Pareto surface over (accuracy ↑,
// time ↓, cost ↓) for a fixed problem size: the full elastic-
// application trade-off the paper's Figures 5 and 6 slice along one
// axis at a time. For each accuracy rung the 2-D cost-time frontier is
// extracted (streaming, over the whole configuration space) and the
// union is filtered by k-objective nondomination.
func TradeSurface(eng *core.Engine, n float64, accuracies []float64,
	deadline units.Seconds, budget units.USD) ([]TradePoint, error) {
	if len(accuracies) == 0 {
		return nil, fmt.Errorf("sweep: no accuracy rungs")
	}
	// One index build serves every accuracy rung: the pair table is
	// demand-invariant, and each rung only changes the demand.
	eng.IndexActive()
	var all []TradePoint
	for _, a := range accuracies {
		an, err := eng.Analyze(workload.Params{N: n, A: a},
			core.Constraints{Deadline: deadline, Budget: budget}, core.Options{})
		if err != nil {
			return nil, err
		}
		for _, f := range an.Frontier {
			all = append(all, TradePoint{
				Accuracy: a,
				Time:     f.Time,
				Cost:     f.Cost,
				Config:   f.Config.String(),
			})
		}
	}
	objs := make([][]float64, len(all))
	for i, p := range all {
		// Negate accuracy: FrontierKD minimizes every objective.
		//lint:allow unitsafe k-objective frontier is unit-agnostic; axes are (-accuracy, s, $)
		objs[i] = []float64{-p.Accuracy, float64(p.Time), float64(p.Cost)}
	}
	keep := pareto.FrontierKD(objs)
	out := make([]TradePoint, 0, len(keep))
	for _, i := range keep {
		out = append(out, all[i])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accuracy != out[j].Accuracy {
			return out[i].Accuracy < out[j].Accuracy
		}
		return out[i].Time < out[j].Time
	})
	return out, nil
}

// MaxElasticity returns the largest elasticity, or NaN for empty input.
func MaxElasticity(es []float64) float64 {
	if len(es) == 0 {
		return math.NaN()
	}
	max := es[0]
	for _, e := range es[1:] {
		if e > max {
			max = e
		}
	}
	return max
}
