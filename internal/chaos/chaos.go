// Package chaos is the repository's fault-injection toolkit: small,
// deterministic adversaries for the resilient index lifecycle. Tests
// wire these into the serving path's injection points (snapshot reads,
// background rebuilds, request compute) and into raw snapshot bytes to
// prove that every failure mode resolves to a declared degraded mode —
// never a wrong answer, a hung worker, or a process crash. Nothing in
// the production path imports this package; it exists so the chaos
// suites in internal/snapshot and internal/serving share one vocabulary
// of faults instead of each hand-rolling corruption helpers.
//
// All randomized corruption derives from a detrand source, so a failing
// chaos trial replays exactly from its seed.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/detrand"
)

// ErrInjected is the root of every error this package fabricates;
// assertions use errors.Is to tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// --- Snapshot read faults -------------------------------------------

// SlowReadFile returns a ReadFile hook that stalls for delay before
// each read — a cold NFS mount or an overloaded disk at startup. The
// bytes themselves are intact.
func SlowReadFile(delay time.Duration) func(string) ([]byte, error) {
	return func(path string) ([]byte, error) {
		time.Sleep(delay)
		return os.ReadFile(path)
	}
}

// TornReadFile returns a ReadFile hook that delivers only the first
// keep bytes of the artifact — the on-disk image a crashed non-atomic
// writer would have left behind.
func TornReadFile(keep int) func(string) ([]byte, error) {
	return func(path string) ([]byte, error) {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return Truncate(blob, keep), nil
	}
}

// FailReadFile returns a ReadFile hook that never touches the disk and
// fails with an injected I/O error.
func FailReadFile() func(string) ([]byte, error) {
	return func(path string) ([]byte, error) {
		return nil, fmt.Errorf("%w: read %s", ErrInjected, path)
	}
}

// --- Byte-level corruption ------------------------------------------

// FlipBit returns a copy of blob with one bit inverted. The input is
// never modified.
func FlipBit(blob []byte, bit uint64) []byte {
	out := make([]byte, len(blob))
	copy(out, blob)
	if len(out) > 0 {
		i := (bit / 8) % uint64(len(out))
		out[i] ^= 1 << (bit % 8)
	}
	return out
}

// Truncate returns the first n bytes of blob (a copy); n past the end
// returns the whole blob.
func Truncate(blob []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(blob) {
		n = len(blob)
	}
	out := make([]byte, n)
	copy(out, blob[:n])
	return out
}

// Corruptions derives n deterministic corrupted variants of blob from
// the source: alternating random bit flips and random truncations, the
// two shapes a torn write or bit rot actually produces. Every variant
// differs from the original.
func Corruptions(blob []byte, src *detrand.Source, n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 || len(blob) == 0 {
			out = append(out, FlipBit(blob, src.Uint64()))
		} else {
			out = append(out, Truncate(blob, int(src.Uint64()%uint64(len(blob)))))
		}
	}
	return out
}

// --- Rebuild faults -------------------------------------------------

// FailRebuild returns a rebuild hook that fails with an injected error
// without touching the engine, leaving whatever index was serving in
// place.
func FailRebuild() func(*core.Engine) (core.IndexStats, error) {
	return func(*core.Engine) (core.IndexStats, error) {
		return core.IndexStats{}, fmt.Errorf("%w: rebuild failed", ErrInjected)
	}
}

// PanicRebuild returns a rebuild hook that panics mid-rebuild — the
// fault the swap protocol's panic isolation exists for.
func PanicRebuild() func(*core.Engine) (core.IndexStats, error) {
	return func(*core.Engine) (core.IndexStats, error) {
		panic("chaos: injected rebuild panic")
	}
}

// --- Compute faults -------------------------------------------------

// PanicCompute is a Frontdoor compute closure that panics on every
// call, exercising the worker-pool recovery path.
func PanicCompute(context.Context, *core.Engine) ([]byte, error) {
	panic("chaos: injected compute panic")
}

// SlowCompute returns a compute closure that honors ctx while stalling
// for d, then reports how it exited — the shape of a scan-path query on
// a degraded engine.
func SlowCompute(d time.Duration) func(context.Context, *core.Engine) ([]byte, error) {
	return func(ctx context.Context, _ *core.Engine) ([]byte, error) {
		select {
		case <-time.After(d):
			return []byte(`{"slow":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// HangCompute is a compute closure that never returns until the
// request context is done — the worst-case worker hog. It surfaces the
// context error so the caller can prove the deadline actually fired.
func HangCompute(ctx context.Context, _ *core.Engine) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
