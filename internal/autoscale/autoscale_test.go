package autoscale

import (
	"math"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestPolicyValidation(t *testing.T) {
	ok := DefaultPolicy()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{Epoch: 0, Boot: 0, Headroom: 0.9, ShrinkBelow: 0.5, MaxEpochs: 10},
		{Epoch: 100, Boot: 200, Headroom: 0.9, ShrinkBelow: 0.5, MaxEpochs: 10},
		{Epoch: 100, Boot: 0, Headroom: 0, ShrinkBelow: 0, MaxEpochs: 10},
		{Epoch: 100, Boot: 0, Headroom: 0.5, ShrinkBelow: 0.9, MaxEpochs: 10},
		{Epoch: 100, Boot: 0, Headroom: 0.9, ShrinkBelow: 0.5, MaxEpochs: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestAutoscalerMeetsDeadline(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	p := workload.Params{N: 65536, A: 8000}
	d, err := eng.Demand(p)
	if err != nil {
		t.Fatal(err)
	}
	deadline := units.FromHours(24)
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, deadline, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Finished {
		t.Fatalf("autoscaler missed the deadline: finished at %v", tr.FinishTime)
	}
	if len(tr.Steps) == 0 || tr.TotalCost <= 0 {
		t.Fatalf("degenerate trace: %d steps, cost %v", len(tr.Steps), tr.TotalCost)
	}
}

func TestAutoscalerCostsAtLeastStaticOptimum(t *testing.T) {
	// The central comparison: reactive scaling cannot beat the
	// model-chosen static optimum (it discovers the right size by
	// paying for wrong ones first).
	eng := core.NewPaperEngine(galaxy.App{})
	p := workload.Params{N: 65536, A: 8000}
	d, _ := eng.Demand(p)
	deadline := units.FromHours(24)
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, deadline, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	static, ok, err := eng.MinCostForDeadline(p, deadline)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	premium := CompareStatic(tr, static.Cost)
	if premium < -0.5 {
		t.Fatalf("autoscaler (%v) beat the static optimum (%v) by %.1f%%",
			tr.TotalCost, static.Cost, -premium)
	}
	if premium > 200 {
		t.Fatalf("autoscaler premium %.1f%% implausibly large", premium)
	}
}

func TestAutoscalerGrowsMonotonicallyUnderPressure(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	d, _ := eng.Demand(workload.Params{N: 65536, A: 8000})
	pol := DefaultPolicy()
	pol.ShrinkBelow = 0 // growth-only mode
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, units.FromHours(24), pol)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i, s := range tr.Steps {
		n := s.Config.TotalNodes()
		if n < prev {
			t.Fatalf("step %d shrank (%d -> %d) with shrinking disabled", i, prev, n)
		}
		prev = n
	}
}

func TestAutoscalerShrinksWhenEarly(t *testing.T) {
	// A tiny job at a huge deadline: after the first epochs the
	// projection is comfortably early and the cluster should shrink to
	// one node at some point.
	eng := core.NewPaperEngine(galaxy.App{})
	d, _ := eng.Demand(workload.Params{N: 65536, A: 2000})
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, units.FromHours(72), DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Finished {
		t.Fatal("missed a 72h deadline on a small job")
	}
	sawShrink := false
	for _, s := range tr.Steps {
		if s.Added < 0 {
			sawShrink = true
		}
	}
	_ = sawShrink // shrinking is policy-dependent; the hard assertion is cost sanity below
	static, ok, err := eng.MinCostForDeadline(workload.Params{N: 65536, A: 2000}, units.FromHours(72))
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if float64(tr.TotalCost) > 3*float64(static.Cost) {
		t.Fatalf("autoscaler cost %v > 3x static %v on an easy job", tr.TotalCost, static.Cost)
	}
}

func TestAutoscalerImpossibleJob(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	d, _ := eng.Demand(workload.Params{N: 262144, A: 10000})
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, units.FromHours(2), DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Finished {
		t.Fatal("claimed to finish an impossible job")
	}
	if tr.TotalCost <= 0 {
		t.Fatal("ran for free")
	}
}

func TestSimulateValidation(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	if _, err := Simulate(eng.Capacities(), eng.Space(), 0, units.FromHours(1), DefaultPolicy()); err == nil {
		t.Fatal("zero demand accepted")
	}
	if _, err := Simulate(eng.Capacities(), eng.Space(), 1, 0, DefaultPolicy()); err == nil {
		t.Fatal("zero deadline accepted")
	}
	bad := DefaultPolicy()
	bad.Epoch = 0
	if _, err := Simulate(eng.Capacities(), eng.Space(), 1, units.FromHours(1), bad); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestCompareStatic(t *testing.T) {
	tr := Trace{TotalCost: 120}
	if got := CompareStatic(tr, 100); math.Abs(got-20) > 1e-9 {
		t.Fatalf("premium = %v, want 20", got)
	}
	if !math.IsNaN(CompareStatic(tr, 0)) {
		t.Fatal("zero static cost should yield NaN")
	}
}

func TestBootConsumingWholeEpoch(t *testing.T) {
	// Boot == Epoch is the legal extreme: nodes added at a boundary
	// contribute nothing until the next epoch. The run must still
	// terminate and can only be slower and costlier than instant boot.
	eng := core.NewPaperEngine(galaxy.App{})
	d, err := eng.Demand(workload.Params{N: 65536, A: 8000})
	if err != nil {
		t.Fatal(err)
	}
	slow := DefaultPolicy()
	slow.Boot = slow.Epoch
	deadline := units.FromHours(24)
	got, err := Simulate(eng.Capacities(), eng.Space(), d, deadline, slow)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Finished {
		t.Fatalf("boot==epoch run missed a %v deadline: finish %v", deadline, got.FinishTime)
	}
	instant := DefaultPolicy()
	instant.Boot = 0
	ref, err := Simulate(eng.Capacities(), eng.Space(), d, deadline, instant)
	if err != nil {
		t.Fatal(err)
	}
	if got.FinishTime < ref.FinishTime {
		t.Fatalf("epoch-long boot finished earlier (%v) than instant boot (%v)", got.FinishTime, ref.FinishTime)
	}
	if got.TotalCost < ref.TotalCost {
		t.Fatalf("epoch-long boot cost $%v, under instant boot's $%v", got.TotalCost, ref.TotalCost)
	}
}

func TestShrinkKeepsAtLeastOneNode(t *testing.T) {
	// A trivial job against a huge deadline invites shrinking every
	// epoch; the uWithout > 0 guard must leave the last node running
	// rather than scaling to an empty cluster that can never finish.
	eng := core.NewPaperEngine(galaxy.App{})
	d, err := eng.Demand(workload.Params{N: 65536, A: 2000})
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultPolicy()
	pol.Headroom = 0.95
	pol.ShrinkBelow = 0.9 // shrink on almost any slack
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, units.FromHours(1000), pol)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Finished {
		t.Fatalf("run never finished: %+v", tr)
	}
	for i, st := range tr.Steps {
		if st.Config.TotalNodes() < 1 {
			t.Fatalf("epoch %d scaled to an empty cluster", i)
		}
	}
}

func TestFinishWithinFirstEpoch(t *testing.T) {
	// Demand small enough for the starting node: the run ends mid-epoch
	// and is billed for the actual completion time, not the full epoch.
	eng := core.NewPaperEngine(galaxy.App{})
	d, err := eng.Demand(workload.Params{N: 16384, A: 100})
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultPolicy()
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, units.FromHours(24), pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 1 {
		t.Fatalf("took %d epochs, want 1", len(tr.Steps))
	}
	if !tr.Finished || tr.FinishTime >= pol.Epoch {
		t.Fatalf("finished=%v at %v, want early finish inside the first %v epoch",
			tr.Finished, tr.FinishTime, pol.Epoch)
	}
	if tr.Steps[0].Config.TotalNodes() != 1 || tr.TotalCost <= 0 {
		t.Fatalf("first-epoch run = %+v", tr)
	}
}

func TestMaxedOutClusterRunsWhatItHas(t *testing.T) {
	// Demand beyond the whole space at the deadline: the grow loop must
	// stop at the per-type caps (not spin) and report a missed deadline.
	eng := core.NewPaperEngine(galaxy.App{})
	d, err := eng.Demand(workload.Params{N: 1048576, A: 20000})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, units.FromHours(1), DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Finished {
		t.Fatal("impossible job reported as finished")
	}
	space := eng.Space()
	total := 0
	for i := 0; i < space.Types(); i++ {
		total += space.Max(i)
	}
	last := tr.Steps[len(tr.Steps)-1].Config
	if last.TotalNodes() != total {
		t.Fatalf("final config holds %d nodes, want the whole %d-node space", last.TotalNodes(), total)
	}
	if tr.FinishTime > units.FromHours(1) {
		t.Fatalf("simulation ran past the deadline: %v", tr.FinishTime)
	}
}
