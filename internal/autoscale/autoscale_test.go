package autoscale

import (
	"math"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestPolicyValidation(t *testing.T) {
	ok := DefaultPolicy()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{Epoch: 0, Boot: 0, Headroom: 0.9, ShrinkBelow: 0.5, MaxEpochs: 10},
		{Epoch: 100, Boot: 200, Headroom: 0.9, ShrinkBelow: 0.5, MaxEpochs: 10},
		{Epoch: 100, Boot: 0, Headroom: 0, ShrinkBelow: 0, MaxEpochs: 10},
		{Epoch: 100, Boot: 0, Headroom: 0.5, ShrinkBelow: 0.9, MaxEpochs: 10},
		{Epoch: 100, Boot: 0, Headroom: 0.9, ShrinkBelow: 0.5, MaxEpochs: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestAutoscalerMeetsDeadline(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	p := workload.Params{N: 65536, A: 8000}
	d, err := eng.Demand(p)
	if err != nil {
		t.Fatal(err)
	}
	deadline := units.FromHours(24)
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, deadline, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Finished {
		t.Fatalf("autoscaler missed the deadline: finished at %v", tr.FinishTime)
	}
	if len(tr.Steps) == 0 || tr.TotalCost <= 0 {
		t.Fatalf("degenerate trace: %d steps, cost %v", len(tr.Steps), tr.TotalCost)
	}
}

func TestAutoscalerCostsAtLeastStaticOptimum(t *testing.T) {
	// The central comparison: reactive scaling cannot beat the
	// model-chosen static optimum (it discovers the right size by
	// paying for wrong ones first).
	eng := core.NewPaperEngine(galaxy.App{})
	p := workload.Params{N: 65536, A: 8000}
	d, _ := eng.Demand(p)
	deadline := units.FromHours(24)
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, deadline, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	static, ok, err := eng.MinCostForDeadline(p, deadline)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	premium := CompareStatic(tr, static.Cost)
	if premium < -0.5 {
		t.Fatalf("autoscaler (%v) beat the static optimum (%v) by %.1f%%",
			tr.TotalCost, static.Cost, -premium)
	}
	if premium > 200 {
		t.Fatalf("autoscaler premium %.1f%% implausibly large", premium)
	}
}

func TestAutoscalerGrowsMonotonicallyUnderPressure(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	d, _ := eng.Demand(workload.Params{N: 65536, A: 8000})
	pol := DefaultPolicy()
	pol.ShrinkBelow = 0 // growth-only mode
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, units.FromHours(24), pol)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i, s := range tr.Steps {
		n := s.Config.TotalNodes()
		if n < prev {
			t.Fatalf("step %d shrank (%d -> %d) with shrinking disabled", i, prev, n)
		}
		prev = n
	}
}

func TestAutoscalerShrinksWhenEarly(t *testing.T) {
	// A tiny job at a huge deadline: after the first epochs the
	// projection is comfortably early and the cluster should shrink to
	// one node at some point.
	eng := core.NewPaperEngine(galaxy.App{})
	d, _ := eng.Demand(workload.Params{N: 65536, A: 2000})
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, units.FromHours(72), DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Finished {
		t.Fatal("missed a 72h deadline on a small job")
	}
	sawShrink := false
	for _, s := range tr.Steps {
		if s.Added < 0 {
			sawShrink = true
		}
	}
	_ = sawShrink // shrinking is policy-dependent; the hard assertion is cost sanity below
	static, ok, err := eng.MinCostForDeadline(workload.Params{N: 65536, A: 2000}, units.FromHours(72))
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if float64(tr.TotalCost) > 3*float64(static.Cost) {
		t.Fatalf("autoscaler cost %v > 3x static %v on an easy job", tr.TotalCost, static.Cost)
	}
}

func TestAutoscalerImpossibleJob(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	d, _ := eng.Demand(workload.Params{N: 262144, A: 10000})
	tr, err := Simulate(eng.Capacities(), eng.Space(), d, units.FromHours(2), DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Finished {
		t.Fatal("claimed to finish an impossible job")
	}
	if tr.TotalCost <= 0 {
		t.Fatal("ran for free")
	}
}

func TestSimulateValidation(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	if _, err := Simulate(eng.Capacities(), eng.Space(), 0, units.FromHours(1), DefaultPolicy()); err == nil {
		t.Fatal("zero demand accepted")
	}
	if _, err := Simulate(eng.Capacities(), eng.Space(), 1, 0, DefaultPolicy()); err == nil {
		t.Fatal("zero deadline accepted")
	}
	bad := DefaultPolicy()
	bad.Epoch = 0
	if _, err := Simulate(eng.Capacities(), eng.Space(), 1, units.FromHours(1), bad); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestCompareStatic(t *testing.T) {
	tr := Trace{TotalCost: 120}
	if got := CompareStatic(tr, 100); math.Abs(got-20) > 1e-9 {
		t.Fatalf("premium = %v, want 20", got)
	}
	if !math.IsNaN(CompareStatic(tr, 0)) {
		t.Fatal("zero static cost should yield NaN")
	}
}
