// Package autoscale implements a reactive deadline-driven autoscaler
// in the style of Mao et al. [18, 19], the resource-elasticity
// approach the paper's related work contrasts CELIA against: instead
// of choosing a configuration up front from a model, the autoscaler
// watches progress each epoch and grows or shrinks the cluster to hold
// the projected finish time at the deadline.
//
// Simulating the policy on the same demand/capacity models lets the
// evaluation quantify what reactive scaling costs relative to CELIA's
// static optimum: ramp-up epochs run below the needed capacity and
// must be bought back later at (possibly) worse efficiency.
package autoscale

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/units"
)

// Policy parameterizes the reactive loop.
type Policy struct {
	// Epoch is the decision interval.
	Epoch units.Seconds
	// Boot is how long a newly added node takes to start contributing
	// capacity within its first epoch.
	Boot units.Seconds
	// Headroom is the safety factor applied to the remaining time when
	// deciding whether capacity suffices (scale up when the projected
	// finish exceeds Headroom × remaining).
	Headroom float64
	// ShrinkBelow triggers scale-down when the projected finish is
	// under this fraction of the remaining time (0 disables shrinking).
	ShrinkBelow float64
	// MaxEpochs bounds the simulation.
	MaxEpochs int
}

// DefaultPolicy mirrors common hourly autoscaling with a modest safety
// margin.
func DefaultPolicy() Policy {
	return Policy{
		Epoch:       units.FromHours(1),
		Boot:        120,
		Headroom:    0.95,
		ShrinkBelow: 0.5,
		MaxEpochs:   10000,
	}
}

// Validate rejects broken policies.
func (p Policy) Validate() error {
	if p.Epoch <= 0 {
		return fmt.Errorf("autoscale: non-positive epoch %v", p.Epoch)
	}
	if p.Boot < 0 || p.Boot > p.Epoch {
		return fmt.Errorf("autoscale: boot %v outside [0, epoch]", p.Boot)
	}
	if p.Headroom <= 0 || p.Headroom > 1 {
		return fmt.Errorf("autoscale: headroom %v outside (0, 1]", p.Headroom)
	}
	if p.ShrinkBelow < 0 || p.ShrinkBelow >= p.Headroom {
		return fmt.Errorf("autoscale: shrink threshold %v must sit below headroom %v", p.ShrinkBelow, p.Headroom)
	}
	if p.MaxEpochs <= 0 {
		return fmt.Errorf("autoscale: non-positive epoch bound")
	}
	return nil
}

// Step records one epoch of the trace.
type Step struct {
	At       units.Seconds
	Config   config.Tuple
	DoneFrac float64
	Added    int // nodes added at this boundary (negative = removed)
}

// Trace is a full simulated execution.
type Trace struct {
	Steps      []Step
	FinishTime units.Seconds
	TotalCost  units.USD
	Finished   bool // finished within the deadline
}

// Simulate runs the reactive policy against the analytic models,
// starting from one node of the most cost-efficient type.
func Simulate(caps *model.Capacities, space *config.Space, d units.Instructions,
	deadline units.Seconds, pol Policy) (Trace, error) {
	if err := pol.Validate(); err != nil {
		return Trace{}, err
	}
	if d <= 0 || deadline <= 0 {
		return Trace{}, fmt.Errorf("autoscale: non-positive demand or deadline")
	}
	w, nodeCost := caps.NodeArrays()
	m := len(w)
	// Efficiency order for scale decisions.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := units.PerDollar(w[order[a]], nodeCost[order[a]]), units.PerDollar(w[order[b]], nodeCost[order[b]])
		if ea != eb {
			return ea > eb
		}
		return order[a] < order[b]
	})

	counts := make([]int, m)
	counts[order[0]] = 1
	capacityOf := func() units.Rate {
		var u units.Rate
		for i, c := range counts {
			u += units.Rate(c) * w[i]
		}
		return u
	}
	unitCostOf := func() units.USDPerHour {
		var cu units.USDPerHour
		for i, c := range counts {
			cu += units.USDPerHour(c) * nodeCost[i]
		}
		return cu
	}

	var tr Trace
	remaining := d
	var now units.Seconds
	for epoch := 0; epoch < pol.MaxEpochs && remaining > 0; epoch++ {
		if now >= deadline {
			break
		}
		timeLeft := deadline - now
		u := capacityOf()

		// Reactive decision: scale up until the projection fits, then
		// maybe shrink.
		added := 0
		for units.Time(remaining, capacityOf()) > units.Seconds(pol.Headroom)*timeLeft {
			grew := false
			for _, i := range order {
				if counts[i] < space.Max(i) {
					counts[i]++
					added++
					grew = true
					break
				}
			}
			if !grew {
				break // cluster maxed out; run what we have
			}
		}
		if added == 0 && pol.ShrinkBelow > 0 {
			// Shrink one least-efficient node if still comfortably early.
			for k := len(order) - 1; k >= 0; k-- {
				i := order[k]
				if counts[i] == 0 {
					continue
				}
				uWithout := capacityOf() - w[i]
				if uWithout > 0 && units.Time(remaining, uWithout) < units.Seconds(pol.ShrinkBelow)*timeLeft {
					counts[i]--
					added--
				}
				break
			}
		}

		tuple, err := config.NewTuple(counts)
		if err != nil {
			return Trace{}, err
		}
		tr.Steps = append(tr.Steps, Step{
			At:       now,
			Config:   tuple,
			DoneFrac: 1 - float64(remaining/d),
			Added:    added,
		})

		// Execute the epoch: newly added nodes boot first.
		u = capacityOf()
		effEpoch := pol.Epoch
		work := u.Over(effEpoch)
		if added > 0 {
			var addedCap units.Rate
			// The nodes added this boundary are the first `added` in
			// efficiency order with counts raised; approximate their
			// capacity as the capacity delta of this boundary.
			addedCap = u - prevCapacity(w, tr)
			if addedCap < 0 {
				addedCap = 0
			}
			work -= addedCap.Over(pol.Boot)
		}
		epochTime := effEpoch
		if work >= remaining {
			// Finishes mid-epoch.
			// Solve the boot-adjusted completion time.
			epochTime = timeToFinish(remaining, u, added, w, tr, pol)
			remaining = 0
		} else {
			remaining -= work
		}
		tr.TotalCost += unitCostOf().PerSecond().Over(epochTime)
		now += epochTime
	}
	tr.FinishTime = now
	tr.Finished = remaining <= 0 && now <= deadline
	return tr, nil
}

// prevCapacity reports the capacity of the configuration before this
// boundary's additions (the previous step's tuple).
func prevCapacity(w []units.Rate, tr Trace) units.Rate {
	if len(tr.Steps) < 2 {
		return 0
	}
	prev := tr.Steps[len(tr.Steps)-2].Config
	var u units.Rate
	for i := 0; i < prev.Len(); i++ {
		u += units.Rate(prev.Count(i)) * w[i]
	}
	return u
}

// timeToFinish solves for the within-epoch completion time given that
// freshly added capacity only contributes after boot.
func timeToFinish(remaining units.Instructions, u units.Rate, added int, w []units.Rate, tr Trace, pol Policy) units.Seconds {
	if added <= 0 {
		return units.Time(remaining, u)
	}
	uOld := prevCapacity(w, tr)
	boot := pol.Boot
	// Phase 1: only the old capacity runs.
	if remaining <= uOld.Over(boot) {
		if uOld <= 0 {
			return boot + units.Time(remaining, u)
		}
		return units.Time(remaining, uOld)
	}
	return boot + units.Time(remaining-uOld.Over(boot), u)
}

// CompareStatic reports the autoscaler's cost premium over a static
// optimal configuration's cost, in percent.
func CompareStatic(tr Trace, static units.USD) float64 {
	if static <= 0 {
		return math.NaN()
	}
	return (float64(tr.TotalCost/static) - 1) * 100
}
