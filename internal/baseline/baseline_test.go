package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// randomSetup builds a random catalog/capacity/space triple.
func randomSetup(t *testing.T, rng *rand.Rand) (*model.Capacities, *config.Space) {
	t.Helper()
	nTypes := 2 + rng.Intn(5)
	var types []ec2.InstanceType
	for i := 0; i < nTypes; i++ {
		types = append(types, ec2.InstanceType{
			Name:     fmt.Sprintf("t%d", i),
			Category: ec2.Category(fmt.Sprintf("cat%d", i%3)),
			VCPUs:    1 << uint(rng.Intn(3)),
			BaseGHz:  1 + 2*rng.Float64(),
			Price:    units.USDPerHour(0.05 + rng.Float64()),
		})
	}
	cat, err := ec2.NewCatalog(types)
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]units.Rate, nTypes)
	for i := range rates {
		rates[i] = units.GIPS(0.5 + 3*rng.Float64())
	}
	caps, err := model.New(cat, rates)
	if err != nil {
		t.Fatal(err)
	}
	limits := make([]int, nTypes)
	for i := range limits {
		limits[i] = 1 + rng.Intn(4)
	}
	space, err := config.NewSpace(limits)
	if err != nil {
		t.Fatal(err)
	}
	return caps, space
}

// exhaustiveMinCost is the trusted oracle.
func exhaustiveMinCost(caps *model.Capacities, space *config.Space, d units.Instructions,
	deadline units.Seconds) (model.Prediction, bool) {
	best := model.Prediction{Cost: units.USD(math.Inf(1))}
	found := false
	space.ForEach(func(tp config.Tuple) bool {
		pred := caps.Predict(d, tp)
		if float64(pred.Time) < float64(deadline) && pred.Cost < best.Cost {
			best = pred
			found = true
		}
		return true
	})
	return best, found
}

func TestBranchBoundExactRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		caps, space := randomSetup(t, rng)
		// Max capacity for feasibility scaling.
		var maxU float64
		space.ForEach(func(tp config.Tuple) bool {
			if u := float64(caps.Capacity(tp)); u > maxU {
				maxU = u
			}
			return true
		})
		deadline := units.Seconds(3600 * (1 + 10*rng.Float64()))
		d := units.Instructions(maxU * (0.1 + 0.85*rng.Float64()) * float64(deadline))
		want, okWant := exhaustiveMinCost(caps, space, d, deadline)
		got, okGot := BranchBoundMinCost(caps, space, d, deadline)
		if okWant != okGot {
			t.Fatalf("trial %d: feasibility mismatch bb=%v exhaustive=%v", trial, okGot, okWant)
		}
		if !okWant {
			continue
		}
		if math.Abs(float64(got.Cost-want.Cost)) > 1e-9*math.Max(1, float64(want.Cost)) {
			t.Fatalf("trial %d: branch-and-bound %v != exhaustive %v (%v vs %v)",
				trial, got.Cost, want.Cost, got.Config, want.Config)
		}
	}
}

func TestGreedyFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	var worstGap float64
	for trial := 0; trial < 60; trial++ {
		caps, space := randomSetup(t, rng)
		var maxU float64
		space.ForEach(func(tp config.Tuple) bool {
			if u := float64(caps.Capacity(tp)); u > maxU {
				maxU = u
			}
			return true
		})
		deadline := units.Seconds(3600 * 5)
		d := units.Instructions(maxU * (0.1 + 0.8*rng.Float64()) * float64(deadline))
		exact, okE := exhaustiveMinCost(caps, space, d, deadline)
		greedy, okG := GreedyMinCost(caps, space, d, deadline)
		if okE && !okG {
			t.Fatalf("trial %d: greedy failed on a feasible problem", trial)
		}
		if !okG {
			continue
		}
		if float64(greedy.Time) >= float64(deadline) {
			t.Fatalf("trial %d: greedy missed the deadline", trial)
		}
		gap := Gap(greedy, exact)
		if gap < -1e-9 {
			t.Fatalf("trial %d: greedy (%v) beats the exact optimum (%v)?", trial, greedy.Cost, exact.Cost)
		}
		if gap > worstGap {
			worstGap = gap
		}
	}
	if worstGap == 0 {
		t.Log("greedy matched the optimum on every trial (unusual but not wrong)")
	}
	// Sanity: the heuristic should not be catastrophically bad.
	if worstGap > 150 {
		t.Fatalf("greedy worst-case gap %.1f%% is implausibly large", worstGap)
	}
}

func TestBranchBoundOnPaperProblem(t *testing.T) {
	// The paper setup: branch-and-bound must agree with CELIA's
	// decomposed search on the Figure 4 problem.
	eng := core.NewPaperEngine(galaxy.App{})
	p := workload.Params{N: 65536, A: 8000}
	deadline := units.FromHours(24)
	d, err := eng.Demand(p)
	if err != nil {
		t.Fatal(err)
	}
	bb, ok := BranchBoundMinCost(eng.Capacities(), eng.Space(), d, deadline)
	if !ok {
		t.Fatal("branch-and-bound found nothing")
	}
	celia, okC, err := eng.MinCostForDeadline(p, deadline)
	if err != nil || !okC {
		t.Fatal(okC, err)
	}
	if math.Abs(float64(bb.Cost-celia.Cost)) > 1e-9 {
		t.Fatalf("branch-and-bound %v != CELIA %v", bb.Cost, celia.Cost)
	}
}

func TestGreedyOnPaperProblem(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	p := workload.Params{N: 65536, A: 8000}
	d, err := eng.Demand(p)
	if err != nil {
		t.Fatal(err)
	}
	greedy, ok := GreedyMinCost(eng.Capacities(), eng.Space(), d, units.FromHours(24))
	if !ok {
		t.Fatal("greedy found nothing")
	}
	celia, _, err := eng.MinCostForDeadline(p, units.FromHours(24))
	if err != nil {
		t.Fatal(err)
	}
	gap := Gap(greedy, celia)
	if gap < 0 || gap > 25 {
		t.Fatalf("greedy gap on the paper problem = %.1f%%", gap)
	}
}

func TestInfeasibleInputs(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	d := units.Instructions(1e22) // beyond any capacity at this deadline
	if _, ok := GreedyMinCost(eng.Capacities(), eng.Space(), d, units.FromHours(1)); ok {
		t.Fatal("greedy claimed feasibility")
	}
	if _, ok := BranchBoundMinCost(eng.Capacities(), eng.Space(), d, units.FromHours(1)); ok {
		t.Fatal("branch-and-bound claimed feasibility")
	}
	if _, ok := GreedyMinCost(eng.Capacities(), eng.Space(), 1, 0); ok {
		t.Fatal("zero deadline accepted")
	}
	if _, ok := BranchBoundMinCost(eng.Capacities(), eng.Space(), 1, 0); ok {
		t.Fatal("zero deadline accepted")
	}
}

func TestGapHelper(t *testing.T) {
	h := model.Prediction{Cost: 110}
	e := model.Prediction{Cost: 100}
	if g := Gap(h, e); math.Abs(g-10) > 1e-9 {
		t.Fatalf("Gap = %v, want 10", g)
	}
	if g := Gap(h, model.Prediction{}); g != 0 {
		t.Fatalf("Gap with zero exact = %v", g)
	}
}
