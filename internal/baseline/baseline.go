// Package baseline implements alternative configuration-selection
// algorithms to compare CELIA's exhaustive/decomposed search against,
// mirroring the related-work approaches the paper cites: integer
// programming formulations (Kokkinos [13], Sharma [24]) stand in as an
// exact branch-and-bound over node counts, and the folk heuristic —
// greedily buy the most cost-efficient capacity — as the baseline a
// practitioner would try first.
//
// All solvers answer the same query as core.MinCostForDeadline:
// minimize predicted cost C = D·C_u/U subject to U ≥ D/T′.
package baseline

import (
	"math"
	"sort"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/units"
)

// GreedyMinCost buys nodes of the best instructions-per-dollar type
// first, moving to the next-best type when the limit is reached, until
// the deadline's capacity requirement is met. It is fast and usually
// good, but provably suboptimal in general: the last node bought can
// overshoot where a cheaper mix exists.
func GreedyMinCost(caps *model.Capacities, space *config.Space, d units.Instructions,
	deadline units.Seconds) (model.Prediction, bool) {
	if deadline <= 0 {
		return model.Prediction{}, false
	}
	uReq := float64(d) / float64(deadline)
	w, cost := rawArrays(caps)
	order := make([]int, len(w))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea := w[order[a]] / cost[order[a]]
		eb := w[order[b]] / cost[order[b]]
		if ea != eb {
			return ea > eb
		}
		return order[a] < order[b]
	})
	counts := make([]int, len(w))
	var u float64
	for _, i := range order {
		for counts[i] < space.Max(i) && u < uReq {
			counts[i]++
			u += w[i]
		}
		if u >= uReq {
			break
		}
	}
	if u < uReq {
		return model.Prediction{}, false
	}
	t, err := config.NewTuple(counts)
	if err != nil {
		return model.Prediction{}, false
	}
	pred := caps.Predict(d, t)
	if float64(pred.Time) >= float64(deadline) {
		// Capacity met uReq but strict inequality can fail on the
		// boundary; add one more cheapest node if possible.
		for _, i := range order {
			if counts[i] < space.Max(i) {
				counts[i]++
				t, err = config.NewTuple(counts)
				if err != nil {
					return model.Prediction{}, false
				}
				pred = caps.Predict(d, t)
				break
			}
		}
		if float64(pred.Time) >= float64(deadline) {
			return model.Prediction{}, false
		}
	}
	return pred, true
}

// BranchBoundMinCost solves the same problem exactly by depth-first
// search over node counts with a fractional lower bound: any partial
// configuration's remaining capacity can be completed at best at the
// best remaining efficiency, which bounds the final cost from below
// and prunes dominated branches. Exactness is certified against the
// exhaustive scan in tests.
func BranchBoundMinCost(caps *model.Capacities, space *config.Space, d units.Instructions,
	deadline units.Seconds) (model.Prediction, bool) {
	if deadline <= 0 {
		return model.Prediction{}, false
	}
	df := float64(d)
	uReq := df / float64(deadline)
	w, cost := rawArrays(caps)
	m := len(w)

	// bestEff[i]: the best capacity-per-dollar among types i..m-1 —
	// the completion efficiency bound for a branch at depth i.
	bestEff := make([]float64, m+1)
	for i := m - 1; i >= 0; i-- {
		e := w[i] / cost[i]
		bestEff[i] = math.Max(bestEff[i+1], e)
	}

	bestCost := math.Inf(1)
	var bestTuple config.Tuple
	found := false
	counts := make([]int, m)

	var dfs func(i int, u, cu float64)
	dfs = func(i int, u, cu float64) {
		if u > uReq {
			// Feasible already (strict time constraint holds:
			// u > uReq ⇒ T < T′).
			c := df * cu / u / 3600
			if c < bestCost {
				if t, err := config.NewTuple(counts); err == nil {
					bestCost = c
					bestTuple = t
					found = true
				}
			}
			// Adding more nodes can still reduce cost only if a
			// remaining type beats the current mix's efficiency; the
			// bound below handles that, so fall through.
		}
		if i == m {
			return
		}
		// Lower bound: complete with x ≥ max(0, uReq−u) capacity at
		// efficiency bestEff[i] (price per capacity 1/bestEff). The
		// bound function D·(cu + x/e)/ (u+x)/3600 is monotone in x with
		// sign e·u − ... : evaluate at both candidate extremes.
		e := bestEff[i]
		var lb float64
		if e <= 0 {
			if u <= uReq {
				return // cannot complete
			}
			lb = df * cu / u / 3600
		} else {
			xMin := math.Max(0, uReq-u)
			atXMin := df * (cu + xMin/e) / (u + xMin) / 3600
			asymptote := df / e / 3600
			lb = math.Min(atXMin, asymptote)
			if u+xMin <= 0 {
				lb = asymptote
			}
		}
		if lb >= bestCost {
			return
		}
		for k := 0; k <= space.Max(i); k++ {
			counts[i] = k
			dfs(i+1, u+float64(k)*w[i], cu+float64(k)*cost[i])
		}
		counts[i] = 0
	}
	dfs(0, 0, 0)
	if !found {
		return model.Prediction{}, false
	}
	return caps.Predict(d, bestTuple), true
}

// Gap reports the relative cost excess of a heuristic answer over the
// exact one, in percent.
func Gap(heuristic, exact model.Prediction) float64 {
	if exact.Cost <= 0 {
		return 0
	}
	return (float64(heuristic.Cost)/float64(exact.Cost) - 1) * 100
}

// rawArrays unwraps the typed capacity/cost arrays into plain float64
// slices: the search kernels here treat both axes as opaque objective
// coordinates, and keeping their inner loops raw keeps them byte-
// identical with the published comparisons.
func rawArrays(caps *model.Capacities) (w, cost []float64) {
	wT, costT := caps.NodeArrays()
	w = make([]float64, len(wT))
	cost = make([]float64, len(costT))
	for i := range wT {
		w[i] = float64(wT[i])
		cost[i] = float64(costT[i])
	}
	return w, cost
}
