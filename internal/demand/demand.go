// Package demand represents application resource-demand models
// D_{P_{n,a}}: the total retired instructions an elastic application
// needs as a function of problem size n and accuracy a. CELIA fits
// these models from baseline measurements (internal/fit) and feeds them
// to the time model (Eq. 2).
package demand

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/units"
	"repro/internal/workload"
)

// Basis is one term of a demand model: a named function of (n, a).
type Basis struct {
	Name string
	Eval func(n, a float64) float64
}

// Standard basis constructors. Demand laws in the paper's applications
// are all proportional to problem size or its square, with accuracy
// entering linearly, quadratically, or logarithmically.
func N() Basis  { return Basis{"n", func(n, a float64) float64 { return n }} }
func N2() Basis { return Basis{"n^2", func(n, a float64) float64 { return n * n }} }
func NA() Basis {
	return Basis{"n*a", func(n, a float64) float64 { return n * a }}
}
func N2A() Basis {
	return Basis{"n^2*a", func(n, a float64) float64 { return n * n * a }}
}
func NA2() Basis {
	return Basis{"n*a^2", func(n, a float64) float64 { return n * a * a }}
}
func NLog(scale float64) Basis {
	return Basis{
		Name: fmt.Sprintf("n*ln(1+%g*a)", scale),
		Eval: func(n, a float64) float64 { return n * math.Log(1+scale*a) },
	}
}
func Const() Basis { return Basis{"1", func(n, a float64) float64 { return 1 }} }

// ParseBasis resolves a basis from its Name — the inverse of the
// constructors above, used to rebuild persisted models. Unknown names
// are an error.
func ParseBasis(name string) (Basis, error) {
	switch name {
	case "1":
		return Const(), nil
	case "n":
		return N(), nil
	case "n^2":
		return N2(), nil
	case "n*a":
		return NA(), nil
	case "n^2*a":
		return N2A(), nil
	case "n*a^2":
		return NA2(), nil
	}
	var scale float64
	if _, err := fmt.Sscanf(name, "n*ln(1+%g*a)", &scale); err == nil && scale > 0 {
		return NLog(scale), nil
	}
	return Basis{}, fmt.Errorf("demand: unknown basis %q", name)
}

// Model is a fitted (or analytically specified) demand function:
// D(n,a) = Σ_k Coeffs[k] · Bases[k](n,a).
type Model struct {
	AppName string
	Bases   []Basis
	Coeffs  []float64
	R2      float64 // goodness of fit (1 for analytic models)
	source  func(n, a float64) units.Instructions
}

// FromFit builds a model from fitted coefficients.
func FromFit(appName string, bases []Basis, coeffs []float64, r2 float64) (Model, error) {
	if len(bases) == 0 || len(bases) != len(coeffs) {
		return Model{}, fmt.Errorf("demand: %d bases vs %d coefficients", len(bases), len(coeffs))
	}
	return Model{AppName: appName, Bases: bases, Coeffs: coeffs, R2: r2}, nil
}

// FromFunc wraps an arbitrary demand function (used for ground-truth
// models in tests and for the analytic forms of the apps).
func FromFunc(appName string, f func(n, a float64) float64) Model {
	return Model{AppName: appName, R2: 1, source: func(n, a float64) units.Instructions {
		return units.Instructions(f(n, a))
	}}
}

// FromApp wraps an application's ground-truth demand law.
func FromApp(app workload.App) Model {
	return Model{AppName: app.Name(), R2: 1, source: func(n, a float64) units.Instructions {
		return app.Demand(workload.Params{N: n, A: a})
	}}
}

// Demand evaluates the model at p. Negative predictions (possible from
// a fit extrapolated far outside its data) are clamped to zero.
func (m Model) Demand(p workload.Params) units.Instructions {
	if m.source != nil {
		if d := m.source(p.N, p.A); d > 0 {
			return d
		}
		return 0
	}
	var d float64
	for k, b := range m.Bases {
		d += m.Coeffs[k] * b.Eval(p.N, p.A)
	}
	if d < 0 {
		return 0
	}
	return units.Instructions(d)
}

// Form renders the model as a human-readable formula.
func (m Model) Form() string {
	if m.source != nil {
		return m.AppName + ": analytic"
	}
	terms := make([]string, len(m.Bases))
	for k, b := range m.Bases {
		terms[k] = fmt.Sprintf("%.4g·%s", m.Coeffs[k], b.Name)
	}
	return fmt.Sprintf("D(n,a) = %s", strings.Join(terms, " + "))
}

func (m Model) String() string {
	return fmt.Sprintf("%s demand model (R²=%.4f): %s", m.AppName, m.R2, m.Form())
}
