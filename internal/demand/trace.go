// Demand traces: demand that varies over time. The paper's queries are
// one-shot — a single (n, a) point against a deadline or budget — but
// the elasticity setting it positions itself in is continuous: an
// application whose problem size changes from timestep to timestep and
// whose configuration must follow. A Trace is the versioned on-disk
// form of that setting, and the seeded generators below synthesize the
// three canonical shapes of the elasticity literature (diurnal cycle,
// flash crowd, capacity ramp) deterministically from a seed.
package demand

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/detrand"
	"repro/internal/units"
	"repro/internal/workload"
)

// TraceVersion is the demand-trace format version this build writes,
// and the only one it accepts.
const TraceVersion = 1

// MaxTraceSteps bounds the horizon a single trace may carry. The
// schedule solver is O(steps · candidates²); 100k five-minute steps is
// most of a year, far past where a static plan stays credible.
const MaxTraceSteps = 100_000

// Trace is a fixed-interval demand trace: every Step seconds the
// application is handed a new problem of size N[t] at the shared
// accuracy A, and must finish it within the step. Carrying problem
// sizes rather than raw instruction counts keeps the trace independent
// of any one demand model — the engine's fitted model converts (n, a)
// to instructions, and the Monte-Carlo risk estimator can replay the
// same (n, a) against the real application.
type Trace struct {
	Version int           `json:"version"`
	App     string        `json:"app,omitempty"`  // intended application, advisory
	Name    string        `json:"name,omitempty"` // human label for reports
	Step    units.Seconds `json:"step_seconds"`
	A       float64       `json:"a"`       // shared accuracy parameter
	N       []float64     `json:"steps_n"` // problem size per step; 0 = idle step
}

// Validate checks the trace is well-formed: the supported version, a
// positive step length, 1..MaxTraceSteps steps, and finite,
// non-negative problem sizes. Whether each (n, a) lies inside an
// application's domain is the engine's concern, not the format's.
func (tr Trace) Validate() error {
	if tr.Version != TraceVersion {
		return fmt.Errorf("demand: trace version %d, want %d", tr.Version, TraceVersion)
	}
	if !(tr.Step > 0) || tr.Step.IsInf() {
		return fmt.Errorf("demand: trace step %v, want a positive finite duration", tr.Step)
	}
	if len(tr.N) == 0 {
		return fmt.Errorf("demand: trace has no steps")
	}
	if len(tr.N) > MaxTraceSteps {
		return fmt.Errorf("demand: trace has %d steps, cap is %d", len(tr.N), MaxTraceSteps)
	}
	if math.IsNaN(tr.A) || math.IsInf(tr.A, 0) {
		return fmt.Errorf("demand: trace accuracy %v is not finite", tr.A)
	}
	for t, n := range tr.N {
		if math.IsNaN(n) || math.IsInf(n, 0) || n < 0 {
			return fmt.Errorf("demand: step %d problem size %v, want finite and >= 0", t, n)
		}
	}
	return nil
}

// Steps reports the number of timesteps.
func (tr Trace) Steps() int { return len(tr.N) }

// Horizon reports the total covered duration.
func (tr Trace) Horizon() units.Seconds {
	return units.Seconds(float64(len(tr.N))) * tr.Step
}

// Params returns step t's workload parameters.
func (tr Trace) Params(t int) workload.Params {
	return workload.Params{N: tr.N[t], A: tr.A}
}

// Hash fingerprints the demand-relevant content of the trace (version,
// step length, accuracy, and the exact bit patterns of every problem
// size — not the advisory name fields) as 16 hex digits. Serving uses
// it as the cache-key component for POST /v1/schedule.
func (tr Trace) Hash() string {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(tr.Version))
	// Hash the step through the dimension-free accessor: /3600 is exact
	// in binary-float terms only for some steps, but any fixed injective
	// mapping works — the hash just has to be stable across processes.
	word(math.Float64bits(tr.Step.Hours()))
	word(math.Float64bits(tr.A))
	word(uint64(len(tr.N)))
	for _, n := range tr.N {
		word(math.Float64bits(n))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Encode writes the trace as indented JSON.
func (tr Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// DecodeTrace reads one JSON trace, rejecting unknown fields and
// validating the result, so a schema typo fails loudly instead of
// silently zeroing a field.
func DecodeTrace(r io.Reader) (Trace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tr Trace
	if err := dec.Decode(&tr); err != nil {
		return Trace{}, fmt.Errorf("demand: decoding trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// DiurnalSpec parameterizes a day/night demand cycle: problem size
// swings sinusoidally between BaseN (trough) and PeakN (peak) with
// period Period steps, plus multiplicative Gaussian jitter.
type DiurnalSpec struct {
	Steps  int
	Step   units.Seconds
	A      float64
	BaseN  float64
	PeakN  float64
	Period int     // steps per cycle; 0 means one cycle over the whole trace
	Jitter float64 // multiplicative noise: n ·= 1 + Jitter·Normal()
	Seed   uint64
}

// Diurnal synthesizes a diurnal trace. Deterministic for a fixed spec.
func Diurnal(spec DiurnalSpec) Trace {
	period := spec.Period
	if period <= 0 {
		period = spec.Steps
	}
	rng := detrand.New(detrand.Mix(spec.Seed, 0))
	tr := Trace{
		Version: TraceVersion,
		Name:    "diurnal",
		Step:    spec.Step,
		A:       spec.A,
		N:       make([]float64, spec.Steps),
	}
	for t := range tr.N {
		// Trough at t=0: phase rises from 0 to 1 and back each period.
		phase := 0.5 - 0.5*math.Cos(2*math.Pi*float64(t%period)/float64(period))
		n := spec.BaseN + (spec.PeakN-spec.BaseN)*phase
		tr.N[t] = jitter(n, spec.Jitter, rng)
	}
	return tr
}

// BurstySpec parameterizes a flash-crowd trace: a flat baseline with
// randomly arriving bursts that decay geometrically — the shape
// reactive scaling handles worst, since capacity lags the onset.
type BurstySpec struct {
	Steps  int
	Step   units.Seconds
	A      float64
	BaseN  float64
	BurstN float64 // size added to the burst level at each onset
	Onset  float64 // per-step probability of a new burst
	Decay  int     // steps for a burst to halve; <=0 means 1
	Jitter float64
	Seed   uint64
}

// Bursty synthesizes a flash-crowd trace. Deterministic for a fixed
// spec.
func Bursty(spec BurstySpec) Trace {
	decaySteps := spec.Decay
	if decaySteps <= 0 {
		decaySteps = 1
	}
	decay := math.Exp2(-1 / float64(decaySteps))
	rng := detrand.New(detrand.Mix(spec.Seed, 1))
	tr := Trace{
		Version: TraceVersion,
		Name:    "bursty",
		Step:    spec.Step,
		A:       spec.A,
		N:       make([]float64, spec.Steps),
	}
	level := 0.0
	for t := range tr.N {
		level *= decay
		if rng.Float64() < spec.Onset {
			level += spec.BurstN
		}
		tr.N[t] = jitter(spec.BaseN+level, spec.Jitter, rng)
	}
	return tr
}

// RampSpec parameterizes a linear growth (or drain) trace from FromN
// to ToN across the horizon.
type RampSpec struct {
	Steps  int
	Step   units.Seconds
	A      float64
	FromN  float64
	ToN    float64
	Jitter float64
	Seed   uint64
}

// Ramp synthesizes a linear-ramp trace. Deterministic for a fixed spec.
func Ramp(spec RampSpec) Trace {
	rng := detrand.New(detrand.Mix(spec.Seed, 2))
	tr := Trace{
		Version: TraceVersion,
		Name:    "ramp",
		Step:    spec.Step,
		A:       spec.A,
		N:       make([]float64, spec.Steps),
	}
	den := float64(spec.Steps - 1)
	for t := range tr.N {
		frac := 0.0
		if den > 0 {
			frac = float64(t) / den
		}
		tr.N[t] = jitter(spec.FromN+(spec.ToN-spec.FromN)*frac, spec.Jitter, rng)
	}
	return tr
}

// jitter applies multiplicative Gaussian noise and clamps at zero. It
// always consumes one deviate so a step's value depends only on its
// index, not on earlier steps' jitter settings.
func jitter(n, frac float64, rng *detrand.Source) float64 {
	g := rng.NormFloat64()
	if frac == 0 {
		return n
	}
	n *= 1 + frac*g
	if n < 0 {
		return 0
	}
	return n
}

// GoldenDiurnal is the pinned 1,000-step diurnal trace shared by the
// schedule golden tests and cmd/celia-bench's schedule-solve rung:
// 3½ simulated days of five-minute steps of the galaxy application,
// swinging between a trough one cheap node covers and a peak that
// needs a large slice of the paper catalog. Regenerating it with the
// same spec is bit-identical; the golden tests pin its Hash.
func GoldenDiurnal() Trace {
	tr := Diurnal(DiurnalSpec{
		Steps:  1000,
		Step:   300,
		A:      50,
		BaseN:  6_000,
		PeakN:  60_000,
		Period: 288, // 24 h of 5-minute steps
		Jitter: 0.04,
		Seed:   0x20170417, // the paper's ICPP-2017 vintage
	})
	tr.App = "galaxy"
	tr.Name = "golden-diurnal"
	return tr
}
