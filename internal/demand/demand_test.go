package demand

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/workload"
)

func TestBasisEvaluation(t *testing.T) {
	cases := []struct {
		b    Basis
		n, a float64
		want float64
	}{
		{N(), 3, 5, 3},
		{N2(), 3, 5, 9},
		{NA(), 3, 5, 15},
		{N2A(), 3, 5, 45},
		{NA2(), 3, 5, 75},
		{Const(), 3, 5, 1},
		{NLog(1), 2, math.E - 1, 2},
	}
	for _, c := range cases {
		if got := c.b.Eval(c.n, c.a); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s(%g,%g) = %v, want %v", c.b.Name, c.n, c.a, got, c.want)
		}
	}
}

func TestFromFitEvaluates(t *testing.T) {
	m, err := FromFit("syn", []Basis{N(), NA()}, []float64{10, 2}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(m.Demand(workload.Params{N: 3, A: 4}))
	if got != 10*3+2*12 {
		t.Fatalf("Demand = %v, want 54", got)
	}
}

func TestFromFitValidation(t *testing.T) {
	if _, err := FromFit("syn", []Basis{N()}, []float64{1, 2}, 0); err == nil {
		t.Fatal("mismatched bases/coeffs accepted")
	}
	if _, err := FromFit("syn", nil, nil, 0); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestNegativeClamped(t *testing.T) {
	m, err := FromFit("syn", []Basis{N()}, []float64{-5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(m.Demand(workload.Params{N: 10, A: 1})); got != 0 {
		t.Fatalf("negative demand = %v, want clamp to 0", got)
	}
}

func TestFromApp(t *testing.T) {
	m := FromApp(galaxy.App{})
	p := workload.Params{N: 1000, A: 10}
	if m.Demand(p) != (galaxy.App{}).Demand(p) {
		t.Fatal("FromApp does not match the app's demand law")
	}
	if m.R2 != 1 {
		t.Fatalf("analytic model R2 = %v, want 1", m.R2)
	}
	if !strings.Contains(m.Form(), "analytic") {
		t.Fatalf("Form() = %q", m.Form())
	}
}

func TestFormRendersTerms(t *testing.T) {
	m, err := FromFit("syn", []Basis{NA(), N2A()}, []float64{5000, 262}, 1)
	if err != nil {
		t.Fatal(err)
	}
	form := m.Form()
	if !strings.Contains(form, "n*a") || !strings.Contains(form, "n^2*a") || !strings.Contains(form, "262") {
		t.Fatalf("Form() = %q", form)
	}
	if !strings.Contains(m.String(), "R²") {
		t.Fatalf("String() = %q", m.String())
	}
}

func TestParseBasisRoundTrip(t *testing.T) {
	for _, b := range []Basis{Const(), N(), N2(), NA(), N2A(), NA2(), NLog(99), NLog(10), NLog(1)} {
		got, err := ParseBasis(b.Name)
		if err != nil {
			t.Fatalf("ParseBasis(%q): %v", b.Name, err)
		}
		if got.Name != b.Name {
			t.Fatalf("round trip %q -> %q", b.Name, got.Name)
		}
		// Same function values.
		for _, p := range [][2]float64{{3, 5}, {1024, 0.32}} {
			if math.Abs(got.Eval(p[0], p[1])-b.Eval(p[0], p[1])) > 1e-12 {
				t.Fatalf("%q evaluates differently after parsing", b.Name)
			}
		}
	}
}

func TestParseBasisRejectsUnknown(t *testing.T) {
	for _, name := range []string{"", "n^3", "exp(a)", "n*ln(1+-5*a)", "n*ln(1+0*a)"} {
		if _, err := ParseBasis(name); err == nil {
			t.Errorf("ParseBasis(%q) accepted", name)
		}
	}
}
