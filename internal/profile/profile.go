// Package profile orchestrates CELIA's measurement-driven
// characterization (paper §III-A, §IV-A/B/C):
//
//  1. Demand: scale-down baseline runs of P_{n',a'} on the local server
//     under simulated perf counters, regressed into a demand model.
//  2. Capacity: the same scale-down problem timed on single cloud
//     instances; measured local instruction count divided by measured
//     cloud time and vCPU count yields W_i,vCPU per type, with
//     virtualization overhead folded in (the paper's point: no
//     separate overhead term is needed).
//  3. The §IV-C optimization: profile only one type per category and
//     share its per-vCPU rate, justified by the flat per-dollar
//     performance within a category.
package profile

import (
	"fmt"

	"repro/internal/cloudsim"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/ec2"
	"repro/internal/fit"
	"repro/internal/localserver"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// Profiler bundles the measurement substrates.
type Profiler struct {
	Server  *localserver.Server
	Catalog *ec2.Catalog
	SimOpts cloudsim.Options

	// localCache memoizes local-server measurements: kernels re-execute
	// real computation, and characterization reuses the same probe
	// points repeatedly.
	localCache map[string]localserver.Measurement
}

// New returns a profiler with the paper's setup: a Xeon E5-2630 v4
// local server and the Oregon catalog.
func New() *Profiler {
	return &Profiler{
		Server:     localserver.NewXeonE52630v4(),
		Catalog:    ec2.Oregon(),
		SimOpts:    cloudsim.DefaultOptions(),
		localCache: make(map[string]localserver.Measurement),
	}
}

// measureLocal is a memoizing wrapper around Server.Measure.
func (pf *Profiler) measureLocal(app workload.App, p workload.Params) (localserver.Measurement, error) {
	key := fmt.Sprintf("%s|%g|%g", app.Name(), p.N, p.A)
	if pf.localCache != nil {
		if m, ok := pf.localCache[key]; ok {
			return m, nil
		}
	}
	m, err := pf.Server.Measure(app, p)
	if err != nil {
		return localserver.Measurement{}, err
	}
	if pf.localCache != nil {
		pf.localCache[key] = m
	}
	return m, nil
}

// DemandResult is a fitted demand characterization.
type DemandResult struct {
	Fit    fit.Result
	Points []fit.Point // the baseline observations behind the fit
}

// CharacterizeDemand runs the app's baseline grid on the local server
// and selects a demand model (Figure 2's methodology).
func (pf *Profiler) CharacterizeDemand(app workload.App) (DemandResult, error) {
	grid := app.BaselineGrid()
	pts := make([]fit.Point, len(grid))
	for i, p := range grid {
		m, err := pf.measureLocal(app, p)
		if err != nil {
			return DemandResult{}, err
		}
		pts[i] = fit.Point{P: m.Params, D: m.Instructions}
	}
	r, err := fit.Select(app.Name(), pts, nil)
	if err != nil {
		return DemandResult{}, fmt.Errorf("profile: %s demand fit: %w", app.Name(), err)
	}
	return DemandResult{Fit: r, Points: pts}, nil
}

// ProfilePoint returns the scale-down problem used for capacity timing
// runs on an instance with the given vCPU count. The problem is scaled
// with the vCPU count so every probe runs for a comparable wall time —
// otherwise fixed startup would contaminate fast instances more than
// slow ones and break the flat-within-category structure §IV-C relies
// on. Galaxy scales its steps (linear in demand, constant memory);
// x264 and sand scale their problem size.
func ProfilePoint(app workload.App, vcpus int) workload.Params {
	scale := float64(vcpus) / 2 // .large is the 2-vCPU reference
	if scale < 1 {
		scale = 1
	}
	switch app.Name() {
	case "x264":
		return workload.Params{N: 8 * scale, A: 20}
	case "galaxy":
		return workload.Params{N: 2048, A: 16 * scale}
	case "sand":
		return workload.Params{N: 64e6 * scale, A: 0.32}
	default:
		d := app.Domain()
		return workload.Params{N: d.MaxBaselineN, A: d.MaxBaselineA}
	}
}

// TypeCharacterization is one row of the capacity table (Figure 3).
type TypeCharacterization struct {
	Type      ec2.InstanceType
	PerVCPU   units.Rate // measured (or shared) W_i,vCPU
	PerDollar float64    // instructions/s per $/h — Figure 3's y-axis
	Measured  bool       // false when shared from the category's probe
}

// CapacityResult is a full capacity characterization.
type CapacityResult struct {
	Capacities *model.Capacities
	Types      []TypeCharacterization
}

// CharacterizeCapacity measures W_i,vCPU for the application. With
// perCategory true it applies the §IV-C optimization: only the .large
// type of each category is timed on the cloud, the rest share its
// per-vCPU rate.
func (pf *Profiler) CharacterizeCapacity(app workload.App, perCategory bool) (CapacityResult, error) {
	measure := func(typeIdx int) (units.Rate, error) {
		typ := pf.Catalog.Type(typeIdx)
		pp := ProfilePoint(app, typ.VCPUs)
		local, err := pf.measureLocal(app, pp)
		if err != nil {
			return 0, fmt.Errorf("profile: local baseline: %w", err)
		}
		counts := make([]int, pf.Catalog.Len())
		counts[typeIdx] = 1
		tuple, err := config.NewTuple(counts)
		if err != nil {
			return 0, err
		}
		res, err := cloudsim.Run(app, pp, tuple, pf.Catalog, pf.SimOpts)
		if err != nil {
			return 0, fmt.Errorf("profile: cloud baseline on %s: %w", typ.Name, err)
		}
		return units.Rate(float64(local.Instructions) / float64(res.Makespan) / float64(typ.VCPUs)), nil
	}

	rates := make([]units.Rate, pf.Catalog.Len())
	measured := make([]bool, pf.Catalog.Len())
	if perCategory {
		for _, cat := range pf.Catalog.CategoryNames() {
			idx := pf.Catalog.ByCategory(cat)
			if len(idx) == 0 {
				continue
			}
			probe := idx[0] // catalog order puts .large first
			r, err := measure(probe)
			if err != nil {
				return CapacityResult{}, err
			}
			for _, i := range idx {
				rates[i] = r
			}
			measured[probe] = true
		}
	} else {
		for i := range rates {
			r, err := measure(i)
			if err != nil {
				return CapacityResult{}, err
			}
			rates[i] = r
			measured[i] = true
		}
	}

	caps, err := model.New(pf.Catalog, rates)
	if err != nil {
		return CapacityResult{}, err
	}
	out := CapacityResult{Capacities: caps}
	for i := 0; i < pf.Catalog.Len(); i++ {
		out.Types = append(out.Types, TypeCharacterization{
			Type:      pf.Catalog.Type(i),
			PerVCPU:   rates[i],
			PerDollar: caps.PerDollar(i),
			Measured:  measured[i],
		})
	}
	return out, nil
}

// BuildEngine runs the complete measurement pipeline for an app and
// assembles a production CELIA engine: fitted demand model, measured
// per-category capacities, and the paper's 5-nodes-per-type space.
func (pf *Profiler) BuildEngine(app workload.App) (*core.Engine, DemandResult, CapacityResult, error) {
	dr, err := pf.CharacterizeDemand(app)
	if err != nil {
		return nil, DemandResult{}, CapacityResult{}, err
	}
	cr, err := pf.CharacterizeCapacity(app, true)
	if err != nil {
		return nil, DemandResult{}, CapacityResult{}, err
	}
	space, err := config.Uniform(pf.Catalog.Len(), 5)
	if err != nil {
		return nil, DemandResult{}, CapacityResult{}, err
	}
	eng, err := core.NewEngine(cr.Capacities, dr.Fit.Model, space, app.Domain())
	if err != nil {
		return nil, DemandResult{}, CapacityResult{}, err
	}
	return eng, dr, cr, nil
}

// DemandCurve evaluates a demand model along one parameter for Figure
// 2's panels: vary N with fixed A (byN true) or vary A with fixed N.
func DemandCurve(m demand.Model, byN bool, fixed float64, values []float64) []fit.Point {
	out := make([]fit.Point, len(values))
	for i, v := range values {
		p := workload.Params{N: v, A: fixed}
		if !byN {
			p = workload.Params{N: fixed, A: v}
		}
		out[i] = fit.Point{P: p, D: m.Demand(p)}
	}
	return out
}
