package profile

import (
	"errors"
	"math"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/apps/x264"
	"repro/internal/config"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestCharacterizeDemandAllApps(t *testing.T) {
	pf := New()
	for _, c := range []struct {
		app  workload.App
		fams []string
	}{
		{x264.App{}, []string{"accuracy-quadratic", "accuracy-poly"}},
		{galaxy.App{}, []string{"size-quadratic", "size-quadratic-full"}},
		{sand.App{}, []string{"accuracy-log99"}},
	} {
		dr, err := pf.CharacterizeDemand(c.app)
		if err != nil {
			t.Fatalf("%s: %v", c.app.Name(), err)
		}
		okFam := false
		for _, f := range c.fams {
			if dr.Fit.Family == f {
				okFam = true
			}
		}
		if !okFam {
			t.Errorf("%s: selected family %s, want one of %v", c.app.Name(), dr.Fit.Family, c.fams)
		}
		if dr.Fit.Model.R2 < 0.999 {
			t.Errorf("%s: fit R2 = %v", c.app.Name(), dr.Fit.Model.R2)
		}
		if len(dr.Points) != len(c.app.BaselineGrid()) {
			t.Errorf("%s: %d points, want %d", c.app.Name(), len(dr.Points), len(c.app.BaselineGrid()))
		}
	}
}

func TestCharacterizeCapacityRecoversGroundTruth(t *testing.T) {
	// Measured W_i,vCPU must land close to (and, because startup
	// contaminates the timed run, slightly BELOW) the ground truth.
	pf := New()
	for _, app := range []workload.App{x264.App{}, galaxy.App{}, sand.App{}} {
		cr, err := pf.CharacterizeCapacity(app, false)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		truth := model.FromIPC(pf.Catalog, app)
		for i := 0; i < pf.Catalog.Len(); i++ {
			got := float64(cr.Capacities.PerVCPU(i))
			want := float64(truth.PerVCPU(i))
			if e := stats.RelErr(got, want); e > 15 {
				t.Errorf("%s/%s: measured rate off by %.1f%%", app.Name(), pf.Catalog.Type(i).Name, e)
			}
			if got > want*1.025 {
				t.Errorf("%s/%s: measured rate %v above truth %v beyond jitter",
					app.Name(), pf.Catalog.Type(i).Name, got, want)
			}
		}
	}
}

func TestPerCategoryOptimizationCloseToPerType(t *testing.T) {
	// §IV-C: per-category probing must agree with per-type probing to
	// within a few percent for every type.
	pf := New()
	app := galaxy.App{}
	full, err := pf.CharacterizeCapacity(app, false)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := pf.CharacterizeCapacity(app, true)
	if err != nil {
		t.Fatal(err)
	}
	measuredCount := 0
	for i := range cat.Types {
		if cat.Types[i].Measured {
			measuredCount++
		}
		e := stats.RelErr(float64(cat.Types[i].PerVCPU), float64(full.Types[i].PerVCPU))
		if e > 5 {
			t.Errorf("%s: per-category rate deviates %.1f%% from per-type", cat.Types[i].Type.Name, e)
		}
	}
	if measuredCount != 3 {
		t.Fatalf("per-category probing measured %d types, want 3 (one per category)", measuredCount)
	}
}

func TestFigure3Structure(t *testing.T) {
	// The measured per-dollar performance must reproduce Figure 3:
	// flat within category; across categories c4 ≈ 2× r3, m4 ≈ 1.5× r3.
	pf := New()
	cr, err := pf.CharacterizeCapacity(galaxy.App{}, false)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, tc := range cr.Types {
		byName[tc.Type.Name] = tc.PerDollar / 1e9
	}
	for _, cat := range []string{"c4", "m4", "r3"} {
		base := byName[cat+".large"]
		for _, sz := range []string{".xlarge", ".2xlarge"} {
			if e := math.Abs(byName[cat+sz]-base) / base; e > 0.05 {
				t.Errorf("%s%s per-dollar deviates %.1f%% within category", cat, sz, e*100)
			}
		}
	}
	if r := byName["c4.large"] / byName["r3.large"]; r < 1.8 || r > 2.2 {
		t.Errorf("c4/r3 per-dollar = %.2f, want ~2.0", r)
	}
	if r := byName["m4.large"] / byName["r3.large"]; r < 1.35 || r > 1.65 {
		t.Errorf("m4/r3 per-dollar = %.2f, want ~1.5", r)
	}
}

func TestProfilePointsInsideEnvelope(t *testing.T) {
	for _, app := range []workload.App{x264.App{}, galaxy.App{}, sand.App{}} {
		for _, vcpus := range []int{2, 4, 8} {
			pp := ProfilePoint(app, vcpus)
			if err := app.Domain().CheckBaseline(pp); err != nil {
				t.Errorf("%s profile point %v (%d vCPU): %v", app.Name(), pp, vcpus, err)
			}
		}
	}
}

func TestProfilePointScalesWithVCPUs(t *testing.T) {
	// Probe demand must scale ~linearly with vCPUs so probe wall time
	// stays constant across sizes within a category.
	for _, app := range []workload.App{x264.App{}, galaxy.App{}, sand.App{}} {
		d2 := float64(app.Demand(ProfilePoint(app, 2)))
		d8 := float64(app.Demand(ProfilePoint(app, 8)))
		if r := d8 / d2; r < 3.5 || r > 4.5 {
			t.Errorf("%s probe demand ratio 8v/2v = %.2f, want ~4", app.Name(), r)
		}
	}
}

func TestBuildEnginePipeline(t *testing.T) {
	pf := New()
	eng, dr, cr, err := pf.BuildEngine(galaxy.App{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Space().Size() != 10077695 {
		t.Fatalf("engine space = %d", eng.Space().Size())
	}
	if dr.Fit.Model.R2 < 0.99 || cr.Capacities == nil {
		t.Fatal("pipeline produced weak characterizations")
	}
	// The production engine must predict within a bounded band of the
	// ground-truth engine for a full-scale problem.
	p := workload.Params{N: 65536, A: 8000}
	d, err := eng.Demand(p)
	if err != nil {
		t.Fatal(err)
	}
	tp := config.MustTuple(5, 5, 5, 3, 0, 0, 0, 0, 0)
	truth := model.FromIPC(ec2.Oregon(), galaxy.App{}).Predict(galaxy.App{}.Demand(p), tp)
	got := eng.Capacities().Predict(d, tp)
	if e := stats.RelErr(float64(got.Time), float64(truth.Time)); e > 20 {
		t.Fatalf("fitted engine deviates %.1f%% from ground truth", e)
	}
	// The measurement bias is one-sided: fitted predictions run slow
	// (capacity under-measured), never fast.
	if float64(got.Time) < float64(truth.Time)*0.99 {
		t.Fatalf("fitted engine predicts faster (%v) than ground truth (%v)", got.Time, truth.Time)
	}
}

func TestDemandCurve(t *testing.T) {
	pf := New()
	dr, err := pf.CharacterizeDemand(sand.App{})
	if err != nil {
		t.Fatal(err)
	}
	curve := DemandCurve(dr.Fit.Model, false, 8e6, []float64{0.1, 0.2, 0.4, 0.8})
	if len(curve) != 4 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].D <= curve[i-1].D {
			t.Fatal("sand demand curve not increasing in t")
		}
	}
}

// failingApp wraps galaxy but refuses to execute baselines, to exercise
// the pipeline's error propagation.
type failingApp struct{ galaxy.App }

func (failingApp) Name() string { return "failing" }
func (failingApp) RunBaseline(workload.Params, *perf.Account) error {
	return errors.New("injected kernel failure")
}

func TestPipelinePropagatesKernelFailures(t *testing.T) {
	pf := New()
	if _, err := pf.CharacterizeDemand(failingApp{}); err == nil {
		t.Fatal("demand characterization swallowed a kernel failure")
	}
	if _, err := pf.CharacterizeCapacity(failingApp{}, true); err == nil {
		t.Fatal("capacity characterization swallowed a kernel failure")
	}
	if _, _, _, err := pf.BuildEngine(failingApp{}); err == nil {
		t.Fatal("BuildEngine swallowed a kernel failure")
	}
}

// narrowApp yields degenerate baseline data (a single grid point), so
// every candidate family is underdetermined.
type narrowApp struct{ galaxy.App }

func (narrowApp) Name() string { return "narrow" }
func (narrowApp) BaselineGrid() []workload.Params {
	return []workload.Params{{N: 256, A: 2}}
}

func TestDemandFitFailsOnDegenerateGrid(t *testing.T) {
	pf := New()
	if _, err := pf.CharacterizeDemand(narrowApp{}); err == nil {
		t.Fatal("single-point grid produced a fit")
	}
}
