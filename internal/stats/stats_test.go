package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinspace(t *testing.T) {
	got := Linspace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	if len(got) != len(want) {
		t.Fatalf("Linspace len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLinspaceDegenerate(t *testing.T) {
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Linspace n=1 = %v, want [3]", got)
	}
}

func TestLogspace(t *testing.T) {
	got := Logspace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Logspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLogspacePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Logspace(0, 1, 3) did not panic")
		}
	}()
	Logspace(0, 1, 3)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summarize basic fields wrong: %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 || math.Abs(s.Median-3) > 1e-12 {
		t.Fatalf("Summarize central: mean=%v median=%v, want 3", s.Mean, s.Median)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Summarize stddev = %v, want sqrt(2.5)", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := Quantile(sorted, 0); got != 10 {
		t.Fatalf("Quantile(0) = %v, want 10", got)
	}
	if got := Quantile(sorted, 1); got != 40 {
		t.Fatalf("Quantile(1) = %v, want 40", got)
	}
	if got := Quantile(sorted, 0.5); math.Abs(got-25) > 1e-12 {
		t.Fatalf("Quantile(0.5) = %v, want 25", got)
	}
}

func TestOLSRecoversLine(t *testing.T) {
	// y = 3 + 2x, exactly.
	var x [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		v := float64(i)
		x = append(x, []float64{1, v})
		y = append(y, 3+2*v)
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coeffs[0]-3) > 1e-9 || math.Abs(fit.Coeffs[1]-2) > 1e-9 {
		t.Fatalf("OLS coeffs = %v, want [3 2]", fit.Coeffs)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("OLS R2 = %v, want ~1", fit.R2)
	}
}

func TestOLSQuadratic(t *testing.T) {
	// y = 1 + 0.5x² with noise; quadratic basis should fit well.
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []float64
	for i := 1; i <= 50; i++ {
		v := float64(i)
		x = append(x, []float64{1, v * v})
		y = append(y, 1+0.5*v*v+rng.NormFloat64()*0.1)
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coeffs[1]-0.5) > 0.01 {
		t.Fatalf("quadratic coeff = %v, want ~0.5", fit.Coeffs[1])
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v, want > 0.999", fit.R2)
	}
}

func TestOLSSingular(t *testing.T) {
	// Two identical columns are collinear.
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	y := []float64{1, 2, 3}
	if _, err := OLS(x, y); err == nil {
		t.Fatal("OLS on collinear design did not fail")
	}
}

func TestOLSUnderdetermined(t *testing.T) {
	x := [][]float64{{1, 2, 3}}
	y := []float64{1}
	if _, err := OLS(x, y); err == nil {
		t.Fatal("OLS with n < k did not fail")
	}
}

func TestOLSInputValidation(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Fatal("OLS(nil, nil) did not fail")
	}
	if _, err := OLS([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("OLS ragged rows did not fail")
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("SolveLinear = %v, want [1 3]", x)
	}
}

func TestSolveLinearNeedsPivot(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("SolveLinear = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Fatal("singular system did not fail")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(21, 19); math.Abs(got-10.526315789) > 1e-6 {
		t.Fatalf("RelErr(21,19) = %v", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Fatalf("RelErr(0,0) = %v, want 0", got)
	}
	if got := RelErr(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelErr(1,0) = %v, want +Inf", got)
	}
}

// Property: OLS on exact data from a random affine model recovers it.
func TestOLSExactRecoveryProperty(t *testing.T) {
	f := func(a, b int8) bool {
		alpha, beta := float64(a), float64(b)
		var x [][]float64
		var y []float64
		for i := 0; i < 8; i++ {
			v := float64(i)
			x = append(x, []float64{1, v})
			y = append(y, alpha+beta*v)
		}
		fit, err := OLS(x, y)
		if err != nil {
			return false
		}
		return math.Abs(fit.Coeffs[0]-alpha) < 1e-6 && math.Abs(fit.Coeffs[1]-beta) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Linspace output is monotone with exact endpoints.
func TestLinspaceMonotoneProperty(t *testing.T) {
	f := func(lo, span float64, n uint8) bool {
		if math.IsNaN(lo) || math.IsNaN(span) {
			return true
		}
		lo = math.Mod(lo, 1e9)
		hi := lo + math.Abs(math.Mod(span, 1e9)) + 1
		count := int(n%50) + 2
		xs := Linspace(lo, hi, count)
		if xs[0] != lo || xs[len(xs)-1] != hi {
			return false
		}
		for i := 1; i < len(xs); i++ {
			if xs[i] < xs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
