// Package stats provides the small numerical toolkit CELIA's
// measurement-driven modeling needs: ordinary least squares over
// arbitrary basis functions, goodness-of-fit metrics, and descriptive
// summaries. Everything is stdlib-only and deterministic.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrSingular is returned when a least-squares system has no unique
// solution (collinear bases or too few observations).
var ErrSingular = errors.New("stats: singular normal equations")

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n < 2 yields a single-element slice containing lo.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Logspace returns n logarithmically spaced values from lo to hi
// inclusive. Both endpoints must be positive.
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic(fmt.Sprintf("stats: Logspace endpoints must be positive, got %g, %g", lo, hi))
	}
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	l0, l1 := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(l0 + (l1-l0)*float64(i)/float64(n-1))
	}
	out[n-1] = hi
	return out
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Stddev float64
	Median       float64
	P05, P95     float64
	Sum          float64
}

// Summarize computes descriptive statistics. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	for _, x := range xs {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(sorted, 0.5)
	s.P05 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		return sorted[0]
	}
	if hi >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Fit is the result of a least-squares regression.
type Fit struct {
	Coeffs []float64 // one per basis function
	R2     float64   // coefficient of determination
	RMSE   float64   // root mean squared residual
	BIC    float64   // Bayesian information criterion (lower is better)
	N      int       // observations used
}

// OLS solves min ‖X·β − y‖² where X[i][j] is basis j evaluated at
// observation i. It returns ErrSingular for rank-deficient systems.
func OLS(x [][]float64, y []float64) (Fit, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return Fit{}, fmt.Errorf("stats: OLS needs matching non-empty x (%d rows) and y (%d)", n, len(y))
	}
	k := len(x[0])
	if k == 0 {
		return Fit{}, errors.New("stats: OLS needs at least one basis function")
	}
	for i, row := range x {
		if len(row) != k {
			return Fit{}, fmt.Errorf("stats: OLS row %d has %d columns, want %d", i, len(row), k)
		}
	}
	if n < k {
		return Fit{}, ErrSingular
	}

	// Normal equations: (XᵀX) β = Xᵀy, solved by Gaussian elimination
	// with partial pivoting. k is tiny (≤ ~6 bases) so this is exact
	// enough and allocation-light.
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := 0; i < k; i++ {
		a[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += x[r][i] * x[r][j]
			}
			a[i][j] = s
		}
		var s float64
		for r := 0; r < n; r++ {
			s += x[r][i] * y[r]
		}
		b[i] = s
	}
	beta, err := SolveLinear(a, b)
	if err != nil {
		return Fit{}, err
	}

	// Goodness of fit.
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		var pred float64
		for j := 0; j < k; j++ {
			pred += beta[j] * x[r][j]
		}
		d := y[r] - pred
		ssRes += d * d
		dt := y[r] - meanY
		ssTot += dt * dt
	}
	fit := Fit{Coeffs: beta, N: n}
	fit.RMSE = math.Sqrt(ssRes / float64(n))
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		fit.R2 = 1
	}
	// BIC with Gaussian likelihood: n·ln(ssRes/n) + k·ln(n). Guard the
	// perfect-fit case where ssRes is zero.
	if ssRes <= 0 {
		fit.BIC = math.Inf(-1)
	} else {
		fit.BIC = float64(n)*math.Log(ssRes/float64(n)) + float64(k)*math.Log(float64(n))
	}
	return fit, nil
}

// SolveLinear solves the k×k system a·x = b by Gaussian elimination with
// partial pivoting. It mutates copies, not its arguments.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	k := len(a)
	if k == 0 || len(b) != k {
		return nil, fmt.Errorf("stats: SolveLinear dimension mismatch (%d×?, b=%d)", k, len(b))
	}
	m := make([][]float64, k)
	for i := range m {
		if len(a[i]) != k {
			return nil, fmt.Errorf("stats: SolveLinear row %d has %d columns, want %d", i, len(a[i]), k)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	rhs := append([]float64(nil), b...)

	for col := 0; col < k; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < k; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < k; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				m[r][c] -= f * m[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < k; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// RelErr returns |pred − actual| / |actual| as a percentage, matching
// Table IV's error column. A zero actual with nonzero pred yields +Inf.
func RelErr(pred, actual float64) float64 {
	if actual == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(pred-actual) / math.Abs(actual) * 100
}

// ApproxEqual reports whether a and b agree within tol: absolutely for
// small magnitudes, relatively (scaled by the larger magnitude) for
// large ones. It is the repository's approved float-equality helper —
// celia-lint's floateq rule forbids raw == / != on floats everywhere
// else, because two mathematically equal computations routinely
// disagree in the last ulp. NaN equals nothing; the exact-equality
// fast path makes equal infinities compare true.
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
