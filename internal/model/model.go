// Package model implements CELIA's analytical time and cost models
// (paper §III-B, §III-C):
//
//	T   = D_{P_{n,a}} / U_j                (Eq. 2)
//	U_j = Σ_i m_j,i · W_i                  (Eq. 3)
//	W_i = W_i,vCPU · v_i                   (Eq. 4)
//	C   = T · C_j,u                        (Eq. 5)
//	C_j,u = Σ_i m_j,i · c_i                (Eq. 6)
//
// The paper focuses on highly-parallelizable compute-intensive
// applications and deliberately omits communication overhead from the
// model; PredictWithComm provides the communication-aware extension
// used when analyzing validation error.
package model

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/ec2"
	"repro/internal/units"
	"repro/internal/workload"
)

// Capacities binds a catalog to one application's per-vCPU instruction
// execution rates W_i,vCPU (application-specific: each app has its own
// execution profile, §IV-B).
type Capacities struct {
	catalog  *ec2.Catalog
	perVCPU  []units.Rate // W_i,vCPU per catalog position
	perNode  []units.Rate // W_i = W_i,vCPU · v_i, precomputed
	nodeCost []units.USDPerHour
}

// New builds Capacities from measured per-vCPU rates, one per catalog
// position.
func New(cat *ec2.Catalog, perVCPU []units.Rate) (*Capacities, error) {
	if cat == nil {
		return nil, fmt.Errorf("model: nil catalog")
	}
	if len(perVCPU) != cat.Len() {
		return nil, fmt.Errorf("model: %d rates for %d catalog types", len(perVCPU), cat.Len())
	}
	c := &Capacities{
		catalog:  cat,
		perVCPU:  append([]units.Rate(nil), perVCPU...),
		perNode:  make([]units.Rate, cat.Len()),
		nodeCost: make([]units.USDPerHour, cat.Len()),
	}
	for i := 0; i < cat.Len(); i++ {
		if perVCPU[i] <= 0 {
			return nil, fmt.Errorf("model: non-positive rate %v for %s", perVCPU[i], cat.Type(i).Name)
		}
		typ := cat.Type(i)
		c.perNode[i] = perVCPU[i] * units.Rate(typ.VCPUs) // Eq. 4
		c.nodeCost[i] = typ.Price
	}
	return c, nil
}

// FromIPC builds the ground-truth capacities of the simulated world:
// W_i,vCPU = IPC(app, category) × base frequency. The profiling
// pipeline (internal/profile) must recover these from timed runs; tests
// compare the two.
func FromIPC(cat *ec2.Catalog, app workload.App) *Capacities {
	rates := make([]units.Rate, cat.Len())
	for i := 0; i < cat.Len(); i++ {
		typ := cat.Type(i)
		rates[i] = units.GIPS(app.IPC(typ.Category) * typ.BaseGHz)
	}
	c, err := New(cat, rates)
	if err != nil {
		panic("model: FromIPC produced invalid capacities: " + err.Error()) // unreachable: IPC > 0
	}
	return c
}

// Catalog returns the bound catalog.
func (c *Capacities) Catalog() *ec2.Catalog { return c.catalog }

// PerVCPU reports W_i,vCPU for catalog position i.
func (c *Capacities) PerVCPU(i int) units.Rate { return c.perVCPU[i] }

// W reports the per-node capacity W_i (Eq. 4).
func (c *Capacities) W(i int) units.Rate { return c.perNode[i] }

// Capacity computes U_j (Eq. 3) for a configuration.
func (c *Capacities) Capacity(t config.Tuple) units.Rate {
	var u units.Rate
	for i := 0; i < t.Len(); i++ {
		if m := t.Count(i); m > 0 {
			u += units.Rate(m) * c.perNode[i]
		}
	}
	return u
}

// UnitCost computes C_j,u (Eq. 6) for a configuration.
func (c *Capacities) UnitCost(t config.Tuple) units.USDPerHour {
	var p units.USDPerHour
	for i := 0; i < t.Len(); i++ {
		if m := t.Count(i); m > 0 {
			p += units.USDPerHour(m) * c.nodeCost[i]
		}
	}
	return p
}

// NodeArrays exposes the per-node capacity (instructions/second) and
// cost ($/hour) as typed slices for hot enumeration loops. Unit-
// agnostic kernels (baseline search, migration scoring) convert to raw
// float64 locally.
func (c *Capacities) NodeArrays() (w []units.Rate, cost []units.USDPerHour) {
	w = append([]units.Rate(nil), c.perNode...)
	cost = append([]units.USDPerHour(nil), c.nodeCost...)
	return w, cost
}

// PerDollar reports the normalized performance of catalog position i
// (instructions per second per dollar per hour) — Figure 3's metric.
func (c *Capacities) PerDollar(i int) float64 {
	return units.PerDollar(c.perNode[i], c.nodeCost[i])
}

// Billing selects the provider's charging granularity. The paper's
// cost model (Eq. 5) is continuous; 2017-era EC2 actually billed per
// started instance-hour, which snaps real costs upward. Both policies
// are supported so the billing-granularity effect can be studied.
type Billing int

const (
	// PerSecond bills exact duration (Eq. 5 verbatim; also modern EC2).
	PerSecond Billing = iota
	// PerHour bills each instance for every started hour.
	PerHour
)

func (b Billing) String() string {
	switch b {
	case PerSecond:
		return "per-second"
	case PerHour:
		return "per-hour"
	default:
		return fmt.Sprintf("Billing(%d)", int(b))
	}
}

// Indexable reports whether Bill is certified jointly monotone in
// (t, unit) — cost never decreases when the duration or the unit cost
// grows — as computed floats, not just reals. This is the property the
// core frontier index's staircase argument needs: with it, domination
// in the (capacity, unit cost) plane implies (time, cost) domination
// for every demand, so the billing-independent staircase stays a valid
// candidate superset and index answers match the scan bit for bit.
//
// PerSecond: fl(fl(unit/3600)·t) composes two correctly-rounded
// monotone operations. PerHour: fl(t/3600) is monotone in t, math.Ceil
// is monotone, the max(1, ·) minimum-charge clamp is monotone, and
// fl(unit·h) is monotone in both factors for non-negative operands —
// ceil flattens distinct durations onto the same quantum count but
// never reorders them. A future policy must be certified here (and by
// the per-billing trials in core's index property harness) before the
// index will serve it; unknown values fall back to the exhaustive scan.
func (b Billing) Indexable() bool {
	switch b {
	case PerSecond, PerHour:
		return true
	default:
		return false
	}
}

// Bill prices a duration at a unit cost under the policy.
func Bill(t units.Seconds, unit units.USDPerHour, b Billing) units.USD {
	switch b {
	case PerHour:
		h := units.Hours(math.Ceil(t.Hours()))
		if h < 1 && t > 0 {
			h = 1
		}
		return unit.ForHours(h)
	default:
		return units.Cost(t, unit)
	}
}

// Prediction is the model's estimate for one (demand, configuration)
// pair.
type Prediction struct {
	Config   config.Tuple
	Capacity units.Rate
	UnitCost units.USDPerHour
	Time     units.Seconds
	Cost     units.USD
}

// Predict applies Eq. 2–6 to one configuration with exact (per-second)
// billing.
func (c *Capacities) Predict(d units.Instructions, t config.Tuple) Prediction {
	return c.PredictBilled(d, t, PerSecond)
}

// PredictBilled applies Eq. 2–4 and prices the result under the given
// billing policy.
func (c *Capacities) PredictBilled(d units.Instructions, t config.Tuple, b Billing) Prediction {
	u := c.Capacity(t)
	cu := c.UnitCost(t)
	T := units.Time(d, u)
	return Prediction{
		Config:   t,
		Capacity: u,
		UnitCost: cu,
		Time:     T,
		Cost:     Bill(T, cu, b),
	}
}

// CommParams models the communication substrate for the communication-
// aware extension: per-message latency and aggregate bandwidth.
type CommParams struct {
	LatencySec  float64 // per synchronization round
	BytesPerSec float64 // effective network bandwidth
	MasterGIPS  float64 // master's dispatch rate for work-queue apps
}

// DefaultComm reflects the paper-era EC2 network (1 Gb/s class, sub-ms
// latency within a placement group is optimistic; virtualized latency
// runs higher [26]).
func DefaultComm() CommParams {
	return CommParams{LatencySec: 2e-3, BytesPerSec: 125e6, MasterGIPS: 2.0}
}

// PredictWithComm extends Eq. 2 with the communication the base model
// ignores: per-step exchanges for BSP plans and serialized master
// dispatch for master-worker plans. Independent plans are unchanged.
func (c *Capacities) PredictWithComm(d units.Instructions, t config.Tuple, plan workload.Plan, comm CommParams) Prediction {
	p := c.Predict(d, t)
	var extra units.Seconds
	switch plan.Kind {
	case workload.BSP:
		perStep := comm.LatencySec
		if comm.BytesPerSec > 0 {
			perStep += plan.CommBytesPerStep / comm.BytesPerSec
		}
		extra = units.Seconds(float64(plan.Steps) * perStep)
	case workload.MasterWorker:
		if comm.MasterGIPS > 0 {
			extra = units.Time(units.Instructions(plan.Tasks)*plan.DispatchInstr, units.GIPS(comm.MasterGIPS))
		}
		if comm.BytesPerSec > 0 {
			extra += units.Seconds(float64(plan.Tasks) * plan.BytesPerTask / comm.BytesPerSec)
		}
	}
	p.Time += extra
	p.Cost = units.Cost(p.Time, p.UnitCost)
	return p
}
