package model

import (
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/config"
	"repro/internal/ec2"
	"repro/internal/units"
)

// BenchmarkPredict measures one Eq. 2–6 evaluation — the operation the
// exhaustive scan performs ten million times per census.
func BenchmarkPredict(b *testing.B) {
	caps := FromIPC(ec2.Oregon(), galaxy.App{})
	tp := config.MustTuple(5, 5, 5, 3, 0, 0, 2, 1, 0)
	d := units.Instructions(9e15)
	b.ReportAllocs()
	var sink Prediction
	for i := 0; i < b.N; i++ {
		sink = caps.Predict(d, tp)
	}
	_ = sink
}

// BenchmarkPredictBilledHourly measures the per-hour billing variant.
func BenchmarkPredictBilledHourly(b *testing.B) {
	caps := FromIPC(ec2.Oregon(), galaxy.App{})
	tp := config.MustTuple(5, 5, 5, 3, 0, 0, 2, 1, 0)
	d := units.Instructions(9e15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = caps.PredictBilled(d, tp, PerHour)
	}
}
