package model

import (
	"math"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/x264"
	"repro/internal/config"
	"repro/internal/ec2"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	cat := ec2.Oregon()
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := New(cat, make([]units.Rate, 3)); err == nil {
		t.Fatal("wrong rate count accepted")
	}
	bad := make([]units.Rate, cat.Len())
	for i := range bad {
		bad[i] = 1
	}
	bad[4] = 0
	if _, err := New(cat, bad); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestEq4PerNodeCapacity(t *testing.T) {
	cat := ec2.Oregon()
	c := FromIPC(cat, galaxy.App{})
	// W_i = W_i,vCPU · v_i: c4.2xlarge (8 vCPU) has 4× c4.large's (2
	// vCPU) capacity at the same per-vCPU rate.
	iL, i2XL := cat.IndexOf("c4.large"), cat.IndexOf("c4.2xlarge")
	if got := float64(c.W(i2XL)) / float64(c.W(iL)); math.Abs(got-4) > 1e-9 {
		t.Fatalf("W(2xlarge)/W(large) = %v, want 4", got)
	}
	if c.PerVCPU(iL) != c.PerVCPU(i2XL) {
		t.Fatal("per-vCPU rate differs within a category")
	}
}

func TestEq3CapacityAdditive(t *testing.T) {
	c := FromIPC(ec2.Oregon(), galaxy.App{})
	t1 := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	t2 := config.MustTuple(0, 0, 0, 3, 0, 0, 0, 0, 0)
	t12 := config.MustTuple(2, 0, 0, 3, 0, 0, 0, 0, 0)
	got := float64(c.Capacity(t12))
	want := float64(c.Capacity(t1)) + float64(c.Capacity(t2))
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("capacity not additive: %v vs %v", got, want)
	}
}

func TestEq6UnitCost(t *testing.T) {
	c := FromIPC(ec2.Oregon(), galaxy.App{})
	// [5,5,5,3,0,0,0,0,0]: 5·0.105 + 5·0.209 + 5·0.419 + 3·0.133.
	tp := config.MustTuple(5, 5, 5, 3, 0, 0, 0, 0, 0)
	want := 5*0.105 + 5*0.209 + 5*0.419 + 3*0.133
	if got := float64(c.UnitCost(tp)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("unit cost = %v, want %v", got, want)
	}
}

func TestPredictConsistency(t *testing.T) {
	c := FromIPC(ec2.Oregon(), galaxy.App{})
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 8000})
	tp := config.MustTuple(5, 5, 5, 3, 0, 0, 0, 0, 0)
	p := c.Predict(d, tp)
	// Eq. 2 and Eq. 5 must cohere.
	if math.Abs(float64(p.Time)-float64(d)/float64(p.Capacity)) > 1e-6 {
		t.Fatal("Eq. 2 violated")
	}
	wantCost := float64(p.UnitCost) / 3600 * float64(p.Time)
	if math.Abs(float64(p.Cost)-wantCost) > 1e-9 {
		t.Fatal("Eq. 5 violated")
	}
}

func TestCalibrationRegime(t *testing.T) {
	// The calibration pins galaxy(65536, 8000) to need roughly the
	// paper's [5,5,5,3,…] configuration at the 24 h deadline: all-c4
	// must NOT meet 24 h, and c4 plus a few m4 nodes must.
	c := FromIPC(ec2.Oregon(), galaxy.App{})
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 8000})
	allC4 := c.Predict(d, config.MustTuple(5, 5, 5, 0, 0, 0, 0, 0, 0))
	if allC4.Time.Hours() <= 24 {
		t.Fatalf("all-c4 meets the deadline (%.1f h); spill regime miscalibrated", allC4.Time.Hours())
	}
	spill := c.Predict(d, config.MustTuple(5, 5, 5, 3, 0, 0, 0, 0, 0))
	if spill.Time.Hours() >= 25 || spill.Time.Hours() <= 20 {
		t.Fatalf("[5,5,5,3] takes %.1f h; want ~24 h (paper Table IV row 6)", spill.Time.Hours())
	}
}

func TestPerDollarMatchesFigure3(t *testing.T) {
	cat := ec2.Oregon()
	c := FromIPC(cat, galaxy.App{})
	// Figure 3 (galaxy): c4 ≈ 26.2 GI/s/$, flat across sizes within
	// the category; c4 = 2× r3, m4 = 1.5× r3.
	c4 := c.PerDollar(cat.IndexOf("c4.large")) / 1e9
	if math.Abs(c4-26.24) > 0.1 {
		t.Fatalf("c4 normalized performance = %.2f, want ~26.2", c4)
	}
	for _, name := range []string{"c4.xlarge", "c4.2xlarge"} {
		v := c.PerDollar(cat.IndexOf(name)) / 1e9
		if math.Abs(v-c4)/c4 > 0.01 {
			t.Errorf("%s normalized %.2f deviates from category level %.2f", name, v, c4)
		}
	}
	r3 := c.PerDollar(cat.IndexOf("r3.large")) / 1e9
	m4 := c.PerDollar(cat.IndexOf("m4.large")) / 1e9
	if math.Abs(c4/r3-2) > 0.02 || math.Abs(m4/r3-1.5) > 0.02 {
		t.Fatalf("category ratios c4/r3=%.3f m4/r3=%.3f, want 2.0 / 1.5", c4/r3, m4/r3)
	}
}

func TestPredictWithCommBSP(t *testing.T) {
	c := FromIPC(ec2.Oregon(), galaxy.App{})
	var app galaxy.App
	p := workload.Params{N: 65536, A: 8000}
	d := app.Demand(p)
	plan := app.Plan(p)
	tp := config.MustTuple(5, 5, 5, 3, 0, 0, 0, 0, 0)
	base := c.Predict(d, tp)
	comm := c.PredictWithComm(d, tp, plan, DefaultComm())
	if comm.Time <= base.Time {
		t.Fatal("communication-aware time not larger")
	}
	// Galaxy's exchange is small relative to compute (<5% at this
	// scale) — the paper's justification for ignoring it.
	overhead := (float64(comm.Time) - float64(base.Time)) / float64(base.Time)
	if overhead > 0.05 {
		t.Fatalf("comm overhead %.1f%%; model premise (negligible comm) violated", overhead*100)
	}
	if comm.Cost <= base.Cost {
		t.Fatal("comm-aware cost should grow with time")
	}
}

func TestPredictWithCommIndependent(t *testing.T) {
	c := FromIPC(ec2.Oregon(), x264.App{})
	var app x264.App
	p := workload.Params{N: 8000, A: 20}
	d := app.Demand(p)
	tp := config.MustTuple(2, 1, 0, 0, 0, 0, 0, 0, 0)
	base := c.Predict(d, tp)
	comm := c.PredictWithComm(d, tp, app.Plan(p), DefaultComm())
	if comm.Time != base.Time {
		t.Fatal("independent plans must be unaffected by comm model")
	}
}

func TestPredictZeroCapacityInfeasible(t *testing.T) {
	c := FromIPC(ec2.Oregon(), galaxy.App{})
	tp := config.MustTuple(0, 0, 0, 0, 0, 0, 0, 0, 0)
	p := c.Predict(units.GI(1), tp)
	if !math.IsInf(float64(p.Time), 1) {
		t.Fatalf("empty configuration time = %v, want +Inf", p.Time)
	}
}

func TestNodeArrays(t *testing.T) {
	c := FromIPC(ec2.Oregon(), galaxy.App{})
	w, cost := c.NodeArrays()
	if len(w) != 9 || len(cost) != 9 {
		t.Fatalf("array lengths %d/%d, want 9", len(w), len(cost))
	}
	for i := range w {
		if w[i] != c.W(i) || cost[i] != ec2.Oregon().Type(i).Price {
			t.Fatalf("NodeArrays mismatch at %d", i)
		}
	}
}

func TestBillPerSecond(t *testing.T) {
	got := Bill(units.FromHours(1.5), 2, PerSecond)
	if math.Abs(float64(got)-3) > 1e-9 {
		t.Fatalf("per-second bill = %v, want $3", got)
	}
}

func TestBillPerHourCeils(t *testing.T) {
	// 1.5 h at $2/h bills 2 started hours.
	if got := Bill(units.FromHours(1.5), 2, PerHour); float64(got) != 4 {
		t.Fatalf("per-hour bill = %v, want $4", got)
	}
	// Exactly 2 h bills 2 h.
	if got := Bill(units.FromHours(2), 2, PerHour); float64(got) != 4 {
		t.Fatalf("exact-hour bill = %v, want $4", got)
	}
	// A 10-minute run still pays a full hour.
	if got := Bill(600, 2, PerHour); float64(got) != 2 {
		t.Fatalf("sub-hour bill = %v, want $2", got)
	}
	// Zero duration is free.
	if got := Bill(0, 2, PerHour); float64(got) != 0 {
		t.Fatalf("zero-duration bill = %v, want $0", got)
	}
}

func TestBillPerHourULPBoundaries(t *testing.T) {
	// The hour-boundary fidelity sentinel. Bill's per-hour path divides
	// the duration by 3600 before ceiling, and that division must not
	// erase one-ulp distinctions around exact hour multiples: at
	// t = 7200 s, ulp(7200) = 2^-40, and dividing by 3600 < 2^12 shrinks
	// it by < 2^12, so the quotient moves by > 2^-52 — more than half an
	// ulp of 2.0 — and rounds to a distinct float on each side of the
	// boundary. One ulp below an exact N-hour mark must therefore bill
	// N started hours, and one ulp above must bill N+1. If this test
	// ever fails, the division lost boundary fidelity (e.g. someone
	// rescaled the quantum) and per-hour billing misquotes runs that
	// land within rounding error of an hour multiple.
	const rate = units.USDPerHour(2)
	cases := []struct {
		label string
		t     units.Seconds
		want  float64 // dollars at $2/h
	}{
		{"2h exact", units.FromHours(2), 4},
		{"2h - 1ulp", units.Seconds(math.Nextafter(float64(units.FromHours(2)), 0)), 4},
		{"2h + 1ulp", units.Seconds(math.Nextafter(float64(units.FromHours(2)), math.Inf(1))), 6},
		{"1h exact", units.FromHours(1), 2},
		{"1h - 1ulp", units.Seconds(math.Nextafter(float64(units.FromHours(1)), 0)), 2},
		{"1h + 1ulp", units.Seconds(math.Nextafter(float64(units.FromHours(1)), math.Inf(1))), 4},
	}
	for _, c := range cases {
		if got := Bill(c.t, rate, PerHour); float64(got) != c.want {
			t.Errorf("%s: Bill(%v) = %v, want $%v", c.label, float64(c.t), got, c.want)
		}
	}
}

func TestBillingIndexable(t *testing.T) {
	if !PerSecond.Indexable() || !PerHour.Indexable() {
		t.Fatal("certified policies report not indexable")
	}
	if Billing(7).Indexable() {
		t.Fatal("unknown billing policy claims index certification")
	}
}

func TestBillingString(t *testing.T) {
	if PerSecond.String() != "per-second" || PerHour.String() != "per-hour" {
		t.Fatal("billing names wrong")
	}
	if Billing(9).String() == "" {
		t.Fatal("unknown billing has empty name")
	}
}

func TestPredictBilledNeverCheaper(t *testing.T) {
	c := FromIPC(ec2.Oregon(), galaxy.App{})
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 4000})
	tp := config.MustTuple(5, 5, 0, 0, 0, 0, 0, 0, 0)
	exact := c.PredictBilled(d, tp, PerSecond)
	hourly := c.PredictBilled(d, tp, PerHour)
	if hourly.Cost < exact.Cost {
		t.Fatalf("hourly bill %v below exact %v", hourly.Cost, exact.Cost)
	}
	if hourly.Time != exact.Time {
		t.Fatal("billing changed predicted time")
	}
}
