package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/demand"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// scanOnlyEngine builds a four-category catalog so every argmin query
// routes through the exhaustive scan (the decomposed merge is shaped
// for the paper's three categories) — the path cooperative
// cancellation must cover.
func scanOnlyEngine(t *testing.T) *Engine {
	t.Helper()
	var types []ec2.InstanceType
	for c := 0; c < 4; c++ {
		types = append(types, ec2.InstanceType{
			Name:     fmt.Sprintf("x%d.a", c),
			Category: ec2.Category(fmt.Sprintf("cat%d", c)),
			VCPUs:    2,
			BaseGHz:  2.5,
			Price:    units.USDPerHour(0.1 * float64(c+1)),
		})
	}
	cat, err := ec2.NewCatalog(types)
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]units.Rate, cat.Len())
	for i := range rates {
		rates[i] = units.GIPS(1 + float64(i))
	}
	caps, err := model.New(cat, rates)
	if err != nil {
		t.Fatal(err)
	}
	space, err := config.Uniform(cat.Len(), 3)
	if err != nil {
		t.Fatal(err)
	}
	dm := demand.FromFunc("lin", func(n, a float64) float64 { return n * a })
	dom := workload.Domain{MinN: 1, MaxN: 1e18, MinA: 1, MaxA: 1e18}
	eng, err := NewEngine(caps, dm, space, dom)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestScanQueriesAbortOnCanceledContext: every scan-path query variant
// must surface the standard context sentinel (wrapped, errors.Is-able)
// instead of a partial or stale answer once its context is done.
func TestScanQueriesAbortOnCanceledContext(t *testing.T) {
	eng := scanOnlyEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := workload.Params{N: 1e6, A: 10}
	cons := Constraints{Deadline: units.FromHours(24), Budget: 1000}

	if _, err := eng.AnalyzeContext(ctx, p, cons, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeContext err = %v, want context.Canceled", err)
	}
	if _, _, err := eng.MinCostForDeadlineContext(ctx, p, cons.Deadline); !errors.Is(err, context.Canceled) {
		t.Fatalf("MinCostForDeadlineContext err = %v, want context.Canceled", err)
	}
	if _, _, err := eng.MinTimeForBudgetContext(ctx, p, cons.Budget); !errors.Is(err, context.Canceled) {
		t.Fatalf("MinTimeForBudgetContext err = %v, want context.Canceled", err)
	}
	if _, _, _, err := eng.MaxAccuracyContext(ctx, 1e6, cons, 1e-3); !errors.Is(err, context.Canceled) {
		t.Fatalf("MaxAccuracyContext err = %v, want context.Canceled", err)
	}

	// An expired deadline surfaces its own sentinel the same way.
	dctx, dcancel := context.WithTimeout(context.Background(), -1)
	defer dcancel()
	if _, err := eng.AnalyzeContext(dctx, p, cons, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AnalyzeContext err = %v, want context.DeadlineExceeded", err)
	}
}

// TestContextVariantsMatchPlain: with a live context the Context
// variants are the plain queries — same floats, same tie winners.
func TestContextVariantsMatchPlain(t *testing.T) {
	eng := scanOnlyEngine(t)
	ctx := context.Background()
	p := workload.Params{N: 1e6, A: 10}
	cons := Constraints{Deadline: units.FromHours(24), Budget: 1000}

	anPlain, err := eng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	anCtx, err := eng.AnalyzeContext(ctx, p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(anCtx, anPlain) {
		t.Fatal("AnalyzeContext diverged from Analyze")
	}

	predPlain, okPlain, err := eng.MinCostForDeadline(p, cons.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	predCtx, okCtx, err := eng.MinCostForDeadlineContext(ctx, p, cons.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if okPlain != okCtx || !reflect.DeepEqual(predCtx, predPlain) {
		t.Fatal("MinCostForDeadlineContext diverged from MinCostForDeadline")
	}
}
