package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/demand"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// randomEngine builds an engine over a randomized catalog (random
// prices and rates, 1–3 categories × 1–3 types, small node limits) so
// the decomposed-vs-exhaustive equivalence is tested far from the
// paper's particular numbers.
func randomEngine(t *testing.T, rng *rand.Rand) *Engine {
	t.Helper()
	nCats := 1 + rng.Intn(3)
	var types []ec2.InstanceType
	catNames := []ec2.Category{"aa", "bb", "cc"}
	for c := 0; c < nCats; c++ {
		nTypes := 1 + rng.Intn(3)
		for k := 0; k < nTypes; k++ {
			types = append(types, ec2.InstanceType{
				Name:     fmt.Sprintf("%s.%d", catNames[c], k),
				Category: catNames[c],
				VCPUs:    1 << uint(rng.Intn(4)),
				BaseGHz:  1 + 3*rng.Float64(),
				Price:    units.USDPerHour(0.05 + rng.Float64()),
			})
		}
	}
	cat, err := ec2.NewCatalog(types)
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]units.Rate, cat.Len())
	for i := range rates {
		rates[i] = units.GIPS(0.5 + 4*rng.Float64())
	}
	caps, err := model.New(cat, rates)
	if err != nil {
		t.Fatal(err)
	}
	limits := make([]int, cat.Len())
	for i := range limits {
		limits[i] = 1 + rng.Intn(3)
	}
	space, err := config.NewSpace(limits)
	if err != nil {
		t.Fatal(err)
	}
	dm := demand.FromFunc("rand", func(n, a float64) float64 { return n * a })
	dom := workload.Domain{MinN: 1, MaxN: 1e18, MinA: 1, MaxA: 1e18}
	eng, err := NewEngine(caps, dm, space, dom)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestDecomposedEqualsExhaustiveRandomized is the randomized
// certification of the decomposition argument: for any additive
// capacity/cost structure, pruning each category to its Pareto set
// loses no optimum.
func TestDecomposedEqualsExhaustiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		eng := randomEngine(t, rng)
		// Pick a demand that makes some but not all configurations
		// feasible: a fraction of max capacity times a random deadline.
		maxCap := 0.0
		eng.Space().ForEach(func(tp config.Tuple) bool {
			if u := float64(eng.Capacities().Capacity(tp)); u > maxCap {
				maxCap = u
			}
			return true
		})
		deadline := units.Seconds(3600 * (1 + 20*rng.Float64()))
		frac := 0.2 + 0.7*rng.Float64()
		d := maxCap * frac * float64(deadline)
		p := workload.Params{N: d, A: 1}

		dec, okD, err := eng.MinCostForDeadline(p, deadline)
		if err != nil {
			t.Fatal(err)
		}
		exh, okE, err := eng.MinCostExhaustive(p, deadline)
		if err != nil {
			t.Fatal(err)
		}
		if okD != okE {
			t.Fatalf("trial %d: feasibility mismatch dec=%v exh=%v", trial, okD, okE)
		}
		if !okD {
			continue
		}
		if math.Abs(float64(dec.Cost)-float64(exh.Cost)) > 1e-9*math.Max(1, float64(exh.Cost)) {
			t.Fatalf("trial %d: decomposed %v != exhaustive %v (%v vs %v)",
				trial, dec.Cost, exh.Cost, dec.Config, exh.Config)
		}
	}
}

// TestDecomposedEqualsExhaustiveHourlyRandomized repeats the
// certification under per-hour billing, where cost is a step function
// of time.
func TestDecomposedEqualsExhaustiveHourlyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 25; trial++ {
		eng := randomEngine(t, rng)
		eng.SetBilling(model.PerHour)
		maxCap := 0.0
		eng.Space().ForEach(func(tp config.Tuple) bool {
			if u := float64(eng.Capacities().Capacity(tp)); u > maxCap {
				maxCap = u
			}
			return true
		})
		deadline := units.Seconds(3600 * (1 + 10*rng.Float64()))
		d := maxCap * (0.3 + 0.5*rng.Float64()) * float64(deadline)
		p := workload.Params{N: d, A: 1}
		dec, okD, err := eng.MinCostForDeadline(p, deadline)
		if err != nil {
			t.Fatal(err)
		}
		exh, okE, err := eng.MinCostExhaustive(p, deadline)
		if err != nil {
			t.Fatal(err)
		}
		if okD != okE {
			t.Fatalf("trial %d: feasibility mismatch", trial)
		}
		if okD && math.Abs(float64(dec.Cost)-float64(exh.Cost)) > 1e-9*math.Max(1, float64(exh.Cost)) {
			t.Fatalf("trial %d: hourly decomposed %v != exhaustive %v", trial, dec.Cost, exh.Cost)
		}
	}
}

// TestFrontierInvariantsRandomized: every frontier point is feasible,
// mutually nondominated, and no scanned configuration dominates any of
// them.
func TestFrontierInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 15; trial++ {
		eng := randomEngine(t, rng)
		maxCap := 0.0
		eng.Space().ForEach(func(tp config.Tuple) bool {
			if u := float64(eng.Capacities().Capacity(tp)); u > maxCap {
				maxCap = u
			}
			return true
		})
		deadline := units.Seconds(3600 * 10)
		d := maxCap * 0.5 * float64(deadline)
		p := workload.Params{N: d, A: 1}
		budget := units.USD(1e9)
		an, err := eng.Analyze(p, Constraints{Deadline: deadline, Budget: budget}, Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range an.Frontier {
			if float64(f.Time) >= float64(deadline) {
				t.Fatalf("trial %d: frontier point %d infeasible", trial, i)
			}
			for j, g := range an.Frontier {
				if i != j && g.Time <= f.Time && g.Cost <= f.Cost {
					t.Fatalf("trial %d: frontier point %d dominated by %d", trial, i, j)
				}
			}
		}
		// Exhaustive domination check against the whole space.
		dd, _ := eng.Demand(p)
		eng.Space().ForEach(func(tp config.Tuple) bool {
			pr := eng.Capacities().Predict(dd, tp)
			if float64(pr.Time) >= float64(deadline) || float64(pr.Cost) >= float64(budget) {
				return true
			}
			for i, f := range an.Frontier {
				if float64(pr.Time) <= float64(f.Time) && float64(pr.Cost) <= float64(f.Cost) &&
					(float64(pr.Time) < float64(f.Time) || float64(pr.Cost) < float64(f.Cost)) {
					t.Fatalf("trial %d: feasible %v dominates frontier point %d", trial, tp, i)
				}
			}
			return true
		})
	}
}

// TestAnalyzeWorkerCountInvariance: the census result must not depend
// on the parallelism degree.
func TestAnalyzeWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	eng := randomEngine(t, rng)
	p := workload.Params{N: 1e13, A: 1}
	cons := Constraints{Deadline: units.FromHours(10), Budget: 1e6}
	ref, err := eng.Analyze(p, cons, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 7, 16} {
		an, err := eng.Analyze(p, cons, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if an.Feasible != ref.Feasible || len(an.Frontier) != len(ref.Frontier) {
			t.Fatalf("workers=%d: census differs (%d/%d vs %d/%d)",
				w, an.Feasible, len(an.Frontier), ref.Feasible, len(ref.Frontier))
		}
		for i := range an.Frontier {
			if an.Frontier[i].Time != ref.Frontier[i].Time || an.Frontier[i].Cost != ref.Frontier[i].Cost {
				t.Fatalf("workers=%d: frontier point %d differs", w, i)
			}
		}
	}
}

// TestScanSearchFallbackFourCategories: catalogs beyond the 3x3
// category structure must fall back to the general scan and still be
// exact.
func TestScanSearchFallbackFourCategories(t *testing.T) {
	var types []ec2.InstanceType
	for c := 0; c < 4; c++ {
		types = append(types, ec2.InstanceType{
			Name:     fmt.Sprintf("cat%d.large", c),
			Category: ec2.Category(fmt.Sprintf("cat%d", c)),
			VCPUs:    2,
			BaseGHz:  2 + float64(c)*0.3,
			Price:    units.USDPerHour(0.1 + 0.05*float64(c)),
		})
	}
	cat, err := ec2.NewCatalog(types)
	if err != nil {
		t.Fatal(err)
	}
	rates := []units.Rate{units.GIPS(2), units.GIPS(2.5), units.GIPS(1.5), units.GIPS(3)}
	caps, err := model.New(cat, rates)
	if err != nil {
		t.Fatal(err)
	}
	space, err := config.Uniform(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	dm := demand.FromFunc("four", func(n, a float64) float64 { return n })
	eng, err := NewEngine(caps, dm, space, workload.Domain{MinN: 1, MaxN: 1e18, MinA: 0, MaxA: 1e18})
	if err != nil {
		t.Fatal(err)
	}
	p := workload.Params{N: 3e13, A: 1}
	dec, okD, err := eng.MinCostForDeadline(p, units.FromHours(1))
	if err != nil {
		t.Fatal(err)
	}
	exh, okE, err := eng.MinCostExhaustive(p, units.FromHours(1))
	if err != nil {
		t.Fatal(err)
	}
	if okD != okE || (okD && math.Abs(float64(dec.Cost-exh.Cost)) > 1e-9) {
		t.Fatalf("4-category fallback mismatch: %v/%v vs %v/%v", dec.Cost, okD, exh.Cost, okE)
	}
	// MinTime through the same fallback.
	mt, okT, err := eng.MinTimeForBudget(p, 100)
	if err != nil || !okT {
		t.Fatal(okT, err)
	}
	if float64(mt.Cost) >= 100 {
		t.Fatal("fallback ignored the budget")
	}
}
