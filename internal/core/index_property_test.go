package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/detrand"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// detSource adapts detrand's splitmix64 stream to math/rand.Source so
// the randomized-catalog helper runs on the repo's deterministic
// generator: the trial sequence is pinned by the seed alone, not by
// math/rand's generator choice.
type detSource struct{ s *detrand.Source }

func (d detSource) Int63() int64   { return int64(d.s.Uint64() >> 1) }
func (d detSource) Seed(_ int64)   {}
func (d detSource) Uint64() uint64 { return d.s.Uint64() }

// TestIndexEqualsScanRandomized is the randomized certification of the
// frontier index: across random catalogs, constraints (including
// unconstrained and infeasible ones), the indexed Analyze and all
// argmin queries must equal the exhaustive scan exactly — same floats,
// same tie winners.
func TestIndexEqualsScanRandomized(t *testing.T) {
	rng := rand.New(detSource{detrand.New(0xce11a)})
	for trial := 0; trial < 30; trial++ {
		eng := randomEngine(t, rng)
		maxCap := 0.0
		eng.Space().ForEach(func(tp config.Tuple) bool {
			if u := float64(eng.Capacities().Capacity(tp)); u > maxCap {
				maxCap = u
			}
			return true
		})
		deadline := units.Seconds(3600 * (1 + 20*rng.Float64()))
		frac := 0.2 + 0.7*rng.Float64()
		d := maxCap * frac * float64(deadline)
		p := workload.Params{N: d, A: 1}

		// Cycle through constraint shapes: both axes, one axis,
		// unconstrained (zero = +Inf), and an unmeetable deadline.
		var conss []Constraints
		budget := units.USD(0.01 + 100*rng.Float64())
		conss = append(conss,
			Constraints{Deadline: deadline, Budget: budget},
			Constraints{Deadline: deadline},
			Constraints{Budget: budget},
			Constraints{},
			Constraints{Deadline: 1e-9},
		)
		for ci, cons := range conss {
			eng.SetUseIndex(false)
			scanAn, err := eng.Analyze(p, cons, Options{})
			if err != nil {
				t.Fatal(err)
			}
			eng.SetUseIndex(true)
			idxAn, err := eng.Analyze(p, cons, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !eng.IndexActive() {
				t.Fatalf("trial %d: index inactive on a per-second engine", trial)
			}
			if !reflect.DeepEqual(idxAn, scanAn) {
				t.Fatalf("trial %d cons %d: indexed Analysis %+v != scan %+v",
					trial, ci, idxAn, scanAn)
			}

			dem, err := eng.Demand(p)
			if err != nil {
				t.Fatal(err)
			}
			idx := eng.indexFor()
			if idx == nil {
				t.Fatalf("trial %d: no index", trial)
			}
			for _, obj := range []objective{objectiveCost, objectiveTime} {
				got, okG := idx.minSearch(eng, dem, cons, obj)
				want, okW := eng.scanSearch(dem, cons, obj)
				if okG != okW || !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d cons %d obj %d: indexed (%+v, %v) != scan (%+v, %v)",
						trial, ci, obj, got, okG, want, okW)
				}
			}
		}

		// Codec round-trip: the snapshot payload must decode to an index
		// bit-identical to the built one — pair table and every derived
		// table — and the decoded index must re-encode to the same
		// bytes, so a restored process is indistinguishable from one
		// that paid the build.
		built := eng.indexFor()
		if built == nil {
			t.Fatalf("trial %d: no index to encode", trial)
		}
		payload := built.EncodeBinary()
		decoded, err := DecodeFrontierIndex(payload)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !reflect.DeepEqual(decoded, built) {
			t.Fatalf("trial %d: decoded index differs from built", trial)
		}
		if re := decoded.EncodeBinary(); !bytes.Equal(re, payload) {
			t.Fatalf("trial %d: re-encoded payload differs (%d vs %d bytes)",
				trial, len(re), len(payload))
		}

		// MaxAccuracy bisects over searchBest: index on and off must
		// land on the same rung and prediction.
		cons := Constraints{Deadline: deadline, Budget: budget}
		eng.SetUseIndex(false)
		pS, predS, okS, err := eng.MaxAccuracy(math.Max(1, d/2), cons, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetUseIndex(true)
		pI, predI, okI, err := eng.MaxAccuracy(math.Max(1, d/2), cons, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if okS != okI || pS != pI || !reflect.DeepEqual(predS, predI) {
			t.Fatalf("trial %d: MaxAccuracy indexed (%+v, %+v, %v) != scan (%+v, %+v, %v)",
				trial, pI, predI, okI, pS, predS, okS)
		}

		// Per-hour billing must route *through* the same index: ceil'd
		// cost is still jointly monotone in (time, unit cost), so the
		// billing-independent staircase stays a valid candidate
		// superset and every answer — census, frontier, argmin tuple,
		// tie metadata — must match the scan bit for bit.
		eng.SetBilling(model.PerHour)
		eng.SetUseIndex(true)
		if !eng.IndexActive() {
			t.Fatalf("trial %d: index inactive under per-hour billing", trial)
		}
		dem, err := eng.Demand(p)
		if err != nil {
			t.Fatal(err)
		}
		idx := eng.indexFor()
		for ci, cons := range conss {
			eng.SetUseIndex(false)
			scanAn, err := eng.Analyze(p, cons, Options{})
			if err != nil {
				t.Fatal(err)
			}
			eng.SetUseIndex(true)
			idxAn, err := eng.Analyze(p, cons, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(idxAn, scanAn) {
				t.Fatalf("trial %d cons %d: per-hour indexed Analysis %+v != scan %+v",
					trial, ci, idxAn, scanAn)
			}
			for _, obj := range []objective{objectiveCost, objectiveTime} {
				got, okG := idx.minSearch(eng, dem, cons, obj)
				want, okW := eng.scanSearch(dem, cons, obj)
				if okG != okW || !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d cons %d obj %d: per-hour indexed (%+v, %v) != scan (%+v, %v)",
						trial, ci, obj, got, okG, want, okW)
				}
			}
		}
		eng.SetUseIndex(false)
		pHS, predHS, okHS, err := eng.MaxAccuracy(math.Max(1, d/2), cons, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetUseIndex(true)
		pHI, predHI, okHI, err := eng.MaxAccuracy(math.Max(1, d/2), cons, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if okHS != okHI || pHS != pHI || !reflect.DeepEqual(predHS, predHI) {
			t.Fatalf("trial %d: per-hour MaxAccuracy indexed (%+v, %+v, %v) != scan (%+v, %+v, %v)",
				trial, pHI, predHI, okHI, pHS, predHS, okHS)
		}
	}
}

// TestIndexPerHourPairCapFallsBack keeps the scan-fallback contract
// under per-hour billing: a catalog exceeding the pair cap must bypass
// the index with the pair-cap cause (not the billing one) and still
// answer bit-identically from the scan.
func TestIndexPerHourPairCapFallsBack(t *testing.T) {
	old := maxIndexPairs
	maxIndexPairs = 2
	defer func() { maxIndexPairs = old }()
	rng := rand.New(detSource{detrand.New(0xce11a)})
	eng := randomEngine(t, rng)
	eng.SetUseIndex(true)
	eng.SetBilling(model.PerHour)
	maxCap := 0.0
	eng.Space().ForEach(func(tp config.Tuple) bool {
		if u := float64(eng.Capacities().Capacity(tp)); u > maxCap {
			maxCap = u
		}
		return true
	})
	deadline := units.FromHours(5)
	p := workload.Params{N: maxCap * 0.5 * float64(deadline), A: 1}
	cons := Constraints{Deadline: deadline, Budget: 50}

	scanEng := randomEngine(t, rand.New(detSource{detrand.New(0xce11a)}))
	scanEng.SetBilling(model.PerHour)
	want, err := scanEng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.IndexActive() {
		t.Fatal("index active past the pair cap")
	}
	if cause := eng.IndexBypassCause(); cause != BypassPairCap {
		t.Fatalf("bypass cause = %d, want BypassPairCap", cause)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pair-cap fallback diverged: %+v != %+v", got, want)
	}
}
