// The demand-invariant frontier index. A configuration's predictions
// are
//
//	T = D/U               (Eq. 2)
//	C = billCost(T, c_u)  (Eq. 5/6, or its per-hour ceil variant)
//
// so for two configurations p, q with U_p ≥ U_q and c_u,p ≤ c_u,q,
// monotonicity of IEEE-754 correctly-rounded division gives
// fl(D/U_p) ≤ fl(D/U_q) for every demand D, and joint monotonicity of
// billCost in (T, c_u) — certified per policy by
// model.Billing.Indexable — carries that through to C_p ≤ C_q:
// domination in the (capacity ↑, unit cost ↓) plane implies
// floating-point (time, cost) domination for every query. The Pareto
// staircase of the distinct (U, c_u) pairs is therefore a
// demand-invariant candidate superset of every per-query frontier, and
// one scan of the space answers all of them. Crucially the argument
// never needs billCost to be linear: per-hour ceil billing flattens
// distinct times onto the same started-hour count but never reorders
// them (fl(T/3600), math.Ceil, the max(1, ·) clamp, and fl(c_u·h) are
// each monotone), so pairs the staircase drops as (u, cu)-dominated
// are (T, C)-dominated under per-hour billing too, for every demand.
// Pairs the staircase keeps — incomparable in the (u, cu) plane — are
// resolved per query by the same billing-aware billCost the scan uses,
// which is how hour-boundary reorderings between demands are handled
// exactly rather than precomputed away (see DESIGN.md §9). Billing
// policies not certified by Indexable fall back to the exhaustive
// scan.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/pareto"
	"repro/internal/units"
)

// maxIndexPairs caps the distinct (U, c_u) pair table. A catalog whose
// capacities and prices never collide would make the "index" as large
// as the space itself; past this cap the build aborts and every query
// keeps using the scan. The paper's catalog compresses 10,077,695
// configurations to 657,394 pairs (15×) and a 118-entry staircase.
// A variable only so the overflow path is testable without a
// multi-million-configuration catalog.
var maxIndexPairs = int64(4 << 20)

// idxPair aggregates every configuration sharing one exact
// (capacity, unit cost) value pair. Exact duplicates are common in real
// catalogs — within a family, k small nodes and k/2 double-size nodes
// produce bit-identical sums — so each pair carries everything the tie
// breaks need: the population count, the smallest configuration index
// (Stream2D keeps the first-inserted point on exact frontier ties, and
// the scan inserts in ascending index order), and the lessTuple-minimal
// member (the argmin queries break value ties lexicographically).
type idxPair struct {
	u       units.Rate
	cu      units.USDPerHour
	count   uint64
	minIdx  uint64
	lessMin config.Tuple
}

// idxSpan is one run of pairs sharing an exact capacity U, as
// [start, end) offsets into the (U asc, c_u asc)-sorted pair table.
// Within a span every pair predicts the same time, so feasibility and
// cost ordering reduce to a binary search on c_u.
type idxSpan struct {
	u          units.Rate
	start, end int
}

// stairStep is one staircase entry: the span's cheapest pair, kept only
// when its unit cost undercuts every higher-capacity span.
type stairStep struct {
	pairIdx    int
	start, end int // owning span bounds, for in-span tie resolution
}

// FrontierIndex is the precomputed demand-invariant view of one
// engine's configuration space. Build once with the engine's exact
// per-configuration arithmetic, then answer any query under an
// Indexable billing policy in O(|staircase| + spans·log) instead of
// O(S) model evaluations. Immutable after construction; safe for
// concurrent use.
type FrontierIndex struct {
	pairs []idxPair
	spans []idxSpan
	// prefix[i] is the configuration count of pairs[:i], so a
	// cost-feasible prefix of a span counts in O(1) after the search.
	prefix []uint64
	// spanLess[i] is the lessTuple-minimal member of pairs[start..i]
	// within i's span (running minimum, reset at each span start), and
	// spanMinIdx[i] the minimal configuration index over the same
	// prefix. Both resolve value ties, whose achievers are always a
	// cost-ordered prefix of one or more capacity spans: distinct exact
	// (U, c_u) pairs — typically ULP-apart accumulations of a
	// mathematically identical configuration family — can round to
	// bit-equal (time, cost) under a particular demand, and the scan
	// breaks such ties by configuration order, so the index must
	// aggregate over the whole rounding-collapse class, not just the
	// staircase pair that represents it.
	spanLess   []config.Tuple
	spanMinIdx []uint64
	// stair is the (capacity ↑, unit cost ↓) Pareto staircase in
	// descending-capacity order.
	stair     []stairStep
	total     uint64
	buildWall time.Duration
}

// IndexStats summarizes a built index for telemetry and logs.
type IndexStats struct {
	Pairs     int   // distinct exact (U, c_u) pairs
	Spans     int   // distinct exact capacities
	Staircase int   // demand-invariant frontier candidates
	BuildMS   int64 // wall-clock build time
}

// Stats reports the index's shape.
func (x *FrontierIndex) Stats() IndexStats {
	return IndexStats{
		Pairs:     len(x.pairs),
		Spans:     len(x.spans),
		Staircase: len(x.stair),
		BuildMS:   x.buildWall.Milliseconds(),
	}
}

// decTab holds the decimal rendering of every possible count byte so
// the tuple comparator never divides.
var decTab = func() (tab [256]struct {
	d [3]byte
	n uint8
}) {
	for c := 0; c < 256; c++ {
		e := &tab[c]
		switch {
		case c >= 100:
			e.d = [3]byte{byte('0' + c/100), byte('0' + c/10%10), byte('0' + c%10)}
			e.n = 3
		case c >= 10:
			e.d = [3]byte{byte('0' + c/10), byte('0' + c%10)}
			e.n = 2
		default:
			e.d = [3]byte{byte('0' + c)}
			e.n = 1
		}
	}
	return tab
}()

// lessDecimal orders two unequal count bytes the way their decimal
// renderings sort inside a tuple string. When one rendering is a proper
// prefix of the other, the next byte on the short side is that tuple's
// separator: ',' (below every digit) mid-tuple, ']' (above every digit)
// at the end — so 2 < 10 mid-tuple but 10 < 2 in the last position.
func lessDecimal(ca, cb uint8, lastA, lastB bool) bool {
	da, db := &decTab[ca], &decTab[cb]
	n := da.n
	if db.n < n {
		n = db.n
	}
	for k := uint8(0); k < n; k++ {
		if da.d[k] != db.d[k] {
			return da.d[k] < db.d[k]
		}
	}
	if da.n < db.n {
		return !lastA // a's ',' sorts below b's digit; its ']' above
	}
	return lastB // b's ',' sorts below a's digit; its ']' above
}

// lessTupleFast is lessTuple without building the two strings; the
// index build calls it once per duplicate-pair configuration (~10M
// times on the paper space) and the snapshot decoder once per restored
// pair. Equivalence to lessTuple is property-tested in index_test.go.
func lessTupleFast(a, b config.Tuple) bool {
	ma, mb := a.Len(), b.Len()
	m := ma
	if mb < m {
		m = mb
	}
	for i := 0; i < m; i++ {
		if ca, cb := a.Count(i), b.Count(i); ca != cb {
			return lessDecimal(uint8(ca), uint8(cb), i == ma-1, i == mb-1)
		}
	}
	// The common prefix matches element-wise; the shorter tuple's ']'
	// sorts above the longer one's next ',', so the longer sorts first.
	return ma > mb
}

// buildFrontierIndex scans the whole space once, aggregating exact
// (U, c_u) pairs, and derives the span table, prefix counts, running
// tie-break minima, and the staircase. Returns nil when the pair table
// exceeds maxIndexPairs (the catalog does not compress).
func buildFrontierIndex(e *Engine) *FrontierIndex {
	start := time.Now()
	w, nodeCost := e.caps.NodeArrays()
	workers := runtime.GOMAXPROCS(0)

	type pairKey struct {
		u  units.Rate
		cu units.USDPerHour
	}
	shards := make([]map[pairKey]*idxPair, workers)
	for i := range shards {
		shards[i] = make(map[pairKey]*idxPair, 1<<12)
	}
	var distinct atomic.Int64
	var aborted atomic.Bool
	e.space.ForEachParallelIndexed(workers, func(worker int, k uint64, t config.Tuple) {
		if aborted.Load() {
			return
		}
		var u units.Rate
		var cu units.USDPerHour
		for i := 0; i < t.Len(); i++ {
			if m := t.Count(i); m > 0 {
				u += units.Rate(m) * w[i]
				cu += units.USDPerHour(m) * nodeCost[i]
			}
		}
		sh := shards[worker]
		key := pairKey{u, cu}
		if agg, ok := sh[key]; ok {
			agg.count++
			if lessTupleFast(t, agg.lessMin) {
				agg.lessMin = t
			}
			return
		}
		// Chunks walk ascending indices, so the first sighting in a
		// shard is that shard's minimal index for the pair.
		sh[key] = &idxPair{u: u, cu: cu, count: 1, minIdx: k, lessMin: t}
		if distinct.Add(1) > maxIndexPairs {
			aborted.Store(true)
		}
	})
	if aborted.Load() {
		return nil
	}

	merged := shards[0]
	for _, sh := range shards[1:] {
		for key, agg := range sh {
			if cur, ok := merged[key]; ok {
				cur.count += agg.count
				if agg.minIdx < cur.minIdx {
					cur.minIdx = agg.minIdx
				}
				if lessTupleFast(agg.lessMin, cur.lessMin) {
					cur.lessMin = agg.lessMin
				}
			} else {
				merged[key] = agg
			}
		}
	}
	pairs := make([]idxPair, 0, len(merged))
	// Map order is fine here: pairs are fully sorted below by their
	// unique (u, cu) key, so output order is total.
	for _, agg := range merged {
		pairs = append(pairs, *agg)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].u != pairs[j].u {
			return pairs[i].u < pairs[j].u
		}
		return pairs[i].cu < pairs[j].cu
	})
	x := finishIndex(pairs, e.space.Size())
	x.buildWall = time.Since(start)
	return x
}

// finishIndex derives every secondary table — spans, prefix counts,
// running tie-break minima, and the staircase — from a (u asc, cu asc)-
// sorted pair table. Shared by the scan build above and the snapshot
// decoder (index_codec.go): both produce the derived state through this
// one code path, so a decoded index is structurally identical to the
// freshly built one it was encoded from.
func finishIndex(pairs []idxPair, total uint64) *FrontierIndex {
	x := &FrontierIndex{pairs: pairs, total: total}

	x.prefix = make([]uint64, len(x.pairs)+1)
	x.spanLess = make([]config.Tuple, len(x.pairs))
	x.spanMinIdx = make([]uint64, len(x.pairs))
	workers := runtime.GOMAXPROCS(0)
	if most := 1 + len(x.pairs)/parallelCodecMin; workers > most {
		workers = most
	}
	if workers == 1 {
		// One fused walk fills the prefix sums, the span table, and the
		// running tie-break minima, touching the pair table exactly
		// once; on snapshot restore this walk runs right after the
		// decoder's parse pass, so a second full traversal is
		// measurable.
		for i := 0; i < len(x.pairs); {
			run := x.pairs[i].lessMin
			runIdx := x.pairs[i].minIdx
			x.prefix[i+1] = x.prefix[i] + x.pairs[i].count
			x.spanLess[i] = run
			x.spanMinIdx[i] = runIdx
			j := i + 1
			//lint:allow floateq span grouping needs exact capacity identity: equal floats predict bit-equal times
			for ; j < len(x.pairs) && x.pairs[j].u == x.pairs[i].u; j++ {
				x.prefix[j+1] = x.prefix[j] + x.pairs[j].count
				if lessTupleFast(x.pairs[j].lessMin, run) {
					run = x.pairs[j].lessMin
				}
				if x.pairs[j].minIdx < runIdx {
					runIdx = x.pairs[j].minIdx
				}
				x.spanLess[j] = run
				x.spanMinIdx[j] = runIdx
			}
			x.spans = append(x.spans, idxSpan{u: x.pairs[i].u, start: i, end: j})
			i = j
		}
	} else {
		// Multi-core: a cheap serial pass finds the span boundaries and
		// prefix sums, then the running-minima fill — the expensive part
		// — proceeds per span in parallel. Spans are independent, so the
		// result is identical to the fused walk (property-tested in
		// index_test.go); keeping the derivation parallel matters
		// because the build it is measured against parallelizes too.
		for i := 0; i < len(x.pairs); {
			x.prefix[i+1] = x.prefix[i] + x.pairs[i].count
			j := i + 1
			//lint:allow floateq span grouping needs exact capacity identity: equal floats predict bit-equal times
			for ; j < len(x.pairs) && x.pairs[j].u == x.pairs[i].u; j++ {
				x.prefix[j+1] = x.prefix[j] + x.pairs[j].count
			}
			x.spans = append(x.spans, idxSpan{u: x.pairs[i].u, start: i, end: j})
			i = j
		}
		chunk := (len(x.spans) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(x.spans) {
				hi = len(x.spans)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				x.fillSpanMinima(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	// Staircase: walk spans from the highest capacity down; a span's
	// cheapest pair survives only when it strictly undercuts every
	// higher-capacity span (otherwise some pair with no less capacity
	// and no more cost dominates the whole span).
	bestCu := units.USDPerHour(0)
	haveBest := false
	for si := len(x.spans) - 1; si >= 0; si-- {
		sp := x.spans[si]
		if cheapest := x.pairs[sp.start].cu; !haveBest || cheapest < bestCu {
			x.stair = append(x.stair, stairStep{pairIdx: sp.start, start: sp.start, end: sp.end})
			bestCu, haveBest = cheapest, true
		}
	}
	return x
}

// fillSpanMinima computes the running lessTuple / minimal-index minima
// for every pair inside spans [lo, hi); spans touch disjoint pair
// ranges, so concurrent calls over distinct span ranges never overlap.
func (x *FrontierIndex) fillSpanMinima(lo, hi int) {
	for si := lo; si < hi; si++ {
		sp := x.spans[si]
		run := x.pairs[sp.start].lessMin
		runIdx := x.pairs[sp.start].minIdx
		x.spanLess[sp.start] = run
		x.spanMinIdx[sp.start] = runIdx
		for k := sp.start + 1; k < sp.end; k++ {
			if lessTupleFast(x.pairs[k].lessMin, run) {
				run = x.pairs[k].lessMin
			}
			if x.pairs[k].minIdx < runIdx {
				runIdx = x.pairs[k].minIdx
			}
			x.spanLess[k] = run
			x.spanMinIdx[k] = runIdx
		}
	}
}

// spanRange returns the half-open range of span indices whose exact
// capacity predicts exactly T under demand d: predicted time is
// non-increasing in capacity (IEEE division is monotone), so the range
// is contiguous in the capacity-sorted span table. Distinct exact
// capacities ULP apart can round to the same T — the rounding-collapse
// class the scan's ties run over — so the range may hold several spans.
func (x *FrontierIndex) spanRange(d units.Instructions, T units.Seconds) (lo, hi int) {
	lo = sort.Search(len(x.spans), func(i int) bool {
		return units.Time(d, x.spans[i].u) <= T
	})
	hi = sort.Search(len(x.spans), func(i int) bool {
		return units.Time(d, x.spans[i].u) < T
	})
	return lo, hi
}

// census answers Analyze's aggregate questions from the index: the
// exact feasible count and the streaming frontier, both produced with
// the same float operations and the same insertion order as the scan.
func (x *FrontierIndex) census(e *Engine, d units.Instructions, cons Constraints) (uint64, []pareto.Point) {
	deadline, budget := cons.deadlineOrInf(), cons.budgetOrInf()

	// Predicted time is non-increasing in capacity (IEEE division is
	// monotone), so the time-feasible spans are a suffix of the
	// capacity-sorted span table; within a span cost is non-decreasing
	// in c_u, so the budget-feasible pairs are a prefix of the span.
	lo := sort.Search(len(x.spans), func(i int) bool {
		return units.Time(d, x.spans[i].u) < deadline
	})
	var feasible uint64
	for si := lo; si < len(x.spans); si++ {
		sp := x.spans[si]
		T := units.Time(d, sp.u)
		n := sp.end - sp.start
		b := sort.Search(n, func(i int) bool {
			return e.billCost(T, x.pairs[sp.start+i].cu) >= budget
		})
		feasible += x.prefix[sp.start+b] - x.prefix[sp.start]
	}

	// The staircase is a superset of every per-query frontier's
	// (time, cost) values (see the package comment's monotonicity
	// argument), so streaming it reproduces the scan's frontier values.
	var stream pareto.Stream2D
	for _, st := range x.stair {
		pr := &x.pairs[st.pairIdx]
		T := units.Time(d, pr.u)
		C := e.billCost(T, pr.cu)
		if T >= deadline || C >= budget {
			continue
		}
		//lint:allow unitsafe pareto.Point is the unit-agnostic frontier kernel; axes are re-typed on rebuild by the caller
		stream.Add(pareto.Point{X: float64(T), Y: float64(C), ID: pr.minIdx})
	}
	front := stream.Frontier()

	// The scan's frontier IDs are the minimal configuration index over
	// every configuration that rounds to exactly the point's (T, C) —
	// its Stream2D sees configurations in ascending-index order and
	// keeps the first on exact value ties — so each staircase
	// representative's ID is widened to its rounding-collapse class:
	// every span predicting exactly T, restricted to the pairs costing
	// exactly C. Those pairs are a prefix of each such span (cost is
	// non-decreasing in c_u, and a cheaper pair in an equal-T span would
	// have knocked the point off the frontier), so the precomputed
	// prefix minima answer each span in one search.
	for fi := range front {
		T, C := units.Seconds(front[fi].X), units.USD(front[fi].Y)
		lo, hi := x.spanRange(d, T)
		best := front[fi].ID
		for si := lo; si < hi; si++ {
			sp := x.spans[si]
			ub := sort.Search(sp.end-sp.start, func(i int) bool {
				return e.billCost(T, x.pairs[sp.start+i].cu) > C
			})
			if ub > 0 && x.spanMinIdx[sp.start+ub-1] < best {
				best = x.spanMinIdx[sp.start+ub-1]
			}
		}
		front[fi].ID = best
	}
	return feasible, front
}

// minSearch answers the argmin queries from the index with the scan's
// exact semantics: minimal objective under both constraints, ties
// broken by the lexicographically least tuple.
func (x *FrontierIndex) minSearch(e *Engine, d units.Instructions, cons Constraints, obj objective) (model.Prediction, bool) {
	deadline, budget := cons.deadlineOrInf(), cons.budgetOrInf()
	if obj == objectiveTime {
		// Minimal time = maximal capacity: walk the staircase from the
		// top. The first feasible step carries the optimal time — any
		// skipped pair with more capacity is dominated by an already-
		// rejected step whose time and cost it can only match or
		// exceed. The scan breaks time ties by the lexicographically
		// least tuple over every feasible achiever, so the winner is
		// gathered from the budget-feasible prefix of every span that
		// predicts exactly the winning time (the collapse class), not
		// just the step's own span.
		for _, st := range x.stair {
			pr := &x.pairs[st.pairIdx]
			T := units.Time(d, pr.u)
			C := e.billCost(T, pr.cu)
			if T >= deadline || C >= budget {
				continue
			}
			lo, hi := x.spanRange(d, T)
			var bestTuple config.Tuple
			have := false
			for si := lo; si < hi; si++ {
				sp := x.spans[si]
				b := sort.Search(sp.end-sp.start, func(i int) bool {
					return e.billCost(T, x.pairs[sp.start+i].cu) >= budget
				})
				if b == 0 {
					continue
				}
				if cand := x.spanLess[sp.start+b-1]; !have || lessTupleFast(cand, bestTuple) {
					bestTuple, have = cand, true
				}
			}
			return e.caps.PredictBilled(d, bestTuple, e.billing), true
		}
		return model.Prediction{}, false
	}
	// Minimal cost: the staircase holds the optimal value — every
	// time-feasible pair is weakly dominated by a time-feasible step
	// costing no more — but the scan's tie-break runs over every
	// achiever, so a second pass gathers the lexicographically least
	// tuple from the exact-cost prefix of every time-feasible span
	// (no time-feasible pair costs less than the optimum, so the
	// achievers are exactly each span's cost-ordered prefix at it).
	bestC := units.USD(0)
	found := false
	for _, st := range x.stair {
		pr := &x.pairs[st.pairIdx]
		T := units.Time(d, pr.u)
		C := e.billCost(T, pr.cu)
		if T >= deadline || C >= budget {
			continue
		}
		if !found || C < bestC {
			bestC, found = C, true
		}
	}
	if !found {
		return model.Prediction{}, false
	}
	lo := sort.Search(len(x.spans), func(i int) bool {
		return units.Time(d, x.spans[i].u) < deadline
	})
	var bestTuple config.Tuple
	have := false
	for si := lo; si < len(x.spans); si++ {
		sp := x.spans[si]
		T := units.Time(d, sp.u)
		ub := sort.Search(sp.end-sp.start, func(i int) bool {
			return e.billCost(T, x.pairs[sp.start+i].cu) > bestC
		})
		if ub == 0 {
			continue
		}
		if cand := x.spanLess[sp.start+ub-1]; !have || lessTupleFast(cand, bestTuple) {
			bestTuple, have = cand, true
		}
	}
	return e.caps.PredictBilled(d, bestTuple, e.billing), true
}

// Candidate is one staircase step of the demand-invariant frontier:
// an exact (capacity, unit cost) value pair together with a
// deterministic representative configuration (the lessTuple-minimal
// member of the step's cheapest pair). Under any Indexable billing
// policy every per-query optimum takes its (time, cost) values from
// some candidate, whatever the demand — the property the schedule
// solver builds on: one candidate table prices every timestep of a
// trace.
type Candidate struct {
	Config config.Tuple
	U      units.Rate
	Cu     units.USDPerHour
}

// Candidates returns the staircase in descending-capacity order. The
// slice is freshly allocated; the index itself stays immutable.
func (x *FrontierIndex) Candidates() []Candidate {
	out := make([]Candidate, len(x.stair))
	for i, st := range x.stair {
		pr := &x.pairs[st.pairIdx]
		out[i] = Candidate{Config: pr.lessMin, U: pr.u, Cu: pr.cu}
	}
	return out
}

// FrontierCandidates builds the index if needed and returns its
// staircase candidates regardless of the engine's billing policy or
// index opt-in: the (U, c_u) pair table and its staircase depend only
// on the catalog (billing enters at query-time pricing), so horizon
// solvers can reuse one build even on engines whose billing is not
// certified index-monotone (their per-query paths fall back to the
// scan) and on engines that never opted their query surface in. ok is
// false when the catalog does not compress under the pair cap.
func (e *Engine) FrontierCandidates() ([]Candidate, bool) {
	idx := e.ensureIndex()
	if idx == nil {
		return nil, false
	}
	return idx.Candidates(), true
}

// Frontier returns the billing-independent frontier index object,
// building it on first use regardless of the engine's query opt-in and
// billing policy — the snapshot layer persists exactly this object. ok
// is false when the catalog does not compress under the pair cap.
func (e *Engine) Frontier() (*FrontierIndex, bool) {
	x := e.ensureIndex()
	return x, x != nil
}

// ensureIndex performs the lazy at-most-once build: the first caller
// builds under idxMu, later callers read the published pointer. An
// install (snapshot restore) that happened first counts as the build.
func (e *Engine) ensureIndex() *FrontierIndex {
	if e.idxTried.Load() {
		return e.idx.Load()
	}
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	if e.idxTried.Load() {
		return e.idx.Load()
	}
	// The build's worker join runs under idxMu on purpose: the lock is
	// exactly what makes the build at-most-once, the fan-out is a static
	// chunking over GOMAXPROCS workers that touches no other locks, and
	// every later caller takes the fast path above without locking.
	//lint:allow lockdisciplineip deliberate build-under-lock: bounded internal worker join, no other locks involved
	x := buildFrontierIndex(e)
	if x != nil {
		e.idx.Store(x)
		e.idxReady.Store(true)
	}
	e.idxTried.Store(true)
	return x
}

// InstallIndex atomically publishes a prebuilt index — typically one
// decoded from an on-disk snapshot — as this engine's frontier index.
// In-flight queries keep the pointer they already loaded; new queries
// see the installed index immediately. The index must cover exactly
// this engine's configuration space; callers are responsible for
// matching the catalog itself (internal/snapshot pins it with a
// fingerprint). Installing does not flip the query surface on — the
// engine still honors SetUseIndex and the billing certification gate.
func (e *Engine) InstallIndex(x *FrontierIndex) error {
	if x == nil {
		return fmt.Errorf("core: install of nil index")
	}
	if x.total != e.space.Size() {
		return fmt.Errorf("core: index covers %d configurations, space has %d", x.total, e.space.Size())
	}
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	e.idx.Store(x)
	e.idxReady.Store(true)
	e.idxTried.Store(true)
	return nil
}

// RebuildIndex rebuilds the frontier index from the engine's current
// catalog and atomically swaps it in, leaving the previously published
// index serving until the very last store — queries never observe a
// half-built index. A panic inside the build is contained and returned
// as an error with the old index (if any) still in place, so a
// background rebuild can never take the serving path down. Returns the
// new index's stats on success.
func (e *Engine) RebuildIndex() (st IndexStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: index rebuild panic: %v", r)
		}
	}()
	x := buildFrontierIndex(e)
	if x == nil {
		e.idxTried.Store(true)
		return IndexStats{}, fmt.Errorf("core: catalog did not compress under the pair cap")
	}
	e.idxMu.Lock()
	e.idx.Store(x)
	e.idxReady.Store(true)
	e.idxTried.Store(true)
	e.idxMu.Unlock()
	return x.Stats(), nil
}

// SetUseIndex opts the engine in (or out) of the frontier index. The
// index is built lazily on the first routed query and reused by every
// later one. Not safe to flip concurrently with queries: set it during
// engine assembly, before serving.
func (e *Engine) SetUseIndex(on bool) { e.useIndex = on }

// UseIndex reports whether the engine is opted into the frontier index.
func (e *Engine) UseIndex() bool { return e.useIndex }

// indexFor returns the index when this query may be answered from it:
// the engine opted in, the billing policy is certified index-monotone
// (model.Billing.Indexable — per-second and per-hour both are), and
// the build did not overflow maxIndexPairs.
func (e *Engine) indexFor() *FrontierIndex {
	if !e.useIndex || !e.billing.Indexable() {
		return nil
	}
	return e.ensureIndex()
}

// IndexActive reports whether queries are currently answered from the
// frontier index, building it if the engine opted in and it does not
// exist yet.
func (e *Engine) IndexActive() bool { return e.indexFor() != nil }

// FrontierIndex exposes the engine's index (building it on first use);
// ok is false when the engine is opted out, the billing policy is not
// certified index-monotone, or the catalog did not compress under
// maxIndexPairs.
func (e *Engine) FrontierIndex() (*FrontierIndex, bool) {
	idx := e.indexFor()
	return idx, idx != nil
}

// IndexBuilt reports whether queries are currently routed to an
// already-built index, without triggering the build: response headers
// and telemetry probe this on paths (cache hits, bypassed engines)
// that must not pay the build cost. The atomic load orders the idx
// pointer read after the build's completing store.
func (e *Engine) IndexBuilt() bool {
	return e.useIndex && e.billing.Indexable() && e.idxReady.Load()
}

// FrontierBuilt reports whether the billing-independent pair table and
// staircase exist (built by any path, including FrontierCandidates),
// without triggering a build. Distinct from IndexBuilt: an opted-out
// engine's per-query paths bypass the index, yet a horizon solve on it
// is still index-backed.
func (e *Engine) FrontierBuilt() bool { return e.idxReady.Load() }

// BypassCause classifies why analytic queries on an engine are (or
// would be) answered by the exhaustive scan instead of the frontier
// index, so operators can tell a configuration choice from a
// capability gap (the serving layer counts and labels them
// separately).
type BypassCause int

const (
	// BypassNone: the index path is active or will activate on the
	// first routed query.
	BypassNone BypassCause = iota
	// BypassConfig: the engine was deliberately opted out
	// (SetUseIndex(false) / serving's DisableIndex) — a config choice.
	BypassConfig
	// BypassBilling: the engine's billing policy is not certified
	// index-monotone (model.Billing.Indexable) — a capability gap.
	// Per-second and per-hour are both certified; only unknown future
	// policies land here.
	BypassBilling
	// BypassPairCap: the catalog did not compress under maxIndexPairs,
	// so the build aborted — a capability gap.
	BypassPairCap
)

// IndexBypassCause reports the engine's bypass classification without
// triggering a build. Opt-out is reported before billing: a
// deliberately scan-backed engine stays "config" whatever it bills.
func (e *Engine) IndexBypassCause() BypassCause {
	switch {
	case !e.useIndex:
		return BypassConfig
	case !e.billing.Indexable():
		return BypassBilling
	case e.idxTried.Load() && !e.idxReady.Load():
		return BypassPairCap
	default:
		return BypassNone
	}
}

// IndexBypassReason explains why analytic queries on this engine are
// (or would be) answered by the exhaustive scan instead of the
// frontier index. It returns "" when the index path is active or will
// activate on the first routed query, and never triggers a build
// itself, so operators can probe it at startup for free.
func (e *Engine) IndexBypassReason() string {
	switch e.IndexBypassCause() {
	case BypassConfig:
		return "index disabled for this engine"
	case BypassBilling:
		return fmt.Sprintf("billing policy %s is not certified index-monotone; every query falls back to the exhaustive scan", e.billing)
	case BypassPairCap:
		return "catalog did not compress under the pair cap; queries fall back to the exhaustive scan"
	default:
		return ""
	}
}
