// Binary encoding of the frontier index, the payload inside
// internal/snapshot's checksummed envelope. Only the aggregated pair
// table is serialized: every secondary structure (spans, prefix counts,
// running tie-break minima, the staircase) is a pure function of the
// sorted pairs and is re-derived on decode through finishIndex — the
// same code path the scan build uses — so a decoded index is
// structurally identical to the one it was encoded from, and the format
// cannot drift from the derivation logic.
//
// Layout (all integers little-endian, floats as IEEE-754 bit patterns):
//
//	u64 total        configuration count the index covers (space size)
//	u64 buildWall    original build wall-clock, nanoseconds
//	u32 npairs       pair-table length
//	u8  arity        tuple arity M, shared by every pair
//	npairs × {
//	    u64 u        capacity bits
//	    u64 cu       unit-cost bits
//	    u64 count    configurations aggregated into this pair
//	    u64 minIdx   minimal configuration index of the pair
//	    M × u8       lessTuple-minimal member's counts
//	}
//
// DecodeFrontierIndex is strict: any structural violation — wrong
// length, unsorted or non-finite pairs, zero counts, a population that
// does not sum back to total — is rejected, so a corrupted artifact
// that somehow passes the envelope checksum still cannot produce wrong
// answers.
package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/units"
)

// codecHeaderLen is the fixed prefix before the pair records: total,
// buildWall, npairs, arity.
const codecHeaderLen = 8 + 8 + 4 + 1

// pairRecordLen is the fixed per-pair size excluding the arity-sized
// tuple tail.
const pairRecordLen = 8 + 8 + 8 + 8

// parallelCodecMin is the smallest pair count per decode worker worth a
// goroutine; payloads below it decode in the calling goroutine.
const parallelCodecMin = 1 << 14

// EncodeBinary serializes the index to its snapshot payload form. The
// encoding is deterministic: the pair table is already totally ordered,
// so equal indexes produce equal bytes.
func (x *FrontierIndex) EncodeBinary() []byte {
	arity := 0
	if len(x.pairs) > 0 {
		arity = x.pairs[0].lessMin.Len()
	}
	buf := make([]byte, 0, codecHeaderLen+len(x.pairs)*(pairRecordLen+arity))
	buf = binary.LittleEndian.AppendUint64(buf, x.total)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(x.buildWall.Nanoseconds()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.pairs)))
	buf = append(buf, byte(arity))
	for i := range x.pairs {
		pr := &x.pairs[i]
		//lint:allow unitsafe serialization needs the exact IEEE bit pattern; the typed value round-trips bit-identically
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(pr.u)))
		//lint:allow unitsafe serialization needs the exact IEEE bit pattern; the typed value round-trips bit-identically
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(pr.cu)))
		buf = binary.LittleEndian.AppendUint64(buf, pr.count)
		buf = binary.LittleEndian.AppendUint64(buf, pr.minIdx)
		for k := 0; k < arity; k++ {
			buf = append(buf, byte(pr.lessMin.Count(k)))
		}
	}
	return buf
}

// DecodeFrontierIndex parses an EncodeBinary payload back into a full
// index, re-deriving every secondary table, and rejects any payload
// that is not a structurally valid encoding.
func DecodeFrontierIndex(payload []byte) (*FrontierIndex, error) {
	if len(payload) < codecHeaderLen {
		return nil, fmt.Errorf("core: index payload %d bytes, header needs %d", len(payload), codecHeaderLen)
	}
	total := binary.LittleEndian.Uint64(payload[0:])
	buildWall := time.Duration(binary.LittleEndian.Uint64(payload[8:]))
	npairs := int(binary.LittleEndian.Uint32(payload[16:]))
	arity := int(payload[20])
	if npairs < 1 {
		return nil, fmt.Errorf("core: index payload holds no pairs")
	}
	if arity < 1 || arity > config.MaxTypes {
		return nil, fmt.Errorf("core: pair arity %d outside [1, %d]", arity, config.MaxTypes)
	}
	if buildWall < 0 {
		return nil, fmt.Errorf("core: negative build wall-clock")
	}
	record := pairRecordLen + arity
	if want := codecHeaderLen + npairs*record; len(payload) != want {
		return nil, fmt.Errorf("core: index payload %d bytes, %d pairs need exactly %d", len(payload), npairs, want)
	}

	pairs := make([]idxPair, npairs)
	var population uint64
	workers := runtime.GOMAXPROCS(0)
	if most := 1 + npairs/parallelCodecMin; workers > most {
		workers = most
	}
	if workers == 1 {
		p, err := decodeChunk(payload, pairs, record, total, 0, npairs)
		if err != nil {
			return nil, err
		}
		population = p
	} else {
		// Chunks validate independently — the lo boundary's sortedness
		// check reads the previous record's raw bytes — so the paper-
		// scale restore parses in parallel and tracks the parallel
		// build it is racing against across core counts.
		chunk := (npairs + workers - 1) / workers
		sums := make([]uint64, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > npairs {
				hi = npairs
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				sums[w], errs[w] = decodeChunk(payload, pairs, record, total, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		// Workers cover ascending pair ranges, so the lowest-index
		// error matches what the serial walk would have reported.
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				return nil, errs[w]
			}
			if sums[w] > total-population {
				return nil, fmt.Errorf("core: pair population exceeds the %d-configuration space", total)
			}
			population += sums[w]
		}
	}
	if population != total {
		return nil, fmt.Errorf("core: pairs aggregate %d configurations, index claims %d", population, total)
	}
	x := finishIndex(pairs, total)
	x.buildWall = buildWall
	return x, nil
}

// decodeChunk parses and validates the pair records in [lo, hi),
// returning the chunk's population sum. The serial decode is the
// single-chunk call, so both restore paths share one code path.
func decodeChunk(payload []byte, pairs []idxPair, record int, total uint64, lo, hi int) (uint64, error) {
	var population uint64
	for i := lo; i < hi; i++ {
		rec := payload[codecHeaderLen+i*record:]
		rec = rec[:record:record]
		pr := &pairs[i]
		pr.u = units.Rate(math.Float64frombits(binary.LittleEndian.Uint64(rec[0:8])))
		pr.cu = units.USDPerHour(math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16])))
		pr.count = binary.LittleEndian.Uint64(rec[16:24])
		pr.minIdx = binary.LittleEndian.Uint64(rec[24:32])
		//lint:allow unitsafe finiteness validation of the raw decoded bits, no cross-dimension arithmetic
		if math.IsNaN(float64(pr.u)) || math.IsInf(float64(pr.u), 0) || pr.u < 0 {
			return 0, fmt.Errorf("core: pair %d has invalid capacity", i)
		}
		//lint:allow unitsafe finiteness validation of the raw decoded bits, no cross-dimension arithmetic
		if math.IsNaN(float64(pr.cu)) || math.IsInf(float64(pr.cu), 0) || pr.cu < 0 {
			return 0, fmt.Errorf("core: pair %d has invalid unit cost", i)
		}
		if i > 0 {
			prevU, prevCu := pairs[i-1].u, pairs[i-1].cu
			if i == lo {
				// The previous record belongs to another chunk and may
				// not be parsed yet; read its key straight from the
				// payload instead of coordinating across workers.
				prev := payload[codecHeaderLen+(i-1)*record:]
				prevU = units.Rate(math.Float64frombits(binary.LittleEndian.Uint64(prev[0:8])))
				prevCu = units.USDPerHour(math.Float64frombits(binary.LittleEndian.Uint64(prev[8:16])))
			}
			//lint:allow floateq the pair table is keyed by exact float identity; ordering must be strict on the same bits
			if !(pr.u > prevU || (pr.u == prevU && pr.cu > prevCu)) {
				return 0, fmt.Errorf("core: pair table unsorted at %d", i)
			}
		}
		if pr.count == 0 {
			return 0, fmt.Errorf("core: pair %d aggregates zero configurations", i)
		}
		if pr.minIdx >= total {
			return 0, fmt.Errorf("core: pair %d minIdx %d outside [0, %d)", i, pr.minIdx, total)
		}
		if pr.count > total-population {
			return 0, fmt.Errorf("core: pair population exceeds the %d-configuration space", total)
		}
		population += pr.count
		t, err := config.TupleFromBytes(rec[pairRecordLen:])
		if err != nil {
			return 0, fmt.Errorf("core: pair %d tuple: %w", i, err)
		}
		pr.lessMin = t
	}
	return population, nil
}

// IndexFingerprint is a hex SHA-256 over everything the frontier index
// is a pure function of: the configuration space's per-type limits and
// the catalog's exact per-node capacity and cost bit patterns. Two
// engines with equal fingerprints build bit-identical indexes, so the
// snapshot layer uses it to reject stale artifacts after any catalog,
// price, or space change. Billing is deliberately excluded — the pair
// table is billing-independent (billing enters at query-time pricing).
func (e *Engine) IndexFingerprint() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(e.space.Types()))
	for i := 0; i < e.space.Types(); i++ {
		put(uint64(e.space.Max(i)))
	}
	w, cost := e.caps.NodeArrays()
	for _, r := range w {
		//lint:allow unitsafe fingerprinting hashes the exact IEEE bit pattern; no arithmetic happens on the raw value
		put(math.Float64bits(float64(r)))
	}
	for _, c := range cost {
		//lint:allow unitsafe fingerprinting hashes the exact IEEE bit pattern; no arithmetic happens on the raw value
		put(math.Float64bits(float64(c)))
	}
	return hex.EncodeToString(h.Sum(nil))
}
