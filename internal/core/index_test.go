package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// indexedEngine is smallEngine opted into the frontier index.
func indexedEngine(t *testing.T, app workload.App, maxNodes int) *Engine {
	t.Helper()
	eng := smallEngine(t, app, maxNodes)
	eng.SetUseIndex(true)
	return eng
}

// requireSameAnalysis asserts byte-identical Analysis values: deep
// equality of the structs and equality of their JSON encodings (the
// form the serving layer caches and returns).
func requireSameAnalysis(t *testing.T, label string, idx, scan Analysis) {
	t.Helper()
	if !reflect.DeepEqual(idx, scan) {
		t.Fatalf("%s: indexed Analysis differs from scan:\nindexed: %+v\nscan:    %+v", label, idx, scan)
	}
	bi, err := json.Marshal(idx)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := json.Marshal(scan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bi, bs) {
		t.Fatalf("%s: JSON encodings differ:\n%s\n%s", label, bi, bs)
	}
}

func TestLessTupleFastMatchesLessTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	randTuple := func() config.Tuple {
		arity := 1 + rng.Intn(12)
		counts := make([]int, arity)
		for i := range counts {
			// Bias toward multi-digit counts: the string order of
			// "[1,10]" vs "[1,2]" is where a naive numeric comparison
			// would diverge from lessTuple.
			counts[i] = rng.Intn(256)
		}
		tp, err := config.NewTuple(counts)
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	for trial := 0; trial < 20000; trial++ {
		a, b := randTuple(), randTuple()
		if trial%5 == 0 {
			b = a // exercise the equal case
		}
		if got, want := lessTupleFast(a, b), lessTuple(a, b); got != want {
			t.Fatalf("lessTupleFast(%v, %v) = %v, lessTuple = %v", a, b, got, want)
		}
		if got, want := lessTupleFast(b, a), lessTuple(b, a); got != want {
			t.Fatalf("lessTupleFast(%v, %v) = %v, lessTuple = %v", b, a, got, want)
		}
	}
	// The documented divergence trap: "[1,10,...]" sorts before
	// "[1,2,...]" because ',' < '2' byte-wise.
	a := config.MustTuple(1, 10)
	b := config.MustTuple(1, 2)
	if !lessTupleFast(a, b) || !lessTuple(a, b) {
		t.Fatalf("string order of %v vs %v not preserved", a, b)
	}
}

func TestIndexedAnalyzeMatchesScanSmall(t *testing.T) {
	scanEng := smallEngine(t, galaxy.App{}, 2)
	idxEng := indexedEngine(t, galaxy.App{}, 2)
	if !idxEng.IndexActive() {
		t.Fatal("index not active on a per-second engine that opted in")
	}
	p := workload.Params{N: 32768, A: 2000}
	cases := []struct {
		label string
		cons  Constraints
	}{
		{"both", Constraints{Deadline: units.FromHours(24), Budget: 200}},
		{"deadline-only", Constraints{Deadline: units.FromHours(24)}},
		{"budget-only", Constraints{Budget: 150}},
		{"unconstrained", Constraints{}},
		{"infeasible", Constraints{Deadline: 1, Budget: 0.001}},
		{"tight-budget", Constraints{Deadline: units.FromHours(48), Budget: 40}},
	}
	for _, c := range cases {
		scan, err := scanEng.Analyze(p, c.cons, Options{})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := idxEng.Analyze(p, c.cons, Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameAnalysis(t, c.label, idx, scan)
	}
}

func TestIndexedArgminMatchesExhaustiveSmall(t *testing.T) {
	scanEng := smallEngine(t, galaxy.App{}, 2)
	idxEng := indexedEngine(t, galaxy.App{}, 2)
	p := workload.Params{N: 32768, A: 2000}
	d, err := scanEng.Demand(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, deadline := range []units.Seconds{units.FromHours(6), units.FromHours(24), units.FromHours(72), 0} {
		for _, budget := range []units.USD{30, 100, 500, 0} {
			label := fmt.Sprintf("deadline=%v budget=%v", deadline, budget)
			cons := Constraints{Deadline: deadline, Budget: budget}
			for _, obj := range []objective{objectiveCost, objectiveTime} {
				want, okW := scanEng.scanSearch(d, cons, obj)
				idx, ok := idxEng.FrontierIndex()
				if !ok {
					t.Fatal("no index")
				}
				got, okG := idx.minSearch(idxEng, d, cons, obj)
				if okW != okG {
					t.Fatalf("%s obj=%d: ok %v vs scan %v", label, obj, okG, okW)
				}
				if okW && !reflect.DeepEqual(got, want) {
					t.Fatalf("%s obj=%d: indexed %+v != scan %+v", label, obj, got, want)
				}
			}
		}
	}
	// The public entry points, including the exhaustive argmin used to
	// certify Decomposed (identical tuple, not just identical cost).
	for _, deadline := range []units.Seconds{units.FromHours(12), units.FromHours(24)} {
		gotP, okG, err := idxEng.MinCostForDeadline(p, deadline)
		if err != nil {
			t.Fatal(err)
		}
		wantP, okW, err := scanEng.MinCostExhaustive(p, deadline)
		if err != nil {
			t.Fatal(err)
		}
		if okG != okW || !reflect.DeepEqual(gotP, wantP) {
			t.Fatalf("MinCostForDeadline(%v): indexed %+v/%v != exhaustive %+v/%v",
				deadline, gotP, okG, wantP, okW)
		}
	}
}

func TestIndexedMaxAccuracyMatchesScanSmall(t *testing.T) {
	scanEng := smallEngine(t, galaxy.App{}, 2)
	idxEng := indexedEngine(t, galaxy.App{}, 2)
	cons := Constraints{Deadline: units.FromHours(24), Budget: 60}
	pS, predS, okS, err := scanEng.MaxAccuracy(32768, cons, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	pI, predI, okI, err := idxEng.MaxAccuracy(32768, cons, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if okS != okI || pS != pI || !reflect.DeepEqual(predS, predI) {
		t.Fatalf("MaxAccuracy: indexed (%+v, %+v, %v) != scan (%+v, %+v, %v)",
			pI, predI, okI, pS, predS, okS)
	}
}

func TestIndexedEpsilonMatchesScanSmall(t *testing.T) {
	scanEng := smallEngine(t, galaxy.App{}, 2)
	idxEng := indexedEngine(t, galaxy.App{}, 2)
	p := workload.Params{N: 32768, A: 2000}
	cons := Constraints{Deadline: units.FromHours(48), Budget: 500}
	for _, opts := range []Options{
		{EpsTime: 3600, EpsCost: 5},
		{EpsTime: 3600},
		{EpsCost: 5},
	} {
		scan, err := scanEng.Analyze(p, cons, opts)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := idxEng.Analyze(p, cons, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireSameAnalysis(t, fmt.Sprintf("eps=%v/%v", opts.EpsTime, opts.EpsCost), idx, scan)
	}
}

func TestIndexedSamplingForcesScan(t *testing.T) {
	// Sampling needs the per-configuration walk, so an indexed engine
	// must produce exactly what the scan produces, sample included.
	scanEng := smallEngine(t, galaxy.App{}, 2)
	idxEng := indexedEngine(t, galaxy.App{}, 2)
	p := workload.Params{N: 32768, A: 2000}
	cons := Constraints{Deadline: units.FromHours(48), Budget: 500}
	opts := Options{Workers: 4, SampleEvery: 10, SampleCap: 50}
	scan, err := scanEng.Analyze(p, cons, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := idxEng.Analyze(p, cons, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Sample) == 0 {
		t.Fatal("sampling returned nothing through an indexed engine")
	}
	requireSameAnalysis(t, "sampled", idx, scan)
}

func TestIndexPerHourBillingServes(t *testing.T) {
	// Per-hour ceil billing is jointly monotone in (time, unit cost),
	// so the same index serves it: queries stay routed, and they match
	// the exhaustive per-hour argmin exactly — tuple included.
	eng := indexedEngine(t, galaxy.App{}, 2)
	if !eng.IndexActive() {
		t.Fatal("per-second index inactive")
	}
	eng.SetBilling(model.PerHour)
	if !eng.IndexActive() {
		t.Fatal("index inactive under per-hour billing: ceil billing is certified index-monotone")
	}
	if _, ok := eng.FrontierIndex(); !ok {
		t.Fatal("FrontierIndex withheld under per-hour billing")
	}
	p := workload.Params{N: 32768, A: 2000}
	got, okG, err := eng.MinCostForDeadline(p, units.FromHours(24))
	if err != nil {
		t.Fatal(err)
	}
	scanEng := smallEngine(t, galaxy.App{}, 2)
	scanEng.SetBilling(model.PerHour)
	want, okW, err := scanEng.MinCostExhaustive(p, units.FromHours(24))
	if err != nil {
		t.Fatal(err)
	}
	if okG != okW || !reflect.DeepEqual(got, want) {
		t.Fatalf("per-hour indexed: %+v/%v != exhaustive %+v/%v", got, okG, want, okW)
	}
	// Uncertified billing policies fall back to the scan — and flip
	// back to the already-built index when billing returns to a
	// certified policy.
	eng.SetBilling(model.Billing(7))
	if eng.IndexActive() {
		t.Fatal("index active under an uncertified billing policy")
	}
	if cause := eng.IndexBypassCause(); cause != BypassBilling {
		t.Fatalf("bypass cause = %d, want BypassBilling", cause)
	}
	eng.SetBilling(model.PerSecond)
	if !eng.IndexActive() {
		t.Fatal("index did not reactivate under per-second billing")
	}
}

func TestIndexOverflowGuardFallsBack(t *testing.T) {
	old := maxIndexPairs
	maxIndexPairs = 8
	defer func() { maxIndexPairs = old }()
	eng := smallEngine(t, galaxy.App{}, 1)
	eng.SetUseIndex(true)
	if eng.IndexActive() {
		t.Fatal("index built past the pair cap")
	}
	// Queries still answer, via the scan.
	scanEng := smallEngine(t, galaxy.App{}, 1)
	p := workload.Params{N: 32768, A: 1000}
	cons := Constraints{Deadline: units.FromHours(24), Budget: 500}
	scan, err := scanEng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := eng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameAnalysis(t, "overflow", idx, scan)
}

func TestIndexGoldenPaperSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-space census in -short mode")
	}
	// The golden certification: on the paper's full 10,077,695-
	// configuration space, the indexed census must reproduce the
	// exhaustive census byte for byte, and the index's shape must match
	// the recorded compression (EXPERIMENTS.md pins the census values).
	scanEng := NewPaperEngine(galaxy.App{})
	idxEng := NewPaperEngine(galaxy.App{})
	idxEng.SetUseIndex(true)

	idx, ok := idxEng.FrontierIndex()
	if !ok {
		t.Fatal("paper engine refused to build the index")
	}
	stats := idx.Stats()
	if stats.Pairs != 657394 {
		t.Errorf("galaxy distinct (U, c_u) pairs = %d, want 657394", stats.Pairs)
	}
	if stats.Staircase != 118 {
		t.Errorf("galaxy staircase = %d entries, want 118", stats.Staircase)
	}

	p := workload.Params{N: 65536, A: 8000}
	cons := Constraints{Deadline: units.FromHours(24), Budget: 350}
	scan, err := scanEng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := idxEng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameAnalysis(t, "galaxy", got, scan)
	if got.Feasible != 7916146 || len(got.Frontier) != 77 {
		t.Errorf("galaxy census = %d feasible, %d frontier; want 7916146, 77",
			got.Feasible, len(got.Frontier))
	}

	// The paper's annotated spill point via the index. The exhaustive
	// scan's winner is [5,5,5,1,1,0,0,0,0]: within the type-3/type-4
	// instance family (exact 2× vCPU/price scaling) the two spellings
	// are the same machine mix, but the float accumulation of the
	// (1,1) split rounds one ulp cheaper, so it is the true float
	// argmin. The decomposed path prunes it inside its category table
	// and lands on [5,5,5,3,0,0,0,0,0] one ulp above — a pre-existing
	// ulp-level divergence of the decomposed path, not an index
	// regression; the index certifies against the exhaustive scan.
	pred, okP, err := idxEng.MinCostForDeadline(p, units.FromHours(24))
	if err != nil || !okP {
		t.Fatal(okP, err)
	}
	if pred.Config.String() != "[5,5,5,1,1,0,0,0,0]" {
		t.Errorf("indexed spill config = %s, want [5,5,5,1,1,0,0,0,0]", pred.Config)
	}
	exh, okE, err := scanEng.MinCostExhaustive(p, units.FromHours(24))
	if err != nil || !okE {
		t.Fatal(okE, err)
	}
	if !reflect.DeepEqual(pred, exh) {
		t.Errorf("indexed mincost %+v != exhaustive %+v", pred, exh)
	}
	dec, okD, err := scanEng.MinCostForDeadline(p, units.FromHours(24))
	if err != nil || !okD {
		t.Fatal(okD, err)
	}
	if dec.Config.String() != "[5,5,5,3,0,0,0,0,0]" || dec.Cost <= pred.Cost {
		t.Errorf("decomposed pick %s at $%v changed; the documented ulp gap to the index's $%v no longer holds",
			dec.Config, dec.Cost, pred.Cost)
	}
}

func TestIndexGoldenPaperSpaceSand(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-space census in -short mode")
	}
	scanEng := NewPaperEngine(sand.App{})
	idxEng := NewPaperEngine(sand.App{})
	idxEng.SetUseIndex(true)
	p := workload.Params{N: 8192e6, A: 0.32}
	cons := Constraints{Deadline: units.FromHours(24), Budget: 350}
	scan, err := scanEng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := idxEng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameAnalysis(t, "sand", got, scan)
	if got.Feasible != 543966 || len(got.Frontier) != 51 {
		t.Errorf("sand census = %d feasible, %d frontier; want 543966, 51",
			got.Feasible, len(got.Frontier))
	}
}

func TestIndexGoldenPaperSpacePerHour(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-space census in -short mode")
	}
	// The per-hour golden certification: on the paper's full
	// configuration space under the billing policy the paper's own era
	// used, the indexed Analyze and argmin must reproduce the exhaustive
	// scan byte for byte — this is the query mix that used to fall back
	// to the ~350ms scan.
	scanEng := NewPaperEngine(galaxy.App{})
	scanEng.SetBilling(model.PerHour)
	idxEng := NewPaperEngine(galaxy.App{})
	idxEng.SetBilling(model.PerHour)
	idxEng.SetUseIndex(true)
	if !idxEng.IndexActive() {
		// Force the lazy build through a query below; IndexActive only
		// turns true after the first build attempt succeeds.
		if _, ok := idxEng.FrontierIndex(); !ok {
			t.Fatal("paper engine refused to build the index under per-hour billing")
		}
	}

	p := workload.Params{N: 65536, A: 8000}
	for _, c := range []struct {
		label string
		cons  Constraints
	}{
		{"both", Constraints{Deadline: units.FromHours(24), Budget: 350}},
		{"deadline-only", Constraints{Deadline: units.FromHours(24)}},
		{"budget-only", Constraints{Budget: 350}},
		{"unconstrained", Constraints{}},
	} {
		scan, err := scanEng.Analyze(p, c.cons, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := idxEng.Analyze(p, c.cons, Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameAnalysis(t, "per-hour "+c.label, got, scan)
	}

	pred, okP, err := idxEng.MinCostForDeadline(p, units.FromHours(24))
	if err != nil {
		t.Fatal(err)
	}
	exh, okE, err := scanEng.MinCostExhaustive(p, units.FromHours(24))
	if err != nil {
		t.Fatal(err)
	}
	if okP != okE || !reflect.DeepEqual(pred, exh) {
		t.Errorf("per-hour indexed mincost %+v/%v != exhaustive %+v/%v", pred, okP, exh, okE)
	}
}

func TestFrontierCandidatesStaircase(t *testing.T) {
	eng := indexedEngine(t, galaxy.App{}, 2)
	cands, ok := eng.FrontierCandidates()
	if !ok || len(cands) == 0 {
		t.Fatalf("no candidates from an indexable catalog: ok=%v n=%d", ok, len(cands))
	}
	for i, c := range cands {
		if c.Config.IsEmpty() || c.U <= 0 || c.Cu <= 0 {
			t.Fatalf("candidate %d degenerate: %+v", i, c)
		}
		if i == 0 {
			continue
		}
		// The staircase is the lower cost envelope over capacity:
		// walking down in U must also walk down in c_u, or the
		// higher-capacity entry would dominate this one.
		if cands[i].U >= cands[i-1].U {
			t.Fatalf("candidate %d capacity %v not below %v", i, cands[i].U, cands[i-1].U)
		}
		if cands[i].Cu >= cands[i-1].Cu {
			t.Fatalf("candidate %d cost rate %v not below %v (dominated entry)", i, cands[i].Cu, cands[i-1].Cu)
		}
	}
}

func TestFrontierCandidatesIgnoreBillingAndOptIn(t *testing.T) {
	// Neither billing policy nor a missing opt-in blocks the build: the
	// staircase depends only on the catalog, so horizon solvers get the
	// same candidates the query index serves.
	ref := indexedEngine(t, galaxy.App{}, 2)
	want, ok := ref.FrontierCandidates()
	if !ok {
		t.Fatal("reference engine did not index")
	}
	eng := smallEngine(t, galaxy.App{}, 2) // never opted in
	eng.SetBilling(model.PerHour)
	if eng.FrontierBuilt() {
		t.Fatal("FrontierBuilt before any build was requested")
	}
	got, ok := eng.FrontierCandidates()
	if !ok {
		t.Fatal("per-hour engine refused to build the frontier")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("candidates depend on billing/opt-in:\n%+v\n%+v", got, want)
	}
	if !eng.FrontierBuilt() {
		t.Fatal("FrontierBuilt false after a successful build")
	}
	if eng.IndexActive() {
		t.Fatal("query path claims the index despite the missing opt-in")
	}
	if cause := eng.IndexBypassCause(); cause != BypassConfig {
		t.Fatalf("bypass cause = %d, want BypassConfig (opt-out outranks billing)", cause)
	}
}

func TestIndexBypassReason(t *testing.T) {
	optedOut := smallEngine(t, galaxy.App{}, 1)
	if got := optedOut.IndexBypassReason(); got != "index disabled for this engine" {
		t.Fatalf("opted-out reason = %q", got)
	}

	perHour := indexedEngine(t, galaxy.App{}, 1)
	perHour.SetBilling(model.PerHour)
	if got := perHour.IndexBypassReason(); got != "" {
		t.Fatalf("per-hour engine reports bypass: %q", got)
	}

	uncertified := indexedEngine(t, galaxy.App{}, 1)
	uncertified.SetBilling(model.Billing(7))
	if got := uncertified.IndexBypassReason(); got == "" || !strings.Contains(got, "not certified") {
		t.Fatalf("uncertified-billing reason = %q", got)
	}

	active := indexedEngine(t, galaxy.App{}, 1)
	if got := active.IndexBypassReason(); got != "" {
		t.Fatalf("healthy engine reports bypass before build: %q", got)
	}
	if _, ok := active.FrontierCandidates(); !ok {
		t.Fatal("small catalog did not index")
	}
	if got := active.IndexBypassReason(); got != "" {
		t.Fatalf("healthy engine reports bypass after build: %q", got)
	}

	old := maxIndexPairs
	maxIndexPairs = 2
	defer func() { maxIndexPairs = old }()
	overflow := indexedEngine(t, galaxy.App{}, 1)
	// Probing never builds: the overflow is invisible until a query
	// (or a horizon solve) actually tries.
	if got := overflow.IndexBypassReason(); got != "" {
		t.Fatalf("untried engine reports bypass: %q", got)
	}
	if _, ok := overflow.FrontierCandidates(); ok {
		t.Fatal("catalog compressed under a 2-pair cap")
	}
	if got := overflow.IndexBypassReason(); !strings.Contains(got, "did not compress") {
		t.Fatalf("overflow reason = %q", got)
	}
}

// TestParallelDerivationMatchesSerial pins the two decode/derive code
// paths to each other: the fused single-core walk and the multi-core
// chunked parse + parallel span fill must produce identical indexes.
// GOMAXPROCS is toggled explicitly so both paths run regardless of the
// host's core count, over a synthetic pair table big enough
// (> parallelCodecMin) to clear the parallel gate, with multi-pair
// spans so the running minima actually accumulate.
func TestParallelDerivationMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	const n = 40000
	pairs := make([]idxPair, n)
	var total uint64
	u := units.Rate(1)
	cu := units.USDPerHour(1)
	for i := range pairs {
		if rng.Intn(3) == 0 || i == 0 {
			u += units.Rate(rng.Float64() + 0.001) // new capacity span
			cu = units.USDPerHour(rng.Float64())
		} else {
			cu += units.USDPerHour(rng.Float64() + 0.001) // same span, costlier
		}
		counts := make([]int, 9)
		for k := range counts {
			counts[k] = rng.Intn(256)
		}
		pairs[i] = idxPair{
			u:       u,
			cu:      cu,
			count:   uint64(1 + rng.Intn(7)),
			minIdx:  uint64(i),
			lessMin: config.MustTuple(counts...),
		}
		total += pairs[i].count
	}
	payload := (&FrontierIndex{pairs: pairs, total: total}).EncodeBinary()

	decodeAt := func(procs int) *FrontierIndex {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		x, err := DecodeFrontierIndex(payload)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		return x
	}
	serial := decodeAt(1)
	parallel := decodeAt(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel decode/derivation diverges from the serial path")
	}
	if !bytes.Equal(serial.EncodeBinary(), payload) || !bytes.Equal(parallel.EncodeBinary(), payload) {
		t.Fatal("round-trip is not byte-identical")
	}

	// Corruption must be rejected identically on both paths.
	for _, flip := range []int{codecHeaderLen + 17, len(payload) / 2, len(payload) - 3} {
		bad := append([]byte(nil), payload...)
		bad[flip] ^= 0x40
		prev := runtime.GOMAXPROCS(1)
		_, errSerial := DecodeFrontierIndex(bad)
		runtime.GOMAXPROCS(4)
		_, errParallel := DecodeFrontierIndex(bad)
		runtime.GOMAXPROCS(prev)
		if (errSerial == nil) != (errParallel == nil) {
			t.Fatalf("flip at %d: serial err %v, parallel err %v", flip, errSerial, errParallel)
		}
	}
}
