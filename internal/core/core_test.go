package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/apps/x264"
	"repro/internal/config"
	"repro/internal/demand"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// smallEngine builds an engine over a reduced space (2 nodes per type,
// 3⁹−1 = 19,682 configurations) for exhaustive cross-checks.
func smallEngine(t *testing.T, app workload.App, maxNodes int) *Engine {
	t.Helper()
	cat := ec2.Oregon()
	space, err := config.Uniform(cat.Len(), maxNodes)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(model.FromIPC(cat, app), demand.FromApp(app), space, app.Domain())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewEngineValidation(t *testing.T) {
	cat := ec2.Oregon()
	caps := model.FromIPC(cat, galaxy.App{})
	sp, _ := config.Uniform(3, 5)
	if _, err := NewEngine(caps, demand.FromApp(galaxy.App{}), sp, galaxy.App{}.Domain()); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := NewEngine(nil, demand.FromApp(galaxy.App{}), sp, galaxy.App{}.Domain()); err == nil {
		t.Fatal("nil capacities accepted")
	}
}

func TestDemandDomainCheck(t *testing.T) {
	eng := NewPaperEngine(galaxy.App{})
	if _, err := eng.Demand(workload.Params{N: 1, A: 1}); err == nil {
		t.Fatal("out-of-domain demand accepted")
	}
	d, err := eng.Demand(workload.Params{N: 65536, A: 8000})
	if err != nil || d <= 0 {
		t.Fatalf("Demand = %v, %v", d, err)
	}
}

func TestAnalyzeSmallSpaceAgainstBruteForce(t *testing.T) {
	eng := smallEngine(t, galaxy.App{}, 2)
	p := workload.Params{N: 32768, A: 2000}
	cons := Constraints{Deadline: units.FromHours(24), Budget: 200}
	an, err := eng.Analyze(p, cons, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force the same census.
	d, _ := eng.Demand(p)
	var feasible uint64
	type tc struct {
		T, C float64
	}
	var pts []tc
	eng.Space().ForEach(func(tp config.Tuple) bool {
		pred := eng.Capacities().Predict(d, tp)
		if float64(pred.Time) < float64(cons.Deadline) && float64(pred.Cost) < float64(cons.Budget) {
			feasible++
			pts = append(pts, tc{float64(pred.Time), float64(pred.Cost)})
		}
		return true
	})
	if an.Feasible != feasible {
		t.Fatalf("Analyze feasible = %d, brute force %d", an.Feasible, feasible)
	}
	if an.Total != eng.Space().Size() {
		t.Fatalf("Total = %d, want %d", an.Total, eng.Space().Size())
	}
	// Every frontier point must be feasible and nondominated.
	for i, f := range an.Frontier {
		for _, q := range pts {
			if q.T <= float64(f.Time) && q.C <= float64(f.Cost) &&
				(q.T < float64(f.Time) || q.C < float64(f.Cost)) {
				t.Fatalf("frontier point %d (%v) dominated by a feasible point", i, f)
			}
		}
	}
	if len(an.Frontier) == 0 {
		t.Fatal("empty frontier on a feasible problem")
	}
}

func TestAnalyzeFrontierSortedAndConsistent(t *testing.T) {
	eng := smallEngine(t, sand.App{}, 2)
	an, err := eng.Analyze(workload.Params{N: 512e6, A: 0.32},
		Constraints{Deadline: units.FromHours(48), Budget: 300}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(an.Frontier); i++ {
		a, b := an.Frontier[i-1], an.Frontier[i]
		if !(b.Time > a.Time && b.Cost < a.Cost) {
			t.Fatalf("frontier not a staircase at %d: %+v then %+v", i, a, b)
		}
	}
	// Re-predicting each frontier config must reproduce its (T, C).
	d, _ := eng.Demand(an.Params)
	for _, f := range an.Frontier {
		pred := eng.Capacities().Predict(d, f.Config)
		if math.Abs(float64(pred.Time)-float64(f.Time)) > 1e-6 ||
			math.Abs(float64(pred.Cost)-float64(f.Cost)) > 1e-9 {
			t.Fatalf("frontier point %v does not re-predict: %+v", f.Config, pred)
		}
	}
}

func TestAnalyzeInfeasibleConstraints(t *testing.T) {
	eng := smallEngine(t, galaxy.App{}, 1)
	an, err := eng.Analyze(workload.Params{N: 262144, A: 8000},
		Constraints{Deadline: units.FromHours(1), Budget: 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Feasible != 0 || len(an.Frontier) != 0 {
		t.Fatalf("impossible constraints produced %d feasible, %d frontier",
			an.Feasible, len(an.Frontier))
	}
}

func TestAnalyzeUnconstrained(t *testing.T) {
	eng := smallEngine(t, galaxy.App{}, 1)
	an, err := eng.Analyze(workload.Params{N: 32768, A: 1000}, Constraints{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Feasible != an.Total {
		t.Fatalf("unconstrained: feasible %d != total %d", an.Feasible, an.Total)
	}
}

func TestAnalyzeSampling(t *testing.T) {
	eng := smallEngine(t, galaxy.App{}, 2)
	an, err := eng.Analyze(workload.Params{N: 32768, A: 2000},
		Constraints{Deadline: units.FromHours(48), Budget: 500},
		Options{SampleEvery: 10, SampleCap: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Sample) == 0 {
		t.Fatal("sampling produced nothing")
	}
	for i := 1; i < len(an.Sample); i++ {
		if an.Sample[i].Time < an.Sample[i-1].Time {
			t.Fatal("sample not sorted by time")
		}
	}
}

func TestDecomposedMatchesExhaustiveMinCost(t *testing.T) {
	// The core equivalence claim: decomposition loses no optimum.
	cases := []struct {
		app      workload.App
		p        workload.Params
		deadline float64 // hours
	}{
		{galaxy.App{}, workload.Params{N: 32768, A: 2000}, 24},
		{galaxy.App{}, workload.Params{N: 65536, A: 1000}, 12},
		{sand.App{}, workload.Params{N: 512e6, A: 0.32}, 24},
		{x264.App{}, workload.Params{N: 4000, A: 20}, 48},
	}
	for _, c := range cases {
		eng := smallEngine(t, c.app, 2)
		dec, okDec, err := eng.MinCostForDeadline(c.p, units.FromHours(c.deadline))
		if err != nil {
			t.Fatal(err)
		}
		exh, okExh, err := eng.MinCostExhaustive(c.p, units.FromHours(c.deadline))
		if err != nil {
			t.Fatal(err)
		}
		if okDec != okExh {
			t.Fatalf("%s%v: decomposed ok=%v, exhaustive ok=%v", c.app.Name(), c.p, okDec, okExh)
		}
		if !okDec {
			continue
		}
		if math.Abs(float64(dec.Cost)-float64(exh.Cost)) > 1e-9*math.Abs(float64(exh.Cost)) {
			t.Fatalf("%s%v: decomposed cost %v != exhaustive %v (configs %v vs %v)",
				c.app.Name(), c.p, dec.Cost, exh.Cost, dec.Config, exh.Config)
		}
	}
}

func TestMinCostForDeadlineMonotone(t *testing.T) {
	// Tighter deadlines can only cost more (Obs. 3's precondition).
	eng := NewPaperEngine(galaxy.App{})
	p := workload.Params{N: 65536, A: 8000}
	last := 0.0
	for _, h := range []float64{72, 48, 24, 12} {
		pred, ok, err := eng.MinCostForDeadline(p, units.FromHours(h))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("no configuration for %v h", h)
		}
		if float64(pred.Cost) < last-1e-9 {
			t.Fatalf("cost decreased when deadline tightened: %v at %vh (prev %v)", pred.Cost, h, last)
		}
		if float64(pred.Time) >= h*3600 {
			t.Fatalf("selected configuration misses its deadline: %v for %vh", pred.Time, h)
		}
		last = float64(pred.Cost)
	}
}

func TestPaperSpillConfiguration(t *testing.T) {
	// Figure 6(a) annotation: galaxy(65536, 8000) at the 24 h deadline
	// selects [5,5,5,3,0,0,0,0,0] — c4 saturated, spilling into m4.
	eng := NewPaperEngine(galaxy.App{})
	pred, ok, err := eng.MinCostForDeadline(workload.Params{N: 65536, A: 8000}, units.FromHours(24))
	if err != nil || !ok {
		t.Fatalf("no configuration: %v %v", ok, err)
	}
	got := pred.Config
	// c4 must be saturated.
	for i := 0; i < 3; i++ {
		if got.Count(i) != 5 {
			t.Fatalf("config %v: c4 position %d not saturated (paper spills c4→m4)", got, i)
		}
	}
	// Some m4 nodes must be used, and no r3.
	m4 := got.Count(3) + got.Count(4) + got.Count(5)
	r3 := got.Count(6) + got.Count(7) + got.Count(8)
	if m4 == 0 || r3 != 0 {
		t.Fatalf("config %v: want m4 spill without r3", got)
	}
}

func TestMinTimeForBudget(t *testing.T) {
	eng := smallEngine(t, galaxy.App{}, 2)
	p := workload.Params{N: 32768, A: 2000}
	pred, ok, err := eng.MinTimeForBudget(p, 100)
	if err != nil || !ok {
		t.Fatalf("MinTimeForBudget failed: %v %v", ok, err)
	}
	if float64(pred.Cost) >= 100 {
		t.Fatalf("selected config busts the budget: %v", pred.Cost)
	}
	// Cross-check against brute force.
	d, _ := eng.Demand(p)
	bestT := math.Inf(1)
	eng.Space().ForEach(func(tp config.Tuple) bool {
		pr := eng.Capacities().Predict(d, tp)
		if float64(pr.Cost) < 100 && float64(pr.Time) < bestT {
			bestT = float64(pr.Time)
		}
		return true
	})
	if math.Abs(float64(pred.Time)-bestT) > 1e-6 {
		t.Fatalf("MinTimeForBudget = %v, brute force %v", pred.Time, bestT)
	}
}

func TestMinTimeBudgetTooSmall(t *testing.T) {
	eng := smallEngine(t, galaxy.App{}, 1)
	_, ok, err := eng.MinTimeForBudget(workload.Params{N: 262144, A: 8000}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impossible budget satisfied")
	}
}

func TestMaxAccuracy(t *testing.T) {
	eng := NewPaperEngine(galaxy.App{})
	cons := Constraints{Deadline: units.FromHours(24), Budget: 150}
	p, pred, ok, err := eng.MaxAccuracy(65536, cons, 1e-3)
	if err != nil || !ok {
		t.Fatalf("MaxAccuracy failed: %v %v", ok, err)
	}
	// The found accuracy must be feasible...
	if float64(pred.Time) >= float64(cons.Deadline) || float64(pred.Cost) >= float64(cons.Budget) {
		t.Fatalf("MaxAccuracy result violates constraints: %+v", pred)
	}
	// ...and a 5% larger accuracy must not be.
	_, ok2, err := eng.MinCostForDeadline(workload.Params{N: 65536, A: p.A * 1.05}, cons.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 {
		d, _ := eng.Demand(workload.Params{N: 65536, A: p.A * 1.05})
		pr, ok3 := eng.decomposedSearch(d, cons, objectiveCost)
		if ok3 && float64(pr.Cost) < float64(cons.Budget) {
			t.Fatalf("accuracy %v declared maximal but %v is feasible", p.A, p.A*1.05)
		}
	}
}

func TestCostSpan(t *testing.T) {
	a := Analysis{Frontier: []FrontierPoint{
		{Cost: 126}, {Cost: 140}, {Cost: 167},
	}}
	lo, hi, ratio := a.CostSpan()
	if lo != 126 || hi != 167 {
		t.Fatalf("span = %v..%v", lo, hi)
	}
	if math.Abs(ratio-167.0/126.0) > 1e-9 {
		t.Fatalf("ratio = %v", ratio)
	}
	if _, _, r := (Analysis{}).CostSpan(); r != 0 {
		t.Fatalf("empty span ratio = %v", r)
	}
}

func TestCostSpanZeroCheapest(t *testing.T) {
	// A $0 cheapest point under a priced maximum must report the 0
	// sentinel, never +Inf or NaN.
	a := Analysis{Frontier: []FrontierPoint{{Cost: 0}, {Cost: 167}}}
	lo, hi, ratio := a.CostSpan()
	if lo != 0 || hi != 167 {
		t.Fatalf("span = %v..%v, want 0..167", lo, hi)
	}
	if ratio != 0 {
		t.Fatalf("zero-cheapest ratio = %v, want the 0 sentinel", ratio)
	}

	// An all-free frontier is flat: ratio 1, not 0/0 = NaN.
	free := Analysis{Frontier: []FrontierPoint{{Cost: 0}, {Cost: 0}}}
	if _, _, r := free.CostSpan(); r != 1 {
		t.Fatalf("all-free ratio = %v, want 1", r)
	}

	// A negative cost is out of the model's domain but must still not
	// produce ±Inf or NaN.
	odd := Analysis{Frontier: []FrontierPoint{{Cost: -1}, {Cost: 167}}}
	if _, _, r := odd.CostSpan(); math.IsInf(r, 0) || math.IsNaN(r) {
		t.Fatalf("negative-cheapest ratio = %v, want finite", r)
	}
}

func TestEpsilonFrontierOption(t *testing.T) {
	eng := smallEngine(t, galaxy.App{}, 2)
	p := workload.Params{N: 32768, A: 2000}
	cons := Constraints{Deadline: units.FromHours(48), Budget: 500}
	exact, err := eng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := eng.Analyze(p, cons, Options{EpsTime: 3600, EpsCost: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse.Frontier) > len(exact.Frontier) {
		t.Fatalf("ε-frontier (%d) larger than exact (%d)", len(coarse.Frontier), len(exact.Frontier))
	}
	if len(coarse.Frontier) == 0 {
		t.Fatal("ε-frontier empty")
	}
}

func TestEpsilonFrontierSingleAxisOptions(t *testing.T) {
	// A one-sided ε must coarsen its axis while the other stays exact.
	// The option gate used to require both epsilons to be positive, so
	// a single-axis request silently returned the exact frontier.
	eng := smallEngine(t, galaxy.App{}, 2)
	p := workload.Params{N: 32768, A: 2000}
	cons := Constraints{Deadline: units.FromHours(48), Budget: 500}
	exact, err := eng.Analyze(p, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"time-only", Options{EpsTime: 3600}},
		{"cost-only", Options{EpsCost: 5}},
	} {
		coarse, err := eng.Analyze(p, cons, tc.opts)
		if err != nil {
			t.Fatal(tc.name, err)
		}
		if len(coarse.Frontier) == 0 || len(coarse.Frontier) >= len(exact.Frontier) {
			t.Errorf("%s ε-frontier = %d points, want a non-empty strict coarsening of %d",
				tc.name, len(coarse.Frontier), len(exact.Frontier))
		}
	}
}

func TestAnalyzeSampleOrderIndependentOfWorkers(t *testing.T) {
	// With SampleEvery=1 and an unhit cap every feasible point is
	// sampled regardless of sharding, so the sorted sample must be
	// identical across worker counts. The sort used to key on time
	// alone, leaving equal-time points in worker-merge order.
	eng := smallEngine(t, galaxy.App{}, 2)
	p := workload.Params{N: 32768, A: 2000}
	cons := Constraints{Deadline: units.FromHours(48), Budget: 500}
	opts := Options{SampleEvery: 1, SampleCap: 30000}

	opts.Workers = 1
	one, err := eng.Analyze(p, cons, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 7
	seven, err := eng.Analyze(p, cons, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Sample) == 0 || uint64(len(one.Sample)) != one.Feasible {
		t.Fatalf("sample holds %d of %d feasible points; the cap bit and the test lost its footing",
			len(one.Sample), one.Feasible)
	}
	ties := 0
	for i := 1; i < len(one.Sample); i++ {
		if one.Sample[i].Time == one.Sample[i-1].Time {
			ties++
		}
	}
	if ties == 0 {
		t.Fatal("no equal-time samples; the ordering regression cannot bite here")
	}
	if !reflect.DeepEqual(one.Sample, seven.Sample) {
		t.Fatalf("sample order varies with Options.Workers (%d ties present)", ties)
	}
}

func TestHourlyBillingRaisesCostsAndKeepsOptima(t *testing.T) {
	p := workload.Params{N: 65536, A: 8000}
	deadline := units.FromHours(24)

	exact := NewPaperEngine(galaxy.App{})
	hourly := NewPaperEngine(galaxy.App{})
	hourly.SetBilling(model.PerHour)
	if hourly.Billing() != model.PerHour {
		t.Fatal("SetBilling not applied")
	}

	pe, ok, err := exact.MinCostForDeadline(p, deadline)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	ph, ok, err := hourly.MinCostForDeadline(p, deadline)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if ph.Cost < pe.Cost {
		t.Fatalf("hourly min cost %v below exact %v", ph.Cost, pe.Cost)
	}
	// Hourly billing can change the winning configuration, but its
	// billed cost must equal ceil(hours) x unit cost.
	wantCost := float64(model.Bill(ph.Time, ph.UnitCost, model.PerHour))
	if math.Abs(float64(ph.Cost)-wantCost) > 1e-9 {
		t.Fatalf("hourly cost %v != billed %v", ph.Cost, wantCost)
	}
}

func TestHourlyBillingDecomposedMatchesExhaustive(t *testing.T) {
	eng := smallEngine(t, galaxy.App{}, 2)
	eng.SetBilling(model.PerHour)
	p := workload.Params{N: 32768, A: 2000}
	dec, okD, err := eng.MinCostForDeadline(p, units.FromHours(24))
	if err != nil {
		t.Fatal(err)
	}
	exh, okE, err := eng.MinCostExhaustive(p, units.FromHours(24))
	if err != nil {
		t.Fatal(err)
	}
	if okD != okE {
		t.Fatalf("ok mismatch %v/%v", okD, okE)
	}
	if okD && math.Abs(float64(dec.Cost)-float64(exh.Cost)) > 1e-9 {
		t.Fatalf("hourly billing: decomposed %v != exhaustive %v", dec.Cost, exh.Cost)
	}
}

func TestHourlyBillingFrontierSnaps(t *testing.T) {
	// Under per-hour billing every frontier cost is an exact multiple
	// of its configuration's unit cost.
	eng := smallEngine(t, galaxy.App{}, 2)
	eng.SetBilling(model.PerHour)
	an, err := eng.Analyze(workload.Params{N: 32768, A: 2000},
		Constraints{Deadline: units.FromHours(48), Budget: 500}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, f := range an.Frontier {
		cu := float64(eng.Capacities().UnitCost(f.Config))
		hours := float64(f.Cost) / cu
		if math.Abs(hours-math.Round(hours)) > 1e-6 {
			t.Fatalf("frontier cost %v is not a whole-hour multiple of %v", f.Cost, cu)
		}
	}
}
