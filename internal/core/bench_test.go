package core

import (
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// The benchmarks quantify the tentpole claim: one precomputed frontier
// index answers queries under either certified billing policy orders
// of magnitude faster than the exhaustive scan, at identical output.
// Run the paper-space pair with
//
//	go test ./internal/core -bench 'Analyze|Frontier' -benchtime 1x
//
// (CI's smoke invocation) or longer benchtimes for stable ratios.

var benchParams = workload.Params{N: 65536, A: 8000}

func benchCons() Constraints {
	return Constraints{Deadline: units.FromHours(24), Budget: 350}
}

func BenchmarkAnalyzeScanPaper(b *testing.B) {
	eng := NewPaperEngine(galaxy.App{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(benchParams, benchCons(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeIndexedPaper(b *testing.B) {
	eng := NewPaperEngine(galaxy.App{})
	eng.SetUseIndex(true)
	if !eng.IndexActive() { // build outside the timed region
		b.Fatal("index did not build")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(benchParams, benchCons(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzePerHourScanPaper(b *testing.B) {
	eng := NewPaperEngine(galaxy.App{})
	eng.SetBilling(model.PerHour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(benchParams, benchCons(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzePerHourIndexedPaper(b *testing.B) {
	eng := NewPaperEngine(galaxy.App{})
	eng.SetBilling(model.PerHour)
	eng.SetUseIndex(true)
	if !eng.IndexActive() { // build outside the timed region
		b.Fatal("index did not build under per-hour billing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(benchParams, benchCons(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrontierIndexBuildPaper(b *testing.B) {
	eng := NewPaperEngine(galaxy.App{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buildFrontierIndex(eng) == nil {
			b.Fatal("build aborted")
		}
	}
}

func BenchmarkMinCostScanPaper(b *testing.B) {
	eng := NewPaperEngine(galaxy.App{})
	d, err := eng.Demand(benchParams)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := eng.scanSearch(d, benchCons(), objectiveCost); !ok {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkMinCostIndexedPaper(b *testing.B) {
	eng := NewPaperEngine(galaxy.App{})
	eng.SetUseIndex(true)
	if !eng.IndexActive() {
		b.Fatal("index did not build")
	}
	d, err := eng.Demand(benchParams)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := eng.indexFor().minSearch(eng, d, benchCons(), objectiveCost); !ok {
			b.Fatal("infeasible")
		}
	}
}
