package core_test

import (
	"fmt"

	"repro/internal/apps/galaxy"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/workload"
)

// ExampleEngine_MinCostForDeadline reproduces the paper's Figure 6(a)
// annotation: the cheapest configuration for galaxy(65536, 8000) at a
// 24-hour deadline saturates the c4 category and spills into m4.
func ExampleEngine_MinCostForDeadline() {
	engine := core.NewPaperEngine(galaxy.App{})
	pred, ok, err := engine.MinCostForDeadline(
		workload.Params{N: 65536, A: 8000}, units.FromHours(24))
	if err != nil || !ok {
		panic(err)
	}
	fmt.Printf("%v at %v\n", pred.Config, pred.Cost)
	// Output: [5,5,5,3,0,0,0,0,0] at $97.49
}

// ExampleEngine_Analyze runs Algorithm 1 over the full ten-million
// configuration space and Pareto-filters the feasible set.
func ExampleEngine_Analyze() {
	engine := core.NewPaperEngine(galaxy.App{})
	analysis, err := engine.Analyze(
		workload.Params{N: 65536, A: 8000},
		core.Constraints{Deadline: units.FromHours(24), Budget: 350},
		core.Options{})
	if err != nil {
		panic(err)
	}
	lo, hi, _ := analysis.CostSpan()
	fmt.Printf("%d configurations, %d feasible, %d Pareto-optimal (%v..%v)\n",
		analysis.Total, analysis.Feasible, len(analysis.Frontier), lo, hi)
	// Output: 10077695 configurations, 7916146 feasible, 77 Pareto-optimal ($97.49..$133.80)
}

// ExampleEngine_MaxAccuracy answers the elastic-application question:
// how much accuracy does a fixed deadline and budget buy?
func ExampleEngine_MaxAccuracy() {
	engine := core.NewPaperEngine(galaxy.App{})
	p, _, ok, err := engine.MaxAccuracy(65536,
		core.Constraints{Deadline: units.FromHours(24), Budget: 50}, 1e-3)
	if err != nil || !ok {
		panic(err)
	}
	fmt.Printf("within $50 and 24h: about %d simulation steps\n", int(p.A/100)*100)
	// Output: within $50 and 24h: about 4200 simulation steps
}
