// Package core is the CELIA engine — the paper's primary contribution.
// Given an elastic application's demand model, per-type cloud resource
// capacities, a time deadline T′ and a cost budget C′, it searches the
// configuration space for feasible configurations (Algorithm 1),
// extracts the cost-time Pareto-optimal subset, and answers the
// optimization queries the evaluation is built on (minimum cost for a
// deadline, minimum time within a budget, maximum accuracy within
// both).
//
// Two search strategies are provided and proven equivalent by tests:
//
//   - Exhaustive: a parallel streaming scan of all S configurations
//     (Eq. 1), exactly Algorithm 1. Guarantees every optimum, at ~10
//     million model evaluations for the paper's space.
//
//   - Decomposed: per-category enumeration. Capacity (Eq. 3) and unit
//     cost (Eq. 6) are additive across resource types, so any dominated
//     within-category combination (another combination with no more
//     cost and no less capacity) can be swapped out of a solution
//     without losing feasibility or raising cost. Enumerating each
//     category's combinations, pruning each to its (cost ↓, capacity ↑)
//     Pareto set and merging across categories therefore preserves all
//     optima at a small fraction of the evaluations.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/config"
	"repro/internal/demand"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/pareto"
	"repro/internal/units"
	"repro/internal/workload"
)

// Engine binds a demand model, capacities, and a configuration space.
type Engine struct {
	caps    *model.Capacities
	dm      demand.Model
	space   *config.Space
	domain  workload.Domain
	billing model.Billing

	// Frontier-index state (see index.go): opt-in via SetUseIndex,
	// built lazily under idxMu, published through an atomic pointer so
	// queries never block on a rebuild and InstallIndex/RebuildIndex can
	// swap a new index in under live traffic (zero-downtime catalog
	// updates, snapshot restores). nil pointer = no usable index (not
	// yet built, or the build overflowed). idxReady flips after a
	// build/install completes so observers (response headers, telemetry)
	// can check state without triggering the multi-second build
	// themselves; idxTried flips after the first attempt either way.
	useIndex bool
	idxMu    sync.Mutex
	idx      atomic.Pointer[FrontierIndex]
	idxReady atomic.Bool
	idxTried atomic.Bool
}

// NewEngine validates and builds an engine. The space's arity must
// match the catalog.
func NewEngine(caps *model.Capacities, dm demand.Model, space *config.Space, dom workload.Domain) (*Engine, error) {
	if caps == nil || space == nil {
		return nil, fmt.Errorf("core: nil capacities or space")
	}
	if space.Types() != caps.Catalog().Len() {
		return nil, fmt.Errorf("core: space has %d types, catalog %d", space.Types(), caps.Catalog().Len())
	}
	return &Engine{caps: caps, dm: dm, space: space, domain: dom}, nil
}

// SetBilling selects the billing policy used by every query (default:
// per-second, Eq. 5 verbatim). Per-hour billing reproduces 2017-era
// EC2 charging, where each instance pays for every started hour.
func (e *Engine) SetBilling(b model.Billing) { e.billing = b }

// Billing reports the engine's billing policy.
func (e *Engine) Billing() model.Billing { return e.billing }

// billCost prices a duration at a unit cost under the engine's policy
// — the hot-loop form of model.Bill.
func (e *Engine) billCost(T units.Seconds, cu units.USDPerHour) units.USD {
	if e.billing == model.PerHour {
		h := units.Hours(math.Ceil(T.Hours()))
		if h < 1 && T > 0 {
			h = 1
		}
		return cu.ForHours(h)
	}
	return cu.PerSecond().Over(T)
}

// Capacities returns the engine's capacity model.
func (e *Engine) Capacities() *model.Capacities { return e.caps }

// DemandModel returns the engine's demand model.
func (e *Engine) DemandModel() demand.Model { return e.dm }

// Space returns the engine's configuration space.
func (e *Engine) Space() *config.Space { return e.space }

// Demand evaluates the demand model at p after domain validation.
func (e *Engine) Demand(p workload.Params) (units.Instructions, error) {
	if err := e.domain.CheckParams(p); err != nil {
		return 0, err
	}
	d := e.dm.Demand(p)
	if d <= 0 {
		return 0, fmt.Errorf("core: demand model predicts %v for %v", d, p)
	}
	return d, nil
}

// Constraints are the execution targets: time deadline T′ and cost
// budget C′. Non-positive values mean unconstrained.
type Constraints struct {
	Deadline units.Seconds
	Budget   units.USD
}

func (c Constraints) deadlineOrInf() units.Seconds {
	if c.Deadline <= 0 {
		return units.Seconds(math.Inf(1))
	}
	return c.Deadline
}

func (c Constraints) budgetOrInf() units.USD {
	if c.Budget <= 0 {
		return units.USD(math.Inf(1))
	}
	return c.Budget
}

// FrontierPoint is one Pareto-optimal configuration.
type FrontierPoint struct {
	Config config.Tuple
	Time   units.Seconds
	Cost   units.USD
}

// Analysis is the result of a full configuration-space census
// (Algorithm 1 plus the Pareto filter) — the data behind Figure 4.
type Analysis struct {
	Params      workload.Params
	Demand      units.Instructions
	Constraints Constraints
	Total       uint64 // S: configurations examined
	Feasible    uint64 // configurations with T < T′ and C < C′
	Frontier    []FrontierPoint
	// Sample holds every k-th feasible (time, cost) pair for plotting
	// the Figure 4 scatter; empty unless Options.SampleEvery > 0.
	Sample []FrontierPoint
}

// CostSpan reports the cheapest and most expensive frontier costs and
// their ratio (the paper reports spans of ~1.2–1.3×). An empty frontier
// reports (0, 0, 0). A frontier whose cheapest point costs $0 has no
// meaningful ratio: an all-free frontier reports the flat span 1, and a
// $0 cheapest point under a priced maximum reports the 0 sentinel
// rather than ±Inf or NaN so callers can gate on it.
func (a Analysis) CostSpan() (lo, hi units.USD, ratio float64) {
	if len(a.Frontier) == 0 {
		return 0, 0, 0
	}
	lo, hi = a.Frontier[0].Cost, a.Frontier[0].Cost
	for _, f := range a.Frontier[1:] {
		if f.Cost < lo {
			lo = f.Cost
		}
		if f.Cost > hi {
			hi = f.Cost
		}
	}
	switch {
	case lo > 0:
		ratio = float64(hi / lo)
	case hi == 0:
		ratio = 1
	default:
		ratio = 0
	}
	return lo, hi, ratio
}

// Options tune Analyze.
type Options struct {
	Workers     int     // parallel scan width; ≤0 means GOMAXPROCS
	EpsTime     float64 // ε-box size for time (seconds); 0 = exact frontier
	EpsCost     float64 // ε-box size for cost ($); 0 = exact frontier
	SampleEvery uint64  // keep every k-th feasible point; 0 = none
	SampleCap   int     // max sample size (default 4096)
}

// ctxPollMask throttles cancellation checks in the scan hot loops: each
// worker consults ctx.Err() once per 8192 configurations, cheap enough
// to be invisible in the scan benchmarks yet prompt enough that a
// canceled multi-second walk returns within microseconds of real work.
const ctxPollMask = 8192 - 1

// errAborted wraps a context error so scan-path callers surface the
// standard context sentinels (errors.Is works) under a package prefix.
func errAborted(err error) error { return fmt.Errorf("core: query aborted: %w", err) }

// Analyze runs Algorithm 1 over the entire space and Pareto-filters the
// feasible set. An engine opted into the frontier index (SetUseIndex)
// answers sampling-free censuses from the precomputed pair table
// instead of re-walking the space — under per-second and per-hour
// billing alike (model.Billing.Indexable); the two paths produce
// byte-identical Analysis values (certified in index_test.go and the
// per-billing property harness).
func (e *Engine) Analyze(p workload.Params, cons Constraints, opts Options) (Analysis, error) {
	return e.AnalyzeContext(context.Background(), p, cons, opts)
}

// AnalyzeContext is Analyze with cooperative cancellation: the
// exhaustive scan path polls ctx between batches of configurations and
// abandons the walk once the context is done, returning the wrapped
// context error instead of a partial census. The index path answers in
// microseconds and never needs to poll.
func (e *Engine) AnalyzeContext(ctx context.Context, p workload.Params, cons Constraints, opts Options) (Analysis, error) {
	d, err := e.Demand(p)
	if err != nil {
		return Analysis{}, err
	}
	an := Analysis{
		Params:      p,
		Demand:      d,
		Constraints: cons,
		Total:       e.space.Size(),
	}
	var front []pareto.Point
	if idx := e.indexFor(); idx != nil && opts.SampleEvery == 0 {
		// Sampling still needs the per-configuration walk: the index
		// aggregates away the individual feasible points.
		an.Feasible, front = idx.census(e, d, cons)
	} else {
		front = e.scanCensus(ctx, &an, d, cons, opts)
		if err := ctx.Err(); err != nil {
			return Analysis{}, errAborted(err)
		}
	}
	// A one-sided ε is honored per axis; the zero axis stays exact.
	if opts.EpsTime > 0 || opts.EpsCost > 0 {
		front = pareto.EpsilonFrontier2D(front, opts.EpsTime, opts.EpsCost)
	}
	an.Frontier = make([]FrontierPoint, len(front))
	for i, pt := range front {
		tuple, err := e.space.AtIndex(pt.ID)
		if err != nil {
			return Analysis{}, fmt.Errorf("core: frontier index %d: %w", pt.ID, err)
		}
		an.Frontier[i] = FrontierPoint{Config: tuple, Time: units.Seconds(pt.X), Cost: units.USD(pt.Y)}
	}
	// Deterministic (time, cost, tuple) order: a bare time key left
	// equal-time points in worker-merge order, so the output varied
	// with Options.Workers. Sample membership still depends on the
	// worker sharding — each shard keeps its own every-k-th feasible
	// point — only the order of whatever was kept is pinned here.
	sort.SliceStable(an.Sample, func(i, j int) bool {
		a, b := an.Sample[i], an.Sample[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return lessTupleFast(a.Config, b.Config)
	})
	return an, nil
}

// scanCensus is Analyze's exhaustive path: a parallel streaming scan of
// the whole space that never stores the feasible set. It fills the
// feasible count and sample in an and returns the merged frontier.
func (e *Engine) scanCensus(ctx context.Context, an *Analysis, d units.Instructions, cons Constraints, opts Options) []pareto.Point {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sampleCap := opts.SampleCap
	if sampleCap <= 0 {
		sampleCap = 4096
	}
	deadline, budget := cons.deadlineOrInf(), cons.budgetOrInf()
	w, nodeCost := e.caps.NodeArrays()

	type shard struct {
		stream   pareto.Stream2D
		feasible uint64
		seen     uint64
		sample   []FrontierPoint
	}
	shards := make([]shard, workers)
	var stop atomic.Bool

	e.space.ForEachParallelIndexed(workers, func(worker int, idx uint64, t config.Tuple) {
		if stop.Load() {
			return
		}
		if sh := &shards[worker]; sh.seen&ctxPollMask == ctxPollMask {
			sh.seen++
			if ctx.Err() != nil {
				stop.Store(true)
				return
			}
		} else {
			sh.seen++
		}
		var u units.Rate
		var cu units.USDPerHour
		for i := 0; i < t.Len(); i++ {
			if m := t.Count(i); m > 0 {
				u += units.Rate(m) * w[i]
				cu += units.USDPerHour(m) * nodeCost[i]
			}
		}
		T := units.Time(d, u)
		C := e.billCost(T, cu)
		if T >= deadline || C >= budget {
			return
		}
		sh := &shards[worker]
		sh.feasible++
		// The exact streaming frontier is also a sufficient candidate
		// set for ε-filtering afterwards: an ε-box dominates another
		// exactly when some exact-frontier point in it does.
		//lint:allow unitsafe pareto.Point is the unit-agnostic frontier kernel; axes are re-typed on rebuild above
		sh.stream.Add(pareto.Point{X: float64(T), Y: float64(C), ID: idx})
		if opts.SampleEvery > 0 && sh.feasible%opts.SampleEvery == 0 && len(sh.sample) < sampleCap {
			sh.sample = append(sh.sample, FrontierPoint{Config: t, Time: T, Cost: C})
		}
	})

	var merged pareto.Stream2D
	for i := range shards {
		an.Feasible += shards[i].feasible
		merged.Merge(&shards[i].stream)
		an.Sample = append(an.Sample, shards[i].sample...)
	}
	return merged.Frontier()
}

// searchBest routes a single-objective query to the frontier index
// when it is active (opted in, billing certified index-monotone,
// built) and to the decomposed search otherwise.
func (e *Engine) searchBest(d units.Instructions, cons Constraints, obj objective) (model.Prediction, bool) {
	pred, ok, _ := e.searchBestCtx(context.Background(), d, cons, obj)
	return pred, ok
}

// searchBestCtx is searchBest with cooperative cancellation on the
// scan fallback; the index and decomposed-merge paths are fast enough
// to run to completion regardless.
func (e *Engine) searchBestCtx(ctx context.Context, d units.Instructions, cons Constraints, obj objective) (model.Prediction, bool, error) {
	if idx := e.indexFor(); idx != nil {
		pred, ok := idx.minSearch(e, d, cons, obj)
		return pred, ok, nil
	}
	return e.decomposedSearchCtx(ctx, d, cons, obj)
}

// MinCostForDeadline finds the cheapest configuration whose predicted
// time satisfies the deadline, from the frontier index when active and
// the decomposed search otherwise. The second return is false when no
// configuration can meet the deadline.
func (e *Engine) MinCostForDeadline(p workload.Params, deadline units.Seconds) (model.Prediction, bool, error) {
	return e.MinCostForDeadlineContext(context.Background(), p, deadline)
}

// MinCostForDeadlineContext is MinCostForDeadline with cooperative
// cancellation on the scan fallback.
func (e *Engine) MinCostForDeadlineContext(ctx context.Context, p workload.Params, deadline units.Seconds) (model.Prediction, bool, error) {
	d, err := e.Demand(p)
	if err != nil {
		return model.Prediction{}, false, err
	}
	return e.searchBestCtx(ctx, d, Constraints{Deadline: deadline}, objectiveCost)
}

// MinTimeForBudget finds the fastest configuration whose predicted cost
// stays within the budget.
func (e *Engine) MinTimeForBudget(p workload.Params, budget units.USD) (model.Prediction, bool, error) {
	return e.MinTimeForBudgetContext(context.Background(), p, budget)
}

// MinTimeForBudgetContext is MinTimeForBudget with cooperative
// cancellation on the scan fallback.
func (e *Engine) MinTimeForBudgetContext(ctx context.Context, p workload.Params, budget units.USD) (model.Prediction, bool, error) {
	d, err := e.Demand(p)
	if err != nil {
		return model.Prediction{}, false, err
	}
	return e.searchBestCtx(ctx, d, Constraints{Budget: budget}, objectiveTime)
}

// MinCostExhaustive is the exhaustive counterpart of MinCostForDeadline
// (Algorithm 1 with a running minimum); used by tests and ablations to
// certify the decomposition.
func (e *Engine) MinCostExhaustive(p workload.Params, deadline units.Seconds) (model.Prediction, bool, error) {
	d, err := e.Demand(p)
	if err != nil {
		return model.Prediction{}, false, err
	}
	w, nodeCost := e.caps.NodeArrays()
	dl := Constraints{Deadline: deadline}.deadlineOrInf()
	workers := runtime.GOMAXPROCS(0)
	type best struct {
		cost units.USD
		t    config.Tuple
		ok   bool
	}
	bests := make([]best, workers)
	for i := range bests {
		bests[i].cost = units.USD(math.Inf(1))
	}
	e.space.ForEachParallel(workers, func(worker int, t config.Tuple) {
		var u units.Rate
		var cu units.USDPerHour
		for i := 0; i < t.Len(); i++ {
			if m := t.Count(i); m > 0 {
				u += units.Rate(m) * w[i]
				cu += units.USDPerHour(m) * nodeCost[i]
			}
		}
		T := units.Time(d, u)
		if T >= dl {
			return
		}
		C := e.billCost(T, cu)
		b := &bests[worker]
		//lint:allow floateq exact argmin tie: ulp-equal costs resolve lexicographically by tuple, deterministic either way
		if C < b.cost || (C == b.cost && b.ok && lessTuple(t, b.t)) {
			b.cost, b.t, b.ok = C, t, true
		}
	})
	out := best{cost: units.USD(math.Inf(1))}
	for _, b := range bests {
		if !b.ok {
			continue
		}
		//lint:allow floateq exact argmin tie: ulp-equal costs resolve lexicographically by tuple, deterministic either way
		if b.cost < out.cost || (b.cost == out.cost && out.ok && lessTuple(b.t, out.t)) {
			out = b
		}
	}
	if !out.ok {
		return model.Prediction{}, false, nil
	}
	return e.caps.PredictBilled(d, out.t, e.billing), true, nil
}

// lessTuple is a deterministic tie-break on equal objective values.
func lessTuple(a, b config.Tuple) bool { return a.String() < b.String() }

type objective int

const (
	objectiveCost objective = iota
	objectiveTime
)

// catCombo is one within-category combination with its aggregate
// capacity and unit cost.
type catCombo struct {
	counts [3]uint8
	u      units.Rate
	cu     units.USDPerHour
}

// decomposedSearch merges per-category Pareto-pruned combinations. It
// assumes the catalog groups into the three paper categories; for
// other catalogs, callers should use the exhaustive path.
func (e *Engine) decomposedSearch(d units.Instructions, cons Constraints, obj objective) (model.Prediction, bool) {
	pred, ok, _ := e.decomposedSearchCtx(context.Background(), d, cons, obj)
	return pred, ok
}

func (e *Engine) decomposedSearchCtx(ctx context.Context, d units.Instructions, cons Constraints, obj objective) (model.Prediction, bool, error) {
	cat := e.caps.Catalog()
	groups := make([][]int, 0, 3)
	for _, c := range cat.CategoryNames() {
		groups = append(groups, cat.ByCategory(c))
	}
	// The fast merge is shaped for the paper's 3-categories × ≤3-types
	// structure; fall back to a full scan for other catalogs.
	if len(groups) > 3 {
		return e.scanSearchCtx(ctx, d, cons, obj)
	}
	for _, g := range groups {
		if len(g) > 3 {
			return e.scanSearchCtx(ctx, d, cons, obj)
		}
	}
	w, nodeCost := e.caps.NodeArrays()

	// Enumerate and prune each category.
	pruned := make([][]catCombo, len(groups))
	for g, idx := range groups {
		var combos []catCombo
		limits := make([]int, len(idx))
		for k, i := range idx {
			limits[k] = e.space.Max(i)
		}
		counts := make([]int, len(idx))
		//lint:allow ctxflow bounded odometer over <=3 types of <=max-count each (a few dozen combos); the expensive scans it feeds poll ctx
		for {
			var cc catCombo
			for k, i := range idx {
				cc.counts[k] = uint8(counts[k])
				cc.u += units.Rate(counts[k]) * w[i]
				cc.cu += units.USDPerHour(counts[k]) * nodeCost[i]
			}
			combos = append(combos, cc)
			// Odometer.
			k := 0
			for k < len(counts) {
				if counts[k] < limits[k] {
					counts[k]++
					break
				}
				counts[k] = 0
				k++
			}
			if k == len(counts) {
				break
			}
		}
		pruned[g] = pruneCombos(combos)
	}

	// Merge across categories.
	deadline, budget := cons.deadlineOrInf(), cons.budgetOrInf()
	bestVal := math.Inf(1)
	var bestTuple config.Tuple
	found := false
	consider := func(u units.Rate, cu units.USDPerHour, mk func() config.Tuple) {
		if u <= 0 {
			return
		}
		T := units.Time(d, u)
		C := e.billCost(T, cu)
		if T >= deadline || C >= budget {
			return
		}
		//lint:allow unitsafe objective value is cost ($) or time (s) by query kind; only compared against itself
		v := float64(C)
		if obj == objectiveTime {
			//lint:allow unitsafe objective value is cost ($) or time (s) by query kind; only compared against itself
			v = float64(T)
		}
		//lint:allow floateq exact argmin tie: ulp-equal costs resolve lexicographically by tuple, deterministic either way
		if v < bestVal || (v == bestVal && found && lessTuple(mk(), bestTuple)) {
			bestVal = v
			bestTuple = mk()
			found = true
		}
	}
	for _, a := range pruned[0] {
		for _, b := range orEmpty(pruned, 1) {
			for _, c := range orEmpty(pruned, 2) {
				a, b, c := a, b, c
				consider(a.u+b.u+c.u, a.cu+b.cu+c.cu, func() config.Tuple {
					return e.assemble(groups, [][3]uint8{a.counts, b.counts, c.counts})
				})
			}
		}
	}
	if !found {
		return model.Prediction{}, false, nil
	}
	return e.caps.PredictBilled(d, bestTuple, e.billing), true, nil
}

// orEmpty lets the merge loops run even when the catalog has fewer than
// three categories.
func orEmpty(pruned [][]catCombo, g int) []catCombo {
	if g < len(pruned) {
		return pruned[g]
	}
	return []catCombo{{}}
}

// assemble rebuilds a full tuple from per-category counts.
func (e *Engine) assemble(groups [][]int, counts [][3]uint8) config.Tuple {
	full := make([]int, e.space.Types())
	for g, idx := range groups {
		if g >= len(counts) {
			break
		}
		for k, i := range idx {
			full[i] = int(counts[g][k])
		}
	}
	t, err := config.NewTuple(full)
	if err != nil {
		panic("core: assemble produced invalid tuple: " + err.Error()) // counts come from the space
	}
	return t
}

// pruneCombos keeps the (unit cost ↓, capacity ↑) Pareto set of a
// category's combinations: any dominated combination can be exchanged
// for a dominating one in a full configuration without raising cost or
// losing capacity.
func pruneCombos(combos []catCombo) []catCombo {
	sort.Slice(combos, func(i, j int) bool {
		if combos[i].cu != combos[j].cu {
			return combos[i].cu < combos[j].cu
		}
		return combos[i].u > combos[j].u
	})
	var out []catCombo
	bestU := units.Rate(math.Inf(-1))
	for _, c := range combos {
		if c.u > bestU {
			out = append(out, c)
			bestU = c.u
		}
	}
	return out
}

// scanSearch is the general single-objective search over the whole
// space, used when the catalog does not fit the decomposed merge.
func (e *Engine) scanSearch(d units.Instructions, cons Constraints, obj objective) (model.Prediction, bool) {
	pred, ok, _ := e.scanSearchCtx(context.Background(), d, cons, obj)
	return pred, ok
}

func (e *Engine) scanSearchCtx(ctx context.Context, d units.Instructions, cons Constraints, obj objective) (model.Prediction, bool, error) {
	w, nodeCost := e.caps.NodeArrays()
	deadline, budget := cons.deadlineOrInf(), cons.budgetOrInf()
	workers := runtime.GOMAXPROCS(0)
	type best struct {
		val  float64
		t    config.Tuple
		ok   bool
		seen uint64
	}
	bests := make([]best, workers)
	for i := range bests {
		bests[i].val = math.Inf(1)
	}
	var stop atomic.Bool
	e.space.ForEachParallel(workers, func(worker int, t config.Tuple) {
		if stop.Load() {
			return
		}
		if b := &bests[worker]; b.seen&ctxPollMask == ctxPollMask {
			b.seen++
			if ctx.Err() != nil {
				stop.Store(true)
				return
			}
		} else {
			b.seen++
		}
		var u units.Rate
		var cu units.USDPerHour
		for i := 0; i < t.Len(); i++ {
			if m := t.Count(i); m > 0 {
				u += units.Rate(m) * w[i]
				cu += units.USDPerHour(m) * nodeCost[i]
			}
		}
		T := units.Time(d, u)
		C := e.billCost(T, cu)
		if T >= deadline || C >= budget {
			return
		}
		//lint:allow unitsafe objective value is cost ($) or time (s) by query kind; only compared against itself
		v := float64(C)
		if obj == objectiveTime {
			//lint:allow unitsafe objective value is cost ($) or time (s) by query kind; only compared against itself
			v = float64(T)
		}
		b := &bests[worker]
		//lint:allow floateq exact argmin tie: ulp-equal costs resolve lexicographically by tuple, deterministic either way
		if v < b.val || (v == b.val && b.ok && lessTuple(t, b.t)) {
			b.val, b.t, b.ok = v, t, true
		}
	})
	if err := ctx.Err(); err != nil {
		return model.Prediction{}, false, errAborted(err)
	}
	out := best{val: math.Inf(1)}
	for _, b := range bests {
		//lint:allow floateq exact argmin tie: ulp-equal costs resolve lexicographically by tuple, deterministic either way
		if b.ok && (b.val < out.val || (b.val == out.val && out.ok && lessTuple(b.t, out.t))) {
			out = b
		}
	}
	if !out.ok {
		return model.Prediction{}, false, nil
	}
	return e.caps.PredictBilled(d, out.t, e.billing), true, nil
}

// MaxAccuracy finds the largest accuracy value a (within the app's
// domain) such that problem (n, a) still admits a configuration meeting
// both constraints — the inverse query that motivates elastic
// applications: spend the whole budget on result quality. Monotone
// demand in a is assumed (true for all three paper applications);
// binary search to within tol (relative).
func (e *Engine) MaxAccuracy(n float64, cons Constraints, tol float64) (workload.Params, model.Prediction, bool, error) {
	return e.MaxAccuracyContext(context.Background(), n, cons, tol)
}

// MaxAccuracyContext is MaxAccuracy with cooperative cancellation. The
// bisection runs up to ~20 sequential searches; on a scan-fallback
// engine that is the single most expensive query the serving path can
// receive, so each probe checks ctx and the whole bisection aborts as
// soon as the context is done.
func (e *Engine) MaxAccuracyContext(ctx context.Context, n float64, cons Constraints, tol float64) (workload.Params, model.Prediction, bool, error) {
	if tol <= 0 {
		tol = 1e-3
	}
	lo, hi := e.domain.MinA, e.domain.MaxA
	check := func(a float64) (model.Prediction, bool, error) {
		d, err := e.Demand(workload.Params{N: n, A: a})
		if err != nil {
			return model.Prediction{}, false, nil
		}
		return e.searchBestCtx(ctx, d, cons, objectiveCost)
	}
	pred, ok, err := check(lo)
	if err != nil {
		return workload.Params{}, model.Prediction{}, false, err
	}
	if !ok {
		return workload.Params{}, model.Prediction{}, false, nil
	}
	if p, ok, err := check(hi); err != nil {
		return workload.Params{}, model.Prediction{}, false, err
	} else if ok {
		return workload.Params{N: n, A: hi}, p, true, nil
	}
	bestA := lo
	for hi-lo > tol*math.Max(1, hi) {
		mid := (lo + hi) / 2
		p, ok, err := check(mid)
		if err != nil {
			return workload.Params{}, model.Prediction{}, false, err
		}
		if ok {
			bestA, pred, lo = mid, p, mid
		} else {
			hi = mid
		}
	}
	return workload.Params{N: n, A: bestA}, pred, true, nil
}

// NewPaperEngine assembles the paper's standard setup for an
// application: Oregon catalog, five nodes per type, ground-truth
// capacities, and the app's analytic demand law. Production use feeds
// fitted demand models and profiled capacities instead; this
// constructor serves analysis and examples.
func NewPaperEngine(app workload.App) *Engine {
	cat := ec2.Oregon()
	space, err := config.Uniform(cat.Len(), 5)
	if err != nil {
		panic("core: paper space: " + err.Error())
	}
	eng, err := NewEngine(model.FromIPC(cat, app), demand.FromApp(app), space, app.Domain())
	if err != nil {
		panic("core: paper engine: " + err.Error())
	}
	return eng
}
