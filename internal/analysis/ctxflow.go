// The ctxflow rule: context.Context must actually flow. PR 7's
// degradation ladder (index → scan → 503) only works because every
// compute loop polls its context — a single loop that ignores ctx
// turns a canceled request into a worker pinned for the full scan, and
// a single function that drops ctx on the floor severs cancellation
// for everything downstream of it. These are not crashes; nothing
// fails until the service is saturated by requests that no longer
// honor their deadlines.
//
// Five checks, all within the serving/compute packages:
//
//  1. a blank context parameter (_ context.Context) — cancellation
//     stops propagating at that signature;
//  2. a named context parameter the body never mentions — same bug,
//     spelled differently;
//  3. calling context.Background()/context.TODO() inside a function
//     that already receives a ctx — detaching from the caller's
//     deadline (legitimate detachment, e.g. a background rebuild that
//     must outlive the request, takes a reasoned //lint:allow);
//  4. an unconditional for-loop (no condition) in a context-carrying
//     function whose body never mentions a context value — the loop
//     cannot be canceled;
//  5. a ForEach*-style space-iteration call in a context-carrying
//     function whose callback literal never mentions a context value —
//     the scan cannot be canceled (the ctxPollMask idiom in
//     internal/core is the approved shape);
//  6. calling Foo when a FooContext/FooCtx sibling exists (same
//     receiver or package, first parameter context.Context) while a
//     ctx is in scope — the caller is opting out of cancellation that
//     the callee already supports.
//
// "Mentions a context value" is deliberately loose (any identifier of
// type context.Context): the rule wants to prove the loop CAN observe
// cancellation, not bit-verify the polling arithmetic — the chaos
// suite covers the latter. Checks 4–6 treat ctx as in scope when any
// enclosing function literal chain carries a context parameter or
// local.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow is the seventh analyzer; see the package comment above.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context must propagate: no dropped ctx params, no Background() under a live ctx, no unpollable loops, no ignoring FooContext variants",
	Run:  runCtxflow,
}

// ctxflowScope: the request path. Packages outside it (offline sweep,
// CLI, model fitting) may legitimately run to completion.
var ctxflowScope = []string{
	"internal/core",
	"internal/serving",
	"internal/api",
	"internal/schedule",
	"internal/snapshot",
	"internal/workqueue",
	"internal/localserver",
}

func runCtxflow(pass *Pass) {
	in := false
	for _, prefix := range ctxflowScope {
		if pathWithin(pass.Path, prefix) {
			in = true
			break
		}
	}
	if !in {
		return
	}
	c := &ctxChecker{pass: pass, module: modulePrefix(pass.Path)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.visitFunc(fd.Type, fd.Body, false)
		}
	}
}

// modulePrefix recovers the module path from an import path like
// "repro/internal/core" so the FooContext-sibling check stays within
// this module (stdlib and fixture noise excluded).
func modulePrefix(path string) string {
	if i := strings.Index(path, "/internal/"); i >= 0 {
		return path[:i]
	}
	return path
}

type ctxChecker struct {
	pass   *Pass
	module string
}

// visitFunc checks one function (declaration or literal). inherited
// reports whether an enclosing function already carries a ctx.
func (c *ctxChecker) visitFunc(ftype *ast.FuncType, body *ast.BlockStmt, inherited bool) {
	info := c.pass.Info
	var ctxParams []*types.Var
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				v, ok := info.Defs[name].(*types.Var)
				if !ok || !isContextType(v.Type()) {
					continue
				}
				if name.Name == "_" {
					c.pass.Reportf(name.Pos(), "context.Context parameter is discarded with _: cancellation stops propagating here")
					continue
				}
				ctxParams = append(ctxParams, v)
			}
		}
	}
	// Check 2: a named ctx parameter the body never uses.
	for _, v := range ctxParams {
		if !usesVar(info, body, v) {
			c.pass.Reportf(v.Pos(), "context.Context parameter %q is never used: pass it to callees or poll it in loops", v.Name())
		}
	}
	hasCtx := inherited || len(ctxParams) > 0 || declaresCtxLocal(info, body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.visitFunc(n.Type, n.Body, hasCtx)
			return false
		case *ast.ForStmt:
			// Check 4: unconditional loop with ctx in scope but no poll.
			if n.Cond == nil && hasCtx && !mentionsCtx(info, n.Body) {
				c.pass.Reportf(n.Pos(), "unbounded for-loop in a context-carrying function never polls ctx: add a ctx.Err() check or bound the loop")
			}
		case *ast.CallExpr:
			c.checkCall(n, hasCtx, len(ctxParams) > 0 || inherited)
		}
		return true
	})
}

func (c *ctxChecker) checkCall(call *ast.CallExpr, hasCtx, hasCtxParam bool) {
	info := c.pass.Info
	// Check 3: context.Background()/TODO() under a live caller ctx.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if path, ok := pkgSelector(info, sel); ok && path == "context" &&
			(sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") && hasCtxParam {
			c.pass.Reportf(call.Pos(), "context.%s() called while a caller context is in scope: derive from the caller's ctx so cancellation propagates", sel.Sel.Name)
			return
		}
	}
	if !hasCtx {
		return
	}
	// Check 5: space-iteration callbacks must be able to observe ctx.
	if name := calleeName(call); strings.HasPrefix(name, "ForEach") {
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok && !mentionsCtx(info, lit.Body) {
				c.pass.Reportf(call.Pos(), "%s callback in a context-carrying function never polls ctx: use the ctxPollMask idiom so the scan can be canceled", name)
			}
		}
	}
	// Check 6: a FooContext/FooCtx sibling exists but Foo was called.
	c.checkContextSibling(call)
}

// checkContextSibling flags calls to Foo when the same receiver or
// package exports FooContext/FooCtx taking a context first — calling
// the ctx-blind variant severs cancellation the callee supports.
func (c *ctxChecker) checkContextSibling(call *ast.CallExpr) {
	info := c.pass.Info
	var fn *types.Func
	var lookup func(name string) types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, ok := info.Uses[fun].(*types.Func)
		if !ok || f.Pkg() == nil {
			return
		}
		fn = f
		scope := f.Pkg().Scope()
		lookup = func(name string) types.Object { return scope.Lookup(name) }
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, ok := sel.Obj().(*types.Func)
			if !ok || f.Pkg() == nil {
				return
			}
			fn = f
			recv := sel.Recv()
			pkg := f.Pkg()
			lookup = func(name string) types.Object {
				obj, _, _ := types.LookupFieldOrMethod(recv, true, pkg, name)
				return obj
			}
		} else if path, ok := pkgSelector(info, fun); ok {
			f, ok := info.Uses[fun.Sel].(*types.Func)
			if !ok || f.Pkg() == nil || f.Pkg().Path() != path {
				return
			}
			fn = f
			scope := f.Pkg().Scope()
			lookup = func(name string) types.Object { return scope.Lookup(name) }
		} else {
			return
		}
	default:
		return
	}
	// Stay within this module, and skip functions that already take a
	// ctx anywhere in their signature.
	if !strings.HasPrefix(fn.Pkg().Path(), c.module) {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			if isContextType(sig.Params().At(i).Type()) {
				return
			}
		}
	}
	name := fn.Name()
	if strings.HasSuffix(name, "Context") || strings.HasSuffix(name, "Ctx") {
		return
	}
	for _, suffix := range []string{"Context", "Ctx"} {
		obj := lookup(name + suffix)
		sib, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig, ok := sib.Type().(*types.Signature)
		if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
			continue
		}
		c.pass.Reportf(call.Pos(), "%s called with a ctx in scope but %s%s exists: call the context-aware variant", name, name, suffix)
		return
	}
}

// calleeName returns the bare called name: Foo for both foo.Foo(...)
// and x.Foo(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// usesVar reports whether the body references the variable.
func usesVar(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return true
	})
	return found
}

// declaresCtxLocal reports whether the body defines any variable of
// type context.Context (ctx, cancel := context.WithTimeout(...)).
func declaresCtxLocal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok && isContextType(v.Type()) {
				found = true
			}
		}
		return true
	})
	return found
}

// mentionsCtx reports whether the subtree references any value of type
// context.Context — the loose "this loop can observe cancellation"
// test used by checks 4 and 5.
func mentionsCtx(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) {
				found = true
			}
		}
		return true
	})
	return found
}
