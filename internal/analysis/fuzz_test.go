package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fuzzers throw arbitrary (and partially type-checked) Go sources
// at the CFG builder and the summary engine. The invariants are
// structural, not semantic: no panic, the SCC fixpoint terminates, and
// dumps are stable across two independent builds — the properties every
// rule silently relies on. Seeds come from this repository's own
// sources, so the corpus starts with the exact language surface the
// production rules walk.

// seedRepoSources feeds every non-test .go file from a few production
// packages into the corpus.
func seedRepoSources(f *testing.F, dirs ...string) {
	f.Helper()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			f.Fatal(err)
		}
		for _, e := range entries {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, n))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
}

// FuzzCFGBuild asserts the CFG builder never panics on any function
// body that parses, and that Dump and Reachable are deterministic.
func FuzzCFGBuild(f *testing.F) {
	seedRepoSources(f, ".", "../core", "../serving", "../schedule")
	f.Fuzz(func(t *testing.T, src []byte) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := BuildCFG(fd.Body)
			if g.Entry == nil || g.Exit == nil {
				t.Fatalf("CFG for %s has nil entry/exit", fd.Name.Name)
			}
			if d1, d2 := g.Dump(fset), g.Dump(fset); d1 != d2 {
				t.Fatalf("CFG dump unstable for %s:\n%s\nvs\n%s", fd.Name.Name, d1, d2)
			}
			r1 := g.Reachable()
			if r2 := g.Reachable(); len(r1) != len(r2) {
				t.Fatalf("Reachable unstable for %s: %d vs %d blocks", fd.Name.Name, len(r1), len(r2))
			}
		}
	})
}

// fuzzCheck type-checks one fuzzed file leniently: type errors are
// swallowed so the summary engine sees the same partially resolved
// packages a broken tree would hand it mid-refactor.
func fuzzCheck(t *testing.T, src []byte) *CheckedPackage {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Skip()
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Error:    func(error) {},
		Importer: importer.Default(),
	}
	pkg, _ := conf.Check("repro/internal/fuzzpkg", fset, []*ast.File{file}, info)
	if pkg == nil {
		t.Skip()
	}
	return &CheckedPackage{Fset: fset, Path: "repro/internal/fuzzpkg", Files: []*ast.File{file}, Pkg: pkg, Info: info}
}

// FuzzSummaries asserts the interprocedural layer never panics, its
// SCC fixpoint terminates, and two independent module builds over the
// same package produce byte-identical summary dumps.
func FuzzSummaries(f *testing.F) {
	seedRepoSources(f, ".", "../core", "../serving", "../schedule", "../faults/risk")
	f.Fuzz(func(t *testing.T, src []byte) {
		cp := fuzzCheck(t, src)
		m1 := BuildModule([]*CheckedPackage{cp})
		d1 := m1.DumpSummaries()
		m2 := BuildModule([]*CheckedPackage{cp})
		if d2 := m2.DumpSummaries(); d1 != d2 {
			t.Fatalf("summary dump unstable across builds:\n%s\nvs\n%s", d1, d2)
		}
		if s := m1.Stats(); s.FixpointIters > len(m1.Funcs)*maxSummaryFixpoint {
			t.Fatalf("fixpoint ran away: %d iterations for %d functions", s.FixpointIters, len(m1.Funcs))
		}
	})
}
