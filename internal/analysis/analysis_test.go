package analysis

import (
	"strings"
	"testing"
)

// loadFixture type-checks one testdata package through a shared loader
// (the module packages it imports are checked once and cached).
func loadFixture(t *testing.T, l *Loader, dir string) *CheckedPackage {
	t.Helper()
	cp, err := l.LoadDir("testdata/" + dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return cp
}

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// TestAnalyzersFireOnBadFixtures asserts each rule reports at least the
// expected number of findings on its known-bad fixture, and that every
// finding carries that rule's name.
func TestAnalyzersFireOnBadFixtures(t *testing.T) {
	l := newTestLoader(t)
	cases := []struct {
		rule    string
		dir     string
		minHits int
	}{
		{"nodeterm", "nodeterm_bad", 4},
		{"floateq", "floateq_bad", 4},
		{"metricname", "metricname_bad", 5},
		{"httpenvelope", "httpenvelope_bad", 2},
		{"nakedgo", "nakedgo_bad", 1},
		{"unitsafe", "unitsafe_bad", 7},
		{"ctxflow", "ctxflow_bad", 6},
		{"atomicpub", "atomicpub_bad", 5},
		{"lockdiscipline", "lockdiscipline_bad", 6},
		{"cachekey", "cachekey_bad", 3},
		{"ctxflowip", "ctxflowip_bad", 2},
		{"lockdisciplineip", "lockdisciplineip_bad", 2},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			cp := loadFixture(t, l, tc.dir)
			findings := Run(Suite(), []*CheckedPackage{cp})
			if len(findings) < tc.minHits {
				t.Fatalf("want >= %d findings, got %d: %v", tc.minHits, len(findings), findings)
			}
			for _, f := range findings {
				if f.Rule != tc.rule {
					t.Errorf("unexpected rule %q in finding %s (fixture targets %q)", f.Rule, f.String(), tc.rule)
				}
			}
		})
	}
}

// TestAnalyzersQuietOnGoodFixtures asserts the full suite stays silent
// on each known-good fixture.
func TestAnalyzersQuietOnGoodFixtures(t *testing.T) {
	l := newTestLoader(t)
	dirs := []string{
		"nodeterm_good",
		"floateq_good",
		"metricname_good",
		"httpenvelope_good",
		"nakedgo_good",
		"unitsafe_good",
		"ctxflow_good",
		"atomicpub_good",
		"lockdiscipline_good",
		"cachekey_good",
		"ctxflowip_good",
		"lockdisciplineip_good",
	}
	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) {
			cp := loadFixture(t, l, dir)
			if findings := Run(Suite(), []*CheckedPackage{cp}); len(findings) != 0 {
				t.Fatalf("want 0 findings, got %d: %v", len(findings), findings)
			}
		})
	}
}

// TestMalformedAllowsAreFindings asserts that a reason-less //lint:allow,
// one naming an unknown rule, and a well-formed one that suppresses
// nothing (stale) are themselves reported, and that a malformed
// directive suppresses nothing: the floateq findings it tried to hide
// must surface alongside the lintallow findings.
func TestMalformedAllowsAreFindings(t *testing.T) {
	l := newTestLoader(t)
	cp := loadFixture(t, l, "lintallow_bad")
	findings := Run(Suite(), []*CheckedPackage{cp})
	byRule := map[string]int{}
	for _, f := range findings {
		byRule[f.Rule]++
	}
	if byRule["lintallow"] != 3 {
		t.Errorf("want 3 lintallow findings (missing reason, unknown rule, stale waiver), got %d: %v", byRule["lintallow"], findings)
	}
	if byRule["floateq"] != 2 {
		t.Errorf("malformed allows must not suppress: want 2 floateq findings, got %d: %v", byRule["floateq"], findings)
	}
	var sawReason, sawUnknown, sawStale bool
	for _, f := range findings {
		if f.Rule != "lintallow" {
			continue
		}
		if strings.Contains(f.Msg, "needs a reason") {
			sawReason = true
		}
		if strings.Contains(f.Msg, "unknown rule") {
			sawUnknown = true
		}
		if strings.Contains(f.Msg, "stale waiver") {
			sawStale = true
		}
	}
	if !sawReason || !sawUnknown || !sawStale {
		t.Errorf("want missing-reason, unknown-rule, and stale-waiver messages, got %v", findings)
	}
}

// TestStaleWaiverSkippedForInactiveRules asserts -rule style subset
// runs do not flag waivers for rules that did not run: a floateq
// waiver is only judged when floateq itself is active.
func TestStaleWaiverSkippedForInactiveRules(t *testing.T) {
	l := newTestLoader(t)
	cp := loadFixture(t, l, "lintallow_bad")
	findings := Run([]*Analyzer{Nakedgo}, []*CheckedPackage{cp})
	for _, f := range findings {
		if strings.Contains(f.Msg, "stale waiver") {
			t.Errorf("stale-waiver finding for an inactive rule: %v", f)
		}
	}
}

// TestModuleIsClean is the dogfood gate: the repo's own packages must
// pass the full suite. It mirrors what `go run ./cmd/celia-lint ./...`
// enforces in CI, so a regression fails tier-1 tests too.
func TestModuleIsClean(t *testing.T) {
	l := newTestLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if findings := Run(Suite(), pkgs); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("%s", f.String())
		}
	}
}

func TestFindingString(t *testing.T) {
	cp := &CheckedPackage{}
	_ = cp // silence unused in case of refactors; Finding formatting is position-only
	f := Finding{Rule: "nodeterm", Msg: "call to time.Now"}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 12
	f.Pos.Column = 3
	if got, want := f.String(), "x.go:12:3: [nodeterm] call to time.Now"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestPathWithin(t *testing.T) {
	cases := []struct {
		path, prefix string
		want         bool
	}{
		{"repro/internal/des", "internal/des", true},
		{"repro/internal/des/lintfixture", "internal/des", true},
		{"repro/internal/design", "internal/des", false},
		{"repro/internal/faults/risk", "internal/faults", true},
		{"repro/cmd/celia-lint", "internal/des", false},
		{"internal/des", "internal/des", true},
	}
	for _, tc := range cases {
		if got := pathWithin(tc.path, tc.prefix); got != tc.want {
			t.Errorf("pathWithin(%q, %q) = %v, want %v", tc.path, tc.prefix, got, tc.want)
		}
	}
}
