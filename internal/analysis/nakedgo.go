package analysis

import (
	"go/ast"
	"go/types"
)

// nakedgoPrefixes scopes the rule to the request-serving path, where a
// goroutine that outlives its request leaks under load and dies
// silently on shutdown.
var nakedgoPrefixes = []string{"internal/api", "internal/serving"}

// Nakedgo forbids untracked `go` statements in the serving path: every
// goroutine must be visibly tied to a sync.WaitGroup (or the
// internal/workqueue pool) in the enclosing function declaration, so
// graceful drain can wait for it and tests can join it.
var Nakedgo = &Analyzer{
	Name: "nakedgo",
	Doc: "no untracked go statements in internal/serving and internal/api: " +
		"tie goroutines to a sync.WaitGroup or the worker pool",
	Run: runNakedgo,
}

func runNakedgo(pass *Pass) {
	applies := false
	for _, p := range nakedgoPrefixes {
		if pathWithin(pass.Path, p) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var gos []*ast.GoStmt
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					gos = append(gos, g)
				}
				return true
			})
			if len(gos) == 0 {
				continue
			}
			if funcTracksGoroutines(pass, fd) {
				continue
			}
			for _, g := range gos {
				pass.Reportf(g.Pos(), "untracked goroutine in the serving path: tie it to a sync.WaitGroup (or the workqueue pool) visible in %s so drain can join it", fd.Name.Name)
			}
		}
	}
}

// funcTracksGoroutines reports whether the declaration mentions a
// value whose type is sync.WaitGroup (possibly behind a pointer) or
// comes from internal/workqueue.
func funcTracksGoroutines(pass *Pass, fd *ast.FuncDecl) bool {
	tracked := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if tracked {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		if isTrackingType(v.Type()) {
			tracked = true
		}
		return true
	})
	return tracked
}

func isTrackingType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path == "sync" && obj.Name() == "WaitGroup" {
		return true
	}
	return pathWithin(path, "internal/workqueue")
}
