package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// cfgOf builds the CFG of a function whose body is the given source
// text. Construction is purely syntactic, so undefined identifiers are
// fine — no type checking happens here.
func cfgOf(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return BuildCFG(file.Decls[0].(*ast.FuncDecl).Body)
}

// expectDump pins the exact shape of a graph: block membership, tags,
// and edges all at once, in the renumbered reachable order Dump uses.
func expectDump(t *testing.T, g *CFG, want string) {
	t.Helper()
	if got := g.Dump(nil); got != strings.TrimLeft(want, "\n") {
		t.Errorf("CFG mismatch:\n got:\n%s want:\n%s", got, strings.TrimLeft(want, "\n"))
	}
}

func TestCFGIfElseMerge(t *testing.T) {
	g := cfgOf(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	x = 4
	return`)
	expectDump(t, g, `
b0 entry: assign, cond -> b3 b4
b1 exit:
b2: assign, return -> b1
b3: assign -> b2
b4: assign -> b2
`)
}

func TestCFGForLoop(t *testing.T) {
	// Full three-clause for: init in the predecessor, cond in the
	// header with a false-edge to after, post on the back-edge.
	g := cfgOf(t, `
	for i := 0; i < 3; i++ {
		work()
	}`)
	expectDump(t, g, `
b0 entry: assign -> b2
b1 exit:
b2: cond -> b3 b5
b3: -> b1
b4: incdec -> b2
b5: call -> b4
`)
}

func TestCFGInfiniteForHasNoExit(t *testing.T) {
	// for {} with no break: the after-block (and so Exit) must be
	// unreachable — this is exactly what ctxflow's unbounded-loop check
	// leans on.
	g := cfgOf(t, `
	for {
		work()
	}`)
	dump := g.Dump(nil)
	if strings.Contains(dump, "exit") {
		t.Errorf("infinite loop must not reach exit:\n%s", dump)
	}
	expectDump(t, g, `
b0 entry: -> b1
b1: -> b2
b2: call -> b1
`)
}

func TestCFGRangeBackEdge(t *testing.T) {
	// The range clause itself sits in the header; the body loops back
	// to it and the exhausted edge leaves it.
	g := cfgOf(t, `
	for _, v := range xs {
		use(v)
	}
	return`)
	expectDump(t, g, `
b0 entry: -> b2
b1 exit:
b2: range -> b3 b4
b3: return -> b1
b4: call -> b2
`)
}

func TestCFGLabeledBreak(t *testing.T) {
	g := cfgOf(t, `
loop:
	for i := 0; i < 10; i++ {
		if p() {
			break loop
		}
		work()
	}
	rest()`)
	expectDump(t, g, `
b0 entry: -> b2
b1 exit:
b2: assign -> b3
b3: cond -> b4 b6
b4: call -> b1
b5: incdec -> b3
b6: cond -> b7 b8
b7: call -> b5
b8: -> b4
`)
}

func TestCFGSwitchFallthrough(t *testing.T) {
	// Each clause hangs off the header; fallthrough chains clause 1's
	// body into clause 2's; with a default there is no header→after
	// edge.
	g := cfgOf(t, `
	switch x() {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}`)
	expectDump(t, g, `
b0 entry: cond -> b3 b4 b5
b1 exit:
b2: -> b1
b3: call -> b4
b4: call -> b2
b5: call -> b2
`)
}

func TestCFGSelect(t *testing.T) {
	g := cfgOf(t, `
	select {
	case v := <-ch:
		use(v)
	case ch2 <- 1:
		work()
	default:
		idle()
	}`)
	expectDump(t, g, `
b0 entry: -> b3 b4 b5
b1 exit:
b2: -> b1
b3: assign, call -> b2
b4: send, call -> b2
b5: call -> b2
`)
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	g := cfgOf(t, `
	select {}
	work()`)
	dump := g.Dump(nil)
	if strings.Contains(dump, "exit") || strings.Contains(dump, "call") {
		t.Errorf("select{} must strand everything after it:\n%s", dump)
	}
}

func TestCFGGotoForward(t *testing.T) {
	g := cfgOf(t, `
	if p() {
		goto done
	}
	work()
done:
	rest()`)
	expectDump(t, g, `
b0 entry: cond -> b2 b3
b1 exit:
b2: call -> b4
b3: -> b4
b4: call -> b1
`)
}

func TestCFGDeferStaysInBlock(t *testing.T) {
	// The builder does not model the deferred call's execution point;
	// defer is an ordinary in-block statement and rules decide what it
	// means.
	g := cfgOf(t, `
	defer cleanup()
	work()
	return`)
	expectDump(t, g, `
b0 entry: defer, call, return -> b1
b1 exit:
`)
}

func TestCFGExplicitPanicEdge(t *testing.T) {
	// Only explicit panic(...) gets a distinguished exit; the statement
	// after it is dead.
	g := cfgOf(t, `
	if cond() {
		panic("boom")
	}
	work()`)
	expectDump(t, g, `
b0 entry: cond -> b2 b3
b1 exit:
b2: call -> b1
b3: panic -> b4
b4 panic:
`)
}

func TestCFGReachableSkipsDeadCode(t *testing.T) {
	g := cfgOf(t, `
	return
	work()`)
	if n := len(g.Reachable()); n != 2 {
		t.Errorf("want 2 reachable blocks (entry, exit), got %d:\n%s", n, g.Dump(nil))
	}
}

// TestCFGDumpGoldenFixture pins the dump of a real fixture function
// (lockdiscipline_bad.Get) so graph-shape regressions are separable
// from rule regressions when a fixture test starts failing.
func TestCFGDumpGoldenFixture(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "testdata/lockdiscipline_bad/bad.go", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	var fn *ast.FuncDecl
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "Get" {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatal("fixture function Get not found in lockdiscipline_bad")
	}
	want := strings.TrimLeft(`
b0 entry: call, assign, cond -> b2 b3
b1 exit:
b2: call, return -> b1
b3: return -> b1
`, "\n")
	if got := BuildCFG(fn.Body).Dump(fset); got != want {
		t.Errorf("golden dump mismatch:\n got:\n%s want:\n%s", got, want)
	}
}
