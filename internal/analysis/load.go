package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// CheckedPackage is one parsed and type-checked package, ready for the
// analyzer suite.
type CheckedPackage struct {
	Fset *token.FileSet
	// Path is the effective import path used for rule applicability. A
	// fixture under testdata may override it with a
	// "//celialint:as <import-path>" comment so analyzers scoped to
	// production packages can be exercised on known-bad snippets.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Imports lists the package's module-internal imports (effective
	// import paths), for the -changed reverse-dependency closure.
	Imports []string
	// Universe is every module package checked by the same loader. The
	// interprocedural rules build their call graph and summaries over it,
	// so a single fixture or mutant package still sees the summaries of
	// the production functions it calls.
	Universe []*CheckedPackage
}

// Loader parses and type-checks module packages using only the
// standard library: module-internal imports resolve from the already
// checked set (packages are visited in dependency order) and
// everything else goes through the stdlib source importer. It exists
// because the module has a hard zero-external-dependency constraint,
// so golang.org/x/tools/go/packages is off the table.
type Loader struct {
	Fset *token.FileSet

	root     string // module root directory (holds go.mod)
	modPath  string // module path declared in go.mod
	checked  map[string]*types.Package
	packages map[string]*CheckedPackage
	fallback types.Importer

	moduleList []*CheckedPackage // LoadModule result, in dependency order

	// Per-phase wall time, for celia-lint -timing. Both accumulate (the
	// loader memoizes, so repeated loads add ~nothing).
	parseWall time.Duration
	checkWall time.Duration
}

// NewLoader locates the enclosing module of dir and prepares a loader
// for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, err := findModuleRoot(abs)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		root:     root,
		modPath:  modPath,
		checked:  map[string]*types.Package{},
		packages: map[string]*CheckedPackage{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}, nil
}

// ModulePath reports the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// Root reports the module root directory (the one holding go.mod) —
// celia-lint -changed resolves git paths against it.
func (l *Loader) Root() string { return l.root }

// Timing reports cumulative parse and type-check wall time — the first
// two phases of celia-lint -timing's breakdown.
func (l *Loader) Timing() (parse, check time.Duration) { return l.parseWall, l.checkWall }

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer: module-internal paths come from
// the checked set, the rest from the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if pkg, ok := l.checked[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("analysis: internal package %s not loaded (import cycle?)", path)
	}
	return l.fallback.Import(path)
}

// LoadModule parses and type-checks every package in the module, in
// dependency order, skipping testdata trees and _test.go files.
// Results are memoized: calling it twice is cheap.
func (l *Loader) LoadModule() ([]*CheckedPackage, error) {
	dirs, err := l.discover()
	if err != nil {
		return nil, err
	}
	parsed := make(map[string]*parsedDir, len(dirs))
	for _, dir := range dirs {
		p, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			parsed[p.importPath] = p
		}
	}
	order, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}
	var out []*CheckedPackage
	for _, path := range order {
		if cp, ok := l.packages[path]; ok {
			out = append(out, cp)
			continue
		}
		cp, err := l.check(parsed[path])
		if err != nil {
			return nil, err
		}
		out = append(out, cp)
	}
	l.moduleList = out
	for _, cp := range out {
		cp.Universe = out
	}
	return out, nil
}

// LoadDir parses and type-checks a single extra directory — typically
// an internal/analysis/testdata fixture — against the module's
// packages, which are loaded on demand.
func (l *Loader) LoadDir(dir string) (*CheckedPackage, error) {
	if _, err := l.LoadModule(); err != nil {
		return nil, err
	}
	p, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	cp, err := l.check(p)
	if err != nil {
		return nil, err
	}
	cp.Universe = l.moduleList
	return cp, nil
}

// parsedDir is one directory's worth of parsed files.
type parsedDir struct {
	dir        string
	importPath string // effective path (honors //celialint:as)
	files      []*ast.File
	imports    []string // module-internal imports only
}

// discover walks the module and returns every directory that may hold
// a package. testdata trees, hidden and underscore directories, and
// .git are skipped, matching the go tool's conventions.
func (l *Loader) discover() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == ".git" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory; nil when the
// directory holds none.
func (l *Loader) parseDir(dir string) (*parsedDir, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	start := time.Now()
	defer func() { l.parseWall += time.Since(start) }()
	sort.Strings(names)
	p := &parsedDir{dir: dir, importPath: l.importPathFor(dir)}
	seen := map[string]bool{}
	for _, n := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if as := asDirective(file); as != "" {
			p.importPath = as
		}
		p.files = append(p.files, file)
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) && !seen[path] {
				seen[path] = true
				p.imports = append(p.imports, path)
			}
		}
	}
	sort.Strings(p.imports)
	return p, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// asDirective returns the import path named by a
// "//celialint:as <path>" comment, if the file carries one.
func asDirective(file *ast.File) string {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if rest, ok := strings.CutPrefix(strings.TrimSpace(text), "celialint:as "); ok {
				return strings.TrimSpace(rest)
			}
		}
	}
	return ""
}

// topoSort orders import paths so every package follows its
// module-internal dependencies.
func topoSort(parsed map[string]*parsedDir) ([]string, error) {
	const (
		white = iota // unvisited
		grey         // on the current DFS path
		black        // done
	)
	state := make(map[string]int, len(parsed))
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		p, ok := parsed[path]
		if !ok {
			return nil // resolved later by the importer (or a missing dir error there)
		}
		switch state[path] {
		case grey:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case black:
			return nil
		}
		state[path] = grey
		for _, dep := range p.imports {
			if dep == path {
				continue
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(parsed))
	for path := range parsed {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check type-checks one parsed directory and caches the result.
func (l *Loader) check(p *parsedDir) (*CheckedPackage, error) {
	start := time.Now()
	defer func() { l.checkWall += time.Since(start) }()
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(p.importPath, l.Fset, p.files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, e := range errs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type errors in %s:\n  %s", p.importPath, strings.Join(msgs, "\n  "))
	}
	cp := &CheckedPackage{Fset: l.Fset, Path: p.importPath, Files: p.files, Pkg: pkg, Info: info, Imports: p.imports}
	l.checked[p.importPath] = pkg
	l.packages[p.importPath] = cp
	return cp, nil
}
