// Helpers shared by the flow-sensitive rules (ctxflow, atomicpub,
// lockdiscipline): function-body enumeration, expression identity
// keys, and the small type queries the three rules all need.
package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// forEachFuncBody calls fn once for every function body in the
// package: each declared function/method and each function literal.
// Literals get their own visit (and their own CFG) — the CFG builder
// treats a nested FuncLit as an opaque value, so analyzing each body
// separately covers the whole tree exactly once.
func forEachFuncBody(pass *Pass, fn func(body *ast.BlockStmt)) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}

// exprKey renders an expression as a stable identity string within one
// function: "f.mu", "(*p).idx", "m[...]". Used as the lock identity in
// lockdiscipline; two syntactically identical receiver expressions in
// one function denote the same lock for this analysis.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprKey(e.X)
	case *ast.ParenExpr:
		return "(" + exprKey(e.X) + ")"
	case *ast.IndexExpr:
		return exprKey(e.X) + "[...]"
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	case *ast.TypeAssertExpr:
		return exprKey(e.X) + ".(type)"
	}
	return "?"
}

func formatMsg(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}

// methodRecvName returns the bare name of a method's declared receiver
// type — *sync.RWMutex → "RWMutex" — so promoted methods of embedded
// fields classify by where the method really lives, not by the outer
// struct the selection went through.
func methodRecvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return namedTypeName(sig.Recv().Type())
}

// namedTypeName unwraps pointers and reports the named type's bare
// name, or "" for unnamed types.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isRefType reports whether values of t share underlying storage when
// copied: maps, slices, pointers, and channels. Taint in atomicpub
// propagates only through these — copying a struct or scalar detaches
// it from the published value.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// atomicMethod recognizes a method call on a sync/atomic type and
// returns (method name, receiver expression). Covers atomic.Pointer[T],
// atomic.Value, and the scalar wrappers.
func atomicMethod(info *types.Info, call *ast.CallExpr) (name string, recv ast.Expr, ok bool) {
	fun, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	sel, isMethod := info.Selections[fun]
	if !isMethod {
		return "", nil, false
	}
	fn, isFunc := sel.Obj().(*types.Func)
	if !isFunc || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", nil, false
	}
	return fn.Name(), fun.X, true
}
