// Package analysis is celia-lint: a zero-dependency static-analysis
// suite that machine-checks the repository's determinism, float-safety,
// dimensional-soundness, and serving invariants. CELIA's value rests on bit-for-bit replayable
// model output — the Eq. 2–6 cost/time census, the seeded Monte-Carlo
// deadline-risk estimator, and the byte-exact serving cache — and those
// guarantees die silently the first time someone reads the wall clock
// inside a simulation path or compares floats with ==. Reviewer
// vigilance does not scale; these analyzers do.
//
// The suite is built purely on go/parser, go/ast, go/token, and
// go/types (the module has a hard zero-external-dependency rule, so
// golang.org/x/tools is not available). Each analyzer reports findings
// as "file:line:col: [rule] message"; cmd/celia-lint exits non-zero on
// any finding.
//
// # Escape hatch
//
// A finding can be suppressed with a comment on the same line or the
// line directly above:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory: an allow without one is itself a finding.
// Unknown rule names in allow comments are findings too, so typos
// cannot silently disable a rule.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Finding is one rule violation at one source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// An Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// NeedsModule marks interprocedural rules: the driver builds the
	// call graph + summaries (once per run, shared read-only across the
	// parallel workers) and hands them to the pass as Pass.Module.
	NeedsModule bool
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Path  string // effective import path (see CheckedPackage.Path)
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Module is the shared call graph + summary cache; nil unless the
	// analyzer declared NeedsModule.
	Module *Module

	rule     string
	findings *[]Finding
}

// Reportf records a finding at pos under the running analyzer's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.findings = append(*p.findings, Finding{
		Pos:  p.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Suite returns the full rule set in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{Nodeterm, Floateq, Metricname, Httpenvelope, Nakedgo, Unitsafe, Ctxflow, Atomicpub, Lockdiscipline, Cachekey, CtxflowIP, LockdisciplineIP}
}

// Run applies the analyzers to every package and returns the findings
// that survive //lint:allow suppression, sorted by position then rule.
func Run(analyzers []*Analyzer, pkgs []*CheckedPackage) []Finding {
	findings, _, _ := RunTimedStats(analyzers, pkgs)
	return findings
}

// RunStats reports the non-rule costs of a run: the shared
// interprocedural module build (zero when no selected rule needed it)
// and the module's own counters.
type RunStats struct {
	SummaryBuild time.Duration
	Module       ModuleStats
}

// RuleTiming is one rule's cumulative wall time across every package
// of a run (summed over concurrent passes, so the total can exceed the
// run's wall clock).
type RuleTiming struct {
	Rule    string
	Elapsed time.Duration
}

// RunTimed is Run plus per-rule timings. The (package × analyzer)
// passes are independent — every pass gets a private findings slice
// and analyzers keep their state on the Pass — so they run concurrently
// across GOMAXPROCS workers; suppression filtering and ordering stay
// deterministic because merging is a serial pass over the grid in
// suite order.
//
// Suppression accounting doubles as stale-waiver detection: a
// well-formed //lint:allow whose rule ran in this invocation but
// suppressed nothing is itself a lintallow finding — dead waivers rot
// into false documentation. Waivers for suite rules that were NOT
// selected this run (celia-lint -rule) are left alone: the rule not
// running is no evidence the waiver is dead.
func RunTimed(analyzers []*Analyzer, pkgs []*CheckedPackage) ([]Finding, []RuleTiming) {
	findings, timings, _ := RunTimedStats(analyzers, pkgs)
	return findings, timings
}

// RunTimedStats is RunTimed plus RunStats. When any selected analyzer
// declares NeedsModule, the call graph and summaries are built once up
// front — over the union of the target packages and their loader
// universe, so a lone fixture package still sees the production
// functions it calls — and shared read-only by every worker.
func RunTimedStats(analyzers []*Analyzer, pkgs []*CheckedPackage) ([]Finding, []RuleTiming, RunStats) {
	// "Known" rules for allow validation are the full suite, not just
	// the selected analyzers: -rule must not turn valid waivers into
	// unknown-rule findings.
	known := map[string]bool{}
	for _, a := range Suite() {
		known[a.Name] = true
	}
	active := map[string]bool{}
	needsModule := false
	for _, a := range analyzers {
		known[a.Name] = true
		active[a.Name] = true
		if a.NeedsModule {
			needsModule = true
		}
	}

	var stats RunStats
	var module *Module
	if needsModule {
		start := time.Now()
		seen := map[*CheckedPackage]bool{}
		var universe []*CheckedPackage
		for _, cp := range pkgs {
			for _, u := range append(cp.Universe, cp) {
				if !seen[u] {
					seen[u] = true
					universe = append(universe, u)
				}
			}
		}
		module = BuildModule(universe)
		stats.SummaryBuild = time.Since(start)
	}

	grid := make([][][]Finding, len(pkgs))
	for pi := range grid {
		grid[pi] = make([][]Finding, len(analyzers))
	}
	elapsed := make([]int64, len(analyzers))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for pi, cp := range pkgs {
		for ai, a := range analyzers {
			wg.Add(1)
			go func(pi, ai int, cp *CheckedPackage, a *Analyzer) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				start := time.Now()
				var raw []Finding
				var mod *Module
				if a.NeedsModule {
					mod = module
				}
				a.Run(&Pass{
					Fset:   cp.Fset,
					Path:   cp.Path,
					Files:  cp.Files,
					Pkg:    cp.Pkg,
					Info:   cp.Info,
					Module: mod,

					rule:     a.Name,
					findings: &raw,
				})
				atomic.AddInt64(&elapsed[ai], int64(time.Since(start)))
				grid[pi][ai] = raw
			}(pi, ai, cp, a)
		}
	}
	wg.Wait()

	var all []Finding
	for pi, cp := range pkgs {
		allows, directives, allowFindings := collectAllows(cp, known)
		all = append(all, allowFindings...)
		for ai := range analyzers {
			for _, f := range grid[pi][ai] {
				if d := allows[allowKey{file: f.Pos.Filename, line: f.Pos.Line, rule: f.Rule}]; d != nil {
					d.used = true
					continue
				}
				all = append(all, f)
			}
		}
		for _, d := range directives {
			if !d.used && active[d.rule] {
				all = append(all, Finding{
					Pos:  cp.Fset.Position(d.pos),
					Rule: "lintallow",
					Msg:  fmt.Sprintf("lint:allow %s suppresses nothing here (stale waiver): fix the line it used to excuse, or delete it", d.rule),
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	timings := make([]RuleTiming, len(analyzers))
	for ai, a := range analyzers {
		timings[ai] = RuleTiming{Rule: a.Name, Elapsed: time.Duration(elapsed[ai])}
	}
	if module != nil {
		stats.Module = module.Stats()
	}
	return all, timings, stats
}

// allowKey identifies one suppressed (file, line, rule) triple.
type allowKey struct {
	file string
	line int
	rule string
}

// allowDirective is one well-formed //lint:allow comment; used records
// whether it suppressed at least one finding this run (stale-waiver
// detection).
type allowDirective struct {
	pos  token.Pos
	rule string
	used bool
}

// collectAllows scans a package's comments for //lint:allow directives.
// Each well-formed directive suppresses its rule on the comment's line
// and the line below (so it can trail the offending expression or sit
// on its own line above it); both keys share one directive so
// consumption is tracked per comment. Malformed directives are
// findings.
func collectAllows(cp *CheckedPackage, known map[string]bool) (map[allowKey]*allowDirective, []*allowDirective, []Finding) {
	allows := map[allowKey]*allowDirective{}
	var directives []*allowDirective
	var findings []Finding
	report := func(pos token.Pos, msg string) {
		findings = append(findings, Finding{Pos: cp.Fset.Position(pos), Rule: "lintallow", Msg: msg})
	}
	for _, file := range cp.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "lint:allow needs a rule and a reason: //lint:allow <rule> <reason>")
					continue
				}
				rule := fields[0]
				if !known[rule] {
					report(c.Pos(), fmt.Sprintf("lint:allow names unknown rule %q", rule))
					continue
				}
				if len(fields) == 1 {
					report(c.Pos(), fmt.Sprintf("lint:allow %s needs a reason: //lint:allow %s <why this is safe>", rule, rule))
					continue
				}
				pos := cp.Fset.Position(c.Pos())
				d := &allowDirective{pos: c.Pos(), rule: rule}
				directives = append(directives, d)
				allows[allowKey{file: pos.Filename, line: pos.Line, rule: rule}] = d
				allows[allowKey{file: pos.Filename, line: pos.Line + 1, rule: rule}] = d
			}
		}
	}
	return allows, directives, findings
}

// pathWithin reports whether an import path falls inside the package
// tree named by a module-relative prefix such as "internal/des":
// true for the package itself and any subpackage, with matches aligned
// on path-segment boundaries.
func pathWithin(path, prefix string) bool {
	i := strings.Index(path, prefix)
	if i < 0 {
		return false
	}
	if i > 0 && path[i-1] != '/' {
		return false
	}
	rest := path[i+len(prefix):]
	return rest == "" || rest[0] == '/'
}

// pkgSelector resolves X in X.Sel to an imported package, returning its
// import path when X names a package.
func pkgSelector(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// isFloat reports whether a type's underlying kind is float32/float64
// (including named types such as units.Seconds and untyped float
// constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// enclosingFuncName names the innermost function declaration containing
// pos, as "Name" or "Recv.Name" for methods; "" at package scope.
func enclosingFuncName(files []*ast.File, pos token.Pos) string {
	for _, file := range files {
		if pos < file.Pos() || pos > file.End() {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
			}
			return fd.Name.Name
		}
	}
	return ""
}

func recvTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return ""
}
