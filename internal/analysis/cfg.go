// Control-flow graphs for the flow-sensitive rules (ctxflow,
// atomicpub, lockdiscipline). The six original analyzers are purely
// syntactic/type-level; the concurrency invariants PR 7 made
// load-bearing — every scan loop polls its context, published engine
// maps are frozen, every Lock reaches an Unlock — are properties of
// *paths*, not of single expressions, so they need a CFG and a
// dataflow solver (flow.go).
//
// The graph is intra-procedural and statement-granular: every function
// declaration and function literal gets its own graph; compound
// statements are split so a basic block holds only simple statements
// (assignments, calls, sends, defers, ...) plus the control expression
// that ends it. Edges cover if/else, for (with and without condition),
// range, switch/type-switch (incl. fallthrough), select, labeled
// break/continue/goto, and return. Two distinguished exits:
//
//   - Exit — normal returns and falling off the end;
//   - Panic — explicit panic(...) calls. Implicit panics (a callee
//     blowing up mid-block) are NOT materialized as edges — the graph
//     would drown in them; rules that care (lockdiscipline's
//     held-at-panic check) instead inspect may-panic statements during
//     their transfer function, which sees the same in-state the
//     implicit edge would.
//
// Function literals are not inlined: a FuncLit appearing inside a
// statement is an opaque value here and a separate graph when a rule
// asks for it. Defer statements stay in their block in source order;
// the builder does not model the deferred call's execution point
// (function exit) — that, too, is rule policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A CFGBlock is one basic block: straight-line statements ending in at
// most one control transfer.
type CFGBlock struct {
	Index int
	// Stmts holds the block's simple statements and, last when present,
	// the control expression (if/for/switch condition, range or select
	// subject) that decides the outgoing edge.
	Stmts []ast.Node
	Succs []*CFGBlock
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *CFGBlock
	// Exit is the single normal-return block (empty; no statements).
	Exit *CFGBlock
	// Panic is the single explicit-panic exit block; nil when the
	// function contains no panic(...) call.
	Panic  *CFGBlock
	Blocks []*CFGBlock
}

// cfgBuilder carries the construction state. break/continue resolve
// against the innermost enclosing loop/switch/select (or a label), and
// forward gotos patch in a second pass.
type cfgBuilder struct {
	g       *CFG
	current *CFGBlock

	// breakTargets / continueTargets are stacks of (label, target).
	breakTargets    []branchTarget
	continueTargets []branchTarget
	labels          map[string]*CFGBlock // label -> block the labeled stmt starts
	gotoPatch       map[string][]*CFGBlock
}

type branchTarget struct {
	label string // "" for the innermost unlabeled target
	block *CFGBlock
}

// BuildCFG constructs the graph for one function body. body may be the
// Body of a FuncDecl or a FuncLit; a nil body (declaration without
// definition) yields a trivial entry→exit graph.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:         &CFG{},
		labels:    map[string]*CFGBlock{},
		gotoPatch: map[string][]*CFGBlock{},
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.current = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.current, b.g.Exit)
	// Unresolved gotos (labels on dead paths) fall through to Exit so
	// the graph stays well formed.
	for _, srcs := range b.gotoPatch {
		for _, src := range srcs {
			b.edge(src, b.g.Exit)
		}
	}
	// Exit blocks always sort last in a dump; renumber so the layout is
	// stable regardless of construction order.
	return b.g
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock seals the current block with an edge into next and makes
// next current.
func (b *cfgBuilder) startBlock(next *CFGBlock) {
	b.edge(b.current, next)
	b.current = next
}

// terminate ends the current path (return, branch, panic): subsequent
// statements land in a fresh unreachable block.
func (b *cfgBuilder) terminate() {
	b.current = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// panicExit returns (lazily creating) the explicit-panic exit block.
func (b *cfgBuilder) panicExit() *CFGBlock {
	if b.g.Panic == nil {
		b.g.Panic = b.newBlock()
	}
	return b.g.Panic
}

// isPanicCall recognizes a statement that is exactly panic(...).
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// stmt translates one statement. label names the statement when it was
// the body of a LabeledStmt (so loops register labeled targets).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The labeled statement starts its own block so gotos have a
		// target.
		target := b.newBlock()
		b.startBlock(target)
		if label != "" {
			b.labels[label] = target // nested labels: outer name maps here too
		}
		b.labels[s.Label.Name] = target
		for _, src := range b.gotoPatch[s.Label.Name] {
			b.edge(src, target)
		}
		delete(b.gotoPatch, s.Label.Name)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.current.Stmts = append(b.current.Stmts, s.Init)
		}
		b.current.Stmts = append(b.current.Stmts, s.Cond)
		condBlock := b.current
		after := b.newBlock()

		thenBlock := b.newBlock()
		b.edge(condBlock, thenBlock)
		b.current = thenBlock
		b.stmtList(s.Body.List)
		b.edge(b.current, after)

		if s.Else != nil {
			elseBlock := b.newBlock()
			b.edge(condBlock, elseBlock)
			b.current = elseBlock
			b.stmt(s.Else, "")
			b.edge(b.current, after)
		} else {
			b.edge(condBlock, after)
		}
		b.current = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.current.Stmts = append(b.current.Stmts, s.Init)
		}
		header := b.newBlock()
		b.startBlock(header)
		if s.Cond != nil {
			header.Stmts = append(header.Stmts, s.Cond)
		}
		after := b.newBlock()
		post := header // continue target when no post statement
		if s.Post != nil {
			post = b.newBlock()
			post.Stmts = append(post.Stmts, s.Post)
			b.edge(post, header)
		}
		if s.Cond != nil {
			b.edge(header, after) // condition false
		}
		b.pushLoop(label, after, post)
		body := b.newBlock()
		b.edge(header, body)
		b.current = body
		b.stmtList(s.Body.List)
		b.edge(b.current, post)
		b.popLoop()
		b.current = after

	case *ast.RangeStmt:
		header := b.newBlock()
		b.startBlock(header)
		header.Stmts = append(header.Stmts, s) // the range clause itself
		after := b.newBlock()
		b.edge(header, after) // range exhausted
		b.pushLoop(label, after, header)
		body := b.newBlock()
		b.edge(header, body)
		b.current = body
		b.stmtList(s.Body.List)
		b.edge(b.current, header)
		b.popLoop()
		b.current = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s, label)

	case *ast.SelectStmt:
		after := b.newBlock()
		b.pushBreak(label, after)
		header := b.current
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no successors out of header.
			b.terminate()
			b.popBreak()
			b.current = after
			return
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(header, cb)
			if clause.Comm != nil {
				cb.Stmts = append(cb.Stmts, clause.Comm)
			}
			b.current = cb
			b.stmtList(clause.Body)
			b.edge(b.current, after)
		}
		b.popBreak()
		b.current = after

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breakTargets, s.Label); t != nil {
				b.edge(b.current, t)
			}
			b.terminate()
		case token.CONTINUE:
			if t := b.findTarget(b.continueTargets, s.Label); t != nil {
				b.edge(b.current, t)
			}
			b.terminate()
		case token.GOTO:
			name := s.Label.Name
			if t, ok := b.labels[name]; ok {
				b.edge(b.current, t)
			} else {
				b.gotoPatch[name] = append(b.gotoPatch[name], b.current)
			}
			b.terminate()
		case token.FALLTHROUGH:
			// Handled structurally in switchStmt (the clause body flows
			// into the next clause); nothing to do here.
		}

	case *ast.ReturnStmt:
		b.current.Stmts = append(b.current.Stmts, s)
		b.edge(b.current, b.g.Exit)
		b.terminate()

	case *ast.ExprStmt:
		b.current.Stmts = append(b.current.Stmts, s)
		if isPanicCall(s) {
			b.edge(b.current, b.panicExit())
			b.terminate()
		}

	default:
		// Assignments, declarations, sends, defers, go statements,
		// inc/dec, empty statements: straight-line.
		b.current.Stmts = append(b.current.Stmts, s)
	}
}

// switchStmt lowers switch and type-switch: each case clause is a block
// fed from the header; fallthrough chains a clause body into the next
// clause's body.
func (b *cfgBuilder) switchStmt(s ast.Stmt, label string) {
	var init, tag ast.Node
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			init = s.Init
		}
		if s.Tag != nil {
			tag = s.Tag
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			init = s.Init
		}
		tag = s.Assign
		clauses = s.Body.List
	}
	if init != nil {
		b.current.Stmts = append(b.current.Stmts, init)
	}
	if tag != nil {
		b.current.Stmts = append(b.current.Stmts, tag)
	}
	header := b.current
	after := b.newBlock()
	b.pushBreak(label, after)

	// First pass: allocate a body block per clause so fallthrough can
	// reference the next one.
	bodies := make([]*CFGBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodies[i] = b.newBlock()
		b.edge(header, bodies[i])
		if clause, ok := cc.(*ast.CaseClause); ok && clause.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(header, after) // no case matched
	}
	for i, cc := range clauses {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.current = bodies[i]
		fallsThrough := false
		for _, st := range clause.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(clause.Body)
		if fallsThrough && i+1 < len(bodies) {
			b.edge(b.current, bodies[i+1])
			b.terminate()
		} else {
			b.edge(b.current, after)
		}
	}
	b.popBreak()
	b.current = after
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *CFGBlock) {
	b.breakTargets = append(b.breakTargets, branchTarget{"", brk})
	b.continueTargets = append(b.continueTargets, branchTarget{"", cont})
	if label != "" {
		b.breakTargets = append(b.breakTargets, branchTarget{label, brk})
		b.continueTargets = append(b.continueTargets, branchTarget{label, cont})
	}
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = popTargets(b.breakTargets)
	b.continueTargets = popTargets(b.continueTargets)
}

func (b *cfgBuilder) pushBreak(label string, brk *CFGBlock) {
	b.breakTargets = append(b.breakTargets, branchTarget{"", brk})
	if label != "" {
		b.breakTargets = append(b.breakTargets, branchTarget{label, brk})
	}
}

func (b *cfgBuilder) popBreak() {
	b.breakTargets = popTargets(b.breakTargets)
}

// popTargets removes the innermost unlabeled target and its optional
// labeled twin (pushed together).
func popTargets(ts []branchTarget) []branchTarget {
	if n := len(ts); n > 0 && ts[n-1].label != "" {
		ts = ts[:n-1]
	}
	if n := len(ts); n > 0 {
		ts = ts[:n-1]
	}
	return ts
}

// findTarget resolves a break/continue: nil label means innermost
// unlabeled target.
func (b *cfgBuilder) findTarget(ts []branchTarget, label *ast.Ident) *CFGBlock {
	if label == nil {
		for i := len(ts) - 1; i >= 0; i-- {
			if ts[i].label == "" {
				return ts[i].block
			}
		}
		return nil
	}
	for i := len(ts) - 1; i >= 0; i-- {
		if ts[i].label == label.Name {
			return ts[i].block
		}
	}
	return nil
}

// Reachable reports the blocks reachable from Entry, in a stable
// (index) order. Construction leaves unreachable placeholder blocks
// behind terminated paths; dataflow and dumps skip them.
func (g *CFG) Reachable() []*CFGBlock {
	seen := make([]bool, len(g.Blocks))
	var walk func(*CFGBlock)
	walk = func(b *CFGBlock) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	var out []*CFGBlock
	for _, b := range g.Blocks {
		if seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// Dump renders the reachable graph as one line per block —
// "bN[tags]: stmt, stmt -> bM, bK" — with blocks renumbered densely in
// reachable order. fset may be nil (statements then print as node type
// names only). The format is pinned by a golden test so rule bugs are
// separable from graph bugs.
func (g *CFG) Dump(fset *token.FileSet) string {
	blocks := g.Reachable()
	num := map[*CFGBlock]int{}
	for i, b := range blocks {
		num[b] = i
	}
	var sb strings.Builder
	for i, b := range blocks {
		tag := ""
		switch b {
		case g.Entry:
			tag = " entry"
		case g.Exit:
			tag = " exit"
		case g.Panic:
			tag = " panic"
		}
		fmt.Fprintf(&sb, "b%d%s:", i, tag)
		for j, s := range b.Stmts {
			if j > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " %s", nodeLabel(s))
		}
		var succs []int
		for _, s := range b.Succs {
			if n, ok := num[s]; ok {
				succs = append(succs, n)
			}
		}
		sort.Ints(succs)
		if len(succs) > 0 {
			sb.WriteString(" ->")
			for _, n := range succs {
				fmt.Fprintf(&sb, " b%d", n)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeLabel names a statement or control expression for dumps.
func nodeLabel(n ast.Node) string {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.DeclStmt:
		return "decl"
	case *ast.ExprStmt:
		if isPanicCall(n) {
			return "panic"
		}
		return "call"
	case *ast.DeferStmt:
		return "defer"
	case *ast.GoStmt:
		return "go"
	case *ast.ReturnStmt:
		return "return"
	case *ast.SendStmt:
		return "send"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.RangeStmt:
		return "range"
	case *ast.BinaryExpr, *ast.UnaryExpr, *ast.Ident, *ast.CallExpr, *ast.ParenExpr, *ast.SelectorExpr, *ast.IndexExpr, *ast.TypeAssertExpr, *ast.BasicLit:
		return "cond"
	case ast.Stmt:
		return strings.TrimPrefix(fmt.Sprintf("%T", n), "*ast.")
	}
	return strings.TrimPrefix(fmt.Sprintf("%T", n), "*ast.")
}
