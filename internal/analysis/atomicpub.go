// The atomicpub rule: a value stored through atomic.Pointer[T] or
// atomic.Value is frozen at the store site. Frontdoor.SwapEngine's
// zero-downtime swap and core.Engine's lock-free index handoff both
// rely on copy-on-write: readers Load a snapshot and may read it
// forever without synchronization, which is only sound if nobody
// writes to the published value again. The data race that breaks this
// is invisible to the race detector unless a test happens to overlap
// the reader and the writer; this rule makes it a lint finding
// instead.
//
// Mechanically: a forward taint analysis over each function's CFG
// (cfg.go, flow.go). The lattice maps local variables to taint flags —
//
//   - snapshot:  the variable aliases a value obtained from Load();
//   - published: the variable was (or aliases what was) passed to
//     Store(), Swap(), or CompareAndSwap().
//
// Taint propagates through assignment, dereference, indexing, field
// selection, range, and append — but only when the resulting type
// shares storage (map/slice/pointer/chan); copying a struct or scalar
// detaches it. Rebinding an identifier (x = make(...)) is a strong
// update that clears its taint: that is precisely the clone idiom the
// rule wants to certify. Findings are direct writes through a tainted
// base: m[k] = v, *p = v, p.f = v, delete(m, k), m[k]++.
//
// Method calls on tainted receivers are deliberately not findings —
// intra-procedurally we cannot see whether the method writes, and the
// legitimate construction pattern (build, Store, then call
// configuration methods before the value is shared) would drown the
// rule in false positives. The escape is documented in DESIGN.md §12.
package analysis

import (
	"go/ast"
	"go/types"
)

// Atomicpub is the eighth analyzer; see the package comment above.
var Atomicpub = &Analyzer{
	Name: "atomicpub",
	Doc:  "Values published via atomic.Pointer/atomic.Value are frozen: no writes through stored pointers or Loaded snapshots without cloning",
	Run:  runAtomicpub,
}

// atomicpubScope: every package that publishes or consumes values
// through sync/atomic cells.
var atomicpubScope = []string{
	"internal/api",
	"internal/serving",
	"internal/core",
	"internal/snapshot",
	"internal/telemetry",
	"internal/workqueue",
	"internal/localserver",
}

// Taint flags.
const (
	taintSnapshot  = 1 << iota // aliases a Load()ed value
	taintPublished             // aliases a Store()d value
)

// taintState maps a function's variables to their taint flags; absent
// means untainted. The lattice join is pointwise flag union.
type taintState map[*types.Var]int

type taintLattice struct{}

func (taintLattice) Bottom() taintState { return nil }

func (taintLattice) Join(a, b taintState) taintState {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(taintState, len(a)+len(b))
	for v, t := range a {
		out[v] = t
	}
	for v, t := range b {
		out[v] |= t
	}
	return out
}

func (taintLattice) Equal(a, b taintState) bool {
	if len(a) != len(b) {
		return false
	}
	for v, t := range a {
		if b[v] != t {
			return false
		}
	}
	return true
}

func runAtomicpub(pass *Pass) {
	in := false
	for _, prefix := range atomicpubScope {
		if pathWithin(pass.Path, prefix) {
			in = true
			break
		}
	}
	if !in {
		return
	}
	c := &taintChecker{pass: pass, reported: map[string]bool{}}
	forEachFuncBody(pass, func(body *ast.BlockStmt) {
		c.checkFunc(body)
	})
}

type taintChecker struct {
	pass     *Pass
	reported map[string]bool
}

func (c *taintChecker) reportOnce(pos ast.Node, format string, args ...interface{}) {
	msg := formatMsg(format, args...)
	key := c.pass.Fset.Position(pos.Pos()).String() + "\x00" + msg
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos.Pos(), "%s", msg)
}

func (c *taintChecker) checkFunc(body *ast.BlockStmt) {
	g := BuildCFG(body)
	res := Forward[taintState](g, taintLattice{}, taintState{}, func(b *CFGBlock, in taintState) taintState {
		return c.apply(b, in, false)
	})
	for _, b := range g.Reachable() {
		c.apply(b, res.In[b], true)
	}
}

// apply replays a block's statements over a taint state; with report
// set it emits findings for writes through tainted bases.
func (c *taintChecker) apply(b *CFGBlock, in taintState, report bool) taintState {
	st := make(taintState, len(in))
	for v, t := range in {
		st[v] = t
	}
	for _, n := range b.Stmts {
		c.applyNode(n, st, report)
	}
	return st
}

func (c *taintChecker) applyNode(n ast.Node, st taintState, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.applyCalls(n, st, report) // Store()/delete() on the RHS run first
		c.applyAssign(n, st, report)
		return
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := c.pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					t := 0
					if i < len(vs.Values) {
						t = c.taintOf(vs.Values[i], st)
					}
					st[v] = t
				}
			}
		}
		c.applyCalls(n, st, report)
		return
	case *ast.IncDecStmt:
		c.checkWrite(n.X, st, report, "update")
	case *ast.RangeStmt:
		// Only the range clause lives in this block; the body has its
		// own blocks. Taint the loop variables from the subject.
		t := c.taintOf(n.X, st)
		if n.Tok.String() == ":=" && t != 0 {
			for _, e := range []ast.Expr{n.Key, n.Value} {
				id, ok := e.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := c.pass.Info.Defs[id].(*types.Var)
				if ok && isRefType(v.Type()) {
					st[v] |= t
				}
			}
		}
		return
	}
	c.applyCalls(n, st, report)
}

// applyAssign handles every LHS of an assignment: identifier
// assignments are strong updates (rebinding clears taint — the clone
// idiom); writes through tainted index/star/selector bases are
// findings.
func (c *taintChecker) applyAssign(a *ast.AssignStmt, st taintState, report bool) {
	// Taints of the RHS, evaluated against the pre-assignment state.
	taints := make([]int, len(a.Lhs))
	if len(a.Rhs) == len(a.Lhs) {
		for i, r := range a.Rhs {
			taints[i] = c.taintOf(r, st)
		}
	} else if len(a.Rhs) == 1 {
		// x, ok := m[k] / v, err := f() — the first result carries the
		// subject's taint for map reads and type asserts; calls yield
		// fresh values.
		t := c.taintOf(a.Rhs[0], st)
		taints[0] = t
	}
	for i, l := range a.Lhs {
		switch l := l.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			v, ok := c.pass.Info.Defs[l].(*types.Var)
			if !ok {
				v, ok = c.pass.Info.Uses[l].(*types.Var)
			}
			if !ok {
				continue
			}
			if !isRefType(v.Type()) {
				delete(st, v)
				continue
			}
			if a.Tok.String() == "=" || a.Tok.String() == ":=" {
				if taints[i] == 0 {
					delete(st, v)
				} else {
					st[v] = taints[i]
				}
			} else if taints[i] != 0 {
				st[v] |= taints[i] // s += ... on a ref type keeps both aliases
			}
		default:
			c.checkWrite(l, st, report, "write")
		}
	}
}

// checkWrite reports a write through a tainted base: m[k]=v, *p=v,
// p.f=v, m[k]++.
func (c *taintChecker) checkWrite(lhs ast.Expr, st taintState, report bool, verb string) {
	if !report {
		return
	}
	var base ast.Expr
	var shape string
	switch l := lhs.(type) {
	case *ast.IndexExpr:
		base, shape = l.X, "an element"
	case *ast.StarExpr:
		base, shape = l.X, "the pointee"
	case *ast.SelectorExpr:
		base, shape = l.X, "a field"
	case *ast.ParenExpr:
		c.checkWrite(l.X, st, report, verb)
		return
	default:
		return
	}
	t := c.taintOf(base, st)
	if t == 0 {
		return
	}
	c.reportOnce(lhs, "%s of %s through %s, which %s: clone before mutating (copy-on-write)", verb, shape, exprKey(base), taintSource(t))
}

func taintSource(t int) string {
	switch {
	case t&taintPublished != 0 && t&taintSnapshot != 0:
		return "was published via atomic Store and aliases a Loaded snapshot"
	case t&taintPublished != 0:
		return "was published via atomic Store and is frozen"
	default:
		return "aliases an atomically Loaded snapshot shared with concurrent readers"
	}
}

// applyCalls finds atomic Store/Swap/CompareAndSwap publications and
// delete() through tainted maps anywhere in the statement.
func (c *taintChecker) applyCalls(n ast.Node, st taintState, report bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, _, ok := atomicMethod(c.pass.Info, call); ok {
			argIdx := -1
			switch name {
			case "Store", "Swap":
				argIdx = 0
			case "CompareAndSwap":
				argIdx = 1 // the new value
			}
			if argIdx >= 0 && argIdx < len(call.Args) {
				c.markPublished(call.Args[argIdx], st)
			}
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := c.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(call.Args) == 2 {
				if report {
					if t := c.taintOf(call.Args[0], st); t != 0 {
						c.reportOnce(call, "delete from %s, which %s: clone before mutating (copy-on-write)", exprKey(call.Args[0]), taintSource(t))
					}
				}
			}
		}
		return true
	})
}

// markPublished taints the variable behind a Store argument: Store(x)
// and Store(&x) both freeze x.
func (c *taintChecker) markPublished(arg ast.Expr, st taintState) {
	switch a := arg.(type) {
	case *ast.UnaryExpr:
		c.markPublished(a.X, st)
	case *ast.ParenExpr:
		c.markPublished(a.X, st)
	case *ast.Ident:
		if v, ok := c.pass.Info.Uses[a].(*types.Var); ok {
			st[v] |= taintPublished
		}
	}
}

// taintOf computes the taint of an expression under the current state.
func (c *taintChecker) taintOf(e ast.Expr, st taintState) int {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := c.pass.Info.Uses[e].(*types.Var); ok {
			return st[v]
		}
	case *ast.ParenExpr:
		return c.taintOf(e.X, st)
	case *ast.UnaryExpr:
		return c.taintOf(e.X, st) // &x aliases x
	case *ast.StarExpr:
		if isRefType(c.pass.Info.TypeOf(e)) {
			return c.taintOf(e.X, st)
		}
	case *ast.IndexExpr:
		if isRefType(c.pass.Info.TypeOf(e)) {
			return c.taintOf(e.X, st)
		}
	case *ast.SelectorExpr:
		if sel, ok := c.pass.Info.Selections[e]; ok && sel.Kind() != types.FieldVal {
			return 0 // method value, not a field
		}
		if isRefType(c.pass.Info.TypeOf(e)) {
			return c.taintOf(e.X, st)
		}
	case *ast.TypeAssertExpr:
		if e.Type != nil && isRefType(c.pass.Info.TypeOf(e)) {
			return c.taintOf(e.X, st)
		}
	case *ast.SliceExpr:
		return c.taintOf(e.X, st) // a slice reslices the same array
	case *ast.CallExpr:
		if name, _, ok := atomicMethod(c.pass.Info, e); ok && name == "Load" {
			// Unconditional: even a Load returning interface{} (atomic.Value)
			// aliases the stored value; scalar taints die at the next
			// assignment anyway (non-ref strong update).
			return taintSnapshot
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := c.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				// append may return the same backing array.
				return c.taintOf(e.Args[0], st)
			}
		}
	}
	return 0
}
