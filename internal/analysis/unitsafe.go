package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// unitsafePrefixes names the model-layer package trees whose arithmetic
// must be dimensionally sound: everything that computes the paper's
// Eq. 2-6 quantities (instructions, rates, durations, money) or feeds
// them. internal/units itself is the trusted kernel — its accessor and
// constructor bodies are where raw floats legitimately meet typed
// quantities — so it is deliberately not listed.
var unitsafePrefixes = []string{
	"internal/core",
	"internal/model",
	"internal/cloudsim",
	"internal/ec2",
	"internal/pareto",
	"internal/faults",
	"internal/spot",
	"internal/autoscale",
	"internal/demand",
	"internal/schedule",
	"internal/sweep",
}

// Unitsafe is dimensional analysis for the units.* quantity types. Each
// named type carries an exponent vector over the base quantities
// (instructions, seconds, hours, dollars); products and quotients are
// checked by vector arithmetic, which derives the legal result table:
//
//	Instructions / Rate         → Seconds        (Eq. 2)
//	Instructions / Seconds      → Rate
//	Rate × Seconds              → Instructions   (Eq. 3 over time)
//	USDPerHour × Hours          → USD            (Eq. 5)
//	USDPerSecond × Seconds      → USD
//	USD / Hours                 → USDPerHour
//	USD / Seconds               → USDPerSecond
//	USD / USDPerHour            → Hours
//	USD / USDPerSecond          → Seconds
//	X × dimensionless           → X
//	X / dimensionless           → X
//	X / X                       → dimensionless  (the ratio trick)
//
// It flags (a) addition/subtraction/comparison of unlike dimensions,
// (b) multiplication/division whose result dimension no units type
// models, (c) numeric conversions (float64(x), int(x)) that strip a
// unit type — the accessor methods (Hours, GIPSValue, Billions, ...)
// are the approved exits, and dividing like by like first makes the
// operand dimensionless — and (d) raw float64 parameters or named
// results in exported model-layer functions whose names say they hold
// a dimensioned quantity.
//
// Untyped constants and raw float64 expressions are polymorphic
// scalars: they adopt whatever dimension the surrounding arithmetic
// needs, so constructor coercions like rate * units.Rate(factor) read
// as Rate × dimensionless → Rate. Converting one unit type directly
// into another (units.USD(hours)) relabels the quantity without
// converting its value and is always a finding.
var Unitsafe = &Analyzer{
	Name: "unitsafe",
	Doc: "dimensional analysis over the units.* types: forbid unlike-dimension " +
		"sums, off-table products, unit-stripping conversions, and raw float64 " +
		"quantities in exported model-layer signatures",
	Run: runUnitsafe,
}

// dvec is a dimension: exponents over the base quantities, in the
// order instructions, seconds, hours, dollars.
type dvec [4]int8

// unitsDims assigns each units.* named type its dimension vector.
var unitsDims = map[string]dvec{
	"Instructions": {1, 0, 0, 0},
	"Rate":         {1, -1, 0, 0},
	"Seconds":      {0, 1, 0, 0},
	"Hours":        {0, 0, 1, 0},
	"USD":          {0, 0, 0, 1},
	"USDPerHour":   {0, 0, -1, 1},
	"USDPerSecond": {0, -1, 0, 1},
}

// dimNames is the reverse lookup, for naming results of the vector
// arithmetic.
var dimNames = func() map[dvec]string {
	m := make(map[dvec]string, len(unitsDims))
	for name, v := range unitsDims {
		m[v] = name
	}
	return m
}()

// dimName renders a dimension vector for findings: the units type name
// when one models it, else an explicit product of base units.
func dimName(v dvec) string {
	if v == (dvec{}) {
		return "dimensionless"
	}
	if n, ok := dimNames[v]; ok {
		return "units." + n
	}
	bases := [4]string{"instr", "s", "h", "$"}
	var parts []string
	for i, e := range v {
		switch e {
		case 0:
		case 1:
			parts = append(parts, bases[i])
		default:
			parts = append(parts, fmt.Sprintf("%s^%d", bases[i], e))
		}
	}
	return strings.Join(parts, "·")
}

// udim is the dimension of one expression. poly marks a dimensionless
// scalar free to adopt any dimension: untyped constants, raw float64
// values, and units constructors applied to raw values (which coerce
// Go's type system, not the quantity's dimension).
type udim struct {
	v    dvec
	poly bool
}

type unitsafeChecker struct {
	pass *Pass
	memo map[ast.Expr]udim
}

func runUnitsafe(pass *Pass) {
	applies := false
	for _, p := range unitsafePrefixes {
		if pathWithin(pass.Path, p) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	c := &unitsafeChecker{pass: pass, memo: map[ast.Expr]udim{}}
	for _, file := range pass.Files {
		c.checkSignatures(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				c.dimOf(n)
			case *ast.CallExpr:
				if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
					c.dimOf(n)
				}
			case *ast.AssignStmt:
				c.checkOpAssign(n)
			}
			return true
		})
	}
}

// dimOf evaluates an expression's dimension, memoized so each
// subexpression is checked (and reported) exactly once even though the
// walk revisits nested nodes.
func (c *unitsafeChecker) dimOf(e ast.Expr) udim {
	if d, ok := c.memo[e]; ok {
		return d
	}
	d := c.eval(e)
	c.memo[e] = d
	return d
}

func (c *unitsafeChecker) eval(e ast.Expr) udim {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.dimOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return c.dimOf(e.X)
		}
		return c.staticDim(e)
	case *ast.BinaryExpr:
		return c.evalBinary(e)
	case *ast.CallExpr:
		if tv, ok := c.pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.evalConversion(e, tv.Type)
		}
		return c.staticDim(e)
	default:
		return c.staticDim(e)
	}
}

// staticDim reads an expression's dimension off its Go type: units
// named types carry their vector, everything else — constants, raw
// numerics, non-numeric types — is a polymorphic scalar.
func (c *unitsafeChecker) staticDim(e ast.Expr) udim {
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Value != nil {
		return udim{poly: true}
	}
	if v, ok := unitsTypeDim(tv.Type); ok {
		return udim{v: v}
	}
	return udim{poly: true}
}

func (c *unitsafeChecker) evalBinary(e *ast.BinaryExpr) udim {
	x := c.dimOf(e.X)
	y := c.dimOf(e.Y)
	switch e.Op {
	case token.ADD, token.SUB:
		return c.requireSame(e.OpPos, e.Op.String(), x, y)
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		c.requireSame(e.OpPos, e.Op.String(), x, y)
		return udim{poly: true} // the comparison's own result is a bool
	case token.MUL:
		return c.combine(e.OpPos, x, y, false)
	case token.QUO:
		return c.combine(e.OpPos, x, y, true)
	}
	return udim{poly: true}
}

// requireSame enforces check (a): both sides of a sum or comparison
// must share a dimension, with polymorphic scalars adopting the other
// side's.
func (c *unitsafeChecker) requireSame(pos token.Pos, op string, x, y udim) udim {
	switch {
	case x.poly && y.poly:
		return udim{poly: true}
	case x.poly:
		return y
	case y.poly:
		return x
	case x.v == y.v:
		return x
	}
	c.pass.Reportf(pos, "%s mixes %s and %s; convert one side first", op, dimName(x.v), dimName(y.v))
	return x
}

// combine enforces check (b): products and quotients of dimensioned
// operands must land on a modeled dimension. The erroneous result
// keeps its computed vector so downstream sums surface too.
func (c *unitsafeChecker) combine(pos token.Pos, x, y udim, div bool) udim {
	switch {
	case x.poly && y.poly:
		return udim{poly: true}
	case y.poly:
		return x // X * k, X / k
	case x.poly && !div:
		return y // k * X
	case x.poly:
		return udim{poly: true} // k / X: inverse dimensions are out of scope
	}
	var v dvec
	for i := range v {
		if div {
			v[i] = x.v[i] - y.v[i]
		} else {
			v[i] = x.v[i] + y.v[i]
		}
	}
	if v == (dvec{}) {
		return udim{poly: true} // X / X: the ratio trick
	}
	if _, ok := dimNames[v]; ok {
		return udim{v: v}
	}
	op := "*"
	if div {
		op = "/"
	}
	c.pass.Reportf(pos, "%s %s %s yields %s, which no units type models",
		dimName(x.v), op, dimName(y.v), dimName(v))
	return udim{v: v}
}

// evalConversion enforces check (c) and the relabel rule.
func (c *unitsafeChecker) evalConversion(e *ast.CallExpr, target types.Type) udim {
	ad := c.dimOf(e.Args[0])
	if tv, ok := unitsTypeDim(target); ok {
		switch {
		case ad.poly:
			// Constructor over a raw value: coerces Go's type system,
			// dimensionally still a free scalar.
			return udim{poly: true}
		case ad.v == tv:
			return udim{v: tv}
		default:
			c.pass.Reportf(e.Pos(), "conversion relabels %s as %s without converting the value",
				dimName(ad.v), dimName(tv))
			return udim{v: tv}
		}
	}
	if b, ok := target.(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
		if !ad.poly && ad.v != (dvec{}) {
			c.pass.Reportf(e.Pos(), "%s(...) strips the %s dimension; use an accessor (Hours, GIPSValue, Billions, ...) or divide like by like first",
				b.Name(), dimName(ad.v))
		}
		return udim{poly: true}
	}
	return c.staticDim(e)
}

// checkOpAssign extends checks (a) and (b) to the compound assignment
// operators, which go/ast models as statements rather than binary
// expressions.
func (c *unitsafeChecker) checkOpAssign(a *ast.AssignStmt) {
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return
	}
	x := c.dimOf(a.Lhs[0])
	y := c.dimOf(a.Rhs[0])
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if !x.poly && !y.poly && x.v != y.v {
			c.pass.Reportf(a.TokPos, "%s mixes %s and %s; convert one side first",
				a.Tok, dimName(x.v), dimName(y.v))
		}
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		// The result lands back in the left operand, so the right side
		// must be dimensionless for the dimension to survive.
		if !x.poly && !y.poly && y.v != (dvec{}) {
			c.pass.Reportf(a.TokPos, "%s by %s changes the left side's %s dimension",
				a.Tok, dimName(y.v), dimName(x.v))
		}
	}
}

// checkSignatures enforces check (d): exported functions in the model
// layer must not take or return raw float64 quantities under names
// that say they hold a dimensioned value. Struct fields and unnamed
// results are out of scope.
func (c *unitsafeChecker) checkSignatures(file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !fd.Name.IsExported() {
			continue
		}
		check := func(fl *ast.FieldList, kind string) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				for _, name := range field.Names {
					obj := c.pass.Info.Defs[name]
					if obj == nil || !isRawFloat64(obj.Type()) {
						continue
					}
					if want := unitHintSuggest[unitHinted(name.Name)]; want != "" {
						c.pass.Reportf(name.Pos(), "exported %s: %s %q is a raw float64; %s fits",
							fd.Name.Name, kind, name.Name, want)
					}
				}
			}
		}
		check(fd.Type.Params, "parameter")
		check(fd.Type.Results, "result")
	}
}

// isRawFloat64 matches float64 and []float64 exactly — named float
// types (including the units types) are what the rule wants instead.
func isRawFloat64(t types.Type) bool {
	if s, ok := t.(*types.Slice); ok {
		t = s.Elem()
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// unitsTypeDim resolves a type to its dimension vector when it is one
// of the units.* named types.
func unitsTypeDim(t types.Type) (dvec, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return dvec{}, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || !pathWithin(obj.Pkg().Path(), "internal/units") {
		return dvec{}, false
	}
	v, ok := unitsDims[obj.Name()]
	return v, ok
}

// unitHinted reports the wordlist entry a parameter/result name matches
// (exact or suffix), or "".
func unitHinted(name string) string {
	ln := strings.ToLower(name)
	for _, w := range unitHintWords {
		if ln == w || strings.HasSuffix(ln, w) {
			return w
		}
	}
	return ""
}

// unitHintWords are name fragments that mark a raw float64 as a
// quantity some units type models. Matching is on parameter/result
// names, never function names, so e.g. an InterruptionRate() hazard
// probability is not dragged in.
var unitHintWords = []string{
	"seconds", "secs", "deadline", "budget", "cost", "price", "usd",
	"dollars", "hours", "demand", "capacity", "instr", "instructions",
	"gips", "makespan", "horizon",
}

// unitHintSuggest maps each wordlist entry to the type the finding
// recommends.
var unitHintSuggest = map[string]string{
	"seconds":      "units.Seconds",
	"secs":         "units.Seconds",
	"deadline":     "units.Seconds",
	"makespan":     "units.Seconds",
	"horizon":      "units.Seconds",
	"budget":       "units.USD",
	"cost":         "units.USD",
	"usd":          "units.USD",
	"dollars":      "units.USD",
	"price":        "units.USDPerHour",
	"hours":        "units.Hours",
	"demand":       "units.Instructions",
	"instr":        "units.Instructions",
	"instructions": "units.Instructions",
	"gips":         "units.Rate",
	"capacity":     "units.Rate",
}
