package analysis

import (
	"go/ast"
	"go/constant"
)

// envelopePrefixes scopes the rule to the HTTP serving path.
var envelopePrefixes = []string{"internal/api", "internal/serving"}

// Httpenvelope enforces the API contract that every error response is
// the JSON envelope {"error": "..."}: handlers must not call
// http.Error (plain-text body, wrong Content-Type) or write bare
// non-2xx status codes with WriteHeader. Allowed WriteHeader sites:
// the envelope helper itself (a function named writeJSON), status
// forwarders (methods named WriteHeader on ResponseWriter wrappers),
// and constant 2xx success statuses.
var Httpenvelope = &Analyzer{
	Name: "httpenvelope",
	Doc: "internal/api and internal/serving must answer errors through the " +
		"JSON envelope helpers, never http.Error or bare WriteHeader",
	Run: runHttpenvelope,
}

func runHttpenvelope(pass *Pass) {
	applies := false
	for _, p := range envelopePrefixes {
		if pathWithin(pass.Path, p) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := pkgSelector(pass.Info, sel); ok && pkg == "net/http" && sel.Sel.Name == "Error" {
				pass.Reportf(call.Pos(), "http.Error writes a text/plain body; use the JSON error-envelope helper (writeJSON + errorBody)")
				return true
			}
			if sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
				return true
			}
			if _, isPkg := pkgSelector(pass.Info, sel); isPkg {
				return true // some package-level WriteHeader, not a ResponseWriter
			}
			encl := enclosingFuncName(pass.Files, call.Pos())
			if encl == "writeJSON" || encl == "WriteHeader" || hasSuffixDotWriteHeader(encl) {
				return true
			}
			if v := pass.Info.Types[call.Args[0]].Value; v != nil && v.Kind() == constant.Int {
				if code, ok := constant.Int64Val(v); ok && code >= 200 && code < 300 {
					return true // explicit success status ahead of a body write
				}
			}
			pass.Reportf(call.Pos(), "bare WriteHeader outside the envelope helpers; error statuses must go through writeJSON so the body is the JSON envelope")
			return true
		})
	}
}

func hasSuffixDotWriteHeader(name string) bool {
	const suffix = ".WriteHeader"
	return len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix
}
