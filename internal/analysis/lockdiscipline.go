// The lockdiscipline rule: every mutex acquisition must reach a
// release on all control-flow paths — including the panic paths, which
// only a deferred unlock covers — and no lock may be held across an
// operation that blocks on other goroutines (channel send/receive,
// select, WaitGroup.Wait). The serving layer's liveness depends on
// this: a leaked lock in Frontdoor or the cache wedges every request
// behind it, and a lock held across a channel op inverts the admission
// queue's backpressure into a deadlock.
//
// The rule runs the forward dataflow solver (flow.go) over each
// function's CFG (cfg.go) with a path-set lattice: each path state is
// (held locks → acquisition site, deferred releases), states are
// joined by set union, and a block's transfer function replays its
// statements against every incoming path. Findings:
//
//   - a Lock whose lock is still held (and not deferred-released) on
//     some path into the function exit;
//   - a second Lock of the same lock while already held (self-deadlock);
//   - a channel send/receive/range, select arm, or WaitGroup.Wait
//     while any lock is held;
//   - a may-panic statement (any call that is not a builtin, a
//     conversion, or a sync/sync-atomic method) while a lock is held
//     without a deferred release — the path the CFG cannot draw but a
//     panic takes.
//
// sync.Cond.Wait is exempt from the held-across-wait check: it
// requires the lock by contract (internal/bsp's barrier is the
// idiomatic use). Lock identity is the receiver expression text
// ("f.mu"), which is stable within one function; the analysis is
// intra-procedural, so helpers that lock on behalf of their caller
// (or unlock a caller's lock) are out of scope by design.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockdiscipline is the ninth analyzer; see the package comment above.
var Lockdiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "Locks must be released on every path (incl. panic via defer) and never held across channel ops or WaitGroup.Wait",
	Run:  runLockdiscipline,
}

// lockdisciplineScope: the packages whose locks guard serving-path
// state. Model-only packages (pareto, stats, ...) hold no locks.
var lockdisciplineScope = []string{
	"internal/api",
	"internal/serving",
	"internal/core",
	"internal/snapshot",
	"internal/telemetry",
	"internal/workqueue",
	"internal/spot",
	"internal/bsp",
	"internal/localserver",
}

// lockPath is one path state: which locks are held (mapped to the
// position of the Lock call, where exit findings are reported) and
// which have a deferred release registered.
type lockPath struct {
	held     map[string]token.Pos
	deferred map[string]bool
}

func newLockPath() lockPath {
	return lockPath{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (p lockPath) clone() lockPath {
	q := newLockPath()
	for k, v := range p.held {
		q.held[k] = v
	}
	for k := range p.deferred {
		q.deferred[k] = true
	}
	return q
}

// key canonicalizes the state for set membership: held and deferred
// lock names, sorted. Acquisition positions are not part of identity
// (two paths locking the same lock at different sites carry the same
// obligation).
func (p lockPath) key() string {
	ids := make([]string, 0, len(p.held))
	for id := range p.held {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	defs := make([]string, 0, len(p.deferred))
	for id := range p.deferred {
		defs = append(defs, id)
	}
	sort.Strings(defs)
	return strings.Join(ids, ",") + "|" + strings.Join(defs, ",")
}

// lockState is the lattice element: the set of distinct path states
// reaching a program point, keyed by lockPath.key.
type lockState map[string]lockPath

// maxLockPaths caps path-set growth; past it, all paths collapse into
// one conservative union (held ∪, deferred ∩) so the solver stays
// linear on pathological branch ladders.
const maxLockPaths = 32

type lockLattice struct{}

func (lockLattice) Bottom() lockState { return nil }

func (lockLattice) Join(a, b lockState) lockState {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(lockState, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	if len(out) > maxLockPaths {
		out = collapseLockPaths(out)
	}
	return out
}

func (lockLattice) Equal(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// collapseLockPaths merges every path into one: a lock is "held" if any
// path holds it, "deferred" only if every path defers it. This keeps
// exit and may-panic findings sound (no obligation is dropped) at the
// cost of path precision.
func collapseLockPaths(s lockState) lockState {
	merged := newLockPath()
	first := true
	for _, p := range s {
		for id, pos := range p.held {
			if old, ok := merged.held[id]; !ok || pos < old {
				merged.held[id] = pos
			}
		}
		if first {
			for id := range p.deferred {
				merged.deferred[id] = true
			}
			first = false
			continue
		}
		for id := range merged.deferred {
			if !p.deferred[id] {
				delete(merged.deferred, id)
			}
		}
	}
	return lockState{merged.key(): merged}
}

// lockEvent kinds, in the order they are replayed within a statement.
const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evBlocking // channel send/receive/range, select arm, WaitGroup.Wait
	evMayPanic // a call the runtime might unwind out of
)

type lockEvent struct {
	kind int
	pos  token.Pos
	id   string // lock identity for evLock/evUnlock/evDeferUnlock
	what string // human description for evBlocking/evMayPanic
}

func runLockdiscipline(pass *Pass) {
	in := false
	for _, prefix := range lockdisciplineScope {
		if pathWithin(pass.Path, prefix) {
			in = true
			break
		}
	}
	if !in {
		return
	}
	c := &lockChecker{pass: pass, reported: map[string]bool{}}
	forEachFuncBody(pass, func(body *ast.BlockStmt) {
		c.checkFunc(body)
	})
}

type lockChecker struct {
	pass     *Pass
	reported map[string]bool
}

// reportOnce deduplicates findings that multiple path states (or the
// report pass revisiting a shared block) would repeat verbatim.
func (c *lockChecker) reportOnce(pos token.Pos, format string, args ...interface{}) {
	msg := formatMsg(format, args...)
	key := c.pass.Fset.Position(pos).String() + "\x00" + msg
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

func (c *lockChecker) checkFunc(body *ast.BlockStmt) {
	g := BuildCFG(body)
	boundary := lockState{"": newLockPath()}
	res := Forward[lockState](g, lockLattice{}, boundary, func(b *CFGBlock, in lockState) lockState {
		return c.apply(b, in, false)
	})
	// Report pass: replay each block once from its solved in-state.
	for _, b := range g.Reachable() {
		c.apply(b, res.In[b], true)
	}
	// Exit obligations: a lock held on some path into Exit without a
	// deferred release never gets unlocked on that path.
	for _, p := range res.In[g.Exit] {
		for id, pos := range p.held {
			if !p.deferred[id] {
				c.reportOnce(pos, "%s is not released on every path to return: unlock before each return or use defer", displayLock(id))
			}
		}
	}
}

// apply replays a block's statements against every incoming path
// state. With report set it emits findings; the dataflow transfer
// calls it silently.
func (c *lockChecker) apply(b *CFGBlock, in lockState, report bool) lockState {
	if len(in) == 0 {
		return nil
	}
	var events []lockEvent
	for _, n := range b.Stmts {
		events = append(events, c.events(n)...)
	}
	if len(events) == 0 && !report {
		return in
	}
	out := make(lockState, len(in))
	for _, p := range in {
		q := p.clone()
		for _, e := range events {
			c.applyEvent(e, &q, report)
		}
		out[q.key()] = q
	}
	if len(out) > maxLockPaths {
		out = collapseLockPaths(out)
	}
	return out
}

func (c *lockChecker) applyEvent(e lockEvent, p *lockPath, report bool) {
	switch e.kind {
	case evLock:
		if _, dup := p.held[e.id]; dup {
			if report {
				c.reportOnce(e.pos, "%s acquired again while already held on this path (self-deadlock)", displayLock(e.id))
			}
			return
		}
		p.held[e.id] = e.pos
	case evUnlock:
		delete(p.held, e.id)
	case evDeferUnlock:
		p.deferred[e.id] = true
	case evBlocking:
		if report && len(p.held) > 0 {
			c.reportOnce(e.pos, "%s while holding %s: release the lock before blocking on other goroutines", e.what, heldList(*p))
		}
	case evMayPanic:
		if !report {
			return
		}
		var bare []string
		for id := range p.held {
			if !p.deferred[id] {
				bare = append(bare, displayLock(id))
			}
		}
		if len(bare) > 0 {
			sort.Strings(bare)
			c.reportOnce(e.pos, "%s while %s is held without a deferred release: a panic here leaks the lock", e.what, strings.Join(bare, ", "))
		}
	}
}

func heldList(p lockPath) string {
	ids := make([]string, 0, len(p.held))
	for id := range p.held {
		ids = append(ids, displayLock(id))
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}

// displayLock renders a lock identity for messages: "Lock(f.mu)" or
// "RLock(f.mu)".
func displayLock(id string) string {
	if recv, ok := strings.CutPrefix(id, "R:"); ok {
		return "RLock(" + recv + ")"
	}
	return "Lock(" + id + ")"
}

// events extracts this statement's lock-relevant events in evaluation
// order. Function literals are opaque (they get their own CFG);
// deferred and go'd calls do not execute on this path, so only their
// arguments are walked — except that a deferred Unlock (directly or
// inside a deferred literal) registers a release.
func (c *lockChecker) events(n ast.Node) []lockEvent {
	switch n := n.(type) {
	case *ast.DeferStmt:
		return c.deferEvents(n)
	case *ast.GoStmt:
		var evs []lockEvent
		for _, arg := range n.Call.Args {
			evs = append(evs, c.walkEvents(arg)...)
		}
		return evs
	case *ast.RangeStmt:
		evs := c.walkEvents(n.X)
		if t := c.pass.Info.TypeOf(n.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				evs = append(evs, lockEvent{kind: evBlocking, pos: n.Pos(), what: "range over a channel"})
			}
		}
		return evs
	}
	return c.walkEvents(n)
}

func (c *lockChecker) deferEvents(d *ast.DeferStmt) []lockEvent {
	var evs []lockEvent
	for _, arg := range d.Call.Args {
		evs = append(evs, c.walkEvents(arg)...)
	}
	if id, op, ok := c.lockOp(d.Call); ok && (op == evUnlock) {
		evs = append(evs, lockEvent{kind: evDeferUnlock, pos: d.Pos(), id: id})
		return evs
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if inner, ok := x.(*ast.FuncLit); ok && inner != lit {
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok {
				if id, op, ok := c.lockOp(call); ok && op == evUnlock {
					evs = append(evs, lockEvent{kind: evDeferUnlock, pos: d.Pos(), id: id})
				}
			}
			return true
		})
	}
	return evs
}

// walkEvents classifies every call, send, and receive in the subtree,
// in pre-order (a close approximation of evaluation order; block
// statements already arrive in source order).
func (c *lockChecker) walkEvents(n ast.Node) []lockEvent {
	var evs []lockEvent
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			evs = append(evs, lockEvent{kind: evBlocking, pos: x.Arrow, what: "channel send"})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				evs = append(evs, lockEvent{kind: evBlocking, pos: x.Pos(), what: "channel receive"})
			}
		case *ast.CallExpr:
			if ev, ok := c.classifyCall(x); ok {
				evs = append(evs, ev)
			}
		}
		return true
	})
	return evs
}

// classifyCall sorts a call into the event taxonomy; ok=false means
// the call is irrelevant (exempt from the panic model).
func (c *lockChecker) classifyCall(call *ast.CallExpr) (lockEvent, bool) {
	if id, op, ok := c.lockOp(call); ok {
		return lockEvent{kind: op, pos: call.Pos(), id: id}, true
	}
	info := c.pass.Info
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			// Builtins do not unwind in ways a deferred unlock would not
			// already have to survive — except panic itself.
			if b.Name() == "panic" {
				return lockEvent{kind: evMayPanic, pos: call.Pos(), what: "explicit panic"}, true
			}
			return lockEvent{}, false
		}
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return lockEvent{}, false // conversion
		}
		return lockEvent{kind: evMayPanic, pos: call.Pos(), what: "call to " + fun.Name}, true
	case *ast.SelectorExpr:
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return lockEvent{}, false // qualified conversion (pkg.Type(x))
		}
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sync":
					recv := methodRecvName(fn)
					if fn.Name() == "Wait" {
						switch recv {
						case "WaitGroup":
							return lockEvent{kind: evBlocking, pos: call.Pos(), what: "WaitGroup.Wait"}, true
						case "Cond":
							// Cond.Wait requires the lock by contract; exempt.
							return lockEvent{}, false
						}
					}
					if fn.Name() == "Do" && recv == "Once" {
						// Once.Do runs user code that may panic.
						return lockEvent{kind: evMayPanic, pos: call.Pos(), what: "call to Once.Do"}, true
					}
					return lockEvent{}, false
				case "sync/atomic":
					return lockEvent{}, false
				}
			}
			return lockEvent{kind: evMayPanic, pos: call.Pos(), what: "call to " + fun.Sel.Name}, true
		}
		// Package-qualified function call.
		if path, ok := pkgSelector(info, fun); ok && path == "sync/atomic" {
			return lockEvent{}, false
		}
		return lockEvent{kind: evMayPanic, pos: call.Pos(), what: "call to " + fun.Sel.Name}, true
	}
	return lockEvent{kind: evMayPanic, pos: call.Pos(), what: "call"}, true
}

// lockOp recognizes Lock/Unlock/RLock/RUnlock method calls on
// sync.Mutex / sync.RWMutex (including promoted embedded mutexes) and
// returns (lock identity, evLock|evUnlock).
func (c *lockChecker) lockOp(call *ast.CallExpr) (string, int, bool) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	sel, ok := c.pass.Info.Selections[fun]
	if !ok {
		return "", 0, false
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	recv := methodRecvName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", 0, false
	}
	id := exprKey(fun.X)
	switch fn.Name() {
	case "Lock":
		return id, evLock, true
	case "Unlock":
		return id, evUnlock, true
	case "RLock":
		return "R:" + id, evLock, true
	case "RUnlock":
		return "R:" + id, evUnlock, true
	}
	return "", 0, false
}
