package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// metricNameRE: lowercase dotted names, at least two segments
// ("serving.cache.hits", "http.status.4xx"). The first segment starts
// with a letter; later segments may start with a digit.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

// Metricname checks every telemetry Registry.Counter / Gauge /
// Histogram call site: the name must be a compile-time lowercase
// dotted string constant — fmt.Sprintf or concatenated names are
// cardinality bombs waiting for a request-derived value — and each
// name may be registered at exactly one call site per package, so
// grepping a metric name lands on its single owner.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc: "telemetry metric names must be lowercase dotted string constants, " +
		"registered at one call site per package",
	Run: runMetricname,
}

func runMetricname(pass *Pass) {
	registered := map[string]token.Position{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isRegistryMethod(pass.Info, sel) {
				return true
			}
			arg := call.Args[0]
			tv := pass.Info.Types[arg]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "telemetry.%s name must be a compile-time string constant, not a dynamic expression (unbounded metric cardinality); register one literal per variant", sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(arg.Pos(), "telemetry metric name %q must be lowercase dotted (e.g. \"serving.cache.hits\")", name)
				return true
			}
			if first, dup := registered[name]; dup {
				pass.Reportf(arg.Pos(), "metric %q already registered in this package at %s:%d; share that variable instead", name, first.Filename, first.Line)
				return true
			}
			registered[name] = pass.Fset.Position(arg.Pos())
			return true
		})
	}
}

// isRegistryMethod reports whether sel is a Counter/Gauge/Histogram
// method on the telemetry Registry.
func isRegistryMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	obj := s.Obj()
	return obj.Pkg() != nil && pathWithin(obj.Pkg().Path(), "internal/telemetry")
}
