package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// floateqAllowFuncs names the approved epsilon helpers: the only
// functions allowed to compare floats with == / !=, because exact
// comparison (infinities, fast paths) is part of their contract.
// Entries are (module-relative package prefix, "FuncName" or
// "Recv.FuncName").
var floateqAllowFuncs = []struct{ prefix, fn string }{
	{"internal/stats", "ApproxEqual"},
}

// Floateq forbids == and != on float operands (including named float
// types like units.Seconds, resolved through go/types) and switches on
// float tags. Exact float equality is how cross-run drift sneaks past
// review: two mathematically equal computations disagree in the last
// ulp and a cache key, a frontier comparison, or a feasibility test
// silently flips. Comparisons against the exact constant 0 are allowed
// — zero is the repo-wide "unset/unconstrained" sentinel and is
// exactly representable — as are NaN checks via math.IsNaN (x != x is
// flagged with a pointer there).
//
// Comparators are exempt: inside a Less method or a func literal
// passed to sort.Slice / sort.SliceStable / sort.Search, the exact
// `if a != b { return a < b }` tie-break idiom is required — an
// epsilon comparison there breaks strict weak ordering (transitivity),
// which corrupts the sort instead of stabilizing it.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= and switch on float operands outside the epsilon-helper allowlist",
	Run:  runFloateq,
}

func runFloateq(pass *Pass) {
	exempt := comparatorRanges(pass.Files)
	inComparator := func(pos token.Pos) bool {
		for _, r := range exempt {
			if pos >= r.from && pos <= r.to {
				return true
			}
		}
		return false
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				xt := pass.Info.Types[n.X]
				yt := pass.Info.Types[n.Y]
				if !isFloat(xt.Type) && !isFloat(yt.Type) {
					return true
				}
				if isExactZero(xt.Value) || isExactZero(yt.Value) {
					return true
				}
				if floateqAllowed(pass, n.Pos()) || inComparator(n.Pos()) {
					return true
				}
				if sameIdent(n.X, n.Y) {
					pass.Reportf(n.Pos(), "x %s x on floats is a NaN probe; use math.IsNaN", n.Op)
					return true
				}
				pass.Reportf(n.Pos(), "%s on float operands; compare within an epsilon (stats.ApproxEqual) or use //lint:allow floateq <reason> if exact equality is the point", n.Op)
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if tv, ok := pass.Info.Types[n.Tag]; ok && isFloat(tv.Type) {
					if !floateqAllowed(pass, n.Pos()) {
						pass.Reportf(n.Pos(), "switch on a float tag compares with ==; use if/else with epsilon comparisons")
					}
				}
			}
			return true
		})
	}
}

// floateqAllowed reports whether pos sits inside an approved epsilon
// helper.
func floateqAllowed(pass *Pass, pos token.Pos) bool {
	for _, e := range floateqAllowFuncs {
		if pathWithin(pass.Path, e.prefix) && enclosingFuncName(pass.Files, pos) == e.fn {
			return true
		}
	}
	return false
}

// isExactZero reports whether a compile-time constant is exactly zero.
func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}

// sameIdent reports whether both operands are the same plain
// identifier (the classic NaN self-comparison).
func sameIdent(x, y ast.Expr) bool {
	xi, ok1 := x.(*ast.Ident)
	yi, ok2 := y.(*ast.Ident)
	return ok1 && ok2 && xi.Name == yi.Name
}

// posRange is a half-open source span.
type posRange struct{ from, to token.Pos }

// comparatorRanges collects the body spans of comparison functions:
// Less methods (sort.Interface, heap.Interface) and func literals
// handed to sort.Slice, sort.SliceStable, or sort.Search.
func comparatorRanges(files []*ast.File) []posRange {
	var out []posRange
	for _, file := range files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv != nil && fd.Name.Name == "Less" && fd.Body != nil {
				out = append(out, posRange{fd.Body.Pos(), fd.Body.End()})
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "sort" {
				return true
			}
			switch sel.Sel.Name {
			case "Slice", "SliceStable", "Search":
			default:
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					out = append(out, posRange{lit.Body.Pos(), lit.Body.End()})
				}
			}
			return true
		})
	}
	return out
}
