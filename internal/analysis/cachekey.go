// The cachekey rule: the Frontdoor cache (internal/serving) is sound
// only if two requests that can produce different response bytes never
// share a cache key. The rule proves that in two composable halves,
// both built on the interprocedural summaries (summary.go):
//
//  1. Call-site coverage. At every cache call — a call passing both a
//     serving.Query value and a compute closure — every request-struct
//     field the closure transitively reads (via function summaries:
//     reads propagate through module callees, unknown callees read
//     their arguments wholesale) must also be read by the expressions
//     that build the Query literal. A field the closure consumes but
//     the key omits is a stale-cache bug: the cached bytes answer a
//     different request.
//  2. Key completeness. In the serving package, the canonical key
//     builder (a function named "key" taking a Query) must read every
//     field of the Query struct, so a field added to Query cannot
//     silently stop distinguishing requests. This proves the key
//     builder *consumes* each field — exact for the straight-line
//     byte-append builder serving uses (every read there flows into
//     the returned bytes); a pathological builder that reads a field
//     and discards it would still pass, which is why the builder stays
//     straight-line.
//
// Together: closure reads ⊆ Query-literal reads (half 1) and Query
// fields ⊆ key bytes (half 2), so closure reads reach the key bytes.
//
// Request structs are recognized by how the data arrives, not by
// naming alone: a local whose address flows into an encoding/json
// Decode/Unmarshal in the same function, or a value whose named struct
// type ends in "Request" (the decode-helper idiom). Handler locals
// derived from request fields (boot := req.BootSeconds) are tracked by
// a small taint pass so defaulted knobs count as reads of their source
// field on both sides of the comparison.
//
// A cache call whose Query or compute function cannot be traced to a
// literal in the enclosing function is itself a finding (the proof
// obligation cannot be discharged) — except pure plumbing, where both
// are parameters passed straight through (serve, Frontdoor.Do).
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Cachekey is the tenth analyzer; see the comment above.
var Cachekey = &Analyzer{
	Name:        "cachekey",
	Doc:         "Every request field a compute closure reads must reach the cache key; the canonical key builder must consume every Query field",
	Run:         runCachekey,
	NeedsModule: true,
}

// cachekeyScope: packages that build cache queries or the key itself.
var cachekeyScope = []string{
	"internal/api",
	"internal/serving",
	"internal/localserver",
}

// maxTaintsPerVar caps how many (root, path) taints one handler local
// can carry before collapsing to a wholesale read of each root.
const maxTaintsPerVar = 32

func runCachekey(pass *Pass) {
	in := false
	for _, prefix := range cachekeyScope {
		if pathWithin(pass.Path, prefix) {
			in = true
			break
		}
	}
	if !in || pass.Module == nil {
		return
	}
	c := &cachekeyChecker{pass: pass, reported: map[string]bool{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkCacheCalls(fd)
			c.checkKeyBuilder(fd)
		}
	}
}

type cachekeyChecker struct {
	pass     *Pass
	reported map[string]bool
}

func (c *cachekeyChecker) reportOnce(pos token.Pos, format string, args ...interface{}) {
	msg := formatMsg(format, args...)
	key := c.pass.Fset.Position(pos).String() + "\x00" + msg
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

// walkerPkg wraps the pass as a CheckedPackage so the summary engine's
// effect walker can run over handler snippets.
func (c *cachekeyChecker) walkerPkg() *CheckedPackage {
	return &CheckedPackage{Fset: c.pass.Fset, Path: c.pass.Path, Info: c.pass.Info}
}

// isQueryType reports whether t is the serving cache-query struct (or
// a fixture's stand-in): a named struct type called Query.
func isQueryType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Query" {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

// ---- Half 1: call-site coverage ----

func (c *cachekeyChecker) checkCacheCalls(fd *ast.FuncDecl) {
	info := c.pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		queryIdx, computeIdx := -1, -1
		for i, arg := range call.Args {
			t := info.TypeOf(arg)
			if t == nil {
				continue
			}
			if queryIdx < 0 && isQueryType(t) {
				queryIdx = i
			}
			if computeIdx < 0 && i != queryIdx {
				if _, isFunc := t.Underlying().(*types.Signature); isFunc {
					computeIdx = i
				}
			}
		}
		if queryIdx < 0 || computeIdx < 0 {
			return true
		}
		c.checkOneCacheCall(fd, call, call.Args[queryIdx], call.Args[computeIdx])
		return true
	})
}

func (c *cachekeyChecker) checkOneCacheCall(fd *ast.FuncDecl, call *ast.CallExpr, queryArg, computeArg ast.Expr) {
	// Plumbing exemption: both the query and the compute function are
	// parameters forwarded unchanged — the proof obligation lives at the
	// frame that built them.
	if c.isParamOf(fd, queryArg) && c.isParamOf(fd, computeArg) {
		return
	}

	roots, taints := c.requestRoots(fd)
	if len(roots) == 0 {
		return // no wire-decoded request in this function: nothing to prove
	}

	queryExprs, ok := c.resolveQueryExprs(fd, queryArg)
	if !ok {
		c.reportOnce(call.Pos(), "cannot prove cache-key coverage: the query is not a struct literal traceable within this function — build the serving.Query inline or waive with a reason")
		return
	}
	lit := c.resolveComputeLit(fd, computeArg)
	if lit == nil {
		c.reportOnce(call.Pos(), "cannot prove cache-key coverage: the compute function is not a literal traceable within this function — inline the closure or waive with a reason")
		return
	}

	// Keyed set: everything the Query-literal expressions read from the
	// request roots (through summaries — req.Trace.Hash() keys exactly
	// the fields Hash reads).
	keyed := c.collectReads(taints, func(w *effectWalker) {
		for _, e := range queryExprs {
			w.expr(e)
		}
	}, nil)

	// Read set: everything the compute closure reads, with positions.
	type readSite struct {
		root int
		path string
		pos  token.Pos
	}
	var sites []readSite
	c.collectReads(taints, func(w *effectWalker) {
		w.stmtList(lit.Body.List)
	}, func(root int, path string, pos token.Pos) {
		sites = append(sites, readSite{root, path, pos})
	})

	seen := map[string]bool{}
	for _, site := range sites {
		ks := keyed[site.root]
		if ks != nil && ks.Covers(site.path) {
			continue
		}
		reqName := roots[site.root].Name()
		display := reqName
		if site.path != "" {
			display = reqName + "." + site.path
		}
		dedup := display
		if seen[dedup] {
			continue
		}
		seen[dedup] = true
		if site.path == "" {
			c.reportOnce(site.pos, "compute closure consumes %s wholesale but the cache key does not cover the whole request: key every field it can reach or waive with a reason", display)
			continue
		}
		c.reportOnce(site.pos, "compute closure reads request field %s but it never reaches the cache key: responses for requests differing in %s would share a cache entry — fold it into the serving.Query", display, site.path)
	}
}

// isParamOf reports whether e is a bare reference to one of fd's
// parameters.
func (c *cachekeyChecker) isParamOf(fd *ast.FuncDecl, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if c.pass.Info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// resolveQueryExprs traces the query argument to the element
// expressions of the struct literal(s) that built it.
func (c *cachekeyChecker) resolveQueryExprs(fd *ast.FuncDecl, arg ast.Expr) ([]ast.Expr, bool) {
	arg = ast.Unparen(arg)
	if lit, ok := arg.(*ast.CompositeLit); ok {
		return queryLitElements(lit), true
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := objOf(c.pass.Info, id).(*types.Var)
	if !ok {
		return nil, false
	}
	var out []ast.Expr
	ok = true
	forEachAssignmentTo(c.pass.Info, fd.Body, v, func(rhs ast.Expr) {
		if lit, isLit := ast.Unparen(rhs).(*ast.CompositeLit); isLit {
			out = append(out, queryLitElements(lit)...)
			return
		}
		ok = false
	})
	if !ok || out == nil {
		return nil, false
	}
	return out, true
}

// queryLitElements returns the value expressions of a struct literal
// (struct-field keys are names, not reads).
func queryLitElements(lit *ast.CompositeLit) []ast.Expr {
	var out []ast.Expr
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			out = append(out, kv.Value)
			continue
		}
		out = append(out, el)
	}
	return out
}

// resolveComputeLit traces the compute argument to a function literal.
func (c *cachekeyChecker) resolveComputeLit(fd *ast.FuncDecl, arg ast.Expr) *ast.FuncLit {
	arg = ast.Unparen(arg)
	if lit, ok := arg.(*ast.FuncLit); ok {
		return lit
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := objOf(c.pass.Info, id).(*types.Var)
	if !ok {
		return nil
	}
	var found *ast.FuncLit
	count := 0
	forEachAssignmentTo(c.pass.Info, fd.Body, v, func(rhs ast.Expr) {
		count++
		if lit, isLit := ast.Unparen(rhs).(*ast.FuncLit); isLit {
			found = lit
		}
	})
	if count != 1 {
		return nil
	}
	return found
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// forEachAssignmentTo invokes fn with the right-hand side of every
// 1:1 assignment (or var initializer) to v inside body. Multi-value
// assignments are reported as a nil-safe non-literal (fn sees the call
// expression, which will fail literal resolution — correctly: the
// value is not traceable).
func forEachAssignmentTo(info *types.Info, body *ast.BlockStmt, v *types.Var, fn func(rhs ast.Expr)) {
	isV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && objOf(info, id) == v
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !isV(lhs) {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					fn(n.Rhs[i])
				} else if len(n.Rhs) == 1 {
					fn(n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.Defs[name] != v {
					continue
				}
				if len(n.Values) == len(n.Names) {
					fn(n.Values[i])
				} else if len(n.Values) == 1 {
					fn(n.Values[0])
				}
			}
		}
		return true
	})
}

// requestRoots finds the function's wire-decoded request values and
// returns them with a taint map covering derived locals.
func (c *cachekeyChecker) requestRoots(fd *ast.FuncDecl) ([]*types.Var, map[*types.Var][]rootTaint) {
	info := c.pass.Info
	var roots []*types.Var
	seen := map[*types.Var]bool{}
	addRoot := func(v *types.Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			roots = append(roots, v)
		}
	}

	// Marker 1: address flows into encoding/json Decode/Unmarshal.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			id, ok := ast.Unparen(un.X).(*ast.Ident)
			if !ok {
				continue
			}
			if jsonDecodeCall(info, call) {
				if v, ok := objOf(info, id).(*types.Var); ok {
					addRoot(v)
				}
			}
		}
		return true
	})

	// Marker 2: any local or parameter whose named struct type ends in
	// "Request" (the decode-helper idiom: req, ok := s.decode(w, r)).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok {
			return true
		}
		if named, ok := v.Type().(*types.Named); ok {
			if strings.HasSuffix(named.Obj().Name(), "Request") {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					addRoot(v)
				}
			}
		}
		return true
	})
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				v, ok := info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if named, ok := v.Type().(*types.Named); ok && strings.HasSuffix(named.Obj().Name(), "Request") {
					if _, isStruct := named.Underlying().(*types.Struct); isStruct {
						addRoot(v)
					}
				}
			}
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })

	taints := map[*types.Var][]rootTaint{}
	for i, v := range roots {
		taints[v] = []rootTaint{{root: i}}
	}
	c.propagateLocalTaints(fd, taints)
	return roots, taints
}

func jsonDecodeCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if msel, isSel := info.Selections[sel]; isSel {
		fn, ok := msel.Obj().(*types.Func)
		return ok && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/json" && fn.Name() == "Decode"
	}
	path, ok := pkgSelector(info, sel)
	return ok && path == "encoding/json" && (sel.Sel.Name == "Unmarshal" || sel.Sel.Name == "NewDecoder")
}

// propagateLocalTaints extends the taint map to locals derived from
// request fields: boot := req.BootSeconds makes reading boot a read of
// req.BootSeconds. A right-hand side that is a pure selector chain
// yields a chain taint (the local aliases the root's structure); any
// other RHS yields opaque taints — reading the local, however deeply,
// reads exactly the source paths the RHS read (est.Failed depends on
// req.Seed, not on a field of req called Failed). Three passes resolve
// assignment chains; iteration inside one pass is source order, so
// most settle in one.
func (c *cachekeyChecker) propagateLocalTaints(fd *ast.FuncDecl, taints map[*types.Var][]rootTaint) {
	info := c.pass.Info
	for pass := 0; pass < 3; pass++ {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := objOf(info, id).(*types.Var)
				if !ok || v == nil {
					continue
				}
				if len(taints[v]) == 1 && taints[v][0].prefix == "" {
					continue // a root itself: never re-taint
				}
				var rhs []ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = []ast.Expr{as.Rhs[i]}
				} else {
					rhs = as.Rhs // multi-value: every LHS gets the union
				}
				for _, r := range rhs {
					for _, t := range c.exprTaints(taints, r) {
						if addTaint(taints, v, t) {
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// addTaint unions one taint into a var's set, collapsing oversized
// sets to wholesale reads of each distinct root.
func addTaint(taints map[*types.Var][]rootTaint, v *types.Var, t rootTaint) bool {
	for _, have := range taints[v] {
		if have == t || (have.root == t.root && have.prefix == "" && !have.opaque) {
			return false
		}
	}
	taints[v] = append(taints[v], t)
	if len(taints[v]) > maxTaintsPerVar {
		rootsSeen := map[int]bool{}
		var collapsed []rootTaint
		for _, have := range taints[v] {
			if !rootsSeen[have.root] {
				rootsSeen[have.root] = true
				collapsed = append(collapsed, rootTaint{root: have.root})
			}
		}
		taints[v] = collapsed
	}
	return true
}

// exprTaints computes the taints an assignment's right-hand side
// confers on its target: a chain taint for a pure selector chain from
// a chain-tainted var, opaque taints (one per read path) otherwise.
func (c *cachekeyChecker) exprTaints(taints map[*types.Var][]rootTaint, e ast.Expr) []rootTaint {
	probe := &effectWalker{
		m:    c.pass.Module,
		pkg:  c.walkerPkg(),
		out:  &Summary{Reads: map[int]PathSet{}},
		vars: taints,
	}
	if ts, path, ok := probe.chain(e); ok {
		out := make([]rootTaint, 0, len(ts))
		for _, t := range ts {
			out = append(out, rootTaint{root: t.root, prefix: t.extend(path), opaque: t.opaque})
		}
		return out
	}
	reads := c.collectReads(taints, func(w *effectWalker) { w.expr(e) }, nil)
	var out []rootTaint
	for root, ps := range reads {
		for p := range ps {
			out = append(out, rootTaint{root: root, prefix: p, opaque: true})
		}
	}
	return out
}

// collectReads runs the summary engine's effect walker over a snippet
// with the given taint seeding and returns the per-root read sets.
func (c *cachekeyChecker) collectReads(taints map[*types.Var][]rootTaint, walk func(*effectWalker), onRead func(root int, path string, pos token.Pos)) map[int]PathSet {
	vars := make(map[*types.Var][]rootTaint, len(taints))
	for v, ts := range taints {
		vars[v] = ts
	}
	w := &effectWalker{
		m:      c.pass.Module,
		pkg:    c.walkerPkg(),
		out:    &Summary{Reads: map[int]PathSet{}},
		vars:   vars,
		onRead: onRead,
	}
	walk(w)
	return w.out.Reads
}

// ---- Half 2: key-builder completeness ----

func (c *cachekeyChecker) checkKeyBuilder(fd *ast.FuncDecl) {
	if fd.Name.Name != "key" {
		return
	}
	fn, ok := c.pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	paramIdx := -1
	var queryStruct *types.Struct
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isQueryType(t) {
			paramIdx = i
			queryStruct, _ = t.Underlying().(*types.Struct)
			break
		}
	}
	if paramIdx < 0 || queryStruct == nil {
		return
	}
	sum := c.pass.Module.SummaryOf(fn)
	if sum == nil {
		return
	}
	reads := sum.Reads[paramIdx]
	for i := 0; i < queryStruct.NumFields(); i++ {
		field := queryStruct.Field(i)
		if reads != nil && reads.Covers(field.Name()) {
			continue
		}
		c.reportOnce(fd.Name.Pos(), "canonical key builder never reads Query.%s: two queries differing only in %s would collide in the cache — fold the field into the key bytes", field.Name(), field.Name())
	}
}
