// The ctxflow-ip rule: interprocedural context propagation. The intra
// rule (ctxflow.go) sees one frame — it catches a dropped ctx param or
// a Background() under a live ctx, but not a chain that quietly sheds
// cancellation two frames down: RiskTimelineContext polls its ctx
// between steps, then calls a worker pool that blocks on channels with
// no way to stop. The summaries (summary.go) carry may-block/may-scan
// transitively, so this rule sees the whole chain from any depth.
//
// Finding condition: a function that holds a live context (a ctx
// parameter, or a locally derived one) synchronously calls a module
// function that (a) has no context parameter anywhere in its signature
// and (b) may block on goroutine coordination or run an unbounded scan
// loop, per its summary. The call site is where cancellation dies, so
// that is where the finding points; the message carries the summary's
// why-chain so a two-frame-deep channel wait is named directly.
//
// Wrappers are flagged too, by construction: Foo() { FooContext(
// context.Background(), ...) } has no ctx param, and its summary
// inherits Blocks from FooContext's body — callers holding a live ctx
// who call Foo get a finding, which is exactly the PR 7 bug class.
//
// Deliberate exclusions, to keep the signal sharp: go'd calls (the
// goroutine is not on this path; nakedgo polices lifecycle), callees
// with any ctx param (the caller may still pass the wrong one — the
// intra rule's Background() check covers that), and blocking via
// mutexes or Cond.Wait (bounded by the lock discipline, not
// cancellation).
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxflowIP is the eleventh analyzer; see the comment above.
var CtxflowIP = &Analyzer{
	Name:        "ctxflowip",
	Doc:         "A live context must reach every callee that may block or scan: flag calls into context-free chains that can no longer be canceled",
	Run:         runCtxflowIP,
	NeedsModule: true,
}

func runCtxflowIP(pass *Pass) {
	in := false
	for _, prefix := range ctxflowScope {
		if pathWithin(pass.Path, prefix) {
			in = true
			break
		}
	}
	if !in || pass.Module == nil {
		return
	}
	c := &ctxIPChecker{pass: pass, reported: map[token.Pos]bool{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.visitFunc(fd.Type, fd.Body, false)
		}
	}
}

type ctxIPChecker struct {
	pass     *Pass
	reported map[token.Pos]bool
}

// visitFunc mirrors the intra rule's traversal: literals inherit the
// enclosing frame's ctx availability, go'd literals start fresh (their
// lifetime is not the request's unless a ctx is passed in explicitly).
func (c *ctxIPChecker) visitFunc(ftype *ast.FuncType, body *ast.BlockStmt, inherited bool) {
	info := c.pass.Info
	hasCtx := inherited
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && name.Name != "_" && isContextType(v.Type()) {
					hasCtx = true
				}
			}
		}
	}
	if !hasCtx {
		hasCtx = declaresCtxLocal(info, body)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.visitFunc(n.Type, n.Body, hasCtx)
			return false
		case *ast.GoStmt:
			// The go'd call itself is off-path; its argument expressions
			// still evaluate here but contain no calls we would miss that
			// matter more than the goroutine's own body, which nakedgo and
			// the literal-visit above cover.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				c.visitFunc(lit.Type, lit.Body, false)
			}
			return false
		case *ast.CallExpr:
			if hasCtx {
				c.checkCall(n)
			}
		}
		return true
	})
}

func (c *ctxIPChecker) checkCall(call *ast.CallExpr) {
	if c.reported[call.Pos()] {
		return
	}
	callees, _ := c.pass.Module.ResolveCall(c.pass.Info, call)
	for _, callee := range callees {
		sum := c.pass.Module.SummaryOf(callee)
		if sum == nil || sum.HasCtxParam {
			continue
		}
		var verb, why string
		switch {
		case sum.Blocks:
			verb, why = "block", sum.BlocksWhy
		case sum.Scans:
			verb, why = "scan", sum.ScansWhy
		default:
			continue
		}
		c.reported[call.Pos()] = true
		c.pass.Reportf(call.Pos(), "%s may %s (%s) but takes no context: cancellation from this frame's live ctx stops here — add a Context-taking variant and thread ctx through", calleeDisplay(callee), verb, why)
		return
	}
}
