// Package lintfixture is a known-bad fixture for the escape hatch
// itself: a reason-less allow and a typoed rule name are findings, so
// suppressions cannot rot silently.
package lintfixture

// Eq hides behind a reason-less allow: the directive itself is flagged,
// and because it is malformed it suppresses nothing, so the floateq
// finding surfaces too.
func Eq(a, b float64) bool {
	//lint:allow floateq
	return a == b
}

// Neq names a rule that does not exist.
func Neq(a, b float64) bool {
	//lint:allow floateqq typo in the rule name
	return a != b
}

// Stale carries a well-formed waiver with nothing left to excuse: the
// comparison it once suppressed is gone, so the waiver itself is a
// finding.
func Stale(a, b float64) float64 {
	//lint:allow floateq the comparison this excused was removed
	return a + b
}
