// Package lintfixture exercises the legal unitsafe patterns: table
// products and quotients, constructor coercions of raw scalars, the
// accessor exits, the divide-like-by-like ratio trick, an infinity
// sentinel, and a reasoned waiver.
//
//celialint:as repro/internal/model/lintfixture
package lintfixture

import (
	"math"

	"repro/internal/units"
)

// Predict applies Eq. 2 and Eq. 5 through the table: Instructions /
// Rate yields Seconds, and $/h held over a duration yields $.
func Predict(d units.Instructions, w units.Rate, p units.USDPerHour) (units.Seconds, units.USD) {
	t := units.Time(d, w)
	return t, p.Over(t)
}

// Scale multiplies a rate by a dimensionless factor coerced through
// the constructor — dimensionally a scalar, so Rate stays Rate.
func Scale(w units.Rate, factor float64) units.Rate {
	return w * units.Rate(factor)
}

// Span divides like by like before converting: the quotient is
// dimensionless, so float64 strips nothing.
func Span(hi, lo units.USD) float64 {
	if lo == 0 {
		return 0
	}
	return float64(hi / lo)
}

// Axes exits to raw floats through the approved accessors.
func Axes(d units.Instructions, w units.Rate, t units.Seconds) (float64, float64, float64) {
	return d.Billions(), w.GIPSValue(), t.Hours()
}

// Sorted strips makespans for a kernel that wants raw float64s; the
// waiver documents why that is safe here.
func Sorted(ms []units.Seconds) []float64 {
	out := make([]float64, 0, len(ms))
	for _, m := range ms {
		out = append(out, float64(m)) //lint:allow unitsafe quantile kernel sorts raw float64; callers retype on return
	}
	return out
}

// Sentinel builds an unreachable deadline from a raw infinity: the
// constructor coerces a plain scalar, not another unit.
func Sentinel() units.Seconds {
	return units.Seconds(math.Inf(1))
}
