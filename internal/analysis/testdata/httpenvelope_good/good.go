// Package lintfixture is a known-good fixture for the httpenvelope
// rule: nothing here may be flagged.
//
//celialint:as repro/internal/api/lintfixture
package lintfixture

import (
	"encoding/json"
	"net/http"
)

type errorBody struct {
	Error string `json:"error"`
}

// writeJSON is the envelope helper: the one place WriteHeader may set
// an arbitrary status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Handle answers errors through the envelope and success with an
// explicit constant 2xx, both allowed.
func Handle(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("mode") == "fail" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad mode"})
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("{}"))
}

// statusWriter forwards WriteHeader, the allowed wrapper shape.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}
