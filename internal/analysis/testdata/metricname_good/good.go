// Package lintfixture is a known-good fixture for the metricname rule:
// nothing here may be flagged.
package lintfixture

import "repro/internal/telemetry"

// fixtureHits is a named constant: still compile-time, still fine.
const fixtureHits = "fixture.cache.hits"

// Metrics registers each name exactly once, as lowercase dotted
// literals.
type Metrics struct {
	Hits     *telemetry.Counter
	InFlight *telemetry.Gauge
	Latency  *telemetry.Histogram
}

// NewMetrics wires the fixture's metric namespace.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Hits:     r.Counter(fixtureHits),
		InFlight: r.Gauge("fixture.inflight"),
		Latency:  r.Histogram("fixture.latency.ms"),
	}
}
