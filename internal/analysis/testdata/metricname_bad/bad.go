// Package lintfixture is a known-bad fixture for the metricname rule:
// every registration below must be flagged.
package lintfixture

import (
	"fmt"

	"repro/internal/telemetry"
)

// Register exercises each failure mode.
func Register(r *telemetry.Registry, route string, status int) {
	r.Counter("http." + route + ".count")            // dynamic: concatenation
	r.Counter(fmt.Sprintf("http.status.%d", status)) // dynamic: Sprintf cardinality bomb
	r.Gauge("Serving.InFlight")                      // not lowercase
	r.Histogram("latency")                           // single segment, no dots
	r.Counter("dup.requests").Inc()                  // first registration: fine on its own
	r.Counter("dup.requests").Add(2)                 // duplicate call site for the same name
}
