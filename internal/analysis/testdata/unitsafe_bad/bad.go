// Package lintfixture seeds every class of unitsafe violation: an
// off-table product that cascades into an unlike-dimension sum, unit
// strips through float64, a cross-unit relabel, a compound assignment
// that squares a dollar amount, and raw float64 quantities in an
// exported signature.
//
//celialint:as repro/internal/core/lintfixture
package lintfixture

import "repro/internal/units"

// Sq "squares" a duration — s·s is on no row of the dimension table —
// and then adds a plain duration to the square, mixing s^2 with s.
func Sq(a, b units.Seconds) units.Seconds {
	return a*b + a
}

// Strip launders typed quantities back to raw floats instead of going
// through the accessor methods.
func Strip(d units.Seconds, r units.Rate) float64 {
	return float64(d) + float64(r)
}

// Relabel coerces an hour count into a dollar amount: the value is
// untouched, only the label changes.
func Relabel(h units.Hours) units.USD {
	return units.USD(h)
}

// DollarSquared multiplies two dollar amounts in place, leaving $^2
// stored in a USD variable.
func DollarSquared(bid, ask units.USD) units.USD {
	bid *= ask
	return bid
}

// Deadline takes quantities the units package models as raw float64s.
func Deadline(deadline float64, budget float64) float64 {
	return deadline + budget
}
