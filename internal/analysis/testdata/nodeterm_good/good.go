// Package lintfixture is a known-good fixture for the nodeterm rule:
// nothing here may be flagged.
//
//celialint:as repro/internal/des/lintfixture
package lintfixture

import (
	"sort"

	"repro/internal/detrand"
)

// Draw threads the repository's seeded splitmix64 source.
func Draw(seed uint64) float64 { return detrand.New(seed).Float64() }

// Sum folds a map commutatively: iteration order cannot leak.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SortedKeys collects then sorts, with the sanctioned escape hatch on
// the collection step.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		//lint:allow nodeterm keys are fully sorted below before anything observes their order
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Later derives timestamps from an injected clock value instead of the
// wall clock.
func Later(now int64, d int64) int64 { return now + d }
