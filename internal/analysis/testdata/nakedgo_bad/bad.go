// Package lintfixture is a known-bad fixture for the nakedgo rule: the
// goroutine below is untracked and must be flagged. The directive
// places it inside the internal/serving tree the rule guards.
//
//celialint:as repro/internal/serving/lintfixture
package lintfixture

// Fire spawns a goroutine nothing can join: graceful drain cannot wait
// for it and tests cannot synchronize with it.
func Fire(work func()) {
	go work()
}
