// Package lintfixture is a known-bad fixture for the atomicpub rule:
// every function below mutates a value after it was published through
// an atomic cell (or through a Loaded snapshot without cloning) — the
// exact races the copy-on-write discipline exists to prevent.
//
//celialint:as repro/internal/workqueue/lintfixture
package lintfixture

import "sync/atomic"

// Registry publishes a lookup map through an atomic pointer; readers
// Load and read without synchronization.
type Registry struct {
	m atomic.Pointer[map[string]int]
}

// Bump writes through a Loaded snapshot: racing every reader.
func (r *Registry) Bump(k string) {
	m := *r.m.Load()
	m[k]++
}

// Put aliases the snapshot instead of cloning it, then writes.
func (r *Registry) Put(k string, v int) {
	next := *r.m.Load()
	next[k] = v
	r.m.Store(&next)
}

// Seed keeps writing after the map is published.
func (r *Registry) Seed() {
	m := map[string]int{"a": 1}
	r.m.Store(&m)
	m["b"] = 2
}

// Drop deletes through a Loaded snapshot.
func (r *Registry) Drop(k string) {
	m := *r.m.Load()
	delete(m, k)
}

// Box is a published struct; Holder hands out snapshots of it.
type Box struct {
	N []int
}

// Holder publishes *Box values.
type Holder struct {
	p atomic.Pointer[Box]
}

// Mutate writes a field through a Loaded pointer.
func (h *Holder) Mutate() {
	b := h.p.Load()
	b.N = nil
}
