// Package lintfixture is a known-bad fixture for the nodeterm rule:
// every construct below must be flagged. The directive makes the
// package count as part of the deterministic internal/des tree.
//
//celialint:as repro/internal/des/lintfixture
package lintfixture

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock inside a deterministic package.
func Stamp() int64 { return time.Now().UnixNano() }

// Draw uses the unseeded global math/rand source.
func Draw() float64 { return rand.Float64() }

// Seeded is banned too: math/rand's stream is not pinned by the Go 1
// compatibility promise, so replays can drift across releases.
func Seeded(seed int64) float64 { return rand.New(rand.NewSource(seed)).Float64() }

// Keys feeds Go's randomized map iteration order straight into a
// slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
