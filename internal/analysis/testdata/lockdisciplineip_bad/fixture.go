// Package lintfixture is a known-bad fixture for the lockdiscipline-ip
// rule: while holding a lock, one method calls a helper that
// re-acquires the same (non-reentrant) lock, and another calls a
// helper that blocks on a channel. Both are invisible to the
// intra-procedural rule — the offending operation is one frame down.
//
//celialint:as repro/internal/serving/lintfixture_lockip
package lintfixture

import "sync"

type Box struct {
	mu sync.Mutex
	n  int
}

// bump acquires the receiver's lock: fine on its own.
func (b *Box) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// drain blocks on a channel: fine on its own.
func (b *Box) drain(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// Deadlock calls bump while already holding b.mu: self-deadlock.
func (b *Box) Deadlock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bump()
}

// HeldAcross blocks on other goroutines, one frame down, while
// holding the lock.
func (b *Box) HeldAcross(ch chan int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drain(ch)
}
