// Package lintfixture is the known-good twin of ctxflow_bad: the same
// shapes with cancellation flowing properly, so the rule must stay
// silent.
//
//celialint:as repro/internal/workqueue/lintfixture
package lintfixture

import "context"

// Used threads its context into the callee.
func Used(ctx context.Context, n int) (int, error) {
	if err := run(ctx); err != nil {
		return 0, err
	}
	return n + 1, nil
}

// Spin polls its context every iteration, so the loop is cancelable.
func Spin(ctx context.Context, work chan int) int {
	n := 0
	for {
		if ctx.Err() != nil {
			return n
		}
		n++
	}
}

// Scan's callback polls ctx — the ctxPollMask idiom's shape.
func Scan(ctx context.Context, items []int) int {
	total := 0
	ForEachItem(items, func(v int) {
		if ctx.Err() != nil {
			return
		}
		total += v
	})
	return total
}

// Caller uses the context-aware sibling.
func Caller(ctx context.Context) int {
	return WorkContext(ctx, 3)
}

// Work is fine to call from functions with no ctx in scope.
func Work(n int) int { return n * n }

// WorkContext is the cancellation-aware variant.
func WorkContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n * n
}

// Offline has no context anywhere: plain loops and ForEach callbacks
// are fine.
func Offline(items []int) int {
	total := 0
	ForEachItem(items, func(v int) { total += v })
	for {
		if total < 100 {
			total *= 2
			continue
		}
		break
	}
	return total
}

// ForEachItem stands in for the space-iteration helpers.
func ForEachItem(items []int, f func(int)) {
	for _, v := range items {
		f(v)
	}
}

func run(ctx context.Context) error { return ctx.Err() }
