// Package lintfixture is the known-good twin of atomicpub_bad: the
// copy-on-write discipline done right (clone, mutate the clone,
// publish, never touch it again), so the rule must stay silent.
//
//celialint:as repro/internal/workqueue/lintfixture
package lintfixture

import "sync/atomic"

// Registry publishes a lookup map through an atomic pointer.
type Registry struct {
	m atomic.Pointer[map[string]int]
}

// Get reads through a snapshot — always fine.
func (r *Registry) Get(k string) (int, bool) {
	m := *r.m.Load()
	v, ok := m[k]
	return v, ok
}

// Put is the SwapEngine idiom: clone the snapshot, mutate the clone,
// publish the clone, never write to it again.
func (r *Registry) Put(k string, v int) {
	old := *r.m.Load()
	next := make(map[string]int, len(old)+1)
	for kk, vv := range old {
		next[kk] = vv
	}
	next[k] = v
	r.m.Store(&next)
}

// Drop clones before deleting.
func (r *Registry) Drop(k string) {
	old := *r.m.Load()
	next := make(map[string]int, len(old))
	for kk, vv := range old {
		if kk == k {
			continue
		}
		next[kk] = vv
	}
	r.m.Store(&next)
}

// Rebuild mutates freely before publication — the value is private
// until Store.
func (r *Registry) Rebuild(items []string) {
	next := make(map[string]int, len(items))
	for i, it := range items {
		next[it] = i
	}
	r.m.Store(&next)
}

// Box is a published struct.
type Box struct {
	N []int
}

// Holder publishes *Box values.
type Holder struct {
	p atomic.Pointer[Box]
}

// Replace builds a fresh Box instead of mutating the published one.
func (h *Holder) Replace(n []int) {
	b := &Box{N: n}
	h.p.Store(b)
}

// Peek reads fields through the snapshot — fine.
func (h *Holder) Peek() int {
	b := h.p.Load()
	if b == nil {
		return 0
	}
	return len(b.N)
}
