// Package lintfixture is a known-bad fixture for the floateq rule:
// every comparison below must be flagged.
package lintfixture

// Eq compares floats exactly.
func Eq(a, b float64) bool { return a == b }

// Neq compares named float types exactly.
type seconds float64

func Neq(a, b seconds) bool { return a != b }

// NaNProbe is the self-comparison idiom; the rule points at math.IsNaN.
func NaNProbe(x float64) bool { return x != x }

// Classify switches on a float tag (implicit ==).
func Classify(x float64) string {
	switch x {
	case 1.5:
		return "one and a half"
	default:
		return "other"
	}
}
