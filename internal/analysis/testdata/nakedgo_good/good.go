// Package lintfixture is a known-good fixture for the nakedgo rule:
// nothing here may be flagged.
//
//celialint:as repro/internal/serving/lintfixture
package lintfixture

import "sync"

// FanOut tracks every goroutine with a WaitGroup visible in the
// enclosing function.
func FanOut(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(w)
	}
	wg.Wait()
}
