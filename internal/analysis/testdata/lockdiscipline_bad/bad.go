// Package lintfixture is a known-bad fixture for the lockdiscipline
// rule: leaked locks, locks held across blocking operations, and
// panic-unsafe critical sections.
//
//celialint:as repro/internal/workqueue/lintfixture
package lintfixture

import "sync"

// Store is a mutex-guarded map with a work channel.
type Store struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
	ch chan int
	wg sync.WaitGroup
}

// Get leaks the mutex on the not-found path.
func (s *Store) Get(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// Push sends on a channel while holding the lock: anyone who needs the
// lock to drain the channel deadlocks with us.
func (s *Store) Push(v int) {
	s.mu.Lock()
	s.ch <- v
	s.mu.Unlock()
}

// Drain waits on the WaitGroup with the lock held.
func (s *Store) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait()
}

// Sum calls user code inside the critical section without a deferred
// unlock: a panic in f leaks the lock forever.
func (s *Store) Sum(f func(int) int) int {
	s.mu.Lock()
	total := 0
	for _, v := range s.m {
		total += f(v)
	}
	s.mu.Unlock()
	return total
}

// Double self-deadlocks: sync.Mutex is not reentrant.
func (s *Store) Double() int {
	s.mu.Lock()
	s.mu.Lock()
	n := len(s.m)
	s.mu.Unlock()
	s.mu.Unlock()
	return n
}

// ReadLeak leaks the read lock when the map is empty.
func (s *Store) ReadLeak() int {
	s.rw.RLock()
	if len(s.m) == 0 {
		return 0
	}
	n := len(s.m)
	s.rw.RUnlock()
	return n
}
