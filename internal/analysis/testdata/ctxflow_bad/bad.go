// Package lintfixture is a known-bad fixture for the ctxflow rule:
// every function below severs or ignores cancellation in a way the
// rule must flag. The directive places it inside a compute package the
// rule guards.
//
//celialint:as repro/internal/workqueue/lintfixture
package lintfixture

import "context"

// Blank discards its context with _: cancellation stops here.
func Blank(_ context.Context, n int) int {
	return n + 1
}

// Unused receives a ctx and never touches it — same bug, spelled
// differently.
func Unused(ctx context.Context, n int) int {
	return n * 2
}

// Detach manufactures a fresh root context while the caller's is live.
func Detach(ctx context.Context) error {
	return run(context.Background())
}

// Spin loops forever without ever polling the context it carries.
func Spin(ctx context.Context, work chan int) {
	n := 0
	for {
		n++
		if n > 1000 {
			n = 0
		}
	}
}

// Scan hands ForEachItem a callback that cannot observe cancellation.
func Scan(ctx context.Context, items []int) int {
	total := 0
	ForEachItem(items, func(v int) {
		total += v
	})
	return total
}

// Caller opts out of cancellation its callee already supports:
// WorkContext exists but Work is called.
func Caller(ctx context.Context) int {
	if ctx.Err() != nil {
		return 0
	}
	return Work(3)
}

// Work is the ctx-blind variant of WorkContext.
func Work(n int) int { return n * n }

// WorkContext is the cancellation-aware sibling Caller should use.
func WorkContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n * n
}

// ForEachItem stands in for the space-iteration helpers in
// internal/config: the rule keys on the ForEach* name shape.
func ForEachItem(items []int, f func(int)) {
	for _, v := range items {
		f(v)
	}
}

func run(ctx context.Context) error { return ctx.Err() }
