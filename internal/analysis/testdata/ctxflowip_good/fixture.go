// Package lintfixture is the known-good counterpart of ctxflowip_bad:
// the blocking chain takes a context all the way down, and a
// condition-less retry loop with a return escape is not mistaken for
// an unbounded scan.
//
//celialint:as repro/internal/schedule/lintfixture_ctxflowip_good
package lintfixture

import "context"

// BlockingSumContext drains the channel racing each receive against
// cancellation.
func BlockingSumContext(ctx context.Context, items []int) int {
	ch := make(chan int)
	go func() {
		for _, v := range items {
			ch <- v
		}
		close(ch)
	}()
	total := 0
	for {
		select {
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// retry is a condition-less loop with a return escape — the CAS-loop
// shape, bounded by its own logic, not a scan.
func retry(n int) int {
	for {
		if n > 0 {
			return n
		}
		n++
	}
}

// Caller threads its ctx into the blocking callee; the escape-bearing
// loop needs none.
func Caller(ctx context.Context, items []int) int {
	if ctx.Err() != nil {
		return 0
	}
	return BlockingSumContext(ctx, items) + retry(len(items))
}
