// Package lintfixture is the known-good counterpart of
// lockdisciplineip_bad: the lock is released before calling the
// re-acquiring or blocking helper, and shared-mode read locks may
// nest through a call (RLock under RLock does not deadlock).
//
//celialint:as repro/internal/serving/lintfixture_lockip_good
package lintfixture

import "sync"

type Box struct {
	mu sync.Mutex
	n  int
}

func (b *Box) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *Box) drain(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// SafeBump releases before re-entering the lock through the helper.
func (b *Box) SafeBump() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.bump()
}

// SafeDrain releases before blocking one frame down.
func (b *Box) SafeDrain(ch chan int) int {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	return b.drain(ch)
}

type RBox struct {
	mu sync.RWMutex
	n  int
}

func (r *RBox) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

// Sum holds the read lock and calls a helper that takes it again in
// shared mode: allowed.
func (r *RBox) Sum() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n + r.read()
}
