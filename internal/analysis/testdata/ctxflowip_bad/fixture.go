// Package lintfixture is a known-bad fixture for the ctxflow-ip rule:
// functions holding a live context call into context-free chains whose
// summaries say they block — one frame deep and two frames deep (the
// wrapper case the intra rule cannot see).
//
//celialint:as repro/internal/schedule/lintfixture_ctxflowip
package lintfixture

import "context"

// BlockingSum drains a channel fed by a worker goroutine: its summary
// blocks (range over a channel) and it takes no context.
func BlockingSum(items []int) int {
	ch := make(chan int)
	go func() {
		for _, v := range items {
			ch <- v
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// wrapper adds a frame between the live ctx and the block.
func wrapper(items []int) int {
	return BlockingSum(items)
}

// Caller holds a live ctx and calls the blocking chain directly.
func Caller(ctx context.Context, items []int) int {
	if ctx.Err() != nil {
		return 0
	}
	return BlockingSum(items)
}

// Caller2 drops cancellation two frames deep.
func Caller2(ctx context.Context, items []int) int {
	if ctx.Err() != nil {
		return 0
	}
	return wrapper(items)
}
