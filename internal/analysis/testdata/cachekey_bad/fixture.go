// Package lintfixture is a known-bad fixture for the cachekey rule:
// a handler whose compute closure reads a request field the cache key
// omits, a key builder that forgets a Query field, and a cache call
// whose compute function cannot be traced. The directive places it
// inside the api tree the rule guards.
//
//celialint:as repro/internal/api/lintfixture_cachekey
package lintfixture

import (
	"encoding/json"
	"fmt"
)

// Query mirrors the serving cache-query shape (recognized by name).
type Query struct {
	Kind  string
	App   string
	N     float64
	Extra string
}

// fooRequest is the wire request (recognized by the decode below and
// the *Request naming).
type fooRequest struct {
	App   string  `json:"app"`
	N     float64 `json:"n"`
	Label string  `json:"label"`
}

// Do stands in for Frontdoor.Do: pure plumbing, exempt (both the query
// and the compute function are parameters passed through).
func Do(q Query, compute func() ([]byte, error)) ([]byte, error) {
	_ = key(q)
	return compute()
}

// key forgets Query.Extra: two queries differing only there collide.
func key(q Query) string {
	return fmt.Sprintf("%s|%s|%g", q.Kind, q.App, q.N)
}

// Handler's closure echoes req.Label, but the key never includes it —
// the stale-cache bug the rule exists for.
func Handler(body []byte) ([]byte, error) {
	var req fooRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	q := Query{Kind: "foo", App: req.App, N: req.N}
	return Do(q, func() ([]byte, error) {
		return []byte(req.App + req.Label), nil
	})
}

// HandlerOpaque forwards a caller-supplied compute function over a
// locally built query: the proof obligation cannot be discharged.
func HandlerOpaque(body []byte, compute func() ([]byte, error)) ([]byte, error) {
	var req fooRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	q := Query{Kind: "opaque", App: req.App, N: req.N, Extra: req.Label}
	return Do(q, compute)
}
