// Package lintfixture is a known-good fixture for the floateq rule:
// nothing here may be flagged.
package lintfixture

import (
	"math"
	"sort"
)

// Close compares within an epsilon.
func Close(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// Unset tests the zero sentinel: exact and exactly representable.
func Unset(deadline float64) bool { return deadline == 0 }

// Order tie-breaks exactly inside a comparator, where an epsilon
// comparison would break strict weak ordering.
func Order(xs []float64, idx []int) {
	sort.Slice(idx, func(a, b int) bool {
		if xs[idx[a]] != xs[idx[b]] {
			return xs[idx[a]] > xs[idx[b]]
		}
		return idx[a] < idx[b]
	})
}

// pair sorts exactly inside a Less method for the same reason.
type pair struct{ x, y float64 }
type byXY []pair

func (p byXY) Len() int      { return len(p) }
func (p byXY) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p byXY) Less(i, j int) bool {
	if p[i].x != p[j].x {
		return p[i].x < p[j].x
	}
	return p[i].y < p[j].y
}

// Allowed uses the escape hatch for an intentional exact comparison.
func Allowed(a, b float64) bool {
	//lint:allow floateq exact identity check on purpose: both values come from the same computation
	return a == b
}
