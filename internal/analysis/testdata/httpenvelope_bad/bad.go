// Package lintfixture is a known-bad fixture for the httpenvelope
// rule: both error paths below must be flagged. The directive places
// it inside the internal/api tree the rule guards.
//
//celialint:as repro/internal/api/lintfixture
package lintfixture

import "net/http"

// Handle answers errors outside the JSON envelope.
func Handle(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("mode") == "text" {
		http.Error(w, "boom", http.StatusInternalServerError) // text/plain body
		return
	}
	w.WriteHeader(http.StatusBadRequest) // bare error status, no envelope
}
