// Package lintfixture is the known-good counterpart of cachekey_bad:
// every request field the closure reads is keyed (including one read
// through a derived local), and the key builder consumes every Query
// field.
//
//celialint:as repro/internal/api/lintfixture_cachekey_good
package lintfixture

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Query mirrors the serving cache-query shape (recognized by name).
type Query struct {
	Kind  string
	App   string
	N     float64
	Extra string
}

type fooRequest struct {
	App   string  `json:"app"`
	N     float64 `json:"n"`
	Label string  `json:"label"`
	Cap   int     `json:"cap"`
}

// Do stands in for Frontdoor.Do: pure plumbing, exempt.
func Do(q Query, compute func() ([]byte, error)) ([]byte, error) {
	_ = key(q)
	return compute()
}

// key consumes every Query field.
func key(q Query) string {
	return fmt.Sprintf("%s|%s|%g|%s", q.Kind, q.App, q.N, q.Extra)
}

// Handler keys everything its closure reads: Label rides Extra, and
// the defaulted cap local carries its source field's taint into both
// the key and the closure.
func Handler(body []byte) ([]byte, error) {
	var req fooRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	cap := req.Cap
	if cap == 0 {
		cap = 100
	}
	q := Query{Kind: "foo", App: req.App, N: req.N,
		Extra: req.Label + "|" + strconv.Itoa(cap)}
	return Do(q, func() ([]byte, error) {
		if cap < 0 {
			return nil, fmt.Errorf("bad cap")
		}
		return []byte(req.App + req.Label), nil
	})
}
