// Package lintfixture is the known-good twin of lockdiscipline_bad:
// deferred unlocks, branch-complete explicit unlocks, read locks,
// channel work outside critical sections, and the sync.Cond idiom. The
// rule must stay silent.
//
//celialint:as repro/internal/workqueue/lintfixture
package lintfixture

import "sync"

// Store is a mutex-guarded map with a work channel.
type Store struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
	ch chan int
}

// Get uses the deferred-unlock idiom: safe on every path including
// panic.
func (s *Store) Get(k string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok
}

// GetFast unlocks explicitly on every path (the spot.History shape):
// fine as long as the critical section cannot panic.
func (s *Store) GetFast(k string) (int, bool) {
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	return 0, false
}

// Len holds the read lock across builtin-only reads.
func (s *Store) Len() int {
	s.rw.RLock()
	n := len(s.m)
	s.rw.RUnlock()
	return n
}

// Push updates under the lock and sends after releasing it.
func (s *Store) Push(k string, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
	s.ch <- v
}

// Sum runs user code inside the critical section behind a deferred
// unlock, so a panic in f cannot leak the lock.
func (s *Store) Sum(f func(int) int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, v := range s.m {
		total += f(v)
	}
	return total
}

// Relock releases and reacquires around blocking work.
func (s *Store) Relock(v int) {
	s.mu.Lock()
	n := s.m["n"]
	s.mu.Unlock()
	s.ch <- n
	s.mu.Lock()
	s.m["n"] = v
	s.mu.Unlock()
}

// Gate shows the sync.Cond idiom: Cond.Wait requires the lock by
// contract and is exempt from the held-across-wait check.
type Gate struct {
	mu   sync.Mutex
	cond *sync.Cond
	open bool
}

// NewGate wires the condition variable to the mutex.
func NewGate() *Gate {
	g := &Gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Await blocks until the gate opens.
func (g *Gate) Await() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.open {
		g.cond.Wait()
	}
}

// Open releases all waiters.
func (g *Gate) Open() {
	g.mu.Lock()
	g.open = true
	g.mu.Unlock()
	g.cond.Broadcast()
}
