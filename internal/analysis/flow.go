// A small forward-dataflow solver over the CFGs built in cfg.go. The
// flow-sensitive rules share its worklist loop and differ only in their
// lattices:
//
//   - lockdiscipline: a finite set of path states (held locks ×
//     deferred releases), joined by set union;
//   - atomicpub: variable → {published, snapshot} taint flags, joined
//     pointwise by flag union.
//
// Both lattices are finite and the transfer functions monotone (they
// only add facts at joins), so the iteration reaches a fixed point; a
// safety cap bounds pathological graphs anyway.
package analysis

// A Lattice abstracts one rule's dataflow facts. Join must be
// commutative and idempotent; Equal decides convergence.
type Lattice[S any] interface {
	// Bottom is the "no facts yet" state used to seed unvisited blocks.
	Bottom() S
	// Join merges the states flowing into a block from two predecessors.
	Join(a, b S) S
	// Equal reports whether two states carry identical facts.
	Equal(a, b S) bool
}

// ForwardResult holds the solved per-block states.
type ForwardResult[S any] struct {
	// In[b] is the joined state at block b's entry; Out[b] the state
	// after b's transfer function.
	In, Out map[*CFGBlock]S
}

// maxFlowIterations caps the worklist: every real function in this
// repository converges in a handful of passes; the cap only guards
// against a buggy (non-monotone) transfer function looping forever.
const maxFlowIterations = 10000

// Forward solves a forward dataflow problem: entry starts at boundary,
// every other reachable block at lat.Bottom(), and transfer maps a
// block's in-state to its out-state. The solver iterates in reverse
// post order until no state changes.
func Forward[S any](g *CFG, lat Lattice[S], boundary S, transfer func(b *CFGBlock, in S) S) ForwardResult[S] {
	blocks := g.Reachable()
	res := ForwardResult[S]{
		In:  make(map[*CFGBlock]S, len(blocks)),
		Out: make(map[*CFGBlock]S, len(blocks)),
	}
	order := postOrder(g)
	// Reverse post order: predecessors usually settle before their
	// successors, so most graphs converge in two passes.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for _, b := range blocks {
		res.In[b] = lat.Bottom()
		res.Out[b] = lat.Bottom()
	}
	res.In[g.Entry] = boundary

	preds := map[*CFGBlock][]*CFGBlock{}
	for _, b := range blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	changed := true
	for iter := 0; changed && iter < maxFlowIterations; iter++ {
		changed = false
		for _, b := range order {
			in := res.In[b]
			if b != g.Entry {
				in = lat.Bottom()
				for _, p := range preds[b] {
					in = lat.Join(in, res.Out[p])
				}
			}
			out := transfer(b, in)
			if !lat.Equal(in, res.In[b]) || !lat.Equal(out, res.Out[b]) {
				res.In[b], res.Out[b] = in, out
				changed = true
			}
		}
	}
	return res
}

// postOrder returns the reachable blocks in DFS post order.
func postOrder(g *CFG) []*CFGBlock {
	seen := make([]bool, len(g.Blocks))
	var out []*CFGBlock
	var walk func(*CFGBlock)
	walk = func(b *CFGBlock) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
		out = append(out, b)
	}
	walk(g.Entry)
	return out
}
