// Per-function summaries, computed bottom-up over the call graph's
// SCCs (callgraph.go) with a fixpoint for recursion. A summary is a
// monotone over-approximation of one function's externally visible
// effects:
//
//   - Reads: which fields of each parameter (and the receiver) the
//     function may read, transitively through callees, as dotted paths
//     ("Trace.Name"; "" means the whole value). Passing a value to an
//     unresolved callee, storing it, or using it wholesale reads "".
//     The cachekey rule compares these read sets against the key
//     builder's field-write set.
//   - Blocks: whether the function may park on goroutine coordination —
//     channel send/receive/range, select without default,
//     WaitGroup.Wait, time.Sleep — directly or through a synchronous
//     callee. Mutexes are excluded (bounded critical sections), as is
//     Cond.Wait (requires the lock by contract) and Once.Do's gate.
//   - Scans: whether the function may run an unbounded (condition-less)
//     loop. Together with Blocks this is ctxflow-ip's "needs a live
//     context" signal.
//   - Acquires: locks the function may acquire, rooted at a parameter /
//     the receiver where possible so call sites can re-root them
//     ("callee locks recv.mu" + call on f → "f.mu"). lockdiscipline-ip
//     compares these against the caller's held set.
//
// Function literals are attributed to their enclosing function when
// they plainly run on its path — immediately invoked, deferred, or
// passed as a call argument (the synchronous-callback assumption that
// matches ForEach*, sync.Once.Do, and the serving compute closures).
// Literals that are go'd, stored, or returned contribute only their
// captured reads (the value escapes), not their blocking behavior.
//
// Soundness directions: Reads over-approximates (unknown → wholesale),
// which is the safe direction for cachekey's "every read field must be
// keyed". Blocks/Scans over-approximate too, so ctxflow-ip and
// lockdiscipline-ip may over-flag in principle — the //lint:allow
// escape hatch with a mandatory reason is the pressure valve.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync/atomic"
)

// PathSet is a set of dotted field paths below one root value. The
// empty path "" means the whole value (wholesale).
type PathSet map[string]bool

const (
	// maxPathDepth truncates deeper selector chains to their prefix —
	// which behaves like a wholesale read of that subtree (conservative).
	maxPathDepth = 4
	// maxPaths collapses oversized sets to wholesale.
	maxPaths = 64
	// maxSummaryFixpoint bounds per-SCC iteration; the lattice is finite
	// so this should never bind, but the fuzzer gets a guarantee.
	maxSummaryFixpoint = 20
)

// add inserts a path, applying the depth cap and keeping the set
// canonical: a path subsumed by an existing ancestor is dropped, and
// inserting a path evicts its own descendants. Canonical form makes
// the set — and therefore DumpSummaries — independent of merge order,
// which the fuzzer checks across independent module builds.
func (s PathSet) add(path string) {
	if parts := strings.Split(path, "."); len(parts) > maxPathDepth {
		path = strings.Join(parts[:maxPathDepth], ".")
	}
	if s.Covers(path) {
		return
	}
	if path == "" {
		for k := range s {
			delete(s, k)
		}
		s[""] = true
		return
	}
	prefix := path + "."
	for k := range s {
		if strings.HasPrefix(k, prefix) {
			delete(s, k)
		}
	}
	s[path] = true
}

// Covers reports whether the set accounts for a read of path: the
// whole value, the exact path, or an ancestor of it.
func (s PathSet) Covers(path string) bool {
	if s[""] || s[path] {
		return true
	}
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '.' && s[path[:i]] {
			return true
		}
	}
	return false
}

func (s PathSet) sorted() []string {
	out := make([]string, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// joinPath concatenates dotted path segments, skipping empties.
func joinPath(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "." + b
}

// RecvRoot is the Reads / LockRef root index denoting the receiver;
// non-negative roots are parameter indices.
const RecvRoot = -1

// lockRootFree marks a LockRef not rooted at any parameter: a local,
// package-level, or otherwise unmappable mutex. Its Path is the raw
// exprKey and only matches a caller's held lock by exact text (which is
// right for package-level mutexes referenced by the same name).
const lockRootFree = -2

// A LockRef is one mutex a function may acquire, re-rootable at call
// sites via Root.
type LockRef struct {
	Root int    // parameter index, RecvRoot, or lockRootFree
	Path string // selector path below the root ("mu"), or the raw key for lockRootFree
	Read bool   // RLock rather than Lock
}

func (l LockRef) String() string {
	root := "free"
	switch {
	case l.Root == RecvRoot:
		root = "recv"
	case l.Root >= 0:
		root = fmt.Sprintf("p%d", l.Root)
	}
	op := "Lock"
	if l.Read {
		op = "RLock"
	}
	return fmt.Sprintf("%s(%s.%s)", op, root, l.Path)
}

// Summary is one function's effect summary. Fields only ever grow
// during the fixpoint (monotone).
type Summary struct {
	Fn *types.Func
	// HasCtxParam: any parameter is context.Context — the callee can be
	// canceled, so ctxflow-ip holds its callers to a different standard.
	HasCtxParam bool
	// Blocks: may park waiting on an external event — channel send /
	// receive / range, select without default, time.Sleep. These are the
	// waits cancellation exists for.
	Blocks    bool
	BlocksWhy string // first-found reason, with a call chain when transitive
	// Joins: may park on a bounded internal join (WaitGroup.Wait over
	// workers the function itself spawned). Completes without external
	// events, so ctxflow-ip ignores it, but it still parks the goroutine
	// — lockdiscipline-ip treats it like any other block.
	Joins    bool
	JoinsWhy string
	Scans    bool
	ScansWhy string
	Acquires []LockRef
	// Reads maps root (parameter index or RecvRoot) to the field paths
	// the function may read from it.
	Reads map[int]PathSet
}

func newSummary(fn *types.Func) *Summary {
	return &Summary{Fn: fn, Reads: map[int]PathSet{}}
}

func (s *Summary) readSet(root int) PathSet {
	ps := s.Reads[root]
	if ps == nil {
		ps = PathSet{}
		s.Reads[root] = ps
	}
	return ps
}

func (s *Summary) addRead(root int, path string) {
	ps := s.readSet(root)
	if ps.Covers(path) {
		return
	}
	ps.add(path)
	if len(ps) > maxPaths {
		s.Reads[root] = PathSet{"": true}
	}
}

func (s *Summary) addLock(ref LockRef) {
	for _, have := range s.Acquires {
		if have == ref {
			return
		}
	}
	s.Acquires = append(s.Acquires, ref)
}

func (s *Summary) setBlocks(why string) {
	if !s.Blocks {
		s.Blocks = true
		s.BlocksWhy = why
	}
}

func (s *Summary) setJoins(why string) {
	if !s.Joins {
		s.Joins = true
		s.JoinsWhy = why
	}
}

func (s *Summary) setScans(why string) {
	if !s.Scans {
		s.Scans = true
		s.ScansWhy = why
	}
}

// equal compares the monotone content (why-strings excluded: they are
// commentary, and first-found order could differ between passes).
func (s *Summary) equal(o *Summary) bool {
	if s.Blocks != o.Blocks || s.Joins != o.Joins || s.Scans != o.Scans || s.HasCtxParam != o.HasCtxParam {
		return false
	}
	if len(s.Acquires) != len(o.Acquires) || len(s.Reads) != len(o.Reads) {
		return false
	}
	for i := range s.Acquires {
		if s.Acquires[i] != o.Acquires[i] {
			return false
		}
	}
	for root, ps := range s.Reads {
		ops := o.Reads[root]
		if len(ps) != len(ops) {
			return false
		}
		for p := range ps {
			if !ops[p] {
				return false
			}
		}
	}
	return true
}

// Dump renders the summary deterministically (pinned by tests and the
// fuzzer's stability check).
func (s *Summary) Dump() string {
	var sb strings.Builder
	sb.WriteString(s.Fn.FullName())
	if s.HasCtxParam {
		sb.WriteString(" ctx")
	}
	if s.Blocks {
		sb.WriteString(" blocks")
	}
	if s.Joins {
		sb.WriteString(" joins")
	}
	if s.Scans {
		sb.WriteString(" scans")
	}
	refs := append([]LockRef(nil), s.Acquires...)
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Root != refs[j].Root {
			return refs[i].Root < refs[j].Root
		}
		if refs[i].Path != refs[j].Path {
			return refs[i].Path < refs[j].Path
		}
		return !refs[i].Read && refs[j].Read
	})
	for _, r := range refs {
		sb.WriteString(" ")
		sb.WriteString(r.String())
	}
	roots := make([]int, 0, len(s.Reads))
	for root := range s.Reads {
		if len(s.Reads[root]) > 0 {
			roots = append(roots, root)
		}
	}
	sort.Ints(roots)
	for _, root := range roots {
		name := fmt.Sprintf("p%d", root)
		if root == RecvRoot {
			name = "recv"
		}
		fmt.Fprintf(&sb, " %s{%s}", name, strings.Join(s.Reads[root].sorted(), ","))
	}
	return sb.String()
}

// SummaryOf returns the summary for a module function, or nil for
// anything outside the module (callers must then assume the worst).
func (m *Module) SummaryOf(fn *types.Func) *Summary {
	s, ok := m.summaries[fn]
	if !ok {
		return nil
	}
	atomic.AddInt64(&m.lookups, 1)
	return s
}

// Stats returns the module statistics including the lookup counter.
func (m *Module) Stats() ModuleStats {
	st := m.stats
	st.Lookups = atomic.LoadInt64(&m.lookups)
	return st
}

// DumpSummaries renders every summary, sorted — the fuzzer's stability
// oracle and a debugging aid.
func (m *Module) DumpSummaries() string {
	lines := make([]string, 0, len(m.summaries))
	for _, s := range m.summaries {
		lines = append(lines, s.Dump())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// computeSummaries walks SCCs bottom-up; within an SCC it iterates to a
// fixpoint (summaries are monotone and the lattice is finite).
func (m *Module) computeSummaries() {
	for fn := range m.Funcs {
		m.summaries[fn] = newSummary(fn)
	}
	for _, scc := range m.sccs {
		for iter := 0; iter < maxSummaryFixpoint; iter++ {
			changed := false
			for _, fn := range scc {
				next := m.summarize(fn)
				if !next.equal(m.summaries[fn]) {
					changed = true
				}
				m.summaries[fn] = next
			}
			if !changed {
				break
			}
			if iter > 0 {
				m.stats.FixpointIters++
			}
			if len(scc) == 1 && !selfRecursive(m, scc[0]) {
				break // one extra pass can only repeat itself
			}
		}
	}
}

func selfRecursive(m *Module, fn *types.Func) bool {
	for _, c := range m.Funcs[fn].Callees {
		if c == fn {
			return true
		}
	}
	return false
}

// summarize computes one function's summary from its body and the
// current summaries of its callees.
func (m *Module) summarize(fn *types.Func) *Summary {
	fi := m.Funcs[fn]
	s := newSummary(fn)
	w := &effectWalker{
		m:    m,
		pkg:  fi.Pkg,
		out:  s,
		vars: map[*types.Var][]rootTaint{},
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if isContextType(sig.Params().At(i).Type()) {
				s.HasCtxParam = true
			}
		}
	}
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) > 0 {
		for _, name := range fi.Decl.Recv.List[0].Names {
			if v, ok := fi.Pkg.Info.Defs[name].(*types.Var); ok {
				w.vars[v] = []rootTaint{{root: RecvRoot}}
			}
		}
	}
	if fi.Decl.Type.Params != nil {
		idx := 0
		for _, field := range fi.Decl.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if v, ok := fi.Pkg.Info.Defs[name].(*types.Var); ok {
					w.vars[v] = []rootTaint{{root: idx}}
				}
				idx++
			}
		}
	}
	w.stmtList(fi.Decl.Body.List)
	return s
}

// rootTaint ties a variable to a root. For a chain taint (x := req or
// x := req.Trace), reading x.Sub reads prefix.Sub of the root — the
// variable is an alias into the root's structure. For an opaque taint
// (x derived from root fields through a call or expression: est, err
// := risk.Estimate(..., req.Seed, ...)), reading ANY part of x reads
// exactly prefix — x's own field structure has nothing to do with the
// root's.
type rootTaint struct {
	root   int
	prefix string
	opaque bool
}

// extend maps a field path below the tainted variable onto the root's
// path space.
func (t rootTaint) extend(path string) string {
	if t.opaque {
		return t.prefix
	}
	return joinPath(t.prefix, path)
}

// loopEscapes reports whether a loop body contains any return, break,
// or goto (nested function literals excluded) — an escape hatch that
// makes the loop conditionally bounded. A condition-less loop without
// one can only ever leave by panicking, which is the "scan forever"
// shape ctxflow-ip exists for; CAS retry loops and search loops all
// carry a return.
func loopEscapes(body *ast.BlockStmt) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			escapes = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				escapes = true
			}
		}
		return !escapes
	})
	return escapes
}

// effectWalker accumulates one body's effects into out. The cachekey
// rule reuses it with onRead set (and effects ignored) to collect a
// closure's request reads with positions.
type effectWalker struct {
	m    *Module
	pkg  *CheckedPackage
	out  *Summary
	vars map[*types.Var][]rootTaint
	// onRead, when set, observes every rooted read with its position.
	onRead func(root int, path string, pos token.Pos)
}

func (w *effectWalker) info() *types.Info { return w.pkg.Info }

func (w *effectWalker) read(taints []rootTaint, path string, pos token.Pos) {
	for _, t := range taints {
		full := t.extend(path)
		w.out.addRead(t.root, full)
		if w.onRead != nil {
			w.onRead(t.root, full, pos)
		}
	}
}

// taintsOf resolves an identifier to its root taints (nil if untainted).
func (w *effectWalker) taintsOf(id *ast.Ident) []rootTaint {
	obj := w.info().Uses[id]
	if obj == nil {
		obj = w.info().Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	return w.vars[v]
}

// chain resolves an expression to (taints, dotted field path) when it
// is an unbroken value/field selector chain from a tainted variable.
func (w *effectWalker) chain(e ast.Expr) ([]rootTaint, string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if ts := w.taintsOf(e); ts != nil {
			return ts, "", true
		}
	case *ast.ParenExpr:
		return w.chain(e.X)
	case *ast.StarExpr:
		return w.chain(e.X)
	case *ast.SelectorExpr:
		sel, ok := w.info().Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return nil, "", false
		}
		ts, path, ok := w.chain(e.X)
		if !ok {
			return nil, "", false
		}
		return ts, joinPath(path, e.Sel.Name), true
	}
	return nil, "", false
}

func (w *effectWalker) stmtList(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *effectWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmtList(s.List)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			if id, ok := e.(*ast.Ident); ok {
				if w.info().Defs[id] != nil {
					continue // fresh declaration, not a read
				}
			}
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.out.setBlocks("channel send" + w.at(s.Arrow))
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		if s.Cond == nil && !loopEscapes(s.Body) {
			w.out.setScans("condition-less for loop with no escape" + w.at(s.Pos()))
		}
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Post)
		w.stmt(s.Body)
	case *ast.RangeStmt:
		if t := w.info().TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.out.setBlocks("range over a channel" + w.at(s.Pos()))
			}
		}
		w.expr(s.X)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.stmtList(s.Body)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if comm, ok := cc.(*ast.CommClause); ok && comm.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.out.setBlocks("select without default" + w.at(s.Pos()))
		}
		w.stmt(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		w.stmtList(s.Body)
	case *ast.GoStmt:
		// The goroutine's effects are not this function's path; its
		// arguments (and captures) escape, which reads them wholesale.
		w.call(s.Call, true)
	case *ast.DeferStmt:
		// Deferred calls run before this function returns: full effects.
		w.call(s.Call, false)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Anything else: walk generically for contained expressions.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e)
				return false
			}
			return true
		})
	}
}

// at renders a short position suffix for why-strings.
func (w *effectWalker) at(pos token.Pos) string {
	if w.pkg.Fset == nil || !pos.IsValid() {
		return ""
	}
	p := w.pkg.Fset.Position(pos)
	return fmt.Sprintf(" (%s:%d)", trimPath(p.Filename), p.Line)
}

// trimPath keeps the last two path segments — enough to find the file,
// short enough for one-line messages.
func trimPath(file string) string {
	parts := strings.Split(file, "/")
	if len(parts) <= 2 {
		return file
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

func (w *effectWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if ts := w.taintsOf(e); ts != nil {
			w.read(ts, "", e.Pos())
		}
	case *ast.SelectorExpr:
		if ts, path, ok := w.chain(e); ok {
			w.read(ts, path, e.Pos())
			return
		}
		// Method value / qualified name / selection off a computed base.
		w.expr(e.X)
	case *ast.CallExpr:
		w.call(e, false)
	case *ast.FuncLit:
		// Reached only for stored/returned literals (call arguments and
		// go/defer are intercepted): captures escape, effects don't run
		// here.
		w.captures(e)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.out.setBlocks("channel receive" + w.at(e.Pos()))
		}
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		// Struct keys are field names, not reads; map keys are.
		if _, isIdent := e.Key.(*ast.Ident); !isIdent {
			w.expr(e.Key)
		} else if tv, ok := w.info().Types[e.Key]; ok && tv.Value != nil {
			w.expr(e.Key)
		}
		w.expr(e.Value)
	}
}

// captures records wholesale reads for every tainted variable a stored
// or go'd literal mentions.
func (w *effectWalker) captures(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if ts := w.taintsOf(id); ts != nil {
				w.read(ts, "", id.Pos())
			}
		}
		return true
	})
}

// call handles one call expression. async marks go'd calls: arguments
// escape but the callee's effects do not run on this path.
func (w *effectWalker) call(call *ast.CallExpr, async bool) {
	info := w.info()
	fun := ast.Unparen(call.Fun)

	// Immediately invoked literal: the body runs right here.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if async {
			w.captures(lit)
		} else {
			w.stmtList(lit.Body.List)
		}
		for _, arg := range call.Args {
			w.expr(arg)
		}
		return
	}

	// Builtins and conversions: arguments are ordinary reads.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args {
				w.expr(arg)
			}
			return
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			w.expr(arg)
		}
		return
	}

	// Well-known stdlib blockers.
	if !async {
		w.classifyStdlibCall(call, fun)
	}

	callees, allKnown := w.m.ResolveCall(info, call)
	var sums []*Summary
	if allKnown && !async {
		for _, c := range callees {
			if s := w.m.SummaryOf(c); s != nil {
				sums = append(sums, s)
			} else {
				sums = nil
				allKnown = false
				break
			}
		}
		if len(callees) == 0 {
			allKnown = false // stdlib or dynamic: no summaries to consult
		}
	} else {
		allKnown = false
	}

	// Receiver: re-root the callee's receiver reads when possible.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if msel, isSel := info.Selections[sel]; isSel {
			if ts, path, rooted := w.chain(sel.X); rooted {
				if allKnown {
					for _, s := range sums {
						for p := range s.Reads[RecvRoot] {
							for _, t := range ts {
								full := t.extend(joinPath(path, p))
								w.out.addRead(t.root, full)
								if w.onRead != nil {
									w.onRead(t.root, full, sel.X.Pos())
								}
							}
						}
					}
				} else {
					w.read(ts, path, sel.X.Pos())
				}
			} else {
				w.expr(sel.X)
			}
			_ = msel
		} else {
			w.expr(sel.X)
		}
	}

	// Arguments.
	for i, arg := range call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			// Synchronous-callback assumption: the literal runs on this
			// path (ForEach*, Once.Do, serving compute closures).
			if async {
				w.captures(lit)
			} else {
				w.stmtList(lit.Body.List)
			}
			continue
		}
		ts, path, rooted := w.chain(arg)
		if rooted && allKnown {
			for _, s := range sums {
				pi := paramIndexFor(s, i)
				if pi < 0 {
					w.read(ts, path, arg.Pos())
					break
				}
				for p := range s.Reads[pi] {
					for _, t := range ts {
						full := t.extend(joinPath(path, p))
						w.out.addRead(t.root, full)
						if w.onRead != nil {
							w.onRead(t.root, full, arg.Pos())
						}
					}
				}
			}
			continue
		}
		w.expr(arg)
	}

	if async {
		return
	}

	// Lock acquisition on the receiver chain (sync.Mutex / RWMutex).
	w.lockAcquire(call, fun)

	// Transitive effects from module callees.
	for _, c := range callees {
		s := w.m.SummaryOf(c)
		if s == nil {
			continue
		}
		if s.Blocks && !w.out.Blocks {
			w.out.setBlocks(fmt.Sprintf("calls %s%s, which may block: %s", calleeDisplay(c), w.at(call.Pos()), s.BlocksWhy))
		}
		if s.Joins && !w.out.Joins {
			w.out.setJoins(fmt.Sprintf("calls %s%s, which joins workers: %s", calleeDisplay(c), w.at(call.Pos()), s.JoinsWhy))
		}
		if s.Scans && !w.out.Scans {
			w.out.setScans(fmt.Sprintf("calls %s%s, which may scan: %s", calleeDisplay(c), w.at(call.Pos()), s.ScansWhy))
		}
		for _, ref := range s.Acquires {
			w.out.addLock(w.rerootLock(ref, call, fun))
		}
	}
}

// classifyStdlibCall records blocking stdlib calls: WaitGroup.Wait and
// time.Sleep. Cond.Wait and Once.Do are deliberately exempt (see the
// package comment).
func (w *effectWalker) classifyStdlibCall(call *ast.CallExpr, fun ast.Expr) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	info := w.info()
	if msel, isSel := info.Selections[sel]; isSel {
		if fn, ok := msel.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			if fn.Name() == "Wait" && methodRecvName(fn) == "WaitGroup" {
				w.out.setJoins("WaitGroup.Wait" + w.at(call.Pos()))
			}
		}
		return
	}
	if path, ok := pkgSelector(info, sel); ok && path == "time" && sel.Sel.Name == "Sleep" {
		w.out.setBlocks("time.Sleep" + w.at(call.Pos()))
	}
}

// lockAcquire records Lock/RLock calls, rooted at a parameter or the
// receiver when the mutex lives under one.
func (w *effectWalker) lockAcquire(call *ast.CallExpr, fun ast.Expr) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	msel, ok := w.info().Selections[sel]
	if !ok {
		return
	}
	fn, ok := msel.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	recv := methodRecvName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return
	}
	var read bool
	switch fn.Name() {
	case "Lock":
	case "RLock":
		read = true
	default:
		return
	}
	if ts, path, rooted := w.chain(sel.X); rooted && !ts[0].opaque {
		for _, t := range ts {
			w.out.addLock(LockRef{Root: t.root, Path: joinPath(t.prefix, path), Read: read})
		}
		return
	}
	w.out.addLock(LockRef{Root: lockRootFree, Path: exprKey(sel.X), Read: read})
}

// rerootLock maps a callee's LockRef into this caller's frame via the
// call's receiver/arguments. Unmappable refs degrade to lockRootFree
// with a best-effort textual key.
func (w *effectWalker) rerootLock(ref LockRef, call *ast.CallExpr, fun ast.Expr) LockRef {
	var base ast.Expr
	switch {
	case ref.Root == lockRootFree:
		return ref
	case ref.Root == RecvRoot:
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if _, isSel := w.info().Selections[sel]; isSel {
				base = sel.X
			}
		}
	case ref.Root >= 0 && ref.Root < len(call.Args):
		base = call.Args[ref.Root]
	}
	if base == nil {
		return LockRef{Root: lockRootFree, Path: ref.Path, Read: ref.Read}
	}
	if ts, path, rooted := w.chain(base); rooted && len(ts) == 1 && ts[0].prefix == "" && !ts[0].opaque {
		return LockRef{Root: ts[0].root, Path: joinPath(path, ref.Path), Read: ref.Read}
	}
	return LockRef{Root: lockRootFree, Path: joinPath(exprKey(base), ref.Path), Read: ref.Read}
}

// paramIndexFor maps a call-site argument index onto the callee's
// parameter index (folding variadics); -1 when out of range.
func paramIndexFor(s *Summary, arg int) int {
	sig, ok := s.Fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	n := sig.Params().Len()
	if n == 0 {
		return -1
	}
	if arg < n {
		return arg
	}
	if sig.Variadic() {
		return n - 1
	}
	return -1
}

// calleeDisplay renders a callee for messages: pkg.Func or
// (pkg.Type).Method with the module-internal path shortened.
func calleeDisplay(fn *types.Func) string {
	name := fn.FullName()
	if i := strings.Index(name, "/internal/"); i >= 0 {
		name = name[i+len("/internal/"):]
	}
	return name
}
