package analysis

import (
	"go/ast"
	"go/types"
)

// detPrefixes names the deterministic package trees: everything the
// simulator, the census, and the Monte-Carlo risk estimator execute
// must be bit-for-bit replayable from a seed, so wall-clock reads and
// math/rand have no business there. Matching is prefix-based on path
// segments, so internal/faults covers internal/faults/risk.
var detPrefixes = []string{
	"internal/des",
	"internal/cloudsim",
	"internal/faults",
	"internal/spot",
	"internal/model",
	"internal/pareto",
	"internal/demand",
	"internal/schedule",
	"internal/uncertainty",
}

// argless names the math/rand top-level functions that draw from the
// shared global source — unseeded unless someone mutates process-wide
// state, which is exactly the nondeterminism this rule exists to stop.
var arglessRand = map[string]bool{
	"Int": true, "Int31": true, "Int63": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Intn": true, "Int31n": true, "Int63n": true, "Perm": true, "Shuffle": true,
	"N": true, "IntN": true, "Int32N": true, "Int64N": true, "Uint32N": true,
	"Uint64N": true, "UintN": true, "Uint": true,
}

// Nodeterm forbids nondeterminism inside the deterministic packages:
// time.Now, any use of math/rand (seeded or not — its generator is not
// specified to be stable across Go releases, unlike the repo's
// splitmix64 source in internal/detrand), and map iteration that feeds
// ordered output (appends, channel sends, writes) without sorting.
var Nodeterm = &Analyzer{
	Name: "nodeterm",
	Doc: "forbid time.Now, math/rand, and order-sensitive map iteration " +
		"in the deterministic simulation packages",
	Run: runNodeterm,
}

func runNodeterm(pass *Pass) {
	applies := false
	for _, p := range detPrefixes {
		if pathWithin(pass.Path, p) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkg, ok := pkgSelector(pass.Info, n)
				if !ok {
					return true
				}
				switch {
				case pkg == "time" && n.Sel.Name == "Now":
					pass.Reportf(n.Pos(), "time.Now reads the wall clock inside a deterministic package; inject the timestamp (or a clock) from the caller")
				case pkg == "math/rand" || pkg == "math/rand/v2":
					if arglessRand[n.Sel.Name] {
						pass.Reportf(n.Pos(), "rand.%s draws from the unseeded global source; use a seeded repro/internal/detrand.Source threaded from the caller", n.Sel.Name)
					} else {
						pass.Reportf(n.Pos(), "%s is forbidden in deterministic packages (its stream is not stable across Go releases); use repro/internal/detrand", pkg)
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

// checkMapRange flags range-over-map loops whose body produces ordered
// output: appending to a slice, sending on a channel, or writing to a
// stream. Commutative folds (sums, max, counting, map writes) are fine,
// as is collecting keys that are sorted afterwards — suppress those
// with //lint:allow nodeterm <reason>.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: receive order depends on Go's randomized map order; iterate sorted keys instead")
			return true
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); isBuiltin {
						pass.Reportf(n.Pos(), "append inside map iteration: element order depends on Go's randomized map order; iterate sorted keys instead")
					}
				}
			case *ast.SelectorExpr:
				if writerMethod[fun.Sel.Name] {
					pass.Reportf(n.Pos(), "%s inside map iteration: output order depends on Go's randomized map order; iterate sorted keys instead", fun.Sel.Name)
				}
			}
		}
		return true
	})
}

// writerMethod names stream-writing calls that make map order
// observable.
var writerMethod = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}
