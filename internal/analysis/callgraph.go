// The interprocedural layer: a module-wide call graph over every
// checked package, feeding the bottom-up function summaries in
// summary.go and the three interprocedural rules (cachekey, ctxflow-ip,
// lockdiscipline-ip).
//
// Resolution is deliberately conservative and purely go/types-based
// (the zero-dependency rule keeps golang.org/x/tools/go/ssa and
// go/callgraph off the table):
//
//   - direct function and method calls resolve statically through
//     types.Info (Uses / Selections);
//   - interface method calls resolve by a type-set approximation: every
//     named type declared in the module that implements the interface
//     contributes its method as a possible callee. The module is treated
//     as a closed world — an interface satisfied only outside the module
//     resolves to nothing and callers fall back to worst-case
//     assumptions (see summary.go);
//   - calls through function values are unresolved: readers of the
//     graph must treat their effects as unknown.
//
// Edges are collected from the entire body including nested function
// literals — a superset of what the summary walker attributes to the
// function — so Tarjan's SCC order is always safe to compute summaries
// bottom-up over. Method values referenced without a call (handler
// registration, callbacks) contribute reference edges too, so the
// -changed reverse-dependency closure survives dynamic dispatch through
// http.ServeMux and friends.
package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"
)

// FuncInfo is one module function or method with a body.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *CheckedPackage
	// Callees are the statically resolved outgoing edges (calls and
	// method-value references), deduplicated, in first-seen order.
	Callees []*types.Func
}

// ModuleStats summarizes the shared interprocedural state for the
// -timing report and the CI lint-report artifact.
type ModuleStats struct {
	Packages   int
	Functions  int
	Edges      int
	SCCs       int
	LargestSCC int
	// FixpointIters counts summary recomputations beyond the first pass
	// (non-zero only when recursion forced extra rounds).
	FixpointIters int
	// Lookups counts SummaryOf hits from rule workers — how much the
	// shared summary cache was reused across the parallel passes.
	Lookups int64
}

// Module is the interprocedural view shared (read-only) by every rule
// worker of a run: function index, call graph, SCCs, and summaries.
type Module struct {
	Pkgs  []*CheckedPackage
	Funcs map[*types.Func]*FuncInfo

	// sccOf maps each function to its SCC index; sccs lists members in
	// reverse-topological order (callees before callers).
	sccOf map[*types.Func]int
	sccs  [][]*types.Func

	summaries map[*types.Func]*Summary
	stats     ModuleStats
	lookups   int64 // atomic; folded into stats on Stats()

	// namedTypes are the module's named (non-interface) types, the
	// closed world for interface dispatch.
	namedTypes []types.Type

	implMu    sync.Mutex
	implCache map[implKey][]*types.Func
}

type implKey struct {
	iface  *types.Interface
	method string
}

// BuildModule indexes the packages, resolves the call graph, and
// computes every function summary bottom-up. The result is immutable
// and safe for concurrent readers.
func BuildModule(pkgs []*CheckedPackage) *Module {
	// Deduplicate (Universe sets overlap) and order deterministically.
	seen := map[*CheckedPackage]bool{}
	var uniq []*CheckedPackage
	for _, cp := range pkgs {
		if cp == nil || seen[cp] {
			continue
		}
		seen[cp] = true
		uniq = append(uniq, cp)
	}
	sort.SliceStable(uniq, func(i, j int) bool { return uniq[i].Path < uniq[j].Path })

	m := &Module{
		Pkgs:      uniq,
		Funcs:     map[*types.Func]*FuncInfo{},
		sccOf:     map[*types.Func]int{},
		summaries: map[*types.Func]*Summary{},
		implCache: map[implKey][]*types.Func{},
	}
	m.stats.Packages = len(uniq)
	for _, cp := range uniq {
		m.indexPackage(cp)
		m.collectNamedTypes(cp)
	}
	for _, cp := range uniq {
		for _, file := range cp.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := cp.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := m.Funcs[obj]
				fi.Callees = m.collectCallees(cp, fd)
				m.stats.Edges += len(fi.Callees)
			}
		}
	}
	m.condense()
	m.computeSummaries()
	return m
}

// indexPackage registers every declared function/method with a body.
func (m *Module) indexPackage(cp *CheckedPackage) {
	for _, file := range cp.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := cp.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			m.Funcs[obj] = &FuncInfo{Obj: obj, Decl: fd, Pkg: cp}
		}
	}
	m.stats.Functions = len(m.Funcs)
}

// collectNamedTypes records the package's named non-interface types —
// the candidate implementers for interface dispatch.
func (m *Module) collectNamedTypes(cp *CheckedPackage) {
	if cp.Pkg == nil {
		return
	}
	scope := cp.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		m.namedTypes = append(m.namedTypes, named)
	}
}

// collectCallees resolves every call and method-value reference in the
// declaration, nested literals included (a superset of the summary
// walker's sync-call set, so SCC order is always safe).
func (m *Module) collectCallees(cp *CheckedPackage, fd *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	added := map[*types.Func]bool{}
	add := func(fns []*types.Func) {
		for _, fn := range fns {
			if fn == nil || added[fn] {
				continue
			}
			if _, inModule := m.Funcs[fn]; !inModule {
				continue
			}
			added[fn] = true
			out = append(out, fn)
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fns, _ := m.ResolveCall(cp.Info, n)
			add(fns)
		case *ast.SelectorExpr:
			// Method value (s.handleX passed as a callback): a reference
			// edge even though it is not a call here.
			if sel, ok := cp.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					add([]*types.Func{fn})
				}
			}
		case *ast.Ident:
			if fn, ok := cp.Info.Uses[n].(*types.Func); ok && fn.Type() != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					add([]*types.Func{fn})
				}
			}
		}
		return true
	})
	return out
}

// ResolveCall statically resolves a call expression to its possible
// module callees. allKnown reports whether the returned set is believed
// complete (closed-world): false for calls through function values and
// for interface methods with no module implementer, in which case
// callers must assume the worst.
func (m *Module) ResolveCall(info *types.Info, call *ast.CallExpr) ([]*types.Func, bool) {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return []*types.Func{obj}, true
		case *types.Builtin:
			return nil, true
		case *types.TypeName:
			return nil, true // conversion
		}
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return nil, true
		}
		return nil, false // function value
	case *ast.SelectorExpr:
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return nil, true // qualified conversion
		}
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, false // func-typed field
			}
			recv := sel.Recv()
			if recv != nil {
				if iface, ok := recv.Underlying().(*types.Interface); ok {
					impls := m.implementers(iface, fn.Name())
					return impls, len(impls) > 0
				}
			}
			return []*types.Func{fn}, true
		}
		// Package-qualified call.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{fn}, true
		}
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return nil, true // pkg.Type(x) conversion
		}
		return nil, false
	case *ast.FuncLit:
		return nil, true // handled inline by the walkers
	}
	return nil, false
}

// implementers returns the module methods satisfying an interface
// method, under the closed-world approximation.
func (m *Module) implementers(iface *types.Interface, method string) []*types.Func {
	key := implKey{iface: iface, method: method}
	m.implMu.Lock()
	defer m.implMu.Unlock()
	if fns, ok := m.implCache[key]; ok {
		return fns
	}
	var fns []*types.Func
	for _, t := range m.namedTypes {
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, nil, method)
		if fn, ok := obj.(*types.Func); ok {
			if _, inModule := m.Funcs[fn]; inModule {
				fns = append(fns, fn)
			}
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	m.implCache[key] = fns
	return fns
}

// condense runs Tarjan's algorithm; m.sccs ends up in reverse
// topological order (every SCC after all SCCs it calls into), which is
// exactly the bottom-up summary order.
func (m *Module) condense() {
	fns := make([]*types.Func, 0, len(m.Funcs))
	for fn := range m.Funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })

	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	next := 0

	// Iterative Tarjan: recursion depth on a deep call chain could
	// otherwise overflow the goroutine stack inside a fuzzer.
	type frame struct {
		fn *types.Func
		ci int // next callee index to visit
	}
	var visit func(root *types.Func)
	visit = func(root *types.Func) {
		frames := []frame{{fn: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			callees := m.Funcs[f.fn].Callees
			if f.ci < len(callees) {
				c := callees[f.ci]
				f.ci++
				if _, seen := index[c]; !seen {
					index[c] = next
					low[c] = next
					next++
					stack = append(stack, c)
					onStack[c] = true
					frames = append(frames, frame{fn: c})
				} else if onStack[c] {
					if index[c] < low[f.fn] {
						low[f.fn] = index[c]
					}
				}
				continue
			}
			// All callees done: maybe pop an SCC, then propagate lowlink.
			if low[f.fn] == index[f.fn] {
				var scc []*types.Func
				for {
					n := len(stack) - 1
					fn := stack[n]
					stack = stack[:n]
					onStack[fn] = false
					scc = append(scc, fn)
					if fn == f.fn {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return scc[i].FullName() < scc[j].FullName() })
				id := len(m.sccs)
				for _, fn := range scc {
					m.sccOf[fn] = id
				}
				m.sccs = append(m.sccs, scc)
			}
			done := *f
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done.fn] < low[parent.fn] {
					low[parent.fn] = low[done.fn]
				}
			}
		}
	}
	for _, fn := range fns {
		if _, seen := index[fn]; !seen {
			visit(fn)
		}
	}
	m.stats.SCCs = len(m.sccs)
	for _, scc := range m.sccs {
		if len(scc) > m.stats.LargestSCC {
			m.stats.LargestSCC = len(scc)
		}
	}
}

// PackageDeps projects the call graph onto packages: for each package
// path, the set of package paths it calls or references into. Import
// edges are included, so the -changed closure covers both static
// imports and interface-dispatch edges.
func (m *Module) PackageDeps() map[string]map[string]bool {
	deps := map[string]map[string]bool{}
	edge := func(from, to string) {
		if from == to || from == "" || to == "" {
			return
		}
		if deps[from] == nil {
			deps[from] = map[string]bool{}
		}
		deps[from][to] = true
	}
	pathOf := map[*types.Package]string{}
	for _, cp := range m.Pkgs {
		pathOf[cp.Pkg] = cp.Path
		for _, imp := range cp.Imports {
			edge(cp.Path, imp)
		}
	}
	for fn, fi := range m.Funcs {
		for _, callee := range fi.Callees {
			ci, ok := m.Funcs[callee]
			if !ok {
				continue
			}
			_ = fn
			edge(fi.Pkg.Path, ci.Pkg.Path)
		}
	}
	return deps
}
