// The lockdiscipline-ip rule: the intra rule (lockdiscipline.go)
// forbids blocking operations while a lock is held, but only sees the
// current frame — f.mu.Lock(); f.helper() is invisible to it even when
// helper parks on a channel or re-acquires f.mu (the classic
// non-reentrant self-deadlock through a refactored helper; SwapEngine
// vs refreshDegradedGauge is the live example this repo fixed by
// ordering the unlock first). This rule closes the gap with the
// interprocedural summaries: at every call made while a lock is held,
// the callee's summary answers "may it block?" and "which locks may it
// acquire?".
//
// Held-lock state is the intra rule's own dataflow solution — the same
// CFG, lattice, and transfer (replayed silently), so both rules agree
// about what is held where. Callee lock references are re-rooted at
// the call site: a summary entry Lock(recv.mu) on the call
// f.refreshDegradedGauge() becomes "f.mu", the same identity the intra
// rule tracks, so a held "f.mu" matches exactly. A write-acquire of a
// held lock (or any acquire crossing read/write with one) is reported
// as a potential self-deadlock; a callee that may block on goroutine
// coordination is reported like the intra rule's direct channel-op
// finding.
//
// State is taken at statement granularity (the solved in-state of the
// block, replayed statement by statement); a lock acquired and a
// flagged call in the same statement see the pre-statement state,
// which in practice never matters for lock code written on separate
// lines.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockdisciplineIP is the twelfth analyzer; see the comment above.
var LockdisciplineIP = &Analyzer{
	Name:        "lockdisciplineip",
	Doc:         "While a lock is held, no callee may block on goroutine coordination or re-acquire the same lock (checked through summaries)",
	Run:         runLockdisciplineIP,
	NeedsModule: true,
}

func runLockdisciplineIP(pass *Pass) {
	in := false
	for _, prefix := range lockdisciplineScope {
		if pathWithin(pass.Path, prefix) {
			in = true
			break
		}
	}
	if !in || pass.Module == nil {
		return
	}
	intra := &lockChecker{pass: pass, reported: map[string]bool{}}
	c := &lockIPChecker{pass: pass, intra: intra, reported: map[string]bool{}}
	forEachFuncBody(pass, func(body *ast.BlockStmt) {
		c.checkFunc(body)
	})
}

type lockIPChecker struct {
	pass     *Pass
	intra    *lockChecker // reused for lock events and state transfer, never for reporting
	reported map[string]bool
}

func (c *lockIPChecker) reportOnce(pos token.Pos, format string, args ...interface{}) {
	msg := formatMsg(format, args...)
	key := c.pass.Fset.Position(pos).String() + "\x00" + msg
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

func (c *lockIPChecker) checkFunc(body *ast.BlockStmt) {
	g := BuildCFG(body)
	boundary := lockState{"": newLockPath()}
	res := Forward[lockState](g, lockLattice{}, boundary, func(b *CFGBlock, in lockState) lockState {
		return c.intra.apply(b, in, false)
	})
	for _, b := range g.Reachable() {
		c.replay(b, res.In[b])
	}
}

// replay walks one block statement by statement: check the calls in
// the statement against every incoming path's held set, then advance
// the state with the intra rule's events.
func (c *lockIPChecker) replay(b *CFGBlock, in lockState) {
	if len(in) == 0 {
		return
	}
	paths := make([]lockPath, 0, len(in))
	for _, p := range in {
		paths = append(paths, p.clone())
	}
	for _, stmt := range b.Stmts {
		anyHeld := false
		for _, p := range paths {
			if len(p.held) > 0 {
				anyHeld = true
				break
			}
		}
		if anyHeld {
			c.checkStmtCalls(stmt, paths)
		}
		for _, e := range c.intra.events(stmt) {
			for i := range paths {
				c.intra.applyEvent(e, &paths[i], false)
			}
		}
	}
}

// checkStmtCalls finds the synchronous calls in a statement and checks
// each against the held sets. Function literals are their own frames;
// go'd and deferred calls do not run at this point of the path.
func (c *lockIPChecker) checkStmtCalls(stmt ast.Node, paths []lockPath) {
	switch stmt.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.checkCall(n, paths)
		}
		return true
	})
}

func (c *lockIPChecker) checkCall(call *ast.CallExpr, paths []lockPath) {
	callees, _ := c.pass.Module.ResolveCall(c.pass.Info, call)
	for _, callee := range callees {
		sum := c.pass.Module.SummaryOf(callee)
		if sum == nil {
			continue
		}
		for _, p := range paths {
			if len(p.held) == 0 {
				continue
			}
			if sum.Blocks {
				c.reportOnce(call.Pos(), "call to %s while holding %s: the callee may block on other goroutines (%s) — release the lock first", calleeDisplay(callee), heldList(p), sum.BlocksWhy)
			} else if sum.Joins {
				c.reportOnce(call.Pos(), "call to %s while holding %s: the callee parks on a worker join (%s) — release the lock first", calleeDisplay(callee), heldList(p), sum.JoinsWhy)
			}
			for _, ref := range sum.Acquires {
				id, ok := c.rerootAtCall(ref, call)
				if !ok {
					continue
				}
				if held, isRead := heldMatch(p, id, ref.Read); held {
					kind := "re-acquires"
					if isRead != ref.Read {
						kind = "acquires the other mode of"
					}
					c.reportOnce(call.Pos(), "call to %s while holding %s: the callee %s %s — self-deadlock (the lock is not reentrant)", calleeDisplay(callee), heldList(p), kind, displayLock(lockID(id, ref.Read)))
				}
			}
		}
	}
}

// rerootAtCall maps a callee LockRef into this caller's lock identity
// space (the intra rule's exprKey text). ok=false when the base cannot
// be named here.
func (c *lockIPChecker) rerootAtCall(ref LockRef, call *ast.CallExpr) (string, bool) {
	switch {
	case ref.Root == lockRootFree:
		return ref.Path, ref.Path != ""
	case ref.Root == RecvRoot:
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		if _, isSel := c.pass.Info.Selections[sel]; !isSel {
			return "", false
		}
		return joinKey(exprKey(sel.X), ref.Path), true
	case ref.Root >= 0 && ref.Root < len(call.Args):
		base := exprKey(call.Args[ref.Root])
		if base == "" {
			return "", false
		}
		return joinKey(base, ref.Path), true
	}
	return "", false
}

func joinKey(base, path string) string {
	if path == "" {
		return base
	}
	return base + "." + path
}

func lockID(base string, read bool) string {
	if read {
		return "R:" + base
	}
	return base
}

// heldMatch reports whether the path holds a lock with the same base
// identity, in a combination that deadlocks against a new acquire:
// any-held vs write-acquire, or write-held vs read-acquire. Read-held
// vs read-acquire is allowed (shared mode).
func heldMatch(p lockPath, base string, acquireRead bool) (held, heldRead bool) {
	for id := range p.held {
		hr := strings.HasPrefix(id, "R:")
		if strings.TrimPrefix(id, "R:") != base {
			continue
		}
		if !acquireRead || !hr {
			return true, hr
		}
	}
	return false, false
}
