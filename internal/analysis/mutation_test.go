package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests are the negative controls for the flow-sensitive rules:
// re-introduce the exact production bugs the rules were built to catch
// — delete the ctx poll from core's scan loop, skip the clone in
// serving's SwapEngine — and assert lint fails. TestModuleIsClean is
// the positive control; together they show the rules separate the real
// tree from its own mutants rather than passing everything.

// copyPackageGo copies a package's non-test Go files into dst and
// returns their names.
func copyPackageGo(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, n))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, n), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// mutateFile rewrites one occurrence of from into to, failing loudly if
// the anchor text drifted (so a refactor of the production code breaks
// this test visibly instead of silently testing nothing).
func mutateFile(t *testing.T, path, from, to string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), from); n != 1 {
		t.Fatalf("mutation anchor occurs %d times in %s (want exactly 1); update the anchor to match the current source:\n%s", n, filepath.Base(path), from)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), from, to, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeIdentity gives the mutated copy a module-internal import path in
// the rule's scope (a sibling of the real package, so the real one
// stays cached and untouched).
func writeIdentity(t *testing.T, dir, pkg, as string) {
	t.Helper()
	src := fmt.Sprintf("//celialint:as %s\n\npackage %s\n", as, pkg)
	if err := os.WriteFile(filepath.Join(dir, "zz_lint_identity.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMutantsTripFlowRules(t *testing.T) {
	l := newTestLoader(t)

	t.Run("ctxflow/scanSearch-poll-deleted", func(t *testing.T) {
		dir := t.TempDir()
		copyPackageGo(t, "../core", dir)
		mutateFile(t, filepath.Join(dir, "core.go"),
			"\t\tif b := &bests[worker]; b.seen&ctxPollMask == ctxPollMask {\n"+
				"\t\t\tb.seen++\n"+
				"\t\t\tif ctx.Err() != nil {\n"+
				"\t\t\t\tstop.Store(true)\n"+
				"\t\t\t\treturn\n"+
				"\t\t\t}\n"+
				"\t\t} else {\n"+
				"\t\t\tb.seen++\n"+
				"\t\t}\n",
			"\t\tbests[worker].seen++\n")
		writeIdentity(t, dir, "core", "repro/internal/core/lintmutant")
		cp, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("mutated core no longer type-checks: %v", err)
		}
		findings := Run([]*Analyzer{Ctxflow}, []*CheckedPackage{cp})
		if len(findings) == 0 {
			t.Fatal("deleting the ctx poll from scanSearchCtx's scan closure must trip ctxflow, got 0 findings")
		}
		for _, f := range findings {
			if f.Rule != "ctxflow" {
				t.Errorf("unexpected rule %q: %s", f.Rule, f.String())
			}
		}
	})

	t.Run("atomicpub/SwapEngine-clone-skipped", func(t *testing.T) {
		dir := t.TempDir()
		copyPackageGo(t, "../serving", dir)
		mutateFile(t, filepath.Join(dir, "lifecycle.go"),
			"\tnext := make(map[string]*core.Engine, len(old)+1)\n"+
				"\tfor k, v := range old {\n"+
				"\t\tnext[k] = v\n"+
				"\t}\n",
			"\tnext := old\n")
		writeIdentity(t, dir, "serving", "repro/internal/serving/lintmutant")
		cp, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("mutated serving no longer type-checks: %v", err)
		}
		findings := Run([]*Analyzer{Atomicpub}, []*CheckedPackage{cp})
		if len(findings) == 0 {
			t.Fatal("aliasing instead of cloning in SwapEngine must trip atomicpub, got 0 findings")
		}
		for _, f := range findings {
			if f.Rule != "atomicpub" {
				t.Errorf("unexpected rule %q: %s", f.Rule, f.String())
			}
		}
	})
}

// TestMutantsTripInterproceduralRules re-introduces the production
// bugs the interprocedural rules were built to catch: drop a Query
// field from the serving cache key, swap the context-threaded risk
// estimate back to the context-free one, and pull a lock-re-acquiring
// call inside the critical section. Each mutant must fail lint under
// exactly the rule built for it.
func TestMutantsTripInterproceduralRules(t *testing.T) {
	l := newTestLoader(t)
	// The interprocedural rules need the whole-module summary universe:
	// the schedule mutant's findings hinge on the summary of
	// risk.Estimate, which lives in a different package.
	if _, err := l.LoadModule(); err != nil {
		t.Fatal(err)
	}

	assertOnly := func(t *testing.T, findings []Finding, rule, what string) {
		t.Helper()
		if len(findings) == 0 {
			t.Fatalf("%s must trip %s, got 0 findings", what, rule)
		}
		for _, f := range findings {
			if f.Rule != rule {
				t.Errorf("unexpected rule %q: %s", f.Rule, f.String())
			}
		}
	}

	t.Run("cachekey/key-builder-drops-BudgetUSD", func(t *testing.T) {
		dir := t.TempDir()
		copyPackageGo(t, "../serving", dir)
		mutateFile(t, filepath.Join(dir, "serving.go"),
			"[5]float64{q.N, q.A, float64(q.DeadlineHours), float64(q.BudgetUSD), q.HazardPerHour}",
			"[4]float64{q.N, q.A, float64(q.DeadlineHours), q.HazardPerHour}")
		writeIdentity(t, dir, "serving", "repro/internal/serving/lintmutant_cachekey")
		cp, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("mutated serving no longer type-checks: %v", err)
		}
		assertOnly(t, Run([]*Analyzer{Cachekey}, []*CheckedPackage{cp}),
			"cachekey", "dropping BudgetUSD from the key builder")
	})

	t.Run("ctxflowip/risk-timeline-drops-ctx", func(t *testing.T) {
		dir := t.TempDir()
		copyPackageGo(t, "../schedule", dir)
		mutateFile(t, filepath.Join(dir, "risk.go"),
			"est, err := risk.EstimateContext(ctx, app, tr.Params(t), st.Config, cat, risk.Options{",
			"est, err := risk.Estimate(app, tr.Params(t), st.Config, cat, risk.Options{")
		writeIdentity(t, dir, "schedule", "repro/internal/schedule/lintmutant_ctxflowip")
		cp, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("mutated schedule no longer type-checks: %v", err)
		}
		assertOnly(t, Run([]*Analyzer{CtxflowIP}, []*CheckedPackage{cp}),
			"ctxflowip", "calling the context-free risk.Estimate from the timeline")
	})

	t.Run("lockdisciplineip/gauge-refresh-under-lock", func(t *testing.T) {
		dir := t.TempDir()
		copyPackageGo(t, "../serving", dir)
		mutateFile(t, filepath.Join(dir, "lifecycle.go"),
			"\tf.mu.Unlock()\n\tf.refreshDegradedGauge()\n",
			"\tf.refreshDegradedGauge()\n\tf.mu.Unlock()\n")
		writeIdentity(t, dir, "serving", "repro/internal/serving/lintmutant_lockip")
		cp, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("mutated serving no longer type-checks: %v", err)
		}
		assertOnly(t, Run([]*Analyzer{LockdisciplineIP}, []*CheckedPackage{cp}),
			"lockdisciplineip", "re-acquiring f.mu via refreshDegradedGauge while holding it")
	})
}
