package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table IV", "Application", "Time (hr)", "Cost ($)")
	tb.AddRow("galaxy(65536,8000)", 24.3, 98.74)
	tb.AddRow("x264(8000,20)", 20.9, 8.75)
	s := tb.String()
	for _, want := range []string{"Table IV", "Application", "galaxy", "24.30", "8.75", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbbbb")
	tb.AddRow("xxxxxxxx", 1.0)
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count = %d: %q", len(lines), lines)
	}
	// The header's second column must start at the same offset as the
	// data row's.
	if strings.Index(lines[0], "bbbbbb") != strings.Index(lines[2], "1.00") {
		t.Fatalf("misaligned columns:\n%s", tb.String())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(1.23456e9)
	tb.AddRow(0.0000123)
	tb.AddRow(math.NaN())
	tb.AddRow(0.0)
	s := tb.String()
	for _, want := range []string{"1.23e+09", "1.23e-05", "-", "0.00"} {
		if !strings.Contains(s, want) {
			t.Errorf("float formatting missing %q:\n%s", want, s)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "x", "y")
	tb.AddRow(1.0, "a,b")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "x,y\n") {
		t.Fatalf("csv = %q", got)
	}
	if !strings.Contains(got, `"a,b"`) {
		t.Fatalf("csv quoting broken: %q", got)
	}
}

func TestChart(t *testing.T) {
	c := NewChart("Fig 5a", "n", "$")
	if err := c.Add(Series{Name: "24hr", X: []float64{1, 2, 3}, Y: []float64{10, 40, 90}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Series{Name: "72hr", X: []float64{1, 2, 3}, Y: []float64{5, 20, 45}}); err != nil {
		t.Fatal(err)
	}
	s := c.String()
	for _, want := range []string{"Fig 5a", "o = 24hr", "+ = 72hr", "$: 5 .. 90"} {
		if !strings.Contains(s, want) {
			t.Errorf("chart missing %q:\n%s", want, s)
		}
	}
}

func TestChartMismatchedSeries(t *testing.T) {
	c := NewChart("x", "x", "y")
	if err := c.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("empty", "x", "y")
	if !strings.Contains(c.String(), "no data") {
		t.Fatalf("empty chart = %q", c.String())
	}
}

func TestChartDegenerateRange(t *testing.T) {
	c := NewChart("flat", "x", "y")
	if err := c.Add(Series{Name: "s", X: []float64{5, 5}, Y: []float64{3, 3}}); err != nil {
		t.Fatal(err)
	}
	s := c.String() // must not panic or divide by zero
	if !strings.Contains(s, "flat") {
		t.Fatal("degenerate chart failed to render")
	}
}
