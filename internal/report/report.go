// Package report renders experiment results as aligned text tables,
// CSV, and simple ASCII charts — the output surfaces of the cmd tools
// and the benchmark harness.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
			continue
		case string:
			row[i] = v
			continue
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && (math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is one named line of an x-y chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders series as a crude ASCII scatter for quick terminal
// inspection of the figures' shapes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	series []Series
}

// NewChart builds a chart with sensible terminal dimensions.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// Add appends a series; X and Y must have equal lengths.
func (c *Chart) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
	}
	c.series = append(c.series, s)
	return nil
}

// String renders the chart.
func (c *Chart) String() string {
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range c.series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			if first {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if first {
		return c.Title + "\n(no data)\n"
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	marks := "o+x*#@%&"
	for si, s := range c.series {
		m := marks[si%len(marks)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(c.Width-1))
			row := c.Height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(c.Height-1))
			grid[row][col] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	fmt.Fprintf(&b, "%s: %.4g .. %.4g\n", c.YLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", c.Width))
	fmt.Fprintf(&b, "%s: %.4g .. %.4g\n", c.XLabel, minX, maxX)
	for si, s := range c.series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
