package perf

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestAccountBasic(t *testing.T) {
	a := NewAccount()
	a.Add(FloatOps, 100)
	a.Add(IntOps, 50)
	a.Add(FloatOps, 25)
	if got := a.Count(FloatOps); got != 125 {
		t.Fatalf("Count(fp) = %d, want 125", got)
	}
	if got := a.Count(IntOps); got != 50 {
		t.Fatalf("Count(int) = %d, want 50", got)
	}
	if got := a.Count(BranchOps); got != 0 {
		t.Fatalf("Count(branch) = %d, want 0", got)
	}
	if got := float64(a.Total()); got != 175 {
		t.Fatalf("Total = %v, want 175", got)
	}
}

func TestAccountNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewAccount().Add(IntOps, -1)
}

func TestAccountConcurrent(t *testing.T) {
	a := NewAccount()
	cell := a.Class(FloatOps) // create before spawning, per contract
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				cell.Add(3)
			}
		}()
	}
	wg.Wait()
	if got := a.Count(FloatOps); got != 24000 {
		t.Fatalf("concurrent Count = %d, want 24000", got)
	}
}

func TestBreakdownSorted(t *testing.T) {
	a := NewAccount()
	a.Add(MemOps, 1)
	a.Add(BranchOps, 2)
	a.Add(FloatOps, 3)
	bd := a.Breakdown()
	if len(bd) != 3 {
		t.Fatalf("Breakdown len = %d, want 3", len(bd))
	}
	for i := 1; i < len(bd); i++ {
		if bd[i].Class < bd[i-1].Class {
			t.Fatalf("Breakdown not sorted: %v", bd)
		}
	}
}

func TestReportMentionsTotal(t *testing.T) {
	a := NewAccount()
	a.Add(SetupOps, 42)
	r := a.Report()
	if !strings.Contains(r, "instructions (total)") || !strings.Contains(r, "42") {
		t.Fatalf("Report missing content:\n%s", r)
	}
}

// Property: Total equals the sum of per-class counts for any sequence of
// additions.
func TestTotalIsSumProperty(t *testing.T) {
	f := func(fp, in, mem uint16) bool {
		a := NewAccount()
		a.Add(FloatOps, int64(fp))
		a.Add(IntOps, int64(in))
		a.Add(MemOps, int64(mem))
		return float64(a.Total()) == float64(int64(fp)+int64(in)+int64(mem))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
