// Package perf simulates the hardware performance-counter facility CELIA
// uses on its local baseline server. The paper measures application
// resource demand with the Linux perf utility (retired-instruction
// counts from non-intrusive hardware counters); cloud providers block
// counter access under virtualization, which is why CELIA profiles on a
// local machine with the same micro-architecture.
//
// Here, application kernels execute their real computation in Go and
// account each source-level operation at its calibrated retired-
// instruction equivalent (e.g. one n-body pair interaction retires ~262
// x86 instructions). An Account plays the role of a `perf stat` session:
// it accumulates event counts per class and reports totals.
package perf

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/units"
)

// EventClass labels a class of retired instructions, mirroring the
// grouping a perf report would show. Classes exist for reporting and
// testing; the demand models consume only the total.
type EventClass string

// The event classes CELIA's kernels account under.
const (
	FloatOps   EventClass = "fp"     // floating-point arithmetic
	IntOps     EventClass = "int"    // integer/ALU work
	MemOps     EventClass = "mem"    // loads/stores
	BranchOps  EventClass = "branch" // control flow
	SetupOps   EventClass = "setup"  // application initialization
	KernelMisc EventClass = "misc"   // uncategorized
)

// Account accumulates retired-instruction counts, like one `perf stat`
// run. The zero value is ready to use. Counts are stored as atomic
// integers so parallel kernels (the apps are highly parallel) can share
// one Account; instruction equivalents are integral by construction.
type Account struct {
	counts map[EventClass]*atomic.Int64
}

// NewAccount returns an empty counting session.
func NewAccount() *Account {
	return &Account{counts: make(map[EventClass]*atomic.Int64)}
}

// Class returns the counter cell for a class, creating it on first use.
// Callers that add from multiple goroutines must obtain the cell before
// spawning them (map writes are not synchronized; cell adds are).
func (a *Account) Class(c EventClass) *atomic.Int64 {
	cell, ok := a.counts[c]
	if !ok {
		cell = new(atomic.Int64)
		a.counts[c] = cell
	}
	return cell
}

// Add accounts n retired instructions under class c. Negative counts are
// rejected: hardware counters only move forward.
func (a *Account) Add(c EventClass, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("perf: negative count %d for class %s", n, c))
	}
	a.Class(c).Add(n)
}

// Count reports the accumulated count for one class.
func (a *Account) Count(c EventClass) int64 {
	if cell, ok := a.counts[c]; ok {
		return cell.Load()
	}
	return 0
}

// Total reports all retired instructions across classes — the quantity
// CELIA uses as the resource-demand proxy (D in Table I).
func (a *Account) Total() units.Instructions {
	var sum int64
	for _, cell := range a.counts {
		sum += cell.Load()
	}
	return units.Instructions(sum)
}

// Breakdown returns per-class counts sorted by class name, for reports.
func (a *Account) Breakdown() []ClassCount {
	out := make([]ClassCount, 0, len(a.counts))
	for c, cell := range a.counts {
		out = append(out, ClassCount{Class: c, Count: cell.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// ClassCount is one row of a Breakdown.
type ClassCount struct {
	Class EventClass
	Count int64
}

func (cc ClassCount) String() string {
	return fmt.Sprintf("%12d  %s", cc.Count, cc.Class)
}

// Report formats the account like a `perf stat` summary.
func (a *Account) Report() string {
	s := "Performance counter stats:\n\n"
	for _, cc := range a.Breakdown() {
		s += "  " + cc.String() + "\n"
	}
	s += fmt.Sprintf("\n  %12.0f  instructions (total)\n", float64(a.Total()))
	return s
}
