// Package vm models a single provisioned cloud instance: its vCPUs
// (hyper-threads of the host's physical cores), the per-vCPU
// instruction retirement rate an application achieves on it, boot
// latency, and the run-to-run performance variation the paper
// attributes to processor sharing on virtualized hosts [26].
package vm

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/ec2"
	"repro/internal/units"
	"repro/internal/workload"
)

// JitterAmplitude bounds per-instance performance variation: a
// provisioned instance lands within ±2% of nominal, deterministically
// derived from the provisioning seed.
const JitterAmplitude = 0.02

// Instance is one provisioned VM.
type Instance struct {
	ID       int
	Type     ec2.InstanceType
	BootTime units.Seconds
	// perVCPU is the application's effective retirement rate per vCPU
	// on this instance, including the host's jitter factor.
	perVCPU units.Rate
	jitter  float64
}

// Provision creates an instance of the given type for the application.
// The seed and id make the instance's jitter deterministic.
func Provision(id int, typ ec2.InstanceType, app workload.App, seed uint64, boot units.Seconds) Instance {
	nominal := app.IPC(typ.Category) * typ.BaseGHz // GIPS per vCPU
	h := apps.Hash01(seed*1_000_003 + uint64(id)*7919)
	jitter := 1 + JitterAmplitude*(2*h-1)
	return Instance{
		ID:       id,
		Type:     typ,
		BootTime: boot,
		perVCPU:  units.GIPS(nominal * jitter),
		jitter:   jitter,
	}
}

// Replacement provisions a substitute for a failed instance: the same
// type and boot latency, but a fresh id and therefore fresh jitter —
// the replacement lands on a different host. Used by the simulator's
// respawn-on-failure recovery policy.
func Replacement(id int, failed Instance, app workload.App, seed uint64) Instance {
	return Provision(id, failed.Type, app, seed, failed.BootTime)
}

// PerVCPURate reports the effective per-vCPU rate.
func (in Instance) PerVCPURate() units.Rate { return in.perVCPU }

// Slowed returns a copy of the instance degraded by the factor (> 1 =
// slower), modeling a straggler placed on an oversubscribed host.
func (in Instance) Slowed(factor float64) Instance {
	if factor <= 0 {
		factor = 1
	}
	out := in
	out.perVCPU = in.perVCPU / units.Rate(factor)
	out.jitter = in.jitter / factor
	return out
}

// Rate reports the instance's aggregate rate with all vCPUs loaded.
func (in Instance) Rate() units.Rate {
	return in.perVCPU * units.Rate(in.Type.VCPUs)
}

// Jitter reports the instance's performance factor relative to nominal.
func (in Instance) Jitter() float64 { return in.jitter }

// ExecTime reports how long this instance needs to retire the given
// instructions on one vCPU.
func (in Instance) ExecTime(d units.Instructions) units.Seconds {
	return units.Time(d, in.perVCPU)
}

func (in Instance) String() string {
	return fmt.Sprintf("vm-%d:%s(×%.3f)", in.ID, in.Type.Name, in.jitter)
}
