package vm

import (
	"math"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/ec2"
	"repro/internal/units"
)

func TestProvisionDeterministic(t *testing.T) {
	typ, _ := ec2.Oregon().Lookup("c4.large")
	a := Provision(3, typ, galaxy.App{}, 42, 45)
	b := Provision(3, typ, galaxy.App{}, 42, 45)
	if a.PerVCPURate() != b.PerVCPURate() {
		t.Fatal("provisioning not deterministic for equal seed/id")
	}
	c := Provision(4, typ, galaxy.App{}, 42, 45)
	if a.PerVCPURate() == c.PerVCPURate() {
		t.Fatal("different instances got identical jitter (suspicious)")
	}
}

func TestJitterBounded(t *testing.T) {
	typ, _ := ec2.Oregon().Lookup("m4.xlarge")
	for id := 0; id < 200; id++ {
		in := Provision(id, typ, galaxy.App{}, 7, 45)
		if j := in.Jitter(); j < 1-JitterAmplitude || j > 1+JitterAmplitude {
			t.Fatalf("jitter %v outside ±%v", j, JitterAmplitude)
		}
	}
}

func TestRateNearNominal(t *testing.T) {
	typ, _ := ec2.Oregon().Lookup("c4.large")
	var app galaxy.App
	nominal := app.IPC(ec2.C4) * typ.BaseGHz * float64(typ.VCPUs) // GIPS
	in := Provision(0, typ, app, 1, 45)
	got := in.Rate().GIPSValue()
	if math.Abs(got-nominal)/nominal > JitterAmplitude+1e-9 {
		t.Fatalf("aggregate rate %v deviates > jitter from nominal %v", got, nominal)
	}
}

func TestExecTime(t *testing.T) {
	typ, _ := ec2.Oregon().Lookup("c4.large")
	in := Provision(0, typ, galaxy.App{}, 1, 45)
	d := units.GI(10)
	want := float64(d) / float64(in.PerVCPURate())
	if got := float64(in.ExecTime(d)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExecTime = %v, want %v", got, want)
	}
}

func TestStringMentionsType(t *testing.T) {
	typ, _ := ec2.Oregon().Lookup("r3.2xlarge")
	in := Provision(5, typ, galaxy.App{}, 1, 45)
	if s := in.String(); s == "" || len(s) < 10 {
		t.Fatalf("String = %q", s)
	}
}

func TestSlowed(t *testing.T) {
	typ, _ := ec2.Oregon().Lookup("c4.large")
	in := Provision(0, typ, galaxy.App{}, 1, 45)
	slow := in.Slowed(2)
	if math.Abs(float64(slow.PerVCPURate())*2-float64(in.PerVCPURate())) > 1e-9 {
		t.Fatalf("Slowed(2) rate = %v, want half of %v", slow.PerVCPURate(), in.PerVCPURate())
	}
	if slow.Jitter() >= in.Jitter() {
		t.Fatal("Slowed did not reduce the jitter factor")
	}
	// Non-positive factors are ignored rather than dividing by zero.
	same := in.Slowed(0)
	if same.PerVCPURate() != in.PerVCPURate() {
		t.Fatalf("Slowed(0) changed the rate")
	}
	neg := in.Slowed(-3)
	if neg.PerVCPURate() != in.PerVCPURate() {
		t.Fatalf("Slowed(-3) changed the rate")
	}
}

func TestRateAggregatesVCPUs(t *testing.T) {
	typ, _ := ec2.Oregon().Lookup("m4.2xlarge")
	in := Provision(0, typ, galaxy.App{}, 1, 45)
	want := float64(in.PerVCPURate()) * 8
	if math.Abs(float64(in.Rate())-want) > 1e-9 {
		t.Fatalf("Rate = %v, want %v", in.Rate(), want)
	}
}

func TestReplacementFreshJitterSameType(t *testing.T) {
	typ, _ := ec2.Oregon().Lookup("c4.xlarge")
	orig := Provision(0, typ, galaxy.App{}, 7, 45)
	repl := Replacement(10, orig, galaxy.App{}, 7)
	if repl.ID != 10 {
		t.Fatalf("replacement id %d, want 10", repl.ID)
	}
	if repl.Type.Name != orig.Type.Name || repl.BootTime != orig.BootTime {
		t.Fatal("replacement changed type or boot latency")
	}
	// Fresh id → fresh host → independent jitter draw.
	if repl.Jitter() == orig.Jitter() {
		t.Fatal("replacement inherited the failed host's jitter")
	}
	// Deterministic for (id, seed).
	again := Replacement(10, orig, galaxy.App{}, 7)
	if again.PerVCPURate() != repl.PerVCPURate() {
		t.Fatal("replacement not deterministic")
	}
}
