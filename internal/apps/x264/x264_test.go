package x264

import (
	"math"
	"testing"

	"repro/internal/apps"

	"repro/internal/ec2"
	"repro/internal/perf"
	"repro/internal/workload"
)

func TestClipDemandCalibration(t *testing.T) {
	// Per-clip demand is 150e9 + 0.28e9·f² by construction.
	for _, f := range []float64{10, 20, 50} {
		got := float64(ClipDemand(f))
		want := 150e9 + 0.28e9*f*f
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("ClipDemand(%v) = %v, want %v", f, got, want)
		}
	}
}

func TestDemandShape(t *testing.T) {
	var a App
	// Linear in n (Fig 2a).
	d1 := float64(a.Demand(workload.Params{N: 8, A: 20}))
	d2 := float64(a.Demand(workload.Params{N: 16, A: 20}))
	if got := d2 / d1; math.Abs(got-2) > 1e-9 {
		t.Fatalf("demand(2n)/demand(n) = %v, want 2", got)
	}
	// Quadratic in f (Fig 2d): second difference of D(f) is constant.
	d10 := float64(a.Demand(workload.Params{N: 1, A: 10}))
	d20 := float64(a.Demand(workload.Params{N: 1, A: 20}))
	d30 := float64(a.Demand(workload.Params{N: 1, A: 30}))
	d40 := float64(a.Demand(workload.Params{N: 1, A: 40}))
	dd1 := d30 - 2*d20 + d10
	dd2 := d40 - 2*d30 + d20
	if math.Abs(dd1-dd2)/dd1 > 1e-6 {
		t.Fatalf("second differences %v vs %v; f-dependence not quadratic", dd1, dd2)
	}
}

func TestRunBaselineAccountsDemandPlusSetup(t *testing.T) {
	var a App
	p := workload.Params{N: 2, A: 20}
	acct := perf.NewAccount()
	if err := a.RunBaseline(p, acct); err != nil {
		t.Fatal(err)
	}
	want := float64(a.Demand(p)) + float64(Setup(p.N))
	got := float64(acct.Total())
	// Per-block integer truncation loses < 1 instruction per block.
	if math.Abs(got-want) > float64(p.N)*BlocksPerClip {
		t.Fatalf("baseline accounted %v, want ~%v", got, want)
	}
	if math.Abs(got-want)/want > 1e-5 {
		t.Fatalf("baseline accounting off by %v%%", math.Abs(got-want)/want*100)
	}
}

func TestRunBaselineRejectsOutOfEnvelope(t *testing.T) {
	var a App
	if err := a.RunBaseline(workload.Params{N: 8000, A: 20}, perf.NewAccount()); err == nil {
		t.Fatal("RunBaseline accepted full-scale n")
	}
	if err := a.RunBaseline(workload.Params{N: 2, A: 99}, perf.NewAccount()); err == nil {
		t.Fatal("RunBaseline accepted f beyond 51")
	}
}

func TestBaselineGridMatchesPaper(t *testing.T) {
	var a App
	grid := a.BaselineGrid()
	if len(grid) != 25 {
		t.Fatalf("grid size = %d, want 25 (5 sizes × 5 factors)", len(grid))
	}
	for _, p := range grid {
		if p.N < 2 || p.N > 32 || p.A < 10 || p.A > 50 {
			t.Errorf("grid point %v outside the paper's §IV-A ranges", p)
		}
		if err := a.Domain().CheckBaseline(p); err != nil {
			t.Errorf("grid point %v outside envelope: %v", p, err)
		}
	}
}

func TestPlanIndependentPerClip(t *testing.T) {
	var a App
	p := workload.Params{N: 8000, A: 20}
	pl := a.Plan(p)
	if pl.Kind != workload.Independent {
		t.Fatalf("plan kind = %v, want independent", pl.Kind)
	}
	if pl.Tasks != 8000 {
		t.Fatalf("tasks = %d, want one per clip", pl.Tasks)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	got := float64(pl.TotalInstr())
	want := float64(a.Demand(p))
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("plan total %v != demand %v", got, want)
	}
}

func TestIPCLevels(t *testing.T) {
	var a App
	if a.IPC(ec2.C4) != C4IPC {
		t.Fatalf("c4 IPC = %v, want %v", a.IPC(ec2.C4), C4IPC)
	}
	if !(a.IPC(ec2.M4) > a.IPC(ec2.C4)) || !(a.IPC(ec2.C4) > a.IPC(ec2.R3)) {
		t.Fatal("IPC category ordering violated")
	}
}

func TestDCTEnergyPreservation(t *testing.T) {
	// The DCT is orthonormal: Parseval's identity must hold.
	var src, dst [64]float64
	for i := range src {
		src[i] = float64(i%7) - 3
	}
	dct8x8(&src, &dst)
	var eSrc, eDst float64
	for i := range src {
		eSrc += src[i] * src[i]
		eDst += dst[i] * dst[i]
	}
	if math.Abs(eSrc-eDst)/eSrc > 1e-9 {
		t.Fatalf("DCT not orthonormal: energy %v -> %v", eSrc, eDst)
	}
}

func TestDCTDCComponent(t *testing.T) {
	// A constant block transforms to a single DC coefficient of 8×mean.
	var src, dst [64]float64
	for i := range src {
		src[i] = 2
	}
	dct8x8(&src, &dst)
	if math.Abs(dst[0]-16) > 1e-9 {
		t.Fatalf("DC coefficient = %v, want 16", dst[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(dst[i]) > 1e-9 {
			t.Fatalf("AC coefficient %d = %v, want 0", i, dst[i])
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, idx := range zigzag {
		if idx < 0 || idx > 63 || seen[idx] {
			t.Fatalf("zigzag not a permutation: %v", zigzag)
		}
		seen[idx] = true
	}
	if len(seen) != 64 {
		t.Fatalf("zigzag covers %d cells", len(seen))
	}
	// The scan starts at DC and moves to (0,1).
	if zigzag[0] != 0 || (zigzag[1] != 1 && zigzag[1] != 8) {
		t.Fatalf("zigzag start = %v...", zigzag[:3])
	}
}

func TestQuantizeFinerAtHigherF(t *testing.T) {
	// Higher compression factor -> finer quantization -> more surviving
	// coefficients for the same block.
	var pix, coef [64]float64
	for i := range pix {
		pix[i] = apps.Hash01(uint64(i) * 977)
	}
	dct8x8(&pix, &coef)
	nonzeros := func(f float64) int {
		var q [64]int
		quantize(&coef, f, &q)
		nz := 0
		for _, v := range q {
			if v != 0 {
				nz++
			}
		}
		return nz
	}
	lo, hi := nonzeros(10), nonzeros(50)
	if hi <= lo {
		t.Fatalf("nonzeros at f=50 (%d) not above f=10 (%d)", hi, lo)
	}
}

func TestEntropyBitsIncreaseWithF(t *testing.T) {
	var pix, coef [64]float64
	for i := range pix {
		pix[i] = apps.Hash01(uint64(i)*31 + 5)
	}
	dct8x8(&pix, &coef)
	bits := func(f float64) int {
		var q [64]int
		quantize(&coef, f, &q)
		return entropyBits(&q)
	}
	b10, b30, b50 := bits(10), bits(30), bits(50)
	if !(b10 <= b30 && b30 < b50) {
		t.Fatalf("coded size not increasing with f: %d, %d, %d", b10, b30, b50)
	}
	if b10 <= 0 {
		t.Fatalf("empty coded block at f=10: %d bits", b10)
	}
}

func TestEntropyBitsZeroBlock(t *testing.T) {
	var q [64]int
	if got := entropyBits(&q); got <= 0 || got > 32 {
		t.Fatalf("all-zero block costs %d bits, want a small positive EOB cost", got)
	}
}

func TestQStepMonotone(t *testing.T) {
	prev := math.Inf(1)
	for f := 1.0; f <= 51; f++ {
		s := qStep(f)
		if s <= 0 || s >= prev {
			t.Fatalf("qStep not strictly decreasing at f=%g: %g (prev %g)", f, s, prev)
		}
		prev = s
	}
}
