// Package x264 implements the paper's video-compression elastic
// application: n independent 75 MB video clips are encoded at a
// compression factor f ∈ [1, 51], distributed as independent processes
// with no inter-node communication. The compression factor is the
// accuracy proxy: higher f buys more rate-distortion optimization.
//
// Resource demand is linear in n (clips are homogeneous) and quadratic
// in f (the motion-search window grows with f in both dimensions) — the
// paper's Figure 2(a)/(d) shapes.
package x264

import (
	"math"

	"repro/internal/apps"
	"repro/internal/ec2"
	"repro/internal/perf"
	"repro/internal/units"
	"repro/internal/workload"
)

// Ground-truth demand constants. A clip is ClipBytes of video processed
// in 8×8 blocks of BlockBytes; each block costs a fixed transform/
// quantization/entropy part plus a motion-search part quadratic in f.
const (
	ClipBytes     = 75e6
	BlockBytes    = 192
	BlocksPerClip = 390625 // ClipBytes / BlockBytes

	// Retired instructions per block: BlockBase + BlockQuad·f².
	// Per clip this yields 150.0e9 + 0.28e9·f².
	BlockBase = 384000
	BlockQuad = 716.8

	// C4IPC: the encoder vectorizes well, so it retires the most
	// instructions per cycle of the three applications.
	C4IPC = 1.20

	// Baseline-only startup: process launch, container parsing and
	// buffer setup per clip. Retired by real runs, absent from D(n,f).
	setupFixed   = 8e6
	setupPerClip = 1.5e6

	// The kernel executes this many representative blocks per clip for
	// real (full DCT + motion SAD on synthetic pixels) while accounting
	// every block of the clip at its calibrated cost.
	kernelBlocksPerClip = 256
)

// ClipDemand is the per-clip demand D₁(f) in retired instructions.
func ClipDemand(f float64) units.Instructions {
	return units.Instructions(BlocksPerClip * (BlockBase + BlockQuad*f*f))
}

// App is the x264 elastic application. The zero value is ready to use.
type App struct{}

var _ workload.App = App{}

// Name implements workload.App.
func (App) Name() string { return "x264" }

// AccuracyName reports the paper's symbol for the accuracy parameter.
func (App) AccuracyName() string { return "f" }

// Domain implements workload.App. The paper characterizes n ∈ [2, 32]
// and f ∈ [10, 50] and validates with up to 32,000 clips; f's full
// range is 1–51.
func (App) Domain() workload.Domain {
	return workload.Domain{
		MinN: 1, MaxN: 1e6,
		MinA: 1, MaxA: 51,
		MaxBaselineN: 64, MaxBaselineA: 51,
	}
}

// Demand implements workload.App: D(n,f) = n·D₁(f).
func (App) Demand(p workload.Params) units.Instructions {
	return units.Instructions(p.N * float64(ClipDemand(p.A)))
}

// Setup reports the baseline startup instructions for n clips.
func Setup(n float64) units.Instructions {
	return units.Instructions(setupFixed + setupPerClip*n)
}

// RunBaseline encodes ⌊n⌋ scale-down clips at factor f: for each clip it
// runs the real transform and motion-search computation on a
// representative sample of blocks and accounts the whole clip at the
// calibrated per-block cost.
func (a App) RunBaseline(p workload.Params, acct *perf.Account) error {
	if err := a.Domain().CheckBaseline(p); err != nil {
		return err
	}
	n := int(p.N)
	f := p.A

	acct.Add(perf.SetupOps, int64(float64(Setup(p.N))))
	intc := acct.Class(perf.IntOps)

	perBlock := int64(BlockBase + BlockQuad*f*f)
	// Real SAD candidates executed per representative block; the full
	// application evaluates ~2.8·f² candidates, we execute a capped
	// sample and account the calibrated total.
	cands := int(2.8 * f * f)
	if cands > 64 {
		cands = 64
	}

	var pix [64]float64
	var coef [64]float64
	var totalBits int
	for clip := 0; clip < n; clip++ {
		for b := 0; b < kernelBlocksPerClip; b++ {
			seed := uint64(clip)<<32 | uint64(b)
			for i := range pix {
				pix[i] = apps.Hash01(seed*64 + uint64(i))
			}
			dct8x8(&pix, &coef)
			var q [64]int
			quantize(&coef, f, &q)
			totalBits += entropyBits(&q)
			var best float64 = 1e18
			for c := 0; c < cands; c++ {
				var sad float64
				for i := range pix {
					ref := apps.Hash01(seed*131 + uint64(c*64+i))
					d := pix[i] - ref
					if d < 0 {
						d = -d
					}
					sad += d
				}
				if sad < best {
					best = sad
				}
			}
			apps.KeepAlive(coef[0] + best + float64(totalBits))
		}
		intc.Add(perBlock * BlocksPerClip)
	}
	return nil
}

// quantize divides the transform coefficients by a step that shrinks
// as the compression factor grows: higher f spends more bits for
// higher fidelity (the "accuracy" the paper's elastic application
// trades resources for).
func quantize(coef *[64]float64, f float64, out *[64]int) {
	step := qStep(f)
	for i, c := range coef {
		out[i] = int(c / step)
	}
}

// qStep maps the compression factor f ∈ [1, 51] to a quantization step
// size, exponentially finer at higher f like H.264's QP ladder in
// reverse.
func qStep(f float64) float64 {
	return 0.5 * math.Pow(2, (51-f)/6)
}

// entropyBits estimates the coded size of a quantized block with a
// zigzag run-length + Exp-Golomb-style cost model: each nonzero
// coefficient costs bits proportional to its magnitude's log, each run
// of zeros a small prefix.
func entropyBits(q *[64]int) int {
	bits := 0
	run := 0
	for _, idx := range zigzag {
		v := q[idx]
		if v == 0 {
			run++
			continue
		}
		if v < 0 {
			v = -v
		}
		// Run prefix + magnitude (Exp-Golomb-ish: 2⌊log2(v+1)⌋+1) +
		// sign.
		bits += runPrefixBits(run) + 2*intLog2(v+1) + 1 + 1
		run = 0
	}
	if run > 0 {
		bits += runPrefixBits(run) // end-of-block run
	}
	return bits
}

func runPrefixBits(run int) int { return intLog2(run+1)*2 + 1 }

func intLog2(v int) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// zigzag is the standard 8×8 zigzag scan order.
var zigzag = func() [64]int {
	var order [64]int
	i := 0
	for s := 0; s < 15; s++ {
		if s%2 == 0 { // up-right
			for y := min8(s, 7); y >= 0 && s-y <= 7; y-- {
				order[i] = y*8 + (s - y)
				i++
			}
		} else { // down-left
			for x := min8(s, 7); x >= 0 && s-x <= 7; x-- {
				order[i] = (s-x)*8 + x
				i++
			}
		}
	}
	return order
}()

func min8(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// dct8x8 applies a separable 8×8 discrete cosine transform — the real
// computation at the heart of every block encode.
func dct8x8(src, dst *[64]float64) {
	var tmp [64]float64
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += src[y*8+x] * dctBasis[u][x]
			}
			tmp[y*8+u] = s
		}
	}
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * dctBasis[v][y]
			}
			dst[v*8+u] = s
		}
	}
}

// dctBasis[u][x] = c(u)·cos((2x+1)uπ/16), precomputed.
var dctBasis = func() [8][8]float64 {
	var b [8][8]float64
	for u := 0; u < 8; u++ {
		c := 0.5
		if u == 0 {
			c = 0.35355339059327373 // 1/(2√2)
		}
		for x := 0; x < 8; x++ {
			b[u][x] = c * math.Cos(float64((2*x+1)*u)*math.Pi/16)
		}
	}
	return b
}()

// BaselineGrid implements workload.App: the paper's §IV-A scale-down
// grid, n ∈ [2, 32] clips and f ∈ [10, 50].
func (App) BaselineGrid() []workload.Params {
	var grid []workload.Params
	for _, n := range []float64{2, 4, 8, 16, 32} {
		for _, f := range []float64{10, 20, 30, 40, 50} {
			grid = append(grid, workload.Params{N: n, A: f})
		}
	}
	return grid
}

// Plan implements workload.App. Encoding is embarrassingly parallel:
// one independent task per clip, no communication.
func (a App) Plan(p workload.Params) workload.Plan {
	d := ClipDemand(p.A)
	return workload.Plan{
		Kind:      workload.Independent,
		Tasks:     int(p.N),
		TaskInstr: func(int) units.Instructions { return d },
	}
}

// IPC implements workload.App.
func (App) IPC(cat ec2.Category) float64 { return apps.CategoryIPC(C4IPC, cat) }
