// Package apps hosts shared machinery for the three representative
// elastic applications the paper evaluates (x264, galaxy, sand): the
// ground-truth IPC structure across EC2 resource categories and small
// deterministic helpers the kernels share.
//
// The instruction-per-cycle table encodes the paper's Figure 3 finding:
// within a category, instruction-execution rate per dollar is flat, and
// across categories the per-dollar ratios are c4 : m4 : r3 = 2.0 : 1.5
// : 1.0 for every application. Given Table III's frequencies and prices,
// those ratios pin the relative IPCs; each app then contributes only a
// single absolute level (its c4 IPC).
package apps

import (
	"math"

	"repro/internal/ec2"
)

// Per-category IPC multipliers relative to the c4 IPC. Derived from the
// 2.0 : 1.5 : 1.0 per-dollar ratios and Table III:
//
//	perDollar(cat) = vCPUs·IPC·GHz/price, flat within a category.
//	c4: 2·2.9/0.105 = 55.24·IPC_c4 per $    (= 2.0× r3's)
//	m4: 2·2.3/0.133 = 34.59·IPC_m4 per $    (= 1.5× r3's)
//	r3: 2·2.5/0.166 = 30.12·IPC_r3 per $    (= 1.0×)
//
// Solving: IPC_r3 = IPC_c4·(55.24/2)/30.12 and IPC_m4 =
// IPC_c4·1.5·(55.24/2)/34.59.
const (
	m4PerC4 = 1.5 * (55.2380952 / 2) / 34.5864661 // ≈ 1.1979
	r3PerC4 = 1.0 * (55.2380952 / 2) / 30.1204819 // ≈ 0.9170
)

// CategoryIPC maps an application's c4 IPC level to the IPC it achieves
// per vCPU on the given category.
func CategoryIPC(c4IPC float64, cat ec2.Category) float64 {
	switch cat {
	case ec2.C4:
		return c4IPC
	case ec2.M4:
		return c4IPC * m4PerC4
	case ec2.R3:
		return c4IPC * r3PerC4
	default:
		return 0
	}
}

// Hash01 maps an integer to a deterministic pseudo-random value in
// [0, 1). The kernels use it for synthetic content (pixels, masses,
// bases) so that baseline runs are reproducible without a shared RNG.
func Hash01(x uint64) float64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// Sink is written by kernels to keep their representative computations
// from being optimized away.
var Sink float64

// KeepAlive publishes a computed value into Sink.
func KeepAlive(v float64) {
	if !math.IsNaN(v) {
		Sink = v
	}
}
