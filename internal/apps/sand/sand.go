// Package sand implements the paper's bioinformatics elastic
// application: SAND genome sequence assembly [21] on the Work Queue
// master/worker platform [23]. A master takes a list of n candidate
// sequence pairs, creates alignment tasks, and distributes them among
// pulling workers. The quality threshold t ∈ (0, 1] is the accuracy
// proxy: a higher threshold demands a more thorough (wider-band)
// alignment before accepting or rejecting a candidate.
//
// Resource demand is linear in n and logarithmic in t — the paper's
// Figure 2(c)/(f) shapes.
package sand

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"repro/internal/apps"
	"repro/internal/ec2"
	"repro/internal/perf"
	"repro/internal/units"
	"repro/internal/workload"
	"repro/internal/workqueue"
)

// Ground-truth demand constants. Every candidate costs a fixed k-mer
// filtering part plus an alignment part whose band width grows
// logarithmically with the quality threshold.
const (
	// Retired instructions per candidate sequence:
	// SeqBase + SeqLog·ln(1 + LogScale·t). The k-mer filter costs
	// ~0.8M instructions per candidate; the banded alignment adds a
	// logarithmically widening band. Calibrated so the paper's sand
	// census problem (8192M candidates, t=0.32) saturates c4 and
	// spills into other categories at the 24 h deadline — the regime
	// behind Figure 4's sand panel and Observation 3's sand numbers.
	SeqBase  = 822e3
	SeqLog   = 600e3
	LogScale = 99

	// C4IPC: branchy integer code retires fewer instructions per cycle
	// than the encoder but more than the FP-bound n-body.
	C4IPC = 0.70

	// Baseline-only startup: master boot and sequence-list parsing.
	setupFixed = 20e6

	// Master-side serialized work per dispatched task (task creation
	// and serialization).
	DispatchInstrPerTask = 2.0e7

	// BytesPerSeq is the candidate-sequence payload the master ships
	// to workers over the network; single-node baselines read locally,
	// so this inter-node transfer is the paper's other stated source
	// of sand's validation error.
	BytesPerSeq = 250.0

	// Runs batch the candidate list into work-queue tasks of roughly
	// SeqsPerTask candidates, capped at MaxTasks (large runs) and
	// floored at one task.
	SeqsPerTask = 1e6
	MaxTasks    = 4096

	// The kernel aligns this many representative candidates for real
	// per million accounted candidates.
	kernelAlignsPerMillion = 64
)

// SeqDemand is the mean per-candidate demand D₁(t) in retired
// instructions.
func SeqDemand(t float64) float64 {
	return SeqBase + SeqLog*math.Log(1+LogScale*t)
}

// App is the sand elastic application. The zero value is ready to use.
type App struct{}

var _ workload.App = App{}

// Name implements workload.App.
func (App) Name() string { return "sand" }

// AccuracyName reports the paper's symbol for the accuracy parameter.
func (App) AccuracyName() string { return "t" }

// Domain implements workload.App. The paper characterizes n from 1 to
// 64 million candidates with t ∈ [0.01, 1] and analyzes problem sizes
// up to 8,192 million; n has no theoretical upper bound.
func (App) Domain() workload.Domain {
	return workload.Domain{
		MinN: 1e3, MaxN: 1e11,
		MinA: 0.01, MaxA: 1,
		MaxBaselineN: 256e6, MaxBaselineA: 1,
	}
}

// Demand implements workload.App: D(n,t) = n·D₁(t).
func (App) Demand(p workload.Params) units.Instructions {
	return units.Instructions(p.N * SeqDemand(p.A))
}

// Setup reports the baseline startup instructions.
func Setup() units.Instructions { return units.Instructions(setupFixed) }

// RunBaseline assembles a scale-down candidate list for real: it k-mer
// filters synthetic sequences and runs banded overlap alignment on a
// representative sample, accounting all ⌊n⌋ candidates at the
// calibrated per-candidate cost.
func (a App) RunBaseline(p workload.Params, acct *perf.Account) error {
	if err := a.Domain().CheckBaseline(p); err != nil {
		return err
	}
	n := int64(p.N)
	t := p.A

	acct.Add(perf.SetupOps, int64(float64(Setup())))
	acct.Add(perf.IntOps, int64(float64(n)*SeqDemand(t)))

	// Representative real work: banded alignments whose band width
	// follows the same logarithmic law the accounting uses, dispatched
	// through the Work Queue master/worker platform the real SAND is
	// built on.
	aligns := int(float64(n) / 1e6 * kernelAlignsPerMillion)
	if aligns < 8 {
		aligns = 8
	}
	band := 2 + int(4*math.Log(1+LogScale*t))
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	master, err := workqueue.New(workers)
	if err != nil {
		return err
	}
	const seqLen = 96
	for k := 0; k < aligns; k++ {
		seed := uint64(k) * 2654435761
		master.Submit(workqueue.TaskFunc(func(context.Context) (interface{}, error) {
			var sa, sb [seqLen]byte
			for i := 0; i < seqLen; i++ {
				sa[i] = "ACGT"[int(apps.Hash01(seed+uint64(i))*4)]
				sb[i] = "ACGT"[int(apps.Hash01(seed+uint64(i)+7777)*4)]
			}
			return bandedOverlap(sa[:], sb[:], band), nil
		}))
	}
	results, stats, err := master.Run(context.Background())
	if err != nil {
		return err
	}
	if stats.Failed > 0 {
		return fmt.Errorf("sand: %d alignment tasks failed", stats.Failed)
	}
	var checksum float64
	for _, r := range results {
		checksum += float64(r.Value.(int))
	}
	apps.KeepAlive(checksum)
	return nil
}

// bandedOverlap scores the best overlap alignment of a and b within the
// given diagonal band — the real dynamic-programming core of SAND.
func bandedOverlap(a, b []byte, band int) int {
	n, m := len(a), len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	best := 0
	for i := 1; i <= n; i++ {
		lo := i - band
		if lo < 1 {
			lo = 1
		}
		hi := i + band
		if hi > m {
			hi = m
		}
		for j := lo; j <= hi; j++ {
			score := -1
			if a[i-1] == b[j-1] {
				score = 2
			}
			v := prev[j-1] + score
			if d := prev[j] - 1; d > v {
				v = d
			}
			if d := cur[j-1] - 1; d > v {
				v = d
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return best
}

// BaselineGrid implements workload.App: scale-down sizes in the paper's
// million-candidate units with its full threshold range.
func (App) BaselineGrid() []workload.Params {
	var grid []workload.Params
	for _, n := range []float64{1e6, 4e6, 16e6, 64e6} {
		for _, t := range []float64{0.01, 0.04, 0.16, 0.32, 0.64, 1.0} {
			grid = append(grid, workload.Params{N: n, A: t})
		}
	}
	return grid
}

// Plan implements workload.App. The candidate list is batched into
// ~SeqsPerTask-candidate work-queue tasks dispatched serially by the
// master.
func (a App) Plan(p workload.Params) workload.Plan {
	tasks := int(p.N / SeqsPerTask)
	if tasks > MaxTasks {
		tasks = MaxTasks
	}
	if tasks < 1 {
		tasks = 1
	}
	perTask := units.Instructions(p.N * SeqDemand(p.A) / float64(tasks))
	return workload.Plan{
		Kind:          workload.MasterWorker,
		Tasks:         tasks,
		TaskInstr:     func(int) units.Instructions { return perTask },
		DispatchInstr: DispatchInstrPerTask,
		BytesPerTask:  p.N / float64(tasks) * BytesPerSeq,
	}
}

// IPC implements workload.App.
func (App) IPC(cat ec2.Category) float64 { return apps.CategoryIPC(C4IPC, cat) }
