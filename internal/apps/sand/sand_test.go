package sand

import (
	"math"
	"testing"

	"repro/internal/ec2"
	"repro/internal/perf"
	"repro/internal/workload"
)

func TestDemandShape(t *testing.T) {
	var a App
	// Linear in n (Fig 2c).
	d1 := float64(a.Demand(workload.Params{N: 1e6, A: 0.32}))
	d2 := float64(a.Demand(workload.Params{N: 2e6, A: 0.32}))
	if got := d2 / d1; math.Abs(got-2) > 1e-9 {
		t.Fatalf("demand(2n)/demand(n) = %v, want 2", got)
	}
	// Logarithmic in t (Fig 2f): demand grows, but concavely — equal
	// steps in t yield shrinking increments.
	at := func(t float64) float64 { return float64(a.Demand(workload.Params{N: 1e6, A: t})) }
	inc1 := at(0.4) - at(0.2)
	inc2 := at(0.6) - at(0.4)
	inc3 := at(0.8) - at(0.6)
	if !(inc1 > inc2 && inc2 > inc3) || inc3 <= 0 {
		t.Fatalf("increments %v, %v, %v not concave increasing (logarithmic)", inc1, inc2, inc3)
	}
}

func TestSeqDemandLaw(t *testing.T) {
	got := SeqDemand(0.32)
	want := SeqBase + SeqLog*math.Log(1+LogScale*0.32)
	if got != want {
		t.Fatalf("SeqDemand(0.32) = %v, want %v", got, want)
	}
}

func TestSandAccuracyCostRatio(t *testing.T) {
	// Paper §IV-E2: improving sand's accuracy 1.6× (0.64 → 1.0) costs
	// only ~20% more. Demand drives cost directly, so check the demand
	// ratio is ~1.1-1.3.
	ratio := SeqDemand(1.0) / SeqDemand(0.64)
	if ratio < 1.05 || ratio > 1.35 {
		t.Fatalf("demand(t=1)/demand(t=0.64) = %v, want ~1.2 (sub-linear accuracy cost)", ratio)
	}
}

func TestRunBaselineAccountsDemandPlusSetup(t *testing.T) {
	var a App
	p := workload.Params{N: 0.25e6, A: 0.32}
	acct := perf.NewAccount()
	if err := a.RunBaseline(p, acct); err != nil {
		t.Fatal(err)
	}
	want := float64(a.Demand(p)) + float64(Setup())
	got := float64(acct.Total())
	if math.Abs(got-want)/want > 1e-5 {
		t.Fatalf("baseline accounted %v, want ~%v", got, want)
	}
}

func TestRunBaselineRejectsFullScale(t *testing.T) {
	var a App
	if err := a.RunBaseline(workload.Params{N: 8192e6, A: 0.32}, perf.NewAccount()); err == nil {
		t.Fatal("RunBaseline accepted a full-scale problem")
	}
}

func TestPlanMasterWorker(t *testing.T) {
	var a App
	p := workload.Params{N: 1024e6, A: 0.32}
	pl := a.Plan(p)
	if pl.Kind != workload.MasterWorker {
		t.Fatalf("plan kind = %v, want master-worker", pl.Kind)
	}
	if pl.Tasks != 1024 {
		t.Fatalf("tasks = %d, want 1024 (1M candidates per task)", pl.Tasks)
	}
	if pl.DispatchInstr <= 0 {
		t.Fatal("master-worker plan has no dispatch cost")
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	got := float64(pl.TotalInstr())
	want := float64(a.Demand(p))
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("plan total %v != demand %v", got, want)
	}
}

func TestPlanSmallProblemFewerTasks(t *testing.T) {
	var a App
	pl := a.Plan(workload.Params{N: 10e3, A: 0.5})
	if pl.Tasks >= MaxTasks {
		t.Fatalf("small problem got %d tasks; batching should shrink", pl.Tasks)
	}
	if pl.Tasks <= 0 {
		t.Fatal("no tasks")
	}
}

func TestBandedOverlapIdentical(t *testing.T) {
	s := []byte("ACGTACGTACGT")
	best := bandedOverlap(s, s, 4)
	// A perfect overlap scores 2 per base.
	if best != 2*len(s) {
		t.Fatalf("self-overlap score = %d, want %d", best, 2*len(s))
	}
}

func TestBandedOverlapDisjoint(t *testing.T) {
	a := []byte("AAAAAAAA")
	b := []byte("CCCCCCCC")
	if best := bandedOverlap(a, b, 4); best != 0 {
		t.Fatalf("disjoint overlap score = %d, want 0 (local alignment floors at 0)", best)
	}
}

func TestBandedOverlapBandLimits(t *testing.T) {
	// A wider band can only improve (or preserve) the score.
	a := []byte("ACGTTTACGTACGGTACT")
	b := []byte("TTACGTACGGT")
	narrow := bandedOverlap(a, b, 1)
	wide := bandedOverlap(a, b, 8)
	if wide < narrow {
		t.Fatalf("wider band decreased score: %d -> %d", narrow, wide)
	}
}

func TestIPCLevels(t *testing.T) {
	var a App
	if a.IPC(ec2.C4) != C4IPC {
		t.Fatalf("c4 IPC = %v", a.IPC(ec2.C4))
	}
	if !(a.IPC(ec2.M4) > a.IPC(ec2.C4)) || !(a.IPC(ec2.C4) > a.IPC(ec2.R3)) {
		t.Fatal("IPC category ordering violated")
	}
}

func TestBaselineGridWithinEnvelope(t *testing.T) {
	var a App
	for _, p := range a.BaselineGrid() {
		if err := a.Domain().CheckBaseline(p); err != nil {
			t.Errorf("grid point %v outside envelope: %v", p, err)
		}
	}
}
