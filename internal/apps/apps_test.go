package apps

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ec2"
)

func TestCategoryIPCRatios(t *testing.T) {
	// The per-dollar ratios of Figure 3 must hold exactly for any c4
	// level: c4 : m4 : r3 = 2.0 : 1.5 : 1.0 instructions per second per
	// dollar, evaluated on the large size of each category.
	const c4IPC = 0.475
	cat := ec2.Oregon()
	perDollar := func(name string, ipc float64) float64 {
		typ, ok := cat.Lookup(name)
		if !ok {
			t.Fatalf("missing type %s", name)
		}
		return float64(typ.VCPUs) * ipc * typ.BaseGHz * 1e9 / float64(typ.Price)
	}
	c4 := perDollar("c4.large", CategoryIPC(c4IPC, ec2.C4))
	m4 := perDollar("m4.large", CategoryIPC(c4IPC, ec2.M4))
	r3 := perDollar("r3.large", CategoryIPC(c4IPC, ec2.R3))
	if got := c4 / r3; math.Abs(got-2.0) > 1e-6 {
		t.Errorf("c4/r3 per-dollar = %v, want 2.0", got)
	}
	if got := m4 / r3; math.Abs(got-1.5) > 1e-6 {
		t.Errorf("m4/r3 per-dollar = %v, want 1.5", got)
	}
}

func TestCategoryIPCGalaxyLevel(t *testing.T) {
	// Paper §IV-C: galaxy's c4 normalized performance is ~26.2 billion
	// instructions per second per dollar.
	typ, _ := ec2.Oregon().Lookup("c4.large")
	ipc := CategoryIPC(0.475, ec2.C4)
	perDollar := float64(typ.VCPUs) * ipc * typ.BaseGHz / float64(typ.Price) // GI/s/$
	if math.Abs(perDollar-26.24) > 0.05 {
		t.Fatalf("galaxy c4 normalized performance = %.2f GI/s/$, want ~26.24", perDollar)
	}
}

func TestCategoryIPCUnknown(t *testing.T) {
	if got := CategoryIPC(1.0, ec2.Category("gpu")); got != 0 {
		t.Fatalf("CategoryIPC(unknown) = %v, want 0", got)
	}
}

func TestHash01Range(t *testing.T) {
	f := func(x uint64) bool {
		v := Hash01(x)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash01Deterministic(t *testing.T) {
	if Hash01(42) != Hash01(42) {
		t.Fatal("Hash01 not deterministic")
	}
	if Hash01(1) == Hash01(2) {
		t.Fatal("Hash01(1) == Hash01(2); suspicious collision")
	}
}

func TestHash01Spread(t *testing.T) {
	// Mean of many hashes should be near 0.5.
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		sum += Hash01(uint64(i))
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Hash01 mean = %v, want ~0.5", mean)
	}
}
