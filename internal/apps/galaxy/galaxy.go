// Package galaxy implements the paper's n-body simulation application
// (PetaKit "galaxy" [14]): direct-summation gravitational dynamics of n
// masses over s simulation steps, distributed MPI-style by block
// decomposition. The number of steps s is the accuracy proxy; there are
// no theoretical upper bounds on n or s.
//
// Resource demand is quadratic in n (every step evaluates all n² pair
// forces) and linear in s — the paper's Figure 2(b)/(e) shapes.
package galaxy

import (
	"math"
	"runtime"

	"repro/internal/apps"
	"repro/internal/bsp"
	"repro/internal/ec2"
	"repro/internal/perf"
	"repro/internal/units"
	"repro/internal/workload"
)

// Ground-truth demand constants. One pair-force evaluation of the real
// application retires InstrPerPair instructions (distance, inverse
// square root, accumulation); each body additionally costs
// InstrPerBody per step for integration and bookkeeping.
const (
	InstrPerPair = 262
	InstrPerBody = 5000

	// C4IPC is the application's measured instructions-per-cycle per
	// vCPU on the c4 category; other categories follow Figure 3's
	// per-dollar ratios (see apps.CategoryIPC). Chosen so c4's
	// normalized performance is the paper's 26.2 GI/s/$.
	C4IPC = 0.475

	// Baseline-only startup cost (MPI init, input distribution): these
	// instructions are retired by a real run and therefore appear in
	// perf measurements, but are not part of the D(n,s) demand law.
	// They are one source of CELIA's validation error.
	setupFixed   = 2e6
	setupPerBody = 500

	softening = 1e-9 // Plummer softening to keep forces finite
)

// App is the galaxy elastic application. The zero value is ready to use.
type App struct{}

var _ workload.App = App{}

// Name implements workload.App.
func (App) Name() string { return "galaxy" }

// AccuracyName reports the paper's symbol for the accuracy parameter.
func (App) AccuracyName() string { return "s" }

// Domain implements workload.App. The evaluation uses n up to 262,144
// masses and s up to 10,000 steps (Figures 5a, 6a); the kernel executes
// baselines up to 4,096 masses and 64 steps.
func (App) Domain() workload.Domain {
	return workload.Domain{
		MinN: 64, MaxN: 1 << 22,
		MinA: 1, MaxA: 1e6,
		MaxBaselineN: 4096, MaxBaselineA: 64,
	}
}

// Demand implements workload.App: D(n,s) = s·n·(InstrPerPair·n +
// InstrPerBody) retired instructions.
func (App) Demand(p workload.Params) units.Instructions {
	n, s := p.N, p.A
	return units.Instructions(s * n * (InstrPerPair*n + InstrPerBody))
}

// Setup reports the baseline startup instructions for problem size n.
func Setup(n float64) units.Instructions {
	return units.Instructions(setupFixed + setupPerBody*n)
}

// RunBaseline executes the scale-down simulation for real: it
// integrates ⌊n⌋ masses for ⌊s⌋ steps with direct force summation,
// block-decomposed across a gang of BSP ranks exactly like the MPI
// application (forces superstep, barrier, integration superstep),
// accounting the calibrated retired-instruction equivalents as it
// goes.
func (a App) RunBaseline(p workload.Params, acct *perf.Account) error {
	if err := a.Domain().CheckBaseline(p); err != nil {
		return err
	}
	n := int(p.N)
	steps := int(p.A)

	fp := acct.Class(perf.FloatOps)
	misc := acct.Class(perf.KernelMisc)
	acct.Add(perf.SetupOps, int64(float64(Setup(p.N))))

	// Synthetic but deterministic initial conditions.
	px := make([]float64, n)
	py := make([]float64, n)
	pz := make([]float64, n)
	vx := make([]float64, n)
	vy := make([]float64, n)
	vz := make([]float64, n)
	m := make([]float64, n)
	for i := 0; i < n; i++ {
		px[i] = apps.Hash01(uint64(i)*3 + 1)
		py[i] = apps.Hash01(uint64(i)*3 + 2)
		pz[i] = apps.Hash01(uint64(i)*3 + 3)
		m[i] = 0.5 + apps.Hash01(uint64(i)+7919)
	}

	ranks := runtime.GOMAXPROCS(0)
	if ranks > 8 {
		ranks = 8
	}
	if ranks > n {
		ranks = n
	}

	// Two supersteps per simulation step: compute forces against the
	// frozen positions, then (after the barrier) integrate.
	const dt = 1e-3
	err := bsp.Run(ranks, 2*steps, func(rank, super int) {
		lo, hi := bsp.Split(n, ranks, rank)
		if super%2 == 0 {
			for i := lo; i < hi; i++ {
				var ax, ay, az float64
				xi, yi, zi := px[i], py[i], pz[i]
				for j := 0; j < n; j++ {
					dx := px[j] - xi
					dy := py[j] - yi
					dz := pz[j] - zi
					r2 := dx*dx + dy*dy + dz*dz + softening
					inv := m[j] / (r2 * math.Sqrt(r2))
					ax += dx * inv
					ay += dy * inv
					az += dz * inv
				}
				vx[i] += ax * dt
				vy[i] += ay * dt
				vz[i] += az * dt
			}
			// This rank's rows of pair interactions.
			fp.Add(InstrPerPair * int64(n) * int64(hi-lo))
			return
		}
		for i := lo; i < hi; i++ {
			px[i] += vx[i] * dt
			py[i] += vy[i] * dt
			pz[i] += vz[i] * dt
		}
		misc.Add(InstrPerBody * int64(hi-lo))
	})
	if err != nil {
		return err
	}
	apps.KeepAlive(px[0] + vy[n-1])
	return nil
}

// BaselineGrid implements workload.App: the scale-down (n', s') points
// characterization runs on.
func (App) BaselineGrid() []workload.Params {
	var grid []workload.Params
	for _, n := range []float64{256, 384, 512, 768, 1024} {
		for _, s := range []float64{2, 4, 8} {
			grid = append(grid, workload.Params{N: n, A: s})
		}
	}
	return grid
}

// Plan implements workload.App. Galaxy is bulk-synchronous: every step
// computes all pair forces (partitioned over ranks) and then exchanges
// updated positions (24 bytes per mass).
func (a App) Plan(p workload.Params) workload.Plan {
	n := p.N
	return workload.Plan{
		Kind:             workload.BSP,
		Steps:            int(p.A),
		Elements:         int(n),
		InstrPerElement:  units.Instructions(InstrPerPair*n + InstrPerBody),
		CommBytesPerStep: 24 * n,
	}
}

// IPC implements workload.App.
func (App) IPC(cat ec2.Category) float64 { return apps.CategoryIPC(C4IPC, cat) }
