package galaxy

import (
	"math"
	"testing"

	"repro/internal/ec2"
	"repro/internal/perf"
	"repro/internal/workload"
)

func TestDemandShape(t *testing.T) {
	var a App
	// Quadratic in n: doubling n at fixed s roughly quadruples demand
	// (exactly, in the n² term's limit).
	d1 := float64(a.Demand(workload.Params{N: 8192, A: 1000}))
	d2 := float64(a.Demand(workload.Params{N: 16384, A: 1000}))
	ratio := d2 / d1
	if ratio < 3.9 || ratio > 4.01 {
		t.Fatalf("demand(2n)/demand(n) = %v, want ~4 (quadratic, Fig 2b)", ratio)
	}
	// Linear in s.
	d3 := float64(a.Demand(workload.Params{N: 8192, A: 2000}))
	if got := d3 / d1; math.Abs(got-2) > 1e-9 {
		t.Fatalf("demand(2s)/demand(s) = %v, want 2 (linear, Fig 2e)", got)
	}
}

func TestDemandValue(t *testing.T) {
	var a App
	// D(n,s) = s·n·(262n + 5000).
	got := float64(a.Demand(workload.Params{N: 100, A: 10}))
	want := 10.0 * 100 * (262*100 + 5000)
	if got != want {
		t.Fatalf("Demand = %v, want %v", got, want)
	}
}

func TestRunBaselineAccountsDemandPlusSetup(t *testing.T) {
	var a App
	p := workload.Params{N: 256, A: 2}
	acct := perf.NewAccount()
	if err := a.RunBaseline(p, acct); err != nil {
		t.Fatal(err)
	}
	want := float64(a.Demand(p)) + float64(Setup(p.N))
	if got := float64(acct.Total()); math.Abs(got-want) > 1 {
		t.Fatalf("baseline accounted %v instructions, want %v (demand+setup)", got, want)
	}
	if acct.Count(perf.SetupOps) != int64(float64(Setup(p.N))) {
		t.Fatalf("setup class = %d, want %v", acct.Count(perf.SetupOps), Setup(p.N))
	}
}

func TestRunBaselineRejectsFullScale(t *testing.T) {
	var a App
	err := a.RunBaseline(workload.Params{N: 65536, A: 8000}, perf.NewAccount())
	if err == nil {
		t.Fatal("RunBaseline accepted a full-scale problem")
	}
}

func TestRunBaselineRejectsNonPositive(t *testing.T) {
	var a App
	if err := a.RunBaseline(workload.Params{N: 0, A: 2}, perf.NewAccount()); err == nil {
		t.Fatal("RunBaseline accepted n=0")
	}
}

func TestBaselineGridWithinEnvelope(t *testing.T) {
	var a App
	d := a.Domain()
	grid := a.BaselineGrid()
	if len(grid) < 10 {
		t.Fatalf("baseline grid has %d points, want >= 10 for a 2-parameter fit", len(grid))
	}
	for _, p := range grid {
		if err := d.CheckBaseline(p); err != nil {
			t.Errorf("grid point %v outside envelope: %v", p, err)
		}
	}
}

func TestPlanMatchesDemand(t *testing.T) {
	var a App
	p := workload.Params{N: 65536, A: 8000}
	pl := a.Plan(p)
	if pl.Kind != workload.BSP {
		t.Fatalf("plan kind = %v, want bsp", pl.Kind)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	got := float64(pl.TotalInstr())
	want := float64(a.Demand(p))
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("plan total %v != demand %v", got, want)
	}
	if pl.CommBytesPerStep <= 0 {
		t.Fatal("BSP plan has no communication volume")
	}
}

func TestIPCOrdering(t *testing.T) {
	var a App
	c4, m4, r3 := a.IPC(ec2.C4), a.IPC(ec2.M4), a.IPC(ec2.R3)
	if c4 != C4IPC {
		t.Fatalf("c4 IPC = %v, want %v", c4, C4IPC)
	}
	// Per Figure 3's structure m4 has the highest raw IPC (it must
	// compensate its lower frequency to hit the 1.5× per-dollar ratio).
	if !(m4 > c4 && c4 > r3) {
		t.Fatalf("IPC ordering m4(%v) > c4(%v) > r3(%v) violated", m4, c4, r3)
	}
}

func TestBaselineDeterminism(t *testing.T) {
	var a App
	p := workload.Params{N: 256, A: 2}
	a1, a2 := perf.NewAccount(), perf.NewAccount()
	if err := a.RunBaseline(p, a1); err != nil {
		t.Fatal(err)
	}
	if err := a.RunBaseline(p, a2); err != nil {
		t.Fatal(err)
	}
	if a1.Total() != a2.Total() {
		t.Fatalf("baseline not deterministic: %v vs %v", a1.Total(), a2.Total())
	}
}

func TestKernelConservesMomentum(t *testing.T) {
	// Pairwise-antisymmetric gravitational forces conserve total
	// momentum even under explicit Euler integration; the kernel's
	// physics must honor that. We can't reach into RunBaseline's
	// state, so re-derive: sum of m_i * a_i over a force evaluation is
	// zero by Newton's third law. Verify via two baseline runs whose
	// accounted instructions certify the same pair loop executed, and
	// check determinism doubles as a regression guard on the physics
	// loop; the direct invariant is asserted on a hand-rolled copy of
	// the force kernel below.
	n := 64
	px := make([]float64, n)
	py := make([]float64, n)
	pz := make([]float64, n)
	m := make([]float64, n)
	for i := 0; i < n; i++ {
		px[i] = float64((i*37)%101) / 101
		py[i] = float64((i*53)%97) / 97
		pz[i] = float64((i*71)%89) / 89
		m[i] = 1 + float64(i%5)
	}
	var sx, sy, sz float64
	for i := 0; i < n; i++ {
		var ax, ay, az float64
		for j := 0; j < n; j++ {
			dx := px[j] - px[i]
			dy := py[j] - py[i]
			dz := pz[j] - pz[i]
			r2 := dx*dx + dy*dy + dz*dz + 1e-9
			inv := m[j] / (r2 * math.Sqrt(r2))
			ax += dx * inv
			ay += dy * inv
			az += dz * inv
		}
		sx += m[i] * ax
		sy += m[i] * ay
		sz += m[i] * az
	}
	if math.Abs(sx)+math.Abs(sy)+math.Abs(sz) > 1e-9 {
		t.Fatalf("total momentum change (%g, %g, %g); forces not antisymmetric", sx, sy, sz)
	}
}
