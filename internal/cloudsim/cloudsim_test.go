package cloudsim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/apps/x264"
	"repro/internal/config"
	"repro/internal/ec2"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestRunValidation(t *testing.T) {
	cat := ec2.Oregon()
	opts := DefaultOptions()
	if _, err := Run(galaxy.App{}, workload.Params{N: 1024, A: 10},
		config.MustTuple(1, 0), cat, opts); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := Run(galaxy.App{}, workload.Params{N: 1024, A: 10},
		config.MustTuple(0, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts); err == nil {
		t.Fatal("empty configuration accepted")
	}
}

func TestIndependentNearModelOnSingleInstance(t *testing.T) {
	// On one instance with negligible startup, the simulator must
	// approach the analytic model: same capacity law, only jitter and
	// task-granularity tail differ.
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 64, A: 20}
	tuple := config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0)
	opts := DefaultOptions()
	opts.Startup = map[string]units.Seconds{"x264": 0}
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	pred := model.FromIPC(cat, app).Predict(app.Demand(p), tuple)
	if e := stats.RelErr(float64(pred.Time), float64(res.Makespan)); e > 5 {
		t.Fatalf("sim vs model differ %.1f%% (sim %v, model %v)", e, res.Makespan, pred.Time)
	}
}

func TestIndependentTailImbalance(t *testing.T) {
	// One task fewer than 2× the vCPU count leaves the last wave half
	// empty: makespan ≈ 2 task times even though capacity suggests
	// less.
	cat := ec2.Oregon()
	var app x264.App
	tuple := config.MustTuple(0, 0, 1, 0, 0, 0, 0, 0, 0) // 8 vCPUs
	p := workload.Params{N: 9, A: 20}                    // 9 tasks on 8 vCPUs
	opts := DefaultOptions()
	opts.Startup = map[string]units.Seconds{"x264": 0}
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	taskTime := float64(x264.ClipDemand(20)) / (app.IPC(ec2.C4) * 2.9e9)
	if got := float64(res.Makespan); got < 1.9*taskTime {
		t.Fatalf("makespan %v < 2 waves (%v); tail imbalance not modeled", got, 2*taskTime)
	}
}

func TestBSPGalaxyMatchesModelShape(t *testing.T) {
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 4096, A: 50}
	tuple := config.MustTuple(2, 0, 0, 1, 0, 0, 0, 0, 0)
	res, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pred := model.FromIPC(cat, app).Predict(app.Demand(p), tuple)
	// Simulated time exceeds the ideal model (startup, comm, remainder
	// imbalance) but stays within ~15%.
	if res.Makespan < pred.Time {
		t.Fatalf("simulated %v faster than ideal model %v", res.Makespan, pred.Time)
	}
	if e := stats.RelErr(float64(res.Makespan), float64(pred.Time)); e > 15 {
		t.Fatalf("sim deviates %.1f%% from model", e)
	}
	if res.Tasks != 50 {
		t.Fatalf("BSP steps = %d, want 50", res.Tasks)
	}
}

func TestBSPSingleInstanceNoComm(t *testing.T) {
	// Communication applies only across instances: a single-node run
	// with zero startup should sit within jitter of the model.
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 2048, A: 20}
	tuple := config.MustTuple(0, 0, 1, 0, 0, 0, 0, 0, 0)
	opts := DefaultOptions()
	opts.Startup = map[string]units.Seconds{"galaxy": 0}
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	pred := model.FromIPC(cat, app).Predict(app.Demand(p), tuple)
	if e := stats.RelErr(float64(res.Makespan), float64(pred.Time)); e > 3.5 {
		t.Fatalf("single-node BSP deviates %.1f%% from model", e)
	}
}

func TestMasterWorkerDispatchSlowsLargeClusters(t *testing.T) {
	// The same sand workload on a large cluster suffers relatively
	// more from serialized dispatch than the model predicts.
	cat := ec2.Oregon()
	var app sand.App
	p := workload.Params{N: 512e6, A: 0.32}
	caps := model.FromIPC(cat, app)

	small := config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0)
	large := config.MustTuple(5, 5, 5, 0, 0, 0, 0, 0, 0)
	rSmall, err := Run(app, p, small, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rLarge, err := Run(app, p, large, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := app.Demand(p)
	overSmall := float64(rSmall.Makespan) / float64(caps.Predict(d, small).Time)
	overLarge := float64(rLarge.Makespan) / float64(caps.Predict(d, large).Time)
	if overLarge <= overSmall {
		t.Fatalf("dispatch overhead ratio small=%.3f large=%.3f; want larger cluster worse",
			overSmall, overLarge)
	}
	if overLarge < 1.02 {
		t.Fatalf("large-cluster overhead %.3f; sand must under-predict at scale", overLarge)
	}
}

func TestCostBillsBootAndMakespan(t *testing.T) {
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 16, A: 20}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	opts := DefaultOptions()
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	price, _ := cat.Lookup("c4.large")
	want := 2 * float64(price.Price) / 3600 * float64(opts.Boot+res.Makespan)
	if math.Abs(float64(res.Cost)-want)/want > 1e-9 {
		t.Fatalf("cost = %v, want %v", res.Cost, want)
	}
	if res.Instances != 2 || res.VCPUs != 4 {
		t.Fatalf("cluster shape %d instances / %d vCPUs", res.Instances, res.VCPUs)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 2048, A: 10}
	tuple := config.MustTuple(1, 1, 0, 0, 0, 0, 0, 0, 0)
	a, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Cost != b.Cost {
		t.Fatal("simulation not deterministic for equal options")
	}
	opts2 := DefaultOptions()
	opts2.Seed = 99
	c, err := Run(app, p, tuple, cat, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan == a.Makespan {
		t.Fatal("different seed produced identical makespan (jitter not applied)")
	}
}

func TestPartitionProportional(t *testing.T) {
	vcpus := []vcpuRef{{0, 100}, {0, 100}, {1, 200}}
	share := partitionProportional(40, vcpus)
	if share[0]+share[1]+share[2] != 40 {
		t.Fatalf("partition loses elements: %v", share)
	}
	if share[2] <= share[0] {
		t.Fatalf("faster rank got fewer elements: %v", share)
	}
	// Exact proportional case.
	if share[0] != 10 || share[1] != 10 || share[2] != 20 {
		t.Fatalf("partition = %v, want [10 10 20]", share)
	}
}

func TestPartitionRemainder(t *testing.T) {
	vcpus := []vcpuRef{{0, 1}, {0, 1}, {0, 1}}
	share := partitionProportional(10, vcpus)
	total := 0
	for _, s := range share {
		total += s
		if s < 3 || s > 4 {
			t.Fatalf("unbalanced remainder split: %v", share)
		}
	}
	if total != 10 {
		t.Fatalf("partition total %d, want 10", total)
	}
}

func TestAppStartupDefaults(t *testing.T) {
	if AppStartup("x264") <= AppStartup("galaxy") {
		t.Fatal("x264 stages input; its startup should dominate galaxy's")
	}
	if AppStartup("unknown") <= 0 {
		t.Fatal("unknown apps need a positive default startup")
	}
}

func TestMasterWorkerFewTasks(t *testing.T) {
	// Fewer tasks than workers must still terminate and keep workers
	// partially idle.
	cat := ec2.Oregon()
	var app sand.App
	p := workload.Params{N: 2e6, A: 0.32} // few tasks
	tuple := config.MustTuple(5, 0, 0, 0, 0, 0, 0, 0, 0)
	res, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}

func TestStragglerSlowsRun(t *testing.T) {
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 2048, A: 10}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	base, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slow := DefaultOptions()
	slow.Stragglers = map[int]float64{0: 2.0}
	res, err := Run(app, p, tuple, cat, slow)
	if err != nil {
		t.Fatal(err)
	}
	// Rate-proportional partitioning compensates the straggler with a
	// smaller share, so the loss equals the capacity loss: one of two
	// instances at half speed leaves 3/4 of the capacity → ~4/3 the
	// makespan, not 2x.
	ratio := float64(res.Makespan) / float64(base.Makespan)
	if ratio < 1.15 || ratio > 1.45 {
		t.Fatalf("2x straggler grew makespan %.2fx (%v -> %v), want ~1.33x",
			ratio, base.Makespan, res.Makespan)
	}
}

func TestFailureIndependentRecovers(t *testing.T) {
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 64, A: 20}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	base, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	failed := DefaultOptions()
	failed.FailInstance = 1
	failed.FailAt = base.Makespan / 2
	res, err := Run(app, p, tuple, cat, failed)
	if err != nil {
		t.Fatal(err)
	}
	// Losing half the cluster halfway through must slow the run but
	// still complete all work.
	if res.Makespan <= base.Makespan {
		t.Fatalf("failure did not slow the run: %v vs %v", res.Makespan, base.Makespan)
	}
	// Rough bound: remaining half of the work on half the capacity
	// adds at most ~1 extra base makespan plus a task tail.
	if float64(res.Makespan) > 2.5*float64(base.Makespan) {
		t.Fatalf("failure recovery too slow: %v vs %v", res.Makespan, base.Makespan)
	}
	// The failed instance stops billing at the failure time.
	if res.Cost >= base.Cost*2 {
		t.Fatalf("failed run cost %v unreasonably high vs %v", res.Cost, base.Cost)
	}
}

func TestFailureAbortsBSPAndMasterWorker(t *testing.T) {
	cat := ec2.Oregon()
	opts := DefaultOptions()
	opts.FailInstance = 0
	opts.FailAt = 10
	if _, err := Run(galaxy.App{}, workload.Params{N: 2048, A: 10},
		config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts); err == nil {
		t.Fatal("BSP survived an instance failure")
	}
	if _, err := Run(sand.App{}, workload.Params{N: 8e6, A: 0.32},
		config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts); err == nil {
		t.Fatal("master-worker survived an instance failure")
	}
}

func TestFailureValidation(t *testing.T) {
	cat := ec2.Oregon()
	opts := DefaultOptions()
	opts.FailInstance = 99
	opts.FailAt = 10
	if _, err := Run(x264.App{}, workload.Params{N: 8, A: 20},
		config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts); err == nil {
		t.Fatal("out-of-cluster fail instance accepted")
	}
}

func TestFailureWorkConservation(t *testing.T) {
	// Every task completes exactly once on a surviving worker: the
	// makespan with a failure at t=0 equals a run on the surviving
	// instance alone.
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 32, A: 20}
	two := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	one := config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0)

	failEarly := DefaultOptions()
	failEarly.FailInstance = 1
	failEarly.FailAt = units.Seconds(0.001)
	resFail, err := Run(app, p, two, cat, failEarly)
	if err != nil {
		t.Fatal(err)
	}
	resOne, err := Run(app, p, one, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Jitter differs per instance id, so allow a few percent.
	if e := stats.RelErr(float64(resFail.Makespan), float64(resOne.Makespan)); e > 5 {
		t.Fatalf("immediate failure (%v) differs %.1f%% from single-instance run (%v)",
			resFail.Makespan, e, resOne.Makespan)
	}
}

func TestZeroEventTraceBitForBit(t *testing.T) {
	// An explicitly empty trace under Recover (with checkpointing off)
	// must follow the exact event sequence and float arithmetic of the
	// default strict run: same makespan, same cost, to the last bit.
	cat := ec2.Oregon()
	cases := []struct {
		app   workload.App
		p     workload.Params
		tuple config.Tuple
	}{
		{x264.App{}, workload.Params{N: 32, A: 20}, config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)},
		{galaxy.App{}, workload.Params{N: 2048, A: 10}, config.MustTuple(1, 1, 0, 0, 0, 0, 0, 0, 0)},
		{sand.App{}, workload.Params{N: 8e6, A: 0.32}, config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)},
	}
	for _, c := range cases {
		base, err := Run(c.app, c.p, c.tuple, cat, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", c.app.Name(), err)
		}
		rec := DefaultOptions()
		rec.Trace = faults.Trace{}
		rec.Recovery = faults.Recovery{Mode: faults.Recover, MaxTaskRetries: 3, FailoverDetection: 10}
		got, err := Run(c.app, c.p, c.tuple, cat, rec)
		if err != nil {
			t.Fatalf("%s: %v", c.app.Name(), err)
		}
		if got.Makespan != base.Makespan || got.Cost != base.Cost || got.Events != base.Events {
			t.Fatalf("%s: zero-event Recover run diverged: makespan %v vs %v, cost %v vs %v, events %d vs %d",
				c.app.Name(), got.Makespan, base.Makespan, got.Cost, base.Cost, got.Events, base.Events)
		}
		if got.Failures != 0 || got.Respawned != 0 {
			t.Fatalf("%s: zero-event run reports %d failures / %d respawns",
				c.app.Name(), got.Failures, got.Respawned)
		}
	}
}

func TestStrictAbortTraceReproducesAborts(t *testing.T) {
	// Multi-event traces under the zero-value (StrictAbort) policy must
	// reproduce the exact legacy abort errors for gang-scheduled and
	// master-anchored plans.
	cat := ec2.Oregon()
	opts := DefaultOptions()
	opts.Trace = faults.NewTrace(
		faults.Event{Instance: 0, At: 10},
		faults.Event{Instance: 1, At: 20},
	)
	_, err := Run(galaxy.App{}, workload.Params{N: 2048, A: 10},
		config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts)
	if err == nil || err.Error() != "cloudsim: gang-scheduled BSP job aborts on instance failure" {
		t.Fatalf("BSP strict abort error = %v", err)
	}
	_, err = Run(sand.App{}, workload.Params{N: 8e6, A: 0.32},
		config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts)
	if err == nil || err.Error() != "cloudsim: work-queue job aborts when an instance fails (master-anchored)" {
		t.Fatalf("master-worker strict abort error = %v", err)
	}
}

func TestBSPCheckpointOverheadBilled(t *testing.T) {
	// With no failures, checkpointing every k steps costs exactly
	// floor((steps-1)/k) checkpoint writes of wall time on top of the
	// plain barrier loop — and that time is billed.
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 4096, A: 50}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	plain, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Recovery = faults.Recovery{Mode: faults.Recover, CheckpointEverySteps: 10, CheckpointCost: 5}
	ck, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 50 steps, checkpoints after 10, 20, 30, 40 (never after the last).
	want := plain.Makespan + 4*5
	if math.Abs(float64(ck.Makespan-want)) > 1e-6 {
		t.Fatalf("checkpointed makespan %v, want plain %v + 20s", ck.Makespan, plain.Makespan)
	}
	if ck.Cost <= plain.Cost {
		t.Fatalf("checkpoint overhead not billed: %v vs %v", ck.Cost, plain.Cost)
	}
}

func TestBSPCheckpointRestartCompletes(t *testing.T) {
	// A mid-run failure rolls the survivors back to the last checkpoint;
	// the run still completes every step, and checkpointing beats
	// restarting the whole computation from step 0.
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 4096, A: 50}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	rec := faults.Recovery{Mode: faults.Recover, CheckpointEverySteps: 5, CheckpointCost: 2}

	ckOnly := DefaultOptions()
	ckOnly.Recovery = rec
	base, err := Run(app, p, tuple, cat, ckOnly)
	if err != nil {
		t.Fatal(err)
	}
	failAt := units.Seconds(0.6 * float64(base.Makespan))

	withFail := ckOnly
	withFail.Trace = faults.NewTrace(faults.Event{Instance: 1, At: failAt})
	res, err := Run(app, p, tuple, cat, withFail)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 50 {
		t.Fatalf("steps completed = %d, want 50", res.Tasks)
	}
	if res.Makespan <= base.Makespan {
		t.Fatalf("mid-run failure did not slow the run: %v vs %v", res.Makespan, base.Makespan)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures)
	}

	noCkpt := DefaultOptions()
	noCkpt.Recovery = faults.Recovery{Mode: faults.Recover}
	noCkpt.Trace = withFail.Trace
	fromZero, err := Run(app, p, tuple, cat, noCkpt)
	if err != nil {
		t.Fatal(err)
	}
	if fromZero.Makespan <= res.Makespan {
		t.Fatalf("restart-from-zero (%v) not slower than checkpointed restart (%v)",
			fromZero.Makespan, res.Makespan)
	}
}

func TestBSPAllRanksFailedErrors(t *testing.T) {
	cat := ec2.Oregon()
	opts := DefaultOptions()
	opts.Recovery = faults.Recovery{Mode: faults.Recover, CheckpointEverySteps: 5, CheckpointCost: 2}
	opts.Trace = faults.NewTrace(
		faults.Event{Instance: 0, At: 1},
		faults.Event{Instance: 1, At: 2},
	)
	_, err := Run(galaxy.App{}, workload.Params{N: 2048, A: 20},
		config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts)
	if err == nil {
		t.Fatal("run with every rank dead completed")
	}
}

func TestBSPRespawnRevivesDeadCluster(t *testing.T) {
	// Sole instance dies mid-run; a respawned replacement boots, rejoins
	// the (otherwise empty) world at the restart, and finishes the job.
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 2048, A: 20}
	tuple := config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0)
	base, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Recovery = faults.Recovery{
		Mode: faults.Recover, CheckpointEverySteps: 5, CheckpointCost: 2, Respawn: true,
	}
	opts.Trace = faults.NewTrace(faults.Event{Instance: 0, At: base.Makespan / 2})
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Respawned != 1 {
		t.Fatalf("respawned = %d, want 1", res.Respawned)
	}
	// The replacement sits out the boot latency, then redoes the steps
	// since the last checkpoint.
	if res.Makespan <= base.Makespan/2+opts.Boot {
		t.Fatalf("makespan %v finished before the replacement could boot", res.Makespan)
	}
	if res.Tasks != 20 {
		t.Fatalf("steps = %d, want 20", res.Tasks)
	}
}

func TestMasterFailoverCompletes(t *testing.T) {
	// The master dies mid-run; after FailoverDetection a surviving
	// instance is promoted and the remaining work drains through it.
	cat := ec2.Oregon()
	var app sand.App
	p := workload.Params{N: 64e6, A: 0.32}
	tuple := config.MustTuple(3, 0, 0, 0, 0, 0, 0, 0, 0)
	base, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Recovery = faults.Recovery{Mode: faults.Recover, MaxTaskRetries: 5, FailoverDetection: 10}
	opts.Trace = faults.NewTrace(faults.Event{Instance: 0, At: base.Makespan / 2})
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= base.Makespan {
		t.Fatalf("master failover did not slow the run: %v vs %v", res.Makespan, base.Makespan)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures)
	}
	// The dead master stops billing at the failure.
	if res.Cost >= base.Cost*2 {
		t.Fatalf("failover run cost %v unreasonably high vs %v", res.Cost, base.Cost)
	}
}

func TestMasterAndAllWorkersFailErrors(t *testing.T) {
	cat := ec2.Oregon()
	opts := DefaultOptions()
	opts.Recovery = faults.Recovery{Mode: faults.Recover, FailoverDetection: 10}
	opts.Trace = faults.NewTrace(
		faults.Event{Instance: 0, At: 30},
		faults.Event{Instance: 1, At: 31},
	)
	_, err := Run(sand.App{}, workload.Params{N: 64e6, A: 0.32},
		config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts)
	if err == nil {
		t.Fatal("run with master and every worker dead completed")
	}
}

func TestMasterWorkerRespawnRevivesDeadCluster(t *testing.T) {
	// Both instances die; respawned replacements boot, one is promoted
	// to master, and the queue drains to completion.
	cat := ec2.Oregon()
	var app sand.App
	p := workload.Params{N: 64e6, A: 0.32}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	base, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Recovery = faults.Recovery{
		Mode: faults.Recover, MaxTaskRetries: 5, FailoverDetection: 10, Respawn: true,
	}
	opts.Trace = faults.NewTrace(
		faults.Event{Instance: 0, At: base.Makespan / 3},
		faults.Event{Instance: 1, At: base.Makespan / 2},
	)
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Respawned != 2 {
		t.Fatalf("respawned = %d, want 2", res.Respawned)
	}
	if res.Makespan <= base.Makespan {
		t.Fatalf("double failure did not slow the run: %v vs %v", res.Makespan, base.Makespan)
	}
}

func TestIndependentMultiFailureConservation(t *testing.T) {
	// Two of three instances die immediately: every task still completes
	// exactly once, so the makespan matches a single-instance run.
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 32, A: 20}
	three := config.MustTuple(3, 0, 0, 0, 0, 0, 0, 0, 0)
	one := config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0)

	opts := DefaultOptions()
	opts.Recovery = faults.DefaultRecovery()
	opts.Trace = faults.NewTrace(
		faults.Event{Instance: 1, At: units.Seconds(0.001)},
		faults.Event{Instance: 2, At: units.Seconds(0.002)},
	)
	resFail, err := Run(app, p, three, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	resOne, err := Run(app, p, one, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(float64(resFail.Makespan), float64(resOne.Makespan)); e > 5 {
		t.Fatalf("double immediate failure (%v) differs %.1f%% from single-instance run (%v)",
			resFail.Makespan, e, resOne.Makespan)
	}
	if resFail.Failures != 2 {
		t.Fatalf("failures = %d, want 2", resFail.Failures)
	}
}

func TestIndependentRetryBudgetExceeded(t *testing.T) {
	// A task lost twice under MaxTaskRetries=1 must fail the run: fail
	// one instance mid-wave (its tasks are re-dispatched), then kill
	// both survivors while the retried tasks are in flight.
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 6, A: 20} // one task per vCPU: a single wave
	tuple := config.MustTuple(3, 0, 0, 0, 0, 0, 0, 0, 0)
	opts := DefaultOptions()
	opts.Startup = map[string]units.Seconds{"x264": 0}
	base, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	wave := float64(base.Makespan)
	opts.Recovery = faults.Recovery{Mode: faults.Recover, MaxTaskRetries: 1}
	opts.Trace = faults.NewTrace(
		faults.Event{Instance: 0, At: units.Seconds(0.5 * wave)},
		faults.Event{Instance: 1, At: units.Seconds(1.3 * wave)},
		faults.Event{Instance: 2, At: units.Seconds(1.35 * wave)},
	)
	_, err = Run(app, p, tuple, cat, opts)
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("exhausted retry budget not reported: %v", err)
	}
}

func TestIndependentRespawnSpeedsRecoveryAndBills(t *testing.T) {
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 64, A: 20}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	base, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trace := faults.NewTrace(faults.Event{Instance: 1, At: units.Seconds(0.3 * float64(base.Makespan))})

	noRespawn := DefaultOptions()
	noRespawn.Recovery = faults.DefaultRecovery()
	noRespawn.Trace = trace
	plain, err := Run(app, p, tuple, cat, noRespawn)
	if err != nil {
		t.Fatal(err)
	}
	withRespawn := noRespawn
	withRespawn.Recovery.Respawn = true
	res, err := Run(app, p, tuple, cat, withRespawn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Respawned != 1 {
		t.Fatalf("respawned = %d, want 1", res.Respawned)
	}
	if res.Makespan >= plain.Makespan {
		t.Fatalf("replacement capacity did not speed the run: %v vs %v", res.Makespan, plain.Makespan)
	}
	// The replacement is billed from the failure through run end, so it
	// cannot be free.
	price, _ := cat.Lookup("c4.large")
	replBill := float64(price.Price) / 3600 * (float64(res.Makespan) - 0.3*float64(base.Makespan))
	if float64(res.Cost) <= float64(plain.Cost)-float64(plain.Makespan-res.Makespan)*2*float64(price.Price)/3600 {
		t.Fatalf("respawn run cost %v does not include replacement billing (~%.4f USD)", res.Cost, replBill)
	}
	// Determinism with respawns in play.
	again, err := Run(app, p, tuple, cat, withRespawn)
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != res.Makespan || again.Cost != res.Cost {
		t.Fatal("respawn run not deterministic for equal options")
	}
}

func TestMultiEventBillingCaps(t *testing.T) {
	// Every failed instance bills Boot + min(FailAt, makespan); the
	// survivor bills Boot + makespan.
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 32, A: 20}
	tuple := config.MustTuple(3, 0, 0, 0, 0, 0, 0, 0, 0)
	opts := DefaultOptions()
	opts.Recovery = faults.DefaultRecovery()
	t1, t2 := units.Seconds(40), units.Seconds(90)
	opts.Trace = faults.NewTrace(
		faults.Event{Instance: 1, At: t1},
		faults.Event{Instance: 2, At: t2},
	)
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	price, _ := cat.Lookup("c4.large")
	perHr := float64(price.Price) / 3600
	want := perHr * (float64(opts.Boot+res.Makespan) + float64(opts.Boot+t1) + float64(opts.Boot+t2))
	if math.Abs(float64(res.Cost)-want)/want > 1e-9 {
		t.Fatalf("cost = %v, want %v (per-event billing caps)", res.Cost, want)
	}
}

func TestFailureAfterCompletionBillsFullSpan(t *testing.T) {
	// An event after the run already finished changes nothing: the
	// instance bills through the makespan, exactly as without the event.
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 16, A: 20}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	base, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Trace = faults.NewTrace(faults.Event{Instance: 1, At: base.Makespan + 1e6})
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != base.Makespan || res.Cost != base.Cost {
		t.Fatalf("post-completion event altered the run: makespan %v vs %v, cost %v vs %v",
			res.Makespan, base.Makespan, res.Cost, base.Cost)
	}
}
