package cloudsim

import (
	"math"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/apps/x264"
	"repro/internal/config"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestRunValidation(t *testing.T) {
	cat := ec2.Oregon()
	opts := DefaultOptions()
	if _, err := Run(galaxy.App{}, workload.Params{N: 1024, A: 10},
		config.MustTuple(1, 0), cat, opts); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := Run(galaxy.App{}, workload.Params{N: 1024, A: 10},
		config.MustTuple(0, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts); err == nil {
		t.Fatal("empty configuration accepted")
	}
}

func TestIndependentNearModelOnSingleInstance(t *testing.T) {
	// On one instance with negligible startup, the simulator must
	// approach the analytic model: same capacity law, only jitter and
	// task-granularity tail differ.
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 64, A: 20}
	tuple := config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0)
	opts := DefaultOptions()
	opts.Startup = map[string]units.Seconds{"x264": 0}
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	pred := model.FromIPC(cat, app).Predict(app.Demand(p), tuple)
	if e := stats.RelErr(float64(pred.Time), float64(res.Makespan)); e > 5 {
		t.Fatalf("sim vs model differ %.1f%% (sim %v, model %v)", e, res.Makespan, pred.Time)
	}
}

func TestIndependentTailImbalance(t *testing.T) {
	// One task fewer than 2× the vCPU count leaves the last wave half
	// empty: makespan ≈ 2 task times even though capacity suggests
	// less.
	cat := ec2.Oregon()
	var app x264.App
	tuple := config.MustTuple(0, 0, 1, 0, 0, 0, 0, 0, 0) // 8 vCPUs
	p := workload.Params{N: 9, A: 20}                    // 9 tasks on 8 vCPUs
	opts := DefaultOptions()
	opts.Startup = map[string]units.Seconds{"x264": 0}
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	taskTime := float64(x264.ClipDemand(20)) / (app.IPC(ec2.C4) * 2.9e9)
	if got := float64(res.Makespan); got < 1.9*taskTime {
		t.Fatalf("makespan %v < 2 waves (%v); tail imbalance not modeled", got, 2*taskTime)
	}
}

func TestBSPGalaxyMatchesModelShape(t *testing.T) {
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 4096, A: 50}
	tuple := config.MustTuple(2, 0, 0, 1, 0, 0, 0, 0, 0)
	res, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pred := model.FromIPC(cat, app).Predict(app.Demand(p), tuple)
	// Simulated time exceeds the ideal model (startup, comm, remainder
	// imbalance) but stays within ~15%.
	if res.Makespan < pred.Time {
		t.Fatalf("simulated %v faster than ideal model %v", res.Makespan, pred.Time)
	}
	if e := stats.RelErr(float64(res.Makespan), float64(pred.Time)); e > 15 {
		t.Fatalf("sim deviates %.1f%% from model", e)
	}
	if res.Tasks != 50 {
		t.Fatalf("BSP steps = %d, want 50", res.Tasks)
	}
}

func TestBSPSingleInstanceNoComm(t *testing.T) {
	// Communication applies only across instances: a single-node run
	// with zero startup should sit within jitter of the model.
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 2048, A: 20}
	tuple := config.MustTuple(0, 0, 1, 0, 0, 0, 0, 0, 0)
	opts := DefaultOptions()
	opts.Startup = map[string]units.Seconds{"galaxy": 0}
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	pred := model.FromIPC(cat, app).Predict(app.Demand(p), tuple)
	if e := stats.RelErr(float64(res.Makespan), float64(pred.Time)); e > 3.5 {
		t.Fatalf("single-node BSP deviates %.1f%% from model", e)
	}
}

func TestMasterWorkerDispatchSlowsLargeClusters(t *testing.T) {
	// The same sand workload on a large cluster suffers relatively
	// more from serialized dispatch than the model predicts.
	cat := ec2.Oregon()
	var app sand.App
	p := workload.Params{N: 512e6, A: 0.32}
	caps := model.FromIPC(cat, app)

	small := config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0)
	large := config.MustTuple(5, 5, 5, 0, 0, 0, 0, 0, 0)
	rSmall, err := Run(app, p, small, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rLarge, err := Run(app, p, large, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := app.Demand(p)
	overSmall := float64(rSmall.Makespan) / float64(caps.Predict(d, small).Time)
	overLarge := float64(rLarge.Makespan) / float64(caps.Predict(d, large).Time)
	if overLarge <= overSmall {
		t.Fatalf("dispatch overhead ratio small=%.3f large=%.3f; want larger cluster worse",
			overSmall, overLarge)
	}
	if overLarge < 1.02 {
		t.Fatalf("large-cluster overhead %.3f; sand must under-predict at scale", overLarge)
	}
}

func TestCostBillsBootAndMakespan(t *testing.T) {
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 16, A: 20}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	opts := DefaultOptions()
	res, err := Run(app, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	price, _ := cat.Lookup("c4.large")
	want := 2 * float64(price.Price) / 3600 * float64(opts.Boot+res.Makespan)
	if math.Abs(float64(res.Cost)-want)/want > 1e-9 {
		t.Fatalf("cost = %v, want %v", res.Cost, want)
	}
	if res.Instances != 2 || res.VCPUs != 4 {
		t.Fatalf("cluster shape %d instances / %d vCPUs", res.Instances, res.VCPUs)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 2048, A: 10}
	tuple := config.MustTuple(1, 1, 0, 0, 0, 0, 0, 0, 0)
	a, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Cost != b.Cost {
		t.Fatal("simulation not deterministic for equal options")
	}
	opts2 := DefaultOptions()
	opts2.Seed = 99
	c, err := Run(app, p, tuple, cat, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan == a.Makespan {
		t.Fatal("different seed produced identical makespan (jitter not applied)")
	}
}

func TestPartitionProportional(t *testing.T) {
	vcpus := []vcpuRef{{0, 100}, {0, 100}, {1, 200}}
	share := partitionProportional(40, vcpus)
	if share[0]+share[1]+share[2] != 40 {
		t.Fatalf("partition loses elements: %v", share)
	}
	if share[2] <= share[0] {
		t.Fatalf("faster rank got fewer elements: %v", share)
	}
	// Exact proportional case.
	if share[0] != 10 || share[1] != 10 || share[2] != 20 {
		t.Fatalf("partition = %v, want [10 10 20]", share)
	}
}

func TestPartitionRemainder(t *testing.T) {
	vcpus := []vcpuRef{{0, 1}, {0, 1}, {0, 1}}
	share := partitionProportional(10, vcpus)
	total := 0
	for _, s := range share {
		total += s
		if s < 3 || s > 4 {
			t.Fatalf("unbalanced remainder split: %v", share)
		}
	}
	if total != 10 {
		t.Fatalf("partition total %d, want 10", total)
	}
}

func TestAppStartupDefaults(t *testing.T) {
	if AppStartup("x264") <= AppStartup("galaxy") {
		t.Fatal("x264 stages input; its startup should dominate galaxy's")
	}
	if AppStartup("unknown") <= 0 {
		t.Fatal("unknown apps need a positive default startup")
	}
}

func TestMasterWorkerFewTasks(t *testing.T) {
	// Fewer tasks than workers must still terminate and keep workers
	// partially idle.
	cat := ec2.Oregon()
	var app sand.App
	p := workload.Params{N: 2e6, A: 0.32} // few tasks
	tuple := config.MustTuple(5, 0, 0, 0, 0, 0, 0, 0, 0)
	res, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}

func TestStragglerSlowsRun(t *testing.T) {
	cat := ec2.Oregon()
	var app galaxy.App
	p := workload.Params{N: 2048, A: 10}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	base, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slow := DefaultOptions()
	slow.Stragglers = map[int]float64{0: 2.0}
	res, err := Run(app, p, tuple, cat, slow)
	if err != nil {
		t.Fatal(err)
	}
	// Rate-proportional partitioning compensates the straggler with a
	// smaller share, so the loss equals the capacity loss: one of two
	// instances at half speed leaves 3/4 of the capacity → ~4/3 the
	// makespan, not 2x.
	ratio := float64(res.Makespan) / float64(base.Makespan)
	if ratio < 1.15 || ratio > 1.45 {
		t.Fatalf("2x straggler grew makespan %.2fx (%v -> %v), want ~1.33x",
			ratio, base.Makespan, res.Makespan)
	}
}

func TestFailureIndependentRecovers(t *testing.T) {
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 64, A: 20}
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	base, err := Run(app, p, tuple, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	failed := DefaultOptions()
	failed.FailInstance = 1
	failed.FailAt = base.Makespan / 2
	res, err := Run(app, p, tuple, cat, failed)
	if err != nil {
		t.Fatal(err)
	}
	// Losing half the cluster halfway through must slow the run but
	// still complete all work.
	if res.Makespan <= base.Makespan {
		t.Fatalf("failure did not slow the run: %v vs %v", res.Makespan, base.Makespan)
	}
	// Rough bound: remaining half of the work on half the capacity
	// adds at most ~1 extra base makespan plus a task tail.
	if float64(res.Makespan) > 2.5*float64(base.Makespan) {
		t.Fatalf("failure recovery too slow: %v vs %v", res.Makespan, base.Makespan)
	}
	// The failed instance stops billing at the failure time.
	if res.Cost >= base.Cost*2 {
		t.Fatalf("failed run cost %v unreasonably high vs %v", res.Cost, base.Cost)
	}
}

func TestFailureAbortsBSPAndMasterWorker(t *testing.T) {
	cat := ec2.Oregon()
	opts := DefaultOptions()
	opts.FailInstance = 0
	opts.FailAt = 10
	if _, err := Run(galaxy.App{}, workload.Params{N: 2048, A: 10},
		config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts); err == nil {
		t.Fatal("BSP survived an instance failure")
	}
	if _, err := Run(sand.App{}, workload.Params{N: 8e6, A: 0.32},
		config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts); err == nil {
		t.Fatal("master-worker survived an instance failure")
	}
}

func TestFailureValidation(t *testing.T) {
	cat := ec2.Oregon()
	opts := DefaultOptions()
	opts.FailInstance = 99
	opts.FailAt = 10
	if _, err := Run(x264.App{}, workload.Params{N: 8, A: 20},
		config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0), cat, opts); err == nil {
		t.Fatal("out-of-cluster fail instance accepted")
	}
}

func TestFailureWorkConservation(t *testing.T) {
	// Every task completes exactly once on a surviving worker: the
	// makespan with a failure at t=0 equals a run on the surviving
	// instance alone.
	cat := ec2.Oregon()
	var app x264.App
	p := workload.Params{N: 32, A: 20}
	two := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	one := config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0)

	failEarly := DefaultOptions()
	failEarly.FailInstance = 1
	failEarly.FailAt = units.Seconds(0.001)
	resFail, err := Run(app, p, two, cat, failEarly)
	if err != nil {
		t.Fatal(err)
	}
	resOne, err := Run(app, p, one, cat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Jitter differs per instance id, so allow a few percent.
	if e := stats.RelErr(float64(resFail.Makespan), float64(resOne.Makespan)); e > 5 {
		t.Fatalf("immediate failure (%v) differs %.1f%% from single-instance run (%v)",
			resFail.Makespan, e, resOne.Makespan)
	}
}
