// Package cloudsim is the cloud execution substrate: a discrete-event
// simulator of running an elastic application's full-scale workload on
// a cluster provisioned from a configuration tuple. It plays the role
// Amazon EC2 plays in the paper — both for baseline capacity
// characterization (timed scale-down runs on single instances, §IV-B)
// and for the "Actual" column of the Table IV validation.
//
// The simulator deliberately includes effects the analytical model
// (Eq. 2–6) abstracts away, because those effects are what the paper's
// validation error consists of:
//
//   - application startup on the cluster (MPI init, input staging),
//     which contaminates short baseline runs and amortizes at scale;
//   - per-instance performance jitter from processor sharing [26];
//   - BSP barrier synchronization and per-step exchanges (galaxy);
//   - serialized master dispatch and input shipping for work-queue
//     applications (sand);
//   - task-granularity tail imbalance on heterogeneous clusters;
//   - billing from provisioning (boot included) to teardown.
package cloudsim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/des"
	"repro/internal/ec2"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Network models the cluster interconnect (paper-era EC2: ~1 Gb/s
// class links with virtualization-inflated latency).
type Network struct {
	LatencySec  float64
	BytesPerSec float64
}

// DefaultNetwork returns the stock interconnect.
func DefaultNetwork() Network { return Network{LatencySec: 2e-3, BytesPerSec: 125e6} }

// Options configure a run.
type Options struct {
	Seed    uint64
	Boot    units.Seconds // VM provisioning latency (billed, not timed)
	Network Network
	// Startup overrides the per-application fixed startup; nil uses
	// AppStartup's defaults.
	Startup map[string]units.Seconds

	// Stragglers maps instance indices (provisioning order) to
	// slowdown factors > 1, modeling oversubscribed hosts.
	Stragglers map[int]float64

	// Failure injection: when FailAt > 0, instance FailInstance is
	// terminated at that time (measured from application launch). Its
	// in-flight tasks are re-dispatched to surviving workers.
	// Independent plans tolerate the failure; gang-scheduled BSP and
	// master-anchored work-queue plans abort with an error, matching
	// the fault model of the paper's applications.
	FailInstance int
	FailAt       units.Seconds
}

// AppStartup reports the default application startup time on the
// cluster: x264 stages its codec and input pipeline, galaxy runs MPI
// initialization, sand's lightweight master boots almost instantly.
func AppStartup(appName string) units.Seconds {
	switch appName {
	case "x264":
		return 25
	case "galaxy":
		return 0.75
	case "sand":
		return 0.2
	default:
		return 1
	}
}

// NetworkCPUOverhead reports the fraction of vCPU capacity lost to
// virtualized network processing when the application spans multiple
// instances (Wang & Ng [26]: packet processing on EC2 guests steals
// guest CPU). Single-instance runs — including all baseline
// characterization runs — are unaffected, which is why the analytic
// model, fed with single-instance measurements, under-predicts
// communication-heavy applications at scale (Table IV: sand).
func NetworkCPUOverhead(appName string) float64 {
	switch appName {
	case "x264":
		return 0 // no inter-node communication at all
	case "galaxy":
		return 0.01 // bulk synchronous: few large messages
	case "sand":
		return 0.08 // chatty work-queue RPC: many small messages
	default:
		return 0.02
	}
}

// DefaultOptions returns the standard run configuration.
func DefaultOptions() Options {
	return Options{Seed: 1, Boot: 45, Network: DefaultNetwork()}
}

func (o Options) startup(appName string) units.Seconds {
	if o.Startup != nil {
		if s, ok := o.Startup[appName]; ok {
			return s
		}
	}
	return AppStartup(appName)
}

// Result reports one simulated run.
type Result struct {
	Makespan  units.Seconds // application launch → completion (what a user times)
	Cost      units.USD     // billed: boot through completion, all instances
	Instances int
	VCPUs     int
	Tasks     int
	Events    uint64
}

// Run executes the application's plan for p on a cluster provisioned
// per the tuple.
func Run(app workload.App, p workload.Params, tuple config.Tuple, cat *ec2.Catalog, opts Options) (Result, error) {
	if tuple.Len() != cat.Len() {
		return Result{}, fmt.Errorf("cloudsim: tuple arity %d vs catalog %d", tuple.Len(), cat.Len())
	}
	if tuple.IsEmpty() {
		return Result{}, fmt.Errorf("cloudsim: empty configuration")
	}
	plan := app.Plan(p)
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	cluster := provision(tuple, cat, app, opts)
	startup := opts.startup(app.Name())
	failing := opts.FailAt > 0
	if failing && (opts.FailInstance < 0 || opts.FailInstance >= len(cluster)) {
		return Result{}, fmt.Errorf("cloudsim: fail instance %d outside cluster of %d", opts.FailInstance, len(cluster))
	}

	var sim des.Sim
	var span units.Seconds
	var tasks int
	switch plan.Kind {
	case workload.Independent:
		span, tasks = runIndependent(&sim, cluster, app.Name(), plan, startup, opts)
	case workload.BSP:
		if failing {
			return Result{}, fmt.Errorf("cloudsim: gang-scheduled BSP job aborts on instance failure")
		}
		span, tasks = runBSP(&sim, cluster, app.Name(), plan, startup, opts.Network)
	case workload.MasterWorker:
		if failing {
			return Result{}, fmt.Errorf("cloudsim: work-queue job aborts when an instance fails (master-anchored)")
		}
		span, tasks = runMasterWorker(&sim, cluster, app.Name(), plan, startup, opts.Network)
	default:
		return Result{}, fmt.Errorf("cloudsim: unknown plan kind %v", plan.Kind)
	}

	res := Result{
		Makespan:  span,
		Instances: len(cluster),
		Tasks:     tasks,
		Events:    sim.Events(),
	}
	for i, in := range cluster {
		res.VCPUs += in.Type.VCPUs
		billed := span
		if failing && i == opts.FailInstance && opts.FailAt < span {
			billed = opts.FailAt // terminated instances stop billing
		}
		res.Cost += in.Type.Price.Over(opts.Boot + billed)
	}
	return res, nil
}

// provision builds the cluster's instance list in tuple order.
func provision(tuple config.Tuple, cat *ec2.Catalog, app workload.App, opts Options) []vm.Instance {
	var out []vm.Instance
	id := 0
	for i := 0; i < tuple.Len(); i++ {
		typ := cat.Type(i)
		for k := 0; k < tuple.Count(i); k++ {
			in := vm.Provision(id, typ, app, opts.Seed, opts.Boot)
			if f, ok := opts.Stragglers[id]; ok {
				in = in.Slowed(f)
			}
			out = append(out, in)
			id++
		}
	}
	return out
}

// vcpuRef identifies one vCPU of one instance.
type vcpuRef struct {
	inst int
	rate units.Rate
}

// clusterVCPUs flattens the cluster into per-vCPU workers. When the
// application spans multiple instances, every vCPU loses the
// application's network-processing fraction.
func clusterVCPUs(cluster []vm.Instance, appName string) []vcpuRef {
	factor := 1.0
	if len(cluster) > 1 {
		factor = 1 - NetworkCPUOverhead(appName)
	}
	var out []vcpuRef
	for i, in := range cluster {
		for v := 0; v < in.Type.VCPUs; v++ {
			out = append(out, vcpuRef{inst: i, rate: in.PerVCPURate() * units.Rate(factor)})
		}
	}
	return out
}

// runIndependent schedules plan.Tasks independent tasks onto all vCPUs
// via greedy pull (x264's clip farm). Independent tasks tolerate
// instance failure: in-flight work of a failed instance is
// re-dispatched from scratch to surviving workers.
func runIndependent(sim *des.Sim, cluster []vm.Instance, appName string, plan workload.Plan, startup units.Seconds, opts Options) (units.Seconds, int) {
	vcpus := clusterVCPUs(cluster, appName)
	next := 0
	retry := []int{}
	dead := make([]bool, len(vcpus))
	gen := make([]int, len(vcpus))
	current := make([]int, len(vcpus))
	for i := range current {
		current[i] = -1
	}
	var finish units.Seconds

	take := func() (int, bool) {
		if len(retry) > 0 {
			t := retry[len(retry)-1]
			retry = retry[:len(retry)-1]
			return t, true
		}
		if next < plan.Tasks {
			t := next
			next++
			return t, true
		}
		return -1, false
	}
	started := false
	var pull func(w int)
	pull = func(w int) {
		if dead[w] || !started || current[w] >= 0 {
			return
		}
		task, ok := take()
		if !ok {
			current[w] = -1
			return
		}
		current[w] = task
		myGen := gen[w]
		dur := units.Time(plan.TaskInstr(task), vcpus[w].rate)
		sim.Schedule(dur, func() {
			if gen[w] != myGen {
				return // completion from before this worker's failure
			}
			current[w] = -1
			if sim.Now() > finish {
				finish = sim.Now()
			}
			pull(w)
		})
	}
	sim.At(startup, func() {
		started = true
		for w := range vcpus {
			pull(w)
		}
	})
	if opts.FailAt > 0 {
		sim.At(opts.FailAt, func() {
			for w := range vcpus {
				if vcpus[w].inst != opts.FailInstance {
					continue
				}
				dead[w] = true
				gen[w]++
				if current[w] >= 0 {
					retry = append(retry, current[w])
					current[w] = -1
				}
			}
			// Wake idle survivors for the re-dispatched work.
			for w := range vcpus {
				if !dead[w] && current[w] < 0 {
					pull(w)
				}
			}
		})
	}
	sim.Run()
	if finish < startup {
		finish = startup
	}
	return finish, plan.Tasks
}

// runBSP executes plan.Steps bulk-synchronous steps (galaxy): elements
// are partitioned across ranks (one per vCPU) proportionally to rank
// speed, each step ends at the slowest rank plus the exchange.
func runBSP(sim *des.Sim, cluster []vm.Instance, appName string, plan workload.Plan, startup units.Seconds, net Network) (units.Seconds, int) {
	vcpus := clusterVCPUs(cluster, appName)
	share := partitionProportional(plan.Elements, vcpus)
	// The step's compute phase ends at the slowest rank.
	var slowest units.Seconds
	for r, elems := range share {
		t := units.Time(units.Instructions(float64(elems)*float64(plan.InstrPerElement)), vcpus[r].rate)
		if t > slowest {
			slowest = t
		}
	}
	var comm units.Seconds
	if len(cluster) > 1 {
		comm = units.Seconds(net.LatencySec + plan.CommBytesPerStep/net.BytesPerSec)
	}
	var finish units.Seconds
	step := 0
	var barrier func()
	barrier = func() {
		if step >= plan.Steps {
			finish = sim.Now()
			return
		}
		step++
		sim.Schedule(slowest+comm, barrier)
	}
	sim.At(startup, barrier)
	sim.Run()
	return finish, plan.Steps
}

// partitionProportional splits n elements across ranks proportionally
// to their rates using largest-remainder rounding.
func partitionProportional(n int, vcpus []vcpuRef) []int {
	var total float64
	for _, v := range vcpus {
		total += float64(v.rate)
	}
	share := make([]int, len(vcpus))
	type frac struct {
		idx int
		f   float64
	}
	fracs := make([]frac, len(vcpus))
	assigned := 0
	for i, v := range vcpus {
		exact := float64(n) * float64(v.rate) / total
		share[i] = int(math.Floor(exact))
		assigned += share[i]
		fracs[i] = frac{i, exact - math.Floor(exact)}
	}
	// Hand out the remainder to the largest fractional parts
	// (deterministic tie-break by index).
	for rem := n - assigned; rem > 0; rem-- {
		best := -1
		for i := range fracs {
			if best < 0 || fracs[i].f > fracs[best].f {
				best = i
			}
		}
		share[fracs[best].idx]++
		fracs[best].f = -1
	}
	return share
}

// idleHeap orders idle workers FIFO by the time they went idle.
type idleWorker struct {
	at units.Seconds
	w  int
}
type idleHeap []idleWorker

func (h idleHeap) Len() int { return len(h) }
func (h idleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].w < h[j].w
}
func (h idleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *idleHeap) Push(x interface{}) { *h = append(*h, x.(idleWorker)) }
func (h *idleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// runMasterWorker executes a work-queue plan (sand): the master on
// instance 0 serially dispatches tasks (compute + input shipping over
// its network link); free workers pull dispatched tasks.
func runMasterWorker(sim *des.Sim, cluster []vm.Instance, appName string, plan workload.Plan, startup units.Seconds, net Network) (units.Seconds, int) {
	vcpus := clusterVCPUs(cluster, appName)
	masterRate := cluster[0].PerVCPURate()
	perDispatch := units.Time(plan.DispatchInstr, masterRate)
	if len(cluster) > 1 && net.BytesPerSec > 0 {
		perDispatch += units.Seconds(plan.BytesPerTask / net.BytesPerSec)
	}

	ready := 0 // dispatched, unstarted tasks
	started := 0
	var finish units.Seconds
	idle := make(idleHeap, 0, len(vcpus))
	var assign func(w int)
	assign = func(w int) {
		task := started
		started++
		ready--
		dur := units.Time(plan.TaskInstr(task), vcpus[w].rate)
		sim.Schedule(dur, func() {
			if sim.Now() > finish {
				finish = sim.Now()
			}
			if ready > 0 {
				assign(w)
			} else {
				heap.Push(&idle, idleWorker{sim.Now(), w})
			}
		})
	}
	dispatched := 0
	var dispatch func()
	dispatch = func() {
		if dispatched >= plan.Tasks {
			return
		}
		sim.Schedule(perDispatch, func() {
			dispatched++
			ready++
			if idle.Len() > 0 {
				iw := heap.Pop(&idle).(idleWorker)
				assign(iw.w)
			}
			dispatch()
		})
	}
	sim.At(startup, func() {
		for w := range vcpus {
			heap.Push(&idle, idleWorker{sim.Now(), w})
		}
		dispatch()
	})
	sim.Run()
	if finish < startup {
		finish = startup
	}
	return finish, plan.Tasks
}
