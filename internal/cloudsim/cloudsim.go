// Package cloudsim is the cloud execution substrate: a discrete-event
// simulator of running an elastic application's full-scale workload on
// a cluster provisioned from a configuration tuple. It plays the role
// Amazon EC2 plays in the paper — both for baseline capacity
// characterization (timed scale-down runs on single instances, §IV-B)
// and for the "Actual" column of the Table IV validation.
//
// The simulator deliberately includes effects the analytical model
// (Eq. 2–6) abstracts away, because those effects are what the paper's
// validation error consists of:
//
//   - application startup on the cluster (MPI init, input staging),
//     which contaminates short baseline runs and amortizes at scale;
//   - per-instance performance jitter from processor sharing [26];
//   - BSP barrier synchronization and per-step exchanges (galaxy);
//   - serialized master dispatch and input shipping for work-queue
//     applications (sand);
//   - task-granularity tail imbalance on heterogeneous clusters;
//   - billing from provisioning (boot included) to teardown;
//   - instance failures, injected from a faults.Trace, with per-plan
//     recovery policies (bounded task re-dispatch, BSP
//     checkpoint/restart, master failover, replacement provisioning)
//     or the paper-faithful strict abort.
package cloudsim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/des"
	"repro/internal/ec2"
	"repro/internal/faults"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Network models the cluster interconnect (paper-era EC2: ~1 Gb/s
// class links with virtualization-inflated latency).
type Network struct {
	LatencySec  float64
	BytesPerSec float64
}

// DefaultNetwork returns the stock interconnect.
func DefaultNetwork() Network { return Network{LatencySec: 2e-3, BytesPerSec: 125e6} }

// Options configure a run.
type Options struct {
	Seed    uint64
	Boot    units.Seconds // VM provisioning latency (billed, not timed)
	Network Network
	// Startup overrides the per-application fixed startup; nil uses
	// AppStartup's defaults.
	Startup map[string]units.Seconds

	// Stragglers maps instance indices (provisioning order) to
	// slowdown factors > 1, modeling oversubscribed hosts.
	Stragglers map[int]float64

	// Trace injects instance failures: each event terminates one
	// instance at a time measured from application launch, losing its
	// in-flight work. What happens next is governed by Recovery.
	Trace faults.Trace

	// Recovery selects the failure-handling policy. The zero value is
	// faults.StrictAbort — the paper-faithful fault model: independent
	// plans re-dispatch lost tasks without bound, gang-scheduled BSP
	// and master-anchored work-queue plans abort with an error.
	Recovery faults.Recovery

	// Legacy single-failure injection, superseded by Trace: when Trace
	// is empty and FailAt > 0, the pair is treated as a one-event
	// trace.
	FailInstance int
	FailAt       units.Seconds
}

// AppStartup reports the default application startup time on the
// cluster: x264 stages its codec and input pipeline, galaxy runs MPI
// initialization, sand's lightweight master boots almost instantly.
func AppStartup(appName string) units.Seconds {
	switch appName {
	case "x264":
		return 25
	case "galaxy":
		return 0.75
	case "sand":
		return 0.2
	default:
		return 1
	}
}

// NetworkCPUOverhead reports the fraction of vCPU capacity lost to
// virtualized network processing when the application spans multiple
// instances (Wang & Ng [26]: packet processing on EC2 guests steals
// guest CPU). Single-instance runs — including all baseline
// characterization runs — are unaffected, which is why the analytic
// model, fed with single-instance measurements, under-predicts
// communication-heavy applications at scale (Table IV: sand).
func NetworkCPUOverhead(appName string) float64 {
	switch appName {
	case "x264":
		return 0 // no inter-node communication at all
	case "galaxy":
		return 0.01 // bulk synchronous: few large messages
	case "sand":
		return 0.08 // chatty work-queue RPC: many small messages
	default:
		return 0.02
	}
}

// DefaultOptions returns the standard run configuration.
func DefaultOptions() Options {
	return Options{Seed: 1, Boot: 45, Network: DefaultNetwork()}
}

func (o Options) startup(appName string) units.Seconds {
	if o.Startup != nil {
		if s, ok := o.Startup[appName]; ok {
			return s
		}
	}
	return AppStartup(appName)
}

// trace normalizes the failure injection: the legacy FailInstance /
// FailAt pair becomes a one-event trace when Trace itself is empty.
func (o Options) trace() faults.Trace {
	if !o.Trace.Empty() {
		return o.Trace
	}
	if o.FailAt > 0 {
		return faults.NewTrace(faults.Event{Instance: o.FailInstance, At: o.FailAt})
	}
	return faults.Trace{}
}

// Result reports one simulated run.
type Result struct {
	Makespan  units.Seconds // application launch → completion (what a user times)
	Cost      units.USD     // billed: boot through completion (or failure), all instances
	Instances int           // originally provisioned instances
	VCPUs     int
	Tasks     int
	Events    uint64
	Failures  int // failure events applied to this run
	Respawned int // replacement instances provisioned by the recovery policy
}

// Run executes the application's plan for p on a cluster provisioned
// per the tuple.
//
// Billing: every originally provisioned instance bills from the start
// of its boot through the end of the run, capped at its failure time —
// Boot + min(FailAt, Makespan) — for every event in the trace.
// Replacement instances bill from the moment the failure that triggered
// them fired (their boot happens inside the run) through the end of the
// run.
func Run(app workload.App, p workload.Params, tuple config.Tuple, cat *ec2.Catalog, opts Options) (Result, error) {
	if tuple.Len() != cat.Len() {
		return Result{}, fmt.Errorf("cloudsim: tuple arity %d vs catalog %d", tuple.Len(), cat.Len())
	}
	if tuple.IsEmpty() {
		return Result{}, fmt.Errorf("cloudsim: empty configuration")
	}
	plan := app.Plan(p)
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	if err := opts.Recovery.Validate(); err != nil {
		return Result{}, err
	}
	cluster := provision(tuple, cat, app, opts)
	trace := opts.trace()
	if err := trace.Validate(len(cluster)); err != nil {
		return Result{}, err
	}
	failing := !trace.Empty()
	recovering := opts.Recovery.Mode == faults.Recover

	r := &runner{
		app:     app,
		plan:    plan,
		opts:    opts,
		rec:     opts.Recovery,
		trace:   trace,
		cluster: cluster,
		orig:    len(cluster),
		startup: opts.startup(app.Name()),
	}

	var span units.Seconds
	var tasks int
	switch plan.Kind {
	case workload.Independent:
		span, tasks = r.runIndependent()
	case workload.BSP:
		if failing && !recovering {
			return Result{}, fmt.Errorf("cloudsim: gang-scheduled BSP job aborts on instance failure")
		}
		span, tasks = r.runBSP()
	case workload.MasterWorker:
		if failing && !recovering {
			return Result{}, fmt.Errorf("cloudsim: work-queue job aborts when an instance fails (master-anchored)")
		}
		span, tasks = r.runMasterWorker()
	default:
		return Result{}, fmt.Errorf("cloudsim: unknown plan kind %v", plan.Kind)
	}
	if r.err != nil {
		return Result{}, r.err
	}

	res := Result{
		Makespan:  span,
		Instances: r.orig,
		Tasks:     tasks,
		Events:    r.sim.Events(),
		Failures:  trace.Len(),
		Respawned: len(r.respawns),
	}
	failAt := make(map[int]units.Seconds, trace.Len())
	for _, e := range trace.Events() {
		failAt[e.Instance] = e.At
	}
	for i := 0; i < r.orig; i++ {
		in := r.cluster[i]
		res.VCPUs += in.Type.VCPUs
		billed := span
		if at, ok := failAt[i]; ok && at < billed {
			billed = at // terminated instances stop billing at the event
		}
		res.Cost += in.Type.Price.Over(opts.Boot + billed)
	}
	for _, rs := range r.respawns {
		if rs.at < span {
			res.Cost += rs.price.Over(span - rs.at)
		}
	}
	return res, nil
}

// provision builds the cluster's instance list in tuple order.
func provision(tuple config.Tuple, cat *ec2.Catalog, app workload.App, opts Options) []vm.Instance {
	var out []vm.Instance
	id := 0
	for i := 0; i < tuple.Len(); i++ {
		typ := cat.Type(i)
		for k := 0; k < tuple.Count(i); k++ {
			in := vm.Provision(id, typ, app, opts.Seed, opts.Boot)
			if f, ok := opts.Stragglers[id]; ok {
				in = in.Slowed(f)
			}
			out = append(out, in)
			id++
		}
	}
	return out
}

// respawn records one replacement provisioning for billing: the
// replacement bills from the failure that ordered it through run end.
type respawn struct {
	at    units.Seconds
	price units.USDPerHour
}

// runner carries the state shared by the per-plan schedulers: the
// (growing) instance list, the failure trace, the recovery policy, and
// the first fatal error.
type runner struct {
	sim     des.Sim
	app     workload.App
	plan    workload.Plan
	opts    Options
	rec     faults.Recovery
	trace   faults.Trace
	cluster []vm.Instance // originals, then replacements
	orig    int
	startup units.Seconds

	respawns []respawn
	err      error
}

func (r *runner) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// spawnReplacement orders a replacement for a failed instance and
// returns its index in r.cluster; onBoot runs when it finishes booting.
func (r *runner) spawnReplacement(failed int, onBoot func(idx int)) {
	id := len(r.cluster)
	repl := vm.Replacement(id, r.cluster[failed], r.app, r.opts.Seed)
	r.cluster = append(r.cluster, repl)
	r.respawns = append(r.respawns, respawn{at: r.sim.Now(), price: repl.Type.Price})
	r.sim.Schedule(r.opts.Boot, func() { onBoot(id) })
}

// vcpuRef identifies one vCPU of one instance.
type vcpuRef struct {
	inst int
	rate units.Rate
}

// clusterVCPUs flattens the cluster into per-vCPU workers. When the
// application spans multiple instances, every vCPU loses the
// application's network-processing fraction.
func clusterVCPUs(cluster []vm.Instance, appName string) []vcpuRef {
	factor := networkFactor(len(cluster), appName)
	var out []vcpuRef
	for i, in := range cluster {
		for v := 0; v < in.Type.VCPUs; v++ {
			out = append(out, vcpuRef{inst: i, rate: in.PerVCPURate() * units.Rate(factor)})
		}
	}
	return out
}

func networkFactor(instances int, appName string) float64 {
	if instances > 1 {
		return 1 - NetworkCPUOverhead(appName)
	}
	return 1
}

// runIndependent schedules plan.Tasks independent tasks onto all vCPUs
// via greedy pull (x264's clip farm). Independent tasks tolerate
// instance failure: in-flight work of a failed instance is
// re-dispatched from scratch to surviving workers — without bound under
// StrictAbort (the paper's fault model for x264), within the per-task
// retry budget under Recover, where failed instances may also be
// respawned.
func (r *runner) runIndependent() (units.Seconds, int) {
	sim := &r.sim
	plan := r.plan
	appName := r.app.Name()
	factor := networkFactor(len(r.cluster), appName)
	vcpus := clusterVCPUs(r.cluster, appName)
	next := 0
	retry := []int{}
	dead := make([]bool, len(vcpus))
	gen := make([]int, len(vcpus))
	current := make([]int, len(vcpus))
	for i := range current {
		current[i] = -1
	}
	var finish units.Seconds
	completed := 0
	var retries map[int]int // per-task re-dispatch count, lazily allocated

	take := func() (int, bool) {
		if len(retry) > 0 {
			t := retry[len(retry)-1]
			retry = retry[:len(retry)-1]
			return t, true
		}
		if next < plan.Tasks {
			t := next
			next++
			return t, true
		}
		return -1, false
	}
	started := false
	var pull func(w int)
	pull = func(w int) {
		if dead[w] || !started || current[w] >= 0 || r.err != nil {
			return
		}
		task, ok := take()
		if !ok {
			current[w] = -1
			return
		}
		current[w] = task
		myGen := gen[w]
		dur := units.Time(plan.TaskInstr(task), vcpus[w].rate)
		sim.Schedule(dur, func() {
			if gen[w] != myGen {
				return // completion from before this worker's failure
			}
			current[w] = -1
			completed++
			if sim.Now() > finish {
				finish = sim.Now()
			}
			pull(w)
		})
	}
	sim.At(r.startup, func() {
		started = true
		for w := range vcpus {
			pull(w)
		}
	})

	// requeue re-dispatches a task lost to an instance failure,
	// enforcing the retry budget under Recover.
	requeue := func(task int) {
		if retries == nil {
			retries = map[int]int{}
		}
		retries[task]++
		if r.rec.Mode == faults.Recover && r.rec.MaxTaskRetries > 0 && retries[task] > r.rec.MaxTaskRetries {
			r.fail("cloudsim: task %d exceeded its retry budget of %d re-dispatches", task, r.rec.MaxTaskRetries)
			return
		}
		retry = append(retry, task)
	}
	for _, e := range r.trace.Events() {
		e := e
		sim.At(e.At, func() {
			if completed >= plan.Tasks || r.err != nil {
				return // run already over (or already failed)
			}
			for w := range vcpus {
				if vcpus[w].inst != e.Instance || dead[w] {
					continue
				}
				dead[w] = true
				gen[w]++
				if current[w] >= 0 {
					requeue(current[w])
					current[w] = -1
				}
			}
			if r.rec.Mode == faults.Recover && r.rec.Respawn {
				r.spawnReplacement(e.Instance, func(idx int) {
					if completed >= plan.Tasks || r.err != nil {
						return
					}
					in := r.cluster[idx]
					for v := 0; v < in.Type.VCPUs; v++ {
						vcpus = append(vcpus, vcpuRef{inst: idx, rate: in.PerVCPURate() * units.Rate(factor)})
						dead = append(dead, false)
						gen = append(gen, 0)
						current = append(current, -1)
						pull(len(vcpus) - 1)
					}
				})
			}
			// Wake idle survivors for the re-dispatched work.
			for w := range vcpus {
				if !dead[w] && current[w] < 0 {
					pull(w)
				}
			}
		})
	}
	sim.Run()
	if r.err == nil && completed < plan.Tasks {
		r.fail("cloudsim: %d of %d tasks incomplete after failures (no surviving workers)",
			plan.Tasks-completed, plan.Tasks)
	}
	if finish < r.startup {
		finish = r.startup
	}
	return finish, plan.Tasks
}

// runBSP executes plan.Steps bulk-synchronous steps (galaxy): elements
// are partitioned across ranks (one per vCPU) proportionally to rank
// speed, each step ends at the slowest rank plus the exchange.
//
// Under Recover, the job checkpoints every CheckpointEverySteps steps
// (paying CheckpointCost of coordinated I/O). On an instance failure
// the surviving ranks restart from the last checkpoint — paying
// CheckpointCost once more to read it back — with the elements
// repartitioned proportionally to surviving rank speed. Respawned
// replacements join when the MPI world is next rebuilt: at a failure
// restart or a checkpoint boundary.
func (r *runner) runBSP() (units.Seconds, int) {
	if r.trace.Empty() && !(r.rec.Mode == faults.Recover && r.rec.CheckpointEverySteps > 0) {
		// No failure machinery in play: the plain barrier loop, which a
		// zero-event trace must reproduce bit-for-bit.
		return r.runBSPPlain()
	}
	sim := &r.sim
	plan := r.plan
	appName := r.app.Name()
	ckptEvery := 0
	var ckptCost units.Seconds
	if r.rec.Mode == faults.Recover {
		ckptEvery = r.rec.CheckpointEverySteps
		ckptCost = r.rec.CheckpointCost
	}

	alive := make([]bool, len(r.cluster))
	for i := range alive {
		alive[i] = true
	}
	booted := []int{} // replacements up but not yet in the MPI world
	pendingBoots := 0

	var slowest, comm units.Seconds
	ranks := 0
	// rebuild recomputes the rank set and per-step time from the
	// instances currently in the world.
	rebuild := func() {
		var world []vm.Instance
		for i, in := range r.cluster {
			if i < len(alive) && alive[i] {
				world = append(world, in)
			}
		}
		vcpus := clusterVCPUs(world, appName)
		ranks = len(vcpus)
		if ranks == 0 {
			slowest, comm = 0, 0
			return
		}
		share := partitionProportional(plan.Elements, vcpus)
		slowest = 0
		for rk, elems := range share {
			t := units.Time(units.Instructions(elems)*plan.InstrPerElement, vcpus[rk].rate)
			if t > slowest {
				slowest = t
			}
		}
		comm = 0
		if len(world) > 1 {
			comm = units.Seconds(r.opts.Network.LatencySec + plan.CommBytesPerStep/r.opts.Network.BytesPerSec)
		}
	}
	join := func() {
		for _, idx := range booted {
			alive[idx] = true
		}
		booted = booted[:0]
	}

	done, ckpt := 0, 0
	epoch := 0
	started := false
	finished := false
	var finish units.Seconds

	var startStep func()
	startStep = func() {
		if finished || r.err != nil {
			return
		}
		if done >= plan.Steps {
			finish = sim.Now()
			finished = true
			return
		}
		myEpoch := epoch
		sim.Schedule(slowest+comm, func() {
			if epoch != myEpoch || finished || r.err != nil {
				return // step torn down by a failure restart
			}
			done++
			if done >= plan.Steps {
				finish = sim.Now()
				finished = true
				return
			}
			if ckptEvery > 0 && done%ckptEvery == 0 {
				sim.Schedule(ckptCost, func() {
					if epoch != myEpoch || finished || r.err != nil {
						return // failure hit mid-checkpoint: it never completed
					}
					ckpt = done
					if len(booted) > 0 {
						join()
						rebuild()
					}
					startStep()
				})
				return
			}
			startStep()
		})
	}

	// restart rolls the world back to the last checkpoint on the
	// current membership (survivors plus booted replacements).
	restart := func() {
		join()
		rebuild()
		if ranks == 0 {
			if pendingBoots == 0 {
				r.fail("cloudsim: all BSP ranks failed")
			}
			return // wait for a replacement to boot
		}
		done = ckpt
		if ckpt > 0 && ckptCost > 0 {
			myEpoch := epoch
			sim.Schedule(ckptCost, func() { // read the checkpoint back
				if epoch == myEpoch {
					startStep()
				}
			})
			return
		}
		startStep()
	}

	sim.At(r.startup, func() {
		started = true
		rebuild()
		if ranks == 0 {
			restart() // everything died during startup
			return
		}
		startStep()
	})
	for _, e := range r.trace.Events() {
		e := e
		sim.At(e.At, func() {
			if finished || r.err != nil || !alive[e.Instance] {
				return
			}
			alive[e.Instance] = false
			epoch++
			if r.rec.Respawn {
				pendingBoots++
				r.spawnReplacement(e.Instance, func(idx int) {
					pendingBoots--
					if finished || r.err != nil {
						return
					}
					for len(alive) < idx+1 {
						alive = append(alive, false) // joins via booted at the next world rebuild
					}
					booted = append(booted, idx)
					if started && ranks == 0 {
						epoch++
						restart()
					}
				})
			}
			if started {
				restart()
			}
		})
	}
	sim.Run()
	if r.err == nil && !finished {
		r.fail("cloudsim: BSP job incomplete after failures (%d of %d steps)", done, plan.Steps)
	}
	return finish, plan.Steps
}

// runBSPPlain is the failure-free barrier loop.
func (r *runner) runBSPPlain() (units.Seconds, int) {
	sim := &r.sim
	plan := r.plan
	net := r.opts.Network
	vcpus := clusterVCPUs(r.cluster, r.app.Name())
	share := partitionProportional(plan.Elements, vcpus)
	// The step's compute phase ends at the slowest rank.
	var slowest units.Seconds
	for rk, elems := range share {
		t := units.Time(units.Instructions(elems)*plan.InstrPerElement, vcpus[rk].rate)
		if t > slowest {
			slowest = t
		}
	}
	var comm units.Seconds
	if len(r.cluster) > 1 {
		comm = units.Seconds(net.LatencySec + plan.CommBytesPerStep/net.BytesPerSec)
	}
	var finish units.Seconds
	step := 0
	var barrier func()
	barrier = func() {
		if step >= plan.Steps {
			finish = sim.Now()
			return
		}
		step++
		sim.Schedule(slowest+comm, barrier)
	}
	sim.At(r.startup, barrier)
	sim.Run()
	return finish, plan.Steps
}

// partitionProportional splits n elements across ranks proportionally
// to their rates using largest-remainder rounding.
func partitionProportional(n int, vcpus []vcpuRef) []int {
	var total float64
	for _, v := range vcpus {
		total += float64(v.rate) //lint:allow unitsafe largest-remainder split needs raw proportional weights; a typed rewrite would reassociate the rounding
	}
	share := make([]int, len(vcpus))
	type frac struct {
		idx int
		f   float64
	}
	fracs := make([]frac, len(vcpus))
	assigned := 0
	for i, v := range vcpus {
		//lint:allow unitsafe largest-remainder split needs raw proportional weights; a typed rewrite would reassociate the rounding
		exact := float64(n) * float64(v.rate) / total
		share[i] = int(math.Floor(exact))
		assigned += share[i]
		fracs[i] = frac{i, exact - math.Floor(exact)}
	}
	// Hand out the remainder to the largest fractional parts
	// (deterministic tie-break by index).
	for rem := n - assigned; rem > 0; rem-- {
		best := -1
		for i := range fracs {
			if best < 0 || fracs[i].f > fracs[best].f {
				best = i
			}
		}
		share[fracs[best].idx]++
		fracs[best].f = -1
	}
	return share
}

// idleHeap orders idle workers FIFO by the time they went idle.
type idleWorker struct {
	at units.Seconds
	w  int
}
type idleHeap []idleWorker

func (h idleHeap) Len() int { return len(h) }
func (h idleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].w < h[j].w
}
func (h idleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *idleHeap) Push(x interface{}) { *h = append(*h, x.(idleWorker)) }
func (h *idleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// runMasterWorker executes a work-queue plan (sand): the master on
// instance 0 serially dispatches tasks (compute + input shipping over
// its network link); free workers pull dispatched tasks.
//
// Under Recover the plan survives failures: a dead worker's in-flight
// and queued-but-unstarted tasks are re-dispatched (within the retry
// budget), and when the master dies, the lowest-indexed surviving
// instance is promoted after FailoverDetection — tasks whose inputs
// were shipped but not started are re-shipped by the new master.
func (r *runner) runMasterWorker() (units.Seconds, int) {
	sim := &r.sim
	plan := r.plan
	appName := r.app.Name()
	net := r.opts.Network
	factor := networkFactor(len(r.cluster), appName)
	shipping := units.Seconds(0)
	if len(r.cluster) > 1 && net.BytesPerSec > 0 {
		shipping = units.Seconds(plan.BytesPerTask / net.BytesPerSec)
	}

	vcpus := clusterVCPUs(r.cluster, appName)
	dead := make([]bool, len(vcpus))
	gen := make([]int, len(vcpus))
	current := make([]int, len(vcpus))
	for i := range current {
		current[i] = -1
	}
	aliveInst := make([]bool, len(r.cluster))
	for i := range aliveInst {
		aliveInst[i] = true
	}

	masterInst := 0
	masterAlive := true
	perDispatch := units.Time(plan.DispatchInstr, r.cluster[0].PerVCPURate()) + shipping

	nextNew := 0          // next never-dispatched task
	redispatch := []int{} // tasks to dispatch again (inputs lost)
	readyTasks := []int{} // dispatched, waiting for a worker
	completed := 0
	finished := false
	var finish units.Seconds
	var retries map[int]int

	idle := make(idleHeap, 0, len(vcpus))
	popIdle := func() (int, bool) {
		for idle.Len() > 0 {
			iw := heap.Pop(&idle).(idleWorker)
			if !dead[iw.w] {
				return iw.w, true
			}
		}
		return -1, false
	}

	dispatching := false
	var dispatchTimer *des.Timer
	started := false
	var dispatch func()
	var assign func(w, task int)
	assign = func(w, task int) {
		current[w] = task
		myGen := gen[w]
		dur := units.Time(plan.TaskInstr(task), vcpus[w].rate)
		sim.Schedule(dur, func() {
			if gen[w] != myGen {
				return // worker died mid-task; the task was re-dispatched
			}
			current[w] = -1
			completed++
			if sim.Now() > finish {
				finish = sim.Now()
			}
			if completed >= plan.Tasks {
				finished = true
				if dispatchTimer != nil {
					dispatchTimer.Cancel()
				}
				return
			}
			if len(readyTasks) > 0 {
				task := readyTasks[0]
				readyTasks = readyTasks[1:]
				assign(w, task)
			} else {
				heap.Push(&idle, idleWorker{sim.Now(), w})
			}
		})
	}
	dispatch = func() {
		if dispatching || !masterAlive || finished || r.err != nil {
			return
		}
		if len(redispatch) == 0 && nextNew >= plan.Tasks {
			return
		}
		dispatching = true
		dispatchTimer = sim.ScheduleTimer(perDispatch, func() {
			dispatching = false
			if finished || r.err != nil {
				return
			}
			var task int
			if len(redispatch) > 0 {
				task = redispatch[0]
				redispatch = redispatch[1:]
			} else {
				task = nextNew
				nextNew++
			}
			if w, ok := popIdle(); ok {
				assign(w, task)
			} else {
				readyTasks = append(readyTasks, task)
			}
			dispatch()
		})
	}

	requeue := func(task int) {
		if retries == nil {
			retries = map[int]int{}
		}
		retries[task]++
		if r.rec.MaxTaskRetries > 0 && retries[task] > r.rec.MaxTaskRetries {
			r.fail("cloudsim: task %d exceeded its retry budget of %d re-dispatches", task, r.rec.MaxTaskRetries)
			return
		}
		redispatch = append(redispatch, task)
	}

	sim.At(r.startup, func() {
		started = true
		for w := range vcpus {
			if !dead[w] {
				heap.Push(&idle, idleWorker{sim.Now(), w})
			}
		}
		if masterAlive {
			dispatch()
		}
	})

	promote := func() {
		if finished || r.err != nil || masterAlive {
			return
		}
		best := -1
		for i, ok := range aliveInst {
			if ok {
				best = i
				break
			}
		}
		if best < 0 {
			return // no candidate yet; a booting replacement will retry
		}
		masterInst = best
		masterAlive = true
		perDispatch = units.Time(plan.DispatchInstr, r.cluster[best].PerVCPURate()) + shipping
		if started {
			dispatch()
		}
	}

	for _, e := range r.trace.Events() {
		e := e
		sim.At(e.At, func() {
			if finished || r.err != nil || !aliveInst[e.Instance] {
				return
			}
			aliveInst[e.Instance] = false
			for w := range vcpus {
				if vcpus[w].inst != e.Instance || dead[w] {
					continue
				}
				dead[w] = true
				gen[w]++
				if current[w] >= 0 {
					requeue(current[w])
					current[w] = -1
				}
			}
			if e.Instance == masterInst {
				// The master's queue of shipped-but-unstarted inputs
				// dies with it; those tasks are re-shipped after
				// failover.
				masterAlive = false
				if dispatchTimer != nil {
					dispatchTimer.Cancel()
				}
				dispatching = false
				for _, task := range readyTasks {
					requeue(task)
				}
				readyTasks = readyTasks[:0]
				sim.Schedule(r.rec.FailoverDetection, promote)
			}
			if r.rec.Respawn {
				r.spawnReplacement(e.Instance, func(idx int) {
					if finished || r.err != nil {
						return
					}
					for len(aliveInst) < idx+1 {
						aliveInst = append(aliveInst, false)
					}
					aliveInst[idx] = true
					in := r.cluster[idx]
					for v := 0; v < in.Type.VCPUs; v++ {
						vcpus = append(vcpus, vcpuRef{inst: idx, rate: in.PerVCPURate() * units.Rate(factor)})
						dead = append(dead, false)
						gen = append(gen, 0)
						current = append(current, -1)
						w := len(vcpus) - 1
						if started {
							if len(readyTasks) > 0 {
								task := readyTasks[0]
								readyTasks = readyTasks[1:]
								assign(w, task)
							} else {
								heap.Push(&idle, idleWorker{sim.Now(), w})
							}
						}
					}
					if !masterAlive {
						promote()
					}
				})
			}
			if masterAlive && started {
				dispatch() // re-dispatch work lost with the workers
			}
			if !masterAlive && !anyAlive(aliveInst) && !r.rec.Respawn {
				r.fail("cloudsim: master and all workers failed")
			}
		})
	}
	sim.Run()
	if r.err == nil && completed < plan.Tasks {
		r.fail("cloudsim: %d of %d tasks incomplete after failures", plan.Tasks-completed, plan.Tasks)
	}
	if finish < r.startup {
		finish = r.startup
	}
	return finish, plan.Tasks
}

func anyAlive(alive []bool) bool {
	for _, ok := range alive {
		if ok {
			return true
		}
	}
	return false
}
