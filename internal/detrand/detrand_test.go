package detrand

import (
	"math"
	"testing"
)

// TestGoldenStream pins the generator's output for seed 1. These
// values are the contract: failure traces, risk estimates, and
// uncertainty intervals all replay from seeds, so the stream must
// never change across Go releases or refactors. If this test fails,
// the generator changed and every stored seed-derived result is
// invalidated — do not update the constants casually.
func TestGoldenStream(t *testing.T) {
	want := []uint64{
		0x910a2dec89025cc1,
		0xbeeb8da1658eec67,
		0xf893a2eefb32555e,
		0x71c18690ee42c90b,
	}
	s := New(1)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("Uint64 #%d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds produced the same first value")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0, 1)", v)
		}
	}
}

// TestNormFloat64Moments checks mean ≈ 0 and variance ≈ 1 over a large
// sample; loose 3σ-ish bounds keep the test deterministic and stable.
func TestNormFloat64Moments(t *testing.T) {
	s := New(9)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("NormFloat64() = %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ≈ 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Errorf("mean = %v, want ≈ 1", mean)
	}
}

func TestMixStreamsIndependent(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		seed := Mix(123, i)
		if prev, dup := seen[seed]; dup {
			t.Fatalf("Mix(123, %d) == Mix(123, %d)", i, prev)
		}
		seen[seed] = i
	}
	if Mix(1, 0) == Mix(2, 0) {
		t.Fatal("different parent seeds produced the same child seed")
	}
}
