// Package detrand is the repository's deterministic random source: a
// splitmix64 generator that is tiny, seedable, and — unlike math/rand,
// whose global functions are unseeded and whose generator is not
// pinned by the Go 1 compatibility promise — guaranteed to produce the
// same stream for the same seed on every platform and Go release.
// That stability is what makes every Monte-Carlo answer in this
// repository (failure traces, deadline-risk estimates, uncertainty
// intervals) replayable from its seed.
//
// celia-lint's nodeterm rule bans math/rand from the deterministic
// packages and points here. internal/faults draws its failure traces
// from this source, internal/faults/risk derives per-trial seeds with
// Mix, and internal/uncertainty samples its measurement-error model
// with NormFloat64.
package detrand

import "math"

// Source is a splitmix64 pseudo-random generator. The zero value is a
// valid seed-0 source; Source is not safe for concurrent use — give
// each goroutine its own (Mix derives independent child seeds).
type Source struct{ state uint64 }

// New returns a source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 advances the generator one step: an additive Weyl sequence on
// the golden-ratio increment, finalized by the splitmix64 mix. Passes
// BigCrush; period 2⁶⁴.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

// Float64 draws a uniform value in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 draws a standard normal deviate via the Box–Muller
// transform. It consumes exactly two uniforms per call (no rejection
// loop, no cached spare), so the stream position after n calls is
// always 2n — handy when reasoning about replay.
func (s *Source) NormFloat64() float64 {
	u := 1 - s.Float64() // (0, 1]: the log is finite
	v := s.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// ExpFloat64 draws an exponential deviate with rate 1 (mean 1) by
// inversion.
func (s *Source) ExpFloat64() float64 {
	u := s.Float64()
	// 1-u ∈ (0, 1]: the log is finite.
	return -math.Log(1 - u)
}

// Mix derives the seed for an independent child stream: stream i of a
// parent seed. Neighboring indices decorrelate through the same
// splitmix64 finalizer the generator uses, so trial 17 and trial 18 of
// one estimate share nothing but the parent seed.
func Mix(seed uint64, stream int) uint64 {
	return mix(seed + (uint64(stream)+1)*0x9e3779b97f4a7c15)
}

// mix is the splitmix64 finalizer (Stafford variant 13).
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
