package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/demand"
)

// scheduleTestTrace is a short diurnal cycle inside galaxy's domain
// and well under the paper catalog's per-step capacity.
func scheduleTestTrace(steps int) demand.Trace {
	return demand.Diurnal(demand.DiurnalSpec{
		Steps:  steps,
		Step:   300,
		A:      50,
		BaseN:  6_000,
		PeakN:  40_000,
		Period: steps / 2,
		Jitter: 0.03,
		Seed:   5,
	})
}

func TestScheduleEndpoint(t *testing.T) {
	ts := newTestServer(t)
	tr := scheduleTestTrace(48)
	req := scheduleRequest{App: "galaxy", Trace: tr}

	var resp ScheduleResponse
	if code := postJSON(t, ts.URL+"/v1/schedule", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.App != "galaxy" || resp.Steps != 48 || resp.TraceHash != tr.Hash() {
		t.Fatalf("response header fields wrong: %+v", resp)
	}
	if !resp.IndexBacked || resp.Candidates != 118 {
		t.Fatalf("schedule not solved from the paper staircase: backed=%v candidates=%d",
			resp.IndexBacked, resp.Candidates)
	}
	if resp.Misses != 0 || resp.TotalCostUSD <= 0 {
		t.Fatalf("degenerate solve: %+v", resp)
	}
	if resp.TotalCostUSD > resp.BaselineCostUSD {
		t.Fatalf("solved cost %v exceeds reactive baseline %v", resp.TotalCostUSD, resp.BaselineCostUSD)
	}
	if resp.SavingsVsReactivePct < 0 {
		t.Fatalf("negative savings %v", resp.SavingsVsReactivePct)
	}
	if len(resp.Timeline) != 48 {
		t.Fatalf("timeline has %d rows, want 48", len(resp.Timeline))
	}
	for _, row := range resp.Timeline {
		if row.MissProbability != nil {
			t.Fatalf("step %d carries a risk estimate without hazard", row.T)
		}
		if row.SlackSeconds < 0 || row.SlackSeconds > tr.Step {
			t.Fatalf("step %d slack %v outside [0, step]", row.T, row.SlackSeconds)
		}
	}

	// The identical request is a cache hit served from the index-backed
	// result: same bytes, X-Cache hit, X-Index on.
	raw, _ := json.Marshal(req)
	r2, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q on repeat, want hit", got)
	}
	if got := r2.Header.Get("X-Index"); got != "on" {
		t.Fatalf("X-Index = %q on a schedule query, want on", got)
	}
	var again ScheduleResponse
	if err := json.NewDecoder(r2.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	if again.TotalCostUSD != resp.TotalCostUSD || again.Switches != resp.Switches {
		t.Fatalf("cached schedule differs: %+v vs %+v", again, resp)
	}
}

func TestScheduleEndpointRiskTimeline(t *testing.T) {
	ts, fd := newRiskServer(t)
	tr := scheduleTestTrace(24)
	req := scheduleRequest{
		App: "galaxy", Trace: tr,
		HazardPerHour: 0.05, RiskTrials: 8, RiskEvery: 6, Seed: 3,
	}
	var resp ScheduleResponse
	if code := postJSON(t, ts.URL+"/v1/schedule", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	sampled := 0
	for _, row := range resp.Timeline {
		if row.MissProbability == nil {
			continue
		}
		sampled++
		if row.T%6 != 0 {
			t.Fatalf("risk sampled at step %d, want multiples of 6", row.T)
		}
		if *row.MissProbability < 0 || *row.MissProbability > 1 {
			t.Fatalf("step %d miss probability %v", row.T, *row.MissProbability)
		}
		if row.RiskTrials != 8 {
			t.Fatalf("step %d ran %d trials, want 8", row.T, row.RiskTrials)
		}
	}
	if sampled == 0 {
		t.Fatal("no risk-sampled steps in the timeline")
	}
	if got := fd.Metrics().Counter("serving.schedule.risk_steps").Value(); got != int64(sampled) {
		t.Fatalf("serving.schedule.risk_steps = %d, want %d", got, sampled)
	}
}

func TestScheduleEndpointTimelineCap(t *testing.T) {
	ts := newTestServer(t)
	tr := scheduleTestTrace(24)
	var capped ScheduleResponse
	if code := postJSON(t, ts.URL+"/v1/schedule",
		scheduleRequest{App: "galaxy", Trace: tr, MaxTimeline: 5}, &capped); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(capped.Timeline) != 5 {
		t.Fatalf("timeline has %d rows, want the 5-row cap", len(capped.Timeline))
	}
	var bare ScheduleResponse
	if code := postJSON(t, ts.URL+"/v1/schedule",
		scheduleRequest{App: "galaxy", Trace: tr, MaxTimeline: -1}, &bare); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(bare.Timeline) != 0 {
		t.Fatalf("negative max_timeline still returned %d rows", len(bare.Timeline))
	}
	if bare.TotalCostUSD != capped.TotalCostUSD {
		t.Fatalf("timeline cap changed the solved cost: %v vs %v", bare.TotalCostUSD, capped.TotalCostUSD)
	}
}

func TestScheduleEndpointValidation(t *testing.T) {
	ts := newTestServer(t)
	good := scheduleTestTrace(8)
	badVersion := good
	badVersion.Version = 9
	outsideDomain := scheduleTestTrace(8)
	outsideDomain.N[2] = 1 // below galaxy's MinN: engine-level 422

	cases := []struct {
		name string
		body scheduleRequest
		want int
	}{
		{"unknown app", scheduleRequest{App: "blender", Trace: good}, http.StatusNotFound},
		{"bad version", scheduleRequest{App: "galaxy", Trace: badVersion}, http.StatusBadRequest},
		{"empty trace", scheduleRequest{App: "galaxy"}, http.StatusBadRequest},
		{"boot beyond step", scheduleRequest{App: "galaxy", Trace: good, BootSeconds: good.Step + 1}, http.StatusBadRequest},
		{"negative hazard", scheduleRequest{App: "galaxy", Trace: good, HazardPerHour: -1}, http.StatusBadRequest},
		{"oversized trials", scheduleRequest{App: "galaxy", Trace: good, RiskTrials: 100001}, http.StatusBadRequest},
		{"risk without workload", scheduleRequest{App: "galaxy", Trace: good, HazardPerHour: 0.1}, http.StatusUnprocessableEntity},
		{"domain violation", scheduleRequest{App: "galaxy", Trace: outsideDomain}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if code := postJSON(t, ts.URL+"/v1/schedule", c.body, nil); code != c.want {
			t.Fatalf("%s: status %d, want %d", c.name, code, c.want)
		}
	}

	// Unknown fields in the trace are rejected, not silently dropped.
	code := postJSON(t, ts.URL+"/v1/schedule", map[string]interface{}{
		"app": "galaxy", "trace": map[string]interface{}{
			"version": 1, "step_seconds": 300, "a": 50, "steps_n": []float64{6000}, "typo": true,
		},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown trace field: status %d, want 400", code)
	}
}

// TestScheduleCacheDistinctPerTraceName is the regression test for the
// stale-cache bug the cachekey lint rule caught: demand.Trace.Hash
// deliberately skips the advisory Name, but the schedule response
// echoes it, so two requests differing only in name must land in
// distinct cache entries — each echoing its own name, the second a
// miss, never a hit serving the first request's bytes.
func TestScheduleCacheDistinctPerTraceName(t *testing.T) {
	ts := newTestServer(t)
	tr := scheduleTestTrace(24)
	tr.Name = "alpha"
	renamed := tr
	renamed.Name = "beta"
	if tr.Hash() != renamed.Hash() {
		t.Fatal("test premise broken: renaming the trace changed its hash")
	}

	var first ScheduleResponse
	if code := postJSON(t, ts.URL+"/v1/schedule", scheduleRequest{App: "galaxy", Trace: tr}, &first); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.TraceName != "alpha" {
		t.Fatalf("first response echoes trace name %q, want alpha", first.TraceName)
	}

	raw, _ := json.Marshal(scheduleRequest{App: "galaxy", Trace: renamed})
	r2, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if got := r2.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q for a request differing only in trace name, want miss", got)
	}
	var second ScheduleResponse
	if err := json.NewDecoder(r2.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	if second.TraceName != "beta" {
		t.Fatalf("second response echoes trace name %q, want beta (stale cache entry)", second.TraceName)
	}
	if first.TraceHash != second.TraceHash || first.TotalCostUSD != second.TotalCostUSD {
		t.Fatalf("renamed trace changed the solve: %+v vs %+v", first, second)
	}
}
