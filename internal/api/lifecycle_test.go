package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/serving"
)

// smallEngine is an index-eligible engine over a 3^9 space so lifecycle
// tests never pay the paper-scale build.
func smallEngine(t *testing.T) *core.Engine {
	t.Helper()
	cat := ec2.Oregon()
	space, err := config.Uniform(cat.Len(), 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(model.FromIPC(cat, galaxy.App{}), demand.FromApp(galaxy.App{}), space, galaxy.App{}.Domain())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestReadyzReportsIndexLifecycle asserts the /readyz body contract:
// per-app index state with the reason, top-level "degraded" (still 200)
// while an app serves from the scan, and "ready" when healthy.
func TestReadyzReportsIndexLifecycle(t *testing.T) {
	dir := t.TempDir()
	fd, err := serving.NewFrontdoor(map[string]*core.Engine{"galaxy": smallEngine(t)},
		serving.Config{SnapshotDir: dir, Rebuild: chaos.FailRebuild()})
	if err != nil {
		t.Fatal(err)
	}
	fd.LoadSnapshots() // no artifact → degraded
	fd.Wait()          // injected rebuild failure → stays degraded
	s, err := NewServer(fd)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	var body struct {
		Status string `json:"status"`
		Index  map[string]struct {
			State  string `json:"state"`
			Reason string `json:"reason"`
		} `json:"index"`
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d while degraded, want 200 (degraded still answers)", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "degraded" {
		t.Fatalf("status = %q, want degraded", body.Status)
	}
	st, ok := body.Index["galaxy"]
	if !ok || st.State != "degraded" || !strings.Contains(st.Reason, "rebuild failed") {
		t.Fatalf("index.galaxy = %+v, want degraded with a rebuild-failed reason", st)
	}

	// A healthy frontdoor reports ready with the app pending (no query
	// has triggered the lazy build yet).
	healthy, err := serving.NewFrontdoor(map[string]*core.Engine{"galaxy": smallEngine(t)}, serving.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewServer(healthy)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(hs)
	t.Cleanup(hts.Close)
	resp2, err := http.Get(hts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body.Index = nil
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ready" || body.Index["galaxy"].State != "pending" {
		t.Fatalf("healthy /readyz = %q/%+v, want ready/pending", body.Status, body.Index["galaxy"])
	}
}

// TestIndexHeaderDegraded: a query against a declared-degraded app
// carries X-Index: degraded so clients can tell a scan-backed answer
// from an indexed one.
func TestIndexHeaderDegraded(t *testing.T) {
	dir := t.TempDir()
	fd, err := serving.NewFrontdoor(map[string]*core.Engine{"galaxy": smallEngine(t)},
		serving.Config{SnapshotDir: dir, Rebuild: chaos.FailRebuild()})
	if err != nil {
		t.Fatal(err)
	}
	fd.LoadSnapshots()
	fd.Wait()
	s, err := NewServer(fd)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.indexHeader(serving.Query{Kind: "mincost", App: "galaxy"}); got != "degraded" {
		t.Fatalf("X-Index = %q for a degraded app, want degraded", got)
	}
}

// TestContextErrorGets503WithRetryAfter: a request that outlives its
// context maps to 503 and tells the client when to come back.
func TestContextErrorGets503WithRetryAfter(t *testing.T) {
	fd, err := serving.NewFrontdoor(testEngines(), serving.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(fd)
	if err != nil {
		t.Fatal(err)
	}
	for _, cause := range []error{context.DeadlineExceeded, context.Canceled} {
		rec := httptest.NewRecorder()
		s.writeError(rec, fmt.Errorf("core: query aborted: %w", cause))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%v mapped to %d, want 503", cause, rec.Code)
		}
		if ra := rec.Header().Get("Retry-After"); ra != "1" {
			t.Fatalf("%v: Retry-After = %q, want 1", cause, ra)
		}
	}
}
