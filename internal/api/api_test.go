package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/x264"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

// sharedEngines is reused across tests: NewFrontdoor opts engines into
// the frontier index, and sharing lets the whole package pay each lazy
// index build once rather than once per test — the builds dominate the
// suite under -race otherwise. Tests needing cold or scan-backed
// engines construct their own (see TestOverloadReturns429).
var sharedEngines = map[string]*core.Engine{
	"galaxy": core.NewPaperEngine(galaxy.App{}),
	"x264":   core.NewPaperEngine(x264.App{}),
}

func testEngines() map[string]*core.Engine { return sharedEngines }

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := NewServerFromEngines(testEngines())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestNewServerRequiresEngines(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("nil frontdoor accepted")
	}
	if _, err := NewServerFromEngines(nil); err == nil {
		t.Fatal("empty server accepted")
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestAppsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Apps  []string                  `json:"apps"`
		Index map[string]AppIndexStatus `json:"index"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Apps) != 2 || body.Apps[0] != "galaxy" || body.Apps[1] != "x264" {
		t.Fatalf("apps = %v", body.Apps)
	}
	for _, name := range body.Apps {
		st, ok := body.Index[name]
		if !ok {
			t.Fatalf("no index status for %s", name)
		}
		if !st.IndexActive || st.BypassReason != "" {
			t.Fatalf("%s index status = %+v, want active with no bypass", name, st)
		}
	}
}

func TestMinCostEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp OptimizeResponse
	status := postJSON(t, ts.URL+"/v1/mincost", Request{
		App: "galaxy", N: 65536, A: 8000, DeadlineH: 24,
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !resp.Feasible || resp.Best == nil {
		t.Fatalf("response = %+v", resp)
	}
	// The exhaustive tie winner for the paper's spill scenario: the
	// frontier index (certified against MinCostExhaustive) finds this
	// family split one ulp cheaper than the decomposed search's
	// [5 5 5 3 ...] — see the golden-index test in internal/core.
	want := []int{5, 5, 5, 1, 1, 0, 0, 0, 0}
	for i, c := range want {
		if resp.Best.Config[i] != c {
			t.Fatalf("config = %v, want %v", resp.Best.Config, want)
		}
	}
	if resp.Best.TimeHours >= 24 || resp.Best.CostUSD <= 0 {
		t.Fatalf("best = %+v", resp.Best)
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp AnalyzeResponse
	status := postJSON(t, ts.URL+"/v1/analyze", Request{
		App: "galaxy", N: 65536, A: 8000, DeadlineH: 24, BudgetUSD: 350, MaxFrontier: 5,
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if resp.Total != 10077695 || resp.Feasible == 0 {
		t.Fatalf("census = %+v", resp)
	}
	if len(resp.Frontier) != 5 {
		t.Fatalf("frontier rows = %d, want capped at 5", len(resp.Frontier))
	}
	if resp.CostLowUSD <= 0 || resp.CostHiUSD < resp.CostLowUSD {
		t.Fatalf("cost span %v..%v", resp.CostLowUSD, resp.CostHiUSD)
	}
}

func TestMinTimeEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp OptimizeResponse
	status := postJSON(t, ts.URL+"/v1/mintime", Request{
		App: "x264", N: 8000, A: 20, BudgetUSD: 50,
	}, &resp)
	if status != http.StatusOK || !resp.Feasible {
		t.Fatalf("status %d, resp %+v", status, resp)
	}
	if resp.Best.CostUSD >= 50 {
		t.Fatalf("budget violated: %+v", resp.Best)
	}
}

func TestMaxAccuracyEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp OptimizeResponse
	status := postJSON(t, ts.URL+"/v1/maxaccuracy", Request{
		App: "galaxy", N: 65536, DeadlineH: 24, BudgetUSD: 150,
	}, &resp)
	if status != http.StatusOK || !resp.Feasible {
		t.Fatalf("status %d, resp %+v", status, resp)
	}
	if resp.Accuracy <= 0 || resp.Best == nil {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name   string
		path   string
		body   interface{}
		status int
	}{
		{"unknown app", "/v1/mincost", Request{App: "blender", N: 1, A: 1, DeadlineH: 1}, http.StatusNotFound},
		{"mincost no deadline", "/v1/mincost", Request{App: "galaxy", N: 65536, A: 8000}, http.StatusBadRequest},
		{"mintime no budget", "/v1/mintime", Request{App: "galaxy", N: 65536, A: 8000}, http.StatusBadRequest},
		{"maxaccuracy unconstrained", "/v1/maxaccuracy", Request{App: "galaxy", N: 65536}, http.StatusBadRequest},
		{"out of domain", "/v1/mincost", Request{App: "galaxy", N: 1, A: 1, DeadlineH: 1}, http.StatusUnprocessableEntity},
		{"negative deadline", "/v1/mincost", Request{App: "galaxy", N: 65536, A: 8000, DeadlineH: -1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		var eb errorBody
		status := postJSON(t, ts.URL+c.path, c.body, &eb)
		if status != c.status {
			t.Errorf("%s: status %d, want %d", c.name, status, c.status)
		}
		if eb.Error == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}
}

func TestRejectsUnknownFields(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/mincost", "application/json",
		bytes.NewReader([]byte(`{"app":"galaxy","n":65536,"a":8000,"deadline_hours":24,"oops":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/mincost")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST endpoint = %d, want 405", resp.StatusCode)
	}
}

func TestRejectsNonZeroConfidence(t *testing.T) {
	ts := newTestServer(t)
	var eb errorBody
	status := postJSON(t, ts.URL+"/v1/mincost", Request{
		App: "galaxy", N: 65536, A: 8000, DeadlineH: 24, Confidence: 0.95,
	}, &eb)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	if !strings.Contains(eb.Error, "confidence") {
		t.Fatalf("error = %q, want mention of confidence", eb.Error)
	}
}

func TestBodySizeLimit(t *testing.T) {
	ts := newTestServer(t)
	// Valid JSON, but over 1 MiB: a huge app-name string.
	big := `{"app":"` + strings.Repeat("g", 2<<20) + `"}`
	resp, err := http.Post(ts.URL+"/v1/mincost", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("413 body not the error envelope: err %v, body %+v", err, eb)
	}
}

// TestCacheHitSecondRequest asserts the acceptance criterion: a
// repeated POST with the same body is served from cache, byte-for-byte
// identical, and the hit is observable at GET /debug/metrics.
func TestCacheHitSecondRequest(t *testing.T) {
	ts := newTestServer(t)
	body := []byte(`{"app":"galaxy","n":65536,"a":8000,"deadline_hours":24}`)
	get := func() ([]byte, string) {
		resp, err := http.Post(ts.URL+"/v1/mincost", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), resp.Header.Get("X-Cache")
	}
	first, st1 := get()
	second, st2 := get()
	if st1 != "miss" || st2 != "hit" {
		t.Fatalf("X-Cache = %q then %q, want miss then hit", st1, st2)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cached response differs:\n%s\n%s", first, second)
	}

	resp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Counters["serving.cache.hits"] < 1 {
		t.Fatalf("metrics show no cache hits: %v", metrics.Counters)
	}
	if metrics.Counters["http.requests"] < 2 {
		t.Fatalf("metrics show no http traffic: %v", metrics.Counters)
	}
}

// TestOverloadReturns429 saturates a one-slot, no-queue frontdoor with
// a census and asserts the next request is shed with 429 + Retry-After
// instead of queueing.
func TestOverloadReturns429(t *testing.T) {
	// Fresh scan-backed engines: the occupying census must stay slow to
	// reliably hold the only slot, and the shared engines may already
	// serve analyze from their index in milliseconds.
	fd, err := serving.NewFrontdoor(map[string]*core.Engine{
		"galaxy": core.NewPaperEngine(galaxy.App{}),
	}, serving.Config{
		MaxConcurrent: 1, QueueDepth: -1, CacheBytes: -1, DisableIndex: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(fd)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Occupy the only slot with a full census.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
			strings.NewReader(`{"app":"galaxy","n":65536,"a":8000}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	defer wg.Wait()
	inflight := fd.Metrics().Gauge("serving.inflight")
	deadline := time.Now().Add(10 * time.Second)
	for inflight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("census never started")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/mincost", "application/json",
		strings.NewReader(`{"app":"galaxy","n":65536,"a":8000,"deadline_hours":24}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("429 body not the error envelope: err %v, body %+v", err, eb)
	}
}

func newRiskServer(t *testing.T) (*httptest.Server, *serving.Frontdoor) {
	t.Helper()
	fd, err := serving.NewFrontdoor(testEngines(), serving.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(fd, WithApps(map[string]workload.App{
		"galaxy": galaxy.App{},
		"x264":   x264.App{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, fd
}

func TestRiskEndpoint(t *testing.T) {
	ts, fd := newRiskServer(t)
	req := map[string]interface{}{
		"app": "x264", "n": 16, "a": 20, "deadline_hours": 24,
		"hazard_per_hour": 0.05, "trials": 16, "seed": 7,
	}
	var resp RiskResponse
	if code := postJSON(t, ts.URL+"/v1/risk", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.App != "x264" || resp.Trials != 16 {
		t.Fatalf("response %+v", resp)
	}
	if resp.MissProbability < 0 || resp.MissProbability > 1 {
		t.Fatalf("miss probability %v outside [0,1]", resp.MissProbability)
	}
	if resp.BaseTimeHours <= 0 || resp.BaseCostUSD <= 0 {
		t.Fatalf("degenerate base run: %+v", resp)
	}
	if len(resp.Config) == 0 {
		t.Fatal("solved configuration missing from response")
	}
	if resp.TimeP50Hours <= 0 || resp.CostP50USD <= 0 {
		t.Fatalf("quantiles missing: %+v", resp)
	}
	if got := fd.Metrics().Counter("risk.trials").Value(); got != 16 {
		t.Fatalf("risk.trials = %d, want 16", got)
	}

	// The repeated query is a pure cache hit: identical bytes, no new
	// trials simulated.
	raw, _ := json.Marshal(req)
	r2, err := http.Post(ts.URL+"/v1/risk", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q on repeat, want hit", got)
	}
	// Monte-Carlo kinds never touch the frontier index.
	if got := r2.Header.Get("X-Index"); got != "off" {
		t.Fatalf("X-Index = %q on a risk query, want off", got)
	}
	if got := fd.Metrics().Counter("risk.trials").Value(); got != 16 {
		t.Fatalf("cache hit re-simulated: risk.trials = %d", got)
	}
}

func TestRiskEndpointExplicitConfig(t *testing.T) {
	ts, _ := newRiskServer(t)
	req := map[string]interface{}{
		"app": "x264", "n": 16, "a": 20, "deadline_hours": 24,
		"hazard_per_hour": 0, "trials": 8,
		"config": []int{2, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	var resp RiskResponse
	if code := postJSON(t, ts.URL+"/v1/risk", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want := []int{2, 0, 0, 0, 0, 0, 0, 0, 0}
	for i, c := range resp.Config {
		if c != want[i] {
			t.Fatalf("config %v, want %v", resp.Config, want)
		}
	}
	if resp.MissProbability != 0 {
		t.Fatalf("zero hazard under a generous deadline missed with p=%v", resp.MissProbability)
	}
}

func TestRiskEndpointValidation(t *testing.T) {
	ts, _ := newRiskServer(t)
	cases := []struct {
		name string
		body map[string]interface{}
		want int
	}{
		{"missing deadline", map[string]interface{}{"app": "x264", "n": 16, "a": 20, "hazard_per_hour": 1}, http.StatusBadRequest},
		{"negative hazard", map[string]interface{}{"app": "x264", "n": 16, "a": 20, "deadline_hours": 1, "hazard_per_hour": -1}, http.StatusBadRequest},
		{"unknown app", map[string]interface{}{"app": "blender", "n": 16, "a": 20, "deadline_hours": 1}, http.StatusNotFound},
		{"oversized trials", map[string]interface{}{"app": "x264", "n": 16, "a": 20, "deadline_hours": 1, "trials": 100001}, http.StatusBadRequest},
		{"bad config count", map[string]interface{}{"app": "x264", "n": 16, "a": 20, "deadline_hours": 1, "config": []int{-1, 0, 0, 0, 0, 0, 0, 0, 0}}, http.StatusBadRequest},
		{"config arity", map[string]interface{}{"app": "x264", "n": 16, "a": 20, "deadline_hours": 24, "config": []int{1, 1}}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if code := postJSON(t, ts.URL+"/v1/risk", c.body, nil); code != c.want {
			t.Fatalf("%s: status %d, want %d", c.name, code, c.want)
		}
	}
}

func TestRiskRequiresMountedWorkload(t *testing.T) {
	// A server without WithApps serves the analytic endpoints but
	// rejects risk queries with 422.
	ts := newTestServer(t)
	code := postJSON(t, ts.URL+"/v1/risk", map[string]interface{}{
		"app": "x264", "n": 16, "a": 20, "deadline_hours": 24,
	}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", code)
	}
}

func TestReadyzFlipsWhileDraining(t *testing.T) {
	fd, err := serving.NewFrontdoor(testEngines(), serving.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(fd)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d before drain", code)
	}
	s.SetDraining(true)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d while draining, want 503", code)
	}
	// Liveness is unaffected: the process is healthy, just not ready.
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d while draining", code)
	}
	s.SetDraining(false)
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d after drain cleared", code)
	}
}

// TestIndexHeader asserts the X-Index contract: analytic queries on an
// index-opted engine answer "on" once the lazy build has run —
// including on cache hits, which must not trigger a build — while a
// DisableIndex frontdoor stays scan-backed and answers "off-config".
func TestIndexHeader(t *testing.T) {
	ts := newTestServer(t)
	body := []byte(`{"app":"galaxy","n":65536,"a":8000,"deadline_hours":24}`)
	post := func(url string) (idx, cache string) {
		resp, err := http.Post(url+"/v1/mincost", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Index"), resp.Header.Get("X-Cache")
	}
	if idx, _ := post(ts.URL); idx != "on" {
		t.Fatalf("X-Index = %q after an indexed compute, want on", idx)
	}
	idx, cache := post(ts.URL)
	if cache != "hit" || idx != "on" {
		t.Fatalf("repeat: X-Cache = %q, X-Index = %q, want hit/on", cache, idx)
	}

	fd, err := serving.NewFrontdoor(map[string]*core.Engine{
		"galaxy": core.NewPaperEngine(galaxy.App{}),
	}, serving.Config{DisableIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(fd)
	if err != nil {
		t.Fatal(err)
	}
	scanTS := httptest.NewServer(s)
	t.Cleanup(scanTS.Close)
	if idx, _ := post(scanTS.URL); idx != "off-config" {
		t.Fatalf("X-Index = %q with the index disabled, want off-config", idx)
	}
	if got := fd.Metrics().Counter("serving.index.bypass").Value(); got < 1 {
		t.Fatalf("serving.index.bypass = %d after a scan-backed compute", got)
	}
	if got := fd.Metrics().Counter("serving.index.bypass_billing").Value(); got != 0 {
		t.Fatalf("serving.index.bypass_billing = %d for a config opt-out, want 0", got)
	}

	// An uncertified billing policy surfaces as a capability gap: the
	// header distinguishes it from the deliberate opt-out above.
	bfd, err := serving.NewFrontdoor(map[string]*core.Engine{
		"galaxy": billingEngine(model.Billing(7)),
	}, serving.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := NewServer(bfd)
	if err != nil {
		t.Fatal(err)
	}
	billTS := httptest.NewServer(bs)
	t.Cleanup(billTS.Close)
	if idx, _ := post(billTS.URL); idx != "off-billing" {
		t.Fatalf("X-Index = %q under an uncertified billing policy, want off-billing", idx)
	}
	if got := bfd.Metrics().Counter("serving.index.bypass_billing").Value(); got != 1 {
		t.Fatalf("serving.index.bypass_billing = %d, want 1", got)
	}
}

// billingEngine builds a paper engine opted into the index but running
// an arbitrary billing policy.
func billingEngine(b model.Billing) *core.Engine {
	eng := core.NewPaperEngine(galaxy.App{})
	eng.SetBilling(b)
	return eng
}

func TestInternalErrorMapsTo500(t *testing.T) {
	fd, err := serving.NewFrontdoor(testEngines(), serving.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(fd)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.writeError(rec, fmt.Errorf("%w: compute panic: boom", serving.ErrInternal))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("ErrInternal mapped to %d, want 500", rec.Code)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("500 body missing error envelope: %q", rec.Body.String())
	}
}
