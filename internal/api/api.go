// Package api exposes the CELIA engine over HTTP as a small JSON
// service, so non-Go clients (dashboards, schedulers, CI) can query
// cost-time optimal configurations. One engine is mounted per
// application; all handlers are read-only and safe for concurrent use.
//
//	GET  /v1/apps                    list mounted applications
//	POST /v1/analyze                 full census + Pareto frontier
//	POST /v1/mincost                 cheapest configuration for a deadline
//	POST /v1/mintime                 fastest configuration within a budget
//	POST /v1/maxaccuracy             largest feasible accuracy
//	GET  /healthz                    liveness
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/workload"
)

// Server routes requests to per-application engines.
type Server struct {
	engines map[string]*core.Engine
	mux     *http.ServeMux
}

// NewServer mounts the given engines. The map must not be mutated
// afterwards.
func NewServer(engines map[string]*core.Engine) (*Server, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("api: no engines to serve")
	}
	s := &Server{engines: engines, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/apps", s.handleApps)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/mincost", s.handleMinCost)
	s.mux.HandleFunc("POST /v1/mintime", s.handleMinTime)
	s.mux.HandleFunc("POST /v1/maxaccuracy", s.handleMaxAccuracy)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Request is the common body of the query endpoints. Zero deadline or
// budget means unconstrained.
type Request struct {
	App       string  `json:"app"`
	N         float64 `json:"n"`
	A         float64 `json:"a"`
	DeadlineH float64 `json:"deadline_hours,omitempty"`
	BudgetUSD float64 `json:"budget_usd,omitempty"`
	// MaxFrontier caps frontier rows in analyze responses (default 100).
	MaxFrontier int `json:"max_frontier,omitempty"`
	// Confidence is unused today; reserved for robust queries.
	Confidence float64 `json:"confidence,omitempty"`
}

// ConfigResult is one configuration with its prediction.
type ConfigResult struct {
	Config    []int   `json:"config"`
	TimeHours float64 `json:"time_hours"`
	CostUSD   float64 `json:"cost_usd"`
}

// AnalyzeResponse is the census result.
type AnalyzeResponse struct {
	App        string         `json:"app"`
	Total      uint64         `json:"total_configurations"`
	Feasible   uint64         `json:"feasible_configurations"`
	Frontier   []ConfigResult `json:"pareto_frontier"`
	CostLowUSD float64        `json:"frontier_cost_low_usd"`
	CostHiUSD  float64        `json:"frontier_cost_high_usd"`
}

// OptimizeResponse answers mincost/mintime/maxaccuracy.
type OptimizeResponse struct {
	App      string        `json:"app"`
	Feasible bool          `json:"feasible"`
	Best     *ConfigResult `json:"best,omitempty"`
	Accuracy float64       `json:"accuracy,omitempty"` // maxaccuracy only
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleApps(w http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0, len(s.engines))
	for n := range s.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string][]string{"apps": names})
}

// decode parses and validates the common request body.
func (s *Server) decode(w http.ResponseWriter, r *http.Request) (*core.Engine, Request, bool) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad request body: %v", err)})
		return nil, Request{}, false
	}
	eng, ok := s.engines[req.App]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{fmt.Sprintf("unknown app %q", req.App)})
		return nil, Request{}, false
	}
	if req.DeadlineH < 0 || req.BudgetUSD < 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"negative deadline or budget"})
		return nil, Request{}, false
	}
	return eng, req, true
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	eng, req, ok := s.decode(w, r)
	if !ok {
		return
	}
	an, err := eng.Analyze(workload.Params{N: req.N, A: req.A}, core.Constraints{
		Deadline: units.FromHours(req.DeadlineH),
		Budget:   units.USD(req.BudgetUSD),
	}, core.Options{})
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{err.Error()})
		return
	}
	maxRows := req.MaxFrontier
	if maxRows <= 0 {
		maxRows = 100
	}
	resp := AnalyzeResponse{App: req.App, Total: an.Total, Feasible: an.Feasible}
	lo, hi, _ := an.CostSpan()
	resp.CostLowUSD, resp.CostHiUSD = float64(lo), float64(hi)
	for i, f := range an.Frontier {
		if i >= maxRows {
			break
		}
		resp.Frontier = append(resp.Frontier, ConfigResult{
			Config:    f.Config.Counts(),
			TimeHours: f.Time.Hours(),
			CostUSD:   float64(f.Cost),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMinCost(w http.ResponseWriter, r *http.Request) {
	eng, req, ok := s.decode(w, r)
	if !ok {
		return
	}
	if req.DeadlineH == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"mincost requires deadline_hours"})
		return
	}
	pred, feasible, err := eng.MinCostForDeadline(workload.Params{N: req.N, A: req.A},
		units.FromHours(req.DeadlineH))
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{err.Error()})
		return
	}
	resp := OptimizeResponse{App: req.App, Feasible: feasible}
	if feasible {
		resp.Best = &ConfigResult{
			Config:    pred.Config.Counts(),
			TimeHours: pred.Time.Hours(),
			CostUSD:   float64(pred.Cost),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMinTime(w http.ResponseWriter, r *http.Request) {
	eng, req, ok := s.decode(w, r)
	if !ok {
		return
	}
	if req.BudgetUSD == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"mintime requires budget_usd"})
		return
	}
	pred, feasible, err := eng.MinTimeForBudget(workload.Params{N: req.N, A: req.A},
		units.USD(req.BudgetUSD))
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{err.Error()})
		return
	}
	resp := OptimizeResponse{App: req.App, Feasible: feasible}
	if feasible {
		resp.Best = &ConfigResult{
			Config:    pred.Config.Counts(),
			TimeHours: pred.Time.Hours(),
			CostUSD:   float64(pred.Cost),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMaxAccuracy(w http.ResponseWriter, r *http.Request) {
	eng, req, ok := s.decode(w, r)
	if !ok {
		return
	}
	if req.DeadlineH == 0 && req.BudgetUSD == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"maxaccuracy requires a deadline or a budget"})
		return
	}
	p, pred, feasible, err := eng.MaxAccuracy(req.N, core.Constraints{
		Deadline: units.FromHours(req.DeadlineH),
		Budget:   units.USD(req.BudgetUSD),
	}, 1e-3)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{err.Error()})
		return
	}
	resp := OptimizeResponse{App: req.App, Feasible: feasible}
	if feasible {
		resp.Accuracy = p.A
		resp.Best = &ConfigResult{
			Config:    pred.Config.Counts(),
			TimeHours: pred.Time.Hours(),
			CostUSD:   float64(pred.Cost),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
