// Package api exposes the CELIA engine over HTTP as a small JSON
// service, so non-Go clients (dashboards, schedulers, CI) can query
// cost-time optimal configurations. All query endpoints are served
// through a serving.Frontdoor — an LRU result cache, singleflight
// request coalescing, and admission control in front of the analytic
// kernel — so identical concurrent queries cost one engine run and
// load spikes are shed with 429 instead of piling up goroutines.
//
//	GET  /v1/apps                    list mounted applications
//	POST /v1/analyze                 full census + Pareto frontier
//	POST /v1/mincost                 cheapest configuration for a deadline
//	POST /v1/mintime                 fastest configuration within a budget
//	POST /v1/maxaccuracy             largest feasible accuracy
//	POST /v1/risk                    Monte-Carlo deadline risk under failures
//	POST /v1/schedule                scaling schedule over a demand trace
//	GET  /healthz                    liveness
//	GET  /readyz                     readiness (503 while draining)
//	GET  /debug/metrics              serving + HTTP metrics (JSON)
//
// Contract notes:
//
//   - Request bodies are limited to 1 MiB; larger bodies get 413.
//   - Every error response is the JSON envelope {"error": "..."}.
//   - The Request.Confidence field is reserved for future robust
//     queries and is not implemented: non-zero values are rejected
//     with 400 rather than silently ignored.
//   - When the serving layer is saturated the response is 429 with a
//     Retry-After header; clients should back off and retry.
//   - A panic inside a query computation is recovered at the serving
//     boundary and reported as 500 with the envelope, never a crash.
//   - Responses carry an X-Cache header (hit, miss, or coalesced).
//   - Query responses carry an X-Index header: "on" when the mounted
//     engine answers this kind of query from its built frontier index
//     (byte-identical to the exhaustive scan under every certified
//     billing policy — per-second and per-hour alike), "degraded" when
//     the app is in the declared degraded state (index unavailable,
//     serving from the exhaustive scan until the background rebuild
//     lands). Scan-backed answers distinguish why: "off-config" when
//     the engine was deliberately opted out, "off-billing" when the
//     billing policy is not certified index-monotone, "off-pair-cap"
//     when the catalog did not compress under the pair cap, and plain
//     "off" for Monte-Carlo kinds and before the lazy index build.
//     Schedule responses report "on" whenever the billing-independent
//     staircase exists, regardless of the per-query routing.
//   - GET /readyz reports per-app index lifecycle state (pending /
//     building / built / degraded / bypassed, with the reason and the
//     machine-readable bypass cause: config, billing, or pair-cap) in
//     its JSON body; the top-level status is "degraded" (still 200 —
//     the app answers correctly, just slower) when any app serves from
//     the scan in degraded mode, and 503 "draining" during shutdown.
//   - Request deadlines propagate into the compute: a scan-path query
//     that outlives its request context aborts cooperatively and
//     returns 503 with Retry-After instead of hogging a worker.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cloudsim"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/faults"
	"repro/internal/faults/risk"
	"repro/internal/schedule"
	"repro/internal/serving"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// maxBodyBytes bounds request bodies: the largest legitimate query is
// a few hundred bytes of JSON.
const maxBodyBytes = 1 << 20

// Server routes requests through a serving.Frontdoor.
type Server struct {
	fd   *serving.Frontdoor
	reg  *telemetry.Registry
	mux  *http.ServeMux
	apps map[string]workload.App // risk-query workloads, keyed like engines

	// HTTP metrics, registered once in NewServer under literal names
	// (celia-lint's metricname rule keeps dynamic names — unbounded
	// cardinality — out of the registry). statusClass is indexed by
	// status/100.
	httpRequests *telemetry.Counter
	statusClass  [6]*telemetry.Counter

	// draining flips when the process starts shutting down: /readyz
	// turns 503 so load balancers stop routing here while in-flight
	// requests finish.
	draining atomic.Bool
}

// ServerOption customizes NewServer.
type ServerOption func(*Server)

// WithApps mounts workload definitions for the risk endpoint, keyed by
// the same names as the frontdoor's engines. Risk queries for apps
// without a mounted workload are rejected with 422.
func WithApps(apps map[string]workload.App) ServerOption {
	return func(s *Server) { s.apps = apps }
}

// NewServer mounts the query endpoints over the given frontdoor.
func NewServer(fd *serving.Frontdoor, opts ...ServerOption) (*Server, error) {
	if fd == nil {
		return nil, fmt.Errorf("api: nil frontdoor")
	}
	s := &Server{fd: fd, reg: fd.Metrics(), mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	s.httpRequests = s.reg.Counter("http.requests")
	s.statusClass = [6]*telemetry.Counter{
		1: s.reg.Counter("http.status.1xx"),
		2: s.reg.Counter("http.status.2xx"),
		3: s.reg.Counter("http.status.3xx"),
		4: s.reg.Counter("http.status.4xx"),
		5: s.reg.Counter("http.status.5xx"),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /v1/apps", s.instrument(s.reg.Histogram("http.apps.ms"), s.handleApps))
	s.mux.HandleFunc("POST /v1/analyze", s.instrument(s.reg.Histogram("http.analyze.ms"), s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/mincost", s.instrument(s.reg.Histogram("http.mincost.ms"), s.handleMinCost))
	s.mux.HandleFunc("POST /v1/mintime", s.instrument(s.reg.Histogram("http.mintime.ms"), s.handleMinTime))
	s.mux.HandleFunc("POST /v1/maxaccuracy", s.instrument(s.reg.Histogram("http.maxaccuracy.ms"), s.handleMaxAccuracy))
	s.mux.HandleFunc("POST /v1/risk", s.instrument(s.reg.Histogram("http.risk.ms"), s.handleRisk))
	s.mux.HandleFunc("POST /v1/schedule", s.instrument(s.reg.Histogram("http.schedule.ms"), s.handleSchedule))
	s.mux.Handle("GET /debug/metrics", s.reg.Handler())
	return s, nil
}

// SetDraining flips the readiness state: true makes /readyz answer 503
// so load balancers drain this instance before shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// NewServerFromEngines is a convenience for tests and small tools: it
// wraps the engines in a default-configured frontdoor.
func NewServerFromEngines(engines map[string]*core.Engine) (*Server, error) {
	fd, err := serving.NewFrontdoor(engines, serving.Config{})
	if err != nil {
		return nil, err
	}
	return NewServer(fd)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Request is the common body of the query endpoints. Zero deadline or
// budget means unconstrained.
type Request struct {
	App       string      `json:"app"`
	N         float64     `json:"n"`
	A         float64     `json:"a"`
	DeadlineH units.Hours `json:"deadline_hours,omitempty"`
	BudgetUSD units.USD   `json:"budget_usd,omitempty"`
	// MaxFrontier caps frontier rows in analyze responses (default 100).
	MaxFrontier int `json:"max_frontier,omitempty"`
	// Confidence is reserved for robust queries and not implemented;
	// non-zero values are rejected with 400.
	Confidence float64 `json:"confidence,omitempty"`
}

// ConfigResult is one configuration with its prediction.
type ConfigResult struct {
	Config    []int       `json:"config"`
	TimeHours units.Hours `json:"time_hours"`
	CostUSD   units.USD   `json:"cost_usd"`
}

// AnalyzeResponse is the census result.
type AnalyzeResponse struct {
	App        string         `json:"app"`
	Total      uint64         `json:"total_configurations"`
	Feasible   uint64         `json:"feasible_configurations"`
	Frontier   []ConfigResult `json:"pareto_frontier"`
	CostLowUSD units.USD      `json:"frontier_cost_low_usd"`
	CostHiUSD  units.USD      `json:"frontier_cost_high_usd"`
}

// OptimizeResponse answers mincost/mintime/maxaccuracy.
type OptimizeResponse struct {
	App      string        `json:"app"`
	Feasible bool          `json:"feasible"`
	Best     *ConfigResult `json:"best,omitempty"`
	Accuracy float64       `json:"accuracy,omitempty"` // maxaccuracy only
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyBody is the /readyz response: overall status plus the per-app
// index lifecycle, so operators and probes see degradation declared
// rather than discovering it as latency.
type readyBody struct {
	Status string                         `json:"status"`
	Index  map[string]serving.IndexStatus `json:"index"`
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	body := readyBody{Status: "ready", Index: s.fd.IndexStatuses()}
	if s.fd.Degraded() {
		// Degraded is still ready: answers are correct (scan-backed),
		// only slower, so load balancers should keep routing here.
		body.Status = "degraded"
	}
	if s.draining.Load() {
		body.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// AppIndexStatus reports, per mounted engine, whether analytic queries
// are (or will be, after the lazy first build) answered from the
// frontier index, and the operator-facing reason when they are not.
// The probe never triggers a build, so listing apps stays cheap.
type AppIndexStatus struct {
	IndexActive  bool   `json:"index_active"`
	BypassReason string `json:"bypass_reason,omitempty"`
	// BypassCause is the machine-readable counterpart of BypassReason:
	// "config", "billing", or "pair-cap"; empty when the index serves.
	BypassCause string `json:"bypass_cause,omitempty"`
}

func (s *Server) handleApps(w http.ResponseWriter, _ *http.Request) {
	names := s.fd.Apps()
	idx := make(map[string]AppIndexStatus, len(names))
	for _, name := range names {
		eng, _ := s.fd.Engine(name)
		reason := eng.IndexBypassReason()
		st := AppIndexStatus{IndexActive: reason == "", BypassReason: reason}
		if reason != "" {
			switch eng.IndexBypassCause() {
			case core.BypassConfig:
				st.BypassCause = "config"
			case core.BypassBilling:
				st.BypassCause = "billing"
			case core.BypassPairCap:
				st.BypassCause = "pair-cap"
			}
		}
		idx[name] = st
	}
	writeJSON(w, http.StatusOK, struct {
		Apps  []string                  `json:"apps"`
		Index map[string]AppIndexStatus `json:"index"`
	}{Apps: names, Index: idx})
}

// decode parses and validates the common request body.
func (s *Server) decode(w http.ResponseWriter, r *http.Request) (Request, bool) {
	var req Request
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes)})
		} else {
			writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad request body: %v", err)})
		}
		return Request{}, false
	}
	if _, ok := s.fd.Engine(req.App); !ok {
		writeJSON(w, http.StatusNotFound, errorBody{fmt.Sprintf("unknown app %q", req.App)})
		return Request{}, false
	}
	if req.DeadlineH < 0 || req.BudgetUSD < 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"negative deadline or budget"})
		return Request{}, false
	}
	if req.Confidence != 0 {
		writeJSON(w, http.StatusBadRequest,
			errorBody{"confidence is reserved for future robust queries and must be omitted or zero"})
		return Request{}, false
	}
	return req, true
}

// serve runs a query through the frontdoor and writes the outcome. The
// request context flows into compute so scan-path queries abort when
// the client goes away or the deadline passes.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, q serving.Query, compute func(context.Context, *core.Engine) ([]byte, error)) {
	body, status, err := s.fd.Do(r.Context(), q, compute)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", status.String())
	w.Header().Set("X-Index", s.indexHeader(q))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// indexHeader reports whether the answering engine holds a built
// frontier index for this kind of query. IndexBuilt never triggers the
// multi-second build, so cache hits stay pure memory reads; "on" means
// the response either came from the index or is byte-identical to what
// the index serves; "degraded" means the app is in a declared degraded
// or rebuilding state and the response came from the exhaustive scan.
// Scan-backed answers carry the bypass cause as a suffix —
// "off-config", "off-billing", "off-pair-cap" — so a dashboard can
// tell a deliberate opt-out from a capability gap; plain "off" covers
// non-analytic kinds and the pre-build window.
func (s *Server) indexHeader(q serving.Query) string {
	eng, ok := s.fd.Engine(q.App)
	if !ok || !serving.AnalyticKind(q.Kind) {
		return "off"
	}
	if q.Kind == "schedule" {
		// The horizon solver reuses the billing-independent staircase,
		// so it is index-backed regardless of the per-query routing.
		if eng.FrontierBuilt() {
			return "on"
		}
		return "off"
	}
	if eng.IndexBuilt() {
		return "on"
	}
	if st, ok := s.fd.IndexStatusFor(q.App); ok &&
		(st.State == serving.IndexDegraded || st.State == serving.IndexBuilding) {
		return "degraded"
	}
	switch eng.IndexBypassCause() {
	case core.BypassConfig:
		return "off-config"
	case core.BypassBilling:
		return "off-billing"
	case core.BypassPairCap:
		return "off-pair-cap"
	}
	return "off"
}

// writeError maps serving and engine errors to HTTP statuses: overload
// → 429 + Retry-After, unknown app → 404, recovered compute panic →
// 500, request-context expiry → 503, anything else (domain/model
// errors) → 422.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serving.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{err.Error()})
	case errors.Is(err, serving.ErrUnknownApp):
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
	case errors.Is(err, serving.ErrInternal):
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	default:
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{err.Error()})
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	maxRows := req.MaxFrontier
	if maxRows <= 0 {
		maxRows = 100
	}
	q := serving.Query{Kind: "analyze", App: req.App, N: req.N, A: req.A,
		DeadlineHours: req.DeadlineH, BudgetUSD: req.BudgetUSD, MaxFrontier: maxRows}
	s.serve(w, r, q, func(ctx context.Context, eng *core.Engine) ([]byte, error) {
		an, err := eng.AnalyzeContext(ctx, workload.Params{N: req.N, A: req.A}, core.Constraints{
			Deadline: req.DeadlineH.Seconds(),
			Budget:   req.BudgetUSD,
		}, core.Options{})
		if err != nil {
			return nil, err
		}
		resp := AnalyzeResponse{App: req.App, Total: an.Total, Feasible: an.Feasible}
		lo, hi, _ := an.CostSpan()
		resp.CostLowUSD, resp.CostHiUSD = lo, hi
		for i, f := range an.Frontier {
			if i >= maxRows {
				break
			}
			resp.Frontier = append(resp.Frontier, ConfigResult{
				Config:    f.Config.Counts(),
				TimeHours: f.Time.InHours(),
				CostUSD:   f.Cost,
			})
		}
		return json.Marshal(resp)
	})
}

func (s *Server) handleMinCost(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	if req.DeadlineH == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"mincost requires deadline_hours"})
		return
	}
	q := serving.Query{Kind: "mincost", App: req.App, N: req.N, A: req.A, DeadlineHours: req.DeadlineH}
	s.serve(w, r, q, func(ctx context.Context, eng *core.Engine) ([]byte, error) {
		pred, feasible, err := eng.MinCostForDeadlineContext(ctx, workload.Params{N: req.N, A: req.A},
			req.DeadlineH.Seconds())
		if err != nil {
			return nil, err
		}
		resp := OptimizeResponse{App: req.App, Feasible: feasible}
		if feasible {
			resp.Best = &ConfigResult{
				Config:    pred.Config.Counts(),
				TimeHours: pred.Time.InHours(),
				CostUSD:   pred.Cost,
			}
		}
		return json.Marshal(resp)
	})
}

func (s *Server) handleMinTime(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	if req.BudgetUSD == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"mintime requires budget_usd"})
		return
	}
	q := serving.Query{Kind: "mintime", App: req.App, N: req.N, A: req.A, BudgetUSD: req.BudgetUSD}
	s.serve(w, r, q, func(ctx context.Context, eng *core.Engine) ([]byte, error) {
		pred, feasible, err := eng.MinTimeForBudgetContext(ctx, workload.Params{N: req.N, A: req.A},
			req.BudgetUSD)
		if err != nil {
			return nil, err
		}
		resp := OptimizeResponse{App: req.App, Feasible: feasible}
		if feasible {
			resp.Best = &ConfigResult{
				Config:    pred.Config.Counts(),
				TimeHours: pred.Time.InHours(),
				CostUSD:   pred.Cost,
			}
		}
		return json.Marshal(resp)
	})
}

func (s *Server) handleMaxAccuracy(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	if req.DeadlineH == 0 && req.BudgetUSD == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"maxaccuracy requires a deadline or a budget"})
		return
	}
	q := serving.Query{Kind: "maxaccuracy", App: req.App, N: req.N,
		DeadlineHours: req.DeadlineH, BudgetUSD: req.BudgetUSD}
	s.serve(w, r, q, func(ctx context.Context, eng *core.Engine) ([]byte, error) {
		p, pred, feasible, err := eng.MaxAccuracyContext(ctx, req.N, core.Constraints{
			Deadline: req.DeadlineH.Seconds(),
			Budget:   req.BudgetUSD,
		}, 1e-3)
		if err != nil {
			return nil, err
		}
		resp := OptimizeResponse{App: req.App, Feasible: feasible}
		if feasible {
			resp.Accuracy = p.A
			resp.Best = &ConfigResult{
				Config:    pred.Config.Counts(),
				TimeHours: pred.Time.InHours(),
				CostUSD:   pred.Cost,
			}
		}
		return json.Marshal(resp)
	})
}

// riskRequest is the body of POST /v1/risk. Config pins an explicit
// configuration (node counts per catalog type); omitted, the server
// solves mincost for the deadline first and evaluates that tuple.
type riskRequest struct {
	App           string      `json:"app"`
	N             float64     `json:"n"`
	A             float64     `json:"a"`
	DeadlineH     units.Hours `json:"deadline_hours"`
	HazardPerHour float64     `json:"hazard_per_hour"`
	Trials        int         `json:"trials,omitempty"`
	Seed          uint64      `json:"seed,omitempty"`
	Config        []int       `json:"config,omitempty"`
}

// RiskResponse is the Monte-Carlo deadline-risk estimate.
type RiskResponse struct {
	App             string      `json:"app"`
	Config          []int       `json:"config"`
	Trials          int         `json:"trials"`
	FailedTrials    int         `json:"failed_trials"`
	MissProbability float64     `json:"miss_probability"`
	MeanFailures    float64     `json:"mean_failures_per_trial"`
	BaseTimeHours   units.Hours `json:"base_time_hours"`
	BaseCostUSD     units.USD   `json:"base_cost_usd"`
	TimeP50Hours    units.Hours `json:"time_p50_hours"`
	TimeP90Hours    units.Hours `json:"time_p90_hours"`
	TimeP99Hours    units.Hours `json:"time_p99_hours"`
	CostP50USD      units.USD   `json:"cost_p50_usd"`
	CostP90USD      units.USD   `json:"cost_p90_usd"`
	CostP99USD      units.USD   `json:"cost_p99_usd"`
}

// canonicalConfig renders a tuple request field for the cache key:
// numerically equal configurations collide, everything else does not.
func canonicalConfig(counts []int) string {
	if len(counts) == 0 {
		return ""
	}
	parts := make([]string, len(counts))
	for i, c := range counts {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ",")
}

func (s *Server) handleRisk(w http.ResponseWriter, r *http.Request) {
	var req riskRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes)})
		} else {
			writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad request body: %v", err)})
		}
		return
	}
	if _, ok := s.fd.Engine(req.App); !ok {
		writeJSON(w, http.StatusNotFound, errorBody{fmt.Sprintf("unknown app %q", req.App)})
		return
	}
	if req.DeadlineH <= 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"risk requires a positive deadline_hours"})
		return
	}
	if req.HazardPerHour < 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"negative hazard_per_hour"})
		return
	}
	if req.Trials < 0 || req.Trials > risk.MaxTrials {
		writeJSON(w, http.StatusBadRequest,
			errorBody{fmt.Sprintf("trials outside [0, %d]", risk.MaxTrials)})
		return
	}
	app, ok := s.apps[req.App]
	if !ok {
		writeJSON(w, http.StatusUnprocessableEntity,
			errorBody{fmt.Sprintf("no workload mounted for %q: risk queries need the simulator, not just the analytic engine", req.App)})
		return
	}
	var tuple config.Tuple
	if len(req.Config) > 0 {
		var err error
		tuple, err = config.NewTuple(req.Config)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
			return
		}
	}
	trials := req.Trials
	if trials == 0 {
		trials = risk.DefaultTrials
	}

	q := serving.Query{Kind: "risk", App: req.App, N: req.N, A: req.A,
		DeadlineHours: req.DeadlineH, HazardPerHour: req.HazardPerHour,
		Trials: trials, Seed: req.Seed, Config: canonicalConfig(req.Config)}
	trialsRun := s.reg.Counter("risk.trials")
	s.serve(w, r, q, func(ctx context.Context, eng *core.Engine) ([]byte, error) {
		p := workload.Params{N: req.N, A: req.A}
		t := tuple
		if len(req.Config) == 0 {
			pred, feasible, err := eng.MinCostForDeadlineContext(ctx, p, req.DeadlineH.Seconds())
			if err != nil {
				return nil, err
			}
			if !feasible {
				return nil, fmt.Errorf("no configuration meets the %.2fh deadline; pass an explicit config", req.DeadlineH)
			}
			t = pred.Config
		}
		cat := eng.Capacities().Catalog()
		if t.Len() != cat.Len() {
			return nil, fmt.Errorf("config arity %d does not match the catalog's %d types", t.Len(), cat.Len())
		}
		est, err := risk.EstimateContext(ctx, app, p, t, cat, risk.Options{
			Trials:        trials,
			Seed:          req.Seed,
			HazardPerHour: req.HazardPerHour,
			Deadline:      req.DeadlineH.Seconds(),
			Sim:           cloudsim.DefaultOptions(),
			Recovery:      faults.DefaultRecovery(),
		})
		if err != nil {
			return nil, err
		}
		trialsRun.Add(int64(est.Trials))
		return json.Marshal(RiskResponse{
			App:             req.App,
			Config:          t.Counts(),
			Trials:          est.Trials,
			FailedTrials:    est.Failed,
			MissProbability: est.MissProb,
			MeanFailures:    est.MeanFailures,
			BaseTimeHours:   est.BaseMakespan.InHours(),
			BaseCostUSD:     est.BaseCost,
			TimeP50Hours:    est.MakespanP50.InHours(),
			TimeP90Hours:    est.MakespanP90.InHours(),
			TimeP99Hours:    est.MakespanP99.InHours(),
			CostP50USD:      est.CostP50,
			CostP90USD:      est.CostP90,
			CostP99USD:      est.CostP99,
		})
	})
}

// scheduleRequest is the body of POST /v1/schedule: a demand trace to
// solve a scaling schedule for, plus the switching-cost and optional
// per-step risk knobs.
type scheduleRequest struct {
	App   string       `json:"app"`
	Trace demand.Trace `json:"trace"`
	// BootSeconds is the boot delay for capacity added at a step
	// boundary; 0 means the default (schedule.DefaultBoot).
	BootSeconds units.Seconds `json:"boot_seconds,omitempty"`
	// HazardPerHour > 0 adds a Monte-Carlo deadline-risk timeline
	// (requires the app's workload to be mounted).
	HazardPerHour float64 `json:"hazard_per_hour,omitempty"`
	RiskTrials    int     `json:"risk_trials,omitempty"`
	// RiskEvery samples every k-th step for risk (default 8).
	RiskEvery int    `json:"risk_every,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// MaxTimeline caps per-step rows in the response (default 1000;
	// negative omits the timeline entirely).
	MaxTimeline int `json:"max_timeline,omitempty"`
}

// ScheduleStepResult is one timestep of a schedule response.
type ScheduleStepResult struct {
	T            int           `json:"t"`
	Config       []int         `json:"config"`
	DeltaNodes   int           `json:"delta_nodes,omitempty"`
	SlackSeconds units.Seconds `json:"slack_seconds"`
	CostUSD      units.USD     `json:"cost_usd"`
	Missed       bool          `json:"missed,omitempty"`
	// MissProbability is present only on risk-sampled steps.
	MissProbability *float64 `json:"miss_probability,omitempty"`
	RiskTrials      int      `json:"risk_trials,omitempty"`
}

// ScheduleResponse reports the solved schedule and its gap to the
// reactive autoscaling baseline.
type ScheduleResponse struct {
	App              string        `json:"app"`
	TraceHash        string        `json:"trace_hash"`
	TraceName        string        `json:"trace_name,omitempty"`
	Steps            int           `json:"steps"`
	StepSeconds      units.Seconds `json:"step_seconds"`
	HorizonHours     units.Hours   `json:"horizon_hours"`
	Billing          string        `json:"billing"`
	BootSeconds      units.Seconds `json:"boot_seconds"`
	QuantumSeconds   units.Seconds `json:"quantum_seconds,omitempty"`
	Candidates       int           `json:"candidates"`
	IndexBacked      bool          `json:"index_backed"`
	TotalCostUSD     units.USD     `json:"total_cost_usd"`
	ReleasePayoutUSD units.USD     `json:"release_payout_usd,omitempty"`
	Switches         int           `json:"switches"`
	Misses           int           `json:"misses"`
	// The built-in comparison: the same trace under reactive
	// autoscale-style scaling with identical cost accounting.
	BaselineCostUSD      units.USD            `json:"baseline_cost_usd"`
	BaselineMisses       int                  `json:"baseline_misses"`
	SavingsVsReactivePct float64              `json:"savings_vs_reactive_pct"`
	Timeline             []ScheduleStepResult `json:"timeline,omitempty"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req scheduleRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes)})
		} else {
			writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad request body: %v", err)})
		}
		return
	}
	if _, ok := s.fd.Engine(req.App); !ok {
		writeJSON(w, http.StatusNotFound, errorBody{fmt.Sprintf("unknown app %q", req.App)})
		return
	}
	if err := req.Trace.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	boot := req.BootSeconds
	if boot == 0 {
		boot = schedule.DefaultBoot
	}
	if boot < 0 || boot > req.Trace.Step {
		writeJSON(w, http.StatusBadRequest,
			errorBody{fmt.Sprintf("boot_seconds %v outside [0, step %v]", req.BootSeconds, req.Trace.Step)})
		return
	}
	if req.HazardPerHour < 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"negative hazard_per_hour"})
		return
	}
	if req.RiskTrials < 0 || req.RiskTrials > risk.MaxTrials {
		writeJSON(w, http.StatusBadRequest,
			errorBody{fmt.Sprintf("risk_trials outside [0, %d]", risk.MaxTrials)})
		return
	}
	var app workload.App
	if req.HazardPerHour > 0 {
		var ok bool
		if app, ok = s.apps[req.App]; !ok {
			writeJSON(w, http.StatusUnprocessableEntity,
				errorBody{fmt.Sprintf("no workload mounted for %q: risk timelines need the simulator, not just the analytic engine", req.App)})
			return
		}
	}
	riskEvery := req.RiskEvery
	if riskEvery <= 0 {
		riskEvery = 8
	}
	maxTimeline := req.MaxTimeline
	if maxTimeline == 0 {
		maxTimeline = 1000
	}

	// The trace hash plus every policy knob that shapes the response
	// body goes into the cache key via Extra; hazard, trials, and seed
	// ride the shared Query fields. The advisory trace name is keyed
	// too — Hash deliberately skips it, but the response echoes it, so
	// two traces differing only in name must not share a cache entry.
	q := serving.Query{Kind: "schedule", App: req.App,
		HazardPerHour: req.HazardPerHour, Trials: req.RiskTrials, Seed: req.Seed,
		Extra: fmt.Sprintf("%s|boot=%s|every=%d|cap=%d|name=%s", req.Trace.Hash(),
			strconv.FormatFloat(float64(boot), 'g', -1, 64), riskEvery, maxTimeline, req.Trace.Name)}
	solves := s.reg.Counter("serving.schedule.solves")
	stepsSolved := s.reg.Counter("serving.schedule.steps")
	riskSteps := s.reg.Counter("serving.schedule.risk_steps")
	s.serve(w, r, q, func(ctx context.Context, eng *core.Engine) ([]byte, error) {
		pol := schedule.PolicyFor(eng)
		pol.Boot = boot
		solved, err := schedule.SolveContext(ctx, eng, req.Trace, pol)
		if err != nil {
			return nil, err
		}
		baseline, err := schedule.ReactiveContext(ctx, eng, req.Trace, pol, autoscale.DefaultPolicy())
		if err != nil {
			return nil, err
		}
		solves.Inc()
		stepsSolved.Add(int64(len(solved.Steps)))

		riskAt := make(map[int]schedule.RiskPoint)
		if req.HazardPerHour > 0 {
			points, err := schedule.RiskTimelineContext(ctx, app, eng, req.Trace, solved, schedule.RiskOptions{
				HazardPerHour: req.HazardPerHour,
				Trials:        req.RiskTrials,
				Every:         riskEvery,
				Seed:          req.Seed,
			})
			if err != nil {
				return nil, err
			}
			riskSteps.Add(int64(len(points)))
			for _, pt := range points {
				riskAt[pt.T] = pt
			}
		}

		resp := ScheduleResponse{
			App:                  req.App,
			TraceHash:            req.Trace.Hash(),
			TraceName:            req.Trace.Name,
			Steps:                req.Trace.Steps(),
			StepSeconds:          req.Trace.Step,
			HorizonHours:         req.Trace.Horizon().InHours(),
			Billing:              eng.Billing().String(),
			BootSeconds:          pol.Boot,
			QuantumSeconds:       pol.Quantum,
			Candidates:           solved.Candidates,
			IndexBacked:          eng.FrontierBuilt(),
			TotalCostUSD:         solved.TotalCost,
			ReleasePayoutUSD:     solved.ReleasePayout,
			Switches:             solved.Switches,
			Misses:               solved.Misses,
			BaselineCostUSD:      baseline.TotalCost,
			BaselineMisses:       baseline.Misses,
			SavingsVsReactivePct: schedule.SavingsPct(solved.TotalCost, baseline.TotalCost),
		}
		for t, st := range solved.Steps {
			if maxTimeline < 0 || t >= maxTimeline {
				break
			}
			row := ScheduleStepResult{
				T:            t,
				Config:       st.Config.Counts(),
				DeltaNodes:   st.DeltaNodes,
				SlackSeconds: st.Slack,
				CostUSD:      st.Cost,
				Missed:       st.Missed,
			}
			if pt, ok := riskAt[t]; ok {
				p := pt.MissProbability
				row.MissProbability = &p
				row.RiskTrials = pt.Trials
			}
			resp.Timeline = append(resp.Timeline, row)
		}
		return json.Marshal(resp)
	})
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with its per-route latency histogram and
// the shared status-class counters. Histograms are registered by the
// caller under literal names so the metric namespace is closed at
// compile time (no request-derived cardinality).
func (s *Server) instrument(hist *telemetry.Histogram, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.httpRequests.Inc()
		if c := sw.status / 100; c >= 1 && c < len(s.statusClass) {
			s.statusClass[c].Inc()
		}
		hist.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
