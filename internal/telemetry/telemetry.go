// Package telemetry is a small dependency-free metrics core for the
// serving stack: named atomic counters, gauges, and log-linear latency
// histograms collected in a Registry and exported as expvar-style JSON
// (mounted by internal/api at GET /debug/metrics).
//
// All operations are safe for concurrent use and allocation-free on the
// hot path: a metric is looked up (or created) once and then updated
// with plain atomic instructions. Histograms use log-linear bucketing —
// power-of-two decades split into 8 linear sub-buckets — giving ≤ 12.5 %
// relative error on quantile estimates over a 2⁻²⁰..2⁴⁰ range, the same
// scheme HDR-style histograms use.
package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d must be ≥ 0 for the value to stay
// monotone; this is not enforced).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative d decreases it).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucketing: values are mapped to (exponent, sub-bucket)
// pairs where the exponent is the power-of-two decade and each decade
// has histSub linear sub-buckets. Exponents are clamped to
// [histMinExp, histMaxExp); with histSub = 8 that is 60 decades × 8 =
// 480 buckets of 8 bytes each per histogram.
const (
	histSub    = 8
	histMinExp = -20 // 2⁻²⁰ ≈ 1e-6: microseconds when observing ms
	histMaxExp = 40  // 2⁴⁰ ≈ 1e12
	histSlots  = (histMaxExp - histMinExp) * histSub
)

// Histogram is a fixed-size log-linear histogram of non-negative
// float64 observations (typically latencies in milliseconds).
type Histogram struct {
	count   atomic.Int64
	sum     atomicFloat
	max     atomicFloat
	buckets [histSlots]atomic.Int64
}

// atomicFloat is a float64 updated via CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// bucketIndex maps a positive value to its log-linear slot.
func bucketIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	e := exp - 1               // v = f2 × 2^e, f2 ∈ [1, 2)
	if e < histMinExp {
		return 0
	}
	if e >= histMaxExp {
		return histSlots - 1
	}
	sub := int((frac*2 - 1) * histSub) // (f2-1)·histSub ∈ [0, histSub)
	if sub >= histSub {
		sub = histSub - 1
	}
	return (e-histMinExp)*histSub + sub
}

// bucketUpper is the inclusive upper bound of slot i, used to report
// quantiles.
func bucketUpper(i int) float64 {
	e := i/histSub + histMinExp
	sub := i % histSub
	return math.Ldexp(1+float64(sub+1)/histSub, e)
}

// Observe records one value. Negative and NaN observations are counted
// in the lowest bucket so Count stays consistent with call volume, and
// +Inf is clamped to the top bucket's upper bound (2⁴⁰) so Sum, Max,
// and the quantiles stay finite — encoding/json refuses to marshal
// infinities, which would take down the /debug/metrics export.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	if math.IsInf(v, 1) {
		v = bucketUpper(histSlots - 1)
	}
	h.count.Add(1)
	h.sum.add(v)
	h.max.storeMax(v)
	if v <= 0 {
		h.buckets[0].Add(1)
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the running sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Max reports the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max.load() }

// Quantile estimates the q-th quantile (q ∈ [0, 1]) as the upper bound
// of the bucket containing it. Zero when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histSlots; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return h.Max()
}

// snapshot is the exported JSON form of one histogram.
type histSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Safe for concurrent use; the same name always yields the same
// counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counts[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counts[name]; !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns the current state of every metric as a JSON-ready
// value: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
func (r *Registry) Snapshot() map[string]interface{} {
	r.mu.RLock()
	defer r.mu.RUnlock()
	counters := make(map[string]int64, len(r.counts))
	for name, c := range r.counts {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]histSnapshot, len(r.hists))
	for name, h := range r.hists {
		s := histSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			Max:   h.Max(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
		if s.Count > 0 {
			s.Mean = s.Sum / float64(s.Count)
		}
		hists[name] = s
	}
	return map[string]interface{}{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
}

// Names reports every registered metric name, sorted; useful in tests.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counts)+len(r.gauges)+len(r.hists))
	for n := range r.counts {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler serves the registry snapshot as indented JSON — the body of
// GET /debug/metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
