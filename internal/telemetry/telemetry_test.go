package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits") // same name from every goroutine
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 ms uniformly: p50 ≈ 500, p99 ≈ 990, within log-linear
	// bucket resolution (12.5 % relative error).
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-500500) > 1e-6 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %v", h.Max())
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.90, 900}, {0.99, 990},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want || got > tc.want*1.15 {
			t.Errorf("q%v = %v, want within [%v, %v]", tc.q, got, tc.want, tc.want*1.15)
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.NaN())
	h.Observe(1e-9) // below the lowest decade
	h.Observe(1e15) // above the highest decade
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (every observation lands somewhere)", h.Count())
	}
	if q := h.Quantile(1.0); q < 1e12 {
		t.Fatalf("p100 = %v, want clamped top bucket", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			h := r.Histogram("latency_ms")
			for j := 0; j < 500; j++ {
				h.Observe(float64(seed*500+j) / 7)
			}
		}(i)
	}
	wg.Wait()
	if got := r.Histogram("latency_ms").Count(); got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
}

func TestHandlerJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("serving.cache.hits").Add(3)
	r.Gauge("serving.inflight").Set(1)
	r.Histogram("http.analyze.ms").Observe(12.5)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var body struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Mean  float64 `json:"mean"`
			P99   float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if body.Counters["serving.cache.hits"] != 3 {
		t.Fatalf("counters = %v", body.Counters)
	}
	if body.Gauges["serving.inflight"] != 1 {
		t.Fatalf("gauges = %v", body.Gauges)
	}
	h := body.Histograms["http.analyze.ms"]
	if h.Count != 1 || h.Mean != 12.5 || h.P99 < 12.5 {
		t.Fatalf("histogram = %+v", h)
	}
}

func TestHistogramInfObservation(t *testing.T) {
	var h Histogram
	h.Observe(math.Inf(1))  // was a panic: Frexp(+Inf) gave a negative bucket index
	h.Observe(math.Inf(-1)) // negative path: lands in the lowest bucket
	h.Observe(1)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	top := bucketUpper(histSlots - 1)
	if h.Max() != top {
		t.Fatalf("max = %v, want +Inf clamped to top bucket bound %v", h.Max(), top)
	}
	if math.IsInf(h.Sum(), 0) || math.IsNaN(h.Sum()) {
		t.Fatalf("sum = %v, want finite", h.Sum())
	}
	if q := h.Quantile(1.0); math.IsInf(q, 0) || q < 1 {
		t.Fatalf("p100 = %v, want finite and >= 1", q)
	}
}

func TestSnapshotJSONStaysFiniteUnderEdgeObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge.latency.ms")
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1), 3.5} {
		h.Observe(v)
	}
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatalf("snapshot with edge observations must stay marshalable: %v", err)
	}
}

func TestSnapshotDuringConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			h := r.Histogram("live.latency.ms")
			c := r.Counter("live.requests")
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				switch j % 5 {
				case 0:
					h.Observe(math.Inf(1))
				case 1:
					h.Observe(0)
				default:
					h.Observe(float64(seed*100+j) / 3)
				}
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		if _, err := json.Marshal(r.Snapshot()); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot %d failed mid-traffic: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if r.Histogram("live.latency.ms").Count() != r.Counter("live.requests").Value() {
		t.Fatalf("count = %d, requests = %d: every observation must land",
			r.Histogram("live.latency.ms").Count(), r.Counter("live.requests").Value())
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c")
	got := r.Names()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("names = %v", got)
	}
}
