package snapshot

import (
	"reflect"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/detrand"
	"repro/internal/ec2"
	"repro/internal/model"
)

// fuzzEngine builds the reference engine once per fuzz process; the
// fuzz body itself only decodes.
func fuzzEngine(f *testing.F) *core.Engine {
	f.Helper()
	cat := ec2.Oregon()
	space, err := config.Uniform(cat.Len(), 2)
	if err != nil {
		f.Fatal(err)
	}
	eng, err := core.NewEngine(model.FromIPC(cat, galaxy.App{}), demand.FromApp(galaxy.App{}), space, galaxy.App{}.Domain())
	if err != nil {
		f.Fatal(err)
	}
	return eng
}

// FuzzDecode feeds arbitrary bytes to the snapshot decoder, seeded with
// the shapes a real failure produces: a valid artifact, truncations,
// bit flips, and a version-skewed forgery whose checksum is intact
// (mirroring internal/store's FuzzLoad discipline). The decoder must
// never panic, and anything it accepts must be the canonical artifact:
// re-encoding the decoded index reproduces the input byte-for-byte, so
// no corrupted variant can smuggle in a different index.
func FuzzDecode(f *testing.F) {
	eng := fuzzEngine(f)
	built, ok := eng.Frontier()
	if !ok {
		f.Fatal("index did not build")
	}
	valid, err := Encode(eng, built)
	if err != nil {
		f.Fatal(err)
	}
	fingerprint := eng.IndexFingerprint()

	f.Add(valid)
	f.Add(chaos.Truncate(valid, len(valid)/2))
	f.Add(chaos.Truncate(valid, headerLen))
	f.Add(chaos.Truncate(valid, headerLen-1))
	f.Add(chaos.FlipBit(valid, 7))       // magic
	f.Add(chaos.FlipBit(valid, 8*50))    // fingerprint region
	f.Add(chaos.FlipBit(valid, 8*100+3)) // payload
	f.Add(forgeVersion(valid, FormatVersion+1))
	src := detrand.New(42)
	for _, bad := range chaos.Corruptions(valid, src, 16) {
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte("CELIAIDX"))

	f.Fuzz(func(t *testing.T, blob []byte) {
		x, err := Decode(blob, fingerprint)
		if err != nil {
			return
		}
		re, err := Encode(eng, x)
		if err != nil {
			t.Fatalf("accepted index does not re-encode: %v", err)
		}
		if !reflect.DeepEqual(re, blob) {
			t.Fatalf("accepted %d-byte artifact is not canonical", len(blob))
		}
	})
}
