// Package snapshot persists built frontier indexes across process
// restarts. The build walks the full configuration space (~2.6s on the
// paper's 10M-configuration catalog); the snapshot loads the same index
// in tens of milliseconds, so a restarted server answers from the index
// immediately instead of scanning under live traffic.
//
// The format is a checksummed binary envelope around the index codec in
// internal/core:
//
//	[0:8]    magic "CELIAIDX"
//	[8:40]   SHA-256 over everything after this field
//	[40:44]  format version, little-endian u32
//	[44:76]  engine fingerprint (raw SHA-256; see core.IndexFingerprint)
//	[76:84]  payload length, little-endian u64
//	[84:]    payload (core.FrontierIndex binary encoding)
//
// Load is strict, in the same spirit as internal/store's Load: a
// truncated file, a flipped bit anywhere after the magic, a version
// skew, or a structurally invalid payload all fail with ErrCorrupt; an
// intact artifact built from a different catalog (prices changed, space
// resized) fails with ErrStale. Save is crash-safe: the artifact is
// written to a temp file in the destination directory, fsynced, then
// renamed over the destination, and the directory is fsynced — a crash
// at any point leaves either the old artifact or the new one, never a
// loadable hybrid.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// FormatVersion guards against silently loading an incompatible
// artifact; bump it whenever the envelope or the core codec changes.
//
// Version history:
//
//	1: initial envelope.
//	2: the index became billing-capable — per-hour engines now restore
//	   and serve snapshots instead of bypassing them. The bytes are
//	   unchanged, but version-1 artifacts predate the per-hour
//	   certification and are refused rather than trusted under a
//	   billing policy their build never covered.
const FormatVersion = 2

var magic = [8]byte{'C', 'E', 'L', 'I', 'A', 'I', 'D', 'X'}

// headerLen is the envelope size before the payload.
const headerLen = 8 + 32 + 4 + 32 + 8

var (
	// ErrCorrupt reports an artifact that is not a bit-exact, well-formed
	// snapshot: wrong magic, failed checksum, version skew, truncation,
	// or a payload the index codec rejects.
	ErrCorrupt = errors.New("snapshot: corrupt artifact")
	// ErrStale reports an intact artifact built from a different catalog
	// or configuration space than the engine loading it.
	ErrStale = errors.New("snapshot: artifact does not match the engine's catalog")
)

// PathFor names the snapshot artifact for one application inside dir.
func PathFor(dir, app string) string {
	return filepath.Join(dir, app+".frontier.snap")
}

// Encode renders the complete artifact for an engine's built frontier
// index: envelope plus payload, checksummed and fingerprinted.
func Encode(eng *core.Engine, x *core.FrontierIndex) ([]byte, error) {
	fp, err := hex.DecodeString(eng.IndexFingerprint())
	if err != nil || len(fp) != 32 {
		return nil, fmt.Errorf("snapshot: engine fingerprint is not a SHA-256: %q", eng.IndexFingerprint())
	}
	payload := x.EncodeBinary()
	blob := make([]byte, headerLen+len(payload))
	copy(blob[0:8], magic[:])
	binary.LittleEndian.PutUint32(blob[40:44], FormatVersion)
	copy(blob[44:76], fp)
	binary.LittleEndian.PutUint64(blob[76:84], uint64(len(payload)))
	copy(blob[84:], payload)
	sum := sha256.Sum256(blob[40:])
	copy(blob[8:40], sum[:])
	return blob, nil
}

// Decode validates an artifact end-to-end and rebuilds the index. The
// fingerprint argument is the loading engine's core.IndexFingerprint;
// a mismatch on an otherwise intact artifact returns ErrStale.
func Decode(blob []byte, fingerprint string) (*core.FrontierIndex, error) {
	if len(blob) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, envelope needs %d", ErrCorrupt, len(blob), headerLen)
	}
	if !bytes.Equal(blob[0:8], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	sum := sha256.Sum256(blob[40:])
	if !bytes.Equal(blob[8:40], sum[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(blob[40:44]); v != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, v, FormatVersion)
	}
	if plen := binary.LittleEndian.Uint64(blob[76:84]); plen != uint64(len(blob)-headerLen) {
		return nil, fmt.Errorf("%w: payload length %d, have %d bytes", ErrCorrupt, plen, len(blob)-headerLen)
	}
	want, err := hex.DecodeString(fingerprint)
	if err != nil || len(want) != 32 {
		return nil, fmt.Errorf("snapshot: engine fingerprint is not a SHA-256: %q", fingerprint)
	}
	if !bytes.Equal(blob[44:76], want) {
		return nil, fmt.Errorf("%w: artifact fingerprint %x, engine %s", ErrStale, blob[44:76], fingerprint)
	}
	x, err := core.DecodeFrontierIndex(blob[headerLen:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return x, nil
}

// Save persists the engine's frontier index (building it first if
// needed) to path with the crash-safe temp+fsync+rename protocol.
func Save(path string, eng *core.Engine) error {
	x, ok := eng.Frontier()
	if !ok {
		return fmt.Errorf("snapshot: catalog does not compress under the pair cap; nothing to save")
	}
	blob, err := Encode(eng, x)
	if err != nil {
		return err
	}
	return writeAtomic(path, blob)
}

// Load reads and fully validates the artifact at path against the
// engine, returning the decoded index without installing it. A missing
// file surfaces as fs.ErrNotExist via the wrapped os error.
func Load(path string, eng *core.Engine) (*core.FrontierIndex, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(blob, eng.IndexFingerprint())
}

// Restore loads the artifact at path and installs it as the engine's
// frontier index. On any error the engine is left untouched.
func Restore(path string, eng *core.Engine) error {
	x, err := Load(path, eng)
	if err != nil {
		return err
	}
	return eng.InstallIndex(x)
}

// writeAtomic writes data to path so that a crash at any instant leaves
// either the previous artifact or the complete new one: the bytes land
// in a same-directory temp file, are fsynced to stable storage, and
// only then renamed over the destination; the directory entry itself is
// fsynced last.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op once renamed
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir flushes the directory entry after a rename; filesystems that
// do not support fsync on directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems (and most CI sandboxes) reject fsync on a
	// directory handle; the rename is still ordered after the file's own
	// fsync, which is the property correctness needs, so a refusal here
	// is not an error.
	_ = d.Sync()
	return nil
}
