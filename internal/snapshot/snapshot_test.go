package snapshot

import (
	"crypto/sha256"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/detrand"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/workload"
)

// testEngine builds a small engine over the Oregon catalog; maxNodes 2
// keeps the space at 3^9 = 19,683 configurations so index builds are
// milliseconds.
func testEngine(t *testing.T, app workload.App, maxNodes int) *core.Engine {
	t.Helper()
	cat := ec2.Oregon()
	space, err := config.Uniform(cat.Len(), maxNodes)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(model.FromIPC(cat, app), demand.FromApp(app), space, app.Domain())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestSaveLoadRoundTrip(t *testing.T) {
	eng := testEngine(t, galaxy.App{}, 2)
	built, ok := eng.Frontier()
	if !ok {
		t.Fatal("index did not build")
	}
	path := PathFor(t.TempDir(), "galaxy")
	if err := Save(path, eng); err != nil {
		t.Fatal(err)
	}

	// A fresh engine with the same catalog loads the artifact and gets a
	// structurally identical index.
	restored := testEngine(t, galaxy.App{}, 2)
	x, err := Load(path, restored)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x, built) {
		t.Fatal("decoded index is not structurally identical to the built one")
	}
	if err := restored.InstallIndex(x); err != nil {
		t.Fatal(err)
	}
	if !restored.FrontierBuilt() {
		t.Fatal("install did not publish the index")
	}

	// Saving again is idempotent at the byte level: same catalog, same
	// artifact.
	blob1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := Encode(restored, x)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blob1, blob2) {
		t.Fatal("re-encoding the restored index changed the artifact bytes")
	}
}

func TestRestoreInstalls(t *testing.T) {
	eng := testEngine(t, galaxy.App{}, 2)
	dir := t.TempDir()
	path := PathFor(dir, "galaxy")
	if err := Save(path, eng); err != nil {
		t.Fatal(err)
	}
	fresh := testEngine(t, galaxy.App{}, 2)
	if err := Restore(path, fresh); err != nil {
		t.Fatal(err)
	}
	if !fresh.FrontierBuilt() {
		t.Fatal("restore did not install the index")
	}
}

func TestLoadMissingFile(t *testing.T) {
	eng := testEngine(t, galaxy.App{}, 2)
	_, err := Load(PathFor(t.TempDir(), "galaxy"), eng)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing artifact: got %v, want fs.ErrNotExist", err)
	}
}

// TestCorruptionRejected drives the decoder with deterministic bit
// flips and truncations; every variant must fail with ErrCorrupt and
// none may crash.
func TestCorruptionRejected(t *testing.T) {
	eng := testEngine(t, galaxy.App{}, 2)
	path := PathFor(t.TempDir(), "galaxy")
	if err := Save(path, eng); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := detrand.New(0xC0FFEE)
	for i, bad := range chaos.Corruptions(blob, src, 64) {
		if _, err := Decode(bad, eng.IndexFingerprint()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corruption %d (%d bytes): got %v, want ErrCorrupt", i, len(bad), err)
		}
	}
}

// TestStaleRejected: an intact artifact from a different configuration
// space must be refused with ErrStale, and a different demand model
// over the same catalog must NOT invalidate it — the index is a pure
// function of catalog and space only.
func TestStaleRejected(t *testing.T) {
	eng := testEngine(t, galaxy.App{}, 2)
	path := PathFor(t.TempDir(), "galaxy")
	if err := Save(path, eng); err != nil {
		t.Fatal(err)
	}

	bigger := testEngine(t, galaxy.App{}, 3)
	if _, err := Load(path, bigger); !errors.Is(err, ErrStale) {
		t.Fatalf("resized space: got %v, want ErrStale", err)
	}

	// Same capacities and space, different demand model: the demand law
	// enters at query time, not in the pair table, so the artifact is
	// still valid.
	cat := ec2.Oregon()
	space, err := config.Uniform(cat.Len(), 2)
	if err != nil {
		t.Fatal(err)
	}
	otherDemand, err := core.NewEngine(model.FromIPC(cat, galaxy.App{}), demand.FromApp(sand.App{}), space, sand.App{}.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, otherDemand); err != nil {
		t.Fatalf("same catalog, different demand model: got %v, want success", err)
	}

	// Same space size but different prices: repricing one node type must
	// flip the fingerprint even though the space shape is identical.
	repriced := testEngine(t, sand.App{}, 2)
	if _, err := Load(path, repriced); !errors.Is(err, ErrStale) {
		t.Fatalf("different capacities: got %v, want ErrStale", err)
	}
}

// TestVersionSkewRejected forges a future-format artifact whose
// checksum is valid; only the version gate can catch it.
func TestVersionSkewRejected(t *testing.T) {
	eng := testEngine(t, galaxy.App{}, 2)
	x, _ := eng.Frontier()
	blob, err := Encode(eng, x)
	if err != nil {
		t.Fatal(err)
	}
	skewed := forgeVersion(blob, FormatVersion+1)
	_, err = Decode(skewed, eng.IndexFingerprint())
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew: got %v, want version error", err)
	}
}

// TestKillDuringWrite simulates a writer dying at every interesting
// instant. The canonical path only ever transitions old→new via
// rename, so (a) stray temp files from a dead writer never shadow the
// artifact, and (b) no torn prefix of an artifact is loadable — the
// property that makes temp+fsync+rename sufficient for crash safety.
func TestKillDuringWrite(t *testing.T) {
	eng := testEngine(t, galaxy.App{}, 2)
	dir := t.TempDir()
	path := PathFor(dir, "galaxy")
	if err := Save(path, eng); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A writer killed before rename leaves a temp file; the artifact
	// must still load, and Save must not have left temps of its own.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("Save left %d entries in the directory, want 1", len(entries))
	}
	stray := filepath.Join(dir, filepath.Base(path)+".tmp-dead")
	if err := os.WriteFile(stray, blob[:len(blob)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, eng); err != nil {
		t.Fatalf("stray temp file broke the artifact: %v", err)
	}

	// Every strict prefix — the image a non-atomic in-place writer
	// could have left at the canonical path — must be rejected.
	for n := 0; n < len(blob); n += 7 {
		if _, err := Decode(blob[:n], eng.IndexFingerprint()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("torn prefix of %d/%d bytes loaded: %v", n, len(blob), err)
		}
	}

	// Overwriting an existing artifact goes through the same protocol:
	// afterwards exactly the artifact plus our stray remain.
	if err := Save(path, eng); err != nil {
		t.Fatal(err)
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("re-Save left %d entries, want artifact + stray", len(entries))
	}
	if _, err := Load(path, eng); err != nil {
		t.Fatal(err)
	}
}

// forgeVersion rewrites the version field and recomputes the checksum,
// producing an artifact that passes integrity but not the version gate.
func forgeVersion(blob []byte, v uint32) []byte {
	out := chaos.Truncate(blob, len(blob))
	out[40] = byte(v)
	out[41] = byte(v >> 8)
	out[42] = byte(v >> 16)
	out[43] = byte(v >> 24)
	resum(out)
	return out
}

// resum recomputes the envelope checksum after a deliberate header
// edit, so tests can forge artifacts that pass integrity.
func resum(blob []byte) {
	sum := sha256.Sum256(blob[40:])
	copy(blob[8:40], sum[:])
}
