package schedule

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/model"
)

func TestRiskTimeline(t *testing.T) {
	tr := testTrace(12)
	tr.N[4] = 0 // idle step never sampled
	eng := testEngine(t, 2, model.PerSecond)
	sched, err := Solve(eng, tr, Policy{Boot: 120})
	if err != nil {
		t.Fatal(err)
	}
	opts := RiskOptions{HazardPerHour: 0.05, Trials: 20, Every: 2, Seed: 11}
	points, err := RiskTimeline(galaxy.App{}, eng, tr, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no sampled steps")
	}
	for _, pt := range points {
		if pt.T%2 != 0 || pt.T == 4 {
			t.Fatalf("sampled step %d, want even non-idle steps only", pt.T)
		}
		if pt.Trials != 20 {
			t.Fatalf("step %d ran %d trials, want 20", pt.T, pt.Trials)
		}
		if pt.MissProbability < 0 || pt.MissProbability > 1 {
			t.Fatalf("step %d miss probability %v", pt.T, pt.MissProbability)
		}
	}
	again, err := RiskTimeline(galaxy.App{}, eng, tr, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(points, again) {
		t.Fatal("risk timeline is not deterministic")
	}
}

func TestRiskTimelineCaps(t *testing.T) {
	tr := testTrace(MaxRiskSteps + 10)
	eng := testEngine(t, 2, model.PerSecond)
	sched, err := Solve(eng, tr, Policy{Boot: 120})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RiskTimeline(galaxy.App{}, eng, tr, sched, RiskOptions{Every: 1}); err == nil {
		t.Fatal("oversampled timeline accepted")
	}
	short := testTrace(8)
	if _, err := RiskTimeline(galaxy.App{}, eng, short, sched, RiskOptions{}); err == nil {
		t.Fatal("trace/schedule length mismatch accepted")
	}
}

// TestRiskTimelineContextCancellation asserts the request context
// reaches the timeline loop: a canceled ctx stops the sweep before any
// Monte-Carlo estimate runs and surfaces context.Canceled, completing
// the /v1/schedule cancellation chain down to the trial dispatch.
func TestRiskTimelineContextCancellation(t *testing.T) {
	tr := testTrace(12)
	eng := testEngine(t, 2, model.PerSecond)
	sched, err := Solve(eng, tr, Policy{Boot: 120})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := RiskOptions{HazardPerHour: 0.05, Trials: 20, Seed: 11}
	if _, err := RiskTimelineContext(ctx, galaxy.App{}, eng, tr, sched, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: err = %v, want context.Canceled", err)
	}
}
