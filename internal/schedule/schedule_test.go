package schedule

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/autoscale"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/units"
)

// testEngine builds a galaxy engine over a truncated space (maxNodes
// per type) so index builds stay fast under -race.
func testEngine(t *testing.T, maxNodes int, billing model.Billing) *core.Engine {
	t.Helper()
	app := galaxy.App{}
	cat := ec2.Oregon()
	space, err := config.Uniform(cat.Len(), maxNodes)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(model.FromIPC(cat, app), demand.FromApp(app), space, app.Domain())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetBilling(billing)
	return eng
}

// testTrace is a small two-cycle diurnal well inside the truncated
// space's capacity.
func testTrace(steps int) demand.Trace {
	return demand.Diurnal(demand.DiurnalSpec{
		Steps:  steps,
		Step:   300,
		A:      50,
		BaseN:  2_000,
		PeakN:  20_000,
		Period: steps / 2,
		Jitter: 0.05,
		Seed:   7,
	})
}

func TestSolveDeterministic(t *testing.T) {
	tr := testTrace(40)
	pol := Policy{Boot: 120, Quantum: units.FromHours(1)}
	a, err := Solve(testEngine(t, 2, model.PerHour), tr, pol)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(testEngine(t, 2, model.PerHour), tr, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two solves of the same trace disagree:\n%+v\nvs\n%+v", a, b)
	}
}

func TestSolveBeatsReactive(t *testing.T) {
	tr := testTrace(48)
	for _, billing := range []model.Billing{model.PerSecond, model.PerHour} {
		eng := testEngine(t, 2, billing)
		pol := PolicyFor(eng)
		solved, err := Solve(eng, tr, pol)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Reactive(eng, tr, pol, autoscale.DefaultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		if solved.Misses > base.Misses {
			t.Fatalf("%v: solver misses %d > reactive %d", billing, solved.Misses, base.Misses)
		}
		if solved.Misses == base.Misses && solved.TotalCost > base.TotalCost {
			t.Fatalf("%v: solver cost %v exceeds reactive %v", billing, solved.TotalCost, base.TotalCost)
		}
		if len(solved.Steps) != tr.Steps() || len(base.Steps) != tr.Steps() {
			t.Fatalf("%v: step counts %d/%d, want %d", billing, len(solved.Steps), len(base.Steps), tr.Steps())
		}
	}
}

func TestSolveQuantumChargesCarryover(t *testing.T) {
	tr := testTrace(48)
	eng := testEngine(t, 2, model.PerSecond)
	free, err := Solve(eng, tr, Policy{Boot: 120})
	if err != nil {
		t.Fatal(err)
	}
	held, err := Solve(eng, tr, Policy{Boot: 120, Quantum: units.FromHours(1)})
	if err != nil {
		t.Fatal(err)
	}
	if held.TotalCost < free.TotalCost {
		t.Fatalf("hourly quantum made the schedule cheaper: %v < %v", held.TotalCost, free.TotalCost)
	}
	if held.Switches > free.Switches {
		t.Fatalf("hourly quantum increased switching: %d > %d", held.Switches, free.Switches)
	}
	if free.ReleasePayout != 0 {
		t.Fatalf("per-second schedule owes a release payout: %v", free.ReleasePayout)
	}
}

func TestSolveIdlesThroughZeroDemand(t *testing.T) {
	tr := testTrace(30)
	for i := 10; i < 20; i++ {
		tr.N[i] = 0
	}
	eng := testEngine(t, 2, model.PerSecond)
	sched, err := Solve(eng, tr, Policy{Boot: 120})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Misses != 0 {
		t.Fatalf("feasible trace missed %d steps", sched.Misses)
	}
	// Under per-second billing, holding capacity through a zero-demand
	// step only costs money: the optimum must release everything.
	for i := 10; i < 20; i++ {
		st := sched.Steps[i]
		if !st.Config.IsEmpty() || st.Cost != 0 {
			t.Fatalf("step %d of the zero-demand valley holds %v at %v", i, st.Config, st.Cost)
		}
	}
}

func TestSolveMarksInfeasibleSpike(t *testing.T) {
	tr := testTrace(20)
	tr.N[7] = 4_000_000 // beyond the truncated space's per-step capacity
	eng := testEngine(t, 2, model.PerSecond)
	sched, err := Solve(eng, tr, Policy{Boot: 120})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Misses == 0 || !sched.Steps[7].Missed {
		t.Fatalf("impossible spike not marked missed: misses=%d step7=%+v", sched.Misses, sched.Steps[7])
	}
	if sched.Steps[7].Slack != 0 {
		t.Fatalf("missed step reports slack %v", sched.Steps[7].Slack)
	}
	for i, st := range sched.Steps {
		if i != 7 && st.Missed {
			t.Fatalf("step %d spuriously missed", i)
		}
	}
}

func TestSolveRejectsBrokenInputs(t *testing.T) {
	eng := testEngine(t, 2, model.PerSecond)
	tr := testTrace(10)

	bad := tr
	bad.Version = 2
	if _, err := Solve(eng, bad, Policy{}); err == nil {
		t.Fatal("wrong trace version accepted")
	}
	if _, err := Solve(eng, tr, Policy{Boot: tr.Step + 1}); err == nil {
		t.Fatal("boot longer than a step accepted")
	}
	if _, err := Solve(eng, tr, Policy{Quantum: -1}); err == nil {
		t.Fatal("negative quantum accepted")
	}
	outside := tr
	outside.N = append([]float64(nil), tr.N...)
	outside.N[3] = 1 // below galaxy's MinN
	_, err := Solve(eng, outside, Policy{})
	if err == nil || !strings.Contains(err.Error(), "step 3") {
		t.Fatalf("domain violation not attributed to its step: %v", err)
	}
}

func TestReactiveDrainsIdleTail(t *testing.T) {
	tr := testTrace(30)
	for i := 15; i < 30; i++ {
		tr.N[i] = 0
	}
	eng := testEngine(t, 2, model.PerSecond)
	base, err := Reactive(eng, tr, PolicyFor(eng), autoscale.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	head := base.Steps[14].Config.TotalNodes()
	tail := base.Steps[29].Config.TotalNodes()
	if tail >= head {
		t.Fatalf("reactive did not drain the idle tail: %d nodes at t=14, %d at t=29", head, tail)
	}
}

// TestGoldenDiurnalPaper pins the solved golden trace on the full
// paper engine: the regression anchor for the schedule subsystem and
// the quantitative savings-vs-reactive claim.
func TestGoldenDiurnalPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale index build")
	}
	tr := demand.GoldenDiurnal()
	if got, want := tr.Hash(), "7821097efc7c1a29"; got != want {
		t.Fatalf("golden trace hash %s, want %s", got, want)
	}
	if got, want := tr.Steps(), 1000; got != want {
		t.Fatalf("golden trace has %d steps, want %d", got, want)
	}

	for _, tc := range []struct {
		billing     model.Billing
		cost, rCost string // %.6f-rendered USD
		switches    int
		payout      string
	}{
		{model.PerSecond, "223.950083", "312.376583", 585, "0.000000"},
		{model.PerHour, "250.806083", "330.393167", 220, "4.305333"},
	} {
		eng := core.NewPaperEngine(galaxy.App{})
		eng.SetBilling(tc.billing)
		pol := PolicyFor(eng)
		sched, err := Solve(eng, tr, pol)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Reactive(eng, tr, pol, autoscale.DefaultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%.6f", float64(sched.TotalCost)); got != tc.cost {
			t.Errorf("%v: solved cost %s, want %s", tc.billing, got, tc.cost)
		}
		if got := fmt.Sprintf("%.6f", float64(base.TotalCost)); got != tc.rCost {
			t.Errorf("%v: reactive cost %s, want %s", tc.billing, got, tc.rCost)
		}
		if got := fmt.Sprintf("%.6f", float64(sched.ReleasePayout)); got != tc.payout {
			t.Errorf("%v: release payout %s, want %s", tc.billing, got, tc.payout)
		}
		if sched.Switches != tc.switches {
			t.Errorf("%v: %d switches, want %d", tc.billing, sched.Switches, tc.switches)
		}
		if sched.Misses != 0 || base.Misses != 0 {
			t.Errorf("%v: misses solved=%d reactive=%d, want 0", tc.billing, sched.Misses, base.Misses)
		}
		if sched.Candidates != 118 {
			t.Errorf("%v: %d candidates, want the 118-step paper staircase", tc.billing, sched.Candidates)
		}
		if sched.TotalCost > base.TotalCost {
			t.Errorf("%v: solved schedule costs more than reactive: %v > %v", tc.billing, sched.TotalCost, base.TotalCost)
		}
		if pct := SavingsPct(sched.TotalCost, base.TotalCost); pct < 20 {
			t.Errorf("%v: savings %.2f%%, want the pinned >20%% gap", tc.billing, pct)
		}
	}
}

func TestSavingsPct(t *testing.T) {
	if got := SavingsPct(75, 100); got != 25 {
		t.Fatalf("SavingsPct(75, 100) = %v, want 25", got)
	}
	if got := SavingsPct(10, 0); got != 0 {
		t.Fatalf("SavingsPct with free baseline = %v, want 0", got)
	}
}
