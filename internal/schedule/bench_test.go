package schedule

import (
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/core"
	"repro/internal/demand"
)

// BenchmarkScheduleSolveDiurnal1k times the DP over the 1,000-step
// golden diurnal trace with the frontier index pre-built — the number
// cmd/celia-bench compares against 1,000 independent exhaustive scans.
func BenchmarkScheduleSolveDiurnal1k(b *testing.B) {
	eng := core.NewPaperEngine(galaxy.App{})
	if _, ok := eng.FrontierCandidates(); !ok {
		b.Fatal("paper catalog did not compress into a frontier index")
	}
	tr := demand.GoldenDiurnal()
	pol := PolicyFor(eng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := Solve(eng, tr, pol)
		if err != nil {
			b.Fatal(err)
		}
		if sched.Misses != 0 {
			b.Fatalf("golden trace missed %d steps", sched.Misses)
		}
	}
}
