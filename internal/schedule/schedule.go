// Package schedule solves for a cost-optimal scaling schedule over a
// demand trace — the continuous-elasticity setting the paper's
// one-shot (deadline, budget) queries sit inside. Each timestep of a
// demand.Trace must finish its problem within the step; the solver
// picks one configuration per step so that total spend is minimal
// among schedules with the fewest deadline misses.
//
// The search has two layers. Within a step, domination in the
// (capacity, unit-cost) plane is billing- and demand-invariant, so the
// candidate configurations for every step come from one shared
// core.FrontierIndex staircase (built once per engine, reused across
// all steps, all requests, and both certified billing policies) plus
// the explicit all-idle configuration. Across steps, switching is not free — newly
// added nodes boot before contributing, and under per-hour billing a
// released node still owes the remainder of its started hour — so a
// dynamic program over (step, candidate) charges those switching costs
// and finds the globally cheapest path rather than thrashing between
// adjacent configurations the way a per-step greedy would.
//
// The DP objective is lexicographic: first minimize missed steps, then
// dollars. All transitions stay admissible even when a step's demand
// exceeds every candidate's capacity (the step is simply marked
// missed), so an infeasible spike degrades the answer instead of
// voiding it. With ascending candidate iteration and strictly-better
// comparisons the recurrence is deterministic: a fixed trace and
// policy reproduce the schedule bit for bit.
package schedule

import (
	"context"
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/units"
)

// DefaultBoot mirrors autoscale.DefaultPolicy's boot delay: the time a
// newly added node takes to start contributing capacity.
const DefaultBoot units.Seconds = 120

// Policy carries the switching-cost model.
type Policy struct {
	// Boot is the delay before capacity added at a step boundary
	// contributes work within that step.
	Boot units.Seconds
	// Quantum is the billing quantum released nodes were committed to:
	// a node removed mid-quantum still owes the remainder of its
	// started quantum (2017-era per-hour billing). Zero means
	// per-second billing — release is free.
	Quantum units.Seconds
}

// PolicyFor derives the policy matching an engine's billing model:
// default boot, and a one-hour quantum iff the engine bills per hour.
func PolicyFor(eng *core.Engine) Policy {
	pol := Policy{Boot: DefaultBoot}
	if eng.Billing() == model.PerHour {
		pol.Quantum = units.FromHours(1)
	}
	return pol
}

// Validate rejects policies that are broken relative to a step length.
func (pol Policy) Validate(step units.Seconds) error {
	if pol.Boot < 0 || pol.Boot > step {
		return fmt.Errorf("schedule: boot %v outside [0, step %v]", pol.Boot, step)
	}
	if pol.Quantum < 0 || pol.Quantum.IsInf() {
		return fmt.Errorf("schedule: billing quantum %v, want finite and >= 0", pol.Quantum)
	}
	return nil
}

// Step is one solved timestep.
type Step struct {
	// Config is the configuration held for the step.
	Config config.Tuple
	// Demand is the step's modeled instruction demand (0 = idle step).
	Demand units.Instructions
	// Busy is the boot-adjusted time the step's problem takes,
	// capped at the step length; Slack is the remainder.
	Busy  units.Seconds
	Slack units.Seconds
	// Cost is what the step adds to the bill: holding Config for the
	// full step, plus the released-quantum carryover owed for nodes
	// removed at the step's entry boundary.
	Cost units.USD
	// DeltaNodes is the net node-count change at the entry boundary.
	DeltaNodes int
	// Missed marks a step whose demand exceeds the boot-adjusted work
	// the chosen configuration can complete within the step.
	Missed bool
}

// Schedule is a solved (or simulated) scaling schedule.
type Schedule struct {
	StepLen units.Seconds
	Policy  Policy
	Steps   []Step
	// TotalCost is the sum of step costs plus ReleasePayout.
	TotalCost units.USD
	// ReleasePayout is the carryover owed for tearing the final
	// configuration down at the end of the horizon.
	ReleasePayout units.USD
	// Switches counts boundaries whose configuration differs from the
	// step before (starting from idle before step 0).
	Switches int
	// Misses counts steps whose demand could not be met in time.
	Misses int
	// Candidates is the number of frontier-staircase candidates the
	// solver considered per step (diagnostic; 0 for the baseline).
	Candidates int
}

// solveCtx is the shared precomputation for one solve: candidates with
// per-type counts, and pairwise transition tables.
type solveCtx struct {
	stepLen units.Seconds
	pol     Policy

	u  []units.Rate       // per candidate
	cu []units.USDPerHour // per candidate
	tp []config.Tuple     // per candidate

	// addedCap[i*m+j]: capacity added moving i→j (booting nodes);
	// removedCu[i*m+j]: unit cost of nodes released moving i→j.
	addedCap  []units.Rate
	removedCu []units.USDPerHour
}

// Solve computes the cost-optimal schedule for the trace on this
// engine, without external cancellation (offline callers: the CLI and
// tests). The serving path uses SolveContext.
func Solve(eng *core.Engine, tr demand.Trace, pol Policy) (Schedule, error) {
	return SolveContext(context.Background(), eng, tr, pol)
}

// SolveContext is Solve under a request context. It forces the
// engine's frontier index to exist (the build is billing-independent)
// and errors if the catalog does not compress into an index;
// demand-model or domain errors for any step surface with the step
// index. The DP polls ctx between timesteps (each step is an O(m²)
// sweep over candidate pairs), so a canceled request stops paying for
// the horizon it no longer wants.
func SolveContext(ctx context.Context, eng *core.Engine, tr demand.Trace, pol Policy) (Schedule, error) {
	if err := tr.Validate(); err != nil {
		return Schedule{}, err
	}
	if err := pol.Validate(tr.Step); err != nil {
		return Schedule{}, err
	}
	cands, ok := eng.FrontierCandidates()
	if !ok {
		return Schedule{}, fmt.Errorf("schedule: engine's catalog did not compress into a frontier index; the horizon solver needs one")
	}
	demands, err := traceDemands(eng, tr)
	if err != nil {
		return Schedule{}, err
	}

	sc := newSolveCtx(eng, cands, tr.Step, pol)
	m := len(sc.u)
	n := len(demands)
	idle := m - 1 // the appended all-idle candidate

	// DP over (step, candidate): lexicographic (misses, cost). prev[i]
	// is the best value of any schedule for steps [0, t) ending in
	// candidate i; parent[t*m+j] reconstructs the argmin. Iterating i
	// ascending with strictly-better comparison pins ties to the
	// lowest candidate index — the determinism guarantee.
	const unreached = -1
	type val struct {
		miss int
		cost units.USD
	}
	better := func(a, b val) bool {
		if a.miss != b.miss {
			return a.miss < b.miss
		}
		return a.cost < b.cost
	}
	prev := make([]val, m)
	cur := make([]val, m)
	reach := make([]bool, m)
	parent := make([]int32, n*m)
	for i := range prev {
		prev[i] = val{miss: 0, cost: 0}
		reach[i] = i == idle // schedules start from idle
	}
	// The per-step accrual cu[j]·stepLen is invariant across timesteps;
	// computing it once per candidate keeps the O(n·m²) sweep free of
	// redundant float work without changing a single rounding (the same
	// Over call, just hoisted).
	accrues := make([]units.USD, m)
	for j := 0; j < m; j++ {
		accrues[j] = sc.cu[j].Over(sc.stepLen)
	}
	nextReach := make([]bool, m)
	for t := 0; t < n; t++ {
		if err := ctx.Err(); err != nil {
			return Schedule{}, err
		}
		boundary := units.Seconds(float64(t)) * sc.stepLen
		carrySec := sc.carrySeconds(boundary)
		for j := 0; j < m; j++ {
			accrue := accrues[j]
			bestI := int32(unreached)
			var best val
			for i := 0; i < m; i++ {
				if !reach[i] {
					continue
				}
				v := val{miss: prev[i].miss, cost: prev[i].cost + accrue}
				if carrySec > 0 {
					v.cost += sc.removedCu[i*m+j].Over(carrySec)
				}
				if sc.missed(i, j, demands[t]) {
					v.miss++
				}
				if bestI == unreached || better(v, best) {
					bestI, best = int32(i), v
				}
			}
			parent[t*m+j] = bestI
			cur[j] = best
			nextReach[j] = bestI != unreached
		}
		prev, cur = cur, prev
		reach, nextReach = nextReach, reach
	}

	// Horizon end: tearing the final configuration down owes its
	// released-quantum carryover too, so a plan that hoards capacity
	// cannot hide the bill past the last step.
	endCarry := sc.carrySeconds(units.Seconds(float64(n)) * sc.stepLen)
	last := unreached
	var lastVal val
	for j := 0; j < m; j++ {
		if !reach[j] {
			continue
		}
		v := val{miss: prev[j].miss, cost: prev[j].cost + sc.cu[j].Over(endCarry)}
		if last == unreached || better(v, lastVal) {
			last, lastVal = j, v
		}
	}
	if last == unreached {
		return Schedule{}, fmt.Errorf("schedule: no reachable terminal state (internal invariant broken)")
	}

	// Reconstruct the chosen candidate per step.
	path := make([]int, n)
	for t, j := n-1, last; t >= 0; t-- {
		path[t] = j
		j = int(parent[t*m+j])
	}
	sched := sc.replay(path, demands, idle)
	sched.Candidates = len(cands)
	return sched, nil
}

// newSolveCtx assembles candidates (frontier staircase + idle) and the
// pairwise transition tables.
func newSolveCtx(eng *core.Engine, cands []core.Candidate, stepLen units.Seconds, pol Policy) *solveCtx {
	w, nodeCost := eng.Capacities().NodeArrays()
	m := len(cands) + 1
	ctx := &solveCtx{
		stepLen: stepLen,
		pol:     pol,
		u:       make([]units.Rate, m),
		cu:      make([]units.USDPerHour, m),
		tp:      make([]config.Tuple, m),
	}
	for i, c := range cands {
		ctx.u[i], ctx.cu[i], ctx.tp[i] = c.U, c.Cu, c.Config
	}
	// The final candidate is all-idle (zero tuple of the right arity):
	// valleys and zero-demand steps can release everything.
	ctx.tp[m-1] = config.Tuple{}
	if len(cands) > 0 {
		ctx.tp[m-1], _ = config.NewTuple(make([]int, cands[0].Config.Len()))
	}

	ctx.addedCap = make([]units.Rate, m*m)
	ctx.removedCu = make([]units.USDPerHour, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			var add units.Rate
			var rem units.USDPerHour
			a, b := ctx.tp[i], ctx.tp[j]
			for k := 0; k < b.Len() || k < a.Len(); k++ {
				ca, cb := 0, 0
				if k < a.Len() {
					ca = a.Count(k)
				}
				if k < b.Len() {
					cb = b.Count(k)
				}
				if cb > ca {
					add += units.Rate(cb-ca) * w[k]
				} else if ca > cb {
					rem += units.USDPerHour(ca-cb) * nodeCost[k]
				}
			}
			ctx.addedCap[i*m+j] = add
			ctx.removedCu[i*m+j] = rem
		}
	}
	return ctx
}

// traceDemands evaluates the engine's demand model per step. A zero
// problem size is an idle step (zero demand); everything else must lie
// in the model's fitted domain.
func traceDemands(eng *core.Engine, tr demand.Trace) ([]units.Instructions, error) {
	out := make([]units.Instructions, tr.Steps())
	for t := range out {
		if tr.N[t] == 0 {
			continue
		}
		d, err := eng.Demand(tr.Params(t))
		if err != nil {
			return nil, fmt.Errorf("schedule: step %d: %w", t, err)
		}
		out[t] = d
	}
	return out, nil
}

// carrySeconds is the time a node released at the given elapsed offset
// still owes: the remainder of its started billing quantum, with
// quantum boundaries aligned to the trace origin (exact for nodes held
// since a boundary; a conservative overcharge for nodes that booted
// mid-quantum). Zero under per-second billing.
func (ctx *solveCtx) carrySeconds(elapsed units.Seconds) units.Seconds {
	if ctx.pol.Quantum <= 0 {
		return 0
	}
	cycles := float64(elapsed / ctx.pol.Quantum)
	frac := cycles - math.Floor(cycles)
	if frac == 0 {
		return 0
	}
	return units.Seconds(1-frac) * ctx.pol.Quantum
}

// missed reports whether demand d cannot complete within the step when
// entering candidate j from candidate i: capacity added at the
// boundary boots for Policy.Boot before contributing.
func (ctx *solveCtx) missed(i, j int, d units.Instructions) bool {
	if d <= 0 {
		return false
	}
	effWork := ctx.u[j].Over(ctx.stepLen)
	if i != j {
		effWork -= ctx.addedCap[i*len(ctx.u)+j].Over(ctx.pol.Boot)
	}
	return d > effWork
}

// finishTime solves the boot-adjusted within-step completion time:
// capacity held from the previous step (uOld) runs during boot, the
// full capacity u afterwards. +Inf when the demand cannot complete.
func finishTime(d units.Instructions, uOld, u units.Rate, boot units.Seconds) units.Seconds {
	if d <= 0 {
		return 0
	}
	if u <= uOld || boot <= 0 {
		return units.Time(d, u)
	}
	if uOld > 0 && d <= uOld.Over(boot) {
		return units.Time(d, uOld)
	}
	return boot + units.Time(d-uOld.Over(boot), u)
}

// replay walks a candidate path and produces the full per-step
// accounting the DP value function summarizes.
func (ctx *solveCtx) replay(path []int, demands []units.Instructions, idle int) Schedule {
	m := len(ctx.u)
	sched := Schedule{
		StepLen: ctx.stepLen,
		Policy:  ctx.pol,
		Steps:   make([]Step, len(path)),
	}
	prev := idle
	for t, j := range path {
		boundary := units.Seconds(float64(t)) * ctx.stepLen
		cost := ctx.cu[j].Over(ctx.stepLen)
		if carry := ctx.carrySeconds(boundary); carry > 0 {
			cost += ctx.removedCu[prev*m+j].Over(carry)
		}
		uOld := ctx.u[j]
		if prev != j {
			uOld = ctx.u[j] - ctx.addedCap[prev*m+j]
		}
		// The miss flag comes from the same predicate the DP charged, so
		// Schedule.Misses always equals the optimized miss count; busy is
		// the boot-adjusted completion time capped at the step.
		missed := ctx.missed(prev, j, demands[t])
		busy := finishTime(demands[t], uOld, ctx.u[j], ctx.pol.Boot)
		if busy > ctx.stepLen {
			busy = ctx.stepLen
		}
		st := Step{
			Config:     ctx.tp[j],
			Demand:     demands[t],
			Busy:       busy,
			Slack:      ctx.stepLen - busy,
			Cost:       cost,
			DeltaNodes: ctx.tp[j].TotalNodes() - ctx.tp[prev].TotalNodes(),
			Missed:     missed,
		}
		if j != prev {
			sched.Switches++
		}
		if missed {
			sched.Misses++
		}
		sched.TotalCost += cost
		sched.Steps[t] = st
		prev = j
	}
	sched.ReleasePayout = ctx.cu[prev].Over(ctx.carrySeconds(units.Seconds(float64(len(path))) * ctx.stepLen))
	sched.TotalCost += sched.ReleasePayout
	return sched
}

// SavingsPct reports how much cheaper `solved` is than `baseline`, in
// percent of the baseline. Zero when the baseline is free or negative.
func SavingsPct(solved, baseline units.USD) float64 {
	if baseline <= 0 {
		return 0
	}
	return (1 - float64(solved/baseline)) * 100
}
