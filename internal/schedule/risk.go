// Deadline-risk over a schedule: the per-step hook into the existing
// faults/risk Monte-Carlo, so a solved schedule can report not just
// analytic slack but the probability each step blows its deadline
// under instance failures.
package schedule

import (
	"context"
	"fmt"

	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/detrand"
	"repro/internal/faults"
	"repro/internal/faults/risk"
	"repro/internal/workload"
)

// MaxRiskSteps caps how many steps one timeline may sample: each
// sampled step is a full Monte-Carlo estimate, so an uncapped
// 100k-step trace would be hours of simulation inside one request.
const MaxRiskSteps = 256

// RiskOptions configure a schedule's risk timeline.
type RiskOptions struct {
	// HazardPerHour is the per-instance-hour failure rate λ.
	HazardPerHour float64
	// Trials per sampled step; 0 means risk.DefaultTrials.
	Trials int
	// Every samples each Every-th step (1 = every step); <=0 means 1.
	// Idle steps (no demand or no nodes) are never sampled.
	Every int
	// Seed drives the Monte-Carlo; step t's estimate is seeded with
	// detrand.Mix(Seed, t), so the timeline replays exactly and
	// sampling density does not shift the per-step streams.
	Seed uint64
}

// RiskPoint is one sampled step of a risk timeline.
type RiskPoint struct {
	T               int
	MissProbability float64
	Trials          int
}

// RiskTimeline runs the faults/risk estimator over the sampled steps
// of a solved schedule: step t's problem (n_t, a) on step t's
// configuration against the step length as deadline. The schedule must
// come from the same trace.
func RiskTimeline(app workload.App, eng *core.Engine, tr demand.Trace, sched Schedule, opts RiskOptions) ([]RiskPoint, error) {
	return RiskTimelineContext(context.Background(), app, eng, tr, sched, opts)
}

// RiskTimelineContext is RiskTimeline under a request context, polling
// before each sampled step and threading ctx into each estimate —
// every sample is a full Monte-Carlo draw, so cancellation must reach
// the trial dispatch inside it, not just the loop between samples.
func RiskTimelineContext(ctx context.Context, app workload.App, eng *core.Engine, tr demand.Trace, sched Schedule, opts RiskOptions) ([]RiskPoint, error) {
	if len(sched.Steps) != tr.Steps() {
		return nil, fmt.Errorf("schedule: risk timeline: schedule has %d steps, trace %d", len(sched.Steps), tr.Steps())
	}
	every := opts.Every
	if every <= 0 {
		every = 1
	}
	sampled := 0
	for t := 0; t < tr.Steps(); t += every {
		if sched.Steps[t].Demand > 0 && !sched.Steps[t].Config.IsEmpty() {
			sampled++
		}
	}
	if sampled > MaxRiskSteps {
		return nil, fmt.Errorf("schedule: risk timeline would sample %d steps, cap is %d; raise RiskOptions.Every", sampled, MaxRiskSteps)
	}
	cat := eng.Capacities().Catalog()
	points := make([]RiskPoint, 0, sampled)
	for t := 0; t < tr.Steps(); t += every {
		st := sched.Steps[t]
		if st.Demand <= 0 || st.Config.IsEmpty() {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		est, err := risk.EstimateContext(ctx, app, tr.Params(t), st.Config, cat, risk.Options{
			Trials:        opts.Trials,
			Seed:          detrand.Mix(opts.Seed, t),
			HazardPerHour: opts.HazardPerHour,
			Deadline:      tr.Step,
			Sim:           cloudsim.DefaultOptions(),
			Recovery:      faults.DefaultRecovery(),
		})
		if err != nil {
			return nil, fmt.Errorf("schedule: risk timeline step %d: %w", t, err)
		}
		points = append(points, RiskPoint{T: t, MissProbability: est.MissProb, Trials: est.Trials})
	}
	return points, nil
}
