// The reactive comparison baseline: internal/autoscale's policy loop
// replayed over a demand trace under the same cost accounting as the
// DP solver, so "savings versus reactive scaling" is an
// apples-to-apples subtraction rather than a cross-model guess.
package schedule

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/autoscale"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/units"
)

// Reactive simulates autoscale-style reactive scaling over the trace:
// at each step boundary it sees the step's demand, grows one node at a
// time in cost-efficiency order until the projected (boot-adjusted)
// finish fits within Headroom of the step, or sheds one least-efficient
// node when the projection is comfortably below ShrinkBelow. Only the
// reactive policy's Headroom and ShrinkBelow are consulted — its Epoch
// is the trace's step and its Boot is the schedule policy's, so solver
// and baseline price the identical switching-cost model (full-step
// accrual, boot delay, released-quantum carryover).
func Reactive(eng *core.Engine, tr demand.Trace, pol Policy, rp autoscale.Policy) (Schedule, error) {
	return ReactiveContext(context.Background(), eng, tr, pol, rp)
}

// ReactiveContext is Reactive under a request context, polling between
// steps like SolveContext so the baseline half of a /v1/schedule
// response cancels as promptly as the DP half.
func ReactiveContext(ctx context.Context, eng *core.Engine, tr demand.Trace, pol Policy, rp autoscale.Policy) (Schedule, error) {
	if err := tr.Validate(); err != nil {
		return Schedule{}, err
	}
	if err := pol.Validate(tr.Step); err != nil {
		return Schedule{}, err
	}
	rp.Epoch, rp.Boot = tr.Step, pol.Boot
	if rp.MaxEpochs == 0 {
		rp.MaxEpochs = tr.Steps()
	}
	if err := rp.Validate(); err != nil {
		return Schedule{}, err
	}
	demands, err := traceDemands(eng, tr)
	if err != nil {
		return Schedule{}, err
	}

	w, nodeCost := eng.Capacities().NodeArrays()
	space := eng.Space()
	m := len(w)
	// Efficiency order for scale decisions, as in autoscale.Simulate.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := units.PerDollar(w[order[a]], nodeCost[order[a]]), units.PerDollar(w[order[b]], nodeCost[order[b]])
		if ea != eb {
			return ea > eb
		}
		return order[a] < order[b]
	})

	counts := make([]int, m)
	capacityOf := func() units.Rate {
		var u units.Rate
		for i, c := range counts {
			u += units.Rate(c) * w[i]
		}
		return u
	}
	unitCostOf := func() units.USDPerHour {
		var cu units.USDPerHour
		for i, c := range counts {
			cu += units.USDPerHour(c) * nodeCost[i]
		}
		return cu
	}

	sc := &solveCtx{stepLen: tr.Step, pol: pol}
	sched := Schedule{
		StepLen: tr.Step,
		Policy:  pol,
		Steps:   make([]Step, len(demands)),
	}
	for t, d := range demands {
		if err := ctx.Err(); err != nil {
			return Schedule{}, err
		}
		uOld := capacityOf()
		startCounts := append([]int(nil), counts...)
		if d > 0 {
			for finishTime(d, uOld, capacityOf(), pol.Boot) > units.Seconds(rp.Headroom)*tr.Step {
				grew := false
				for _, i := range order {
					if counts[i] < space.Max(i) {
						counts[i]++
						grew = true
						break
					}
				}
				if !grew {
					break // cluster maxed out; run what we have
				}
			}
		}
		if grown := capacityOf() - uOld; grown <= 0 && rp.ShrinkBelow > 0 {
			// Shrink one least-efficient node if comfortably early (or
			// idle): the slow drain reactive scaling is known for.
			for k := len(order) - 1; k >= 0; k-- {
				i := order[k]
				if counts[i] == 0 {
					continue
				}
				uWithout := capacityOf() - w[i]
				if d == 0 || (uWithout > 0 && units.Time(d, uWithout) < units.Seconds(rp.ShrinkBelow)*tr.Step) {
					counts[i]--
				}
				break
			}
		}

		tuple, err := config.NewTuple(counts)
		if err != nil {
			return Schedule{}, fmt.Errorf("schedule: reactive step %d: %w", t, err)
		}
		u, cu := capacityOf(), unitCostOf()
		addedCap := u - uOld
		if addedCap < 0 {
			addedCap = 0
		}
		var removedCu units.USDPerHour
		for i := range counts {
			if startCounts[i] > counts[i] {
				removedCu += units.USDPerHour(startCounts[i]-counts[i]) * nodeCost[i]
			}
		}

		boundary := units.Seconds(float64(t)) * tr.Step
		cost := cu.Over(tr.Step)
		if carry := sc.carrySeconds(boundary); carry > 0 {
			cost += removedCu.Over(carry)
		}
		missed := d > 0 && d > u.Over(tr.Step)-addedCap.Over(pol.Boot)
		busy := finishTime(d, u-addedCap, u, pol.Boot)
		if busy > tr.Step {
			busy = tr.Step
		}
		st := Step{
			Config:     tuple,
			Demand:     d,
			Busy:       busy,
			Slack:      tr.Step - busy,
			Cost:       cost,
			DeltaNodes: tuple.TotalNodes() - sum(startCounts),
			Missed:     missed,
		}
		if st.DeltaNodes != 0 {
			sched.Switches++
		}
		if missed {
			sched.Misses++
		}
		sched.TotalCost += cost
		sched.Steps[t] = st
	}
	sched.ReleasePayout = unitCostOf().Over(sc.carrySeconds(units.Seconds(float64(len(demands))) * tr.Step))
	sched.TotalCost += sched.ReleasePayout
	return sched, nil
}

func sum(counts []int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}
