package pareto

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{1, 1, 0}, Point{2, 2, 0}, true},
		{Point{1, 2, 0}, Point{2, 1, 0}, false},
		{Point{1, 1, 0}, Point{1, 1, 0}, false}, // equal: no strict improvement
		{Point{1, 2, 0}, Point{1, 3, 0}, true},
		{Point{2, 2, 0}, Point{1, 1, 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Errorf("%v dominates %v = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestFrontier2DSimple(t *testing.T) {
	pts := []Point{
		{10, 1, 1}, {9, 2, 2}, {8, 3, 3}, // frontier staircase
		{10, 2, 4}, {9, 3, 5}, {10, 10, 6}, // dominated
	}
	f := Frontier2D(pts)
	if len(f) != 3 {
		t.Fatalf("frontier size = %d (%v), want 3", len(f), f)
	}
	ids := map[uint64]bool{}
	for _, p := range f {
		ids[p.ID] = true
	}
	for _, want := range []uint64{1, 2, 3} {
		if !ids[want] {
			t.Errorf("frontier missing point %d", want)
		}
	}
	// Ascending X.
	if !sort.SliceIsSorted(f, func(i, j int) bool { return f[i].X < f[j].X }) {
		t.Fatalf("frontier not sorted by X: %v", f)
	}
}

func TestFrontier2DEmptyAndSingle(t *testing.T) {
	if got := Frontier2D(nil); got != nil {
		t.Fatalf("Frontier2D(nil) = %v", got)
	}
	f := Frontier2D([]Point{{5, 5, 1}})
	if len(f) != 1 || f[0].ID != 1 {
		t.Fatalf("single-point frontier = %v", f)
	}
}

func TestFrontier2DDuplicates(t *testing.T) {
	f := Frontier2D([]Point{{1, 1, 1}, {1, 1, 2}, {1, 1, 3}})
	if len(f) != 1 {
		t.Fatalf("duplicate points frontier = %v, want 1 survivor", f)
	}
}

func TestFrontier2DEqualX(t *testing.T) {
	f := Frontier2D([]Point{{1, 5, 1}, {1, 3, 2}, {2, 2, 3}})
	// (1,5) is dominated by (1,3).
	if len(f) != 2 {
		t.Fatalf("frontier = %v, want 2 points", f)
	}
	for _, p := range f {
		if p.ID == 1 {
			t.Fatal("dominated equal-X point survived")
		}
	}
}

func bruteFrontier(pts []Point) map[uint64]bool {
	out := map[uint64]bool{}
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Dominates(p) {
				dominated = true
				break
			}
			// Duplicates: keep the first.
			if j < i && q.X == p.X && q.Y == p.Y {
				dominated = true
				break
			}
		}
		if !dominated {
			out[p.ID] = true
		}
	}
	return out
}

func TestFrontier2DAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{float64(rng.Intn(10)), float64(rng.Intn(10)), uint64(i)}
		}
		want := bruteFrontier(pts)
		got := Frontier2D(pts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: frontier size %d, brute force %d\npts=%v\ngot=%v",
				trial, len(got), len(want), pts, got)
		}
		for _, p := range got {
			if !want[p.ID] {
				t.Fatalf("trial %d: point %v not in brute-force frontier", trial, p)
			}
		}
	}
}

func TestStream2DMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100, uint64(i)}
		}
		var s Stream2D
		for _, p := range pts {
			s.Add(p)
		}
		want := Frontier2D(pts)
		got := s.Frontier()
		if len(got) != len(want) {
			t.Fatalf("trial %d: stream frontier %d points, batch %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].X != want[i].X || got[i].Y != want[i].Y {
				t.Fatalf("trial %d: stream[%d] = %v, batch %v", trial, i, got[i], want[i])
			}
		}
		if s.Seen() != uint64(n) {
			t.Fatalf("Seen = %d, want %d", s.Seen(), n)
		}
	}
}

func TestStream2DMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{rng.Float64(), rng.Float64(), uint64(i)}
	}
	var a, b, whole Stream2D
	for i, p := range pts {
		if i%2 == 0 {
			a.Add(p)
		} else {
			b.Add(p)
		}
		whole.Add(p)
	}
	a.Merge(&b)
	got, want := a.Frontier(), whole.Frontier()
	if len(got) != len(want) {
		t.Fatalf("merged frontier %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if a.Seen() != 500 {
		t.Fatalf("merged Seen = %d, want 500", a.Seen())
	}
}

func TestStream2DStaircaseInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	var s Stream2D
	for i := 0; i < 2000; i++ {
		s.Add(Point{rng.Float64() * 10, rng.Float64() * 10, uint64(i)})
		f := s.frontier
		for j := 1; j < len(f); j++ {
			if !(f[j].X > f[j-1].X && f[j].Y < f[j-1].Y) {
				t.Fatalf("staircase violated after %d adds: %v then %v", i+1, f[j-1], f[j])
			}
		}
	}
}

func TestEpsilonFrontierCoarsens(t *testing.T) {
	// A dense exact frontier should shrink under a coarse epsilon.
	var pts []Point
	for i := 0; i < 100; i++ {
		x := float64(i)
		pts = append(pts, Point{x, 100 - x, uint64(i)})
	}
	exact := Frontier2D(pts)
	if len(exact) != 100 {
		t.Fatalf("exact frontier = %d, want 100", len(exact))
	}
	eps := EpsilonFrontier2D(pts, 10, 10)
	if len(eps) >= len(exact) || len(eps) < 5 {
		t.Fatalf("epsilon frontier = %d points, want a ~10-point coarsening", len(eps))
	}
}

func TestEpsilonFrontierNoFalseDominance(t *testing.T) {
	// Every ε-frontier point must be exactly nondominated among the
	// ε-frontier itself.
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 50, rng.Float64() * 50, uint64(i)}
	}
	eps := EpsilonFrontier2D(pts, 5, 5)
	for i, p := range eps {
		for j, q := range eps {
			if i != j && q.Dominates(p) {
				t.Fatalf("ε-frontier point %v dominated by %v", p, q)
			}
		}
	}
}

func TestEpsilonFrontierPanicsOnBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for eps < 0")
		}
	}()
	EpsilonFrontier2D([]Point{{1, 1, 0}}, -1, 1)
}

func TestEpsilonFrontierBothZeroIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 50, rng.Float64() * 50, uint64(i)}
	}
	got := EpsilonFrontier2D(pts, 0, 0)
	if !reflect.DeepEqual(got, Frontier2D(pts)) {
		t.Fatalf("zero-ε frontier diverges from the exact frontier:\n%v\nvs\n%v",
			got, Frontier2D(pts))
	}
}

func TestEpsilonFrontierSingleAxisX(t *testing.T) {
	// ε on X only: (1.0,10) and (1.9,9) land in X-box 1 with exact Y,
	// so box domination removes the costlier of the two while the Y
	// axis stays exact.
	pts := []Point{{1.0, 10, 0}, {1.9, 9, 1}, {2.0, 8, 2}, {3.0, 7, 3}}
	if exact := Frontier2D(pts); len(exact) != 4 {
		t.Fatalf("exact frontier = %d points, want 4", len(exact))
	}
	got := EpsilonFrontier2D(pts, 1, 0)
	want := []Point{{1.9, 9, 1}, {2.0, 8, 2}, {3.0, 7, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("X-only ε frontier = %v, want %v", got, want)
	}
}

func TestEpsilonFrontierSingleAxisY(t *testing.T) {
	// ε on Y only: (1.0,9.9) and (1.5,9.1) share Y-box 9, so the later
	// (slower) of the two is box-dominated away despite being exactly
	// nondominated.
	pts := []Point{{1.0, 9.9, 0}, {1.5, 9.1, 1}, {2.0, 7.0, 2}}
	if exact := Frontier2D(pts); len(exact) != 3 {
		t.Fatalf("exact frontier = %d points, want 3", len(exact))
	}
	got := EpsilonFrontier2D(pts, 0, 1)
	want := []Point{{1.0, 9.9, 0}, {2.0, 7.0, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Y-only ε frontier = %v, want %v", got, want)
	}
}

func TestEpsilonFrontierEmpty(t *testing.T) {
	if got := EpsilonFrontier2D(nil, 1, 1); got != nil {
		t.Fatalf("EpsilonFrontier2D(nil) = %v", got)
	}
}

func TestDominatesKD(t *testing.T) {
	if !DominatesKD([]float64{1, 2, 3}, []float64{1, 2, 4}) {
		t.Fatal("weakly-better vector with one strict improvement should dominate")
	}
	if DominatesKD([]float64{1, 2, 3}, []float64{1, 2, 3}) {
		t.Fatal("equal vectors should not dominate")
	}
	if DominatesKD([]float64{1, 5}, []float64{2, 4}) {
		t.Fatal("incomparable vectors should not dominate")
	}
}

func TestFrontierKDMatches2D(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := make([]Point, 80)
	objs := make([][]float64, 80)
	for i := range pts {
		pts[i] = Point{float64(rng.Intn(12)), float64(rng.Intn(12)), uint64(i)}
		objs[i] = []float64{pts[i].X, pts[i].Y}
	}
	want := bruteFrontier(pts)
	got := FrontierKD(objs)
	if len(got) != len(want) {
		t.Fatalf("FrontierKD size = %d, want %d", len(got), len(want))
	}
	for _, idx := range got {
		if !want[uint64(idx)] {
			t.Fatalf("FrontierKD kept dominated index %d", idx)
		}
	}
}

// Property: the streaming frontier is always mutually nondominated and
// contains the global minimum of each objective.
func TestStreamNondominationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Stream2D
		minX, minY := Point{1 << 30, 1 << 30, 0}, Point{1 << 30, 1 << 30, 0}
		for i := 0; i+1 < len(raw); i += 2 {
			p := Point{float64(raw[i] % 100), float64(raw[i+1] % 100), uint64(i)}
			s.Add(p)
			if p.X < minX.X || (p.X == minX.X && p.Y < minX.Y) {
				minX = p
			}
			if p.Y < minY.Y || (p.Y == minY.Y && p.X < minY.X) {
				minY = p
			}
		}
		fr := s.Frontier()
		if len(fr) == 0 {
			return false
		}
		for i := range fr {
			for j := range fr {
				if i != j && fr[i].Dominates(fr[j]) {
					return false
				}
			}
		}
		// Extremes must be present.
		if fr[0].X != minX.X || fr[len(fr)-1].Y != minY.Y {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
