// Package pareto implements the nondomination filters CELIA uses to
// extract cost-time optimal configurations from the feasible set. The
// paper passes its configuration list through the ε-nondomination
// sorting routine of Woodruff and Herman's pareto.py [27]; this package
// ports those semantics for the two-objective (time, cost) case, adds
// an exact 2-D frontier, a streaming 2-D frontier that never stores the
// full feasible set (the paper's feasible sets run to millions of
// points), and a general k-objective filter.
//
// All objectives are minimized.
package pareto

import (
	"math"
	"sort"
)

// Point is one candidate in two-objective space, with an opaque ID
// (CELIA stores the configuration index).
type Point struct {
	X, Y float64
	ID   uint64
}

// Dominates reports whether p dominates q under minimization: no worse
// in both objectives and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	return p.X <= q.X && p.Y <= q.Y && (p.X < q.X || p.Y < q.Y)
}

// Frontier2D returns the exact Pareto frontier of pts, sorted by
// ascending X. Duplicate objective vectors keep their first occurrence.
// The input is not modified.
func Frontier2D(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	out := sorted[:0]
	bestY := math.Inf(1)
	lastX := math.Inf(-1)
	for _, p := range sorted {
		if p.Y < bestY {
			// Equal-X points are sorted by Y, so only the first
			// (lowest-Y) survives for each X.
			//lint:allow floateq exact dedup of equal-X points produced by one computation; no cross-run drift possible
			if p.X == lastX && len(out) > 0 && out[len(out)-1].X == p.X {
				continue
			}
			out = append(out, p)
			bestY = p.Y
			lastX = p.X
		}
	}
	return append([]Point(nil), out...)
}

// EpsilonFrontier2D applies pareto.py's ε-nondomination sort: the
// objective space is gridded into ε-boxes; a box dominates another box
// exactly when its coordinates dominate, and within a surviving box the
// point nearest the box's lower-left corner is kept.
//
// Each ε is per-axis: a zero ε leaves that axis ungridded (box
// coordinate = exact objective value, contributing nothing to the
// corner distance), so callers can coarsen one objective while staying
// exact on the other. Both zero degrades to the exact frontier; a
// negative ε panics.
func EpsilonFrontier2D(pts []Point, epsX, epsY float64) []Point {
	if len(pts) == 0 {
		return nil
	}
	if epsX < 0 || epsY < 0 {
		panic("pareto: epsilon values must be non-negative")
	}
	if epsX == 0 && epsY == 0 {
		return Frontier2D(pts)
	}
	// Box coordinates are kept as floats so an ungridded axis can use
	// the raw objective value; a gridded axis uses whole box numbers,
	// so the two never mix on one axis and comparisons stay exact.
	box := func(v, eps float64) (coord, dist float64) {
		if eps == 0 {
			return v, 0
		}
		b := math.Floor(v / eps)
		return b, v - b*eps
	}
	type boxed struct {
		bx, by float64
		p      Point
		dist   float64 // squared distance to box corner
	}
	best := make(map[[2]float64]boxed)
	for _, p := range pts {
		bx, dx := box(p.X, epsX)
		by, dy := box(p.Y, epsY)
		b := boxed{bx, by, p, dx*dx + dy*dy}
		key := [2]float64{bx, by}
		if cur, ok := best[key]; !ok || b.dist < cur.dist {
			best[key] = b
		}
	}
	boxes := make([]boxed, 0, len(best))
	for _, b := range best {
		//lint:allow nodeterm boxes are fully sorted below by their unique (bx, by) map key, so output order is total
		boxes = append(boxes, b)
	}
	sort.Slice(boxes, func(i, j int) bool {
		if boxes[i].bx != boxes[j].bx {
			return boxes[i].bx < boxes[j].bx
		}
		return boxes[i].by < boxes[j].by
	})
	var out []Point
	bestBY := math.Inf(1)
	for _, b := range boxes {
		if b.by < bestBY {
			out = append(out, b.p)
			bestBY = b.by
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// Stream2D maintains a 2-D Pareto frontier under incremental inserts.
// It stores only the current frontier, so filtering a multi-million
// point feasible set needs memory proportional to the frontier size.
// The zero value is ready to use. Not safe for concurrent use; shard
// per worker and Merge.
type Stream2D struct {
	// frontier is kept sorted by ascending X with strictly descending
	// Y (the canonical staircase).
	frontier []Point
	seen     uint64
}

// Add offers a point to the frontier.
func (s *Stream2D) Add(p Point) {
	s.seen++
	// Find the first frontier point with X >= p.X.
	i := sort.Search(len(s.frontier), func(i int) bool { return s.frontier[i].X >= p.X })
	// A predecessor with Y <= p.Y dominates p (its X is <= p.X).
	if i > 0 && s.frontier[i-1].Y <= p.Y {
		return
	}
	// An equal-X point with Y <= p.Y dominates p too.
	//lint:allow floateq exact equal-X dominance test within one frontier; matches Frontier's dedup semantics
	if i < len(s.frontier) && s.frontier[i].X == p.X && s.frontier[i].Y <= p.Y {
		return
	}
	// p survives: remove now-dominated successors (X >= p.X, Y >= p.Y).
	j := i
	for j < len(s.frontier) && s.frontier[j].Y >= p.Y {
		j++
	}
	if j == i {
		s.frontier = append(s.frontier, Point{})
		copy(s.frontier[i+1:], s.frontier[i:])
		s.frontier[i] = p
		return
	}
	s.frontier[i] = p
	s.frontier = append(s.frontier[:i+1], s.frontier[j:]...)
}

// Seen reports how many points were offered.
func (s *Stream2D) Seen() uint64 { return s.seen }

// Frontier returns a copy of the current frontier, ascending in X.
func (s *Stream2D) Frontier() []Point {
	return append([]Point(nil), s.frontier...)
}

// Merge folds another stream's frontier into s (used to combine
// per-worker shards after a parallel scan).
func (s *Stream2D) Merge(other *Stream2D) {
	for _, p := range other.frontier {
		s.Add(p)
	}
	s.seen += other.seen - uint64(len(other.frontier))
}

// DominatesKD reports whether objective vector a dominates b
// (minimization, equal lengths).
func DominatesKD(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// FrontierKD returns the indices of the nondominated rows of objs under
// minimization. O(n²·k); intended for modest candidate sets (the 2-D
// paths handle the big ones).
func FrontierKD(objs [][]float64) []int {
	var out []int
	for i, a := range objs {
		dominated := false
		for j, b := range objs {
			if i == j {
				continue
			}
			if DominatesKD(b, a) {
				dominated = true
				break
			}
			// Of duplicate vectors, keep only the first.
			if j < i && vecEqual(a, b) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func vecEqual(a, b []float64) bool {
	for i := range a {
		//lint:allow floateq exact vector identity for frontier dedup, not a numeric tolerance test
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
