package pareto_test

import (
	"fmt"

	"repro/internal/pareto"
)

// ExampleStream2D filters a stream of (time, cost) points down to the
// Pareto frontier without storing the stream.
func ExampleStream2D() {
	var s pareto.Stream2D
	for _, p := range []pareto.Point{
		{X: 10, Y: 100, ID: 1},
		{X: 20, Y: 50, ID: 2},
		{X: 15, Y: 120, ID: 3}, // dominated by ID 1
		{X: 5, Y: 200, ID: 4},
		{X: 30, Y: 60, ID: 5}, // dominated by ID 2
	} {
		s.Add(p)
	}
	for _, p := range s.Frontier() {
		fmt.Printf("(%g, %g) ", p.X, p.Y)
	}
	fmt.Println()
	// Output: (5, 200) (10, 100) (20, 50)
}

// ExampleEpsilonFrontier2D coarsens a dense frontier with the
// ε-nondomination boxes of pareto.py, the paper's reference [27].
func ExampleEpsilonFrontier2D() {
	var pts []pareto.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, pareto.Point{X: float64(i), Y: float64(100 - i), ID: uint64(i)})
	}
	exact := pareto.Frontier2D(pts)
	coarse := pareto.EpsilonFrontier2D(pts, 25, 25)
	fmt.Printf("exact: %d points, epsilon: %d points\n", len(exact), len(coarse))
	// Output: exact: 100 points, epsilon: 4 points
}
