// Package ec2 holds the static cloud-resource catalog CELIA selects
// from: the nine Amazon EC2 on-demand instance types of the paper's
// Table III (Oregon region, 2017 pricing), grouped into the
// compute-intensive c4, general-purpose m4, and memory-optimized r3
// categories. The catalog is the set I of Table I; per-type node limits
// (m_i,max = 5 in the paper) live in internal/config's Space.
package ec2

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// Category is an EC2 resource category — a processor family sharing the
// same micro-architecture and, per the paper's §IV-C observation, the
// same instruction-execution rate per dollar.
type Category string

// The three categories the paper evaluates.
const (
	C4 Category = "c4" // compute-intensive, Intel Xeon E5-2666 v3
	M4 Category = "m4" // general-purpose,  Intel Xeon E5-2676 v3
	R3 Category = "r3" // memory-optimized, Intel Xeon E5-2670
)

// Categories lists the categories in the paper's canonical order. The
// first three positions of a configuration tuple are c4 types, the next
// three m4, the last three r3 (Figure 6's annotation convention).
func Categories() []Category { return []Category{C4, M4, R3} }

// InstanceType describes one EC2 resource type i ∈ I: the hardware
// exposed to the guest and its on-demand hourly price c_i.
type InstanceType struct {
	Name     string           // e.g. "c4.xlarge"
	Category Category         // resource category (c4/m4/r3)
	VCPUs    int              // v_i: virtual processors (hyper-threads)
	BaseGHz  float64          // base core frequency from Table III
	MemGB    float64          // guest memory
	Storage  string           // "EBS" or instance-store size in GB
	Price    units.USDPerHour // on-demand price, Oregon region
}

// PhysicalCores reports the physical core count backing the instance.
// EC2 vCPUs of this generation are hyper-threads: two per physical core.
// The cloud simulator uses this to model hyper-thread contention; the
// analytic model deliberately does not (Eq. 4 treats vCPUs as
// independent), which is one source of the paper's validation error.
func (t InstanceType) PhysicalCores() int {
	if t.VCPUs < 2 {
		return 1
	}
	return t.VCPUs / 2
}

func (t InstanceType) String() string {
	return fmt.Sprintf("%s (%d vCPU, %.1f GHz, %s)", t.Name, t.VCPUs, t.BaseGHz, t.Price)
}

// Catalog is an ordered set of instance types. Order is significant: it
// defines the positions of configuration tuples.
type Catalog struct {
	types []InstanceType
	index map[string]int
}

// NewCatalog builds a catalog from the given types, preserving order.
// Duplicate names and non-positive prices or vCPU counts are rejected.
func NewCatalog(types []InstanceType) (*Catalog, error) {
	c := &Catalog{index: make(map[string]int, len(types))}
	for _, t := range types {
		if t.Name == "" {
			return nil, fmt.Errorf("ec2: instance type with empty name")
		}
		if _, dup := c.index[t.Name]; dup {
			return nil, fmt.Errorf("ec2: duplicate instance type %q", t.Name)
		}
		if t.VCPUs <= 0 {
			return nil, fmt.Errorf("ec2: %s has non-positive vCPU count %d", t.Name, t.VCPUs)
		}
		if t.Price <= 0 {
			return nil, fmt.Errorf("ec2: %s has non-positive price %v", t.Name, t.Price)
		}
		if t.BaseGHz <= 0 {
			return nil, fmt.Errorf("ec2: %s has non-positive frequency %v", t.Name, t.BaseGHz)
		}
		c.index[t.Name] = len(c.types)
		c.types = append(c.types, t)
	}
	if len(c.types) == 0 {
		return nil, fmt.Errorf("ec2: empty catalog")
	}
	return c, nil
}

// Len reports M, the number of resource types.
func (c *Catalog) Len() int { return len(c.types) }

// Type returns the i-th instance type (0-based tuple position).
func (c *Catalog) Type(i int) InstanceType { return c.types[i] }

// Types returns a copy of the ordered type list.
func (c *Catalog) Types() []InstanceType {
	return append([]InstanceType(nil), c.types...)
}

// Lookup finds a type by name.
func (c *Catalog) Lookup(name string) (InstanceType, bool) {
	i, ok := c.index[name]
	if !ok {
		return InstanceType{}, false
	}
	return c.types[i], true
}

// IndexOf returns the tuple position of the named type, or -1.
func (c *Catalog) IndexOf(name string) int {
	i, ok := c.index[name]
	if !ok {
		return -1
	}
	return i
}

// ByCategory returns the tuple positions belonging to the category, in
// catalog order.
func (c *Catalog) ByCategory(cat Category) []int {
	var out []int
	for i, t := range c.types {
		if t.Category == cat {
			out = append(out, i)
		}
	}
	return out
}

// CategoryNames returns the distinct categories present, sorted.
func (c *Catalog) CategoryNames() []Category {
	seen := map[Category]bool{}
	var out []Category
	for _, t := range c.types {
		if !seen[t.Category] {
			seen[t.Category] = true
			out = append(out, t.Category)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PriceRange reports the cheapest and most expensive hourly prices in
// the catalog ("hourly prices range from $0.105 to $0.664", §IV-B).
func (c *Catalog) PriceRange() (lo, hi units.USDPerHour) {
	lo, hi = c.types[0].Price, c.types[0].Price
	for _, t := range c.types[1:] {
		if t.Price < lo {
			lo = t.Price
		}
		if t.Price > hi {
			hi = t.Price
		}
	}
	return lo, hi
}

// Oregon returns the paper's Table III catalog: nine types, three per
// category, in the tuple order used throughout the evaluation
// (c4.large … c4.2xlarge, m4.large … m4.2xlarge, r3.large … r3.2xlarge).
func Oregon() *Catalog {
	c, err := NewCatalog([]InstanceType{
		{Name: "c4.large", Category: C4, VCPUs: 2, BaseGHz: 2.9, MemGB: 3.75, Storage: "EBS", Price: 0.105},
		{Name: "c4.xlarge", Category: C4, VCPUs: 4, BaseGHz: 2.9, MemGB: 7.5, Storage: "EBS", Price: 0.209},
		{Name: "c4.2xlarge", Category: C4, VCPUs: 8, BaseGHz: 2.9, MemGB: 15, Storage: "EBS", Price: 0.419},
		{Name: "m4.large", Category: M4, VCPUs: 2, BaseGHz: 2.3, MemGB: 8, Storage: "EBS", Price: 0.133},
		{Name: "m4.xlarge", Category: M4, VCPUs: 4, BaseGHz: 2.3, MemGB: 16, Storage: "EBS", Price: 0.266},
		{Name: "m4.2xlarge", Category: M4, VCPUs: 8, BaseGHz: 2.3, MemGB: 32, Storage: "EBS", Price: 0.532},
		{Name: "r3.large", Category: R3, VCPUs: 2, BaseGHz: 2.5, MemGB: 15, Storage: "32 GB", Price: 0.166},
		{Name: "r3.xlarge", Category: R3, VCPUs: 4, BaseGHz: 2.5, MemGB: 30.5, Storage: "80 GB", Price: 0.333},
		{Name: "r3.2xlarge", Category: R3, VCPUs: 8, BaseGHz: 2.5, MemGB: 61, Storage: "160 GB", Price: 0.664},
	})
	if err != nil {
		panic("ec2: Oregon catalog invalid: " + err.Error()) // static data; unreachable
	}
	return c
}
