package ec2

import (
	"testing"

	"repro/internal/units"
)

func TestOregonMatchesTableIII(t *testing.T) {
	c := Oregon()
	if c.Len() != 9 {
		t.Fatalf("Oregon catalog has %d types, want 9", c.Len())
	}
	// Spot-check rows of Table III.
	want := []struct {
		name  string
		vcpus int
		ghz   float64
		mem   float64
		price units.USDPerHour
	}{
		{"c4.large", 2, 2.9, 3.75, 0.105},
		{"c4.xlarge", 4, 2.9, 7.5, 0.209},
		{"c4.2xlarge", 8, 2.9, 15, 0.419},
		{"m4.large", 2, 2.3, 8, 0.133},
		{"m4.xlarge", 4, 2.3, 16, 0.266},
		{"m4.2xlarge", 8, 2.3, 32, 0.532},
		{"r3.large", 2, 2.5, 15, 0.166},
		{"r3.xlarge", 4, 2.5, 30.5, 0.333},
		{"r3.2xlarge", 8, 2.5, 61, 0.664},
	}
	for i, w := range want {
		got := c.Type(i)
		if got.Name != w.name || got.VCPUs != w.vcpus || got.BaseGHz != w.ghz ||
			got.MemGB != w.mem || got.Price != w.price {
			t.Errorf("Type(%d) = %+v, want %+v", i, got, w)
		}
	}
}

func TestOregonPriceRange(t *testing.T) {
	lo, hi := Oregon().PriceRange()
	if lo != 0.105 || hi != 0.664 {
		t.Fatalf("PriceRange = %v..%v, want $0.105..$0.664 (§IV-B)", lo, hi)
	}
}

func TestCategories(t *testing.T) {
	c := Oregon()
	for _, cat := range []Category{C4, M4, R3} {
		idx := c.ByCategory(cat)
		if len(idx) != 3 {
			t.Errorf("ByCategory(%s) = %v, want 3 positions", cat, idx)
		}
		for _, i := range idx {
			if c.Type(i).Category != cat {
				t.Errorf("position %d claims category %s but is %s", i, cat, c.Type(i).Category)
			}
		}
	}
	names := c.CategoryNames()
	if len(names) != 3 || names[0] != C4 || names[1] != M4 || names[2] != R3 {
		t.Fatalf("CategoryNames = %v", names)
	}
}

func TestCategoryTuplePositions(t *testing.T) {
	// Figure 6's annotation convention: first three positions c4, next
	// three m4, last three r3.
	c := Oregon()
	wantCats := []Category{C4, C4, C4, M4, M4, M4, R3, R3, R3}
	for i, cat := range wantCats {
		if c.Type(i).Category != cat {
			t.Errorf("tuple position %d = %s, want %s", i, c.Type(i).Category, cat)
		}
	}
}

func TestLookupAndIndexOf(t *testing.T) {
	c := Oregon()
	typ, ok := c.Lookup("m4.xlarge")
	if !ok || typ.VCPUs != 4 {
		t.Fatalf("Lookup(m4.xlarge) = %+v, %v", typ, ok)
	}
	if _, ok := c.Lookup("p2.xlarge"); ok {
		t.Fatal("Lookup of absent type succeeded")
	}
	if got := c.IndexOf("r3.large"); got != 6 {
		t.Fatalf("IndexOf(r3.large) = %d, want 6", got)
	}
	if got := c.IndexOf("nope"); got != -1 {
		t.Fatalf("IndexOf(nope) = %d, want -1", got)
	}
}

func TestPhysicalCores(t *testing.T) {
	cases := []struct{ vcpus, want int }{{1, 1}, {2, 1}, {4, 2}, {8, 4}}
	for _, cse := range cases {
		it := InstanceType{VCPUs: cse.vcpus}
		if got := it.PhysicalCores(); got != cse.want {
			t.Errorf("PhysicalCores(%d vCPU) = %d, want %d", cse.vcpus, got, cse.want)
		}
	}
}

func TestNewCatalogValidation(t *testing.T) {
	valid := InstanceType{Name: "x", Category: C4, VCPUs: 2, BaseGHz: 2.0, Price: 0.1}
	cases := []struct {
		name  string
		types []InstanceType
	}{
		{"empty", nil},
		{"empty name", []InstanceType{{Category: C4, VCPUs: 2, BaseGHz: 2, Price: 0.1}}},
		{"duplicate", []InstanceType{valid, valid}},
		{"zero vcpus", []InstanceType{{Name: "x", VCPUs: 0, BaseGHz: 2, Price: 0.1}}},
		{"zero price", []InstanceType{{Name: "x", VCPUs: 2, BaseGHz: 2, Price: 0}}},
		{"zero freq", []InstanceType{{Name: "x", VCPUs: 2, BaseGHz: 0, Price: 0.1}}},
	}
	for _, c := range cases {
		if _, err := NewCatalog(c.types); err == nil {
			t.Errorf("NewCatalog(%s) did not fail", c.name)
		}
	}
	if _, err := NewCatalog([]InstanceType{valid}); err != nil {
		t.Fatalf("NewCatalog(valid) = %v", err)
	}
}

func TestTypesReturnsCopy(t *testing.T) {
	c := Oregon()
	ts := c.Types()
	ts[0].Name = "mutated"
	if c.Type(0).Name != "c4.large" {
		t.Fatal("Types() exposed internal slice")
	}
}

func TestPriceProportionalToVCPUs(t *testing.T) {
	// Within each category the per-vCPU price is near-constant (within
	// 1%), which is why §IV-C's per-category profiling works.
	c := Oregon()
	for _, cat := range Categories() {
		idx := c.ByCategory(cat)
		base := float64(c.Type(idx[0]).Price) / float64(c.Type(idx[0]).VCPUs)
		for _, i := range idx[1:] {
			perVCPU := float64(c.Type(i).Price) / float64(c.Type(i).VCPUs)
			if diff := (perVCPU - base) / base; diff > 0.01 || diff < -0.01 {
				t.Errorf("%s per-vCPU price %.5f deviates from %s base %.5f",
					c.Type(i).Name, perVCPU, cat, base)
			}
		}
	}
}
