// Package cli holds helpers shared by the command-line tools: app
// registry lookup and engine assembly from either ground-truth or
// measured characterizations.
package cli

import (
	"fmt"
	"sort"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/apps/x264"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/workload"
)

// Apps returns the registry of the paper's three elastic applications.
func Apps() map[string]workload.App {
	return map[string]workload.App{
		"x264":   x264.App{},
		"galaxy": galaxy.App{},
		"sand":   sand.App{},
	}
}

// AppNames returns the registry keys, sorted.
func AppNames() []string {
	m := Apps()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupApp resolves an app by name.
func LookupApp(name string) (workload.App, error) {
	app, ok := Apps()[name]
	if !ok {
		return nil, fmt.Errorf("unknown application %q (have %v)", name, AppNames())
	}
	return app, nil
}

// BuildEngine assembles an engine. With measured true it runs the full
// profiling pipeline (baseline runs, fitting, capacity measurement);
// otherwise it uses the simulated world's ground truth — useful for
// fast model-based analysis, and what the paper's Figures 4–6 are.
func BuildEngine(app workload.App, measured bool) (*core.Engine, error) {
	if !measured {
		return core.NewPaperEngine(app), nil
	}
	eng, _, _, err := profile.New().BuildEngine(app)
	return eng, err
}
