package cli

import (
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

func TestAppsRegistry(t *testing.T) {
	names := AppNames()
	if len(names) != 3 {
		t.Fatalf("registry has %d apps: %v", len(names), names)
	}
	want := []string{"galaxy", "sand", "x264"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("AppNames = %v, want %v", names, want)
		}
	}
}

func TestLookupApp(t *testing.T) {
	app, err := LookupApp("galaxy")
	if err != nil || app.Name() != "galaxy" {
		t.Fatalf("LookupApp(galaxy) = %v, %v", app, err)
	}
	if _, err := LookupApp("blender"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestBuildEngineGroundTruth(t *testing.T) {
	app, err := LookupApp("galaxy")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := BuildEngine(app, false)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Space().Size() != 10077695 {
		t.Fatalf("space size = %d", eng.Space().Size())
	}
	pred, ok, err := eng.MinCostForDeadline(workload.Params{N: 65536, A: 8000}, units.FromHours(24))
	if err != nil || !ok {
		t.Fatalf("engine unusable: %v %v", ok, err)
	}
	if pred.Cost <= 0 {
		t.Fatal("non-positive cost")
	}
}

func TestBuildEngineMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement pipeline is compute-heavy")
	}
	app, err := LookupApp("x264")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := BuildEngine(app, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := eng.MinCostForDeadline(workload.Params{N: 8000, A: 20}, units.FromHours(48)); err != nil || !ok {
		t.Fatalf("measured engine unusable: %v %v", ok, err)
	}
}
