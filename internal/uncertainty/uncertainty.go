// Package uncertainty propagates CELIA's measurement errors through
// the time and cost models. The paper validates point predictions
// (Table IV shows 3–17% errors); a production user also wants to know
// how confident a configuration choice is. This package models the two
// error sources the validation exposes — capacity measurement bias/
// jitter and demand-model extrapolation error — and produces
// prediction intervals and deadline-satisfaction confidence via seeded
// Monte Carlo sampling.
package uncertainty

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// Sources quantifies relative measurement errors (1 σ).
type Sources struct {
	// CapacityRelSD: relative standard deviation of measured W_i,vCPU
	// (processor-sharing jitter plus probe contamination).
	CapacityRelSD float64
	// CapacityBias: multiplicative bias of measured capacity (negative
	// = under-measured, the Table IV regime for startup-contaminated
	// probes).
	CapacityBias float64
	// DemandRelSD: relative standard deviation of the demand model's
	// full-scale extrapolation.
	DemandRelSD float64
}

// DefaultSources reflects this repository's measured validation: ~2%
// instance jitter, capacities measured a few percent low, demand fits
// within ~1%.
func DefaultSources() Sources {
	return Sources{CapacityRelSD: 0.02, CapacityBias: -0.05, DemandRelSD: 0.01}
}

// Validate rejects nonsensical error models.
func (s Sources) Validate() error {
	if s.CapacityRelSD < 0 || s.DemandRelSD < 0 {
		return fmt.Errorf("uncertainty: negative standard deviation")
	}
	if s.CapacityBias <= -1 {
		return fmt.Errorf("uncertainty: capacity bias %v implies non-positive capacity", s.CapacityBias)
	}
	return nil
}

// Interval is a central prediction interval.
type Interval struct {
	P05, P50, P95 float64
	Mean          float64
}

// Prediction bundles time and cost intervals for one configuration.
type Prediction struct {
	Config       config.Tuple
	TimeSeconds  Interval
	CostUSD      Interval
	DeadlineProb float64 // P(T < deadline); 1 when no deadline given
}

// Analyzer samples the models.
type Analyzer struct {
	Caps    *model.Capacities
	Sources Sources
	Billing model.Billing
	Samples int
	Seed    int64
}

// NewAnalyzer builds an analyzer with 2000 samples.
func NewAnalyzer(caps *model.Capacities, src Sources) (*Analyzer, error) {
	if caps == nil {
		return nil, fmt.Errorf("uncertainty: nil capacities")
	}
	if err := src.Validate(); err != nil {
		return nil, err
	}
	return &Analyzer{Caps: caps, Sources: src, Samples: 2000, Seed: 1}, nil
}

// Predict produces intervals for one (demand, configuration) pair.
// deadline ≤ 0 means no deadline.
func (a *Analyzer) Predict(d units.Instructions, t config.Tuple, deadline units.Seconds) (Prediction, error) {
	if a.Samples < 10 {
		return Prediction{}, fmt.Errorf("uncertainty: %d samples is too few", a.Samples)
	}
	base := a.Caps.Predict(d, t)
	if math.IsInf(float64(base.Time), 1) {
		return Prediction{}, fmt.Errorf("uncertainty: configuration %v has no capacity", t)
	}
	// The splitmix64 source keeps intervals replayable across Go
	// releases; math/rand's generator carries no such guarantee (and is
	// banned from simulation paths by celia-lint's nodeterm rule).
	rng := detrand.New(uint64(a.Seed))
	times := make([]float64, a.Samples)
	costs := make([]float64, a.Samples)
	meet := 0
	cu := float64(base.UnitCost)
	for s := 0; s < a.Samples; s++ {
		// True capacity relative to the measured one: remove the
		// measurement bias, add per-run jitter.
		capFactor := (1 + a.Sources.CapacityRelSD*rng.NormFloat64()) / (1 + a.Sources.CapacityBias)
		demFactor := 1 + a.Sources.DemandRelSD*rng.NormFloat64()
		if capFactor <= 0.01 {
			capFactor = 0.01
		}
		if demFactor <= 0.01 {
			demFactor = 0.01
		}
		T := float64(base.Time) * demFactor / capFactor
		times[s] = T
		costs[s] = float64(model.Bill(units.Seconds(T), units.USDPerHour(cu), a.Billing))
		if deadline <= 0 || T < float64(deadline) {
			meet++
		}
	}
	sort.Float64s(times)
	sort.Float64s(costs)
	pred := Prediction{
		Config:       t,
		TimeSeconds:  interval(times),
		CostUSD:      interval(costs),
		DeadlineProb: float64(meet) / float64(a.Samples),
	}
	return pred, nil
}

func interval(sorted []float64) Interval {
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Interval{
		P05:  stats.Quantile(sorted, 0.05),
		P50:  stats.Quantile(sorted, 0.50),
		P95:  stats.Quantile(sorted, 0.95),
		Mean: sum / float64(len(sorted)),
	}
}

// RobustMinCost picks the cheapest configuration among the engine's
// Pareto frontier whose deadline-satisfaction probability meets the
// confidence threshold. It returns false when no frontier point is
// confident enough — the caller should then relax the deadline or the
// confidence.
func RobustMinCost(eng *core.Engine, a *Analyzer, p workload.Params,
	deadline units.Seconds, confidence float64) (Prediction, bool, error) {
	if confidence <= 0 || confidence > 1 {
		return Prediction{}, false, fmt.Errorf("uncertainty: confidence %v outside (0, 1]", confidence)
	}
	an, err := eng.Analyze(p, core.Constraints{Deadline: deadline}, core.Options{})
	if err != nil {
		return Prediction{}, false, err
	}
	d, err := eng.Demand(p)
	if err != nil {
		return Prediction{}, false, err
	}
	best := Prediction{}
	bestCost := math.Inf(1)
	found := false
	for _, f := range an.Frontier {
		pred, err := a.Predict(d, f.Config, deadline)
		if err != nil {
			return Prediction{}, false, err
		}
		if pred.DeadlineProb >= confidence && pred.CostUSD.Mean < bestCost {
			best = pred
			bestCost = pred.CostUSD.Mean
			found = true
		}
	}
	return best, found, nil
}
