package uncertainty

import (
	"math"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ec2"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

func newAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(model.FromIPC(ec2.Oregon(), galaxy.App{}), DefaultSources())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSourcesValidation(t *testing.T) {
	if err := (Sources{CapacityRelSD: -1}).Validate(); err == nil {
		t.Fatal("negative sd accepted")
	}
	if err := (Sources{CapacityBias: -1}).Validate(); err == nil {
		t.Fatal("bias of -100% accepted")
	}
	if err := DefaultSources().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAnalyzer(nil, DefaultSources()); err == nil {
		t.Fatal("nil capacities accepted")
	}
}

func TestPredictIntervalOrdering(t *testing.T) {
	a := newAnalyzer(t)
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 8000})
	tuple := config.MustTuple(5, 5, 5, 3, 0, 0, 0, 0, 0)
	pred, err := a.Predict(d, tuple, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range []Interval{pred.TimeSeconds, pred.CostUSD} {
		if !(iv.P05 <= iv.P50 && iv.P50 <= iv.P95) {
			t.Fatalf("quantiles out of order: %+v", iv)
		}
		if iv.P05 <= 0 {
			t.Fatalf("non-positive lower bound: %+v", iv)
		}
	}
	if pred.DeadlineProb != 1 {
		t.Fatalf("no deadline should mean probability 1, got %v", pred.DeadlineProb)
	}
}

func TestBiasShiftsIntervalUp(t *testing.T) {
	// Under-measured capacity (negative bias) means true runs are
	// FASTER than the point prediction: median time below base.
	a := newAnalyzer(t)
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 8000})
	tuple := config.MustTuple(5, 5, 5, 3, 0, 0, 0, 0, 0)
	base := a.Caps.Predict(d, tuple)
	pred, err := a.Predict(d, tuple, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TimeSeconds.P50 >= float64(base.Time) {
		t.Fatalf("median %v not below biased point prediction %v",
			pred.TimeSeconds.P50, base.Time)
	}
}

func TestDeadlineProbMonotoneInDeadline(t *testing.T) {
	a := newAnalyzer(t)
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 8000})
	tuple := config.MustTuple(5, 5, 5, 3, 0, 0, 0, 0, 0)
	base := a.Caps.Predict(d, tuple)
	tight, err := a.Predict(d, tuple, base.Time*95/100)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := a.Predict(d, tuple, base.Time*12/10)
	if err != nil {
		t.Fatal(err)
	}
	if loose.DeadlineProb < tight.DeadlineProb {
		t.Fatalf("looser deadline has lower probability: %v vs %v",
			loose.DeadlineProb, tight.DeadlineProb)
	}
	if loose.DeadlineProb < 0.95 {
		t.Fatalf("20%% slack should be nearly certain, got %v", loose.DeadlineProb)
	}
}

func TestPredictDeterministicForSeed(t *testing.T) {
	a := newAnalyzer(t)
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 4000})
	tuple := config.MustTuple(5, 5, 0, 0, 0, 0, 0, 0, 0)
	p1, err := a.Predict(d, tuple, units.FromHours(36))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Predict(d, tuple, units.FromHours(36))
	if err != nil {
		t.Fatal(err)
	}
	if p1.TimeSeconds != p2.TimeSeconds || p1.DeadlineProb != p2.DeadlineProb {
		t.Fatal("prediction not deterministic for fixed seed")
	}
}

func TestPredictRejectsEmptyConfig(t *testing.T) {
	a := newAnalyzer(t)
	_, err := a.Predict(units.GI(1), config.MustTuple(0, 0, 0, 0, 0, 0, 0, 0, 0), 0)
	if err == nil {
		t.Fatal("empty configuration accepted")
	}
}

func TestPredictTooFewSamples(t *testing.T) {
	a := newAnalyzer(t)
	a.Samples = 3
	_, err := a.Predict(units.GI(1), config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0), 0)
	if err == nil {
		t.Fatal("3 samples accepted")
	}
}

func TestRobustMinCost(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	a := newAnalyzer(t)
	p := workload.Params{N: 65536, A: 8000}
	deadline := units.FromHours(24)
	pred, ok, err := RobustMinCost(eng, a, p, deadline, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no robust configuration found at 95% confidence")
	}
	if pred.DeadlineProb < 0.95 {
		t.Fatalf("robust pick has probability %v < 0.95", pred.DeadlineProb)
	}
	// The robust pick costs at least as much as the point-optimal one
	// (it may need headroom).
	point, okP, err := eng.MinCostForDeadline(p, deadline)
	if err != nil || !okP {
		t.Fatal(okP, err)
	}
	if pred.CostUSD.Mean < float64(point.Cost)*0.9 {
		t.Fatalf("robust cost %v implausibly below point optimum %v",
			pred.CostUSD.Mean, point.Cost)
	}
}

func TestRobustMinCostBadConfidence(t *testing.T) {
	eng := core.NewPaperEngine(galaxy.App{})
	a := newAnalyzer(t)
	if _, _, err := RobustMinCost(eng, a, workload.Params{N: 65536, A: 8000},
		units.FromHours(24), 1.5); err == nil {
		t.Fatal("confidence > 1 accepted")
	}
}

func TestIntervalHelper(t *testing.T) {
	iv := interval([]float64{1, 2, 3, 4, 5})
	if iv.P50 != 3 || math.Abs(iv.Mean-3) > 1e-12 {
		t.Fatalf("interval = %+v", iv)
	}
}
