// Package validate reproduces the paper's Table IV: for nine
// (application, problem, configuration) cases, it compares the
// analytical model's predicted execution time and cost — computed from
// a fitted demand model and measured capacities, exactly as a CELIA
// user would — against "actual" values from full-scale cloud runs
// (here, the cloud simulator). The paper reports maximum errors of
// 9.5% (x264), 13.1% (galaxy) and 16.7% (sand), with x264 and galaxy
// over-predicted and sand under-predicted.
package validate

import (
	"fmt"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/sand"
	"repro/internal/apps/x264"
	"repro/internal/cloudsim"
	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// Case is one validation row.
type Case struct {
	App    workload.App
	Params workload.Params
	Config config.Tuple
}

// Name renders the paper's row label, e.g. "galaxy(65536,8000)".
func (c Case) Name() string {
	return fmt.Sprintf("%s(%g,%g)", c.App.Name(), c.Params.N, c.Params.A)
}

// PaperCases returns Table IV's nine rows.
func PaperCases() []Case {
	return []Case{
		{x264.App{}, workload.Params{N: 8000, A: 20}, config.MustTuple(2, 1, 0, 0, 0, 0, 0, 0, 0)},
		{x264.App{}, workload.Params{N: 16000, A: 20}, config.MustTuple(5, 1, 1, 0, 0, 0, 0, 0, 0)},
		{x264.App{}, workload.Params{N: 32000, A: 20}, config.MustTuple(5, 5, 5, 1, 0, 0, 0, 0, 0)},
		{galaxy.App{}, workload.Params{N: 65536, A: 4000}, config.MustTuple(5, 5, 0, 0, 0, 0, 0, 0, 0)},
		{galaxy.App{}, workload.Params{N: 65536, A: 6000}, config.MustTuple(5, 5, 5, 0, 0, 0, 0, 0, 0)},
		{galaxy.App{}, workload.Params{N: 65536, A: 8000}, config.MustTuple(5, 5, 5, 3, 0, 0, 0, 0, 0)},
		{sand.App{}, workload.Params{N: 1024e6, A: 0.32}, config.MustTuple(5, 4, 1, 0, 0, 0, 0, 0, 0)},
		{sand.App{}, workload.Params{N: 2048e6, A: 0.32}, config.MustTuple(5, 5, 0, 0, 0, 0, 0, 0, 0)},
		{sand.App{}, workload.Params{N: 4096e6, A: 0.32}, config.MustTuple(5, 3, 1, 0, 0, 0, 0, 0, 0)},
	}
}

// Row is one completed validation row.
type Row struct {
	Case          Case
	PredictedTime units.Seconds
	ActualTime    units.Seconds
	PredictedCost units.USD
	ActualCost    units.USD
	TimeErrPct    float64
	CostErrPct    float64
	// Communication-aware extension (model.PredictWithComm): the
	// paper's model deliberately drops communication; these fields
	// quantify how much of the validation error that term explains.
	CommAwareTime   units.Seconds
	CommAwareErrPct float64
}

// Run validates the given cases. Characterizations (demand fit,
// capacity measurement) are done once per application through the
// profiler; each case is then predicted analytically and executed on
// the cloud simulator.
func Run(pf *profile.Profiler, cases []Case) ([]Row, error) {
	type appChar struct {
		caps   *model.Capacities
		demand func(workload.Params) units.Instructions
	}
	chars := map[string]appChar{}
	rows := make([]Row, 0, len(cases))
	for _, c := range cases {
		ch, ok := chars[c.App.Name()]
		if !ok {
			dr, err := pf.CharacterizeDemand(c.App)
			if err != nil {
				return nil, fmt.Errorf("validate: %s: %w", c.App.Name(), err)
			}
			cr, err := pf.CharacterizeCapacity(c.App, true)
			if err != nil {
				return nil, fmt.Errorf("validate: %s: %w", c.App.Name(), err)
			}
			m := dr.Fit.Model
			ch = appChar{caps: cr.Capacities, demand: m.Demand}
			chars[c.App.Name()] = ch
		}
		d := ch.demand(c.Params)
		pred := ch.caps.Predict(d, c.Config)
		actual, err := cloudsim.Run(c.App, c.Params, c.Config, pf.Catalog, pf.SimOpts)
		if err != nil {
			return nil, fmt.Errorf("validate: %s actual run: %w", c.Name(), err)
		}
		comm := model.DefaultComm()
		// The master dispatches at the rate of the configuration's
		// first provisioned vCPU.
		for i := 0; i < c.Config.Len(); i++ {
			if c.Config.Count(i) > 0 {
				comm.MasterGIPS = ch.caps.PerVCPU(i).GIPSValue()
				break
			}
		}
		predComm := ch.caps.PredictWithComm(d, c.Config, c.App.Plan(c.Params), comm)
		rows = append(rows, Row{
			Case:            c,
			PredictedTime:   pred.Time,
			ActualTime:      actual.Makespan,
			PredictedCost:   pred.Cost,
			ActualCost:      actual.Cost,
			TimeErrPct:      stats.RelErr(float64(pred.Time), float64(actual.Makespan)),
			CostErrPct:      stats.RelErr(float64(pred.Cost), float64(actual.Cost)),
			CommAwareTime:   predComm.Time,
			CommAwareErrPct: stats.RelErr(float64(predComm.Time), float64(actual.Makespan)),
		})
	}
	return rows, nil
}

// MaxErrByApp summarizes the worst time error per application, the
// quantity the paper headlines ("prediction error is less than 17%").
func MaxErrByApp(rows []Row) map[string]float64 {
	out := map[string]float64{}
	for _, r := range rows {
		name := r.Case.App.Name()
		if r.TimeErrPct > out[name] {
			out[name] = r.TimeErrPct
		}
	}
	return out
}
