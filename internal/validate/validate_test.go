package validate

import (
	"testing"

	"repro/internal/profile"
)

func TestPaperCasesShape(t *testing.T) {
	cases := PaperCases()
	if len(cases) != 9 {
		t.Fatalf("Table IV has %d rows, want 9", len(cases))
	}
	byApp := map[string]int{}
	for _, c := range cases {
		byApp[c.App.Name()]++
		if c.Config.IsEmpty() {
			t.Errorf("%s: empty configuration", c.Name())
		}
	}
	for _, app := range []string{"x264", "galaxy", "sand"} {
		if byApp[app] != 3 {
			t.Errorf("%s has %d rows, want 3", app, byApp[app])
		}
	}
}

func TestCaseName(t *testing.T) {
	c := PaperCases()[5]
	if c.Name() != "galaxy(65536,8000)" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestValidationErrorsWithinPaperBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation pipeline is compute-heavy")
	}
	rows, err := Run(profile.New(), PaperCases())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		// The paper's headline: prediction error below 17%.
		if r.TimeErrPct > 17 {
			t.Errorf("%s: time error %.1f%% exceeds the paper's 17%% bound (pred %v, actual %v)",
				r.Case.Name(), r.TimeErrPct, r.PredictedTime, r.ActualTime)
		}
		if r.CostErrPct > 20 {
			t.Errorf("%s: cost error %.1f%%", r.Case.Name(), r.CostErrPct)
		}
		// Error signs must match the paper: x264 and galaxy
		// over-predicted, sand under-predicted.
		switch r.Case.App.Name() {
		case "x264", "galaxy":
			if r.PredictedTime < r.ActualTime {
				t.Errorf("%s: predicted %v < actual %v; paper over-predicts these apps",
					r.Case.Name(), r.PredictedTime, r.ActualTime)
			}
		case "sand":
			if r.PredictedTime > r.ActualTime {
				t.Errorf("%s: predicted %v > actual %v; paper under-predicts sand",
					r.Case.Name(), r.PredictedTime, r.ActualTime)
			}
		}
		if r.TimeErrPct < 0.1 {
			t.Errorf("%s: time error %.3f%% suspiciously low; the model should not be exact",
				r.Case.Name(), r.TimeErrPct)
		}
	}
	maxErr := MaxErrByApp(rows)
	for app, e := range maxErr {
		if e <= 0 || e > 17 {
			t.Errorf("max error for %s = %.1f%%", app, e)
		}
	}
}

func TestCommAwarePredictionsImproveSand(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation pipeline is compute-heavy")
	}
	rows, err := Run(profile.New(), PaperCases())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Case.App.Name() {
		case "sand":
			// Sand is under-predicted because the base model drops the
			// dispatch/communication term; adding it back must shrink
			// the error.
			if r.CommAwareErrPct >= r.TimeErrPct {
				t.Errorf("%s: comm-aware error %.1f%% not below base %.1f%%",
					r.Case.Name(), r.CommAwareErrPct, r.TimeErrPct)
			}
		case "x264":
			// No communication: the extension must not change x264.
			if r.CommAwareTime != r.PredictedTime {
				t.Errorf("%s: comm model changed an independent app", r.Case.Name())
			}
		}
		if r.CommAwareTime < r.PredictedTime {
			t.Errorf("%s: comm-aware time below base prediction", r.Case.Name())
		}
	}
}
