// Package workload defines the abstractions that connect elastic
// applications to CELIA's models and to the cloud simulator: problem
// parameters (size n and accuracy a), the App interface each elastic
// application implements, and the execution Plan the simulator
// schedules.
//
// The paper studies applications whose result accuracy is a function of
// resource consumption; each app therefore exposes a resource-demand
// function D(n, a) and a scale-down kernel that actually executes and is
// measured with simulated perf counters.
package workload

import (
	"fmt"

	"repro/internal/ec2"
	"repro/internal/perf"
	"repro/internal/units"
)

// Params identifies one problem instance P_{n,a}: problem size N and
// accuracy A. Units are app-specific (x264: clips and compression factor
// f; galaxy: masses and simulation steps s; sand: candidate sequences
// and quality threshold t).
type Params struct {
	N float64 // problem size n
	A float64 // accuracy a
}

func (p Params) String() string { return fmt.Sprintf("(n=%g, a=%g)", p.N, p.A) }

// App is an elastic application. Implementations live in
// internal/apps/{x264,galaxy,sand}.
type App interface {
	// Name is the short identifier used in reports ("x264", "galaxy",
	// "sand").
	Name() string

	// AccuracyName is the paper's symbol for the accuracy parameter
	// ("f", "s", "t").
	AccuracyName() string

	// Domain reports the valid parameter ranges for this app (used to
	// validate queries and to build baseline grids).
	Domain() Domain

	// Demand is the application's ground-truth resource demand
	// D_{P_{n,a}} in retired instructions. CELIA never reads this
	// directly for prediction — it fits a model from baseline runs —
	// but the kernels and the cloud simulator are built on it, and
	// tests assert the fit recovers it.
	Demand(p Params) units.Instructions

	// RunBaseline executes the real scale-down kernel for p, accounting
	// retired instructions into acct. It fails if p is outside the
	// app's executable scale-down envelope.
	RunBaseline(p Params, acct *perf.Account) error

	// BaselineGrid returns the scale-down parameter grid used for
	// demand characterization (the paper's P_{n',a'} runs).
	BaselineGrid() []Params

	// Plan describes how the full-scale problem decomposes into
	// schedulable work for the cloud simulator.
	Plan(p Params) Plan

	// IPC reports the application's measured instructions-per-cycle per
	// vCPU on the given resource category. This is a property of the
	// application binary × micro-architecture pair (the paper measures
	// it via baseline runs; our simulated world defines it and the
	// profiling pipeline must recover it).
	IPC(cat ec2.Category) float64
}

// PlanKind classifies an app's parallel structure, which determines how
// the cloud simulator schedules it.
type PlanKind int

const (
	// Independent: embarrassingly parallel independent tasks with no
	// inter-node communication (x264 clip encoding).
	Independent PlanKind = iota
	// BSP: bulk-synchronous iterations with a global barrier and an
	// exchange per step (galaxy's MPI n-body).
	BSP
	// MasterWorker: a master dispatches tasks to pulling workers over a
	// work queue (sand on Work Queue).
	MasterWorker
)

func (k PlanKind) String() string {
	switch k {
	case Independent:
		return "independent"
	case BSP:
		return "bsp"
	case MasterWorker:
		return "master-worker"
	default:
		return fmt.Sprintf("PlanKind(%d)", int(k))
	}
}

// Plan is the schedulable decomposition of one problem instance.
// Exactly the fields relevant to Kind are meaningful.
type Plan struct {
	Kind PlanKind

	// Independent / MasterWorker: the task list. TaskInstr(i) is the
	// demand of task i; Σ TaskInstr(i) plus any fixed parts equals
	// Demand(p) (asserted by tests).
	Tasks     int
	TaskInstr func(i int) units.Instructions

	// BSP: Steps iterations over Elements divisible work units, each
	// unit costing InstrPerElement per step. CommBytesPerStep is the
	// per-step global exchange volume.
	Steps            int
	Elements         int
	InstrPerElement  units.Instructions
	CommBytesPerStep float64

	// MasterWorker: master-side serialized cost per task dispatch, and
	// input bytes shipped through the master's network link per task
	// (zero when workers fetch inputs themselves, as x264's do).
	DispatchInstr units.Instructions
	BytesPerTask  float64
}

// TotalInstr sums the plan's demand, which must equal the app's
// Demand(p) (modulo per-task rounding).
func (pl Plan) TotalInstr() units.Instructions {
	switch pl.Kind {
	case Independent, MasterWorker:
		var sum units.Instructions
		for i := 0; i < pl.Tasks; i++ {
			sum += pl.TaskInstr(i)
		}
		return sum
	case BSP:
		return units.Instructions(float64(pl.Steps) * float64(pl.Elements) * float64(pl.InstrPerElement))
	default:
		return 0
	}
}

// Validate checks internal consistency of the plan.
func (pl Plan) Validate() error {
	switch pl.Kind {
	case Independent:
		if pl.Tasks <= 0 || pl.TaskInstr == nil {
			return fmt.Errorf("workload: independent plan needs tasks (%d) and TaskInstr", pl.Tasks)
		}
	case MasterWorker:
		if pl.Tasks <= 0 || pl.TaskInstr == nil {
			return fmt.Errorf("workload: master-worker plan needs tasks (%d) and TaskInstr", pl.Tasks)
		}
	case BSP:
		if pl.Steps <= 0 || pl.Elements <= 0 || pl.InstrPerElement <= 0 {
			return fmt.Errorf("workload: bsp plan needs steps (%d), elements (%d), instr/element (%v)",
				pl.Steps, pl.Elements, pl.InstrPerElement)
		}
	default:
		return fmt.Errorf("workload: unknown plan kind %v", pl.Kind)
	}
	return nil
}

// Domain bounds the valid parameters of an app and its executable
// scale-down envelope.
type Domain struct {
	MinN, MaxN float64 // valid problem-size range for model queries
	MinA, MaxA float64 // valid accuracy range for model queries
	// Scale-down envelope: the largest baseline the kernel will
	// actually execute (RunBaseline rejects larger requests).
	MaxBaselineN, MaxBaselineA float64
}

// CheckParams validates p against the model-query domain.
func (d Domain) CheckParams(p Params) error {
	if p.N < d.MinN || p.N > d.MaxN {
		return fmt.Errorf("workload: n=%g outside [%g, %g]", p.N, d.MinN, d.MaxN)
	}
	if p.A < d.MinA || p.A > d.MaxA {
		return fmt.Errorf("workload: a=%g outside [%g, %g]", p.A, d.MinA, d.MaxA)
	}
	return nil
}

// CheckBaseline validates p against the executable scale-down envelope.
func (d Domain) CheckBaseline(p Params) error {
	if p.N <= 0 || p.N > d.MaxBaselineN {
		return fmt.Errorf("workload: baseline n=%g outside (0, %g]", p.N, d.MaxBaselineN)
	}
	if p.A < d.MinA || p.A > d.MaxBaselineA {
		return fmt.Errorf("workload: baseline a=%g outside [%g, %g]", p.A, d.MinA, d.MaxBaselineA)
	}
	return nil
}
