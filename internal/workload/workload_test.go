package workload

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestPlanKindString(t *testing.T) {
	cases := []struct {
		k    PlanKind
		want string
	}{
		{Independent, "independent"},
		{BSP, "bsp"},
		{MasterWorker, "master-worker"},
		{PlanKind(99), "PlanKind(99)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int(c.k), got, c.want)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	ok := Plan{Kind: Independent, Tasks: 3, TaskInstr: func(int) units.Instructions { return 1 }}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{Kind: Independent, Tasks: 0, TaskInstr: func(int) units.Instructions { return 1 }},
		{Kind: Independent, Tasks: 3},
		{Kind: MasterWorker, Tasks: -1, TaskInstr: func(int) units.Instructions { return 1 }},
		{Kind: BSP, Steps: 0, Elements: 10, InstrPerElement: 1},
		{Kind: BSP, Steps: 10, Elements: 0, InstrPerElement: 1},
		{Kind: BSP, Steps: 10, Elements: 10, InstrPerElement: 0},
		{Kind: PlanKind(42)},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid plan %d accepted", i)
		}
	}
}

func TestPlanTotalInstr(t *testing.T) {
	indep := Plan{Kind: Independent, Tasks: 4, TaskInstr: func(i int) units.Instructions {
		return units.Instructions(10 * (i + 1))
	}}
	if got := float64(indep.TotalInstr()); got != 100 {
		t.Fatalf("independent total = %v, want 100", got)
	}
	bsp := Plan{Kind: BSP, Steps: 3, Elements: 5, InstrPerElement: 7}
	if got := float64(bsp.TotalInstr()); got != 105 {
		t.Fatalf("bsp total = %v, want 105", got)
	}
	if got := float64(Plan{Kind: PlanKind(42)}.TotalInstr()); got != 0 {
		t.Fatalf("unknown kind total = %v, want 0", got)
	}
}

func TestDomainCheckParams(t *testing.T) {
	d := Domain{MinN: 10, MaxN: 100, MinA: 1, MaxA: 5, MaxBaselineN: 20, MaxBaselineA: 2}
	if err := d.CheckParams(Params{N: 50, A: 3}); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for _, p := range []Params{{N: 5, A: 3}, {N: 500, A: 3}, {N: 50, A: 0}, {N: 50, A: 9}} {
		if err := d.CheckParams(p); err == nil {
			t.Errorf("out-of-domain %v accepted", p)
		}
	}
}

func TestDomainCheckBaseline(t *testing.T) {
	d := Domain{MinN: 10, MaxN: 100, MinA: 1, MaxA: 5, MaxBaselineN: 20, MaxBaselineA: 2}
	if err := d.CheckBaseline(Params{N: 15, A: 2}); err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}
	// Baseline sizes may go below MinN (scale-down), but not above the
	// envelope or to zero.
	if err := d.CheckBaseline(Params{N: 5, A: 1}); err != nil {
		t.Fatalf("scale-down below MinN rejected: %v", err)
	}
	for _, p := range []Params{{N: 0, A: 1}, {N: 25, A: 1}, {N: 15, A: 3}} {
		if err := d.CheckBaseline(p); err == nil {
			t.Errorf("out-of-envelope %v accepted", p)
		}
	}
}

func TestParamsString(t *testing.T) {
	s := Params{N: 65536, A: 8000}.String()
	if !strings.Contains(s, "65536") || !strings.Contains(s, "8000") {
		t.Fatalf("Params.String() = %q", s)
	}
}
