package spot

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/x264"
	"repro/internal/cloudsim"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ec2"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

func newMarket(t *testing.T) *Market {
	t.Helper()
	m, err := NewMarket(ec2.Oregon(), DefaultMarket(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMarketValidation(t *testing.T) {
	if _, err := NewMarket(nil, DefaultMarket(), 1); err == nil {
		t.Fatal("nil catalog accepted")
	}
	bad := DefaultMarket()
	bad.MeanFraction = 0
	if _, err := NewMarket(ec2.Oregon(), bad, 1); err == nil {
		t.Fatal("zero mean fraction accepted")
	}
	bad = DefaultMarket()
	bad.StepMinutes = 0
	if _, err := NewMarket(ec2.Oregon(), bad, 1); err == nil {
		t.Fatal("zero step accepted")
	}
	bad = DefaultMarket()
	bad.SpikeProb = 1.5
	if _, err := NewMarket(ec2.Oregon(), bad, 1); err == nil {
		t.Fatal("spike probability > 1 accepted")
	}
}

func TestHistoryDeterministicAndBounded(t *testing.T) {
	m := newMarket(t)
	h1 := m.History(0, units.FromHours(24))
	h2 := m.History(0, units.FromHours(24))
	if len(h1) != len(h2) || len(h1) < 100 {
		t.Fatalf("history lengths %d/%d", len(h1), len(h2))
	}
	onDemand := float64(ec2.Oregon().Type(0).Price)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("history not deterministic")
		}
		p := float64(h1[i])
		if p <= 0 || p > 10*onDemand {
			t.Fatalf("price %v out of bounds", p)
		}
	}
}

func TestHistoryMeanNearTarget(t *testing.T) {
	m := newMarket(t)
	h := m.History(0, units.FromHours(24*30))
	var sum float64
	for _, p := range h {
		sum += float64(p)
	}
	mean := sum / float64(len(h))
	onDemand := float64(ec2.Oregon().Type(0).Price)
	frac := mean / onDemand
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("long-run spot fraction %.2f, want near %.2f", frac, DefaultMarket().MeanFraction)
	}
}

func TestHistoriesDifferByType(t *testing.T) {
	m := newMarket(t)
	h0 := m.History(0, units.FromHours(6))
	h5 := m.History(5, units.FromHours(6))
	same := true
	for i := range h0 {
		if float64(h0[i])/float64(ec2.Oregon().Type(0).Price) !=
			float64(h5[i])/float64(ec2.Oregon().Type(5).Price) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different types share an identical normalized price path")
	}
}

func TestInterruptionRateMonotoneInBid(t *testing.T) {
	m := newMarket(t)
	horizon := units.FromHours(24 * 7)
	onDemand := units.USDPerHour(ec2.Oregon().Type(0).Price)
	low := m.InterruptionRate(0, horizon, onDemand*0.2)
	mid := m.InterruptionRate(0, horizon, onDemand)
	high := m.InterruptionRate(0, horizon, onDemand*20)
	if !(low >= mid && mid >= high) {
		t.Fatalf("interruption rate not monotone in bid: %v %v %v", low, mid, high)
	}
	if high != 0 {
		t.Fatalf("absurdly high bid still interrupted: %v", high)
	}
	if low <= 0 {
		t.Fatal("lowball bid never interrupted")
	}
}

func TestQuantileOrdering(t *testing.T) {
	m := newMarket(t)
	horizon := units.FromHours(24 * 7)
	q1 := float64(m.Quantile(0, horizon, 0.1))
	q5 := float64(m.Quantile(0, horizon, 0.5))
	q9 := float64(m.Quantile(0, horizon, 0.9))
	if !(q1 <= q5 && q5 <= q9) {
		t.Fatalf("quantiles out of order: %v %v %v", q1, q5, q9)
	}
}

func TestEvaluatePlan(t *testing.T) {
	m := newMarket(t)
	caps := model.FromIPC(ec2.Oregon(), galaxy.App{})
	e := NewEvaluator(m, caps)
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 4000})
	tuple := config.MustTuple(5, 5, 0, 0, 0, 0, 0, 0, 0)
	plan, err := e.Evaluate(d, tuple, units.FromHours(48))
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExpectedTime < plan.BaseTime {
		t.Fatal("expected time below uninterrupted time")
	}
	if plan.ExpectedSpotCost <= 0 || plan.OnDemandCost <= 0 {
		t.Fatalf("non-positive costs: %+v", plan)
	}
	// Spot should be much cheaper in expectation at default market.
	if float64(plan.ExpectedSpotCost) > 0.8*float64(plan.OnDemandCost) {
		t.Fatalf("spot cost %v not meaningfully below on-demand %v",
			plan.ExpectedSpotCost, plan.OnDemandCost)
	}
	if plan.DeadlineProb <= 0 || plan.DeadlineProb > 1 {
		t.Fatalf("deadline probability %v", plan.DeadlineProb)
	}
}

func TestEvaluateRejectsEmptyConfig(t *testing.T) {
	m := newMarket(t)
	caps := model.FromIPC(ec2.Oregon(), galaxy.App{})
	e := NewEvaluator(m, caps)
	_, err := e.Evaluate(units.GI(100), config.MustTuple(0, 0, 0, 0, 0, 0, 0, 0, 0), units.FromHours(1))
	if err == nil {
		t.Fatal("empty configuration accepted")
	}
}

func TestEvaluateRejectsBadEvaluator(t *testing.T) {
	m := newMarket(t)
	caps := model.FromIPC(ec2.Oregon(), galaxy.App{})
	e := NewEvaluator(m, caps)
	e.Checkpoint = 0
	_, err := e.Evaluate(units.GI(100), config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0), units.FromHours(1))
	if err == nil {
		t.Fatal("zero checkpoint accepted")
	}
}

func TestDeadlineProbabilityBasics(t *testing.T) {
	// Base beyond deadline: impossible.
	if p := deadlineProbability(10, 5, 0.1, 1); p != 0 {
		t.Fatalf("p = %v, want 0", p)
	}
	// No interruptions: certain.
	if p := deadlineProbability(5, 10, 0, 1); p != 1 {
		t.Fatalf("p = %v, want 1", p)
	}
	// More slack → higher probability.
	p1 := deadlineProbability(5, 6, 0.01, 10)
	p2 := deadlineProbability(5, 50, 0.01, 10)
	if p2 <= p1 {
		t.Fatalf("more slack did not raise probability: %v vs %v", p1, p2)
	}
}

func TestDeadlineProbabilityMonotoneProperty(t *testing.T) {
	f := func(rate8 uint8, penalty8 uint8) bool {
		rate := float64(rate8%100) / 1e5
		penalty := units.Seconds(penalty8%50) + 1
		p1 := deadlineProbability(10, 20, rate, penalty)
		p2 := deadlineProbability(10, 40, rate, penalty)
		return p2 >= p1-1e-12 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendFromFrontier(t *testing.T) {
	// The realistic workflow: take CELIA's Pareto frontier, then let
	// the spot evaluator decide on-demand vs spot.
	eng := core.NewPaperEngine(galaxy.App{})
	p := workload.Params{N: 65536, A: 8000}
	deadline := units.FromHours(24)
	an, err := eng.Analyze(p, core.Constraints{Deadline: deadline, Budget: 350}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var candidates []config.Tuple
	for _, f := range an.Frontier {
		candidates = append(candidates, f.Config)
	}
	m := newMarket(t)
	e := NewEvaluator(m, eng.Capacities())
	d, _ := eng.Demand(p)
	rec, err := e.Recommend(d, candidates, deadline, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if float64(rec.OnDemand.OnDemandCost) <= 0 {
		t.Fatal("no on-demand recommendation")
	}
	if rec.UseSpot {
		if rec.Spot.DeadlineProb < 0.9 {
			t.Fatalf("spot recommendation below confidence: %v", rec.Spot.DeadlineProb)
		}
		if rec.SavingPct <= 0 {
			t.Fatalf("spot recommended without savings: %v", rec.SavingPct)
		}
	}
}

func TestRecommendNoCandidates(t *testing.T) {
	m := newMarket(t)
	e := NewEvaluator(m, model.FromIPC(ec2.Oregon(), galaxy.App{}))
	if _, err := e.Recommend(units.GI(1), nil, units.FromHours(1), 0.9); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestRecommendImpossibleDeadline(t *testing.T) {
	m := newMarket(t)
	eng := core.NewPaperEngine(galaxy.App{})
	e := NewEvaluator(m, eng.Capacities())
	d, _ := eng.Demand(workload.Params{N: 262144, A: 10000})
	_, err := e.Recommend(d, []config.Tuple{config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0)},
		units.FromHours(1), 0.9)
	if err == nil {
		t.Fatal("impossible deadline accepted")
	}
}

func TestQuantileSortedHelper(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := quantileSorted(xs, 0.5); got != 2 {
		t.Fatalf("median = %v", got)
	}
	if !math.IsNaN(quantileSorted(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
}

func TestInterruptionTraceTargetsTupleOrder(t *testing.T) {
	// A bid below the market floor is out-priced at step 0: every
	// instance of every provisioned type dies at t=0, numbered exactly
	// as the simulator provisions them (tuple order).
	m := newMarket(t)
	tuple := config.MustTuple(2, 0, 1, 0, 0, 0, 0, 0, 0)
	tr := m.InterruptionTrace(tuple, 0.001, units.FromHours(2))
	if tr.Len() != 3 {
		t.Fatalf("trace has %d events, want 3 (all instances)", tr.Len())
	}
	if err := tr.Validate(3); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, e := range tr.Events() {
		if e.At != 0 {
			t.Fatalf("hopeless bid interrupted at %v, want 0", e.At)
		}
		seen[e.Instance] = true
	}
	for i := 0; i < 3; i++ {
		if !seen[i] {
			t.Fatalf("instance %d missing from trace %v", i, tr)
		}
	}
}

func TestInterruptionTraceBidAboveMarketIsEmpty(t *testing.T) {
	// Bidding 10× on-demand clears every spike: no interruptions.
	m := newMarket(t)
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	tr := m.InterruptionTrace(tuple, 10.001, units.FromHours(48))
	if !tr.Empty() {
		t.Fatalf("sky-high bid still interrupted: %v", tr)
	}
}

func TestInterruptionTraceWholeTypeDiesTogether(t *testing.T) {
	// All instances of one type share its price history, so they die at
	// the same instant; a bid near the long-run mean is crossed within a
	// long horizon.
	m := newMarket(t)
	tuple := config.MustTuple(3, 0, 0, 0, 0, 0, 0, 0, 0)
	tr := m.InterruptionTrace(tuple, 0.26, units.FromHours(72))
	if tr.Empty() {
		t.Skip("market never crossed a mean-level bid over 72h (seed-dependent)")
	}
	if tr.Len() != 3 {
		t.Fatalf("partial type loss: %d events, want all 3 instances", tr.Len())
	}
	at := tr.Events()[0].At
	for _, e := range tr.Events() {
		if e.At != at {
			t.Fatalf("type instances die at different times: %v", tr)
		}
	}
	// Deterministic replay.
	again := m.InterruptionTrace(tuple, 0.26, units.FromHours(72))
	if again.Len() != tr.Len() || again.Events()[0] != tr.Events()[0] {
		t.Fatal("interruption trace not deterministic")
	}
}

func TestInterruptionTraceDrivesSimulatorTermination(t *testing.T) {
	// The derived trace feeds straight into the simulator: a strict
	// gang-scheduled job dies on a spot interruption, and a recovering
	// independent job survives when one of its two types is reclaimed.
	m := newMarket(t)
	cat := ec2.Oregon()
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	tr := m.InterruptionTrace(tuple, 0.001, units.FromHours(2))
	opts := cloudsim.DefaultOptions()
	opts.Trace = tr
	if _, err := cloudsim.Run(galaxy.App{}, workload.Params{N: 2048, A: 10}, tuple, cat, opts); err == nil {
		t.Fatal("strict BSP run survived a spot reclaim of its whole cluster")
	}
	opts.Recovery = faults.Recovery{Mode: faults.Recover, Respawn: true}
	res, err := cloudsim.Run(x264.App{}, workload.Params{N: 16, A: 20}, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Respawned != tr.Len() {
		t.Fatalf("respawned %d of %d reclaimed instances", res.Respawned, tr.Len())
	}
}
