// Package spot implements the spot-market extension CELIA's related
// work contrasts against (Marathe [20], Gong [7]): a simulated spot
// price process per instance type, a bid-based termination model, and
// a deadline-risk-aware configuration selector that trades the spot
// discount against the expected cost of interruptions.
//
// The paper's CELIA deliberately targets on-demand resources because
// spot interruptions make deadline guarantees hard; this package
// quantifies exactly that trade-off on top of the same time and cost
// models.
package spot

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/ec2"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/units"
)

// MarketParams shape the simulated price process: an Ornstein-
// Uhlenbeck-style mean-reverting walk around a fraction of the
// on-demand price, with occasional demand spikes — the qualitative
// structure reported for the 2017-era EC2 spot market [15].
type MarketParams struct {
	MeanFraction   float64 // long-run spot price / on-demand price
	Reversion      float64 // pull toward the mean per step (0..1)
	Volatility     float64 // step noise as a fraction of on-demand
	SpikeProb      float64 // probability a step is a demand spike
	SpikeMagnitude float64 // spike height as a fraction of on-demand
	StepMinutes    float64 // minutes per price step
}

// DefaultMarket returns parameters consistent with the 2017 studies:
// spot prices average ~25% of on-demand with rare spikes above it.
func DefaultMarket() MarketParams {
	return MarketParams{
		MeanFraction:   0.25,
		Reversion:      0.15,
		Volatility:     0.04,
		SpikeProb:      0.0015, // ~one above-on-demand spike per 2.3 days
		SpikeMagnitude: 1.6,
		StepMinutes:    5,
	}
}

// Validate rejects parameter combinations that break the process.
func (m MarketParams) Validate() error {
	if m.MeanFraction <= 0 || m.MeanFraction > 1 {
		return fmt.Errorf("spot: mean fraction %v outside (0, 1]", m.MeanFraction)
	}
	if m.Reversion <= 0 || m.Reversion > 1 {
		return fmt.Errorf("spot: reversion %v outside (0, 1]", m.Reversion)
	}
	if m.Volatility < 0 || m.SpikeProb < 0 || m.SpikeProb > 1 {
		return fmt.Errorf("spot: invalid volatility %v or spike probability %v", m.Volatility, m.SpikeProb)
	}
	if m.StepMinutes <= 0 {
		return fmt.Errorf("spot: non-positive step %v", m.StepMinutes)
	}
	return nil
}

// Market is a seeded spot-price history generator for one catalog.
// Histories are memoized: they are pure functions of (seed, type,
// horizon) and evaluators consult them repeatedly.
type Market struct {
	params  MarketParams
	catalog *ec2.Catalog
	seed    uint64

	mu    sync.Mutex
	cache map[histKey][]units.USDPerHour
}

type histKey struct {
	typeIdx int
	steps   int
}

// NewMarket builds a market over the catalog.
func NewMarket(cat *ec2.Catalog, params MarketParams, seed uint64) (*Market, error) {
	if cat == nil {
		return nil, fmt.Errorf("spot: nil catalog")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Market{params: params, catalog: cat, seed: seed, cache: map[histKey][]units.USDPerHour{}}, nil
}

// History generates the spot price series for one type over a horizon.
// Deterministic for a (seed, type, horizon) triple.
func (m *Market) History(typeIdx int, horizon units.Seconds) []units.USDPerHour {
	typ := m.catalog.Type(typeIdx)
	//lint:allow unitsafe the price process is a raw stochastic walk around the on-demand level, not typed arithmetic
	onDemand := float64(typ.Price)
	step := units.Seconds(m.params.StepMinutes * 60)
	steps := int(horizon/step) + 1
	key := histKey{typeIdx, steps}
	m.mu.Lock()
	if h, ok := m.cache[key]; ok {
		m.mu.Unlock()
		return h
	}
	m.mu.Unlock()
	out := make([]units.USDPerHour, steps)
	price := onDemand * m.params.MeanFraction
	base := m.seed*2654435761 + uint64(typeIdx)*97
	for s := 0; s < steps; s++ {
		u1 := apps.Hash01(base + uint64(s)*3)
		u2 := apps.Hash01(base + uint64(s)*3 + 1)
		uSpike := apps.Hash01(base + uint64(s)*3 + 2)
		// Box-Muller for a normal shock.
		z := math.Sqrt(-2*math.Log(math.Max(u1, 1e-12))) * math.Cos(2*math.Pi*u2)
		mean := onDemand * m.params.MeanFraction
		price += m.params.Reversion*(mean-price) + m.params.Volatility*onDemand*z
		if uSpike < m.params.SpikeProb {
			price = onDemand * m.params.SpikeMagnitude
		}
		// The market floor is a nominal minimum; spot never exceeds
		// 10x on-demand in practice.
		price = math.Max(price, 0.1*mean)
		price = math.Min(price, 10*onDemand)
		out[s] = units.USDPerHour(price)
	}
	m.mu.Lock()
	m.cache[key] = out
	m.mu.Unlock()
	return out
}

// Quantile reports the q-quantile of a type's price over the horizon.
func (m *Market) Quantile(typeIdx int, horizon units.Seconds, q float64) units.USDPerHour {
	h := m.History(typeIdx, horizon)
	sorted := make([]float64, len(h))
	for i, p := range h {
		sorted[i] = float64(p) //lint:allow unitsafe quantile kernel sorts raw float64; the result is re-typed on return
	}
	// Insertion-free selection via sort.
	return units.USDPerHour(quantileSorted(sorted, q))
}

func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if hi >= len(xs) {
		return xs[len(xs)-1]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// InterruptionRate estimates the per-hour rate at which a bid at `bid`
// is out-priced for the type: the rate of upward crossings of the bid
// level over the horizon. An instance terminates once per crossing —
// consecutive above-bid steps after a spike are one interruption, not
// many.
func (m *Market) InterruptionRate(typeIdx int, horizon units.Seconds, bid units.USDPerHour) float64 {
	h := m.History(typeIdx, horizon)
	if len(h) < 2 {
		return 0
	}
	crossings := 0
	for i := 1; i < len(h); i++ {
		if h[i] > bid && h[i-1] <= bid {
			crossings++
		}
	}
	// First step already above bid counts: the instance never starts.
	if h[0] > bid {
		crossings++
	}
	hours := float64(len(h)) * m.params.StepMinutes / 60
	return float64(crossings) / hours
}

// InterruptionTrace derives a failure trace for a cluster provisioned
// from the tuple (instances numbered in tuple order, matching the
// cloud simulator's provisioning) bidding bidFactor × on-demand on
// every type: each type's instances terminate together at the first
// moment the type's spot price exceeds the bid — the market
// reclaims all capacity of a type at once, the standard spot
// semantics. Types whose price never crosses the bid contribute no
// events. The trace is deterministic for a (market seed, tuple,
// bidFactor, horizon) quadruple and plugs directly into
// cloudsim.Options.Trace, which is how the spot and on-demand stories
// share one fault representation.
func (m *Market) InterruptionTrace(t config.Tuple, bidFactor float64, horizon units.Seconds) faults.Trace {
	var events []faults.Event
	id := 0
	for i := 0; i < t.Len(); i++ {
		n := t.Count(i)
		if n == 0 {
			continue
		}
		bid := units.USDPerHour(bidFactor) * m.catalog.Type(i).Price
		h := m.History(i, horizon)
		for s := range h {
			if h[s] > bid {
				at := units.Seconds(float64(s) * m.params.StepMinutes * 60)
				for k := 0; k < n; k++ {
					events = append(events, faults.Event{Instance: id + k, At: at})
				}
				break
			}
		}
		id += n
	}
	return faults.NewTrace(events...)
}

// Plan is a risk-adjusted spot execution plan for one configuration.
type Plan struct {
	Config config.Tuple
	// BaseTime is the uninterrupted execution time (on-demand model).
	BaseTime units.Seconds
	// ExpectedTime includes expected rework after interruptions with
	// periodic checkpointing (Marathe-style [20]).
	ExpectedTime units.Seconds
	// OnDemandCost and ExpectedSpotCost compare the two markets.
	OnDemandCost     units.USD
	ExpectedSpotCost units.USD
	// DeadlineProb is the probability the plan finishes before the
	// deadline given Poisson interruptions.
	DeadlineProb float64
	// Interruptions is the expected interruption count.
	Interruptions float64
}

// Evaluator prices configurations on the spot market.
type Evaluator struct {
	Market     *Market
	Caps       *model.Capacities
	Checkpoint units.Seconds // checkpoint interval (rework bound)
	BidFactor  float64       // bid = BidFactor × on-demand price
}

// NewEvaluator builds an evaluator with Marathe-style defaults: bid at
// the on-demand price, checkpoint hourly.
func NewEvaluator(market *Market, caps *model.Capacities) *Evaluator {
	return &Evaluator{Market: market, Caps: caps, Checkpoint: units.FromHours(1), BidFactor: 1.0}
}

// Evaluate prices one configuration for a demand under a deadline.
func (e *Evaluator) Evaluate(d units.Instructions, t config.Tuple, deadline units.Seconds) (Plan, error) {
	if e.Checkpoint <= 0 || e.BidFactor <= 0 {
		return Plan{}, fmt.Errorf("spot: invalid evaluator (checkpoint %v, bid factor %v)", e.Checkpoint, e.BidFactor)
	}
	pred := e.Caps.Predict(d, t)
	if pred.Time.IsInf() {
		return Plan{}, fmt.Errorf("spot: configuration %v has no capacity", t)
	}
	horizon := pred.Time * 3
	if deadline > 0 && deadline*3 > horizon {
		horizon = deadline * 3
	}

	cat := e.Caps.Catalog()
	// Cluster-level interruption hazard: any type's interruption kills
	// the step's progress back to the last checkpoint (gang-style MPI
	// assumption — conservative for independent tasks).
	var hazardPerHour float64
	var spotRate units.USDPerHour
	for i := 0; i < t.Len(); i++ {
		n := t.Count(i)
		if n == 0 {
			continue
		}
		bid := units.USDPerHour(e.BidFactor) * cat.Type(i).Price
		hazardPerHour += float64(n) * e.Market.InterruptionRate(i, horizon, bid)
		meanSpot := e.Market.Quantile(i, horizon, 0.5)
		spotRate += units.USDPerHour(n) * meanSpot
	}

	baseHours := pred.Time.Hours()
	interruptions := hazardPerHour * baseHours
	// Each interruption costs on average half a checkpoint interval of
	// rework plus a restart delay.
	const restartSec = 120
	penalty := e.Checkpoint/2 + restartSec
	rework := units.Seconds(interruptions) * penalty
	expTime := pred.Time + rework

	plan := Plan{
		Config:           t,
		BaseTime:         pred.Time,
		ExpectedTime:     expTime,
		OnDemandCost:     pred.Cost,
		ExpectedSpotCost: spotRate.PerSecond().Over(expTime),
		Interruptions:    interruptions,
	}
	if deadline > 0 {
		plan.DeadlineProb = deadlineProbability(pred.Time, deadline, hazardPerHour/3600, penalty)
	} else {
		plan.DeadlineProb = 1
	}
	return plan, nil
}

// deadlineProbability approximates P(finish ≤ deadline) when
// interruptions arrive as a Poisson process with the given per-second
// rate and each costs `penalty` seconds: the slack budget allows k* =
// ⌊(deadline − base)/penalty⌋ interruptions, so the probability is the
// Poisson CDF at k* with mean rate·base (exposure is approximated by
// the uninterrupted execution time; rework extends it, so this is
// slightly optimistic for tight deadlines).
func deadlineProbability(base, deadline units.Seconds, ratePerSec float64, penalty units.Seconds) float64 {
	if base > deadline {
		return 0
	}
	if ratePerSec <= 0 {
		return 1
	}
	slack := deadline - base
	kMax := int(slack / penalty)
	//lint:allow unitsafe the hazard is 1/s (no inverse-time unit type); exposure lambda = rate x time is dimensionless
	lambda := ratePerSec * float64(base)
	// Poisson CDF.
	p := math.Exp(-lambda)
	cdf := p
	for k := 1; k <= kMax; k++ {
		p *= lambda / float64(k)
		cdf += p
	}
	return math.Min(1, cdf)
}

// Recommendation compares the best on-demand and spot choices.
type Recommendation struct {
	OnDemand Plan
	Spot     Plan
	// SavingPct is the expected spot saving relative to on-demand cost
	// (negative when spot is expected to cost more).
	SavingPct float64
	// UseSpot is true when spot meets the confidence threshold and
	// saves money.
	UseSpot bool
}

// Recommend evaluates candidate configurations (e.g. a Pareto
// frontier) and recommends spot or on-demand execution at the given
// deadline-confidence threshold.
func (e *Evaluator) Recommend(d units.Instructions, candidates []config.Tuple,
	deadline units.Seconds, minConfidence float64) (Recommendation, error) {
	if len(candidates) == 0 {
		return Recommendation{}, fmt.Errorf("spot: no candidate configurations")
	}
	var rec Recommendation
	bestOD := units.USD(math.Inf(1))
	bestSpot := units.USD(math.Inf(1))
	foundOD := false
	foundSpot := false
	for _, t := range candidates {
		plan, err := e.Evaluate(d, t, deadline)
		if err != nil {
			return Recommendation{}, err
		}
		if plan.BaseTime < deadline && plan.OnDemandCost < bestOD {
			bestOD = plan.OnDemandCost
			rec.OnDemand = plan
			foundOD = true
		}
		if plan.DeadlineProb >= minConfidence && plan.ExpectedSpotCost < bestSpot {
			bestSpot = plan.ExpectedSpotCost
			rec.Spot = plan
			foundSpot = true
		}
	}
	if !foundOD {
		return Recommendation{}, fmt.Errorf("spot: no candidate meets the deadline on-demand")
	}
	if foundSpot {
		rec.SavingPct = (1 - float64(bestSpot/bestOD)) * 100
		rec.UseSpot = rec.SavingPct > 0
	}
	return rec, nil
}
