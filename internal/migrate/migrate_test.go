package migrate

import (
	"math"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

func setup(t *testing.T) (*model.Capacities, *config.Space) {
	t.Helper()
	eng := core.NewPaperEngine(galaxy.App{})
	return eng.Capacities(), eng.Space()
}

func TestStayWhenAlreadyOptimal(t *testing.T) {
	caps, space := setup(t)
	// The engine's own optimum for this remaining work and deadline:
	// migrating away from it can only add overhead.
	eng := core.NewPaperEngine(galaxy.App{})
	p := workload.Params{N: 65536, A: 8000}
	pred, ok, err := eng.MinCostForDeadline(p, units.FromHours(24))
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	d, _ := eng.Demand(p)
	dec, err := Advise(caps, space, State{
		Current:           pred.Config,
		RemainingDemand:   d,
		RemainingDeadline: units.FromHours(24),
	}, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Migrate {
		t.Fatalf("advised migrating away from the optimum: %+v", dec)
	}
	if !dec.StayMeetsDeadline {
		t.Fatal("optimum declared infeasible")
	}
}

func TestMigrateWhenDeadlineTightens(t *testing.T) {
	caps, space := setup(t)
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 8000})
	// Running on a small cluster that cannot finish 90% of the work in
	// the 10 hours suddenly remaining.
	current := config.MustTuple(0, 2, 0, 0, 0, 0, 0, 0, 0)
	dec, err := Advise(caps, space, State{
		Current:           current,
		RemainingDemand:   units.Instructions(0.9 * float64(d)),
		RemainingDeadline: units.FromHours(10),
	}, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if dec.StayMeetsDeadline {
		t.Fatalf("small cluster claims to meet 10h: %+v", dec)
	}
	if !dec.Migrate {
		t.Fatal("must migrate when staying misses the deadline")
	}
	if float64(dec.MoveTime) >= 10*3600 {
		t.Fatalf("migration target still misses the deadline: %v", dec.MoveTime)
	}
	if dec.Target == current {
		t.Fatal("migration target equals the current configuration")
	}
}

func TestMigrateWhenCheaperExists(t *testing.T) {
	caps, space := setup(t)
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 4000})
	// Running on an expensive all-r3 cluster with a loose deadline:
	// moving to c4 pays for the migration many times over.
	current := config.MustTuple(0, 0, 0, 0, 0, 0, 5, 5, 5)
	dec, err := Advise(caps, space, State{
		Current:           current,
		RemainingDemand:   d,
		RemainingDeadline: units.FromHours(72),
	}, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.StayMeetsDeadline {
		t.Fatal("r3 cluster should meet 72h")
	}
	if !dec.Migrate {
		t.Fatalf("should migrate off the expensive cluster: stay %v vs move %v",
			dec.StayCost, dec.MoveCost)
	}
	if float64(dec.MoveCost) >= float64(dec.StayCost) {
		t.Fatalf("migration not cheaper: %v vs %v", dec.MoveCost, dec.StayCost)
	}
}

func TestStayWhenOverheadDominates(t *testing.T) {
	caps, space := setup(t)
	var app galaxy.App
	// Nearly done: only 1% of a small job remains; any migration
	// overhead dwarfs the possible saving.
	d := units.Instructions(0.01 * float64(app.Demand(workload.Params{N: 32768, A: 1000})))
	current := config.MustTuple(0, 0, 0, 0, 0, 0, 2, 0, 0) // r3, inefficient
	huge := Overheads{Checkpoint: 3600, Restore: 3600}
	dec, err := Advise(caps, space, State{
		Current:           current,
		RemainingDemand:   d,
		RemainingDeadline: units.FromHours(24),
	}, huge)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Migrate {
		t.Fatalf("advised a migration that cannot pay off: %+v", dec)
	}
}

func TestAdviseValidation(t *testing.T) {
	caps, space := setup(t)
	ok := State{
		Current:           config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0),
		RemainingDemand:   units.GI(100),
		RemainingDeadline: units.FromHours(1),
	}
	bad := []State{
		{Current: ok.Current, RemainingDemand: 0, RemainingDeadline: ok.RemainingDeadline},
		{Current: ok.Current, RemainingDemand: ok.RemainingDemand, RemainingDeadline: 0},
		{Current: config.MustTuple(9, 0, 0, 0, 0, 0, 0, 0, 0), RemainingDemand: ok.RemainingDemand, RemainingDeadline: ok.RemainingDeadline},
	}
	for i, st := range bad {
		if _, err := Advise(caps, space, st, DefaultOverheads()); err == nil {
			t.Errorf("bad state %d accepted", i)
		}
	}
	if _, err := Advise(caps, space, ok, Overheads{Checkpoint: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
	if _, err := Advise(caps, space, ok, DefaultOverheads()); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
}

func TestNoTargetAtImpossibleDeadline(t *testing.T) {
	caps, space := setup(t)
	var app galaxy.App
	d := app.Demand(workload.Params{N: 262144, A: 10000})
	dec, err := Advise(caps, space, State{
		Current:           config.MustTuple(1, 0, 0, 0, 0, 0, 0, 0, 0),
		RemainingDemand:   d,
		RemainingDeadline: units.FromHours(1),
	}, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Migrate {
		t.Fatal("advised migrating with no feasible target")
	}
	if !math.IsInf(float64(dec.MoveCost), 1) {
		t.Fatalf("move cost = %v, want +Inf", dec.MoveCost)
	}
}

func TestMoveCostAccountsOverheads(t *testing.T) {
	caps, space := setup(t)
	var app galaxy.App
	d := app.Demand(workload.Params{N: 65536, A: 4000})
	current := config.MustTuple(0, 0, 0, 0, 0, 0, 5, 5, 5)
	st := State{Current: current, RemainingDemand: d, RemainingDeadline: units.FromHours(72)}
	cheap, err := Advise(caps, space, st, Overheads{})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Advise(caps, space, st, Overheads{Checkpoint: 600, Restore: 600})
	if err != nil {
		t.Fatal(err)
	}
	if float64(costly.MoveCost) <= float64(cheap.MoveCost) {
		t.Fatalf("overheads did not raise move cost: %v vs %v", costly.MoveCost, cheap.MoveCost)
	}
}
