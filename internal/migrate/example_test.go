package migrate_test

import (
	"fmt"

	"repro/internal/apps/galaxy"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/migrate"
	"repro/internal/units"
	"repro/internal/workload"
)

// Example shows a mid-run rescue: a job on an expensive memory-
// optimized cluster is moved to a compute-optimized mix.
func Example() {
	engine := core.NewPaperEngine(galaxy.App{})
	demand, _ := engine.Demand(workload.Params{N: 65536, A: 4000})
	decision, _ := migrate.Advise(engine.Capacities(), engine.Space(), migrate.State{
		Current:           config.MustTuple(0, 0, 0, 0, 0, 0, 5, 5, 5), // all-r3
		RemainingDemand:   demand,
		RemainingDeadline: units.FromHours(72),
	}, migrate.DefaultOverheads())
	fmt.Printf("migrate: %v (stay %v vs move %v)\n",
		decision.Migrate, decision.StayCost, decision.MoveCost)
	// Output: migrate: true (stay $95.41 vs move $47.70)
}
