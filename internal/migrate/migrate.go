// Package migrate implements the resource-migration capability the
// paper positions CELIA as complementary to (Kokkinos [13], Sharma
// [24]): given an application already running on some configuration,
// decide whether moving the remaining work to a different
// configuration lowers the remaining cost while still meeting the
// deadline, accounting for the migration overhead (checkpoint on the
// old cluster, boot and restore on the new one).
package migrate

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/units"
)

// Overheads models the cost of moving.
type Overheads struct {
	// Checkpoint is the time to snapshot state on the current cluster
	// (billed at the current configuration's rate).
	Checkpoint units.Seconds
	// Restore is boot + state restore time on the target cluster
	// (billed at the target configuration's rate).
	Restore units.Seconds
}

// DefaultOverheads reflects a memory-image checkpoint over the
// paper-era network: a few minutes each way.
func DefaultOverheads() Overheads {
	return Overheads{Checkpoint: 120, Restore: 300}
}

// State describes the running execution.
type State struct {
	Current config.Tuple
	// RemainingDemand is the unexecuted instruction count.
	RemainingDemand units.Instructions
	// RemainingDeadline is the time left until T′.
	RemainingDeadline units.Seconds
}

// Decision is the advisor's output. Costs cover only the remaining
// execution (sunk cost is irrelevant to the decision).
type Decision struct {
	Migrate           bool
	Target            config.Tuple  // equals State.Current when Migrate is false
	StayCost          units.USD     // remaining cost if staying
	StayTime          units.Seconds // remaining time if staying (+Inf if the deadline is missed)
	MoveCost          units.USD     // checkpoint + restore + remaining run on Target
	MoveTime          units.Seconds
	StayMeetsDeadline bool
}

// Advise finds the cheapest way to finish. It scans the whole space in
// parallel (migration decisions are rare; exactness matters more than
// microseconds) and compares against staying put.
func Advise(caps *model.Capacities, space *config.Space, st State, ov Overheads) (Decision, error) {
	if st.RemainingDemand <= 0 {
		return Decision{}, fmt.Errorf("migrate: nothing left to run (demand %v)", st.RemainingDemand)
	}
	if st.RemainingDeadline <= 0 {
		return Decision{}, fmt.Errorf("migrate: deadline already passed")
	}
	if !space.Contains(st.Current) {
		return Decision{}, fmt.Errorf("migrate: current configuration %v not in the space", st.Current)
	}
	if ov.Checkpoint < 0 || ov.Restore < 0 {
		return Decision{}, fmt.Errorf("migrate: negative overheads %+v", ov)
	}

	dec := Decision{Target: st.Current}
	stay := caps.Predict(st.RemainingDemand, st.Current)
	dec.StayTime = stay.Time
	dec.StayCost = stay.Cost
	dec.StayMeetsDeadline = float64(stay.Time) < float64(st.RemainingDeadline)

	// Candidate targets must absorb checkpoint+restore and still beat
	// the deadline. The checkpoint is paid on the current cluster; the
	// restore and the run on the target.
	ckptCost := caps.UnitCost(st.Current).Over(ov.Checkpoint)
	budgetTime := float64(st.RemainingDeadline) - float64(ov.Checkpoint) - float64(ov.Restore)
	df := float64(st.RemainingDemand)
	wT, costT := caps.NodeArrays()
	w := make([]float64, len(wT))
	nodeCost := make([]float64, len(costT))
	for i := range wT {
		w[i] = float64(wT[i])
		nodeCost[i] = float64(costT[i])
	}

	workers := runtime.GOMAXPROCS(0)
	type best struct {
		cost float64
		t    config.Tuple
		ok   bool
	}
	bests := make([]best, workers)
	for i := range bests {
		bests[i].cost = math.Inf(1)
	}
	if budgetTime > 0 {
		space.ForEachParallel(workers, func(worker int, t config.Tuple) {
			var u, cu float64
			for i := 0; i < t.Len(); i++ {
				if m := t.Count(i); m > 0 {
					fm := float64(m)
					u += fm * w[i]
					cu += fm * nodeCost[i]
				}
			}
			T := df / u
			if T >= budgetTime {
				return
			}
			c := cu / 3600 * (T + float64(ov.Restore))
			b := &bests[worker]
			//lint:allow floateq exact argmin tie: ulp-equal costs resolve lexicographically by tuple, deterministic either way
			if c < b.cost || (c == b.cost && b.ok && t.String() < b.t.String()) {
				b.cost, b.t, b.ok = c, t, true
			}
		})
	}
	bestMove := best{cost: math.Inf(1)}
	for _, b := range bests {
		//lint:allow floateq exact argmin tie: ulp-equal costs resolve lexicographically by tuple, deterministic either way
		if b.ok && (b.cost < bestMove.cost || (b.cost == bestMove.cost && bestMove.ok && b.t.String() < bestMove.t.String())) {
			bestMove = b
		}
	}

	if !bestMove.ok {
		// No migration target exists; stay (feasible or not).
		dec.MoveCost = units.USD(math.Inf(1))
		dec.MoveTime = units.Seconds(math.Inf(1))
		return dec, nil
	}
	movePred := caps.Predict(st.RemainingDemand, bestMove.t)
	dec.MoveTime = units.Seconds(float64(ov.Checkpoint)+float64(ov.Restore)) + movePred.Time
	dec.MoveCost = ckptCost + caps.UnitCost(bestMove.t).Over(ov.Restore) + movePred.Cost

	// Migrate when staying misses the deadline, or when moving is
	// strictly cheaper while both meet it.
	switch {
	case !dec.StayMeetsDeadline:
		dec.Migrate = true
		dec.Target = bestMove.t
	case float64(dec.MoveCost) < float64(dec.StayCost):
		dec.Migrate = true
		dec.Target = bestMove.t
	}
	return dec, nil
}
