// Package bsp is a small bulk-synchronous-parallel runtime: a fixed
// gang of ranks executes a sequence of supersteps separated by
// barriers, the execution model of the paper's MPI n-body application.
// The galaxy kernel runs its real baseline integration on it, so the
// measured baselines exercise the same rank/barrier structure the
// cloud simulator schedules at full scale.
package bsp

import (
	"fmt"
	"sync"
)

// Barrier is a reusable cyclic barrier for a fixed party count.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	round uint64
}

// NewBarrier creates a barrier for n parties (n ≥ 1).
func NewBarrier(n int) (*Barrier, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bsp: barrier party count %d", n)
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b, nil
}

// Await blocks until all n parties have called Await for the current
// round, then releases them together.
func (b *Barrier) Await() {
	b.mu.Lock()
	round := b.round
	b.count++
	if b.count == b.n {
		b.count = 0
		b.round++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for round == b.round {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Run executes steps supersteps over a gang of `ranks` goroutines. In
// every superstep each rank runs fn(rank, step) exactly once; a global
// barrier separates consecutive supersteps, so writes made in step s
// are visible to every rank in step s+1 (the barrier's lock ordering
// provides the happens-before edge).
func Run(ranks, steps int, fn func(rank, step int)) error {
	if ranks <= 0 {
		return fmt.Errorf("bsp: %d ranks", ranks)
	}
	if steps < 0 {
		return fmt.Errorf("bsp: %d steps", steps)
	}
	if fn == nil {
		return fmt.Errorf("bsp: nil step function")
	}
	if steps == 0 {
		return nil
	}
	bar, err := NewBarrier(ranks)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				fn(rank, s)
				bar.Await()
			}
		}(r)
	}
	wg.Wait()
	return nil
}

// Split partitions [0, n) into `parts` contiguous ranges as evenly as
// possible; part p owns [Split(n, parts, p)). Useful for block
// decomposition of loop ranges across ranks.
func Split(n, parts, p int) (lo, hi int) {
	if parts <= 0 || p < 0 || p >= parts {
		return 0, 0
	}
	base := n / parts
	rem := n % parts
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
