package bsp

import (
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryRankStep(t *testing.T) {
	const ranks, steps = 7, 11
	var calls [ranks][steps]atomic.Int32
	err := Run(ranks, steps, func(r, s int) {
		calls[r][s].Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		for s := 0; s < steps; s++ {
			if got := calls[r][s].Load(); got != 1 {
				t.Fatalf("rank %d step %d ran %d times", r, s, got)
			}
		}
	}
}

func TestBarrierSeparatesSteps(t *testing.T) {
	// No rank may enter step s+1 before every rank finished step s:
	// track a per-step completion counter and assert entry sees the
	// previous step complete.
	const ranks, steps = 8, 20
	var done [steps]atomic.Int32
	violated := atomic.Bool{}
	err := Run(ranks, steps, func(r, s int) {
		if s > 0 && done[s-1].Load() != ranks {
			violated.Store(true)
		}
		done[s].Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if violated.Load() {
		t.Fatal("a rank entered step s+1 before step s completed everywhere")
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(0, 1, func(int, int) {}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if err := Run(1, -1, func(int, int) {}); err == nil {
		t.Fatal("negative steps accepted")
	}
	if err := Run(1, 1, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	if err := Run(3, 0, func(int, int) {}); err != nil {
		t.Fatalf("zero steps should be a no-op: %v", err)
	}
}

func TestBarrierReuse(t *testing.T) {
	b, err := NewBarrier(3)
	if err != nil {
		t.Fatal(err)
	}
	var passed atomic.Int32
	const rounds = 50
	doneCh := make(chan struct{})
	for g := 0; g < 3; g++ {
		go func() {
			for i := 0; i < rounds; i++ {
				b.Await()
				passed.Add(1)
			}
			doneCh <- struct{}{}
		}()
	}
	for g := 0; g < 3; g++ {
		<-doneCh
	}
	if got := passed.Load(); got != 3*rounds {
		t.Fatalf("passed = %d, want %d", got, 3*rounds)
	}
}

func TestNewBarrierValidation(t *testing.T) {
	if _, err := NewBarrier(0); err == nil {
		t.Fatal("zero parties accepted")
	}
}

func TestSplitCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 101} {
		for _, parts := range []int{1, 2, 3, 8} {
			covered := 0
			prevHi := 0
			for p := 0; p < parts; p++ {
				lo, hi := Split(n, parts, p)
				if lo != prevHi {
					t.Fatalf("n=%d parts=%d p=%d: gap (lo %d, prev hi %d)", n, parts, p, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d parts=%d p=%d: inverted range", n, parts, p)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("n=%d parts=%d: covered %d ending at %d", n, parts, covered, prevHi)
			}
		}
	}
}

func TestSplitBalance(t *testing.T) {
	// Ranges differ by at most one element.
	for p := 0; p < 8; p++ {
		lo, hi := Split(100, 8, p)
		if sz := hi - lo; sz < 12 || sz > 13 {
			t.Fatalf("part %d has %d elements", p, sz)
		}
	}
}

func TestSplitDegenerate(t *testing.T) {
	if lo, hi := Split(10, 0, 0); lo != 0 || hi != 0 {
		t.Fatal("zero parts should yield empty range")
	}
	if lo, hi := Split(10, 3, 5); lo != 0 || hi != 0 {
		t.Fatal("out-of-range part should yield empty range")
	}
}

func BenchmarkBarrier(b *testing.B) {
	if err := Run(4, b.N, func(int, int) {}); err != nil {
		b.Fatal(err)
	}
}
