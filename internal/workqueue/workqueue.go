// Package workqueue is a small master/worker execution platform in the
// style of the Work Queue framework [23] the paper's SAND application
// is built on: a master owns a task list, workers pull tasks
// concurrently, failed tasks are retried, and results are collected in
// completion order. The sand kernel runs its real alignment batches
// through it, so the baseline measurements exercise the same
// master/worker structure the cloud simulator schedules at full scale.
package workqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Task is one unit of work. Execute runs on a worker goroutine; it
// must be safe to run concurrently with other tasks and to re-run
// after a failure.
type Task interface {
	Execute(ctx context.Context) (interface{}, error)
}

// TaskFunc adapts a function to the Task interface.
type TaskFunc func(ctx context.Context) (interface{}, error)

// Execute implements Task.
func (f TaskFunc) Execute(ctx context.Context) (interface{}, error) { return f(ctx) }

// Result pairs a task index with its outcome.
type Result struct {
	Index    int
	Value    interface{}
	Err      error
	Attempts int
	Worker   int
}

// Stats summarizes a completed run.
type Stats struct {
	Tasks     int
	Succeeded int
	Failed    int
	Retries   int
}

// Master coordinates one run. Create with New, add tasks, then Run.
type Master struct {
	workers    int
	maxRetries int
	tasks      []Task
}

// New builds a master with the given worker pool width. Workers must
// be positive.
func New(workers int) (*Master, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("workqueue: %d workers", workers)
	}
	return &Master{workers: workers, maxRetries: 1}, nil
}

// SetMaxRetries configures how many times a failing task is re-run
// before its error is reported (default 1 retry).
func (m *Master) SetMaxRetries(n int) error {
	if n < 0 {
		return fmt.Errorf("workqueue: negative retries %d", n)
	}
	m.maxRetries = n
	return nil
}

// Submit appends a task and returns its index.
func (m *Master) Submit(t Task) int {
	m.tasks = append(m.tasks, t)
	return len(m.tasks) - 1
}

// ErrCanceled reports a run aborted by context cancellation.
var ErrCanceled = errors.New("workqueue: run canceled")

// Run executes all submitted tasks on the worker pool and returns
// results indexed by task. It blocks until all tasks finish (or the
// context is canceled). The master can be reused after Run returns.
func (m *Master) Run(ctx context.Context) ([]Result, Stats, error) {
	n := len(m.tasks)
	results := make([]Result, n)
	var stats Stats
	stats.Tasks = n
	if n == 0 {
		return results, stats, nil
	}

	type item struct {
		idx     int
		attempt int
	}
	queue := make(chan item, n)
	for i := range m.tasks {
		queue <- item{idx: i, attempt: 1}
	}

	var pending atomic.Int64
	pending.Store(int64(n))
	var retries atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})
	var canceled atomic.Bool

	workers := m.workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					canceled.Store(true)
					return
				case <-done:
					return
				case it := <-queue:
					v, err := m.tasks[it.idx].Execute(ctx)
					if err != nil && it.attempt <= m.maxRetries {
						retries.Add(1)
						queue <- item{idx: it.idx, attempt: it.attempt + 1}
						continue
					}
					results[it.idx] = Result{
						Index:    it.idx,
						Value:    v,
						Err:      err,
						Attempts: it.attempt,
						Worker:   worker,
					}
					if pending.Add(-1) == 0 {
						close(done)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if canceled.Load() && pending.Load() > 0 {
		return nil, Stats{}, ErrCanceled
	}

	stats.Retries = int(retries.Load())
	for _, r := range results {
		if r.Err != nil {
			stats.Failed++
		} else {
			stats.Succeeded++
		}
	}
	return results, stats, nil
}
