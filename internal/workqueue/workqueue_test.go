package workqueue

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllTasks(t *testing.T) {
	m, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		i := i
		m.Submit(TaskFunc(func(context.Context) (interface{}, error) { return i * i, nil }))
	}
	results, stats, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != n || stats.Succeeded != n || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	for i, r := range results {
		if r.Err != nil || r.Value.(int) != i*i {
			t.Fatalf("result %d = %+v", i, r)
		}
		if r.Attempts != 1 {
			t.Fatalf("result %d took %d attempts", i, r.Attempts)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero workers accepted")
	}
	m, _ := New(1)
	if err := m.SetMaxRetries(-1); err == nil {
		t.Fatal("negative retries accepted")
	}
}

func TestEmptyRun(t *testing.T) {
	m, _ := New(3)
	results, stats, err := m.Run(context.Background())
	if err != nil || len(results) != 0 || stats.Tasks != 0 {
		t.Fatalf("empty run: %v %v %v", results, stats, err)
	}
}

func TestRetriesTransientFailures(t *testing.T) {
	m, _ := New(2)
	if err := m.SetMaxRetries(3); err != nil {
		t.Fatal(err)
	}
	var tries atomic.Int32
	m.Submit(TaskFunc(func(context.Context) (interface{}, error) {
		if tries.Add(1) < 3 {
			return nil, errors.New("flaky")
		}
		return "ok", nil
	}))
	results, stats, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Value != "ok" {
		t.Fatalf("result = %+v", results[0])
	}
	if results[0].Attempts != 3 || stats.Retries != 2 {
		t.Fatalf("attempts=%d retries=%d, want 3/2", results[0].Attempts, stats.Retries)
	}
}

func TestPermanentFailureReported(t *testing.T) {
	m, _ := New(2)
	m.Submit(TaskFunc(func(context.Context) (interface{}, error) {
		return nil, errors.New("broken")
	}))
	m.Submit(TaskFunc(func(context.Context) (interface{}, error) { return 1, nil }))
	results, stats, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 || stats.Succeeded != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if results[0].Err == nil || results[0].Attempts != 2 {
		t.Fatalf("failed task = %+v (default 1 retry)", results[0])
	}
}

func TestCancellation(t *testing.T) {
	m, _ := New(2)
	started := make(chan struct{}, 64)
	for i := 0; i < 64; i++ {
		m.Submit(TaskFunc(func(ctx context.Context) (interface{}, error) {
			started <- struct{}{}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(10 * time.Second):
				return nil, nil
			}
		}))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, _, err := m.Run(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestWorkDistribution(t *testing.T) {
	// With blocking tasks and several workers, more than one worker id
	// must appear in the results.
	m, _ := New(4)
	const n = 40
	for i := 0; i < n; i++ {
		m.Submit(TaskFunc(func(context.Context) (interface{}, error) {
			time.Sleep(time.Millisecond)
			return nil, nil
		}))
	}
	results, _, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	workers := map[int]bool{}
	for _, r := range results {
		workers[r.Worker] = true
	}
	if len(workers) < 2 {
		t.Fatalf("only %d workers participated", len(workers))
	}
}

func TestMasterReuse(t *testing.T) {
	m, _ := New(2)
	m.Submit(TaskFunc(func(context.Context) (interface{}, error) { return "a", nil }))
	if _, _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.Submit(TaskFunc(func(context.Context) (interface{}, error) { return "b", nil }))
	results, stats, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 2 || results[1].Value != "b" {
		t.Fatalf("reuse broken: %+v", stats)
	}
}

func TestManyMoreWorkersThanTasks(t *testing.T) {
	m, _ := New(64)
	m.Submit(TaskFunc(func(context.Context) (interface{}, error) { return 42, nil }))
	results, _, err := m.Run(context.Background())
	if err != nil || results[0].Value != 42 {
		t.Fatalf("%v %v", results, err)
	}
}

func BenchmarkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, _ := New(8)
		for k := 0; k < 1000; k++ {
			m.Submit(TaskFunc(func(context.Context) (interface{}, error) { return nil, nil }))
		}
		if _, _, err := m.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleMaster() {
	m, _ := New(4)
	for i := 1; i <= 3; i++ {
		i := i
		m.Submit(TaskFunc(func(context.Context) (interface{}, error) {
			return i * 10, nil
		}))
	}
	results, stats, _ := m.Run(context.Background())
	fmt.Println(stats.Succeeded, results[0].Value, results[1].Value, results[2].Value)
	// Output: 3 10 20 30
}

func TestRequeueConservationUnderLoad(t *testing.T) {
	// Every task fails its first attempt (a stand-in for losing the
	// worker mid-task) and is requeued exactly once: the run completes
	// every task, counts one retry per task, and never double-completes.
	m, _ := New(4)
	if err := m.SetMaxRetries(2); err != nil {
		t.Fatal(err)
	}
	const n = 64
	var executions atomic.Int32
	firstTry := make([]atomic.Bool, n)
	for i := 0; i < n; i++ {
		i := i
		m.Submit(TaskFunc(func(context.Context) (interface{}, error) {
			executions.Add(1)
			if firstTry[i].CompareAndSwap(false, true) {
				return nil, errors.New("worker lost")
			}
			return i, nil
		}))
	}
	results, stats, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Succeeded != n || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want %d successes", stats, n)
	}
	if stats.Retries != n {
		t.Fatalf("retries = %d, want %d (one requeue per task)", stats.Retries, n)
	}
	if got := executions.Load(); got != 2*n {
		t.Fatalf("executions = %d, want %d (exactly one requeue each)", got, 2*n)
	}
	for i, r := range results {
		if r.Err != nil || r.Attempts != 2 || r.Value != i {
			t.Fatalf("task %d = %+v, want value %d on attempt 2", i, r, i)
		}
	}
}

func TestZeroRetriesFailsFast(t *testing.T) {
	m, _ := New(2)
	if err := m.SetMaxRetries(0); err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int32
	m.Submit(TaskFunc(func(context.Context) (interface{}, error) {
		executions.Add(1)
		return nil, errors.New("broken")
	}))
	results, stats, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 1 || results[0].Attempts != 1 {
		t.Fatalf("zero-retry task ran %d times (attempts %d), want once",
			executions.Load(), results[0].Attempts)
	}
	if stats.Failed != 1 || stats.Retries != 0 {
		t.Fatalf("stats = %+v, want one fast failure", stats)
	}
}
