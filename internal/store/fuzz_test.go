package store

import (
	"strings"
	"testing"

	"repro/internal/demand"
	"repro/internal/ec2"
)

// FuzzLoad feeds arbitrary bytes to the characterization loader: it
// must never panic, and anything it accepts must rebuild into a
// working engine.
func FuzzLoad(f *testing.F) {
	f.Add(`{"version":1,"app":"g","demand":{"family":"f","bases":["n"],"coeffs":[1]},` +
		`"capacities":[{"type":"c4.large","per_vcpu_gips":1}],"domain":{}}`)
	f.Add(`{}`)
	f.Add(`{"version":1`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, raw string) {
		c, err := Load(strings.NewReader(raw))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent.
		if c.App == "" || len(c.Demand.Bases) != len(c.Demand.Coeffs) {
			t.Fatalf("validator let through inconsistent data: %+v", c)
		}
		// Rebuilding may fail (unknown bases, partial capacities) but
		// must not panic.
		_, _ = c.DemandModel()
		_, _ = c.CapacityModel(ec2.Oregon())
	})
}

// FuzzParseBasis: the basis parser must never panic and must round-trip
// every name it accepts.
func FuzzParseBasis(f *testing.F) {
	for _, seed := range []string{"n", "n^2", "n*a", "n*ln(1+99*a)", "", "junk", "n*ln(1+-1*a)"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		b, err := demand.ParseBasis(name)
		if err != nil {
			return
		}
		if b.Name != name {
			// The only allowed renaming is numeric formatting inside
			// the log scale (e.g. "n*ln(1+09*a)" -> "n*ln(1+9*a)");
			// re-parsing the canonical name must succeed.
			if _, err := demand.ParseBasis(b.Name); err != nil {
				t.Fatalf("canonical name %q of accepted input %q does not re-parse", b.Name, name)
			}
		}
		if b.Eval == nil {
			t.Fatalf("accepted basis %q has no evaluator", name)
		}
	})
}
