package store

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/apps/galaxy"
	"repro/internal/demand"
	"repro/internal/ec2"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

// characterize runs the real pipeline once per test binary.
var cached struct {
	dr profile.DemandResult
	cr profile.CapacityResult
	ok bool
}

func characterize(t *testing.T) (profile.DemandResult, profile.CapacityResult) {
	t.Helper()
	if !cached.ok {
		pf := profile.New()
		dr, err := pf.CharacterizeDemand(galaxy.App{})
		if err != nil {
			t.Fatal(err)
		}
		cr, err := pf.CharacterizeCapacity(galaxy.App{}, true)
		if err != nil {
			t.Fatal(err)
		}
		cached.dr, cached.cr, cached.ok = dr, cr, true
	}
	return cached.dr, cached.cr
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dr, cr := characterize(t)
	c, err := FromResults(galaxy.App{}, dr, cr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.App != "galaxy" || loaded.Demand.Family != dr.Fit.Family {
		t.Fatalf("round trip lost identity: %+v", loaded)
	}
	// The rebuilt demand model must agree with the original everywhere
	// we ask.
	m, err := loaded.DemandModel()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []workload.Params{{N: 8192, A: 1000}, {N: 65536, A: 8000}} {
		want := float64(dr.Fit.Model.Demand(p))
		got := float64(m.Demand(p))
		if math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("demand differs after round trip at %v: %v vs %v", p, got, want)
		}
	}
}

func TestRebuiltEngineMatchesOriginal(t *testing.T) {
	dr, cr := characterize(t)
	c, err := FromResults(galaxy.App{}, dr, cr)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := c.Engine(ec2.Oregon(), 5)
	if err != nil {
		t.Fatal(err)
	}
	pred, ok, err := eng.MinCostForDeadline(workload.Params{N: 65536, A: 8000}, units.FromHours(36))
	if err != nil || !ok {
		t.Fatalf("rebuilt engine unusable: %v %v", ok, err)
	}
	// Cross-check against an engine built directly from the results.
	direct, err := c.CapacityModel(ec2.Oregon())
	if err != nil {
		t.Fatal(err)
	}
	d := dr.Fit.Model.Demand(workload.Params{N: 65536, A: 8000})
	if got := direct.Predict(d, pred.Config); math.Abs(float64(got.Cost-pred.Cost)) > 1e-9 {
		t.Fatalf("rebuilt engine disagrees with its own inputs: %v vs %v", got.Cost, pred.Cost)
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"wrong version":  `{"version":99,"app":"galaxy","demand":{"family":"f","bases":["n"],"coeffs":[1]},"capacities":[{"type":"c4.large","per_vcpu_gips":1}],"domain":{}}`,
		"missing app":    `{"version":1,"demand":{"family":"f","bases":["n"],"coeffs":[1]},"capacities":[{"type":"c4.large","per_vcpu_gips":1}],"domain":{}}`,
		"bases mismatch": `{"version":1,"app":"g","demand":{"family":"f","bases":["n"],"coeffs":[1,2]},"capacities":[{"type":"c4.large","per_vcpu_gips":1}],"domain":{}}`,
		"no capacities":  `{"version":1,"app":"g","demand":{"family":"f","bases":["n"],"coeffs":[1]},"capacities":[],"domain":{}}`,
		"bad rate":       `{"version":1,"app":"g","demand":{"family":"f","bases":["n"],"coeffs":[1]},"capacities":[{"type":"c4.large","per_vcpu_gips":0}],"domain":{}}`,
		"unknown field":  `{"version":1,"app":"g","surprise":1,"demand":{"family":"f","bases":["n"],"coeffs":[1]},"capacities":[{"type":"c4.large","per_vcpu_gips":1}],"domain":{}}`,
	}
	for name, raw := range cases {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDemandModelRejectsUnknownBasis(t *testing.T) {
	var c Characterization
	c.Version = FormatVersion
	c.App = "g"
	c.Demand.Bases = []string{"n*exp(a)"}
	c.Demand.Coeffs = []float64{1}
	if _, err := c.DemandModel(); err == nil {
		t.Fatal("unknown basis accepted")
	}
}

func TestCapacityModelRequiresFullCatalog(t *testing.T) {
	var c Characterization
	c.Capacities = []TypeCapacity{{Type: "c4.large", PerVCPUGIPS: 1}}
	if _, err := c.CapacityModel(ec2.Oregon()); err == nil {
		t.Fatal("partial capacity table accepted")
	}
}

func TestFromResultsRejectsAnalyticModel(t *testing.T) {
	dr, cr := characterize(t)
	analytic := dr
	analytic.Fit.Model = demandFromApp()
	if _, err := FromResults(galaxy.App{}, analytic, cr); err == nil {
		t.Fatal("analytic (basis-free) model accepted")
	}
}

func TestFitResultRebuild(t *testing.T) {
	dr, cr := characterize(t)
	c, err := FromResults(galaxy.App{}, dr, cr)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := c.FitResult()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Family != dr.Fit.Family {
		t.Fatalf("family lost: %q vs %q", fr.Family, dr.Fit.Family)
	}
}

func demandFromApp() demand.Model { return demand.FromApp(galaxy.App{}) }
