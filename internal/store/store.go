// Package store persists CELIA characterizations. Profiling is the
// expensive step of the methodology — baseline runs on a local server
// plus timed probes on paid cloud instances — so a production user
// characterizes an application once and reuses the result. The format
// is versioned JSON holding the fitted demand model (by basis names and
// coefficients) and the measured per-vCPU capacities.
package store

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/ec2"
	"repro/internal/fit"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

// FormatVersion guards against silently loading an incompatible file.
const FormatVersion = 1

// Characterization is the persisted form of one application's
// measurement results.
type Characterization struct {
	Version int    `json:"version"`
	App     string `json:"app"`

	Demand struct {
		Family string    `json:"family"`
		Bases  []string  `json:"bases"`
		Coeffs []float64 `json:"coeffs"`
		R2     float64   `json:"r2"`
	} `json:"demand"`

	Capacities []TypeCapacity `json:"capacities"`

	Domain struct {
		MinN float64 `json:"min_n,omitempty"`
		MaxN float64 `json:"max_n,omitempty"`
		MinA float64 `json:"min_a,omitempty"`
		MaxA float64 `json:"max_a,omitempty"`
	} `json:"domain"`
}

// TypeCapacity is one measured W_i,vCPU.
type TypeCapacity struct {
	Type        string  `json:"type"`
	PerVCPUGIPS float64 `json:"per_vcpu_gips"`
}

// FromResults assembles a Characterization from profiling outputs.
func FromResults(app workload.App, dr profile.DemandResult, cr profile.CapacityResult) (Characterization, error) {
	var c Characterization
	c.Version = FormatVersion
	c.App = app.Name()
	m := dr.Fit.Model
	if len(m.Bases) == 0 {
		return Characterization{}, fmt.Errorf("store: demand model has no bases (analytic models are not persistable)")
	}
	c.Demand.Family = dr.Fit.Family
	c.Demand.R2 = m.R2
	for _, b := range m.Bases {
		c.Demand.Bases = append(c.Demand.Bases, b.Name)
	}
	c.Demand.Coeffs = append(c.Demand.Coeffs, m.Coeffs...)
	for _, tc := range cr.Types {
		c.Capacities = append(c.Capacities, TypeCapacity{
			Type:        tc.Type.Name,
			PerVCPUGIPS: tc.PerVCPU.GIPSValue(),
		})
	}
	d := app.Domain()
	c.Domain.MinN, c.Domain.MaxN = d.MinN, d.MaxN
	c.Domain.MinA, c.Domain.MaxA = d.MinA, d.MaxA
	return c, nil
}

// Save writes the characterization as indented JSON.
func (c Characterization) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Load reads and validates a characterization.
func Load(r io.Reader) (Characterization, error) {
	var c Characterization
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Characterization{}, fmt.Errorf("store: decode: %w", err)
	}
	if err := c.validate(); err != nil {
		return Characterization{}, err
	}
	return c, nil
}

func (c Characterization) validate() error {
	if c.Version != FormatVersion {
		return fmt.Errorf("store: format version %d, want %d", c.Version, FormatVersion)
	}
	if c.App == "" {
		return fmt.Errorf("store: missing app name")
	}
	if len(c.Demand.Bases) == 0 || len(c.Demand.Bases) != len(c.Demand.Coeffs) {
		return fmt.Errorf("store: %d bases vs %d coefficients", len(c.Demand.Bases), len(c.Demand.Coeffs))
	}
	if len(c.Capacities) == 0 {
		return fmt.Errorf("store: no capacities")
	}
	for _, tc := range c.Capacities {
		if tc.PerVCPUGIPS <= 0 {
			return fmt.Errorf("store: non-positive rate for %s", tc.Type)
		}
	}
	return nil
}

// DemandModel rebuilds the fitted demand model.
func (c Characterization) DemandModel() (demand.Model, error) {
	bases := make([]demand.Basis, len(c.Demand.Bases))
	for i, name := range c.Demand.Bases {
		b, err := demand.ParseBasis(name)
		if err != nil {
			return demand.Model{}, err
		}
		bases[i] = b
	}
	return demand.FromFit(c.App, bases, c.Demand.Coeffs, c.Demand.R2)
}

// CapacityModel rebuilds the capacity model against a catalog. Every
// catalog type must have a stored rate.
func (c Characterization) CapacityModel(cat *ec2.Catalog) (*model.Capacities, error) {
	byName := map[string]float64{}
	for _, tc := range c.Capacities {
		byName[tc.Type] = tc.PerVCPUGIPS
	}
	rates := make([]units.Rate, cat.Len())
	for i := 0; i < cat.Len(); i++ {
		g, ok := byName[cat.Type(i).Name]
		if !ok {
			return nil, fmt.Errorf("store: no stored capacity for %s", cat.Type(i).Name)
		}
		rates[i] = units.GIPS(g)
	}
	return model.New(cat, rates)
}

// Engine rebuilds a full CELIA engine from the characterization over
// the given catalog and per-type node limit.
func (c Characterization) Engine(cat *ec2.Catalog, maxNodes int) (*core.Engine, error) {
	dm, err := c.DemandModel()
	if err != nil {
		return nil, err
	}
	caps, err := c.CapacityModel(cat)
	if err != nil {
		return nil, err
	}
	space, err := config.Uniform(cat.Len(), maxNodes)
	if err != nil {
		return nil, err
	}
	dom := workload.Domain{
		MinN: c.Domain.MinN, MaxN: c.Domain.MaxN,
		MinA: c.Domain.MinA, MaxA: c.Domain.MaxA,
	}
	return core.NewEngine(caps, dm, space, dom)
}

// FitResult converts back into a fit.Result (for reports).
func (c Characterization) FitResult() (fit.Result, error) {
	m, err := c.DemandModel()
	if err != nil {
		return fit.Result{}, err
	}
	return fit.Result{Model: m, Family: c.Demand.Family}, nil
}
