// Package risk estimates deadline risk under instance failures: a
// seeded Monte-Carlo evaluator that replays one configuration through
// the cloud simulator across many drawn failure traces and reports the
// probability of missing the deadline plus makespan and cost quantiles.
//
// CELIA's deterministic answer — "configuration c finishes D within T′
// at minimal cost" — silently assumes no instance dies. This package
// quantifies the assumption: with a per-instance-hour hazard λ and a
// recovery policy, P(makespan > T′) is the number a user trading cost
// against deadline risk actually needs. Every estimate is replayable:
// the same (seed, hazard, trials) triple drives the same traces through
// the same simulator, in parallel, with a deterministic result.
package risk

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cloudsim"
	"repro/internal/config"
	"repro/internal/detrand"
	"repro/internal/ec2"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// DefaultTrials is the trial count when Options.Trials is zero: enough
// to resolve miss probabilities around a few percent without making an
// interactive query sluggish.
const DefaultTrials = 200

// MaxTrials bounds a single estimate; it keeps one API request from
// monopolizing the server.
const MaxTrials = 10000

// Options configure one estimate.
type Options struct {
	// Trials is the number of Monte-Carlo draws; 0 means DefaultTrials.
	Trials int
	// Seed drives the trace draws. Trial i uses a seed derived from
	// (Seed, i), so one estimate's trials are independent but the whole
	// estimate replays exactly.
	Seed uint64
	// HazardPerHour is the per-instance-hour failure rate λ fed to
	// faults.PoissonTrace. Zero means no failures (every trial equals
	// the base run).
	HazardPerHour float64
	// Deadline is the paper's T′: a trial misses when its makespan
	// exceeds it. Trials whose run errors out (aborts, exhausted retry
	// budgets, dead clusters) always count as misses.
	Deadline units.Seconds
	// Workers caps the parallelism; 0 means GOMAXPROCS.
	Workers int
	// Sim is the base simulator configuration; its Trace and legacy
	// failure fields are overwritten per trial.
	Sim cloudsim.Options
	// Recovery is the failure-handling policy applied to every trial
	// and to the base run (so checkpointing overhead shows up in the
	// base makespan too).
	Recovery faults.Recovery
}

// Result is one Monte-Carlo estimate.
type Result struct {
	Trials int // trials evaluated
	Failed int // trials whose simulation returned an error

	// MissProb is P(makespan > Deadline); failed trials count as
	// misses.
	MissProb float64

	// Base is the failure-free reference run under the same recovery
	// policy.
	BaseMakespan units.Seconds
	BaseCost     units.USD

	// Makespan and cost quantiles over the successful trials.
	MakespanP50 units.Seconds
	MakespanP90 units.Seconds
	MakespanP99 units.Seconds
	CostP50     units.USD
	CostP90     units.USD
	CostP99     units.USD

	// MeanFailures is the mean number of failure events per trial
	// (including failed trials) — a sanity check that the hazard and
	// horizon produce the intended event density.
	MeanFailures float64
}

// trialSeed derives the trace seed for one trial: detrand's splitmix64
// stream mix keeps neighboring trial indices uncorrelated. (It is the
// same mix this function inlined before detrand existed, so stored
// estimates replay unchanged.)
func trialSeed(seed uint64, trial int) uint64 {
	return detrand.Mix(seed, trial)
}

// Estimate runs the Monte-Carlo evaluation without external
// cancellation (offline callers: the CLI and the sweep). The serving
// path uses EstimateContext.
func Estimate(app workload.App, p workload.Params, tuple config.Tuple, cat *ec2.Catalog, opts Options) (Result, error) {
	return EstimateContext(context.Background(), app, p, tuple, cat, opts)
}

// EstimateContext is Estimate under a request context. Deterministic
// for equal inputs regardless of Workers: results are collected by
// trial index and aggregated in order. The trial dispatch loop races
// each hand-off against ctx, so a canceled request stops after the
// in-flight trials instead of paying for the full draw count; a
// canceled estimate returns ctx's error and no partial result (a
// partial aggregate would not be replayable).
func EstimateContext(ctx context.Context, app workload.App, p workload.Params, tuple config.Tuple, cat *ec2.Catalog, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if opts.Trials < 0 {
		return Result{}, fmt.Errorf("risk: negative trial count %d", opts.Trials)
	}
	if opts.Trials == 0 {
		opts.Trials = DefaultTrials
	}
	if opts.Trials > MaxTrials {
		return Result{}, fmt.Errorf("risk: %d trials exceeds the limit of %d", opts.Trials, MaxTrials)
	}
	if opts.HazardPerHour < 0 {
		return Result{}, fmt.Errorf("risk: negative hazard rate %v", opts.HazardPerHour)
	}
	if opts.Deadline <= 0 {
		return Result{}, fmt.Errorf("risk: deadline must be positive, got %v", opts.Deadline)
	}
	if err := opts.Recovery.Validate(); err != nil {
		return Result{}, err
	}

	base := opts.Sim
	base.Trace = faults.Trace{}
	base.FailInstance, base.FailAt = 0, 0
	base.Recovery = opts.Recovery
	ref, err := cloudsim.Run(app, p, tuple, cat, base)
	if err != nil {
		return Result{}, fmt.Errorf("risk: base run: %w", err)
	}

	// Failures can only matter while the job runs; the horizon covers
	// slow recovered runs and the full deadline with margin.
	horizon := 3 * ref.Makespan
	if h := 2 * opts.Deadline; h > horizon {
		horizon = h
	}

	type trial struct {
		makespan units.Seconds
		cost     units.USD
		failures int
		err      error
	}
	trials := make([]trial, opts.Trials)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Trials {
		workers = opts.Trials
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				tr := faults.PoissonTrace(trialSeed(opts.Seed, i), opts.HazardPerHour, ref.Instances, horizon)
				o := base
				o.Trace = tr
				res, err := cloudsim.Run(app, p, tuple, cat, o)
				if err != nil {
					trials[i] = trial{failures: tr.Len(), err: err}
					continue
				}
				trials[i] = trial{makespan: res.Makespan, cost: res.Cost, failures: res.Failures}
			}
		}()
	}
	for i := 0; i < opts.Trials; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			close(idx)
			wg.Wait() // workers drain the closed channel; bounded by in-flight trials
			return Result{}, ctx.Err()
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	out := Result{
		Trials:       opts.Trials,
		BaseMakespan: ref.Makespan,
		BaseCost:     ref.Cost,
	}
	var makespans, costs []float64
	misses := 0
	totalFailures := 0
	for _, tr := range trials {
		totalFailures += tr.failures
		if tr.err != nil {
			out.Failed++
			misses++
			continue
		}
		if tr.makespan > opts.Deadline {
			misses++
		}
		//lint:allow unitsafe stats.Quantile sorts raw float64 samples; results are re-typed below
		makespans = append(makespans, float64(tr.makespan))
		costs = append(costs, float64(tr.cost)) //lint:allow unitsafe same raw-sample collection as the makespan line above
	}
	out.MissProb = float64(misses) / float64(opts.Trials)
	out.MeanFailures = float64(totalFailures) / float64(opts.Trials)
	if len(makespans) > 0 {
		sort.Float64s(makespans)
		sort.Float64s(costs)
		out.MakespanP50 = units.Seconds(stats.Quantile(makespans, 0.50))
		out.MakespanP90 = units.Seconds(stats.Quantile(makespans, 0.90))
		out.MakespanP99 = units.Seconds(stats.Quantile(makespans, 0.99))
		out.CostP50 = units.USD(stats.Quantile(costs, 0.50))
		out.CostP90 = units.USD(stats.Quantile(costs, 0.90))
		out.CostP99 = units.USD(stats.Quantile(costs, 0.99))
	}
	return out, nil
}
