package risk

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps/galaxy"
	"repro/internal/apps/x264"
	"repro/internal/cloudsim"
	"repro/internal/config"
	"repro/internal/ec2"
	"repro/internal/faults"
	"repro/internal/units"
	"repro/internal/workload"
)

func baseOpts() Options {
	return Options{
		Trials:        64,
		Seed:          7,
		HazardPerHour: 2,
		Deadline:      units.FromHours(1),
		Sim:           cloudsim.DefaultOptions(),
		Recovery:      faults.DefaultRecovery(),
	}
}

func TestEstimateValidation(t *testing.T) {
	cat := ec2.Oregon()
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	p := workload.Params{N: 16, A: 20}

	bad := baseOpts()
	bad.Deadline = 0
	if _, err := Estimate(x264.App{}, p, tuple, cat, bad); err == nil {
		t.Fatal("zero deadline accepted")
	}
	bad = baseOpts()
	bad.HazardPerHour = -1
	if _, err := Estimate(x264.App{}, p, tuple, cat, bad); err == nil {
		t.Fatal("negative hazard accepted")
	}
	bad = baseOpts()
	bad.Trials = MaxTrials + 1
	if _, err := Estimate(x264.App{}, p, tuple, cat, bad); err == nil {
		t.Fatal("oversized trial count accepted")
	}
	bad = baseOpts()
	bad.Trials = -1
	if _, err := Estimate(x264.App{}, p, tuple, cat, bad); err == nil {
		t.Fatal("negative trial count accepted")
	}
}

func TestZeroHazardMatchesBase(t *testing.T) {
	// λ = 0 draws only empty traces: every trial equals the base run and
	// a deadline above it is never missed.
	cat := ec2.Oregon()
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	p := workload.Params{N: 16, A: 20}
	opts := baseOpts()
	opts.HazardPerHour = 0
	res, err := Estimate(x264.App{}, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissProb != 0 || res.Failed != 0 {
		t.Fatalf("zero hazard missed: prob %v, failed %d", res.MissProb, res.Failed)
	}
	if res.MakespanP50 != res.BaseMakespan || res.MakespanP99 != res.BaseMakespan {
		t.Fatalf("zero-hazard quantiles %v / %v differ from base %v",
			res.MakespanP50, res.MakespanP99, res.BaseMakespan)
	}
	if res.CostP50 != res.BaseCost {
		t.Fatalf("zero-hazard cost quantile %v differs from base %v", res.CostP50, res.BaseCost)
	}
	if res.MeanFailures != 0 {
		t.Fatalf("zero hazard produced %v failures/trial", res.MeanFailures)
	}
}

func TestDeadlineBelowBaseAlwaysMisses(t *testing.T) {
	cat := ec2.Oregon()
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	p := workload.Params{N: 16, A: 20}
	opts := baseOpts()
	opts.HazardPerHour = 0
	opts.Deadline = 1 // one second: unreachable
	res, err := Estimate(x264.App{}, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissProb != 1 {
		t.Fatalf("unreachable deadline missed with prob %v, want 1", res.MissProb)
	}
}

func TestEstimateDeterministicAcrossWorkerCounts(t *testing.T) {
	// Same seed and hazard → identical output, serial or parallel.
	cat := ec2.Oregon()
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	p := workload.Params{N: 16, A: 20}

	serial := baseOpts()
	serial.Workers = 1
	a, err := Estimate(x264.App{}, p, tuple, cat, serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := baseOpts()
	parallel.Workers = 8
	b, err := Estimate(x264.App{}, p, tuple, cat, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("worker count changed the estimate:\n%+v\n%+v", a, b)
	}
	c, err := Estimate(x264.App{}, p, tuple, cat, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if b != c {
		t.Fatal("repeated estimate diverged")
	}
	diff := baseOpts()
	diff.Seed = 8
	d, err := Estimate(x264.App{}, p, tuple, cat, diff)
	if err != nil {
		t.Fatal(err)
	}
	if d == b && d.MeanFailures > 0 {
		t.Fatal("different seed produced an identical non-trivial estimate")
	}
}

func TestHazardRaisesRisk(t *testing.T) {
	// A hazard high enough to kill instances mid-run must push both the
	// makespan tail and the miss probability above the zero-hazard case.
	cat := ec2.Oregon()
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	p := workload.Params{N: 64, A: 20}

	calm := baseOpts()
	calm.HazardPerHour = 0
	quiet, err := Estimate(x264.App{}, p, tuple, cat, calm)
	if err != nil {
		t.Fatal(err)
	}
	// Deadline 5% above the base: losing instances mid-run (45 s boot
	// for the replacement plus redone work) blows through it.
	storm := baseOpts()
	storm.HazardPerHour = 50
	storm.Recovery.Respawn = true // whole-cluster losses recover instead of erroring out
	storm.Deadline = units.Seconds(1.05 * float64(quiet.BaseMakespan))
	calm.Deadline = storm.Deadline
	quiet, err = Estimate(x264.App{}, p, tuple, cat, calm)
	if err != nil {
		t.Fatal(err)
	}
	risky, err := Estimate(x264.App{}, p, tuple, cat, storm)
	if err != nil {
		t.Fatal(err)
	}
	if risky.MeanFailures <= 0 {
		t.Fatal("high hazard produced no failures")
	}
	if risky.MissProb <= quiet.MissProb {
		t.Fatalf("hazard did not raise miss probability: %v vs %v", risky.MissProb, quiet.MissProb)
	}
	if risky.MakespanP99 <= quiet.MakespanP99 {
		t.Fatalf("hazard did not stretch the makespan tail: %v vs %v",
			risky.MakespanP99, quiet.MakespanP99)
	}
}

func TestStrictAbortCountsFailedTrialsAsMisses(t *testing.T) {
	// Under StrictAbort, any trial whose trace hits the BSP job aborts;
	// those trials must surface as Failed and count toward MissProb.
	cat := ec2.Oregon()
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	p := workload.Params{N: 2048, A: 50}
	opts := baseOpts()
	opts.Recovery = faults.Recovery{} // strict abort
	opts.HazardPerHour = 200          // ~every trial sees a failure
	opts.Deadline = units.FromHours(10)
	res, err := Estimate(galaxy.App{}, p, tuple, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Fatal("no aborted trials despite an extreme hazard on a strict BSP job")
	}
	if res.MissProb < float64(res.Failed)/float64(res.Trials) {
		t.Fatalf("miss probability %v below the failed-trial fraction %v",
			res.MissProb, float64(res.Failed)/float64(res.Trials))
	}
}

// cancelAfterEntry is a Context that reports itself canceled on every
// Err poll after the first: EstimateContext's entry check passes, and
// the next poll — the trial-dispatch select or the post-join check —
// sees a canceled context. That makes mid-run cancellation
// deterministic without sleeping against the Monte-Carlo's wall clock.
type cancelAfterEntry struct {
	done  chan struct{}
	polls atomic.Int32
}

func newCancelAfterEntry() *cancelAfterEntry {
	ch := make(chan struct{})
	close(ch)
	return &cancelAfterEntry{done: ch}
}

func (c *cancelAfterEntry) Deadline() (time.Time, bool)       { return time.Time{}, false }
func (c *cancelAfterEntry) Done() <-chan struct{}             { return c.done }
func (c *cancelAfterEntry) Value(key interface{}) interface{} { return nil }
func (c *cancelAfterEntry) Err() error {
	if c.polls.Add(1) == 1 {
		return nil
	}
	return context.Canceled
}

// TestEstimateContextCancellation is the regression test for the
// dropped-ctx bug the ctxflow-ip rule caught: the serving path used to
// call the context-free Estimate, so request cancellation never
// reached the trial dispatch. Both the entry check and the dispatch
// loop must observe cancellation.
func TestEstimateContextCancellation(t *testing.T) {
	cat := ec2.Oregon()
	tuple := config.MustTuple(2, 0, 0, 0, 0, 0, 0, 0, 0)
	p := workload.Params{N: 16, A: 20}

	// Already-canceled context: rejected before any trial runs.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EstimateContext(pre, x264.App{}, p, tuple, cat, baseOpts()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want context.Canceled", err)
	}

	// Canceled right after entry: the dispatch must stop mid-run and
	// surface the cancellation, not drain all trials and return a result.
	opts := baseOpts()
	opts.Trials = MaxTrials
	opts.Workers = 1
	res, err := EstimateContext(newCancelAfterEntry(), x264.App{}, p, tuple, cat, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
	if res != (Result{}) {
		t.Fatalf("canceled estimate returned a partial result: %+v", res)
	}

	// The context-free wrapper still works for offline callers.
	if _, err := Estimate(x264.App{}, p, tuple, cat, baseOpts()); err != nil {
		t.Fatalf("Estimate: %v", err)
	}
}
