// Package faults is the failure model of the cloud substrate: ordered
// multi-instance failure traces, seeded trace generators, and the
// recovery policies the simulator applies per plan kind.
//
// CELIA targets on-demand EC2 precisely because interruptions make
// deadline guarantees hard (paper's Related Work vs. Marathe's and
// Gong's spot systems). Quantifying how a configuration's makespan and
// cost degrade when instances die mid-run therefore needs a fault
// model the simulator, the spot market, and the risk queries all
// share:
//
//   - a Trace is the ground truth of one run: which instances die and
//     when, measured from application launch;
//   - PoissonTrace draws traces from a per-instance-hour hazard rate
//     (the memoryless interruption model of the spot literature);
//   - internal/spot derives traces from market price crossings, so the
//     spot and on-demand stories use one fault representation;
//   - Recovery selects what the simulator does when an event fires:
//     the paper-faithful abort (StrictAbort, the Table IV validation
//     path) or per-plan-kind recovery — bounded task re-dispatch,
//     BSP checkpoint/restart, master failover — with optional
//     replacement provisioning.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/detrand"
	"repro/internal/units"
)

// Event is one instance failure: the instance (by provisioning order)
// terminates at time At, measured from application launch. Work in
// flight on the instance at that moment is lost.
type Event struct {
	Instance int
	At       units.Seconds
}

func (e Event) String() string { return fmt.Sprintf("fail(vm-%d @ %v)", e.Instance, e.At) }

// Trace is an ordered sequence of failure events for one run. The zero
// value is the empty trace (no failures). Each instance fails at most
// once: a terminated instance stays terminated, and replacement
// instances provisioned by a recovery policy are never re-targeted by
// the same trace.
type Trace struct {
	events []Event
}

// NewTrace builds a trace from events, sorting them by (time,
// instance).
func NewTrace(events ...Event) Trace {
	out := append([]Event(nil), events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Instance < out[j].Instance
	})
	return Trace{events: out}
}

// Events returns the events in time order. Callers must not mutate the
// returned slice.
func (t Trace) Events() []Event { return t.events }

// Len reports the number of failure events.
func (t Trace) Len() int { return len(t.events) }

// Empty reports whether the trace has no events.
func (t Trace) Empty() bool { return len(t.events) == 0 }

// Validate checks the trace against a cluster size: every event must
// target an existing instance at a non-negative time, and no instance
// may fail twice.
func (t Trace) Validate(instances int) error {
	seen := make(map[int]bool, len(t.events))
	for _, e := range t.events {
		if e.Instance < 0 || e.Instance >= instances {
			return fmt.Errorf("faults: event %v outside cluster of %d", e, instances)
		}
		if e.At < 0 {
			return fmt.Errorf("faults: event %v at negative time", e)
		}
		if seen[e.Instance] {
			return fmt.Errorf("faults: instance %d fails twice", e.Instance)
		}
		seen[e.Instance] = true
	}
	return nil
}

func (t Trace) String() string {
	if t.Empty() {
		return "trace{}"
	}
	return fmt.Sprintf("trace%v", t.events)
}

// Traces draw from detrand's splitmix64 source: tiny, seedable, and
// stable across Go releases (unlike math/rand's unspecified default
// source), which keeps traces — and therefore every Monte-Carlo risk
// answer — replayable. The stream is bit-for-bit the one the package's
// former private generator produced.

// expSeconds draws an exponential waiting time (seconds) for a
// per-hour rate.
func expSeconds(r *detrand.Source, ratePerHour float64) units.Seconds {
	return units.Seconds(r.ExpFloat64() / ratePerHour * 3600)
}

// PoissonTrace draws one failure trace for a cluster of the given size
// over the horizon: each instance's time-to-failure is exponential with
// the per-instance-hour hazard rate (memoryless interruptions, the
// standard model of the spot-market literature); failures beyond the
// horizon are dropped. Deterministic for a (seed, hazard, instances,
// horizon) quadruple. A non-positive hazard yields the empty trace.
func PoissonTrace(seed uint64, hazardPerInstanceHour float64, instances int, horizon units.Seconds) Trace {
	if hazardPerInstanceHour <= 0 || instances <= 0 || horizon <= 0 {
		return Trace{}
	}
	r := detrand.New(seed)
	var events []Event
	for i := 0; i < instances; i++ {
		at := expSeconds(r, hazardPerInstanceHour)
		if at <= horizon {
			events = append(events, Event{Instance: i, At: at})
		}
	}
	return NewTrace(events...)
}

// Mode selects what the simulator does when a failure event fires.
type Mode int

const (
	// StrictAbort is the paper-faithful fault model and the zero value:
	// independent plans re-dispatch lost tasks without bound (x264's
	// clip farm shrugs off node loss), while gang-scheduled BSP and
	// master-anchored work-queue plans abort with an error. This is the
	// Table IV validation path.
	StrictAbort Mode = iota
	// Recover applies the per-plan-kind recovery policies below instead
	// of aborting.
	Recover
)

func (m Mode) String() string {
	switch m {
	case StrictAbort:
		return "strict-abort"
	case Recover:
		return "recover"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Recovery configures failure handling per plan kind. The zero value is
// StrictAbort with no recovery machinery — exactly the pre-fault-model
// simulator behavior.
type Recovery struct {
	Mode Mode

	// MaxTaskRetries bounds how many times one task may be re-dispatched
	// after instance failures (independent and master-worker plans).
	// When a task exceeds the budget the run fails; ≤ 0 means unbounded.
	MaxTaskRetries int

	// CheckpointEverySteps is the BSP checkpoint interval k: after every
	// k completed steps the ranks write a coordinated checkpoint costing
	// CheckpointCost of wall time. On failure the survivors restart from
	// the last checkpoint (paying CheckpointCost once more to read it
	// back) with the elements repartitioned proportionally to surviving
	// rank speed. 0 disables checkpointing: a failure restarts the
	// computation from step 0.
	CheckpointEverySteps int
	CheckpointCost       units.Seconds

	// FailoverDetection is how long the work-queue cluster takes to
	// detect a dead master and promote the lowest-indexed surviving
	// instance. Dispatch is paused in between; tasks whose inputs were
	// shipped but not started are re-dispatched by the new master.
	FailoverDetection units.Seconds

	// Respawn provisions a replacement for every failed instance: the
	// replacement boots for the cluster's boot latency and is billed
	// from the moment the failure is detected (i.e. the failure time).
	// BSP replacements join at the next checkpoint restart (the MPI
	// world is rebuilt there); independent and master-worker
	// replacements join as soon as they boot.
	Respawn bool
}

// DefaultRecovery returns a tolerant policy: recover everywhere, three
// re-dispatches per task, checkpoint every 10 BSP steps at 5 s of I/O,
// 10 s master-failover detection, no replacement provisioning.
func DefaultRecovery() Recovery {
	return Recovery{
		Mode:                 Recover,
		MaxTaskRetries:       3,
		CheckpointEverySteps: 10,
		CheckpointCost:       5,
		FailoverDetection:    10,
	}
}

// Validate rejects nonsensical policies.
func (r Recovery) Validate() error {
	if r.Mode != StrictAbort && r.Mode != Recover {
		return fmt.Errorf("faults: unknown recovery mode %v", r.Mode)
	}
	if r.CheckpointEverySteps < 0 {
		return fmt.Errorf("faults: negative checkpoint interval %d", r.CheckpointEverySteps)
	}
	if r.CheckpointCost < 0 {
		return fmt.Errorf("faults: negative checkpoint cost %v", r.CheckpointCost)
	}
	if r.FailoverDetection < 0 {
		return fmt.Errorf("faults: negative failover detection %v", r.FailoverDetection)
	}
	return nil
}
